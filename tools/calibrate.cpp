// Calibration probe: prints the model's predictions for the paper's key
// data points so service-time constants can be fitted. Not a benchmark.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiment.hpp"
#include "core/recovery_experiment.hpp"

using namespace rc;

namespace {

void probeYcsb(const char* tag, int servers, int clients, int rf,
               ycsb::WorkloadSpec spec, double throttle = 0) {
  core::YcsbExperimentConfig cfg;
  cfg.servers = servers;
  cfg.clients = clients;
  cfg.replicationFactor = rf;
  cfg.workload = spec;
  cfg.warmup = sim::seconds(1);
  cfg.measure = sim::seconds(4);
  cfg.throttleOpsPerSec = throttle;
  const auto r = core::runYcsbExperiment(cfg);
  std::printf(
      "%-28s srv=%2d cli=%2d rf=%d wl=%s  thr=%8.0f op/s  cpu=%5.1f%% "
      "(%5.1f-%5.1f)  P=%6.1fW  eff=%6.0f op/J  rdLat=%7.1fus upLat=%8.1fus "
      "fail=%llu%s\n",
      tag, servers, clients, rf, spec.name.c_str(), r.throughputOpsPerSec,
      r.meanCpuPct, r.minCpuPct, r.maxCpuPct, r.meanPowerPerServerW,
      r.opsPerJoule, r.readMeanLatencyUs, r.updateMeanLatencyUs,
      static_cast<unsigned long long>(r.opFailures),
      r.crashed ? "  CRASHED" : "");
}

void probeRecovery(int servers, int rf, std::uint64_t records) {
  core::RecoveryExperimentConfig cfg;
  cfg.servers = servers;
  cfg.replicationFactor = rf;
  cfg.records = records;
  cfg.killAt = sim::seconds(10);
  const auto r = core::runRecoveryExperiment(cfg);
  std::printf(
      "recovery srv=%d rf=%d data=%.2fGB  detect=%.2fs recover=%.1fs  "
      "peakCpu=%.0f%%  P=%.1fW  E/node=%.0fJ  ok=%d allKeys=%d\n",
      servers, rf, r.dataRecoveredGB, sim::toSeconds(r.detectionDelay),
      sim::toSeconds(r.recoveryDuration), r.peakCpuPct,
      r.meanPowerDuringRecoveryW, r.energyPerNodeDuringRecoveryJ,
      r.recovered ? 1 : 0, r.allKeysRecovered ? 1 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string what = argc > 1 ? argv[1] : "fig1";

  if (what == "fig1") {
    // Paper: 1 srv/30 cli ~372K; 5 srv linear; 10 srv == 5 srv (client cap).
    // Power: 1 cli ~92W, 10/30 cli ~122-127W. Table I CPU staircase.
    auto C = ycsb::WorkloadSpec::C(500'000);
    for (int srv : {1, 5, 10}) {
      for (int cli : {1, 10, 30}) probeYcsb("fig1", srv, cli, 0, C);
    }
    for (int cli : {1, 2, 3, 4, 5}) probeYcsb("table1", 1, cli, 0, C);
  } else if (what == "table2") {
    // Paper (10 srv): A: 98/106/64/63/64K; B: 236/454/622/816/844K;
    //                 C: 236/482/753/1433/2004K  at 10/20/30/60/90 cli.
    for (auto spec :
         {ycsb::WorkloadSpec::A(), ycsb::WorkloadSpec::B(),
          ycsb::WorkloadSpec::C()}) {
      for (int cli : {10, 20, 30, 60, 90}) {
        probeYcsb("table2", 10, cli, 0, spec);
      }
    }
  } else if (what == "fig5") {
    // Paper (20 srv, A): 10cli 78->43K rf1->4; 30/60 cli rf4 ~41/50K.
    for (int cli : {10, 30, 60}) {
      for (int rf : {1, 2, 3, 4}) {
        probeYcsb("fig5", 20, cli, rf, ycsb::WorkloadSpec::A());
      }
    }
  } else if (what == "fig6") {
    // Paper (60 cli, A): rf1: 128K@10srv -> 237K@40srv; 10srv rf>2 crashes.
    for (int srv : {10, 20, 30, 40}) {
      for (int rf : {1, 2, 3, 4}) {
        probeYcsb("fig6", srv, 60, rf, ycsb::WorkloadSpec::A());
      }
    }
  } else if (what == "recovery") {
    // Paper: 9 srv, ~1.085GB/srv, rf1->5: 10/~21/~32/~43/55 s.
    const std::uint64_t records =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10'000'000;
    for (int rf : {1, 2, 3, 4, 5}) probeRecovery(9, rf, records);
  } else if (what == "fig13") {
    for (double rate : {200.0, 500.0}) {
      for (int cli : {10, 30, 60}) {
        probeYcsb("fig13", 10, cli, 2, ycsb::WorkloadSpec::A(), rate);
      }
    }
  }
  return 0;
}
