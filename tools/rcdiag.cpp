// rcdiag — offline analyzer for a run directory produced with
// --metrics-dir: loads events.jsonl (the cluster's recovery/migration span
// tree) plus metrics.jsonl (1 Hz PDU watt samples) and prints
//
//   timeline  per-node ASCII swimlanes of every recovery's span tree
//   critical  the recovery's critical path (chain of latest-ending children)
//   phases    per-phase time/energy table: each node's PDU samples are
//             partitioned across that node's span intervals (innermost
//             active span wins, remainder -> steady_state), so the phase
//             energies sum to the PDU-integrated total by construction;
//             the span-recorded whole-node model joules are shown alongside
//   check     schema validation; exits non-zero on any violation (CI smoke)
//   report    timeline + critical + phases (default)
//
// Span semantics and the energy-attribution method are documented in
// docs/TRACING.md.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/event_journal.hpp"
#include "obs/metrics_exporter.hpp"
#include "sim/time.hpp"

namespace {

using rc::obs::EventJournal;
using rc::obs::MetricsExporter;
using Span = EventJournal::Span;

struct RunData {
  std::vector<Span> spans;
  std::unordered_map<std::uint64_t, const Span*> byId;
  /// node id -> 1 Hz PDU samples (t seconds, watts); sample at t covers
  /// [t - interval, t).
  std::map<int, std::vector<std::pair<double, double>>> pdu;
  double pduIntervalS = 1.0;
};

double t0s(const Span& s) { return rc::sim::toSeconds(s.begin); }
double t1s(const Span& s) {
  return rc::sim::toSeconds(s.open ? s.begin : s.end);
}

bool loadRun(const std::string& dir, RunData* out) {
  out->spans = EventJournal::readJsonl(dir + "/events.jsonl");
  if (out->spans.empty()) {
    std::fprintf(stderr, "rcdiag: no spans in %s/events.jsonl\n", dir.c_str());
    return false;
  }
  for (const Span& s : out->spans) out->byId[s.id] = &s;

  // PDU series are optional (energy columns degrade gracefully).
  for (const auto& rec : MetricsExporter::readJsonl(dir + "/metrics.jsonl")) {
    if (rec.type != "point") continue;
    constexpr const char* kPrefix = "node";
    constexpr const char* kSuffix = ".pdu.watts";
    if (rec.name.rfind(kPrefix, 0) != 0) continue;
    const auto dot = rec.name.find(kSuffix);
    if (dot == std::string::npos ||
        dot + std::strlen(kSuffix) != rec.name.size()) {
      continue;
    }
    const int node = std::atoi(rec.name.c_str() + std::strlen(kPrefix));
    out->pdu[node].emplace_back(rec.t, rec.value);
  }
  for (auto& [node, samples] : out->pdu) {
    std::sort(samples.begin(), samples.end());
  }
  return true;
}

std::vector<const Span*> recoveryRoots(const RunData& run) {
  std::vector<const Span*> roots;
  for (const Span& s : run.spans) {
    if (s.name == "recovery") roots.push_back(&s);
  }
  return roots;
}

/// All spans belonging to one recovery: same ctx, plus cross-node children
/// reachable by parent link (segment_read spans carry the ctx already).
std::vector<const Span*> spansOfRecovery(const RunData& run,
                                         const Span& root) {
  std::vector<const Span*> out;
  for (const Span& s : run.spans) {
    if (s.ctx == root.ctx && s.ctx != 0) out.push_back(&s);
  }
  return out;
}

// ----------------------------------------------------------------- timeline

void printTimeline(const RunData& run) {
  const auto roots = recoveryRoots(run);
  if (roots.empty()) {
    std::puts("timeline: no recovery spans in journal");
    return;
  }
  constexpr int kCols = 64;
  for (const Span* root : roots) {
    const auto spans = spansOfRecovery(run, *root);
    const double w0 = t0s(*root);
    double w1 = t1s(*root);
    for (const Span* s : spans) w1 = std::max(w1, t1s(*s));
    const double width = std::max(w1 - w0, 1e-9);

    std::printf("recovery #%llu  [%.3fs .. %.3fs]  (%.3fs, %zu spans)%s\n",
                static_cast<unsigned long long>(root->ctx), w0, w1, w1 - w0,
                spans.size(), root->abandoned ? "  FAILED" : "");
    std::map<int, std::vector<const Span*>> byNode;
    for (const Span* s : spans) byNode[s->node].push_back(s);
    for (auto& [node, list] : byNode) {
      std::sort(list.begin(), list.end(), [](const Span* a, const Span* b) {
        return a->begin != b->begin ? a->begin < b->begin : a->id < b->id;
      });
      std::printf("  node %-3d\n", node);
      for (const Span* s : list) {
        const double a = std::clamp((t0s(*s) - w0) / width, 0.0, 1.0);
        const double b = std::clamp((t1s(*s) - w0) / width, 0.0, 1.0);
        int x0 = static_cast<int>(a * kCols);
        int x1 = std::max(x0 + 1, static_cast<int>(b * kCols + 0.5));
        x1 = std::min(x1, kCols);
        std::string bar(static_cast<std::size_t>(kCols), ' ');
        for (int i = x0; i < x1; ++i) {
          bar[static_cast<std::size_t>(i)] = s->open ? '?' : '#';
        }
        std::printf("    %-20s |%s| %8.3fs%s\n",
                    s->name.size() > 20 ? s->name.substr(0, 20).c_str()
                                        : s->name.c_str(),
                    bar.c_str(), t1s(*s) - t0s(*s),
                    s->abandoned ? " (abandoned)" : "");
      }
    }
    std::puts("");
  }
}

// ------------------------------------------------------------ critical path

void printCriticalPath(const RunData& run) {
  const auto roots = recoveryRoots(run);
  if (roots.empty()) {
    std::puts("critical: no recovery spans in journal");
    return;
  }
  for (const Span* root : roots) {
    std::unordered_map<std::uint64_t, std::vector<const Span*>> children;
    for (const Span& s : run.spans) {
      if (s.parent != 0) children[s.parent].push_back(&s);
    }
    std::printf("critical path of recovery #%llu (total %.3fs):\n",
                static_cast<unsigned long long>(root->ctx),
                t1s(*root) - t0s(*root));
    const Span* cur = root;
    int depth = 0;
    while (cur != nullptr) {
      std::printf("  %*s%-20s node %-3d [%.3fs .. %.3fs]  %.3fs\n", depth * 2,
                  "", cur->name.c_str(), cur->node, t0s(*cur), t1s(*cur),
                  t1s(*cur) - t0s(*cur));
      // Descend into the latest-ending child: the phase that gated this
      // span's completion.
      const Span* next = nullptr;
      auto it = children.find(cur->id);
      if (it != children.end()) {
        for (const Span* c : it->second) {
          if (next == nullptr || t1s(*c) > t1s(*next)) next = c;
        }
      }
      cur = next;
      ++depth;
    }
    std::puts("");
  }
}

// ----------------------------------------------------------- energy/phases

struct PhaseRow {
  std::uint64_t spans = 0;
  double busyS = 0;    ///< sum of span durations (may overlap)
  double modelJ = 0;   ///< span-recorded whole-node model joules
  double pduJ = 0;     ///< non-overlapping PDU-sample attribution
  std::uint64_t bytes = 0;
};

/// Attribute one node's PDU energy over [winA, winB) to the innermost
/// active span's phase; un-covered time goes to "steady_state".
void attributeNode(const RunData& run, int node, double winA, double winB,
                   std::map<std::string, PhaseRow>* rows) {
  auto pit = run.pdu.find(node);
  if (pit == run.pdu.end()) return;

  std::vector<const Span*> nodeSpans;
  for (const Span& s : run.spans) {
    if (s.node == node && !s.open && t1s(s) > t0s(s)) nodeSpans.push_back(&s);
  }

  for (const auto& [t, watts] : pit->second) {
    // Sample at t covers [t - interval, t); clip the coverage to the
    // window (the window totals use the same clipping, so the per-phase
    // attribution sums to the window total exactly).
    const double a = std::max(t - run.pduIntervalS, winA);
    const double b = std::min(t, winB);
    if (b <= a) continue;

    // Split the interval at span boundaries.
    std::vector<double> cuts{a, b};
    for (const Span* s : nodeSpans) {
      if (t0s(*s) > a && t0s(*s) < b) cuts.push_back(t0s(*s));
      if (t1s(*s) > a && t1s(*s) < b) cuts.push_back(t1s(*s));
    }
    std::sort(cuts.begin(), cuts.end());
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      const double x = cuts[i];
      const double y = cuts[i + 1];
      if (y - x <= 0) continue;
      const double mid = (x + y) / 2;
      // Innermost active span: latest begin wins (ties -> later id).
      const Span* inner = nullptr;
      for (const Span* s : nodeSpans) {
        if (t0s(*s) <= mid && mid < t1s(*s)) {
          if (inner == nullptr || s->begin > inner->begin ||
              (s->begin == inner->begin && s->id > inner->id)) {
            inner = s;
          }
        }
      }
      const std::string phase = inner != nullptr ? inner->name : "steady_state";
      (*rows)[phase].pduJ += watts * (y - x);
    }
  }
}

void printPhases(const RunData& run) {
  const auto roots = recoveryRoots(run);
  if (roots.empty()) {
    std::puts("phases: no recovery spans in journal");
    return;
  }
  for (const Span* root : roots) {
    const auto spans = spansOfRecovery(run, *root);
    const double w0 = t0s(*root);
    double w1 = t1s(*root);
    for (const Span* s : spans) w1 = std::max(w1, t1s(*s));

    std::map<std::string, PhaseRow> rows;
    std::set<int> nodes;
    for (const Span* s : spans) {
      PhaseRow& r = rows[s->name];
      ++r.spans;
      r.busyS += t1s(*s) - t0s(*s);
      r.modelJ += s->joules;
      r.bytes += s->bytes;
      nodes.insert(s->node);
    }
    double pduTotal = 0;
    for (const auto& [node, samples] : run.pdu) {
      for (const auto& [t, watts] : samples) {
        const double overlap =
            std::min(t, w1) - std::max(t - run.pduIntervalS, w0);
        if (overlap > 0) pduTotal += watts * overlap;
      }
      attributeNode(run, node, w0, w1, &rows);
    }

    std::printf(
        "recovery #%llu  window [%.3fs .. %.3fs]  %zu nodes  "
        "pdu_total=%.1fJ\n",
        static_cast<unsigned long long>(root->ctx), w0, w1, nodes.size(),
        pduTotal);
    std::printf("  %-20s %6s %10s %12s %12s %12s\n", "phase", "spans",
                "busy_s", "bytes", "model_J", "pdu_J");
    double pduSum = 0;
    for (const auto& [phase, r] : rows) {
      std::printf("  %-20s %6llu %10.3f %12llu %12.1f %12.1f\n", phase.c_str(),
                  static_cast<unsigned long long>(r.spans), r.busyS,
                  static_cast<unsigned long long>(r.bytes), r.modelJ, r.pduJ);
      pduSum += r.pduJ;
    }
    const double delta =
        pduTotal > 0 ? 100.0 * (pduSum - pduTotal) / pduTotal : 0.0;
    std::printf("  %-20s %6s %10s %12s %12s %12.1f  (delta %.2f%%)\n", "SUM",
                "", "", "", "", pduSum, delta);
    std::puts("");
  }
}

// --------------------------------------------------------------------- slo

/// Minimal flat-JSONL field access (every slo.jsonl line is one flat
/// object, the same convention metrics.jsonl uses).
bool jsonNum(const std::string& line, const std::string& key, double* out) {
  const std::string pat = "\"" + key + "\":";
  const auto at = line.find(pat);
  if (at == std::string::npos) return false;
  *out = std::strtod(line.c_str() + at + pat.size(), nullptr);
  return true;
}

bool jsonStr(const std::string& line, const std::string& key,
             std::string* out) {
  const std::string pat = "\"" + key + "\":\"";
  const auto at = line.find(pat);
  if (at == std::string::npos) return false;
  const auto from = at + pat.size();
  const auto end = line.find('"', from);
  if (end == std::string::npos) return false;
  *out = line.substr(from, end - from);
  return true;
}

struct SloWindow {
  std::uint64_t window = 0;
  double t0 = 0, t1 = 0;  ///< seconds
  std::string cls;
  std::uint64_t count = 0;
  double p50 = 0, p99 = 0, p999 = 0;      ///< us
  double targetP99 = 0, targetP999 = 0;   ///< us
  double burn = 0;
  bool breached = false;
};

struct SloExemplar {
  std::uint64_t window = 0;
  std::string cls;
  int rank = 0;
  std::uint64_t span = 0;
  int node = -1;
  double us = 0;
};

struct SloStage {
  std::uint64_t span = 0;
  int seq = 0;
  std::string stage;
  double us = 0;
  int depth = -1;
  int node = -1;
};

int sloCmd(const std::string& dir) {
  std::ifstream is(dir + "/slo.jsonl");
  if (!is) {
    std::fprintf(stderr, "rcdiag: no slo.jsonl in %s (SLO tracking off?)\n",
                 dir.c_str());
    return 1;
  }
  std::vector<SloWindow> windows;
  std::vector<SloExemplar> exemplars;
  std::vector<SloStage> stages;
  std::string line;
  while (std::getline(is, line)) {
    std::string type;
    if (!jsonStr(line, "type", &type)) continue;
    double v = 0;
    if (type == "slo_window") {
      SloWindow w;
      if (jsonNum(line, "window", &v)) w.window = static_cast<std::uint64_t>(v);
      if (jsonNum(line, "t0_us", &v)) w.t0 = v / 1e6;
      if (jsonNum(line, "t1_us", &v)) w.t1 = v / 1e6;
      jsonStr(line, "class", &w.cls);
      if (jsonNum(line, "count", &v)) w.count = static_cast<std::uint64_t>(v);
      jsonNum(line, "p50_us", &w.p50);
      jsonNum(line, "p99_us", &w.p99);
      jsonNum(line, "p999_us", &w.p999);
      jsonNum(line, "target_p99_us", &w.targetP99);
      jsonNum(line, "target_p999_us", &w.targetP999);
      jsonNum(line, "burn_rate", &w.burn);
      if (jsonNum(line, "breached", &v)) w.breached = v != 0;
      windows.push_back(std::move(w));
    } else if (type == "exemplar") {
      SloExemplar e;
      if (jsonNum(line, "window", &v)) e.window = static_cast<std::uint64_t>(v);
      jsonStr(line, "class", &e.cls);
      if (jsonNum(line, "rank", &v)) e.rank = static_cast<int>(v);
      if (jsonNum(line, "span", &v)) e.span = static_cast<std::uint64_t>(v);
      if (jsonNum(line, "node", &v)) e.node = static_cast<int>(v);
      jsonNum(line, "us", &e.us);
      exemplars.push_back(std::move(e));
    } else if (type == "exemplar_stage") {
      SloStage s;
      if (jsonNum(line, "span", &v)) s.span = static_cast<std::uint64_t>(v);
      if (jsonNum(line, "seq", &v)) s.seq = static_cast<int>(v);
      jsonStr(line, "stage", &s.stage);
      jsonNum(line, "us", &s.us);
      if (jsonNum(line, "depth", &v)) s.depth = static_cast<int>(v);
      if (jsonNum(line, "node", &v)) s.node = static_cast<int>(v);
      stages.push_back(std::move(s));
    }
  }
  if (windows.empty()) {
    std::fprintf(stderr, "rcdiag: slo.jsonl has no slo_window lines\n");
    return 1;
  }

  // ---- per-class SLO table
  struct ClassAgg {
    std::uint64_t windows = 0, breached = 0, requests = 0;
    double worstBurn = 0;
    std::uint64_t worstWindow = 0;
  };
  std::map<std::string, ClassAgg> byClass;
  for (const SloWindow& w : windows) {
    ClassAgg& a = byClass[w.cls];
    ++a.windows;
    a.requests += w.count;
    if (w.breached) ++a.breached;
    if (w.burn > a.worstBurn) {
      a.worstBurn = w.burn;
      a.worstWindow = w.window;
    }
  }
  std::printf("SLO summary (%zu windows, %zu classes)\n", windows.size(),
              byClass.size());
  std::printf("  %-24s %8s %9s %10s %11s\n", "class", "windows", "breached",
              "requests", "worst_burn");
  for (const auto& [cls, a] : byClass) {
    std::printf("  %-24s %8llu %9llu %10llu %11.2f%s\n", cls.c_str(),
                static_cast<unsigned long long>(a.windows),
                static_cast<unsigned long long>(a.breached),
                static_cast<unsigned long long>(a.requests), a.worstBurn,
                a.breached > 0 ? "  BREACHED" : "");
  }

  // ---- burn-rate timeline: one char per window per class.
  //   '.' burn < 0.5   '+' [0.5, 1)   'X' >= 1 (breached)
  std::uint64_t wMin = windows.front().window;
  std::uint64_t wMax = windows.front().window;
  for (const SloWindow& w : windows) {
    wMin = std::min(wMin, w.window);
    wMax = std::max(wMax, w.window);
  }
  std::printf("\nburn-rate timeline (windows %llu..%llu; . <0.5, + <1, X "
              "breached, ' ' idle)\n",
              static_cast<unsigned long long>(wMin),
              static_cast<unsigned long long>(wMax));
  for (const auto& [cls, a] : byClass) {
    std::string bar(static_cast<std::size_t>(wMax - wMin + 1), ' ');
    for (const SloWindow& w : windows) {
      if (w.cls != cls) continue;
      bar[static_cast<std::size_t>(w.window - wMin)] =
          w.breached ? 'X' : (w.burn >= 0.5 ? '+' : '.');
    }
    std::printf("  %-24s |%s|\n", cls.c_str(), bar.c_str());
  }

  // ---- breached windows, slowest exemplar of each with its waterfall.
  std::puts("");
  bool anyBreach = false;
  for (const SloWindow& w : windows) {
    if (!w.breached) continue;
    anyBreach = true;
    std::printf(
        "breached window %llu [%.3fs..%.3fs] class %s: count=%llu "
        "p99=%.1fus (target %.1fus) p999=%.1fus (target %.1fus) burn=%.2f\n",
        static_cast<unsigned long long>(w.window), w.t0, w.t1, w.cls.c_str(),
        static_cast<unsigned long long>(w.count), w.p99, w.targetP99, w.p999,
        w.targetP999, w.burn);
    for (const SloExemplar& e : exemplars) {
      if (e.window != w.window || e.cls != w.cls) continue;
      std::printf("  exemplar #%d  span %llu  node %d  %.3fus\n", e.rank,
                  static_cast<unsigned long long>(e.span), e.node, e.us);
      // Waterfall: the span's stages in stamp order, bar-scaled to the
      // exemplar total; their sum must equal the span duration (the
      // exemplar-sum acceptance check in bench_fig05 asserts <1us slack).
      double sum = 0;
      for (const SloStage& s : stages) {
        if (s.span != e.span) continue;
        sum += s.us;
        const int bars =
            e.us > 0 ? static_cast<int>(32.0 * s.us / e.us + 0.5) : 0;
        std::printf("    %-18s %10.3fus  depth=%-3d node=%-3d |%s\n",
                    s.stage.c_str(), s.us, s.depth, s.node,
                    std::string(static_cast<std::size_t>(bars), '#').c_str());
      }
      if (sum > 0) {
        std::printf("    %-18s %10.3fus  (vs span %.3fus, delta %.3fus)\n",
                    "SUM", sum, e.us, e.us - sum);
      }
    }
  }
  if (!anyBreach) std::puts("no breached windows — all SLOs held");
  return 0;
}

// ------------------------------------------------------------------- check

int checkRun(const std::string& dir) {
  RunData run;
  if (!loadRun(dir, &run)) return 1;
  int violations = 0;
  auto fail = [&violations](const char* fmt, unsigned long long a) {
    std::fprintf(stderr, "check: ");
    std::fprintf(stderr, fmt, a);
    std::fprintf(stderr, "\n");
    ++violations;
  };

  std::set<std::uint64_t> ids;
  for (const Span& s : run.spans) {
    if (s.id == 0) fail("span with id 0", 0);
    if (!ids.insert(s.id).second) fail("duplicate span id %llu", s.id);
  }
  for (const Span& s : run.spans) {
    if (s.name.empty()) fail("span %llu has empty name", s.id);
    if (s.node < 0) fail("span %llu has invalid node", s.id);
    if (s.parent != 0 && ids.find(s.parent) == ids.end()) {
      fail("span %llu references unknown parent", s.id);
    }
    // A child may *begin* before its parent (failure_detection starts at
    // the first missed ping, before the recovery root exists), but a
    // closed span must not end before it begins.
    if (!s.open && s.end < s.begin) {
      fail("span %llu ends before it begins", s.id);
    }
    if (s.open && s.abandoned) {
      fail("span %llu is both open and abandoned", s.id);
    }
  }
  // Every recovery root must have children covering at least the
  // coordinator-side phases.
  for (const Span* root : recoveryRoots(run)) {
    std::set<std::string> phases;
    for (const Span& s : run.spans) {
      if (s.ctx == root->ctx && s.id != root->id) phases.insert(s.name);
    }
    if (phases.empty()) {
      fail("recovery #%llu has no child phases", root->ctx);
    }
  }

  // metrics.jsonl (when present) must parse into typed records.
  const auto recs = MetricsExporter::readJsonl(dir + "/metrics.jsonl");
  for (const auto& rec : recs) {
    if (rec.type != "counter" && rec.type != "gauge" &&
        rec.type != "histogram" && rec.type != "point" &&
        rec.type != "trace") {
      std::fprintf(stderr, "check: unknown record type '%s' in metrics.jsonl\n",
                   rec.type.c_str());
      ++violations;
    }
  }

  if (violations == 0) {
    std::printf("check: OK (%zu spans, %zu metric records)\n",
                run.spans.size(), recs.size());
    return 0;
  }
  std::fprintf(stderr, "check: %d violation(s)\n", violations);
  return 1;
}

void usage() {
  std::puts(
      "rcdiag — recovery/migration journal analyzer\n"
      "\n"
      "  rcdiag [timeline|critical|phases|check|slo|report] DIR\n"
      "\n"
      "DIR is a --metrics-dir run directory (events.jsonl [+ metrics.jsonl]).\n"
      "slo reads DIR/slo.jsonl (runs with declared SLO classes).\n"
      "Default command is report (timeline + critical + phases).\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string cmd = "report";
  std::string dir;
  if (argc == 2) {
    dir = argv[1];
  } else if (argc == 3) {
    cmd = argv[1];
    dir = argv[2];
  } else {
    usage();
    return 2;
  }
  if (cmd == "check") return checkRun(dir);
  if (cmd == "slo") return sloCmd(dir);

  RunData run;
  if (!loadRun(dir, &run)) return 1;
  if (cmd == "timeline") {
    printTimeline(run);
  } else if (cmd == "critical") {
    printCriticalPath(run);
  } else if (cmd == "phases") {
    printPhases(run);
  } else if (cmd == "report") {
    printTimeline(run);
    printCriticalPath(run);
    printPhases(run);
  } else {
    usage();
    return 2;
  }
  return 0;
}
