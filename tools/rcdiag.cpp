// rcdiag — offline analyzer for a run directory produced with
// --metrics-dir: loads events.jsonl (the cluster's recovery/migration span
// tree) plus metrics.jsonl (1 Hz PDU watt samples) and prints
//
//   timeline  per-node ASCII swimlanes of every recovery's span tree
//   critical  the recovery's critical path (chain of latest-ending children)
//   phases    per-phase time/energy table: each node's PDU samples are
//             partitioned across that node's span intervals (innermost
//             active span wins, remainder -> steady_state), so the phase
//             energies sum to the PDU-integrated total by construction;
//             the span-recorded whole-node model joules are shown alongside
//   tx        minitransaction span summary (prepare/decision phases plus
//             one line per orphan resolution and its outcome)
//   overload  admission-control summary: per-node overload episodes (from
//             overload_enter/exit journal events) + shed/bounce/deferral
//             counters from metrics.jsonl (docs/OVERLOAD.md)
//   qos       per-tenant dispatch token-bucket summary: offered/admitted/
//             throttled/episodes per tenant and per throttling node
//             (docs/WORKLOADS.md)
//   check     schema validation; exits non-zero on any violation (CI smoke)
//   report    timeline + critical + phases + tx + overload + qos (default)
//
// Span semantics and the energy-attribution method are documented in
// docs/TRACING.md.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/event_journal.hpp"
#include "obs/metrics_exporter.hpp"
#include "sim/time.hpp"

namespace {

using rc::obs::EventJournal;
using rc::obs::MetricsExporter;
using Span = EventJournal::Span;

struct RunData {
  std::vector<Span> spans;
  std::unordered_map<std::uint64_t, const Span*> byId;
  /// node id -> 1 Hz PDU samples (t seconds, watts); sample at t covers
  /// [t - interval, t).
  std::map<int, std::vector<std::pair<double, double>>> pdu;
  double pduIntervalS = 1.0;
};

double t0s(const Span& s) { return rc::sim::toSeconds(s.begin); }
double t1s(const Span& s) {
  return rc::sim::toSeconds(s.open ? s.begin : s.end);
}

bool loadRun(const std::string& dir, RunData* out) {
  out->spans = EventJournal::readJsonl(dir + "/events.jsonl");
  if (out->spans.empty()) {
    std::fprintf(stderr, "rcdiag: no spans in %s/events.jsonl\n", dir.c_str());
    return false;
  }
  for (const Span& s : out->spans) out->byId[s.id] = &s;

  // PDU series are optional (energy columns degrade gracefully).
  for (const auto& rec : MetricsExporter::readJsonl(dir + "/metrics.jsonl")) {
    if (rec.type != "point") continue;
    constexpr const char* kPrefix = "node";
    constexpr const char* kSuffix = ".pdu.watts";
    if (rec.name.rfind(kPrefix, 0) != 0) continue;
    const auto dot = rec.name.find(kSuffix);
    if (dot == std::string::npos ||
        dot + std::strlen(kSuffix) != rec.name.size()) {
      continue;
    }
    const int node = std::atoi(rec.name.c_str() + std::strlen(kPrefix));
    out->pdu[node].emplace_back(rec.t, rec.value);
  }
  for (auto& [node, samples] : out->pdu) {
    std::sort(samples.begin(), samples.end());
  }
  return true;
}

std::vector<const Span*> recoveryRoots(const RunData& run) {
  std::vector<const Span*> roots;
  for (const Span& s : run.spans) {
    if (s.name == "recovery") roots.push_back(&s);
  }
  return roots;
}

/// All spans belonging to one recovery: same ctx, plus cross-node children
/// reachable by parent link (segment_read spans carry the ctx already).
std::vector<const Span*> spansOfRecovery(const RunData& run,
                                         const Span& root) {
  std::vector<const Span*> out;
  for (const Span& s : run.spans) {
    if (s.ctx == root.ctx && s.ctx != 0) out.push_back(&s);
  }
  return out;
}

// ----------------------------------------------------------------- timeline

void printTimeline(const RunData& run) {
  const auto roots = recoveryRoots(run);
  if (roots.empty()) {
    std::puts("timeline: no recovery spans in journal");
    return;
  }
  constexpr int kCols = 64;
  for (const Span* root : roots) {
    const auto spans = spansOfRecovery(run, *root);
    const double w0 = t0s(*root);
    double w1 = t1s(*root);
    for (const Span* s : spans) w1 = std::max(w1, t1s(*s));
    const double width = std::max(w1 - w0, 1e-9);

    std::printf("recovery #%llu  [%.3fs .. %.3fs]  (%.3fs, %zu spans)%s\n",
                static_cast<unsigned long long>(root->ctx), w0, w1, w1 - w0,
                spans.size(), root->abandoned ? "  FAILED" : "");
    std::map<int, std::vector<const Span*>> byNode;
    for (const Span* s : spans) byNode[s->node].push_back(s);
    for (auto& [node, list] : byNode) {
      std::sort(list.begin(), list.end(), [](const Span* a, const Span* b) {
        return a->begin != b->begin ? a->begin < b->begin : a->id < b->id;
      });
      std::printf("  node %-3d\n", node);
      for (const Span* s : list) {
        const double a = std::clamp((t0s(*s) - w0) / width, 0.0, 1.0);
        const double b = std::clamp((t1s(*s) - w0) / width, 0.0, 1.0);
        int x0 = static_cast<int>(a * kCols);
        int x1 = std::max(x0 + 1, static_cast<int>(b * kCols + 0.5));
        x1 = std::min(x1, kCols);
        std::string bar(static_cast<std::size_t>(kCols), ' ');
        for (int i = x0; i < x1; ++i) {
          bar[static_cast<std::size_t>(i)] = s->open ? '?' : '#';
        }
        std::printf("    %-20s |%s| %8.3fs%s\n",
                    s->name.size() > 20 ? s->name.substr(0, 20).c_str()
                                        : s->name.c_str(),
                    bar.c_str(), t1s(*s) - t0s(*s),
                    s->abandoned ? " (abandoned)" : "");
      }
    }
    std::puts("");
  }
}

// ------------------------------------------------------------ tx spans

/// Minitransaction spans (docs/TRANSACTIONS.md): tx_prepare / tx_commit /
/// tx_abort on participant masters and tx_resolution on the coordinator,
/// all carrying ctx = txId. Prints a per-phase summary plus one line per
/// resolution (the interesting ones: orphaned transactions being driven
/// to an outcome).
void printTxSummary(const RunData& run) {
  struct Agg {
    std::uint64_t n = 0;
    std::uint64_t abandoned = 0;
    double sumS = 0;
    double maxS = 0;
  };
  std::map<std::string, Agg> byName;
  std::vector<const Span*> resolutions;
  for (const Span& s : run.spans) {
    if (s.name != "tx_prepare" && s.name != "tx_commit" &&
        s.name != "tx_abort" && s.name != "tx_resolution") {
      continue;
    }
    Agg& a = byName[s.name];
    ++a.n;
    if (s.abandoned) ++a.abandoned;
    const double d = t1s(s) - t0s(s);
    a.sumS += d;
    a.maxS = std::max(a.maxS, d);
    if (s.name == "tx_resolution") resolutions.push_back(&s);
  }
  if (byName.empty()) {
    std::puts("tx: no transaction spans in journal");
    return;
  }
  std::printf("tx spans:\n%-16s %8s %10s %10s %10s\n", "phase", "count",
              "mean_ms", "max_ms", "abandoned");
  for (const auto& [name, a] : byName) {
    std::printf("%-16s %8llu %10.3f %10.3f %10llu\n", name.c_str(),
                static_cast<unsigned long long>(a.n),
                a.n > 0 ? 1e3 * a.sumS / static_cast<double>(a.n) : 0.0,
                1e3 * a.maxS, static_cast<unsigned long long>(a.abandoned));
  }
  if (!resolutions.empty()) {
    std::puts("orphan resolutions (count: 1 = committed, 0 = aborted):");
    for (const Span* s : resolutions) {
      std::printf("  tx %-12llu node %-3d [%.3fs .. %.3fs]  %s\n",
                  static_cast<unsigned long long>(s->ctx), s->node, t0s(*s),
                  t1s(*s),
                  s->abandoned ? "abandoned"
                  : s->open    ? "open"
                  : s->count   ? "committed"
                               : "aborted");
    }
  }
  std::puts("");
}

// ------------------------------------------------------------- overload

/// Admission-control summary (docs/OVERLOAD.md): per-node overload
/// episodes reconstructed from the journal's overload_enter/overload_exit
/// instant events, plus the final shed/bounce/deferral counters from
/// metrics.jsonl. Quiet runs print a single all-clear line.
void printOverload(const RunData& run, const std::string& dir) {
  // Pair enter/exit events per node, in time order (spans_ is begin-ordered
  // so a linear scan suffices).
  struct NodeOverload {
    int episodes = 0;
    double overloadedS = 0;
    double openSince = -1;  ///< -1 = not currently overloaded
  };
  std::map<int, NodeOverload> byNode;
  double lastT = 0;
  int surges = 0;
  for (const Span& s : run.spans) {
    lastT = std::max(lastT, t1s(s));
    if (s.name == "fault_load_surge") ++surges;
    if (s.name == "overload_enter") {
      NodeOverload& n = byNode[s.node];
      if (n.openSince < 0) {
        ++n.episodes;
        n.openSince = t0s(s);
      }
    } else if (s.name == "overload_exit") {
      NodeOverload& n = byNode[s.node];
      if (n.openSince >= 0) {
        n.overloadedS += t0s(s) - n.openSince;
        n.openSince = -1;
      }
    }
  }
  for (auto& [node, n] : byNode) {
    if (n.openSince >= 0) {  // still overloaded at end of run
      n.overloadedS += lastT - n.openSince;
      n.openSince = -1;
    }
  }

  // Final counter values (cumulative; the exporter writes them once).
  std::map<std::string, double> counters;
  for (const auto& rec : MetricsExporter::readJsonl(dir + "/metrics.jsonl")) {
    if (rec.type == "counter" || rec.type == "gauge") {
      counters[rec.name] = rec.value;
    }
  }
  auto counter = [&counters](const std::string& name) {
    const auto it = counters.find(name);
    return it == counters.end() ? 0.0 : it->second;
  };
  const double shed = counter("cluster.shed_requests");
  const double bounced = counter("net.rpc.overloaded.total");
  const double brownouts = counter("slo.exemplar_brownouts");

  if (byNode.empty() && shed == 0 && bounced == 0 && surges == 0) {
    std::puts("overload: no shedding — no server entered overload\n");
    return;
  }

  std::printf("overload summary (%d load-surge injections)\n", surges);
  std::printf("  cluster: shed %.0f requests, %.0f client bounces, "
              "%.0f exemplar brownouts\n", shed, bounced, brownouts);
  std::printf("  %-5s %9s %12s %10s %10s %10s %10s %10s\n", "node",
              "episodes", "overloaded_s", "shed", "reads", "writes",
              "cln_defer", "rep_defer");
  // Per-node rows: every node with an episode or a non-zero shed counter.
  std::set<int> nodes;
  for (const auto& [node, n] : byNode) nodes.insert(node);
  for (const auto& [name, v] : counters) {
    if (v > 0 && name.rfind("node", 0) == 0 &&
        name.find(".dispatch.shed.total") != std::string::npos) {
      nodes.insert(std::atoi(name.c_str() + 4));
    }
  }
  for (int node : nodes) {
    const std::string p = "node" + std::to_string(node);
    const auto it = byNode.find(node);
    std::printf("  %-5d %9d %12.3f %10.0f %10.0f %10.0f %10.0f %10.0f\n",
                node, it != byNode.end() ? it->second.episodes : 0,
                it != byNode.end() ? it->second.overloadedS : 0.0,
                counter(p + ".dispatch.shed.total"),
                counter(p + ".dispatch.shed.reads"),
                counter(p + ".dispatch.shed.writes"),
                counter(p + ".master.cleaner_deferrals"),
                counter(p + ".master.replication.repairs_deferred"));
  }
  std::puts("");
}

// ------------------------------------------------------------------- qos

/// Per-tenant QoS summary (docs/WORKLOADS.md): the dispatch token-bucket
/// counters node<N>.dispatch.qos.<tenant>.{offered,admitted,throttled,
/// episodes} from metrics.jsonl, rolled up per tenant and per node, plus
/// the journal's qos_throttle episode markers. Runs without QoS policies
/// print a single all-clear line.
void printTenantQos(const RunData& run, const std::string& dir) {
  struct QosAgg {
    double offered = 0;
    double admitted = 0;
    double throttled = 0;
    double episodes = 0;
  };
  // (tenant, node) -> counters; node -1 aggregates the tenant.
  std::map<std::pair<std::string, int>, QosAgg> agg;
  for (const auto& rec : MetricsExporter::readJsonl(dir + "/metrics.jsonl")) {
    if (rec.type != "counter" && rec.type != "gauge") continue;
    if (rec.name.rfind("node", 0) != 0) continue;
    const auto qat = rec.name.find(".dispatch.qos.");
    if (qat == std::string::npos) continue;
    const int node = std::atoi(rec.name.c_str() + 4);
    const auto from = qat + std::strlen(".dispatch.qos.");
    const auto dot = rec.name.rfind('.');
    if (dot == std::string::npos || dot <= from) continue;
    const std::string tenant = rec.name.substr(from, dot - from);
    const std::string which = rec.name.substr(dot + 1);
    for (auto* a : {&agg[{tenant, node}], &agg[{tenant, -1}]}) {
      if (which == "offered") a->offered += rec.value;
      else if (which == "admitted") a->admitted += rec.value;
      else if (which == "throttled") a->throttled += rec.value;
      else if (which == "episodes") a->episodes += rec.value;
    }
  }
  if (agg.empty()) {
    std::puts("qos: no per-tenant dispatch policies in this run\n");
    return;
  }
  int markers = 0;
  for (const Span& s : run.spans) {
    if (s.name == "qos_throttle") ++markers;
  }
  std::printf("per-tenant QoS (dispatch token buckets; %d throttle-episode "
              "journal markers)\n", markers);
  std::printf("  %-16s %-5s %10s %10s %10s %9s %8s\n", "tenant", "node",
              "offered", "admitted", "throttled", "episodes", "thr%");
  for (const auto& [key, a] : agg) {
    const auto& [tenant, node] = key;
    if (node != -1) continue;  // tenant rollups first
    std::printf("  %-16s %-5s %10.0f %10.0f %10.0f %9.0f %7.1f%%\n",
                tenant.c_str(), "all", a.offered, a.admitted, a.throttled,
                a.episodes,
                a.offered > 0 ? 100.0 * a.throttled / a.offered : 0.0);
  }
  for (const auto& [key, a] : agg) {
    const auto& [tenant, node] = key;
    if (node == -1 || a.throttled <= 0) continue;  // throttling nodes only
    std::printf("  %-16s %-5d %10.0f %10.0f %10.0f %9.0f %7.1f%%\n",
                tenant.c_str(), node, a.offered, a.admitted, a.throttled,
                a.episodes,
                a.offered > 0 ? 100.0 * a.throttled / a.offered : 0.0);
  }
  std::puts("");
}

// ------------------------------------------------------------ critical path

void printCriticalPath(const RunData& run) {
  const auto roots = recoveryRoots(run);
  if (roots.empty()) {
    std::puts("critical: no recovery spans in journal");
    return;
  }
  for (const Span* root : roots) {
    std::unordered_map<std::uint64_t, std::vector<const Span*>> children;
    for (const Span& s : run.spans) {
      if (s.parent != 0) children[s.parent].push_back(&s);
    }
    std::printf("critical path of recovery #%llu (total %.3fs):\n",
                static_cast<unsigned long long>(root->ctx),
                t1s(*root) - t0s(*root));
    const Span* cur = root;
    int depth = 0;
    while (cur != nullptr) {
      std::printf("  %*s%-20s node %-3d [%.3fs .. %.3fs]  %.3fs\n", depth * 2,
                  "", cur->name.c_str(), cur->node, t0s(*cur), t1s(*cur),
                  t1s(*cur) - t0s(*cur));
      // Descend into the latest-ending child: the phase that gated this
      // span's completion.
      const Span* next = nullptr;
      auto it = children.find(cur->id);
      if (it != children.end()) {
        for (const Span* c : it->second) {
          if (next == nullptr || t1s(*c) > t1s(*next)) next = c;
        }
      }
      cur = next;
      ++depth;
    }
    std::puts("");
  }
}

// ----------------------------------------------------------- energy/phases

struct PhaseRow {
  std::uint64_t spans = 0;
  double busyS = 0;    ///< sum of span durations (may overlap)
  double modelJ = 0;   ///< span-recorded whole-node model joules
  double pduJ = 0;     ///< non-overlapping PDU-sample attribution
  std::uint64_t bytes = 0;
};

/// Attribute one node's PDU energy over [winA, winB) to the innermost
/// active span's phase; un-covered time goes to "steady_state".
void attributeNode(const RunData& run, int node, double winA, double winB,
                   std::map<std::string, PhaseRow>* rows) {
  auto pit = run.pdu.find(node);
  if (pit == run.pdu.end()) return;

  std::vector<const Span*> nodeSpans;
  for (const Span& s : run.spans) {
    if (s.node == node && !s.open && t1s(s) > t0s(s)) nodeSpans.push_back(&s);
  }

  double prev = pit->second.empty()
                    ? 0.0
                    : pit->second.front().first - run.pduIntervalS;
  for (const auto& [t, watts] : pit->second) {
    // Sample at t covers (prev, t] — the *actual* inter-sample gap, not
    // the nominal interval: the final stop() sample may cover a fraction
    // of a second. Clip the coverage to the window (the window totals use
    // the same gaps, so per-phase attribution sums to the window total).
    const double a = std::max(prev, winA);
    const double b = std::min(t, winB);
    prev = t;
    if (b <= a) continue;

    // Split the interval at span boundaries.
    std::vector<double> cuts{a, b};
    for (const Span* s : nodeSpans) {
      if (t0s(*s) > a && t0s(*s) < b) cuts.push_back(t0s(*s));
      if (t1s(*s) > a && t1s(*s) < b) cuts.push_back(t1s(*s));
    }
    std::sort(cuts.begin(), cuts.end());
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      const double x = cuts[i];
      const double y = cuts[i + 1];
      if (y - x <= 0) continue;
      const double mid = (x + y) / 2;
      // Innermost active span: latest begin wins (ties -> later id).
      const Span* inner = nullptr;
      for (const Span* s : nodeSpans) {
        if (t0s(*s) <= mid && mid < t1s(*s)) {
          if (inner == nullptr || s->begin > inner->begin ||
              (s->begin == inner->begin && s->id > inner->id)) {
            inner = s;
          }
        }
      }
      const std::string phase = inner != nullptr ? inner->name : "steady_state";
      (*rows)[phase].pduJ += watts * (y - x);
    }
  }
}

void printPhases(const RunData& run) {
  const auto roots = recoveryRoots(run);
  if (roots.empty()) {
    std::puts("phases: no recovery spans in journal");
    return;
  }
  for (const Span* root : roots) {
    const auto spans = spansOfRecovery(run, *root);
    const double w0 = t0s(*root);
    double w1 = t1s(*root);
    for (const Span* s : spans) w1 = std::max(w1, t1s(*s));

    std::map<std::string, PhaseRow> rows;
    std::set<int> nodes;
    for (const Span* s : spans) {
      PhaseRow& r = rows[s->name];
      ++r.spans;
      r.busyS += t1s(*s) - t0s(*s);
      r.modelJ += s->joules;
      r.bytes += s->bytes;
      nodes.insert(s->node);
    }
    double pduTotal = 0;
    for (const auto& [node, samples] : run.pdu) {
      double prev =
          samples.empty() ? 0.0 : samples.front().first - run.pduIntervalS;
      for (const auto& [t, watts] : samples) {
        const double overlap = std::min(t, w1) - std::max(prev, w0);
        prev = t;
        if (overlap > 0) pduTotal += watts * overlap;
      }
      attributeNode(run, node, w0, w1, &rows);
    }

    std::printf(
        "recovery #%llu  window [%.3fs .. %.3fs]  %zu nodes  "
        "pdu_total=%.1fJ\n",
        static_cast<unsigned long long>(root->ctx), w0, w1, nodes.size(),
        pduTotal);
    std::printf("  %-20s %6s %10s %12s %12s %12s\n", "phase", "spans",
                "busy_s", "bytes", "model_J", "pdu_J");
    double pduSum = 0;
    for (const auto& [phase, r] : rows) {
      std::printf("  %-20s %6llu %10.3f %12llu %12.1f %12.1f\n", phase.c_str(),
                  static_cast<unsigned long long>(r.spans), r.busyS,
                  static_cast<unsigned long long>(r.bytes), r.modelJ, r.pduJ);
      pduSum += r.pduJ;
    }
    const double delta =
        pduTotal > 0 ? 100.0 * (pduSum - pduTotal) / pduTotal : 0.0;
    std::printf("  %-20s %6s %10s %12s %12s %12.1f  (delta %.2f%%)\n", "SUM",
                "", "", "", "", pduSum, delta);
    std::puts("");
  }
}

// --------------------------------------------------------------------- slo

/// Minimal flat-JSONL field access (every slo.jsonl line is one flat
/// object, the same convention metrics.jsonl uses).
bool jsonNum(const std::string& line, const std::string& key, double* out) {
  const std::string pat = "\"" + key + "\":";
  const auto at = line.find(pat);
  if (at == std::string::npos) return false;
  *out = std::strtod(line.c_str() + at + pat.size(), nullptr);
  return true;
}

bool jsonStr(const std::string& line, const std::string& key,
             std::string* out) {
  const std::string pat = "\"" + key + "\":\"";
  const auto at = line.find(pat);
  if (at == std::string::npos) return false;
  const auto from = at + pat.size();
  const auto end = line.find('"', from);
  if (end == std::string::npos) return false;
  *out = line.substr(from, end - from);
  return true;
}

struct SloWindow {
  std::uint64_t window = 0;
  double t0 = 0, t1 = 0;  ///< seconds
  std::string cls;
  std::uint64_t count = 0;
  double p50 = 0, p99 = 0, p999 = 0;      ///< us
  double targetP99 = 0, targetP999 = 0;   ///< us
  double burn = 0;
  bool breached = false;
};

struct SloExemplar {
  std::uint64_t window = 0;
  std::string cls;
  int rank = 0;
  std::uint64_t span = 0;
  int node = -1;
  double us = 0;
};

struct SloStage {
  std::uint64_t span = 0;
  int seq = 0;
  std::string stage;
  double us = 0;
  int depth = -1;
  int node = -1;
};

int sloCmd(const std::string& dir) {
  std::ifstream is(dir + "/slo.jsonl");
  if (!is) {
    std::fprintf(stderr, "rcdiag: no slo.jsonl in %s (SLO tracking off?)\n",
                 dir.c_str());
    return 1;
  }
  std::vector<SloWindow> windows;
  std::vector<SloExemplar> exemplars;
  std::vector<SloStage> stages;
  std::string line;
  while (std::getline(is, line)) {
    std::string type;
    if (!jsonStr(line, "type", &type)) continue;
    double v = 0;
    if (type == "slo_window") {
      SloWindow w;
      if (jsonNum(line, "window", &v)) w.window = static_cast<std::uint64_t>(v);
      if (jsonNum(line, "t0_us", &v)) w.t0 = v / 1e6;
      if (jsonNum(line, "t1_us", &v)) w.t1 = v / 1e6;
      jsonStr(line, "class", &w.cls);
      if (jsonNum(line, "count", &v)) w.count = static_cast<std::uint64_t>(v);
      jsonNum(line, "p50_us", &w.p50);
      jsonNum(line, "p99_us", &w.p99);
      jsonNum(line, "p999_us", &w.p999);
      jsonNum(line, "target_p99_us", &w.targetP99);
      jsonNum(line, "target_p999_us", &w.targetP999);
      jsonNum(line, "burn_rate", &w.burn);
      if (jsonNum(line, "breached", &v)) w.breached = v != 0;
      windows.push_back(std::move(w));
    } else if (type == "exemplar") {
      SloExemplar e;
      if (jsonNum(line, "window", &v)) e.window = static_cast<std::uint64_t>(v);
      jsonStr(line, "class", &e.cls);
      if (jsonNum(line, "rank", &v)) e.rank = static_cast<int>(v);
      if (jsonNum(line, "span", &v)) e.span = static_cast<std::uint64_t>(v);
      if (jsonNum(line, "node", &v)) e.node = static_cast<int>(v);
      jsonNum(line, "us", &e.us);
      exemplars.push_back(std::move(e));
    } else if (type == "exemplar_stage") {
      SloStage s;
      if (jsonNum(line, "span", &v)) s.span = static_cast<std::uint64_t>(v);
      if (jsonNum(line, "seq", &v)) s.seq = static_cast<int>(v);
      jsonStr(line, "stage", &s.stage);
      jsonNum(line, "us", &s.us);
      if (jsonNum(line, "depth", &v)) s.depth = static_cast<int>(v);
      if (jsonNum(line, "node", &v)) s.node = static_cast<int>(v);
      stages.push_back(std::move(s));
    }
  }
  if (windows.empty()) {
    std::fprintf(stderr, "rcdiag: slo.jsonl has no slo_window lines\n");
    return 1;
  }

  // ---- per-class SLO table
  struct ClassAgg {
    std::uint64_t windows = 0, breached = 0, requests = 0;
    double worstBurn = 0;
    std::uint64_t worstWindow = 0;
  };
  std::map<std::string, ClassAgg> byClass;
  for (const SloWindow& w : windows) {
    ClassAgg& a = byClass[w.cls];
    ++a.windows;
    a.requests += w.count;
    if (w.breached) ++a.breached;
    if (w.burn > a.worstBurn) {
      a.worstBurn = w.burn;
      a.worstWindow = w.window;
    }
  }
  std::printf("SLO summary (%zu windows, %zu classes)\n", windows.size(),
              byClass.size());
  std::printf("  %-24s %8s %9s %10s %11s\n", "class", "windows", "breached",
              "requests", "worst_burn");
  for (const auto& [cls, a] : byClass) {
    std::printf("  %-24s %8llu %9llu %10llu %11.2f%s\n", cls.c_str(),
                static_cast<unsigned long long>(a.windows),
                static_cast<unsigned long long>(a.breached),
                static_cast<unsigned long long>(a.requests), a.worstBurn,
                a.breached > 0 ? "  BREACHED" : "");
  }

  // ---- burn-rate timeline: one char per window per class.
  //   '.' burn < 0.5   '+' [0.5, 1)   'X' >= 1 (breached)
  std::uint64_t wMin = windows.front().window;
  std::uint64_t wMax = windows.front().window;
  for (const SloWindow& w : windows) {
    wMin = std::min(wMin, w.window);
    wMax = std::max(wMax, w.window);
  }
  std::printf("\nburn-rate timeline (windows %llu..%llu; . <0.5, + <1, X "
              "breached, ' ' idle)\n",
              static_cast<unsigned long long>(wMin),
              static_cast<unsigned long long>(wMax));
  for (const auto& [cls, a] : byClass) {
    std::string bar(static_cast<std::size_t>(wMax - wMin + 1), ' ');
    for (const SloWindow& w : windows) {
      if (w.cls != cls) continue;
      bar[static_cast<std::size_t>(w.window - wMin)] =
          w.breached ? 'X' : (w.burn >= 0.5 ? '+' : '.');
    }
    std::printf("  %-24s |%s|\n", cls.c_str(), bar.c_str());
  }

  // ---- breached windows, slowest exemplar of each with its waterfall.
  std::puts("");
  bool anyBreach = false;
  for (const SloWindow& w : windows) {
    if (!w.breached) continue;
    anyBreach = true;
    std::printf(
        "breached window %llu [%.3fs..%.3fs] class %s: count=%llu "
        "p99=%.1fus (target %.1fus) p999=%.1fus (target %.1fus) burn=%.2f\n",
        static_cast<unsigned long long>(w.window), w.t0, w.t1, w.cls.c_str(),
        static_cast<unsigned long long>(w.count), w.p99, w.targetP99, w.p999,
        w.targetP999, w.burn);
    for (const SloExemplar& e : exemplars) {
      if (e.window != w.window || e.cls != w.cls) continue;
      std::printf("  exemplar #%d  span %llu  node %d  %.3fus\n", e.rank,
                  static_cast<unsigned long long>(e.span), e.node, e.us);
      // Waterfall: the span's stages in stamp order, bar-scaled to the
      // exemplar total; their sum must equal the span duration (the
      // exemplar-sum acceptance check in bench_fig05 asserts <1us slack).
      double sum = 0;
      for (const SloStage& s : stages) {
        if (s.span != e.span) continue;
        sum += s.us;
        const int bars =
            e.us > 0 ? static_cast<int>(32.0 * s.us / e.us + 0.5) : 0;
        std::printf("    %-18s %10.3fus  depth=%-3d node=%-3d |%s\n",
                    s.stage.c_str(), s.us, s.depth, s.node,
                    std::string(static_cast<std::size_t>(bars), '#').c_str());
      }
      if (sum > 0) {
        std::printf("    %-18s %10.3fus  (vs span %.3fus, delta %.3fus)\n",
                    "SUM", sum, e.us, e.us - sum);
      }
    }
  }
  if (!anyBreach) std::puts("no breached windows — all SLOs held");
  return 0;
}

// ------------------------------------------------------------------ energy

constexpr const char* kComponents[] = {"cpu", "dram", "nic", "disk",
                                       "platform"};
constexpr std::size_t kNumComponents = 5;

struct EnergyNode {
  int node = -1;
  double seconds = 0;
  double comp[kNumComponents] = {};
  double totalJ = 0;
  double pduJ = 0;
  double meanW = 0;
};

struct EnergyCell {
  int node = -1;
  std::string component;
  std::string cls;
  int tenant = 0;
  double joules = 0;
};

struct EnergyTenant {
  std::string cls;
  double joules = 0;
  std::uint64_t ops = 0;
  double jPerOp = 0;
  double opsPerJ = 0;
};

struct EnergyData {
  std::vector<EnergyNode> nodes;
  std::vector<EnergyCell> cells;  ///< includes remainders as class
                                  ///< "unattributed" rows from the ledger
  std::map<std::pair<int, std::string>, double> remainders;
  std::vector<EnergyTenant> tenants;
  double clusterJ = 0;
  std::uint64_t clusterOps = 0;
  double clusterOpsPerJ = 0;
  /// component -> per-tick (t, cluster watts) from the sampler's
  /// node<N>.energy.<comp>.joules.rate series.
  std::map<std::string, std::map<double, double>> wattsTimeline;
  /// per-tick cluster ops/s (cluster.client.ops.rate).
  std::map<double, double> opsTimeline;
};

bool loadEnergy(const std::string& dir, EnergyData* out) {
  std::ifstream is(dir + "/energy.jsonl");
  if (!is) {
    std::fprintf(stderr, "rcdiag: no energy.jsonl in %s\n", dir.c_str());
    return false;
  }
  std::string line;
  while (std::getline(is, line)) {
    std::string type;
    if (!jsonStr(line, "type", &type)) continue;
    double v = 0;
    if (type == "energy_node") {
      EnergyNode n;
      if (jsonNum(line, "node", &v)) n.node = static_cast<int>(v);
      jsonNum(line, "seconds", &n.seconds);
      for (std::size_t c = 0; c < kNumComponents; ++c) {
        jsonNum(line, std::string(kComponents[c]) + "_j", &n.comp[c]);
      }
      jsonNum(line, "total_j", &n.totalJ);
      jsonNum(line, "pdu_j", &n.pduJ);
      jsonNum(line, "mean_w", &n.meanW);
      out->nodes.push_back(n);
    } else if (type == "energy_cell") {
      EnergyCell c;
      if (jsonNum(line, "node", &v)) c.node = static_cast<int>(v);
      jsonStr(line, "component", &c.component);
      jsonStr(line, "class", &c.cls);
      if (jsonNum(line, "tenant", &v)) c.tenant = static_cast<int>(v);
      jsonNum(line, "joules", &c.joules);
      out->cells.push_back(std::move(c));
    } else if (type == "energy_remainder") {
      int node = -1;
      std::string comp;
      double j = 0;
      if (jsonNum(line, "node", &v)) node = static_cast<int>(v);
      jsonStr(line, "component", &comp);
      jsonNum(line, "joules", &j);
      out->remainders[{node, comp}] = j;
    } else if (type == "energy_tenant") {
      EnergyTenant t;
      jsonStr(line, "class", &t.cls);
      jsonNum(line, "joules", &t.joules);
      if (jsonNum(line, "ops", &v)) t.ops = static_cast<std::uint64_t>(v);
      jsonNum(line, "j_per_op", &t.jPerOp);
      jsonNum(line, "ops_per_j", &t.opsPerJ);
      out->tenants.push_back(std::move(t));
    } else if (type == "energy_cluster") {
      jsonNum(line, "total_j", &out->clusterJ);
      if (jsonNum(line, "ops", &v)) {
        out->clusterOps = static_cast<std::uint64_t>(v);
      }
      jsonNum(line, "ops_per_j", &out->clusterOpsPerJ);
    }
  }
  if (out->nodes.empty()) {
    std::fprintf(stderr, "rcdiag: energy.jsonl has no energy_node lines\n");
    return false;
  }

  // Optional timelines from the 1 Hz sampler (metrics.jsonl points): the
  // cumulative joules counters become watt series via their .rate form.
  for (const auto& rec : MetricsExporter::readJsonl(dir + "/metrics.jsonl")) {
    if (rec.type != "point") continue;
    if (rec.name == "cluster.client.ops.rate") {
      out->opsTimeline[rec.t] += rec.value;
      continue;
    }
    if (rec.name.rfind("node", 0) != 0) continue;
    for (std::size_t c = 0; c < kNumComponents; ++c) {
      const std::string suffix =
          std::string(".energy.") + kComponents[c] + ".joules.rate";
      if (rec.name.size() > suffix.size() &&
          rec.name.compare(rec.name.size() - suffix.size(), suffix.size(),
                           suffix) == 0) {
        out->wattsTimeline[kComponents[c]][rec.t] += rec.value;
        break;
      }
    }
  }
  return true;
}

/// Reconciliation gate: every PDU-sampled node's attributed component sum
/// must match the sampled total within 0.1 % (docs/ENERGY.md). Returns the
/// number of violations.
int checkEnergy(const EnergyData& e, bool verbose) {
  int violations = 0;
  for (const EnergyNode& n : e.nodes) {
    if (n.pduJ <= 0) continue;  // PDU never sampled this node
    const double delta = std::abs(n.totalJ - n.pduJ) / n.pduJ;
    if (delta > 0.001) {
      std::fprintf(stderr,
                   "energy check: node %d component sum %.3f J vs PDU "
                   "%.3f J (%.4f%% > 0.1%%)\n",
                   n.node, n.totalJ, n.pduJ, 100.0 * delta);
      ++violations;
    }
    double sum = 0;
    for (std::size_t c = 0; c < kNumComponents; ++c) sum += n.comp[c];
    if (std::abs(sum - n.totalJ) > 1e-3 * std::max(1.0, n.totalJ)) {
      std::fprintf(stderr,
                   "energy check: node %d components sum %.3f J != "
                   "total_j %.3f J\n",
                   n.node, sum, n.totalJ);
      ++violations;
    }
  }
  // Ledger cells must not exceed their node's dynamic component energy
  // (cells are cumulative from t=0, a superset of the PDU window, so only
  // sanity-check non-negativity here).
  for (const EnergyCell& c : e.cells) {
    if (c.joules < 0) {
      std::fprintf(stderr, "energy check: negative cell (node %d %s/%s)\n",
                   c.node, c.component.c_str(), c.cls.c_str());
      ++violations;
    }
  }
  if (violations == 0 && verbose) {
    std::printf("energy check: OK (%zu nodes, %zu cells reconcile)\n",
                e.nodes.size(), e.cells.size());
  }
  return violations;
}

void printEnergy(const EnergyData& e) {
  // ---- per-node component table with the reconciliation column
  std::printf("per-node energy (J) over the PDU window\n");
  std::printf("  %-5s %9s %9s %9s %9s %9s %10s %10s %8s %7s\n", "node", "cpu",
              "dram", "nic", "disk", "platform", "total", "pdu", "delta%",
              "watts");
  for (const EnergyNode& n : e.nodes) {
    const double delta =
        n.pduJ > 0 ? 100.0 * (n.totalJ - n.pduJ) / n.pduJ : 0.0;
    std::printf(
        "  %-5d %9.1f %9.1f %9.1f %9.1f %9.1f %10.1f %10.1f %8.4f %7.1f\n",
        n.node, n.comp[0], n.comp[1], n.comp[2], n.comp[3], n.comp[4],
        n.totalJ, n.pduJ, delta, n.meanW);
  }

  // ---- per-op-class attribution (dynamic joules from the ledger cells,
  // aggregated across nodes/components/tenants; remainder rows appended)
  std::map<std::string, double> byClass;
  for (const EnergyCell& c : e.cells) byClass[c.cls] += c.joules;
  double remJ = 0;
  for (const auto& [key, j] : e.remainders) remJ += j;
  if (remJ > 0) byClass["unattributed"] += remJ;
  double dynTotal = 0;
  for (const auto& [cls, j] : byClass) dynTotal += j;
  if (!byClass.empty()) {
    std::printf("\ndynamic energy by op class (ledger, whole run)\n");
    std::printf("  %-14s %12s %7s\n", "class", "joules", "share");
    for (const auto& [cls, j] : byClass) {
      std::printf("  %-14s %12.2f %6.1f%%\n", cls.c_str(), j,
                  dynTotal > 0 ? 100.0 * j / dynTotal : 0.0);
    }
  }

  // ---- per-tenant joules/op
  if (!e.tenants.empty()) {
    std::printf("\nper-tenant efficiency\n");
    std::printf("  %-24s %12s %10s %12s %10s\n", "class", "joules", "ops",
                "j/op", "ops/J");
    for (const EnergyTenant& t : e.tenants) {
      std::printf("  %-24s %12.2f %10llu %12.6f %10.1f\n", t.cls.c_str(),
                  t.joules, static_cast<unsigned long long>(t.ops), t.jPerOp,
                  t.opsPerJ);
    }
  }

  // ---- stacked per-component cluster watts timeline
  if (!e.wattsTimeline.empty()) {
    // Merge ticks; components stack in fixed order. Subsample to <= 40 rows.
    std::set<double> ticks;
    for (const auto& [comp, pts] : e.wattsTimeline) {
      for (const auto& [t, w] : pts) ticks.insert(t);
    }
    std::vector<double> ts(ticks.begin(), ticks.end());
    const std::size_t step = std::max<std::size_t>(1, ts.size() / 40);
    double maxW = 0;
    for (double t : ts) {
      double sum = 0;
      for (const auto& [comp, pts] : e.wattsTimeline) {
        auto it = pts.find(t);
        if (it != pts.end()) sum += it->second;
      }
      maxW = std::max(maxW, sum);
    }
    constexpr int kCols = 60;
    const char* kGlyphs = "cdnkp";  // cpu dram nic disk platform
    std::printf(
        "\ncluster watts timeline (stacked: c=cpu d=dram n=nic k=disk "
        "p=platform; full scale %.0f W)\n",
        maxW);
    for (std::size_t i = 0; i < ts.size(); i += step) {
      const double t = ts[i];
      std::string bar;
      double total = 0;
      for (std::size_t c = 0; c < kNumComponents; ++c) {
        auto cit = e.wattsTimeline.find(kComponents[c]);
        if (cit == e.wattsTimeline.end()) continue;
        auto it = cit->second.find(t);
        if (it == cit->second.end()) continue;
        total += it->second;
        const int width =
            maxW > 0
                ? static_cast<int>(kCols * it->second / maxW + 0.5)
                : 0;
        bar.append(static_cast<std::size_t>(width), kGlyphs[c]);
      }
      if (bar.size() > static_cast<std::size_t>(kCols)) {
        bar.resize(static_cast<std::size_t>(kCols));
      }
      std::printf("  %7.1fs |%-*s| %7.1f W\n", t, kCols, bar.c_str(), total);
    }
  }

  // ---- energy proportionality: mean cluster watts per load decile vs the
  // ideal proportional line anchored at peak load (paper Fig. 2's framing:
  // idle floor dominates at low load).
  if (!e.opsTimeline.empty() && !e.wattsTimeline.empty()) {
    std::map<double, double> wattsAt;
    for (const auto& [comp, pts] : e.wattsTimeline) {
      for (const auto& [t, w] : pts) wattsAt[t] += w;
    }
    double maxOps = 0;
    for (const auto& [t, ops] : e.opsTimeline) maxOps = std::max(maxOps, ops);
    if (maxOps > 0) {
      struct Bucket {
        double watts = 0;
        int n = 0;
      };
      Bucket buckets[10];
      double peakW = 0;
      for (const auto& [t, ops] : e.opsTimeline) {
        auto it = wattsAt.find(t);
        if (it == wattsAt.end()) continue;
        const int b = std::min(9, static_cast<int>(10.0 * ops / maxOps));
        buckets[b].watts += it->second;
        ++buckets[b].n;
        peakW = std::max(peakW, it->second);
      }
      std::printf(
          "\nenergy proportionality (mean cluster W per load decile; "
          "* actual, . ideal-proportional)\n");
      for (int b = 0; b < 10; ++b) {
        if (buckets[b].n == 0) continue;
        const double w = buckets[b].watts / buckets[b].n;
        const double ideal = peakW * (b + 0.5) / 10.0;
        const int wc = peakW > 0 ? static_cast<int>(40.0 * w / peakW) : 0;
        const int ic = peakW > 0 ? static_cast<int>(40.0 * ideal / peakW) : 0;
        std::string bar(41, ' ');
        bar[static_cast<std::size_t>(std::min(40, ic))] = '.';
        bar[static_cast<std::size_t>(std::min(40, wc))] = '*';
        std::printf("  %3d-%3d%% |%s| %7.1f W (ideal %7.1f)\n", b * 10,
                    (b + 1) * 10, bar.c_str(), w, ideal);
      }
    }
  }

  // ---- cluster rollup
  std::printf("\ncluster: %.1f J total", e.clusterJ);
  if (e.clusterOps > 0) {
    std::printf(", %llu ops, %.1f ops/J",
                static_cast<unsigned long long>(e.clusterOps),
                e.clusterOpsPerJ);
  }
  std::puts("");
}

int energyCmd(const std::string& dir, bool checkOnly) {
  EnergyData e;
  if (!loadEnergy(dir, &e)) return 1;
  if (checkOnly) {
    const int violations = checkEnergy(e, /*verbose=*/true);
    if (violations > 0) {
      std::fprintf(stderr, "energy check: %d violation(s)\n", violations);
      return 1;
    }
    return 0;
  }
  printEnergy(e);
  const int violations = checkEnergy(e, /*verbose=*/false);
  if (violations > 0) {
    std::fprintf(stderr, "\nenergy: %d reconciliation violation(s)\n",
                 violations);
    return 1;
  }
  std::puts("\nreconciliation: component sums match the PDU totals (<=0.1%)");
  return 0;
}

// ------------------------------------------------------------------- check

int checkRun(const std::string& dir) {
  RunData run;
  if (!loadRun(dir, &run)) return 1;
  int violations = 0;
  auto fail = [&violations](const char* fmt, unsigned long long a) {
    std::fprintf(stderr, "check: ");
    std::fprintf(stderr, fmt, a);
    std::fprintf(stderr, "\n");
    ++violations;
  };

  std::set<std::uint64_t> ids;
  for (const Span& s : run.spans) {
    if (s.id == 0) fail("span with id 0", 0);
    if (!ids.insert(s.id).second) fail("duplicate span id %llu", s.id);
  }
  for (const Span& s : run.spans) {
    if (s.name.empty()) fail("span %llu has empty name", s.id);
    if (s.node < 0) fail("span %llu has invalid node", s.id);
    if (s.parent != 0 && ids.find(s.parent) == ids.end()) {
      fail("span %llu references unknown parent", s.id);
    }
    // A child may *begin* before its parent (failure_detection starts at
    // the first missed ping, before the recovery root exists), but a
    // closed span must not end before it begins.
    if (!s.open && s.end < s.begin) {
      fail("span %llu ends before it begins", s.id);
    }
    if (s.open && s.abandoned) {
      fail("span %llu is both open and abandoned", s.id);
    }
  }
  // Every recovery root must have children covering at least the
  // coordinator-side phases.
  for (const Span* root : recoveryRoots(run)) {
    std::set<std::string> phases;
    for (const Span& s : run.spans) {
      if (s.ctx == root->ctx && s.id != root->id) phases.insert(s.name);
    }
    if (phases.empty()) {
      fail("recovery #%llu has no child phases", root->ctx);
    }
  }

  // metrics.jsonl (when present) must parse into typed records.
  const auto recs = MetricsExporter::readJsonl(dir + "/metrics.jsonl");
  for (const auto& rec : recs) {
    if (rec.type != "counter" && rec.type != "gauge" &&
        rec.type != "histogram" && rec.type != "point" &&
        rec.type != "trace") {
      std::fprintf(stderr, "check: unknown record type '%s' in metrics.jsonl\n",
                   rec.type.c_str());
      ++violations;
    }
  }

  if (violations == 0) {
    std::printf("check: OK (%zu spans, %zu metric records)\n",
                run.spans.size(), recs.size());
    return 0;
  }
  std::fprintf(stderr, "check: %d violation(s)\n", violations);
  return 1;
}

void usage() {
  std::puts(
      "rcdiag — recovery/migration journal analyzer\n"
      "\n"
      "  rcdiag [timeline|critical|phases|tx|overload|qos|check|slo|energy|"
      "report] DIR\n"
      "  rcdiag energy check DIR\n"
      "\n"
      "DIR is a --metrics-dir run directory (events.jsonl [+ metrics.jsonl]).\n"
      "slo reads DIR/slo.jsonl (runs with declared SLO classes).\n"
      "energy reads DIR/energy.jsonl: per-node component decomposition,\n"
      "per-op-class and per-tenant attribution, stacked watts timelines and\n"
      "the proportionality curve; `energy check` only gates the 0.1%\n"
      "component-sum vs PDU-total reconciliation (CI smoke).\n"
      "overload summarizes admission-control activity: per-node overload\n"
      "episodes plus shed/deferral counters (docs/OVERLOAD.md).\n"
      "qos summarizes per-tenant dispatch token buckets: offered vs\n"
      "admitted vs throttled plus throttle episodes (docs/WORKLOADS.md).\n"
      "Default command is report (timeline + critical + phases + tx +\n"
      "overload + qos).\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string cmd = "report";
  std::string dir;
  if (argc == 2) {
    dir = argv[1];
  } else if (argc == 3) {
    cmd = argv[1];
    dir = argv[2];
  } else if (argc == 4 && std::strcmp(argv[1], "energy") == 0 &&
             std::strcmp(argv[2], "check") == 0) {
    return energyCmd(argv[3], /*checkOnly=*/true);
  } else {
    usage();
    return 2;
  }
  if (cmd == "check") return checkRun(dir);
  if (cmd == "slo") return sloCmd(dir);
  if (cmd == "energy") return energyCmd(dir, /*checkOnly=*/false);

  RunData run;
  if (!loadRun(dir, &run)) return 1;
  if (cmd == "timeline") {
    printTimeline(run);
  } else if (cmd == "critical") {
    printCriticalPath(run);
  } else if (cmd == "phases") {
    printPhases(run);
  } else if (cmd == "tx") {
    printTxSummary(run);
  } else if (cmd == "overload") {
    printOverload(run, dir);
  } else if (cmd == "qos") {
    printTenantQos(run, dir);
  } else if (cmd == "report") {
    printTimeline(run);
    printCriticalPath(run);
    printPhases(run);
    printTxSummary(run);
    printOverload(run, dir);
    printTenantQos(run, dir);
  } else {
    usage();
    return 2;
  }
  return 0;
}
