// rcperf — command-line experiment runner for the simulated RAMCloud
// cluster. Lets you reproduce any paper configuration (or your own) without
// writing code:
//
//   rcperf ycsb --servers 10 --clients 30 --workload A --rf 2
//   rcperf ycsb --workload C --dist zipfian --measure 10
//   rcperf ycsb --workload A --rf 3 --tx          # minitransaction variant
//   rcperf recovery --servers 9 --rf 4 --records 2000000 --csv
//   rcperf sweep rf --values 1,2,3,4 --servers 20 --clients 60 --workload A
//
// Output: one human-readable row per run; --csv switches to a header+rows
// CSV stream for plotting.

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/recovery_experiment.hpp"
#include "core/table_format.hpp"
#include "fault/selfperf.hpp"
#include "obs/slo_tracker.hpp"

using namespace rc;

namespace {

struct Args {
  std::map<std::string, std::string> kv;
  bool has(const std::string& k) const { return kv.count(k) > 0; }
  std::string str(const std::string& k, const std::string& dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : it->second;
  }
  double num(const std::string& k, double dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
  }
  static Args parse(int argc, char** argv, int from) {
    Args a;
    for (int i = from; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) continue;
      const std::string key = argv[i] + 2;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        a.kv[key] = argv[++i];
      } else {
        a.kv[key] = "1";  // boolean flag
      }
    }
    return a;
  }
};

ycsb::WorkloadSpec workloadFor(const Args& a) {
  const std::string w = a.str("workload", "C");
  const auto records =
      static_cast<std::uint64_t>(a.num("records", 100'000));
  ycsb::WorkloadSpec spec;
  if (w == "A") {
    spec = ycsb::WorkloadSpec::A(records);
  } else if (w == "B") {
    spec = ycsb::WorkloadSpec::B(records);
  } else if (w == "C") {
    spec = ycsb::WorkloadSpec::C(records);
  } else if (w == "D") {
    spec = ycsb::WorkloadSpec::D(records);
  } else if (w == "F") {
    spec = ycsb::WorkloadSpec::F(records);
  } else {
    std::fprintf(stderr, "unknown --workload %s (A|B|C|D|F)\n", w.c_str());
    std::exit(2);
  }
  const std::string dist = a.str("dist", "");
  if (dist == "zipfian") {
    spec.distribution = ycsb::WorkloadSpec::Distribution::kZipfian;
  } else if (dist == "latest") {
    spec.distribution = ycsb::WorkloadSpec::Distribution::kLatest;
  } else if (dist == "uniform" || dist.empty()) {
    // D defaults to latest; only override when asked.
    if (dist == "uniform") {
      spec.distribution = ycsb::WorkloadSpec::Distribution::kUniform;
    }
  } else {
    std::fprintf(stderr, "unknown --dist %s\n", dist.c_str());
    std::exit(2);
  }
  spec.valueBytes = static_cast<std::uint32_t>(a.num("value-bytes", 1000));
  return spec;
}

core::YcsbExperimentConfig ycsbConfig(const Args& a) {
  core::YcsbExperimentConfig cfg;
  cfg.servers = static_cast<int>(a.num("servers", 10));
  cfg.clients = static_cast<int>(a.num("clients", 10));
  cfg.replicationFactor = static_cast<int>(a.num("rf", 0));
  cfg.workload = workloadFor(a);
  cfg.warmup = sim::secondsF(a.num("warmup", 1.0));
  cfg.measure = sim::secondsF(a.num("measure", 4.0));
  cfg.throttleOpsPerSec = a.num("throttle", 0);
  cfg.seed = static_cast<std::uint64_t>(a.num("seed", 42));
  cfg.metricsDir = a.str("metrics-dir", "");
  cfg.transactional = a.has("tx");
  if (cfg.transactional) {
    cfg.transferProportion = a.num("tx-transfers", 0.05);
    cfg.transferAccounts =
        static_cast<std::uint64_t>(a.num("tx-accounts", 12));
  }
  return cfg;
}

void printYcsbHeaderCsv() {
  std::printf(
      "servers,clients,rf,workload,throughput_ops,watts_per_node,"
      "cpu_pct,ops_per_joule,read_mean_us,update_mean_us,failures\n");
}

void printYcsbRow(const core::YcsbExperimentConfig& cfg,
                  const core::YcsbExperimentResult& r, bool csv) {
  if (csv) {
    std::printf("%d,%d,%d,%s,%.0f,%.2f,%.2f,%.1f,%.2f,%.2f,%llu\n",
                cfg.servers, cfg.clients, cfg.replicationFactor,
                cfg.workload.name.c_str(), r.throughputOpsPerSec,
                r.meanPowerPerServerW, r.meanCpuPct, r.opsPerJoule,
                r.readMeanLatencyUs, r.updateMeanLatencyUs,
                static_cast<unsigned long long>(r.opFailures));
    return;
  }
  std::printf(
      "srv=%-3d cli=%-3d rf=%d wl=%-2s | %9.0f op/s | %6.1f W/node | "
      "%5.1f%% cpu | %6.1f op/J | rd %7.1fus up %8.1fus | fail %llu%s\n",
      cfg.servers, cfg.clients, cfg.replicationFactor,
      cfg.workload.name.c_str(), r.throughputOpsPerSec,
      r.meanPowerPerServerW, r.meanCpuPct, r.opsPerJoule,
      r.readMeanLatencyUs, r.updateMeanLatencyUs,
      static_cast<unsigned long long>(r.opFailures),
      r.crashed ? "  [CRASHED]" : "");
}

int cmdYcsb(const Args& a) {
  const bool csv = a.has("csv");
  const auto cfg = ycsbConfig(a);
  const auto r = core::runYcsbExperiment(cfg);
  if (csv) printYcsbHeaderCsv();
  printYcsbRow(cfg, r, csv);
  if (!cfg.metricsDir.empty()) {
    std::printf(
        "  stages: dispatch-wait %.1f/%.1fus  worker %.1f/%.1fus  "
        "repl-wait %.1f/%.1fus (mean/p99)\n",
        r.dispatchWaitMeanUs, r.dispatchWaitP99Us, r.workerServiceMeanUs,
        r.workerServiceP99Us, r.replicationWaitMeanUs, r.replicationWaitP99Us);
    std::printf("  rpc: timeouts %llu  retries %llu "
                "(per-opcode: net.rpc.retries.*)\n",
                static_cast<unsigned long long>(r.rpcTimeouts),
                static_cast<unsigned long long>(r.rpcRetries));
    std::printf("  metrics: %s/metrics.jsonl, %s/series.csv\n",
                cfg.metricsDir.c_str(), cfg.metricsDir.c_str());
  }
  if (r.txPrepares + r.txCommits + r.txAborts + r.txConflicts > 0) {
    std::printf(
        "  tx: commits %llu  aborts %llu  conflicts %llu  "
        "orphans-resolved %llu  (prepares %llu, transfers %llu, "
        "client aborted/unknown %llu/%llu)\n",
        static_cast<unsigned long long>(r.txCommits),
        static_cast<unsigned long long>(r.txAborts),
        static_cast<unsigned long long>(r.txConflicts),
        static_cast<unsigned long long>(r.txOrphansResolved),
        static_cast<unsigned long long>(r.txPrepares),
        static_cast<unsigned long long>(r.txTransfers),
        static_cast<unsigned long long>(r.txClientAborted),
        static_cast<unsigned long long>(r.txClientUnknown));
  }
  return r.crashed ? 1 : 0;
}

int cmdSweep(const Args& a, const std::string& param) {
  const bool csv = a.has("csv");
  std::vector<int> values;
  std::stringstream ss(a.str("values", "1,2,3,4"));
  for (std::string tok; std::getline(ss, tok, ',');) {
    values.push_back(std::atoi(tok.c_str()));
  }
  if (csv) printYcsbHeaderCsv();
  for (int v : values) {
    auto cfg = ycsbConfig(a);
    if (param == "rf") {
      cfg.replicationFactor = v;
    } else if (param == "servers") {
      cfg.servers = v;
    } else if (param == "clients") {
      cfg.clients = v;
    } else {
      std::fprintf(stderr, "sweep parameter must be rf|servers|clients\n");
      return 2;
    }
    if (!cfg.metricsDir.empty()) {
      // One run directory per sweep point.
      cfg.metricsDir += "/" + param + "=" + std::to_string(v);
    }
    printYcsbRow(cfg, core::runYcsbExperiment(cfg), csv);
  }
  return 0;
}

int cmdRecovery(const Args& a) {
  core::RecoveryExperimentConfig cfg;
  cfg.servers = static_cast<int>(a.num("servers", 9));
  cfg.replicationFactor = static_cast<int>(a.num("rf", 3));
  cfg.records = static_cast<std::uint64_t>(a.num("records", 1'000'000));
  cfg.valueBytes = static_cast<std::uint32_t>(a.num("value-bytes", 1000));
  cfg.killAt = sim::secondsF(a.num("kill-at", 5.0));
  cfg.probeClients = a.has("probe-clients");
  cfg.seed = static_cast<std::uint64_t>(a.num("seed", 42));
  if (a.has("segment-mb")) {
    cfg.segmentBytes =
        static_cast<std::uint64_t>(a.num("segment-mb", 8)) * 1024 * 1024;
  }
  cfg.metricsDir = a.str("metrics-dir", "");
  const auto r = core::runRecoveryExperiment(cfg);
  std::printf(
      "recovered=%s detect=%.2fs replay=%.2fs data=%.2fGB "
      "peakCpu=%.0f%% power=%.1fW energy/node=%.0fJ allKeys=%s\n",
      r.recovered ? "yes" : "NO", sim::toSeconds(r.detectionDelay),
      sim::toSeconds(r.recoveryDuration), r.dataRecoveredGB, r.peakCpuPct,
      r.meanPowerDuringRecoveryW, r.energyPerNodeDuringRecoveryJ,
      r.allKeysRecovered ? "yes" : "NO");
  if (a.has("csv")) {
    std::printf("%s", r.cpuMeanPct.toCsv("cpu_pct").c_str());
    std::printf("%s", r.powerMeanW.toCsv("power_w").c_str());
    std::printf("%s", r.diskReadMBps.toCsv("disk_read_MBps").c_str());
    std::printf("%s", r.diskWriteMBps.toCsv("disk_write_MBps").c_str());
    if (cfg.probeClients) {
      std::printf("%s", r.client1LatencyUs.toCsv("client1_us").c_str());
      std::printf("%s", r.client2LatencyUs.toCsv("client2_us").c_str());
    }
  }
  return r.recovered ? 0 : 1;
}

/// `rcperf top` — live tail-latency display: runs a YCSB experiment with
/// the SLO tracker on and prints, once per simulated second, the
/// in-progress window's per-class quantiles/burn and the hottest tablets
/// (per-tablet op rates from the masters' heat probes). The same numbers a
/// live cluster dashboard would poll, demonstrated against the simulator.
int cmdTop(const Args& a) {
  auto cfg = ycsbConfig(a);
  cfg.tenant = a.str("tenant", "ycsb");
  cfg.readSlo = obs::SloTarget{sim::usecF(a.num("read-p99-us", 250)),
                               sim::usecF(a.num("read-p999-us", 1000))};
  cfg.updateSlo = obs::SloTarget{sim::usecF(a.num("update-p99-us", 600)),
                                 sim::usecF(a.num("update-p999-us", 2500))};
  const int heatTop = static_cast<int>(a.num("heat", 5));
  const double qosRate = a.num("qos-rate", 0);

  // The ticker lives in this holder so it survives until the experiment
  // returns (the hook runs inside runYcsbExperiment, before load).
  auto ticker = std::make_shared<std::unique_ptr<sim::PeriodicTask>>();
  auto prevHeat = std::make_shared<obs::MetricRegistry::Snapshot>();
  auto prevShed = std::make_shared<std::pair<double, double>>(0.0, 0.0);
  auto prevQos = std::make_shared<obs::MetricRegistry::Snapshot>();
  const std::string tenant = cfg.tenant;
  cfg.clusterHook = [ticker, prevHeat, prevShed, prevQos, heatTop, qosRate,
                     tenant](core::Cluster& c) {
    if (qosRate > 0) {
      // Police this tenant's admitted rate per node (docs/WORKLOADS.md).
      server::QosParams qos;
      qos.enabled = true;
      server::QosTenantPolicy p;
      p.name = tenant;
      p.tags = {c.sloTracker().classId(tenant + "/read") + 1,
                c.sloTracker().classId(tenant + "/update") + 1};
      p.ratePerSec = qosRate;
      qos.tenants.push_back(std::move(p));
      c.configureQos(qos);
    }
    *ticker = std::make_unique<sim::PeriodicTask>(
        c.sim(), sim::seconds(1),
        [&c, prevHeat, prevShed, prevQos, heatTop](sim::SimTime now) {
          std::printf("-- t=%.0fs --------------------------------------\n",
                      sim::toSeconds(now));
          std::printf("%-16s %10s %9s %9s %9s %7s\n", "class", "count",
                      "p50_us", "p99_us", "p999_us", "burn");
          for (const auto& lc : c.sloTracker().liveSnapshot()) {
            std::printf("%-16s %10llu %9.1f %9.1f %9.1f %7.2f\n",
                        lc.cls.c_str(),
                        static_cast<unsigned long long>(lc.count),
                        sim::toMicros(lc.p50), sim::toMicros(lc.p99),
                        sim::toMicros(lc.p999), lc.burnRate);
          }
          // Tablet heat: windowed rate of the masters' cumulative
          // per-tablet op counters, hottest first.
          std::vector<std::pair<double, std::string>> hot;
          obs::MetricRegistry::Snapshot cur;
          c.metrics().forEach([&](const obs::MetricInfo& info) {
            if (info.name.find(".tablet.heat.") == std::string::npos) return;
            const double v = c.metrics().value(info.name);
            cur[info.name] = v;
            const auto it = prevHeat->find(info.name);
            const double rate = v - (it == prevHeat->end() ? 0.0 : it->second);
            if (rate > 0) hot.emplace_back(rate, info.name);
          });
          *prevHeat = std::move(cur);
          std::sort(hot.begin(), hot.end(),
                    [](const auto& x, const auto& y) {
                      return x.first != y.first ? x.first > y.first
                                                : x.second < y.second;
                    });
          for (int i = 0; i < heatTop && i < static_cast<int>(hot.size());
               ++i) {
            std::printf("  heat %-52s %9.0f op/s\n", hot[i].second.c_str(),
                        hot[i].first);
          }
          // Live power: trailing-window watts per node (the latest PDU
          // sample; side-effect-free reads) plus the run's cumulative
          // cluster efficiency.
          double clusterW = 0;
          std::printf("  watts:");
          for (int i = 0; i < c.serverCount(); ++i) {
            const double w = c.server(i).node->currentWatts();
            clusterW += w;
            if (i < 8) {
              std::printf(" n%d=%.0f", c.serverNodeId(i), w);
            }
          }
          if (c.serverCount() > 8) std::printf(" ...");
          std::printf("  cluster=%.0fW  %.1f op/J\n", clusterW,
                      c.metrics().value("cluster.energy.ops_per_joule"));
          // Overload: windowed shed/bounce rates plus who is shedding
          // right now (docs/OVERLOAD.md). Quiet runs print nothing.
          const double shed = c.metrics().value("cluster.shed_requests");
          const double bounced =
              c.metrics().value("net.rpc.overloaded.total");
          const double shedRate = shed - prevShed->first;
          const double bounceRate = bounced - prevShed->second;
          *prevShed = {shed, bounced};
          if (shedRate > 0 || bounceRate > 0 || c.sheddingServers() > 0) {
            std::printf("  shed: %7.0f req/s  bounced %7.0f rpc/s  "
                        "overloaded-servers %d/%d  (total shed %.0f)\n",
                        shedRate, bounceRate, c.sheddingServers(),
                        c.serverCount(), shed);
          }
          // Per-tenant QoS: windowed offered-vs-admitted rate per policy
          // from the cluster.qos.<tenant>.* aggregates (docs/WORKLOADS.md).
          // Runs without configureQos have no such metrics and stay quiet.
          std::map<std::string, std::array<double, 3>> qosRates;
          c.metrics().forEach([&](const obs::MetricInfo& info) {
            const auto pos = info.name.find("cluster.qos.");
            if (pos != 0) return;
            const auto dot = info.name.rfind('.');
            const std::string which = info.name.substr(dot + 1);
            int idx = which == "offered" ? 0
                      : which == "admitted" ? 1
                      : which == "throttled" ? 2 : -1;
            if (idx < 0) return;
            const std::string who =
                info.name.substr(12, dot - 12);  // after "cluster.qos."
            const double v = c.metrics().value(info.name);
            const auto it = prevQos->find(info.name);
            const double prev = it == prevQos->end() ? 0.0 : it->second;
            (*prevQos)[info.name] = v;
            qosRates[who][static_cast<std::size_t>(idx)] = v - prev;
          });
          for (const auto& [who, r] : qosRates) {
            if (r[0] <= 0 && r[2] <= 0) continue;
            std::printf("  qos %-12s offered %7.0f/s  admitted %7.0f/s  "
                        "throttled %7.0f/s\n", who.c_str(), r[0], r[1], r[2]);
          }
        });
  };

  const auto r = core::runYcsbExperiment(cfg);
  ticker->reset();
  std::printf("\n");
  printYcsbRow(cfg, r, false);
  std::printf("  slo: %llu windows, %llu breached (full rows: run with "
              "--metrics-dir and `rcdiag slo DIR`)\n",
              static_cast<unsigned long long>(r.sloWindows.size()),
              static_cast<unsigned long long>(r.sloBreachedWindows));
  return r.crashed ? 1 : 0;
}

int cmdSelfperf(const Args& a) {
  fault::selfperf::Options opt;
  opt.quick = a.has("quick");
  opt.slo = a.has("slo");
  if (a.has("no-energy")) opt.energy = false;
  opt.repeat = std::max(1, static_cast<int>(a.num("repeat", 1)));
  const auto results = fault::selfperf::runAll(opt);
  for (const auto& r : results) {
    std::printf("%-14s %12llu events  %6.2f sim-s  %7.3f wall-s  "
                "%10.0f ev/s  %.4f wall-s/sim-s\n",
                r.name.c_str(), static_cast<unsigned long long>(r.events),
                r.simSeconds, r.wallSeconds, r.eventsPerSec(),
                r.wallPerSimSecond());
  }
  const std::string jsonPath = a.str("json", "BENCH_selfperf.json");
  if (!fault::selfperf::writeJson(results, opt, jsonPath)) {
    std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
    return 1;
  }
  std::printf("wrote %s\n", jsonPath.c_str());
  return 0;
}

void usage() {
  std::puts(
      "rcperf — simulated-RAMCloud experiment runner\n"
      "\n"
      "  rcperf ycsb     [--servers N] [--clients N] [--rf N]\n"
      "                  [--workload A|B|C|D|F] [--dist uniform|zipfian|latest]\n"
      "                  [--records N] [--value-bytes N] [--throttle OPS]\n"
      "                  [--warmup S] [--measure S] [--seed N] [--csv]\n"
      "                  [--metrics-dir DIR]  (dump metrics.jsonl +\n"
      "                  aligned 1 Hz series.csv + RPC stage breakdown)\n"
      "  rcperf sweep P  --values v1,v2,...   (P = rf|servers|clients;\n"
      "                  remaining flags as for ycsb)\n"
      "  rcperf recovery [--servers N] [--rf N] [--records N] [--kill-at S]\n"
      "                  [--segment-mb N] [--probe-clients] [--seed N] [--csv]\n"
      "                  [--metrics-dir DIR]  (also writes events.jsonl —\n"
      "                  the recovery span tree; analyze with rcdiag)\n"
      "  rcperf top      [ycsb flags] [--tenant NAME] [--qos-rate OPS]\n"
      "                  [--read-p99-us N] [--read-p999-us N]\n"
      "                  [--update-p99-us N] [--update-p999-us N] [--heat N]\n"
      "                  (live mode: 1 Hz per-class tail quantiles + burn\n"
      "                  rate, hottest tablets, per-node watts, cluster\n"
      "                  ops/joule, shed/overload rates, and per-tenant QoS\n"
      "                  offered-vs-admitted rates while the run progresses;\n"
      "                  --qos-rate caps the tenant's admitted rate per node\n"
      "                  with a dispatch token bucket; docs/SLO.md,\n"
      "                  docs/ENERGY.md, docs/OVERLOAD.md,\n"
      "                  docs/WORKLOADS.md)\n"
      "  rcperf selfperf [--quick] [--repeat N] [--slo] [--no-energy]\n"
      "                  [--json FILE]\n"
      "                  (host events/sec of the simulator itself on the\n"
      "                  canonical scenarios; writes BENCH_selfperf.json —\n"
      "                  see docs/PERF.md; also: rcperf --selfperf;\n"
      "                  --slo runs ycsb_b with the SLO tracker live,\n"
      "                  --no-energy disables the energy ledger)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "selfperf" || cmd == "--selfperf") {
    return cmdSelfperf(Args::parse(argc, argv, 2));
  }
  if (cmd == "ycsb") return cmdYcsb(Args::parse(argc, argv, 2));
  if (cmd == "top") return cmdTop(Args::parse(argc, argv, 2));
  if (cmd == "recovery") return cmdRecovery(Args::parse(argc, argv, 2));
  if (cmd == "sweep" && argc >= 3) {
    return cmdSweep(Args::parse(argc, argv, 3), argv[2]);
  }
  usage();
  return 2;
}
