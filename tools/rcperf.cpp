// rcperf — command-line experiment runner for the simulated RAMCloud
// cluster. Lets you reproduce any paper configuration (or your own) without
// writing code:
//
//   rcperf ycsb --servers 10 --clients 30 --workload A --rf 2
//   rcperf ycsb --workload C --dist zipfian --measure 10
//   rcperf recovery --servers 9 --rf 4 --records 2000000 --csv
//   rcperf sweep rf --values 1,2,3,4 --servers 20 --clients 60 --workload A
//
// Output: one human-readable row per run; --csv switches to a header+rows
// CSV stream for plotting.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/recovery_experiment.hpp"
#include "core/table_format.hpp"
#include "fault/selfperf.hpp"

using namespace rc;

namespace {

struct Args {
  std::map<std::string, std::string> kv;
  bool has(const std::string& k) const { return kv.count(k) > 0; }
  std::string str(const std::string& k, const std::string& dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : it->second;
  }
  double num(const std::string& k, double dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
  }
  static Args parse(int argc, char** argv, int from) {
    Args a;
    for (int i = from; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) continue;
      const std::string key = argv[i] + 2;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        a.kv[key] = argv[++i];
      } else {
        a.kv[key] = "1";  // boolean flag
      }
    }
    return a;
  }
};

ycsb::WorkloadSpec workloadFor(const Args& a) {
  const std::string w = a.str("workload", "C");
  const auto records =
      static_cast<std::uint64_t>(a.num("records", 100'000));
  ycsb::WorkloadSpec spec;
  if (w == "A") {
    spec = ycsb::WorkloadSpec::A(records);
  } else if (w == "B") {
    spec = ycsb::WorkloadSpec::B(records);
  } else if (w == "C") {
    spec = ycsb::WorkloadSpec::C(records);
  } else if (w == "D") {
    spec = ycsb::WorkloadSpec::D(records);
  } else if (w == "F") {
    spec = ycsb::WorkloadSpec::F(records);
  } else {
    std::fprintf(stderr, "unknown --workload %s (A|B|C|D|F)\n", w.c_str());
    std::exit(2);
  }
  const std::string dist = a.str("dist", "");
  if (dist == "zipfian") {
    spec.distribution = ycsb::WorkloadSpec::Distribution::kZipfian;
  } else if (dist == "latest") {
    spec.distribution = ycsb::WorkloadSpec::Distribution::kLatest;
  } else if (dist == "uniform" || dist.empty()) {
    // D defaults to latest; only override when asked.
    if (dist == "uniform") {
      spec.distribution = ycsb::WorkloadSpec::Distribution::kUniform;
    }
  } else {
    std::fprintf(stderr, "unknown --dist %s\n", dist.c_str());
    std::exit(2);
  }
  spec.valueBytes = static_cast<std::uint32_t>(a.num("value-bytes", 1000));
  return spec;
}

core::YcsbExperimentConfig ycsbConfig(const Args& a) {
  core::YcsbExperimentConfig cfg;
  cfg.servers = static_cast<int>(a.num("servers", 10));
  cfg.clients = static_cast<int>(a.num("clients", 10));
  cfg.replicationFactor = static_cast<int>(a.num("rf", 0));
  cfg.workload = workloadFor(a);
  cfg.warmup = sim::secondsF(a.num("warmup", 1.0));
  cfg.measure = sim::secondsF(a.num("measure", 4.0));
  cfg.throttleOpsPerSec = a.num("throttle", 0);
  cfg.seed = static_cast<std::uint64_t>(a.num("seed", 42));
  cfg.metricsDir = a.str("metrics-dir", "");
  return cfg;
}

void printYcsbHeaderCsv() {
  std::printf(
      "servers,clients,rf,workload,throughput_ops,watts_per_node,"
      "cpu_pct,ops_per_joule,read_mean_us,update_mean_us,failures\n");
}

void printYcsbRow(const core::YcsbExperimentConfig& cfg,
                  const core::YcsbExperimentResult& r, bool csv) {
  if (csv) {
    std::printf("%d,%d,%d,%s,%.0f,%.2f,%.2f,%.1f,%.2f,%.2f,%llu\n",
                cfg.servers, cfg.clients, cfg.replicationFactor,
                cfg.workload.name.c_str(), r.throughputOpsPerSec,
                r.meanPowerPerServerW, r.meanCpuPct, r.opsPerJoule,
                r.readMeanLatencyUs, r.updateMeanLatencyUs,
                static_cast<unsigned long long>(r.opFailures));
    return;
  }
  std::printf(
      "srv=%-3d cli=%-3d rf=%d wl=%-2s | %9.0f op/s | %6.1f W/node | "
      "%5.1f%% cpu | %6.1f op/J | rd %7.1fus up %8.1fus | fail %llu%s\n",
      cfg.servers, cfg.clients, cfg.replicationFactor,
      cfg.workload.name.c_str(), r.throughputOpsPerSec,
      r.meanPowerPerServerW, r.meanCpuPct, r.opsPerJoule,
      r.readMeanLatencyUs, r.updateMeanLatencyUs,
      static_cast<unsigned long long>(r.opFailures),
      r.crashed ? "  [CRASHED]" : "");
}

int cmdYcsb(const Args& a) {
  const bool csv = a.has("csv");
  const auto cfg = ycsbConfig(a);
  const auto r = core::runYcsbExperiment(cfg);
  if (csv) printYcsbHeaderCsv();
  printYcsbRow(cfg, r, csv);
  if (!cfg.metricsDir.empty()) {
    std::printf(
        "  stages: dispatch-wait %.1f/%.1fus  worker %.1f/%.1fus  "
        "repl-wait %.1f/%.1fus (mean/p99)\n",
        r.dispatchWaitMeanUs, r.dispatchWaitP99Us, r.workerServiceMeanUs,
        r.workerServiceP99Us, r.replicationWaitMeanUs, r.replicationWaitP99Us);
    std::printf("  rpc: timeouts %llu  retries %llu "
                "(per-opcode: net.rpc.retries.*)\n",
                static_cast<unsigned long long>(r.rpcTimeouts),
                static_cast<unsigned long long>(r.rpcRetries));
    std::printf("  metrics: %s/metrics.jsonl, %s/series.csv\n",
                cfg.metricsDir.c_str(), cfg.metricsDir.c_str());
  }
  return r.crashed ? 1 : 0;
}

int cmdSweep(const Args& a, const std::string& param) {
  const bool csv = a.has("csv");
  std::vector<int> values;
  std::stringstream ss(a.str("values", "1,2,3,4"));
  for (std::string tok; std::getline(ss, tok, ',');) {
    values.push_back(std::atoi(tok.c_str()));
  }
  if (csv) printYcsbHeaderCsv();
  for (int v : values) {
    auto cfg = ycsbConfig(a);
    if (param == "rf") {
      cfg.replicationFactor = v;
    } else if (param == "servers") {
      cfg.servers = v;
    } else if (param == "clients") {
      cfg.clients = v;
    } else {
      std::fprintf(stderr, "sweep parameter must be rf|servers|clients\n");
      return 2;
    }
    if (!cfg.metricsDir.empty()) {
      // One run directory per sweep point.
      cfg.metricsDir += "/" + param + "=" + std::to_string(v);
    }
    printYcsbRow(cfg, core::runYcsbExperiment(cfg), csv);
  }
  return 0;
}

int cmdRecovery(const Args& a) {
  core::RecoveryExperimentConfig cfg;
  cfg.servers = static_cast<int>(a.num("servers", 9));
  cfg.replicationFactor = static_cast<int>(a.num("rf", 3));
  cfg.records = static_cast<std::uint64_t>(a.num("records", 1'000'000));
  cfg.valueBytes = static_cast<std::uint32_t>(a.num("value-bytes", 1000));
  cfg.killAt = sim::secondsF(a.num("kill-at", 5.0));
  cfg.probeClients = a.has("probe-clients");
  cfg.seed = static_cast<std::uint64_t>(a.num("seed", 42));
  if (a.has("segment-mb")) {
    cfg.segmentBytes =
        static_cast<std::uint64_t>(a.num("segment-mb", 8)) * 1024 * 1024;
  }
  cfg.metricsDir = a.str("metrics-dir", "");
  const auto r = core::runRecoveryExperiment(cfg);
  std::printf(
      "recovered=%s detect=%.2fs replay=%.2fs data=%.2fGB "
      "peakCpu=%.0f%% power=%.1fW energy/node=%.0fJ allKeys=%s\n",
      r.recovered ? "yes" : "NO", sim::toSeconds(r.detectionDelay),
      sim::toSeconds(r.recoveryDuration), r.dataRecoveredGB, r.peakCpuPct,
      r.meanPowerDuringRecoveryW, r.energyPerNodeDuringRecoveryJ,
      r.allKeysRecovered ? "yes" : "NO");
  if (a.has("csv")) {
    std::printf("%s", r.cpuMeanPct.toCsv("cpu_pct").c_str());
    std::printf("%s", r.powerMeanW.toCsv("power_w").c_str());
    std::printf("%s", r.diskReadMBps.toCsv("disk_read_MBps").c_str());
    std::printf("%s", r.diskWriteMBps.toCsv("disk_write_MBps").c_str());
    if (cfg.probeClients) {
      std::printf("%s", r.client1LatencyUs.toCsv("client1_us").c_str());
      std::printf("%s", r.client2LatencyUs.toCsv("client2_us").c_str());
    }
  }
  return r.recovered ? 0 : 1;
}

int cmdSelfperf(const Args& a) {
  fault::selfperf::Options opt;
  opt.quick = a.has("quick");
  opt.repeat = std::max(1, static_cast<int>(a.num("repeat", 1)));
  const auto results = fault::selfperf::runAll(opt);
  for (const auto& r : results) {
    std::printf("%-14s %12llu events  %6.2f sim-s  %7.3f wall-s  "
                "%10.0f ev/s  %.4f wall-s/sim-s\n",
                r.name.c_str(), static_cast<unsigned long long>(r.events),
                r.simSeconds, r.wallSeconds, r.eventsPerSec(),
                r.wallPerSimSecond());
  }
  const std::string jsonPath = a.str("json", "BENCH_selfperf.json");
  if (!fault::selfperf::writeJson(results, opt, jsonPath)) {
    std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
    return 1;
  }
  std::printf("wrote %s\n", jsonPath.c_str());
  return 0;
}

void usage() {
  std::puts(
      "rcperf — simulated-RAMCloud experiment runner\n"
      "\n"
      "  rcperf ycsb     [--servers N] [--clients N] [--rf N]\n"
      "                  [--workload A|B|C|D|F] [--dist uniform|zipfian|latest]\n"
      "                  [--records N] [--value-bytes N] [--throttle OPS]\n"
      "                  [--warmup S] [--measure S] [--seed N] [--csv]\n"
      "                  [--metrics-dir DIR]  (dump metrics.jsonl +\n"
      "                  aligned 1 Hz series.csv + RPC stage breakdown)\n"
      "  rcperf sweep P  --values v1,v2,...   (P = rf|servers|clients;\n"
      "                  remaining flags as for ycsb)\n"
      "  rcperf recovery [--servers N] [--rf N] [--records N] [--kill-at S]\n"
      "                  [--segment-mb N] [--probe-clients] [--seed N] [--csv]\n"
      "                  [--metrics-dir DIR]  (also writes events.jsonl —\n"
      "                  the recovery span tree; analyze with rcdiag)\n"
      "  rcperf selfperf [--quick] [--repeat N] [--json FILE]\n"
      "                  (host events/sec of the simulator itself on the\n"
      "                  canonical scenarios; writes BENCH_selfperf.json —\n"
      "                  see docs/PERF.md; also: rcperf --selfperf)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "selfperf" || cmd == "--selfperf") {
    return cmdSelfperf(Args::parse(argc, argv, 2));
  }
  if (cmd == "ycsb") return cmdYcsb(Args::parse(argc, argv, 2));
  if (cmd == "recovery") return cmdRecovery(Args::parse(argc, argv, 2));
  if (cmd == "sweep" && argc >= 3) {
    return cmdSweep(Args::parse(argc, argv, 3), argv[2]);
  }
  usage();
  return 2;
}
