// Elastic cluster: watch the autoscaler track a day/night load pattern —
// the paper's SS IX "adapt the number of servers to the workload" made
// concrete with tablet migration, server standby and wake-up.
//
//   $ ./build/examples/elastic_cluster

#include <cstdio>

#include "core/autoscaler.hpp"
#include "core/cluster.hpp"
#include "ycsb/ycsb_client.hpp"

using namespace rc;

int main() {
  core::ClusterParams params;
  params.servers = 8;
  params.clients = 16;
  params.replicationFactor = 1;
  core::Cluster cluster(params);
  const auto table = cluster.createTable("sessions");
  cluster.bulkLoad(table, 50'000, 1000);
  cluster.configureYcsb(table, ycsb::WorkloadSpec::C(50'000),
                        ycsb::YcsbClientParams{});

  core::AutoscalerParams ap;
  ap.interval = sim::seconds(1);
  ap.minActive = 3;
  ap.highWaterCpu = 0.65;
  core::Autoscaler scaler(cluster, ap);
  scaler.start();

  auto load = [&cluster](int clients) {
    for (int i = 0; i < cluster.clientCount(); ++i) {
      auto* y = cluster.clientHost(i).ycsb.get();
      if (i < clients) {
        y->start();
      } else {
        y->stop();
      }
    }
  };

  std::vector<node::Node::PowerSnapshot> snaps;
  for (int i = 0; i < cluster.serverCount(); ++i) {
    snaps.push_back(cluster.server(i).node->snapshotPower());
  }

  struct Phase {
    const char* name;
    int clients;
    int seconds;
  };
  for (const Phase ph : {Phase{"morning peak", 16, 20},
                         Phase{"night trough", 2, 45},
                         Phase{"next-day peak", 16, 20}}) {
    load(ph.clients);
    cluster.sim().runFor(sim::seconds(ph.seconds));
    std::printf("%-14s  clients=%2d  active servers=%d  "
                "(resizes so far: %d down, %d up)\n",
                ph.name, ph.clients, cluster.activeServerCount(),
                scaler.scaleDowns(), scaler.scaleUps());
  }
  cluster.stopYcsb();
  scaler.stop();

  double joules = 0;
  for (int i = 0; i < cluster.serverCount(); ++i) {
    joules += cluster.server(i).node->energyJoulesSince(
        snaps[static_cast<std::size_t>(i)], cluster.sim().now());
  }
  const double staticJoules =
      cluster.serverCount() *
      params.serverNode.power.watts(0.25) *  // idle floor per node
      sim::toSeconds(cluster.sim().now());
  std::printf("\nenergy: %.1f KJ (a statically idle 8-node cluster floor "
              "would burn %.1f KJ)\n",
              joules / 1e3, staticJoules / 1e3);
  std::printf("ops served: %llu, failures: %llu\n",
              static_cast<unsigned long long>(cluster.totalOpsCompleted()),
              static_cast<unsigned long long>(cluster.totalOpFailures()));
  return 0;
}
