// Capacity planner: operationalises the paper's SS IX guidance ("How to
// choose the right cluster size?"). Given a workload mix and a client
// population, it sweeps cluster sizes and reports throughput, per-node
// power and energy efficiency — showing that the best size depends on the
// workload: read-only favours FEW servers (Finding 1), update-heavy with
// replication favours MORE servers (Finding 4).
//
//   $ ./build/examples/capacity_planner [readPct] [clients] [rf]

#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "core/table_format.hpp"

using namespace rc;

int main(int argc, char** argv) {
  const double readPct = argc > 1 ? std::atof(argv[1]) : 50.0;
  const int clients = argc > 2 ? std::atoi(argv[2]) : 30;
  const int rf = argc > 3 ? std::atoi(argv[3]) : 3;

  ycsb::WorkloadSpec spec;
  spec.name = "custom";
  spec.readProportion = readPct / 100.0;
  spec.updateProportion = 1.0 - spec.readProportion;
  spec.recordCount = 100'000;

  std::printf("capacity plan for %.0f%% reads / %.0f%% updates, %d client "
              "machines, rf=%d\n\n",
              readPct, 100 - readPct, clients, rf);

  core::TableFormatter t({"servers", "throughput (Kop/s)", "W/node",
                          "cluster W", "op/J", "verdict"});
  double bestEff = 0;
  int bestServers = 0;
  struct Row {
    int servers;
    core::YcsbExperimentResult r;
  };
  std::vector<Row> rows;
  for (int servers : {5, 10, 20, 30}) {
    core::YcsbExperimentConfig cfg;
    cfg.servers = servers;
    cfg.clients = clients;
    cfg.replicationFactor = rf;
    cfg.workload = spec;
    cfg.warmup = sim::seconds(1);
    cfg.measure = sim::seconds(3);
    const auto r = core::runYcsbExperiment(cfg);
    rows.push_back({servers, r});
    if (r.opsPerJoule > bestEff) {
      bestEff = r.opsPerJoule;
      bestServers = servers;
    }
  }
  for (const auto& row : rows) {
    t.addRow({std::to_string(row.servers),
              core::TableFormatter::kops(row.r.throughputOpsPerSec),
              core::TableFormatter::num(row.r.meanPowerPerServerW, 1),
              core::TableFormatter::num(row.r.clusterPowerW, 0),
              core::TableFormatter::num(row.r.opsPerJoule, 0),
              row.servers == bestServers ? "<== most efficient" : ""});
  }
  t.print();

  std::printf("\nrecommendation: %d servers (%.0f op/J)\n", bestServers,
              bestEff);
  std::printf("try:  capacity_planner 100 %d 0   (read-only: fewer servers "
              "win — Finding 1)\n", clients);
  std::printf("      capacity_planner 50 60 4    (update-heavy + rf=4: more "
              "servers win — Finding 4)\n");
  return 0;
}
