// Session store: the paper's motivating scenario — a large web
// application (Facebook-style, GET:SET ~ 30:1 per Atikoglu et al.) keeping
// user sessions in DRAM. Runs a skewed read-mostly workload against the
// cluster and reports throughput, tail latency, per-node power and energy
// per request.
//
//   $ ./build/examples/session_store [servers] [clients]

#include <cstdio>
#include <cstdlib>

#include "core/cluster.hpp"
#include "ycsb/workload.hpp"
#include "ycsb/ycsb_client.hpp"

using namespace rc;

int main(int argc, char** argv) {
  const int servers = argc > 1 ? std::atoi(argv[1]) : 8;
  const int clients = argc > 2 ? std::atoi(argv[2]) : 20;

  core::ClusterParams params;
  params.servers = servers;
  params.clients = clients;
  params.replicationFactor = 3;  // production durability
  core::Cluster cluster(params);

  const auto table = cluster.createTable("sessions");
  // 200 K sessions of ~1 KB.
  cluster.bulkLoad(table, 200'000, 1000);
  cluster.startPduSampling();

  // GET:SET ~ 30:1, zipfian popularity (hot users).
  ycsb::WorkloadSpec spec;
  spec.name = "session-store";
  spec.readProportion = 30.0 / 31.0;
  spec.updateProportion = 1.0 / 31.0;
  spec.recordCount = 200'000;
  spec.distribution = ycsb::WorkloadSpec::Distribution::kZipfian;

  cluster.configureYcsb(table, spec, ycsb::YcsbClientParams{});
  cluster.startYcsb();

  cluster.sim().runFor(sim::seconds(1));  // warm up
  const auto t0 = cluster.sim().now();
  const auto ops0 = cluster.totalOpsCompleted();
  std::vector<node::CpuScheduler::Snapshot> snaps;
  for (int i = 0; i < cluster.serverCount(); ++i) {
    snaps.push_back(cluster.server(i).node->snapshotCpu());
  }
  cluster.sim().runFor(sim::seconds(5));
  const auto t1 = cluster.sim().now();
  cluster.stopYcsb();

  const double seconds = sim::toSeconds(t1 - t0);
  const double thr =
      static_cast<double>(cluster.totalOpsCompleted() - ops0) / seconds;

  sim::Histogram reads;
  sim::Histogram writes;
  for (int i = 0; i < clients; ++i) {
    reads.merge(cluster.clientHost(i).ycsb->stats().readLatency);
    writes.merge(cluster.clientHost(i).ycsb->stats().updateLatency);
  }
  double watts = 0;
  for (int i = 0; i < servers; ++i) {
    watts += params.serverNode.power.watts(
        cluster.server(i).node->meanUtilisationSince(
            snaps[static_cast<std::size_t>(i)], t1));
  }

  std::printf("session store on %d servers, %d client machines, rf=3\n",
              servers, clients);
  std::printf("  throughput       : %.0f sessions ops/s\n", thr);
  std::printf("  GET latency      : mean %.1f us, p99 %.1f us\n",
              reads.mean() / 1e3, sim::toMicros(reads.percentile(0.99)));
  std::printf("  SET latency      : mean %.1f us, p99 %.1f us\n",
              writes.mean() / 1e3, sim::toMicros(writes.percentile(0.99)));
  std::printf("  cluster power    : %.0f W (%.1f W/node)\n", watts,
              watts / servers);
  std::printf("  energy efficiency: %.0f requests/joule\n", thr / watts);
  std::printf("  energy per 1M req: %.1f kJ\n", 1e6 / thr * watts / 1e3);
  return 0;
}
