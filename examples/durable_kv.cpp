// Durable key-value store: demonstrates the availability story end to
// end. Writes data with 3-way replication, kills a storage server while a
// client keeps reading, and shows detection, distributed recovery, the
// availability gap, and that no acknowledged write was lost.
//
//   $ ./build/examples/durable_kv

#include <cstdio>

#include "core/cluster.hpp"

using namespace rc;

int main() {
  core::ClusterParams params;
  params.servers = 6;
  params.clients = 1;
  params.replicationFactor = 3;
  params.seed = 3;
  core::Cluster cluster(params);

  const auto table = cluster.createTable("store");
  const std::uint64_t kRecords = 120'000;  // ~120 MB
  std::printf("loading %llu x 1 KB objects across %d servers (rf=3)...\n",
              static_cast<unsigned long long>(kRecords), params.servers);
  cluster.bulkLoad(table, kRecords, 1000);

  auto& client = *cluster.clientHost(0).rc;

  // Keep a probing read loop running.
  sim::Histogram normalLatency;
  sim::Duration worst = 0;
  std::uint64_t probes = 0;
  bool probing = true;
  sim::Rng keys(9);
  std::function<void()> probe = [&] {
    if (!probing) return;
    client.read(table, keys.uniformInt(kRecords),
                [&](net::Status s, sim::Duration d) {
                  if (s == net::Status::kOk) {
                    ++probes;
                    normalLatency.add(d);
                    worst = std::max(worst, d);
                  }
                  cluster.sim().schedule(sim::usec(500), probe);
                });
  };
  probe();

  cluster.sim().runFor(sim::seconds(3));
  std::printf("steady state: reads at %.1f us mean\n",
              normalLatency.mean() / 1e3);

  // Kill a random storage server, as in the paper's SS VII.
  const int victim = cluster.pickRandomServerIndex();
  std::printf("killing server %d at t=%.1f s ...\n", victim + 1,
              sim::toSeconds(cluster.sim().now()));
  bool done = false;
  coordinator::RecoveryRecord rec;
  cluster.coord().onRecoveryFinished =
      [&](const coordinator::RecoveryRecord& r) {
        done = true;
        rec = r;
      };
  cluster.crashServer(victim);

  while (!done) cluster.sim().runFor(sim::msec(100));
  cluster.sim().runFor(sim::seconds(1));
  probing = false;

  std::printf("recovery finished: detected in %.2f s, replayed in %.2f s "
              "across %d partitions%s\n",
              sim::toSeconds(rec.detectedAt - sim::seconds(3)),
              sim::toSeconds(rec.duration()), rec.partitions,
              rec.succeeded ? "" : " (FAILED)");
  std::printf("worst probe latency (availability gap): %.2f s\n",
              sim::toSeconds(worst));

  std::uint64_t missing = 0;
  if (!cluster.verifyAllKeysPresent(table, kRecords, &missing)) {
    std::printf("DATA LOSS: key %llu is gone!\n",
                static_cast<unsigned long long>(missing));
    return 1;
  }
  std::printf("verified: all %llu acknowledged objects survived the crash\n",
              static_cast<unsigned long long>(kRecords));

  // Where does the recovered data live now?
  for (int i = 0; i < cluster.serverCount(); ++i) {
    if (!cluster.serverAlive(i)) {
      std::printf("server %d: DEAD\n", i + 1);
      continue;
    }
    std::printf("server %d: %zu objects\n", i + 1,
                cluster.server(i).master->objectMap().size());
  }
  return 0;
}
