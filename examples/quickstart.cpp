// Quickstart: stand up a simulated RAMCloud cluster, store and fetch a few
// objects through the client library, and read the power meters.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/cluster.hpp"

using namespace rc;

int main() {
  // 4 storage servers (master+backup collocated), 1 client machine,
  // 3-way replication — a miniature of the paper's Grid'5000 deployment.
  core::ClusterParams params;
  params.servers = 4;
  params.clients = 1;
  params.replicationFactor = 3;
  params.seed = 7;
  core::Cluster cluster(params);

  const std::uint64_t table = cluster.createTable("quickstart");
  cluster.startPduSampling();

  auto& client = *cluster.clientHost(0).rc;

  // Write 100 objects of 1 KB, then read them back; every callback runs
  // inside the simulation.
  int pendingWrites = 100;
  for (std::uint64_t key = 0; key < 100; ++key) {
    client.write(table, key, 1000, [&, key](net::Status s, sim::Duration d) {
      if (s != net::Status::kOk) {
        std::printf("write %llu failed!\n",
                    static_cast<unsigned long long>(key));
      }
      if (key == 0) {
        std::printf("first write acked in %.1f us (rf=3, synchronous)\n",
                    sim::toMicros(d));
      }
      --pendingWrites;
    });
  }
  while (pendingWrites > 0) cluster.sim().runFor(sim::msec(10));

  int pendingReads = 100;
  sim::Histogram readLatency;
  for (std::uint64_t key = 0; key < 100; ++key) {
    client.read(table, key, [&](net::Status s, sim::Duration d) {
      if (s == net::Status::kOk) readLatency.add(d);
      --pendingReads;
    });
  }
  while (pendingReads > 0) cluster.sim().runFor(sim::msec(10));

  std::printf("read 100 objects: mean %.1f us, p99 %.1f us\n",
              readLatency.mean() / 1e3,
              sim::toMicros(readLatency.percentile(0.99)));

  // Where did the data land?
  for (int i = 0; i < cluster.serverCount(); ++i) {
    const auto& m = *cluster.server(i).master;
    std::printf("server %d: %zu objects, log %.1f KB live, %llu frames "
                "held as backup\n",
                i + 1, m.objectMap().size(),
                static_cast<double>(m.log().liveBytes()) / 1024.0,
                static_cast<unsigned long long>(
                    cluster.server(i).backup->framesHeld()));
  }

  // And what did it cost? (per-node PDU, sampled 1/s, like the paper)
  cluster.sim().runFor(sim::seconds(2));
  for (int i = 0; i < cluster.serverCount(); ++i) {
    const auto* pdu = cluster.server(i).node->pdu();
    if (pdu != nullptr) {
      std::printf("server %d mean power: %.1f W\n", i + 1, pdu->meanWatts());
    }
  }
  std::printf("done (simulated %.2f s in a blink of wall-clock time)\n",
              sim::toSeconds(cluster.sim().now()));
  return 0;
}
