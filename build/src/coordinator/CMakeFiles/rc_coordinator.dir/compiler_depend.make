# Empty compiler generated dependencies file for rc_coordinator.
# This may be replaced when dependencies are built.
