file(REMOVE_RECURSE
  "librc_coordinator.a"
)
