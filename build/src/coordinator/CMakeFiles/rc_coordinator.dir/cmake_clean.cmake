file(REMOVE_RECURSE
  "CMakeFiles/rc_coordinator.dir/coordinator.cpp.o"
  "CMakeFiles/rc_coordinator.dir/coordinator.cpp.o.d"
  "CMakeFiles/rc_coordinator.dir/tablet_map.cpp.o"
  "CMakeFiles/rc_coordinator.dir/tablet_map.cpp.o.d"
  "librc_coordinator.a"
  "librc_coordinator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_coordinator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
