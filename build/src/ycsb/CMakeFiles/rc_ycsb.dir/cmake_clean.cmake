file(REMOVE_RECURSE
  "CMakeFiles/rc_ycsb.dir/workload.cpp.o"
  "CMakeFiles/rc_ycsb.dir/workload.cpp.o.d"
  "CMakeFiles/rc_ycsb.dir/ycsb_client.cpp.o"
  "CMakeFiles/rc_ycsb.dir/ycsb_client.cpp.o.d"
  "librc_ycsb.a"
  "librc_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
