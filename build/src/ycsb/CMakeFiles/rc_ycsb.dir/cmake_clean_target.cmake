file(REMOVE_RECURSE
  "librc_ycsb.a"
)
