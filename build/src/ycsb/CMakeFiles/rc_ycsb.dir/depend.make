# Empty dependencies file for rc_ycsb.
# This may be replaced when dependencies are built.
