file(REMOVE_RECURSE
  "librc_server.a"
)
