
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/backup_service.cpp" "src/server/CMakeFiles/rc_server.dir/backup_service.cpp.o" "gcc" "src/server/CMakeFiles/rc_server.dir/backup_service.cpp.o.d"
  "/root/repo/src/server/master_service.cpp" "src/server/CMakeFiles/rc_server.dir/master_service.cpp.o" "gcc" "src/server/CMakeFiles/rc_server.dir/master_service.cpp.o.d"
  "/root/repo/src/server/migration.cpp" "src/server/CMakeFiles/rc_server.dir/migration.cpp.o" "gcc" "src/server/CMakeFiles/rc_server.dir/migration.cpp.o.d"
  "/root/repo/src/server/recovery_task.cpp" "src/server/CMakeFiles/rc_server.dir/recovery_task.cpp.o" "gcc" "src/server/CMakeFiles/rc_server.dir/recovery_task.cpp.o.d"
  "/root/repo/src/server/replica_manager.cpp" "src/server/CMakeFiles/rc_server.dir/replica_manager.cpp.o" "gcc" "src/server/CMakeFiles/rc_server.dir/replica_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/rc_node.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/rc_log.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/rc_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/rc_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
