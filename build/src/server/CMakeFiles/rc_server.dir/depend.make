# Empty dependencies file for rc_server.
# This may be replaced when dependencies are built.
