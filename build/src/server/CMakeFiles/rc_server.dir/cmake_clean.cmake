file(REMOVE_RECURSE
  "CMakeFiles/rc_server.dir/backup_service.cpp.o"
  "CMakeFiles/rc_server.dir/backup_service.cpp.o.d"
  "CMakeFiles/rc_server.dir/master_service.cpp.o"
  "CMakeFiles/rc_server.dir/master_service.cpp.o.d"
  "CMakeFiles/rc_server.dir/migration.cpp.o"
  "CMakeFiles/rc_server.dir/migration.cpp.o.d"
  "CMakeFiles/rc_server.dir/recovery_task.cpp.o"
  "CMakeFiles/rc_server.dir/recovery_task.cpp.o.d"
  "CMakeFiles/rc_server.dir/replica_manager.cpp.o"
  "CMakeFiles/rc_server.dir/replica_manager.cpp.o.d"
  "librc_server.a"
  "librc_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
