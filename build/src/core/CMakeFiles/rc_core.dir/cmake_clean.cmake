file(REMOVE_RECURSE
  "CMakeFiles/rc_core.dir/autoscaler.cpp.o"
  "CMakeFiles/rc_core.dir/autoscaler.cpp.o.d"
  "CMakeFiles/rc_core.dir/cluster.cpp.o"
  "CMakeFiles/rc_core.dir/cluster.cpp.o.d"
  "CMakeFiles/rc_core.dir/experiment.cpp.o"
  "CMakeFiles/rc_core.dir/experiment.cpp.o.d"
  "CMakeFiles/rc_core.dir/recovery_experiment.cpp.o"
  "CMakeFiles/rc_core.dir/recovery_experiment.cpp.o.d"
  "CMakeFiles/rc_core.dir/table_format.cpp.o"
  "CMakeFiles/rc_core.dir/table_format.cpp.o.d"
  "librc_core.a"
  "librc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
