file(REMOVE_RECURSE
  "librc_power.a"
)
