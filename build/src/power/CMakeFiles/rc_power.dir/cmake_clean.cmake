file(REMOVE_RECURSE
  "CMakeFiles/rc_power.dir/pdu.cpp.o"
  "CMakeFiles/rc_power.dir/pdu.cpp.o.d"
  "librc_power.a"
  "librc_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
