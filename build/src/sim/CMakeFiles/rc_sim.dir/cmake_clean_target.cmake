file(REMOVE_RECURSE
  "librc_sim.a"
)
