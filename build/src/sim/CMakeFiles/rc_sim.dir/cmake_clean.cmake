file(REMOVE_RECURSE
  "CMakeFiles/rc_sim.dir/fifo_lock.cpp.o"
  "CMakeFiles/rc_sim.dir/fifo_lock.cpp.o.d"
  "CMakeFiles/rc_sim.dir/rng.cpp.o"
  "CMakeFiles/rc_sim.dir/rng.cpp.o.d"
  "CMakeFiles/rc_sim.dir/simulation.cpp.o"
  "CMakeFiles/rc_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/rc_sim.dir/stats.cpp.o"
  "CMakeFiles/rc_sim.dir/stats.cpp.o.d"
  "librc_sim.a"
  "librc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
