# Empty dependencies file for rc_sim.
# This may be replaced when dependencies are built.
