# Empty compiler generated dependencies file for rc_hash.
# This may be replaced when dependencies are built.
