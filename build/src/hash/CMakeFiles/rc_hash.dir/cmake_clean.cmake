file(REMOVE_RECURSE
  "CMakeFiles/rc_hash.dir/object_map.cpp.o"
  "CMakeFiles/rc_hash.dir/object_map.cpp.o.d"
  "librc_hash.a"
  "librc_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
