file(REMOVE_RECURSE
  "librc_hash.a"
)
