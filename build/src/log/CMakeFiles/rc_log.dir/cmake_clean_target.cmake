file(REMOVE_RECURSE
  "librc_log.a"
)
