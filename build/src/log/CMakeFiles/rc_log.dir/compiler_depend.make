# Empty compiler generated dependencies file for rc_log.
# This may be replaced when dependencies are built.
