
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/log/cleaner.cpp" "src/log/CMakeFiles/rc_log.dir/cleaner.cpp.o" "gcc" "src/log/CMakeFiles/rc_log.dir/cleaner.cpp.o.d"
  "/root/repo/src/log/log.cpp" "src/log/CMakeFiles/rc_log.dir/log.cpp.o" "gcc" "src/log/CMakeFiles/rc_log.dir/log.cpp.o.d"
  "/root/repo/src/log/segment.cpp" "src/log/CMakeFiles/rc_log.dir/segment.cpp.o" "gcc" "src/log/CMakeFiles/rc_log.dir/segment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
