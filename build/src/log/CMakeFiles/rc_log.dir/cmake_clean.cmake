file(REMOVE_RECURSE
  "CMakeFiles/rc_log.dir/cleaner.cpp.o"
  "CMakeFiles/rc_log.dir/cleaner.cpp.o.d"
  "CMakeFiles/rc_log.dir/log.cpp.o"
  "CMakeFiles/rc_log.dir/log.cpp.o.d"
  "CMakeFiles/rc_log.dir/segment.cpp.o"
  "CMakeFiles/rc_log.dir/segment.cpp.o.d"
  "librc_log.a"
  "librc_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
