file(REMOVE_RECURSE
  "CMakeFiles/rc_client.dir/ramcloud_client.cpp.o"
  "CMakeFiles/rc_client.dir/ramcloud_client.cpp.o.d"
  "librc_client.a"
  "librc_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
