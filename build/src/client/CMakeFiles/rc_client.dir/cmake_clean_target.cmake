file(REMOVE_RECURSE
  "librc_client.a"
)
