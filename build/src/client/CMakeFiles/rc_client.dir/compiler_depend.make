# Empty compiler generated dependencies file for rc_client.
# This may be replaced when dependencies are built.
