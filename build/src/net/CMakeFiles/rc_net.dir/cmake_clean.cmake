file(REMOVE_RECURSE
  "CMakeFiles/rc_net.dir/network.cpp.o"
  "CMakeFiles/rc_net.dir/network.cpp.o.d"
  "CMakeFiles/rc_net.dir/rpc.cpp.o"
  "CMakeFiles/rc_net.dir/rpc.cpp.o.d"
  "librc_net.a"
  "librc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
