# Empty compiler generated dependencies file for rc_net.
# This may be replaced when dependencies are built.
