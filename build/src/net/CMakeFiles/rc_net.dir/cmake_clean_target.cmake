file(REMOVE_RECURSE
  "librc_net.a"
)
