# Empty compiler generated dependencies file for rc_node.
# This may be replaced when dependencies are built.
