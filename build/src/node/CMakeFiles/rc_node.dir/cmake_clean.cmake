file(REMOVE_RECURSE
  "CMakeFiles/rc_node.dir/cpu_scheduler.cpp.o"
  "CMakeFiles/rc_node.dir/cpu_scheduler.cpp.o.d"
  "CMakeFiles/rc_node.dir/disk.cpp.o"
  "CMakeFiles/rc_node.dir/disk.cpp.o.d"
  "CMakeFiles/rc_node.dir/node.cpp.o"
  "CMakeFiles/rc_node.dir/node.cpp.o.d"
  "librc_node.a"
  "librc_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
