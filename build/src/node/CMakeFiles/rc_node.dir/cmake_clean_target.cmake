file(REMOVE_RECURSE
  "librc_node.a"
)
