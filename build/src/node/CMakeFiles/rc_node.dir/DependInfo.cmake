
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/node/cpu_scheduler.cpp" "src/node/CMakeFiles/rc_node.dir/cpu_scheduler.cpp.o" "gcc" "src/node/CMakeFiles/rc_node.dir/cpu_scheduler.cpp.o.d"
  "/root/repo/src/node/disk.cpp" "src/node/CMakeFiles/rc_node.dir/disk.cpp.o" "gcc" "src/node/CMakeFiles/rc_node.dir/disk.cpp.o.d"
  "/root/repo/src/node/node.cpp" "src/node/CMakeFiles/rc_node.dir/node.cpp.o" "gcc" "src/node/CMakeFiles/rc_node.dir/node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/rc_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
