# Empty dependencies file for elastic_cluster.
# This may be replaced when dependencies are built.
