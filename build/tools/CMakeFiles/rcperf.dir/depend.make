# Empty dependencies file for rcperf.
# This may be replaced when dependencies are built.
