file(REMOVE_RECURSE
  "CMakeFiles/rcperf.dir/rcperf.cpp.o"
  "CMakeFiles/rcperf.dir/rcperf.cpp.o.d"
  "rcperf"
  "rcperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
