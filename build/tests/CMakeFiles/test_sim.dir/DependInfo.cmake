
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/test_sim.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ycsb/CMakeFiles/rc_ycsb.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/rc_client.dir/DependInfo.cmake"
  "/root/repo/build/src/coordinator/CMakeFiles/rc_coordinator.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/rc_server.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/rc_node.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/rc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/rc_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/rc_log.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
