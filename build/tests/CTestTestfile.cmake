# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_node[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_log[1]_include.cmake")
include("/root/repo/build/tests/test_hash[1]_include.cmake")
include("/root/repo/build/tests/test_server[1]_include.cmake")
include("/root/repo/build/tests/test_coordinator[1]_include.cmake")
include("/root/repo/build/tests/test_client[1]_include.cmake")
include("/root/repo/build/tests/test_ycsb[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_migration[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_format[1]_include.cmake")
