# Empty compiler generated dependencies file for bench_fig12_disk_activity.
# This may be replaced when dependencies are built.
