# Empty compiler generated dependencies file for bench_fig11_recovery_rf.
# This may be replaced when dependencies are built.
