file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_recovery_rf.dir/bench_fig11_recovery_rf.cpp.o"
  "CMakeFiles/bench_fig11_recovery_rf.dir/bench_fig11_recovery_rf.cpp.o.d"
  "bench_fig11_recovery_rf"
  "bench_fig11_recovery_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_recovery_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
