file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_cleaner.dir/bench_ext_cleaner.cpp.o"
  "CMakeFiles/bench_ext_cleaner.dir/bench_ext_cleaner.cpp.o.d"
  "bench_ext_cleaner"
  "bench_ext_cleaner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cleaner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
