# Empty dependencies file for bench_ext_cleaner.
# This may be replaced when dependencies are built.
