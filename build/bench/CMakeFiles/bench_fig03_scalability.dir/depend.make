# Empty dependencies file for bench_fig03_scalability.
# This may be replaced when dependencies are built.
