# Empty compiler generated dependencies file for bench_fig08_efficiency_rf.
# This may be replaced when dependencies are built.
