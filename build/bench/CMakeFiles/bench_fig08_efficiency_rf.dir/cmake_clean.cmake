file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_efficiency_rf.dir/bench_fig08_efficiency_rf.cpp.o"
  "CMakeFiles/bench_fig08_efficiency_rf.dir/bench_fig08_efficiency_rf.cpp.o.d"
  "bench_fig08_efficiency_rf"
  "bench_fig08_efficiency_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_efficiency_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
