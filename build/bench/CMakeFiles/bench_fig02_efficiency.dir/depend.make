# Empty dependencies file for bench_fig02_efficiency.
# This may be replaced when dependencies are built.
