file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_replication.dir/bench_fig05_replication.cpp.o"
  "CMakeFiles/bench_fig05_replication.dir/bench_fig05_replication.cpp.o.d"
  "bench_fig05_replication"
  "bench_fig05_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
