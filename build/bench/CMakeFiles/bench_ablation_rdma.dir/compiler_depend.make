# Empty compiler generated dependencies file for bench_ablation_rdma.
# This may be replaced when dependencies are built.
