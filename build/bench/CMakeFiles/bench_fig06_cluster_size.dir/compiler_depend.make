# Empty compiler generated dependencies file for bench_fig06_cluster_size.
# This may be replaced when dependencies are built.
