file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_cluster_size.dir/bench_fig06_cluster_size.cpp.o"
  "CMakeFiles/bench_fig06_cluster_size.dir/bench_fig06_cluster_size.cpp.o.d"
  "bench_fig06_cluster_size"
  "bench_fig06_cluster_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_cluster_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
