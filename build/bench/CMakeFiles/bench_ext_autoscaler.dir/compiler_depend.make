# Empty compiler generated dependencies file for bench_ext_autoscaler.
# This may be replaced when dependencies are built.
