file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_autoscaler.dir/bench_ext_autoscaler.cpp.o"
  "CMakeFiles/bench_ext_autoscaler.dir/bench_ext_autoscaler.cpp.o.d"
  "bench_ext_autoscaler"
  "bench_ext_autoscaler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_autoscaler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
