# Empty dependencies file for bench_fig07_power_rf.
# This may be replaced when dependencies are built.
