file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_throttling.dir/bench_fig13_throttling.cpp.o"
  "CMakeFiles/bench_fig13_throttling.dir/bench_fig13_throttling.cpp.o.d"
  "bench_fig13_throttling"
  "bench_fig13_throttling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_throttling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
