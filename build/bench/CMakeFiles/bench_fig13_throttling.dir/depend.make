# Empty dependencies file for bench_fig13_throttling.
# This may be replaced when dependencies are built.
