// Tests for tablet migration, graceful decommission and the autoscaler
// (the SS IX cluster-resizing machinery).

#include <gtest/gtest.h>

#include "core/autoscaler.hpp"
#include "core/cluster.hpp"

namespace rc {
namespace {

using sim::msec;
using sim::seconds;

core::ClusterParams params(int servers, int clients, int rf) {
  core::ClusterParams p;
  p.servers = servers;
  p.clients = clients;
  p.replicationFactor = rf;
  return p;
}

TEST(Migration, MovesAllObjectsAndFlipsOwnership) {
  core::Cluster c(params(3, 1, 0));
  const auto table = c.createTable("t");
  c.bulkLoad(table, 9'000, 1000);

  const auto srcId = c.serverNodeId(0);
  const auto tablets = c.coord().tabletMap().tabletsOwnedBy(srcId);
  ASSERT_EQ(tablets.size(), 1u);
  const auto before = c.server(0).master->objectMap().size();
  ASSERT_GT(before, 1000u);
  const auto destBefore = c.server(1).master->objectMap().size();

  bool ok = false;
  c.migrateTablet(tablets[0], 1, [&ok](bool r) { ok = r; });
  c.sim().runFor(seconds(20));
  ASSERT_TRUE(ok);

  // Ownership flipped; objects moved; source empty of that range.
  EXPECT_TRUE(c.coord().tabletMap().tabletsOwnedBy(srcId).empty());
  EXPECT_EQ(c.server(0).master->objectMap().size(), 0u);
  EXPECT_EQ(c.server(1).master->objectMap().size(), destBefore + before);
  // Every key still readable via the map.
  EXPECT_TRUE(c.verifyAllKeysPresent(table, 9'000));
}

TEST(Migration, ClientOpsSurviveMigration) {
  core::Cluster c(params(3, 1, 0));
  const auto table = c.createTable("t");
  c.bulkLoad(table, 6'000, 1000);
  auto& rc0 = *c.clientHost(0).rc;

  // Continuous mixed traffic against all keys during the migration.
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  bool running = true;
  sim::Rng keys(5);
  std::function<void()> loop = [&] {
    if (!running) return;
    const std::uint64_t k = keys.uniformInt(6'000);
    auto cb = [&](net::Status s, sim::Duration) {
      (s == net::Status::kOk) ? ++completed : ++failed;
      c.sim().schedule(sim::usec(200), loop);
    };
    if (keys.bernoulli(0.3)) {
      rc0.write(table, k, 1000, cb);
    } else {
      rc0.read(table, k, cb);
    }
  };
  loop();
  c.sim().runFor(seconds(1));

  const auto tablets =
      c.coord().tabletMap().tabletsOwnedBy(c.serverNodeId(0));
  bool ok = false;
  c.migrateTablet(tablets[0], 2, [&ok](bool r) { ok = r; });
  c.sim().runFor(seconds(20));
  running = false;
  ASSERT_TRUE(ok);
  EXPECT_GT(completed, 1000u);
  EXPECT_EQ(failed, 0u);  // writes were bounced+retried, never failed
  EXPECT_TRUE(c.verifyAllKeysPresent(table, 6'000));
}

TEST(Migration, MigratedDataIsDurable) {
  // rf=2 destination replication: after the move, crash the NEW owner and
  // verify everything still recovers.
  core::Cluster c(params(4, 1, 2));
  const auto table = c.createTable("t");
  c.bulkLoad(table, 8'000, 1000);
  const auto tablets =
      c.coord().tabletMap().tabletsOwnedBy(c.serverNodeId(0));
  bool ok = false;
  c.migrateTablet(tablets[0], 1, [&ok](bool r) { ok = r; });
  c.sim().runFor(seconds(30));
  ASSERT_TRUE(ok);

  c.crashServer(1);  // the destination
  for (int i = 0; i < 900 && c.coord().recoveryLog().empty(); ++i) {
    c.sim().runFor(msec(100));
  }
  ASSERT_FALSE(c.coord().recoveryLog().empty());
  EXPECT_TRUE(c.coord().recoveryLog().front().succeeded);
  EXPECT_TRUE(c.verifyAllKeysPresent(table, 8'000));
}

TEST(Migration, DrainEmptiesAServer) {
  core::Cluster c(params(4, 0, 1));
  const auto table = c.createTable("t");
  c.bulkLoad(table, 4'000, 1000);
  bool ok = false;
  c.drainServer(2, [&ok](bool r) { ok = r; });
  c.sim().runFor(seconds(30));
  ASSERT_TRUE(ok);
  EXPECT_TRUE(
      c.coord().tabletMap().tabletsOwnedBy(c.serverNodeId(2)).empty());
  EXPECT_TRUE(c.verifyAllKeysPresent(table, 4'000));
}

TEST(Migration, SuspendRefusedWhileOwningTablets) {
  core::Cluster c(params(3, 0, 0));
  c.createTable("t");
  EXPECT_FALSE(c.suspendServer(0));
}

TEST(Migration, SuspendedServerDrawsStandbyPower) {
  core::Cluster c(params(3, 0, 0));
  const auto table = c.createTable("t");
  c.bulkLoad(table, 1'000, 1000);
  bool ok = false;
  c.drainServer(2, [&ok](bool r) { ok = r; });
  c.sim().runFor(seconds(10));
  ASSERT_TRUE(ok);
  ASSERT_TRUE(c.suspendServer(2));

  auto snap = c.server(2).node->snapshotPower();
  c.sim().runFor(seconds(10));
  EXPECT_NEAR(c.server(2).node->meanWattsSince(snap, c.sim().now()), 9.0,
              0.5);
  // An active idle peer draws the RAMCloud idle ~76 W.
  auto snap0 = c.server(0).node->snapshotPower();
  c.sim().runFor(seconds(10));
  EXPECT_GT(c.server(0).node->meanWattsSince(snap0, c.sim().now()), 70.0);
}

TEST(Migration, ResumeRejoinsCluster) {
  core::Cluster c(params(3, 1, 0));
  const auto table = c.createTable("t");
  c.bulkLoad(table, 3'000, 1000);
  bool ok = false;
  c.drainServer(1, [&ok](bool r) { ok = r; });
  c.sim().runFor(seconds(20));
  ASSERT_TRUE(ok);
  ASSERT_TRUE(c.suspendServer(1));
  EXPECT_EQ(c.activeServerCount(), 2);

  c.resumeServer(1);
  EXPECT_EQ(c.activeServerCount(), 3);
  // Migrate something back onto it and read through it.
  const auto tablets =
      c.coord().tabletMap().tabletsOwnedBy(c.serverNodeId(0));
  ASSERT_FALSE(tablets.empty());
  bool ok2 = false;
  c.migrateTablet(tablets[0], 1, [&ok2](bool r) { ok2 = r; });
  c.sim().runFor(seconds(20));
  ASSERT_TRUE(ok2);
  EXPECT_TRUE(c.verifyAllKeysPresent(table, 3'000));
}

TEST(Migration, RefusedForUnknownTabletOrDeadDestination) {
  core::Cluster c(params(3, 0, 0));
  const auto table = c.createTable("t");
  c.bulkLoad(table, 1'000, 1000);

  // Bogus tablet boundaries -> refused.
  server::Tablet bogus;
  bogus.tableId = table;
  bogus.startHash = 1;
  bogus.endHash = 2;
  bool called = false;
  bool ok = true;
  c.migrateTablet(bogus, 1, [&](bool r) {
    called = true;
    ok = r;
  });
  c.sim().runFor(seconds(1));
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);

  // Dead destination -> refused.
  c.coord().stopFailureDetector();
  c.crashServer(2);
  const auto tablets =
      c.coord().tabletMap().tabletsOwnedBy(c.serverNodeId(0));
  ASSERT_FALSE(tablets.empty());
  called = false;
  ok = true;
  c.migrateTablet(tablets[0], 2, [&](bool r) {
    called = true;
    ok = r;
  });
  c.sim().runFor(seconds(2));
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
  // The tablet stayed where it was.
  EXPECT_EQ(c.coord().tabletMap().tabletsOwnedBy(c.serverNodeId(0)).size(),
            tablets.size());
}

TEST(Migration, SourceCrashDuringMigrationRecovers) {
  core::Cluster c(params(4, 0, 2));
  const auto table = c.createTable("t");
  c.bulkLoad(table, 20'000, 1000);
  c.sim().runFor(seconds(1));

  const auto tablets =
      c.coord().tabletMap().tabletsOwnedBy(c.serverNodeId(0));
  bool called = false;
  c.migrateTablet(tablets[0], 1, [&](bool) { called = true; });
  // Kill the source while batches are still in flight (the full move
  // takes ~15 ms): the migration dies with it and recovery must bring
  // the data back.
  c.sim().runFor(msec(2));
  ASSERT_FALSE(called);  // still migrating
  c.crashServer(0);
  for (int i = 0; i < 900 && c.coord().recoveryLog().empty(); ++i) {
    c.sim().runFor(msec(100));
  }
  ASSERT_FALSE(c.coord().recoveryLog().empty());
  EXPECT_TRUE(c.coord().recoveryLog().front().succeeded);
  EXPECT_TRUE(c.verifyAllKeysPresent(table, 20'000));
  (void)called;
}

TEST(Autoscaler, ScalesDownWhenIdleAndBackUpUnderLoad) {
  core::ClusterParams p = params(6, 12, 1);
  core::Cluster c(p);
  const auto table = c.createTable("t");
  c.bulkLoad(table, 50'000, 1000);

  core::AutoscalerParams ap;
  ap.interval = seconds(1);
  ap.minActive = 3;
  ap.confirmTicks = 2;
  // 12 read-only clients on 3 servers settle around ~72% CPU; trigger
  // above the comfortable band.
  ap.highWaterCpu = 0.65;
  core::Autoscaler scaler(c, ap);
  scaler.start();

  // Idle phase: no clients running -> CPU 25% -> scale down to minActive.
  c.sim().runFor(seconds(40));
  EXPECT_GE(scaler.scaleDowns(), 1);
  EXPECT_EQ(c.activeServerCount(), 3);
  EXPECT_TRUE(c.verifyAllKeysPresent(table, 50'000));

  // Load phase: hammer the (smaller) cluster -> scale back up.
  ycsb::YcsbClientParams ycp;
  c.configureYcsb(table, ycsb::WorkloadSpec::C(50'000), ycp);
  c.startYcsb();
  c.sim().runFor(seconds(60));
  EXPECT_GE(scaler.scaleUps(), 1);
  EXPECT_GT(c.activeServerCount(), 3);
  c.stopYcsb();
  scaler.stop();
  EXPECT_TRUE(c.verifyAllKeysPresent(table, 50'000));
  EXPECT_EQ(c.totalOpFailures(), 0u);
}

}  // namespace
}  // namespace rc
