// Focused tests of crash-recovery semantics: replica watermarks, backup
// partition filtering, version-ordered replay, and the disk/backpressure
// path that shapes the paper's Findings 5 and 6.

#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "core/recovery_experiment.hpp"
#include "server/backup_service.hpp"
#include "server/master_service.hpp"

namespace rc::server {
namespace {

using sim::msec;
using sim::seconds;

core::ClusterParams params(int servers, int rf,
                           std::uint64_t segBytes = 8 * 1024 * 1024) {
  core::ClusterParams p;
  p.servers = servers;
  p.clients = 1;
  p.replicationFactor = rf;
  p.master.log.segmentBytes = segBytes;
  return p;
}

TEST(BackupFilter, PartitionsAreDisjointAndComplete) {
  core::Cluster c(params(4, 2));
  const auto table = c.createTable("t");
  c.bulkLoad(table, 5'000, 1000);

  // Build a 3-partition spec over server 1's tablets by hand.
  const auto victim = c.serverNodeId(0);
  const auto tablets = c.coord().tabletMap().tabletsOwnedBy(victim);
  ASSERT_FALSE(tablets.empty());
  std::vector<PartitionSpec> parts(3);
  for (const auto& t : tablets) {
    const std::uint64_t step = (t.endHash - t.startHash) / 3;
    for (int i = 0; i < 3; ++i) {
      Tablet sub = t;
      sub.startHash = t.startHash + static_cast<std::uint64_t>(i) * step;
      sub.endHash = i == 2 ? t.endHash : sub.startHash + step - 1;
      parts[static_cast<std::size_t>(i)].ranges.push_back(sub);
    }
  }

  // Pick any backup frame of the victim and check the filter.
  std::size_t total = 0;
  std::size_t inSegment = 0;
  bool found = false;
  for (int i = 1; i < c.serverCount() && !found; ++i) {
    auto* bs = c.server(i).backup.get();
    for (const auto& fi : bs->framesForMaster(victim)) {
      std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
      for (int pi = 0; pi < 3; ++pi) {
        for (const auto& e : bs->filteredEntries(
                 victim, fi.segment, parts[static_cast<std::size_t>(pi)])) {
          // Disjoint: no entry may appear in two partitions.
          EXPECT_TRUE(seen.insert({e.keyId, e.version}).second);
          ++total;
        }
      }
      // Complete: the union must equal the unfiltered watermark count.
      PartitionSpec all;
      all.ranges = tablets;
      inSegment += bs->filteredEntries(victim, fi.segment, all).size();
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  EXPECT_EQ(total, inSegment);
  EXPECT_GT(total, 0u);
}

TEST(BackupFilter, WatermarkExcludesUnreplicatedTail) {
  // Install a frame whose acked watermark covers only part of a segment:
  // filtering must stop at the watermark.
  core::Cluster c(params(2, 0));
  const auto table = c.createTable("t", 1);
  auto& master = *c.server(0).master;
  for (std::uint64_t k = 0; k < 10; ++k) {
    master.bulkInsert(table, k, 1000, c.sim().now());
  }
  auto seg = master.log().sharedSegment(
      master.log().segments().begin()->first);
  ASSERT_NE(seg, nullptr);
  ASSERT_EQ(seg->entryCount(), 10u);

  auto* bs = c.server(1).backup.get();
  // Watermark = 5 entries' worth of bytes.
  bs->bulkInstallFrame(c.serverNodeId(0), seg, 5 * 1100, true, false);
  PartitionSpec all;
  Tablet t;
  t.tableId = table;
  all.ranges.push_back(t);
  const auto entries =
      bs->filteredEntries(c.serverNodeId(0), seg->id(), all);
  EXPECT_EQ(entries.size(), 5u);
}

TEST(Recovery, OnlyAckedBytesAreRestored) {
  // A write whose replication never completed (master died mid-sync) must
  // not resurrect: the acked prefix defines the durable state.
  core::Cluster c(params(3, 1));
  const auto table = c.createTable("t");
  c.bulkLoad(table, 3'000, 1000);
  c.sim().runFor(seconds(1));
  c.crashServer(0);
  for (int i = 0; i < 600 && c.coord().recoveryLog().empty(); ++i) {
    c.sim().runFor(msec(100));
  }
  ASSERT_FALSE(c.coord().recoveryLog().empty());
  EXPECT_TRUE(c.coord().recoveryLog().front().succeeded);
  EXPECT_TRUE(c.verifyAllKeysPresent(table, 3'000));
}

TEST(Recovery, ReplayPrefersNewestVersion) {
  // Overwrites produce multiple entries for one key across segments; the
  // recovered object must carry the highest acked version.
  core::Cluster c(params(4, 2, /*segBytes=*/64 * 1024));
  const auto table = c.createTable("t");
  auto& rc0 = *c.clientHost(0).rc;

  // Write the same keys repeatedly so old versions span many segments.
  int pending = 0;
  std::map<std::uint64_t, std::uint64_t> lastVersion;
  for (int round = 0; round < 8; ++round) {
    for (std::uint64_t k = 0; k < 50; ++k) {
      ++pending;
      rc0.write(table, k, 1000, [&pending](net::Status s, sim::Duration) {
        ASSERT_EQ(s, net::Status::kOk);
        --pending;
      });
    }
    while (pending > 0) c.sim().runFor(msec(20));
  }
  // Record authoritative versions per key before the crash.
  for (std::uint64_t k = 0; k < 50; ++k) {
    const auto owner = c.ownerOfKey(table, k);
    const auto* loc =
        c.directory().masterOn(owner)->objectMap().get(hash::Key{table, k});
    ASSERT_NE(loc, nullptr);
    lastVersion[k] = loc->version;
  }

  // Crash each owner of some keys one at a time? One crash suffices.
  c.crashServer(1);
  for (int i = 0; i < 600 && c.coord().recoveryLog().empty(); ++i) {
    c.sim().runFor(msec(100));
  }
  ASSERT_TRUE(c.coord().recoveryLog().front().succeeded);

  for (std::uint64_t k = 0; k < 50; ++k) {
    const auto owner = c.ownerOfKey(table, k);
    const auto* loc =
        c.directory().masterOn(owner)->objectMap().get(hash::Key{table, k});
    ASSERT_NE(loc, nullptr) << "key " << k;
    EXPECT_EQ(loc->version, lastVersion[k]) << "key " << k;
  }
}

TEST(Recovery, SpreadsDataAcrossAllSurvivors) {
  core::Cluster c(params(5, 2));
  const auto table = c.createTable("t");
  c.bulkLoad(table, 20'000, 1000);
  c.sim().runFor(seconds(1));
  const auto before0 = c.server(0).master->objectMap().size();
  c.crashServer(3);
  for (int i = 0; i < 900 && c.coord().recoveryLog().empty(); ++i) {
    c.sim().runFor(msec(100));
  }
  ASSERT_TRUE(c.coord().recoveryLog().front().succeeded);
  // Every survivor picked up a share (4 partitions over 4 masters).
  for (int i = 0; i < 5; ++i) {
    if (i == 3) continue;
    EXPECT_GT(c.server(i).master->objectMap().size(),
              before0 + 500);  // baseline plus a recovered share
  }
}

TEST(Recovery, ReRereplicationMakesRecoveredDataDurableAgain) {
  // After recovery, a SECOND crash (of a recovery master) must still lose
  // nothing: the replayed data was re-replicated.
  core::Cluster c(params(5, 2));
  const auto table = c.createTable("t");
  c.bulkLoad(table, 10'000, 1000);
  c.sim().runFor(seconds(1));
  c.crashServer(0);
  for (int i = 0; i < 900 && c.coord().recoveryLog().empty(); ++i) {
    c.sim().runFor(msec(100));
  }
  ASSERT_TRUE(c.coord().recoveryLog().front().succeeded);
  EXPECT_TRUE(c.verifyAllKeysPresent(table, 10'000));

  // Now kill one of the recovery masters.
  c.crashServer(2);
  for (int i = 0; i < 900 && c.coord().recoveryLog().size() < 2; ++i) {
    c.sim().runFor(msec(100));
  }
  ASSERT_GE(c.coord().recoveryLog().size(), 2u);
  EXPECT_TRUE(c.coord().recoveryLog()[1].succeeded);
  EXPECT_TRUE(c.verifyAllKeysPresent(table, 10'000));
}

TEST(Recovery, DiskReadsHappenWhenFramesWereFlushed) {
  // Bulk-loaded sealed segments sit on disk; recovery must read them back
  // (the paper Fig. 12's read activity).
  core::RecoveryExperimentConfig cfg;
  cfg.servers = 4;
  cfg.replicationFactor = 2;
  cfg.records = 100'000;
  cfg.killAt = seconds(3);
  cfg.settleAfter = seconds(1);
  const auto r = core::runRecoveryExperiment(cfg);
  ASSERT_TRUE(r.recovered);
  EXPECT_GT(r.diskReadMBps.maxValue(), 0.5);
}

TEST(Recovery, HigherRfWritesProportionallyMoreToDisk) {
  double written[2];
  int i = 0;
  for (int rf : {1, 3}) {
    core::RecoveryExperimentConfig cfg;
    cfg.servers = 5;
    cfg.replicationFactor = rf;
    cfg.records = 100'000;
    cfg.killAt = seconds(3);
    cfg.settleAfter = seconds(2);
    const auto r = core::runRecoveryExperiment(cfg);
    ASSERT_TRUE(r.recovered);
    double total = 0;
    for (const auto& p : r.diskWriteMBps.points()) {
      if (p.time > r.killTime) total += p.value;
    }
    written[i++] = total;
  }
  EXPECT_GT(written[1], 2.0 * written[0]);
}

}  // namespace
}  // namespace rc::server
