// Tests for the observability layer: metric registry, per-RPC time trace,
// 1 Hz stats sampler and the JSONL/CSV exporter — plus an end-to-end YCSB
// run checking that the exported series align with the PDU ticks and the
// per-stage RPC histograms are populated.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "obs/metric_registry.hpp"
#include "obs/metrics_exporter.hpp"
#include "obs/stats_sampler.hpp"
#include "obs/time_trace.hpp"
#include "ycsb/workload.hpp"

namespace rc::obs {
namespace {

using sim::msec;
using sim::seconds;
using sim::usec;
using Stage = TimeTrace::Stage;

// ----- MetricRegistry

TEST(MetricRegistry, RegistersAndReadsOwnedMetrics) {
  MetricRegistry reg;
  Counter& c = reg.counter("node1.master.reads", "ops");
  Gauge& g = reg.gauge("node1.master.dispatch.queue_depth", "items");
  sim::Histogram& h = reg.histogram("node1.master.read_service", "us");

  c.inc(3);
  g.set(7.5);
  h.add(usec(100));

  EXPECT_TRUE(reg.has("node1.master.reads"));
  EXPECT_FALSE(reg.has("node1.master.writes"));
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_DOUBLE_EQ(reg.value("node1.master.reads"), 3.0);
  EXPECT_DOUBLE_EQ(reg.value("node1.master.dispatch.queue_depth"), 7.5);
  ASSERT_NE(reg.histogramAt("node1.master.read_service"), nullptr);
  EXPECT_EQ(reg.histogramAt("node1.master.read_service")->count(), 1u);
  // value() on a histogram or an unknown name is 0, not a crash.
  EXPECT_DOUBLE_EQ(reg.value("node1.master.read_service"), 0.0);
  EXPECT_DOUBLE_EQ(reg.value("no.such.metric"), 0.0);

  const MetricInfo* info = reg.info("node1.master.reads");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->kind, MetricKind::kCounter);
  EXPECT_EQ(info->unit, "ops");
}

TEST(MetricRegistry, CreateOrGetReturnsSameObject) {
  MetricRegistry reg;
  Counter& a = reg.counter("x.ops", "ops");
  Counter& b = reg.counter("x.ops", "ops");
  EXPECT_EQ(&a, &b);
  a.inc();
  b.inc();
  EXPECT_DOUBLE_EQ(reg.value("x.ops"), 2.0);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricRegistry, ProbesReadLiveComponentState) {
  MetricRegistry reg;
  std::uint64_t legacyCounter = 0;
  double legacyDepth = 0;
  reg.probeCounter("svc.ops", "ops",
                   [&] { return static_cast<double>(legacyCounter); });
  reg.probeGauge("svc.depth", "items", [&] { return legacyDepth; });
  EXPECT_DOUBLE_EQ(reg.value("svc.ops"), 0.0);
  legacyCounter = 42;
  legacyDepth = 3;
  EXPECT_DOUBLE_EQ(reg.value("svc.ops"), 42.0);
  EXPECT_DOUBLE_EQ(reg.value("svc.depth"), 3.0);
}

TEST(MetricRegistry, EnumerationIsInsertionOrder) {
  MetricRegistry reg;
  reg.counter("b.second", "ops");
  reg.gauge("a.first", "items");  // lexicographically before, inserted after
  reg.counter("c.third", "ops");
  std::vector<std::string> names;
  reg.forEach([&](const MetricInfo& i) { names.push_back(i.name); });
  EXPECT_EQ(names,
            (std::vector<std::string>{"b.second", "a.first", "c.third"}));
}

TEST(MetricRegistry, SnapshotDeltaAndRate) {
  MetricRegistry reg;
  Counter& ops = reg.counter("svc.ops", "ops");
  Gauge& depth = reg.gauge("svc.depth", "items");

  ops.inc(10);
  depth.set(2);
  const MetricRegistry::Snapshot before = reg.snapshotValues();
  ops.inc(30);
  depth.set(5);
  const MetricRegistry::Snapshot after = reg.snapshotValues();

  EXPECT_DOUBLE_EQ(MetricRegistry::delta(before, after, "svc.ops"), 30.0);
  EXPECT_DOUBLE_EQ(MetricRegistry::delta(before, after, "svc.depth"), 3.0);
  EXPECT_DOUBLE_EQ(MetricRegistry::delta(before, after, "missing"), 0.0);
  EXPECT_DOUBLE_EQ(
      MetricRegistry::rate(before, after, "svc.ops", 0, seconds(2)), 15.0);
  // Degenerate windows are guarded.
  EXPECT_DOUBLE_EQ(
      MetricRegistry::rate(before, after, "svc.ops", seconds(2), seconds(2)),
      0.0);
  EXPECT_DOUBLE_EQ(
      MetricRegistry::rate(before, after, "svc.ops", seconds(3), seconds(2)),
      0.0);
}

// ----- TimeTrace

TEST(TimeTrace, StageAccountingIsExact) {
  sim::Simulation sim;
  TimeTrace tt(sim);
  std::uint64_t span = 0;
  sim.schedule(0, [&] { span = tt.beginSpan(); });
  sim.schedule(usec(5), [&] { tt.stamp(span, Stage::kNetworkRequest); });
  sim.schedule(usec(12), [&] { tt.stamp(span, Stage::kDispatchWait); });
  sim.schedule(usec(30), [&] { tt.stamp(span, Stage::kWorkerService); });
  sim.schedule(usec(47), [&] { tt.stamp(span, Stage::kReplicationWait); });
  sim.schedule(usec(52), [&] { tt.stamp(span, Stage::kNetworkReply); });
  sim.schedule(usec(52), [&] { tt.endSpan(span); });
  sim.run();

  EXPECT_NE(span, 0u);
  EXPECT_EQ(tt.spansStarted(), 1u);
  EXPECT_EQ(tt.spansCompleted(), 1u);
  EXPECT_EQ(tt.activeSpans(), 0u);
  // Each stage got exactly the wall time between consecutive stamps.
  EXPECT_EQ(tt.stageHistogram(Stage::kNetworkRequest).max(), usec(5));
  EXPECT_EQ(tt.stageHistogram(Stage::kDispatchWait).max(), usec(7));
  EXPECT_EQ(tt.stageHistogram(Stage::kWorkerService).max(), usec(18));
  EXPECT_EQ(tt.stageHistogram(Stage::kReplicationWait).max(), usec(17));
  EXPECT_EQ(tt.stageHistogram(Stage::kNetworkReply).max(), usec(5));
  EXPECT_EQ(tt.stageHistogram(Stage::kTotal).max(), usec(52));
  for (std::size_t i = 0; i < TimeTrace::kNumStages; ++i) {
    EXPECT_EQ(tt.stageHistogram(static_cast<Stage>(i)).count(), 1u);
  }
}

TEST(TimeTrace, UnknownOrEndedSpanIsNoOp) {
  sim::Simulation sim;
  TimeTrace tt(sim);
  tt.stamp(999, Stage::kDispatchWait);  // never started
  tt.endSpan(999);
  const std::uint64_t span = tt.beginSpan();
  tt.endSpan(span);
  tt.stamp(span, Stage::kWorkerService);  // late stamp after end (timeout)
  tt.endSpan(span);                       // double end
  EXPECT_EQ(tt.spansStarted(), 1u);
  EXPECT_EQ(tt.spansCompleted(), 1u);
  EXPECT_EQ(tt.stageHistogram(Stage::kDispatchWait).count(), 0u);
  EXPECT_EQ(tt.stageHistogram(Stage::kWorkerService).count(), 0u);
  EXPECT_EQ(tt.stageHistogram(Stage::kTotal).count(), 1u);
}

TEST(TimeTrace, RingKeepsMostRecentEventsOldestFirst) {
  sim::Simulation sim;
  TimeTrace tt(sim, /*ringCapacity=*/4);
  for (int i = 0; i < 6; ++i) {
    const std::uint64_t s = tt.beginSpan();
    tt.endSpan(s);  // one kTotal event per span
  }
  const auto events = tt.recentEvents();
  ASSERT_EQ(events.size(), 4u);
  // Spans 3..6 survive, oldest first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].span, 3 + i);
    EXPECT_EQ(events[i].stage, Stage::kTotal);
  }
}

TEST(TimeTrace, RegisterMetricsExposesStagesAndCounts) {
  sim::Simulation sim;
  TimeTrace tt(sim);
  MetricRegistry reg;
  tt.registerMetrics(reg, "cluster.rpc");
  const std::uint64_t span = tt.beginSpan();
  tt.stamp(span, Stage::kDispatchWait);
  EXPECT_TRUE(reg.has("cluster.rpc.stage.dispatch_wait"));
  EXPECT_TRUE(reg.has("cluster.rpc.stage.replication_wait"));
  ASSERT_NE(reg.histogramAt("cluster.rpc.stage.dispatch_wait"), nullptr);
  EXPECT_EQ(reg.histogramAt("cluster.rpc.stage.dispatch_wait")->count(), 1u);
  EXPECT_DOUBLE_EQ(reg.value("cluster.rpc.spans_started"), 1.0);
  EXPECT_DOUBLE_EQ(reg.value("cluster.rpc.spans_completed"), 0.0);
  EXPECT_DOUBLE_EQ(reg.value("cluster.rpc.active_spans"), 1.0);
}

// ----- Histogram percentile edges (regression: p0/p100 must stay inside
// the observed [min, max] even for degenerate histograms)

TEST(HistogramPercentiles, OneSampleReportsThatSampleEverywhere) {
  sim::Histogram h;
  h.add(usec(250));
  EXPECT_EQ(h.percentile(0.0), h.percentile(1.0));
  EXPECT_GE(h.percentile(0.0), h.min());
  EXPECT_LE(h.percentile(1.0), h.max());
  const HistogramSummary s = summarizeHistogram(h);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.p50Us, s.p99Us);
  EXPECT_GE(s.p50Us, sim::toMicros(h.min()));
  EXPECT_LE(s.p99Us, s.maxUs);
}

TEST(HistogramPercentiles, AllEqualSamplesCollapseToOneValue) {
  sim::Histogram h;
  for (int i = 0; i < 1000; ++i) h.add(usec(42));
  const HistogramSummary s = summarizeHistogram(h);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.p50Us, s.p90Us);
  EXPECT_DOUBLE_EQ(s.p90Us, s.p99Us);
  EXPECT_LE(s.p99Us, s.maxUs);
  EXPECT_GE(s.p50Us, sim::toMicros(h.min()));
}

TEST(HistogramPercentiles, EmptyHistogramIsAllZero) {
  sim::Histogram h;
  EXPECT_EQ(h.percentile(0.5), 0);
  const HistogramSummary s = summarizeHistogram(h);
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p50Us, 0.0);
  EXPECT_DOUBLE_EQ(s.maxUs, 0.0);
}

TEST(HistogramPercentiles, OrderedAcrossQuantiles) {
  sim::Histogram h;
  for (int i = 1; i <= 10'000; ++i) h.add(usec(i));
  double prev = 0;
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double v = sim::toMicros(h.percentile(q));
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  EXPECT_LE(prev, sim::toMicros(h.max()) + 1e-9);
}

// ----- TimeTrace abandonSpan (regression: a client whose RPC times out
// against a crashed node must drop the span without recording a bogus
// total-latency sample)

TEST(TimeTrace, AbandonedSpanLeavesNoSample) {
  sim::Simulation sim;
  TimeTrace tt(sim);
  MetricRegistry reg;
  tt.registerMetrics(reg, "cluster.rpc");

  const std::uint64_t span = tt.beginSpan();
  tt.stamp(span, Stage::kNetworkRequest);
  tt.abandonSpan(span);

  EXPECT_EQ(tt.spansStarted(), 1u);
  EXPECT_EQ(tt.spansCompleted(), 0u);
  EXPECT_EQ(tt.spansAbandoned(), 1u);
  EXPECT_EQ(tt.activeSpans(), 0u);
  // No total-latency sample: the span never completed.
  EXPECT_EQ(tt.stageHistogram(Stage::kTotal).count(), 0u);
  EXPECT_DOUBLE_EQ(reg.value("cluster.rpc.spans_abandoned"), 1.0);

  // Late stamps / ends / double abandon on the dead span are no-ops.
  tt.stamp(span, Stage::kWorkerService);
  tt.endSpan(span);
  tt.abandonSpan(span);
  EXPECT_EQ(tt.spansAbandoned(), 1u);
  EXPECT_EQ(tt.spansCompleted(), 0u);
  EXPECT_EQ(tt.stageHistogram(Stage::kWorkerService).count(), 0u);
}

// ----- EventJournal

TEST(EventJournal, SpanLifecycleAndAttributes) {
  sim::Simulation sim;
  EventJournal j(sim);

  EventJournal::SpanId root = 0;
  EventJournal::SpanId child = 0;
  sim.schedule(0, [&] { root = j.beginSpan("recovery", 0, 0, 7); });
  sim.schedule(msec(1), [&] {
    child = j.beginSpan("replay", 3, root, 7);
    j.addBytes(child, 1000);
    j.addBytes(child, 500);
    j.addCount(child, 25);
  });
  sim.schedule(msec(5), [&] { j.endSpan(child); });
  sim.schedule(msec(9), [&] { j.endSpan(root); });
  sim.run();

  ASSERT_NE(root, 0u);
  ASSERT_NE(child, 0u);
  const auto* c = j.span(child);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->parent, root);
  EXPECT_EQ(c->ctx, 7u);
  EXPECT_EQ(c->node, 3);
  EXPECT_EQ(c->bytes, 1500u);
  EXPECT_EQ(c->count, 25u);
  EXPECT_FALSE(c->open);
  EXPECT_FALSE(c->abandoned);
  EXPECT_EQ(c->duration(), msec(4));
  EXPECT_EQ(j.spansStarted(), 2u);
  EXPECT_EQ(j.spansCompleted(), 2u);
  EXPECT_EQ(j.openSpans(), 0u);
  EXPECT_EQ(j.spansInCtx(7).size(), 2u);
  EXPECT_EQ(j.spansNamed("replay").size(), 1u);
  // Unknown ids are no-ops, double close does not double count.
  j.endSpan(999);
  j.addBytes(999, 1);
  j.endSpan(child);
  EXPECT_EQ(j.spansCompleted(), 2u);
}

TEST(EventJournal, EventIsAClosedZeroDurationSpan) {
  sim::Simulation sim;
  EventJournal j(sim);
  const auto id = j.event("tablet_remap", 0, 0, 1);
  const auto* s = j.span(id);
  ASSERT_NE(s, nullptr);
  EXPECT_FALSE(s->open);
  EXPECT_EQ(s->begin, s->end);
  EXPECT_EQ(j.spansCompleted(), 1u);
}

TEST(EventJournal, LinkSpanReparentsAfterTheFact) {
  sim::Simulation sim;
  EventJournal j(sim);
  // Detection opens before the recovery root exists (real ordering).
  const auto det = j.beginSpan("failure_detection", 0);
  const auto root = j.beginSpan("recovery", 0, 0, 42);
  j.linkSpan(det, root, 42);
  j.endSpan(det);
  j.endSpan(root);
  const auto* d = j.span(det);
  EXPECT_EQ(d->parent, root);
  EXPECT_EQ(d->ctx, 42u);
  j.linkSpan(999, root, 42);  // unknown id: no-op
}

TEST(EventJournal, AbandonNodeClosesOnlyThatNodesOpenSpans) {
  sim::Simulation sim;
  EventJournal j(sim);
  const auto a1 = j.beginSpan("cleaner_pass", 2);
  const auto a2 = j.beginSpan("frame_flush", 2);
  const auto b = j.beginSpan("replay", 3);
  sim.schedule(msec(2), [&] { j.abandonNode(2); });
  sim.run();

  EXPECT_TRUE(j.span(a1)->abandoned);
  EXPECT_TRUE(j.span(a2)->abandoned);
  EXPECT_FALSE(j.span(a1)->open);
  EXPECT_EQ(j.span(a1)->end, msec(2));
  EXPECT_TRUE(j.span(b)->open);
  EXPECT_EQ(j.spansAbandoned(), 2u);
  EXPECT_EQ(j.openSpans(), 1u);
  j.abandonSpan(b);
  EXPECT_EQ(j.spansAbandoned(), 3u);
  EXPECT_EQ(j.openSpans(), 0u);
}

TEST(EventJournal, EnergyProbeAttributesJoulesToClosedSpans) {
  sim::Simulation sim;
  EventJournal j(sim);
  // Linear fake meter: node n has burned 10*n*seconds J at time t, split
  // 60/40 between CPU and DRAM.
  j.setEnergyProbe([&sim](int n) {
    EventJournal::EnergyBreakdown b;
    const double total = 10.0 * n * sim::toSeconds(sim.now());
    b.cpu = 0.6 * total;
    b.dram = 0.4 * total;
    return b;
  });
  EventJournal::SpanId s1 = 0;
  EventJournal::SpanId s2 = 0;
  sim.schedule(0, [&] {
    s1 = j.beginSpan("replay", 1);
    s2 = j.beginSpan("replay", 2);
  });
  sim.schedule(seconds(2), [&] {
    j.endSpan(s1);
    j.abandonSpan(s2);  // abandoned spans still account their energy
  });
  sim.run();
  EXPECT_NEAR(j.span(s1)->joules, 20.0, 1e-9);
  EXPECT_NEAR(j.span(s2)->joules, 40.0, 1e-9);
  EXPECT_NEAR(j.span(s1)->cpuJ, 12.0, 1e-9);
  EXPECT_NEAR(j.span(s1)->dramJ, 8.0, 1e-9);
  EXPECT_NEAR(j.span(s2)->nicJ, 0.0, 1e-9);
  EXPECT_NEAR(j.joulesForPhase("replay"), 60.0, 1e-9);
  EXPECT_NEAR(j.joulesForPhase(""), 60.0, 1e-9);
  EXPECT_DOUBLE_EQ(j.joulesForPhase("no_such_phase"), 0.0);
}

TEST(EventJournal, RegisterMetricsExposesCounters) {
  sim::Simulation sim;
  EventJournal j(sim);
  MetricRegistry reg;
  j.registerMetrics(reg, "cluster.journal");
  const auto s = j.beginSpan("recovery", 0);
  EXPECT_DOUBLE_EQ(reg.value("cluster.journal.spans_started"), 1.0);
  EXPECT_DOUBLE_EQ(reg.value("cluster.journal.open_spans"), 1.0);
  j.endSpan(s);
  EXPECT_DOUBLE_EQ(reg.value("cluster.journal.spans_completed"), 1.0);
  EXPECT_DOUBLE_EQ(reg.value("cluster.journal.open_spans"), 0.0);
}

// ----- StatsSampler

TEST(StatsSampler, CountersBecomeRatesGaugesSampledVerbatim) {
  sim::Simulation sim;
  MetricRegistry reg;
  Counter& ops = reg.counter("svc.ops", "ops");
  Gauge& depth = reg.gauge("svc.depth", "items");
  // 10 increments per simulated second.
  sim::PeriodicTask gen(sim, msec(100), [&](sim::SimTime now) {
    ops.inc();
    depth.set(sim::toSeconds(now));
  });
  StatsSampler sampler(sim, reg);
  sim.runUntil(seconds(5) + msec(1));
  gen.cancel();

  EXPECT_EQ(sampler.ticks(), 5u);
  const sim::TimeSeries* rate = sampler.find("svc.ops.rate");
  ASSERT_NE(rate, nullptr);
  ASSERT_EQ(rate->size(), 5u);
  double total = 0;
  for (const auto& p : rate->points()) {
    EXPECT_NEAR(p.value, 10.0, 1.5);  // +-1 op on tie-broken window edges
    total += p.value;
  }
  EXPECT_NEAR(total, 50.0, 1.0);  // windows tile: nothing counted twice
  const sim::TimeSeries* d = sampler.find("svc.depth");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->size(), 5u);
  EXPECT_EQ(sampler.find("missing"), nullptr);
}

TEST(StatsSampler, TicksAlignWithOtherOneHertzTasks) {
  sim::Simulation sim;
  MetricRegistry reg;
  reg.gauge("g", "items");
  // A stand-in for the PDU sampler: a PeriodicTask started at the same sim
  // time with the same interval.
  std::vector<sim::SimTime> pduTicks;
  sim::PeriodicTask pdu(sim, seconds(1),
                        [&](sim::SimTime now) { pduTicks.push_back(now); });
  StatsSampler sampler(sim, reg);
  sim.runUntil(seconds(4) + msec(1));
  pdu.cancel();

  const sim::TimeSeries* g = sampler.find("g");
  ASSERT_NE(g, nullptr);
  ASSERT_EQ(g->size(), pduTicks.size());
  for (std::size_t i = 0; i < pduTicks.size(); ++i) {
    EXPECT_EQ(g->points()[i].time, pduTicks[i]);
  }
}

TEST(StatsSampler, PicksUpLateRegisteredMetrics) {
  sim::Simulation sim;
  MetricRegistry reg;
  reg.gauge("early", "items");
  StatsSampler sampler(sim, reg);
  sim.runUntil(seconds(2) + msec(1));
  reg.gauge("late", "items").set(9);  // e.g. YCSB clients created mid-run
  sim.runUntil(seconds(4) + msec(1));

  ASSERT_NE(sampler.find("early"), nullptr);
  EXPECT_EQ(sampler.find("early")->size(), 4u);
  ASSERT_NE(sampler.find("late"), nullptr);
  EXPECT_EQ(sampler.find("late")->size(), 2u);
  EXPECT_DOUBLE_EQ(sampler.find("late")->points().back().value, 9.0);
}

// ----- MetricsExporter

TEST(MetricsExporter, JsonlRoundTrip) {
  sim::Simulation sim;
  MetricRegistry reg;
  reg.counter("svc.ops", "ops").inc(123);
  reg.gauge("svc.depth", "items").set(4.5);
  sim::Histogram& h = reg.histogram("svc.latency", "us");
  for (int i = 1; i <= 100; ++i) h.add(usec(i * 10));

  TimeTrace tt(sim);
  const std::uint64_t span = tt.beginSpan();
  tt.endSpan(span);

  StatsSampler sampler(sim, reg);
  sim.runUntil(seconds(3) + msec(1));

  MetricsExporter exp(reg);
  exp.attachSampler(&sampler);
  exp.attachTimeTrace(&tt);

  const std::string dir = ::testing::TempDir() + "/obs_export_roundtrip";
  ASSERT_TRUE(exp.exportRunDir(dir));
  ASSERT_TRUE(std::filesystem::exists(dir + "/metrics.jsonl"));
  ASSERT_TRUE(std::filesystem::exists(dir + "/series.csv"));

  const auto records = MetricsExporter::readJsonl(dir + "/metrics.jsonl");
  ASSERT_FALSE(records.empty());

  auto findRec = [&](const std::string& type,
                     const std::string& name) -> const auto* {
    for (const auto& r : records) {
      if (r.type == type && r.name == name) return &r;
    }
    return static_cast<const MetricsExporter::Record*>(nullptr);
  };

  const auto* ops = findRec("counter", "svc.ops");
  ASSERT_NE(ops, nullptr);
  EXPECT_DOUBLE_EQ(ops->value, 123.0);
  EXPECT_EQ(ops->unit, "ops");

  const auto* depth = findRec("gauge", "svc.depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_DOUBLE_EQ(depth->value, 4.5);

  const auto* lat = findRec("histogram", "svc.latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 100u);
  EXPECT_LE(lat->p50, lat->p99);
  EXPECT_LE(lat->p99, lat->max);
  EXPECT_NEAR(lat->max, 1000.0, 1.0);  // us

  // Sampler series landed as per-tick points with increasing t.
  std::vector<double> tick;
  for (const auto& r : records) {
    if (r.type == "point" && r.name == "svc.ops.rate") tick.push_back(r.t);
  }
  ASSERT_EQ(tick.size(), 3u);
  EXPECT_TRUE(std::is_sorted(tick.begin(), tick.end()));

  // The time-trace ring made it out.
  bool sawTrace = false;
  for (const auto& r : records) {
    if (r.type == "trace" && r.name == "total") sawTrace = true;
  }
  EXPECT_TRUE(sawTrace);

  // series.csv: header + one row per tick, one column per series + time_s.
  std::ifstream csv(dir + "/series.csv");
  std::string header;
  ASSERT_TRUE(std::getline(csv, header));
  EXPECT_NE(header.find("time_s"), std::string::npos);
  EXPECT_NE(header.find("svc.ops.rate"), std::string::npos);
  EXPECT_NE(header.find("svc.depth"), std::string::npos);
  int rows = 0;
  for (std::string line; std::getline(csv, line);) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, 3);
}

// ----- end to end: cluster YCSB run with export

TEST(ObsEndToEnd, YcsbRunProducesAlignedSeriesAndStageHistograms) {
  core::ClusterParams cp;
  cp.servers = 3;
  cp.clients = 2;
  cp.replicationFactor = 1;  // writes must traverse replication
  core::Cluster c(cp);

  const std::uint64_t table = c.createTable("t");
  c.bulkLoad(table, 2000, 100);
  c.startPduSampling();
  c.startStatsSampling();

  ycsb::YcsbClientParams ycp;
  ycp.opsTarget = 0;
  c.configureYcsb(table, ycsb::WorkloadSpec::A(2000), ycp);
  c.startYcsb();
  c.sim().runFor(seconds(4));
  c.stopYcsb();

  // Spans were opened by clients and closed on completion.
  EXPECT_GT(c.timeTrace().spansStarted(), 100u);
  EXPECT_GT(c.timeTrace().spansCompleted(), 100u);

  // The paper-relevant stage split is populated: network, dispatch wait,
  // worker service, and (rf=1) replication wait.
  const auto& tt = c.timeTrace();
  EXPECT_GT(tt.stageHistogram(Stage::kNetworkRequest).count(), 0u);
  EXPECT_GT(tt.stageHistogram(Stage::kDispatchWait).count(), 0u);
  EXPECT_GT(tt.stageHistogram(Stage::kWorkerService).count(), 0u);
  EXPECT_GT(tt.stageHistogram(Stage::kReplicationWait).count(), 0u);
  EXPECT_GT(tt.stageHistogram(Stage::kTotal).count(), 0u);
  EXPECT_GT(tt.stageHistogram(Stage::kTotal).mean(),
            tt.stageHistogram(Stage::kWorkerService).mean());

  // Per-node metrics registered under hierarchical paths.
  auto& reg = c.metrics();
  EXPECT_TRUE(reg.has("node1.master.dispatch.queue_depth"));
  EXPECT_TRUE(reg.has("node1.master.dispatch.backlog_us"));
  EXPECT_TRUE(reg.has("node1.master.reads"));
  EXPECT_TRUE(reg.has("node1.backup.writes_serviced"));
  EXPECT_TRUE(reg.has("node1.cpu.util"));
  EXPECT_TRUE(reg.has("node1.power.watts"));
  EXPECT_TRUE(reg.has("node3.master.dispatch.queue_depth"));
  EXPECT_TRUE(reg.has("cluster.rpc.stage.replication_wait"));
  EXPECT_GT(reg.value("cluster.client.ops"), 0.0);
  EXPECT_DOUBLE_EQ(reg.value("cluster.alive_servers"), 3.0);
  // Work actually flowed through the masters and backups.
  double reads = 0, backupWrites = 0;
  for (int n = 1; n <= 3; ++n) {
    reads += reg.value("node" + std::to_string(n) + ".master.reads");
    backupWrites +=
        reg.value("node" + std::to_string(n) + ".backup.writes_serviced");
  }
  EXPECT_GT(reads, 0.0);
  EXPECT_GT(backupWrites, 0.0);

  // Sampler ticks align exactly with the PDU's 1 Hz samples.
  ASSERT_NE(c.sampler(), nullptr);
  const sim::TimeSeries* cpuSeries = c.sampler()->find("node1.cpu.util");
  ASSERT_NE(cpuSeries, nullptr);
  const auto* pdu = c.server(0).node->pdu();
  ASSERT_NE(pdu, nullptr);
  ASSERT_EQ(cpuSeries->size(), pdu->trace().size());
  for (std::size_t i = 0; i < cpuSeries->size(); ++i) {
    EXPECT_EQ(cpuSeries->points()[i].time, pdu->trace().points()[i].time);
  }

  // Export and re-read: the run directory carries the full picture.
  const std::string dir = ::testing::TempDir() + "/obs_e2e_run";
  ASSERT_TRUE(c.exportMetrics(dir));
  const auto records = MetricsExporter::readJsonl(dir + "/metrics.jsonl");
  ASSERT_FALSE(records.empty());
  bool sawReplicationHist = false;
  bool sawThroughputPoint = false;
  bool sawPduPoint = false;
  for (const auto& r : records) {
    if (r.type == "histogram" &&
        r.name == "cluster.rpc.stage.replication_wait" && r.count > 0) {
      sawReplicationHist = true;
    }
    if (r.type == "point" && r.name == "cluster.client.ops.rate" &&
        r.value > 0) {
      sawThroughputPoint = true;
    }
    if (r.type == "point" && r.name == "node1.pdu.watts" && r.value > 0) {
      sawPduPoint = true;
    }
  }
  EXPECT_TRUE(sawReplicationHist);
  EXPECT_TRUE(sawThroughputPoint);
  EXPECT_TRUE(sawPduPoint);
}

TEST(ObsEndToEnd, RpcTimeoutCountersRegisteredPerOpcode) {
  core::ClusterParams cp;
  cp.servers = 2;
  cp.clients = 1;
  core::Cluster c(cp);
  auto& reg = c.metrics();

  // The RPC fabric surfaces its timeout accounting: a total plus one
  // counter per opcode, named after the wire name.
  EXPECT_TRUE(reg.has("net.rpc.timeouts.total"));
  for (int i = 0; i < static_cast<int>(net::kOpcodeCount); ++i) {
    const auto op = static_cast<net::Opcode>(i);
    EXPECT_TRUE(reg.has(std::string("net.rpc.timeouts.") +
                        net::opcodeName(op)))
        << net::opcodeName(op);
  }
  EXPECT_TRUE(reg.has("net.messages_dropped"));
  EXPECT_TRUE(reg.has("cluster.rf_deficit"));

  // Drive one real timeout and watch it land in the right bucket.
  const auto table = c.createTable("t");
  c.coord().stopFailureDetector();
  c.crashServer(0);
  net::RpcRequest req;
  req.op = net::Opcode::kRead;
  req.a = table;
  req.b = 1;
  bool done = false;
  c.rpc().call(c.clientNodeId(0), c.serverNodeId(0), net::kMasterPort, req,
               msec(200), [&done](const net::RpcResponse& resp) {
                 EXPECT_EQ(resp.status, net::Status::kTimeout);
                 done = true;
               });
  while (!done) c.sim().runFor(msec(10));
  EXPECT_GE(reg.value("net.rpc.timeouts.read"), 1.0);
  EXPECT_GE(reg.value("net.rpc.timeouts.total"),
            reg.value("net.rpc.timeouts.read"));
}

}  // namespace
}  // namespace rc::obs
