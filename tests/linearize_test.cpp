// Exactly-once RPC semantics (RIFL, docs/LINEARIZABILITY.md): unit tests
// for the UnackedRpcResults table plus cluster-level tests that drive the
// whole lease / completion-record / duplicate-suppression path — lost
// replies, a master crash between apply and reply, lease expiry, and
// tablet migration carrying the suppression state along.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/cluster.hpp"
#include "fault/fault_injector.hpp"
#include "server/master_service.hpp"
#include "server/unacked_rpc_results.hpp"

namespace rc {
namespace {

using server::UnackedRpcResults;
using sim::msec;
using sim::seconds;

using Check = UnackedRpcResults::Check;

UnackedRpcResults::Result result(std::uint64_t version, std::uint64_t tableId,
                                 std::uint64_t keyId,
                                 log::SegmentId segment) {
  UnackedRpcResults::Result r;
  r.status = 0;
  r.version = version;
  r.tableId = tableId;
  r.keyId = keyId;
  r.record = log::LogRef{segment, 0};
  return r;
}

// ----- UnackedRpcResults unit tests

TEST(UnackedRpcResults, NewThenDuplicateReplaysRecordedResult) {
  UnackedRpcResults u;
  std::vector<log::LogRef> freed;
  EXPECT_EQ(u.begin(7, 1, 1, &freed).check, Check::kNew);
  u.recordCompletion(7, 1, result(42, 1, 9, 3));

  const auto dup = u.begin(7, 1, 1, &freed);
  EXPECT_EQ(dup.check, Check::kCompleted);
  EXPECT_EQ(dup.result.version, 42u);
  EXPECT_EQ(dup.result.record.segment, 3u);
  EXPECT_EQ(u.duplicatesSuppressed(), 1u);
  EXPECT_EQ(u.completionsRecorded(), 1u);
  EXPECT_TRUE(freed.empty());
}

TEST(UnackedRpcResults, InProgressUntilRecorded) {
  UnackedRpcResults u;
  std::vector<log::LogRef> freed;
  EXPECT_EQ(u.begin(7, 1, 1, &freed).check, Check::kNew);
  // The retry of an op whose first attempt is still executing backs off
  // instead of double-executing.
  EXPECT_EQ(u.begin(7, 1, 1, &freed).check, Check::kInProgress);
  u.recordCompletion(7, 1, result(5, 1, 1, 1));
  EXPECT_EQ(u.begin(7, 1, 1, &freed).check, Check::kCompleted);
}

TEST(UnackedRpcResults, AbortInProgressAllowsReexecution) {
  UnackedRpcResults u;
  std::vector<log::LogRef> freed;
  EXPECT_EQ(u.begin(7, 1, 1, &freed).check, Check::kNew);
  u.abortInProgress(7, 1);  // replication failed; nothing durable
  EXPECT_EQ(u.begin(7, 1, 1, &freed).check, Check::kNew);
}

TEST(UnackedRpcResults, WatermarkGcFreesRecordsAndRejectsStale) {
  UnackedRpcResults u;
  std::vector<log::LogRef> freed;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    ASSERT_EQ(u.begin(7, s, 1, &freed).check, Check::kNew);
    u.recordCompletion(7, s, result(s, 1, s, s));
  }
  ASSERT_TRUE(freed.empty());

  // firstUnacked = 4 means the client saw acks for 1..3: their records are
  // garbage now.
  EXPECT_EQ(u.begin(7, 4, 4, &freed).check, Check::kNew);
  EXPECT_EQ(freed.size(), 3u);
  EXPECT_EQ(u.recordsGced(), 3u);

  // Anything below the watermark is a protocol violation, not a duplicate.
  EXPECT_EQ(u.begin(7, 2, 4, &freed).check, Check::kStale);
  EXPECT_EQ(u.staleRejected(), 1u);
}

TEST(UnackedRpcResults, RecoverIgnoresDuplicateCopies) {
  UnackedRpcResults u;
  // The same completion seen from two replicas of the dead master's log.
  EXPECT_TRUE(u.recover(7, 1, result(10, 1, 5, 2)));
  EXPECT_FALSE(u.recover(7, 1, result(10, 1, 5, 4)));
  EXPECT_EQ(u.recordsRecovered(), 1u);

  std::vector<log::LogRef> freed;
  const auto dup = u.begin(7, 1, 1, &freed);
  EXPECT_EQ(dup.check, Check::kCompleted);
  EXPECT_EQ(dup.result.version, 10u);
}

TEST(UnackedRpcResults, ReclaimExpiredDropsDeadClients) {
  UnackedRpcResults u;
  std::vector<log::LogRef> freed;
  ASSERT_EQ(u.begin(1, 1, 1, &freed).check, Check::kNew);
  u.recordCompletion(1, 1, result(1, 1, 1, 1));
  ASSERT_EQ(u.begin(2, 1, 1, &freed).check, Check::kNew);
  u.recordCompletion(2, 1, result(2, 1, 2, 2));
  ASSERT_EQ(u.trackedClients(), 2u);

  const auto reclaimed = u.reclaimExpired(
      [](std::uint64_t clientId) { return clientId == 1; }, &freed);
  EXPECT_EQ(reclaimed, 1u);
  EXPECT_EQ(u.trackedClients(), 1u);
  EXPECT_EQ(u.clientsExpired(), 1u);
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0].segment, 2u);
}

TEST(UnackedRpcResults, CollectAndEraseForRange) {
  UnackedRpcResults u;
  std::vector<log::LogRef> freed;
  ASSERT_EQ(u.begin(7, 1, 1, &freed).check, Check::kNew);
  u.recordCompletion(7, 1, result(1, 1, 5, 1));
  ASSERT_EQ(u.begin(7, 2, 1, &freed).check, Check::kNew);
  u.recordCompletion(7, 2, result(2, 1, 500, 2));

  const auto inRange = [](std::uint64_t tableId, std::uint64_t keyId) {
    return tableId == 1 && keyId < 100;
  };
  const auto collected = u.collectForRange(inRange);
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_EQ(collected[0].clientId, 7u);
  EXPECT_EQ(collected[0].seq, 1u);
  EXPECT_EQ(collected[0].result.keyId, 5u);

  u.eraseForRange(inRange, &freed);
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0].segment, 1u);
  EXPECT_TRUE(u.collectForRange(inRange).empty());
  // The out-of-range completion is untouched.
  std::vector<log::LogRef> freed2;
  EXPECT_EQ(u.begin(7, 2, 1, &freed2).check, Check::kCompleted);
}

// ----- cluster-level tests

core::ClusterParams params(int servers, int clients, int rf) {
  core::ClusterParams p;
  p.servers = servers;
  p.clients = clients;
  p.replicationFactor = rf;
  return p;
}

int ownerIndexOf(const core::Cluster& c, std::uint64_t table,
                 std::uint64_t keyId) {
  return static_cast<int>(c.ownerOfKey(table, keyId)) - 1;
}

TEST(Linearize, ConditionalWriteChecksVersionOnMaster) {
  core::Cluster c(params(1, 1, 0));
  const auto table = c.createTable("t");
  auto& rc = *c.clientHost(0).rc;

  std::uint64_t v1 = 0;
  std::uint64_t v2 = 0;
  net::Status mismatch = net::Status::kOk;
  std::uint64_t mismatchVersion = 0;
  rc.writeV(table, 9, 100, 0,
            [&](net::Status s, std::uint64_t v, sim::Duration) {
              ASSERT_EQ(s, net::Status::kOk);
              v1 = v;
              rc.writeV(table, 9, 100, v1,
                        [&](net::Status s2, std::uint64_t w, sim::Duration) {
                          ASSERT_EQ(s2, net::Status::kOk);
                          v2 = w;
                          // Same precondition again: must lose to v2.
                          rc.writeV(table, 9, 100, v1,
                                    [&](net::Status s3, std::uint64_t cur,
                                        sim::Duration) {
                                      mismatch = s3;
                                      mismatchVersion = cur;
                                    });
                        });
            });
  c.sim().runFor(seconds(2));
  EXPECT_GT(v1, 0u);
  EXPECT_GT(v2, v1);
  EXPECT_EQ(mismatch, net::Status::kVersionMismatch);
  EXPECT_EQ(mismatchVersion, v2);

  std::uint64_t readVersion = 0;
  rc.readV(table, 9, [&](net::Status s, std::uint64_t v, sim::Duration) {
    ASSERT_EQ(s, net::Status::kOk);
    readVersion = v;
  });
  c.sim().runFor(seconds(1));
  EXPECT_EQ(readVersion, v2);  // the rejected duplicate never applied
}

TEST(Linearize, LostRepliesForceRetriesButApplyOnce) {
  core::Cluster c(params(2, 1, 0));
  const auto table = c.createTable("t", 1);
  auto& rc = *c.clientHost(0).rc;

  // Warm the map and the lease so the fault window hits a steady client.
  rc.writeV(table, 1, 100, 0,
            [](net::Status s, std::uint64_t, sim::Duration) {
              ASSERT_EQ(s, net::Status::kOk);
            });
  c.sim().runFor(msec(300));
  const int owner = ownerIndexOf(c, table, 2);

  fault::FaultPlan plan;
  plan.replyDrop(msec(400), owner, /*probability=*/1.0, msec(1500));
  fault::FaultInjector injector(c, plan, c.sim().rng().fork(0x11F1));
  injector.arm();
  c.sim().runFor(msec(200));  // into the drop window

  net::Status st = net::Status::kError;
  std::uint64_t writeVersion = 0;
  rc.writeV(table, 2, 100, 0,
            [&](net::Status s, std::uint64_t v, sim::Duration) {
              st = s;
              writeVersion = v;
            });
  c.sim().runFor(seconds(6));

  EXPECT_EQ(st, net::Status::kOk);
  EXPECT_GE(rc.retriesForOpcode(net::Opcode::kWrite), 1u);
  const auto& unacked = c.server(owner).master->unackedRpcResults();
  EXPECT_GE(unacked.duplicatesSuppressed(), 1u);
  EXPECT_GT(c.metrics().value("cluster.linearize.duplicates_suppressed"), 0.0);
  EXPECT_GT(c.metrics().value("net.rpc.retries.write"), 0.0);

  // Exactly once: the retried write produced one version, and that is what
  // a read observes.
  std::uint64_t readVersion = 0;
  rc.readV(table, 2, [&](net::Status s, std::uint64_t v, sim::Duration) {
    ASSERT_EQ(s, net::Status::kOk);
    readVersion = v;
  });
  c.sim().runFor(seconds(1));
  EXPECT_EQ(readVersion, writeVersion);
}

TEST(Linearize, CrashBetweenApplyAndReplyIsSuppressedByRecovery) {
  core::Cluster c(params(4, 1, 2));
  const auto table = c.createTable("t", 1);
  c.bulkLoad(table, 300, 200);
  auto& rc = *c.clientHost(0).rc;

  rc.writeV(table, 3, 100, 0,
            [](net::Status s, std::uint64_t, sim::Duration) {
              ASSERT_EQ(s, net::Status::kOk);
            });
  c.sim().runFor(msec(300));
  const int owner = ownerIndexOf(c, table, 7);

  fault::FaultPlan plan;
  plan.crashBeforeReply(msec(400), owner);
  fault::FaultInjector injector(c, plan, c.sim().rng().fork(0x11F2));
  injector.arm();
  c.sim().runFor(msec(200));  // hook armed; next write triggers it

  net::Status st = net::Status::kError;
  std::uint64_t writeVersion = 0;
  rc.writeV(table, 7, 100, 0,
            [&](net::Status s, std::uint64_t v, sim::Duration) {
              st = s;
              writeVersion = v;
            });
  const sim::SimTime deadline = c.sim().now() + seconds(120);
  while (c.sim().now() < deadline &&
         (st == net::Status::kError || c.coord().recoveryInProgress())) {
    c.sim().runFor(msec(100));
  }

  // The write applied durably before the crash; the retry must have been
  // answered from the completion record replayed on the new owner, not
  // re-executed.
  EXPECT_EQ(st, net::Status::kOk);
  EXPECT_GT(writeVersion, 0u);
  EXPECT_EQ(injector.crashesInjected(), 1);
  EXPECT_EQ(c.journal().spansNamed("fault_crash_before_reply").size(), 1u);
  std::uint64_t recovered = 0;
  std::uint64_t suppressed = 0;
  for (int i = 0; i < c.serverCount(); ++i) {
    if (!c.serverAlive(i)) continue;
    recovered += c.server(i).master->unackedRpcResults().recordsRecovered();
    suppressed +=
        c.server(i).master->unackedRpcResults().duplicatesSuppressed();
  }
  EXPECT_GE(recovered, 1u);
  EXPECT_GE(suppressed, 1u);

  std::uint64_t readVersion = 0;
  rc.readV(table, 7, [&](net::Status s, std::uint64_t v, sim::Duration) {
    ASSERT_EQ(s, net::Status::kOk);
    readVersion = v;
  });
  c.sim().runFor(seconds(2));
  EXPECT_EQ(readVersion, writeVersion);
}

TEST(Linearize, StalledClientLosesLeaseAndReopens) {
  core::ClusterParams p = params(1, 1, 0);
  p.coordinator.leaseTerm = msec(600);
  p.coordinator.leaseSweepInterval = msec(100);
  core::Cluster c(p);
  const auto table = c.createTable("t");
  auto& rc = *c.clientHost(0).rc;

  rc.writeV(table, 1, 100, 0,
            [](net::Status s, std::uint64_t, sim::Duration) {
              ASSERT_EQ(s, net::Status::kOk);
            });
  c.sim().runFor(msec(300));
  const std::uint64_t firstLease = rc.clientId();
  ASSERT_NE(firstLease, 0u);
  ASSERT_EQ(c.coord().activeLeases(), 1u);

  // Freeze the client well past its lease term: no renewals.
  rc.stallFor(seconds(2));
  c.sim().runFor(msec(2700));
  EXPECT_GE(c.coord().leasesExpired(), 1u);
  const auto& unacked = c.server(0).master->unackedRpcResults();
  EXPECT_GE(unacked.clientsExpired(), 1u);
  EXPECT_EQ(unacked.trackedClients(), 0u);

  // The next tracked op observes kExpiredLease, reopens, and succeeds.
  net::Status st = net::Status::kError;
  rc.writeV(table, 1, 100, 0,
            [&](net::Status s, std::uint64_t, sim::Duration) { st = s; });
  c.sim().runFor(seconds(2));
  EXPECT_EQ(st, net::Status::kOk);
  EXPECT_GE(rc.stats().leaseExpiries, 1u);
  EXPECT_NE(rc.clientId(), 0u);
  EXPECT_NE(rc.clientId(), firstLease);
  EXPECT_GE(c.coord().leasesIssued(), 2u);
}

TEST(Linearize, MigrationCarriesSuppressionState) {
  core::Cluster c(params(2, 1, 0));
  const auto table = c.createTable("t", 1);
  auto& rc = *c.clientHost(0).rc;

  std::uint64_t v1 = 0;
  rc.writeV(table, 5, 100, 0,
            [&](net::Status s, std::uint64_t v, sim::Duration) {
              ASSERT_EQ(s, net::Status::kOk);
              v1 = v;
            });
  c.sim().runFor(msec(300));
  const auto tablets = c.coord().tabletMap().tabletsOwnedBy(c.serverNodeId(0));
  ASSERT_EQ(tablets.size(), 1u);
  ASSERT_GE(c.server(0).master->unackedRpcResults().completionsRecorded(), 1u);

  bool ok = false;
  c.migrateTablet(tablets[0], 1, [&ok](bool r) { ok = r; });
  c.sim().runFor(seconds(20));
  ASSERT_TRUE(ok);

  // The destination installed the shipped completion records.
  EXPECT_GE(c.server(1).master->unackedRpcResults().recordsRecovered(), 1u);

  // Life goes on at the new owner: a conditional write against the version
  // produced before the move.
  net::Status st = net::Status::kError;
  std::uint64_t v2 = 0;
  rc.writeV(table, 5, 100, v1,
            [&](net::Status s, std::uint64_t v, sim::Duration) {
              st = s;
              v2 = v;
            });
  c.sim().runFor(seconds(2));
  EXPECT_EQ(st, net::Status::kOk);
  EXPECT_GT(v2, v1);
}

}  // namespace
}  // namespace rc
