// Unit tests for the CPU scheduler, disk model, node and power substrate.

#include <gtest/gtest.h>

#include "node/cpu_scheduler.hpp"
#include "node/disk.hpp"
#include "node/node.hpp"
#include "power/power_model.hpp"

namespace rc::node {
namespace {

using sim::msec;
using sim::seconds;
using sim::toSeconds;
using sim::usec;

CpuParams quietCpu() {
  CpuParams p;
  p.workerSpinBeforeSleep = 0;  // no spin: exact busy accounting
  p.wakeupLatency = 0;
  return p;
}

TEST(CpuScheduler, PollingCoreBusyWhenOn) {
  sim::Simulation sim;
  CpuScheduler cpu(sim, quietCpu());
  cpu.powerOn();
  auto s = cpu.snapshot();
  sim.runUntil(seconds(4));
  // 1 of 4 cores busy = 25 % — the paper's idle floor (Table I row 0).
  EXPECT_NEAR(cpu.utilisationSince(s, sim.now()), 0.25, 1e-9);
}

TEST(CpuScheduler, OffMeansZeroUtilisation) {
  sim::Simulation sim;
  CpuScheduler cpu(sim, quietCpu());
  auto s = cpu.snapshot();
  sim.runUntil(seconds(1));
  EXPECT_DOUBLE_EQ(cpu.utilisationSince(s, sim.now()), 0.0);
}

TEST(CpuScheduler, RunAccountsBusyTime) {
  sim::Simulation sim;
  CpuScheduler cpu(sim, quietCpu());
  cpu.powerOn();
  auto s = cpu.snapshot();
  bool done = false;
  cpu.run(seconds(1), [&] { done = true; });
  sim.runUntil(seconds(2));
  EXPECT_TRUE(done);
  // poll core 2 s + worker 1 s over 2 s * 4 cores = 3/8.
  EXPECT_NEAR(cpu.utilisationSince(s, sim.now()), 3.0 / 8.0, 1e-9);
}

TEST(CpuScheduler, WorkerPoolLimitsConcurrency) {
  sim::Simulation sim;
  CpuScheduler cpu(sim, quietCpu());
  cpu.powerOn();
  int running = 0;
  int peak = 0;
  for (int i = 0; i < 10; ++i) {
    cpu.acquireWorker([&, i](int w) {
      ++running;
      peak = std::max(peak, running);
      sim.schedule(usec(10), [&, w] {
        --running;
        cpu.releaseWorker(w);
      });
    });
  }
  sim.run();
  EXPECT_EQ(peak, 3);  // 4 cores - 1 polling
  EXPECT_EQ(running, 0);
}

TEST(CpuScheduler, QueuedRequestsRunFifoOnRelease) {
  sim::Simulation sim;
  CpuParams p = quietCpu();
  p.workerThreads = 1;
  p.cores = 2;
  sim::Simulation s2;
  CpuScheduler cpu(sim, p);
  cpu.powerOn();
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    cpu.acquireWorker([&, i](int w) {
      order.push_back(i);
      sim.schedule(usec(5), [&cpu, w] { cpu.releaseWorker(w); });
    });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(CpuScheduler, SpinKeepsWorkerHotThenSleeps) {
  sim::Simulation sim;
  CpuParams p;
  p.workerSpinBeforeSleep = usec(100);
  p.wakeupLatency = 0;
  CpuScheduler cpu(sim, p);
  cpu.powerOn();
  auto s = cpu.snapshot();
  cpu.run(usec(10), [] {});
  sim.runUntil(seconds(1));
  // Poll core + 10 us of work + ~100 us spin tail, then asleep again.
  const double util = cpu.utilisationSince(s, sim.now());
  EXPECT_NEAR(util, 0.25 + (10e-6 + 100e-6) / 4.0, 5e-6);
}

TEST(CpuScheduler, PowerOffDropsQueueAndStopsAccounting) {
  sim::Simulation sim;
  CpuScheduler cpu(sim, quietCpu());
  cpu.powerOn();
  int completions = 0;
  for (int i = 0; i < 5; ++i) {
    cpu.run(seconds(1), [&] { ++completions; });
  }
  sim.runUntil(msec(500));
  cpu.powerOff();
  sim.run();
  EXPECT_EQ(completions, 0);  // all in-flight work died with the process
  auto s = cpu.snapshot();
  sim.runUntil(sim.now() + seconds(1));
  EXPECT_DOUBLE_EQ(cpu.utilisationSince(s, sim.now()), 0.0);
}

TEST(CpuScheduler, EpochChangesOnCrash) {
  sim::Simulation sim;
  CpuScheduler cpu(sim, quietCpu());
  cpu.powerOn();
  const auto e = cpu.epoch();
  cpu.powerOff();
  EXPECT_NE(cpu.epoch(), e);
}

TEST(Disk, SequentialTransferMatchesBandwidth) {
  sim::Simulation sim;
  DiskParams p;
  p.readMBps = 100;
  p.seekTime = 0;
  Disk disk(sim, p);
  bool done = false;
  disk.read(100'000'000, [&] { done = true; });  // 100 MB at 100 MB/s
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(toSeconds(sim.now()), 1.0, 0.01);
  EXPECT_EQ(disk.bytesRead(), 100'000'000u);
}

TEST(Disk, FirstOpPaysOneSeek) {
  sim::Simulation sim;
  DiskParams p;
  p.readMBps = 100;
  p.seekTime = msec(10);
  Disk disk(sim, p);
  disk.read(1'000'000, [] {});
  sim.run();
  EXPECT_NEAR(toSeconds(sim.now()), 0.02, 0.001);  // 10ms seek + 10ms xfer
}

TEST(Disk, ConcurrentStreamsContend) {
  // One 8 MB stream alone vs. read+write together: the mix must be much
  // slower than bandwidth-only due to per-alternation seeks (Fig. 12).
  DiskParams p;  // defaults: 8+ ms seek, 256 KB chunks

  sim::Simulation alone;
  Disk d1(alone, p);
  d1.read(8'000'000, [] {});
  alone.run();
  const double tAlone = toSeconds(alone.now());

  sim::Simulation mixed;
  Disk d2(mixed, p);
  int done = 0;
  d2.read(8'000'000, [&] { ++done; });
  d2.write(8'000'000, [&] { ++done; });
  mixed.run();
  const double tMixed = toSeconds(mixed.now());
  EXPECT_EQ(done, 2);
  EXPECT_GT(tMixed, 4 * tAlone);  // seek-dominated
}

TEST(Disk, PowerOffDropsQueue) {
  sim::Simulation sim;
  Disk disk(sim, DiskParams{});
  bool done = false;
  disk.write(10'000'000, [&] { done = true; });
  disk.powerOff();
  sim.run();
  EXPECT_FALSE(done);
}

TEST(Disk, TracksReadAndWriteBytesSeparately) {
  sim::Simulation sim;
  Disk disk(sim, DiskParams{});
  disk.read(1000, [] {});
  disk.write(2000, [] {});
  sim.run();
  EXPECT_EQ(disk.bytesRead(), 1000u);
  EXPECT_EQ(disk.bytesWritten(), 2000u);
}

TEST(PowerModel, CalibratedEndpoints) {
  power::PowerModel m;
  // Fitted to the paper: ~50 % CPU -> 92 W, ~98.5 % -> 122 W.
  EXPECT_NEAR(m.watts(0.50), 92.2, 0.5);
  EXPECT_NEAR(m.watts(0.985), 123.0, 1.0);
  EXPECT_NEAR(m.watts(0.25), 76.4, 0.5);  // idle RAMCloud (polling core)
}

TEST(PowerModel, MonotoneAndClamped) {
  power::PowerModel m;
  EXPECT_DOUBLE_EQ(m.watts(-1), m.watts(0));
  EXPECT_DOUBLE_EQ(m.watts(2), m.watts(1));
  double last = 0;
  for (double u = 0; u <= 1.0; u += 0.01) {
    EXPECT_GE(m.watts(u), last);
    last = m.watts(u);
  }
}

TEST(PowerModel, JoulesIsWattsTimesSeconds) {
  power::PowerModel m;
  EXPECT_DOUBLE_EQ(m.joules(0.5, 10), m.watts(0.5) * 10);
}

TEST(Node, PduSamplesOncePerSecond) {
  sim::Simulation sim;
  NodeParams p;
  Node node(sim, 1, p);
  node.startProcess();
  node.startPduSampling();
  sim.runUntil(seconds(10) + msec(1));
  ASSERT_NE(node.pdu(), nullptr);
  EXPECT_EQ(node.pdu()->trace().size(), 10u);
  // Idle process: polling core only -> ~76 W.
  EXPECT_NEAR(node.pdu()->meanWatts(), 76.4, 1.0);
}

TEST(Node, UnmeteredNodeHasNoPdu) {
  sim::Simulation sim;
  NodeParams p;
  p.metered = false;
  Node node(sim, 1, p);
  node.startPduSampling();
  EXPECT_EQ(node.pdu(), nullptr);
}

TEST(Node, EnergyMatchesPowerTimesTime) {
  sim::Simulation sim;
  NodeParams p;
  Node node(sim, 1, p);
  node.startProcess();
  auto s = node.snapshotCpu();
  sim.runUntil(seconds(100));
  // Idle-with-process: P(0.25) for 100 s.
  EXPECT_NEAR(node.energyJoulesSince(s, sim.now()),
              p.power.watts(0.25) * 100.0, 1.0);
}

TEST(Node, CrashDropsToMachineIdlePower) {
  sim::Simulation sim;
  NodeParams p;
  Node node(sim, 1, p);
  node.startProcess();
  node.crashProcess();
  auto s = node.snapshotCpu();
  sim.runUntil(seconds(10));
  EXPECT_NEAR(node.energyJoulesSince(s, sim.now()), p.power.idleWatts * 10,
              0.5);
}

TEST(Node, SampledEnergyAgreesWithContinuous) {
  sim::Simulation sim;
  NodeParams p;
  Node node(sim, 1, p);
  node.startProcess();
  node.startPduSampling();
  auto s = node.snapshotCpu();
  // Some bursty activity.
  for (int i = 0; i < 20; ++i) {
    sim.schedule(msec(100 * i), [&] {
      node.cpu().run(msec(37), [] {});
    });
  }
  sim.runUntil(seconds(10));
  const double exact = node.energyJoulesSince(s, sim.now());
  const double sampled = node.pdu()->sampledEnergyJoules(0, sim.now());
  EXPECT_NEAR(sampled, exact, exact * 0.05);
}

}  // namespace
}  // namespace rc::node
