// Tests for the paper's SS IX-B / SS X extension features implemented here:
// one-sided RDMA replication, table scans, and Ethernet transport.

#include <gtest/gtest.h>

#include "core/cluster.hpp"

namespace rc {
namespace {

using sim::msec;
using sim::seconds;

TEST(RdmaReplication, AckedWritesAreStillDurable) {
  core::ClusterParams p;
  p.servers = 5;
  p.clients = 1;
  p.replicationFactor = 3;
  p.master.replication.oneSidedRdma = true;
  core::Cluster c(p);
  const auto table = c.createTable("t");
  auto& rc0 = *c.clientHost(0).rc;
  int pending = 100;
  for (std::uint64_t k = 0; k < 100; ++k) {
    rc0.write(table, k, 1000, [&pending](net::Status s, sim::Duration) {
      ASSERT_EQ(s, net::Status::kOk);
      --pending;
    });
  }
  while (pending > 0) c.sim().runFor(msec(20));

  // Crash the owner: data must come back from the RDMA'd frames.
  c.crashServer(c.ownerOfKey(table, 0) - 1);
  for (int i = 0; i < 600 && c.coord().recoveryLog().empty(); ++i) {
    c.sim().runFor(msec(100));
  }
  ASSERT_FALSE(c.coord().recoveryLog().empty());
  EXPECT_TRUE(c.coord().recoveryLog().front().succeeded);
  for (std::uint64_t k = 0; k < 100; ++k) {
    auto* m = c.directory().masterOn(c.ownerOfKey(table, k));
    ASSERT_NE(m, nullptr);
    EXPECT_NE(m->objectMap().get(hash::Key{table, k}), nullptr) << k;
  }
}

TEST(RdmaReplication, FasterThanCpuReplication) {
  auto writeLatency = [](bool rdma) {
    core::ClusterParams p;
    p.servers = 5;
    p.clients = 1;
    p.replicationFactor = 3;
    p.master.replication.oneSidedRdma = rdma;
    core::Cluster c(p);
    const auto table = c.createTable("t");
    auto& rc0 = *c.clientHost(0).rc;
    sim::Histogram h;
    int pending = 50;
    for (std::uint64_t k = 0; k < 50; ++k) {
      rc0.write(table, k, 1000, [&](net::Status s, sim::Duration d) {
        ASSERT_EQ(s, net::Status::kOk);
        h.add(d);
        --pending;
      });
    }
    while (pending > 0) c.sim().runFor(msec(20));
    return h.mean();
  };
  EXPECT_LT(writeLatency(true), 0.75 * writeLatency(false));
}

TEST(Scan, CountsEveryObjectExactlyOnce) {
  core::ClusterParams p;
  p.servers = 4;
  p.clients = 1;
  core::Cluster c(p);
  const auto table = c.createTable("t");
  c.bulkLoad(table, 12'345, 1000);

  net::Status st = net::Status::kError;
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
  c.clientHost(0).rc->scanTable(table,
                                [&](net::Status s, std::uint64_t n,
                                    std::uint64_t b) {
                                  st = s;
                                  count = n;
                                  bytes = b;
                                });
  c.sim().runFor(seconds(30));
  EXPECT_EQ(st, net::Status::kOk);
  EXPECT_EQ(count, 12'345u);
  EXPECT_EQ(bytes, 12'345u * 1100);  // value + log metadata
}

TEST(Scan, UnknownTableReported) {
  core::ClusterParams p;
  p.servers = 2;
  p.clients = 1;
  core::Cluster c(p);
  c.createTable("t");
  net::Status st = net::Status::kOk;
  c.clientHost(0).rc->scanTable(999, [&](net::Status s, std::uint64_t,
                                          std::uint64_t) { st = s; });
  c.sim().runFor(seconds(5));
  EXPECT_EQ(st, net::Status::kUnknownTablet);
}

TEST(Scan, SeesUpdatesAndRemoves) {
  core::ClusterParams p;
  p.servers = 2;
  p.clients = 1;
  core::Cluster c(p);
  const auto table = c.createTable("t");
  c.bulkLoad(table, 100, 1000);
  auto& rc0 = *c.clientHost(0).rc;
  int pending = 10;
  for (std::uint64_t k = 0; k < 10; ++k) {
    rc0.remove(table, k, [&pending](net::Status, sim::Duration) { --pending; });
  }
  while (pending > 0) c.sim().runFor(msec(20));

  std::uint64_t count = 0;
  rc0.scanTable(table, [&](net::Status, std::uint64_t n, std::uint64_t) {
    count = n;
  });
  c.sim().runFor(seconds(5));
  EXPECT_EQ(count, 90u);
}

TEST(MultiOps, MultiReadFindsEverythingAcrossServers) {
  core::ClusterParams p;
  p.servers = 4;
  p.clients = 1;
  core::Cluster c(p);
  const auto table = c.createTable("t");
  c.bulkLoad(table, 5'000, 1000);

  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 1'000; ++k) keys.push_back(k);
  net::Status st = net::Status::kError;
  std::uint64_t served = 0, missing = 0;
  c.clientHost(0).rc->multiRead(table, keys,
                                [&](net::Status s, std::uint64_t a,
                                    std::uint64_t b) {
                                  st = s;
                                  served = a;
                                  missing = b;
                                });
  c.sim().runFor(seconds(5));
  EXPECT_EQ(st, net::Status::kOk);
  EXPECT_EQ(served, 1'000u);
  EXPECT_EQ(missing, 0u);
}

TEST(MultiOps, MultiReadReportsMissingKeys) {
  core::ClusterParams p;
  p.servers = 2;
  p.clients = 1;
  core::Cluster c(p);
  const auto table = c.createTable("t");
  c.bulkLoad(table, 100, 1000);
  std::vector<std::uint64_t> keys{1, 2, 3, 5'000, 6'000};  // 2 absent
  std::uint64_t served = 0, missing = 0;
  c.clientHost(0).rc->multiRead(table, keys,
                                [&](net::Status, std::uint64_t a,
                                    std::uint64_t b) {
                                  served = a;
                                  missing = b;
                                });
  c.sim().runFor(seconds(5));
  EXPECT_EQ(served, 3u);
  EXPECT_EQ(missing, 2u);
}

TEST(MultiOps, MultiWritePersistsAndReplicates) {
  core::ClusterParams p;
  p.servers = 4;
  p.clients = 1;
  p.replicationFactor = 2;
  core::Cluster c(p);
  const auto table = c.createTable("t");
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 500; ++k) keys.push_back(k);
  net::Status st = net::Status::kError;
  c.clientHost(0).rc->multiWrite(table, keys, 1000,
                                 [&](net::Status s, std::uint64_t,
                                     std::uint64_t) { st = s; });
  c.sim().runFor(seconds(5));
  ASSERT_EQ(st, net::Status::kOk);
  EXPECT_TRUE(c.verifyAllKeysPresent(table, 500));

  // Durability: crash an owner, recover, everything still there.
  c.crashServer(0);
  for (int i = 0; i < 600 && c.coord().recoveryLog().empty(); ++i) {
    c.sim().runFor(msec(100));
  }
  ASSERT_FALSE(c.coord().recoveryLog().empty());
  EXPECT_TRUE(c.coord().recoveryLog().front().succeeded);
  EXPECT_TRUE(c.verifyAllKeysPresent(table, 500));
}

TEST(MultiOps, BatchingAmortisesPerOpCost) {
  // 1000 keys via multiRead must take far less simulated time than 1000
  // sequential single reads (the point of RAMCloud's batched API).
  core::ClusterParams p;
  p.servers = 2;
  p.clients = 1;
  core::Cluster c(p);
  const auto table = c.createTable("t");
  c.bulkLoad(table, 2'000, 1000);
  auto& rc0 = *c.clientHost(0).rc;

  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 1'000; ++k) keys.push_back(k);

  const sim::SimTime t0 = c.sim().now();
  bool done = false;
  rc0.multiRead(table, keys, [&](net::Status, std::uint64_t,
                                 std::uint64_t) { done = true; });
  while (!done) c.sim().runFor(sim::usec(50));
  const sim::Duration batched = c.sim().now() - t0;

  const sim::SimTime t1 = c.sim().now();
  std::uint64_t remaining = 1'000;
  std::function<void(std::uint64_t)> one = [&](std::uint64_t k) {
    rc0.read(table, k, [&, k](net::Status, sim::Duration) {
      if (--remaining > 0) one(k + 1);
    });
  };
  one(0);
  while (remaining > 0) c.sim().runFor(sim::usec(50));
  const sim::Duration sequential = c.sim().now() - t1;

  EXPECT_LT(batched * 5, sequential);
}

TEST(EthernetTransport, SlowerReadsThanInfiniband) {
  auto meanReadLatency = [](net::TransportParams t) {
    core::ClusterParams p;
    p.servers = 2;
    p.clients = 1;
    p.transport = t;
    core::Cluster c(p);
    const auto table = c.createTable("t");
    c.bulkLoad(table, 100, 1000);
    sim::Histogram h;
    int pending = 50;
    for (std::uint64_t k = 0; k < 50; ++k) {
      c.clientHost(0).rc->read(table, k % 100,
                               [&](net::Status s, sim::Duration d) {
                                 if (s == net::Status::kOk) h.add(d);
                                 --pending;
                               });
    }
    while (pending > 0) c.sim().runFor(msec(20));
    return h.mean();
  };
  const double ib = meanReadLatency(net::TransportParams::infiniband());
  const double eth =
      meanReadLatency(net::TransportParams::gigabitEthernet());
  // ~60 us of extra round trip on kernel TCP + GigE.
  EXPECT_GT(eth, ib + 40e3);
}

}  // namespace
}  // namespace rc
