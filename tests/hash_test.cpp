// Unit and property tests for the object map (hash-table index).

#include <gtest/gtest.h>

#include <unordered_map>

#include "hash/object_map.hpp"
#include "sim/rng.hpp"

namespace rc::hash {
namespace {

ObjectLocation loc(std::uint32_t seg, std::uint32_t idx, std::uint64_t v) {
  return ObjectLocation{log::LogRef{seg, idx}, v, 1000};
}

TEST(KeyHash, DeterministicAndSpread) {
  EXPECT_EQ(keyHash({1, 2}), keyHash({1, 2}));
  EXPECT_NE(keyHash({1, 2}), keyHash({2, 1}));
  EXPECT_NE(keyHash({1, 2}), keyHash({1, 3}));
}

TEST(KeyHash, UniformAcrossRanges) {
  // Split the hash space in 8; a uniform keyset must land evenly.
  std::vector<int> buckets(8, 0);
  for (std::uint64_t k = 0; k < 80000; ++k) {
    ++buckets[keyHash({1, k}) >> 61];
  }
  for (int c : buckets) EXPECT_NEAR(c, 10000, 600);
}

TEST(ObjectMap, PutGetRoundTrip) {
  ObjectMap m;
  EXPECT_TRUE(m.put({1, 10}, loc(1, 0, 1)));
  const auto* got = m.get({1, 10});
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->version, 1u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(ObjectMap, MissingKeyIsNull) {
  ObjectMap m;
  EXPECT_EQ(m.get({1, 99}), nullptr);
}

TEST(ObjectMap, OverwriteKeepsSizeAndUpdates) {
  ObjectMap m;
  EXPECT_TRUE(m.put({1, 10}, loc(1, 0, 1)));
  EXPECT_FALSE(m.put({1, 10}, loc(2, 5, 7)));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.get({1, 10})->version, 7u);
  EXPECT_EQ(m.get({1, 10})->ref.segment, 2u);
}

TEST(ObjectMap, EraseRemoves) {
  ObjectMap m;
  m.put({1, 10}, loc(1, 0, 1));
  EXPECT_TRUE(m.erase({1, 10}));
  EXPECT_EQ(m.get({1, 10}), nullptr);
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.erase({1, 10}));
}

TEST(ObjectMap, ReinsertAfterEraseWorks) {
  ObjectMap m;
  m.put({1, 10}, loc(1, 0, 1));
  m.erase({1, 10});
  EXPECT_TRUE(m.put({1, 10}, loc(3, 3, 3)));
  EXPECT_EQ(m.get({1, 10})->version, 3u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(ObjectMap, GrowsPastInitialCapacity) {
  ObjectMap m(8);
  for (std::uint64_t k = 0; k < 10000; ++k) {
    m.put({1, k}, loc(1, static_cast<std::uint32_t>(k), k));
  }
  EXPECT_EQ(m.size(), 10000u);
  for (std::uint64_t k = 0; k < 10000; ++k) {
    ASSERT_NE(m.get({1, k}), nullptr) << k;
    EXPECT_EQ(m.get({1, k})->version, k);
  }
  EXPECT_LE(m.loadFactor(), 0.7 + 1e-9);
}

TEST(ObjectMap, GetMutableAllowsInPlaceUpdate) {
  ObjectMap m;
  m.put({1, 1}, loc(1, 0, 1));
  m.getMutable({1, 1})->ref = log::LogRef{9, 9};
  EXPECT_EQ(m.get({1, 1})->ref.segment, 9u);
}

TEST(ObjectMap, DistinguishesTables) {
  ObjectMap m;
  m.put({1, 5}, loc(1, 0, 1));
  m.put({2, 5}, loc(2, 0, 2));
  EXPECT_EQ(m.get({1, 5})->version, 1u);
  EXPECT_EQ(m.get({2, 5})->version, 2u);
}

TEST(ObjectMap, ForEachVisitsAllLiveEntries) {
  ObjectMap m;
  for (std::uint64_t k = 0; k < 100; ++k) m.put({1, k}, loc(1, 0, k));
  m.erase({1, 50});
  int visited = 0;
  bool saw50 = false;
  m.forEach([&](const Key& k, const ObjectLocation&) {
    ++visited;
    if (k.keyId == 50) saw50 = true;
  });
  EXPECT_EQ(visited, 99);
  EXPECT_FALSE(saw50);
}

// ---- Property: random op stream agrees with std::unordered_map oracle.
struct PropParam {
  std::uint64_t seed;
  int ops;
  std::uint64_t keySpace;
};

class ObjectMapProperty : public ::testing::TestWithParam<PropParam> {};

TEST_P(ObjectMapProperty, AgreesWithOracle) {
  const auto [seed, ops, keySpace] = GetParam();
  sim::Rng rng(seed);
  ObjectMap m(8);
  struct H {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(keyHash(k));
    }
  };
  std::unordered_map<Key, std::uint64_t, H> oracle;

  for (int i = 0; i < ops; ++i) {
    const Key k{1 + rng.uniformInt(3), rng.uniformInt(keySpace)};
    const auto action = rng.uniformInt(10);
    if (action < 6) {  // put
      const std::uint64_t v = rng.next64();
      m.put(k, ObjectLocation{log::LogRef{1, 0}, v, 100});
      oracle[k] = v;
    } else if (action < 8) {  // erase
      const bool a = m.erase(k);
      const bool b = oracle.erase(k) > 0;
      ASSERT_EQ(a, b);
    } else {  // get
      const auto* got = m.get(k);
      auto it = oracle.find(k);
      ASSERT_EQ(got != nullptr, it != oracle.end());
      if (got != nullptr) ASSERT_EQ(got->version, it->second);
    }
  }
  ASSERT_EQ(m.size(), oracle.size());
  for (const auto& [k, v] : oracle) {
    const auto* got = m.get(k);
    ASSERT_NE(got, nullptr);
    ASSERT_EQ(got->version, v);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ObjectMapProperty,
    ::testing::Values(PropParam{1, 20000, 64}, PropParam{2, 20000, 4096},
                      PropParam{3, 50000, 256}, PropParam{4, 5000, 16},
                      PropParam{99, 30000, 100000}));

}  // namespace
}  // namespace rc::hash
