// End-to-end tests of the event journal's recovery/migration span trees:
// crash a master under client load and assert the coordinator, masters and
// backups together emit one complete, well-formed cross-node trace.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "obs/event_journal.hpp"

namespace rc {
namespace {

using obs::EventJournal;
using sim::msec;
using sim::seconds;

core::ClusterParams params(int servers, int clients, int rf) {
  core::ClusterParams p;
  p.servers = servers;
  p.clients = clients;
  p.replicationFactor = rf;
  return p;
}

/// Crash server `victim` and run until the coordinator logs the recovery.
void crashAndRecover(core::Cluster& c, int victim) {
  c.crashServer(victim);
  for (int i = 0; i < 900 && c.coord().recoveryLog().empty(); ++i) {
    c.sim().runFor(msec(100));
  }
  ASSERT_FALSE(c.coord().recoveryLog().empty());
  ASSERT_TRUE(c.coord().recoveryLog().front().succeeded);
  c.sim().runFor(seconds(2));  // drain re-replication / late closes
}

std::vector<const EventJournal::Span*> inCtx(const EventJournal& j,
                                             std::uint64_t ctx) {
  return j.spansInCtx(ctx);
}

TEST(RecoveryTrace, CrashYieldsOneCompleteSpanTree) {
  core::Cluster c(params(5, 1, 2));
  const auto table = c.createTable("t");
  c.bulkLoad(table, 20'000, 1000);
  auto& rc0 = *c.clientHost(0).rc;

  // Continuous writes so the crash happens under load (some ops will time
  // out against the dead master; that is the point).
  bool running = true;
  sim::Rng keys(7);
  std::function<void()> loop = [&] {
    if (!running) return;
    rc0.write(table, keys.uniformInt(20'000), 1000,
              [&](net::Status, sim::Duration) {
                c.sim().schedule(sim::usec(500), loop);
              });
  };
  loop();
  c.sim().runFor(seconds(1));

  crashAndRecover(c, 2);
  running = false;

  const auto& j = c.journal();

  // Exactly one recovery root: closed, successful, with a nonzero context.
  const auto roots = j.spansNamed("recovery");
  ASSERT_EQ(roots.size(), 1u);
  const auto* root = roots[0];
  EXPECT_FALSE(root->open);
  EXPECT_FALSE(root->abandoned);
  ASSERT_NE(root->ctx, 0u);

  const auto tree = inCtx(j, root->ctx);
  ASSERT_GT(tree.size(), 4u);

  // Every phase the coordinator and the recovery masters own must appear.
  std::set<std::string> names;
  for (const auto* s : tree) names.insert(s->name);
  for (const char* phase :
       {"failure_detection", "recovery", "will_lookup",
        "partition_assignment", "partition_recovery", "segment_fetch",
        "replay", "tablet_remap"}) {
    EXPECT_TRUE(names.count(phase)) << "missing phase " << phase;
  }
  // rf=2 seals side segments during replay -> re-replication spans.
  EXPECT_TRUE(names.count("rereplication"));

  // Causality: every span in the context reaches the root via parents.
  for (const auto* s : tree) {
    const EventJournal::Span* cur = s;
    int hops = 0;
    while (cur->id != root->id && cur->parent != 0 && hops < 16) {
      cur = j.span(cur->parent);
      ASSERT_NE(cur, nullptr);
      ++hops;
    }
    EXPECT_EQ(cur->id, root->id) << "span " << s->name << " is orphaned";
  }

  // Well-formed intervals, all closed, master phases nested in the root.
  for (const auto* s : tree) {
    EXPECT_FALSE(s->open) << s->name;
    EXPECT_GE(s->end, s->begin) << s->name;
    if (s->name == "partition_recovery") {
      EXPECT_GE(s->begin, root->begin);
      EXPECT_LE(s->end, root->end);
    }
  }

  // One partition_recovery per surviving master, each on its own node.
  const auto tasks = j.spansNamed("partition_recovery");
  EXPECT_EQ(tasks.size(), 4u);
  std::set<int> taskNodes;
  for (const auto* s : tasks) taskNodes.insert(s->node);
  EXPECT_EQ(taskNodes.size(), tasks.size());

  // Serial-by-construction phases must not overlap per actor (replay is
  // serialised by the replay pump, cleaner passes by the cleaner flag).
  for (const char* phase : {"partition_recovery", "replay", "cleaner_pass"}) {
    std::map<int, std::vector<std::pair<sim::SimTime, sim::SimTime>>> byNode;
    for (const auto* s : j.spansNamed(phase)) {
      if (!s->open) byNode[s->node].push_back({s->begin, s->end});
    }
    for (auto& [nodeId, iv] : byNode) {
      std::sort(iv.begin(), iv.end());
      for (std::size_t i = 1; i < iv.size(); ++i) {
        EXPECT_LE(iv[i - 1].second, iv[i].first)
            << phase << " overlaps on node " << nodeId;
      }
    }
  }

  // No span of the crashed node survives open, and the crash-time closes
  // are flagged abandoned (at minimum the victim's in-flight work, if any).
  const auto victimNode = c.serverNodeId(2);
  for (const auto& s : j.spans()) {
    if (s.node == victimNode) EXPECT_FALSE(s.open) << s.name;
  }

  // Journal accounting is consistent.
  EXPECT_EQ(j.spansStarted(), j.spans().size());
  EXPECT_EQ(j.spansStarted(), j.spansCompleted() + j.spansAbandoned() +
                                  j.openSpans());
}

TEST(RecoveryTrace, SpanEnergyIsPositiveAndBounded) {
  core::Cluster c(params(4, 0, 2));
  const auto table = c.createTable("t");
  c.bulkLoad(table, 10'000, 1000);
  c.sim().runFor(seconds(1));
  crashAndRecover(c, 1);

  const auto& j = c.journal();
  const auto roots = j.spansNamed("recovery");
  ASSERT_EQ(roots.size(), 1u);
  // The coordinator node is unmetered (no PDU), so the root carries 0 J;
  // master-side phases carry whole-node joules bounded by max power.
  const auto& pm = c.params().serverNode.power;
  for (const auto* s : j.spansNamed("partition_recovery")) {
    const double secs = sim::toSeconds(s->duration());
    EXPECT_GT(s->joules, 0) << "node " << s->node;
    EXPECT_LE(s->joules, pm.watts(1.0) * secs * 1.01) << "node " << s->node;
  }
  EXPECT_GT(j.joulesForPhase("partition_recovery"), 0);
}

TEST(RecoveryTrace, JsonlRoundTripPreservesSpans) {
  core::Cluster c(params(4, 0, 2));
  const auto table = c.createTable("t");
  c.bulkLoad(table, 5'000, 1000);
  c.sim().runFor(seconds(1));
  crashAndRecover(c, 0);

  const std::string path = "/tmp/rc_recovery_trace_test_events.jsonl";
  ASSERT_TRUE(c.journal().writeJsonl(path));
  const auto back = EventJournal::readJsonl(path);
  std::remove(path.c_str());

  const auto& orig = c.journal().spans();
  ASSERT_EQ(back.size(), orig.size());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    EXPECT_EQ(back[i].id, orig[i].id);
    EXPECT_EQ(back[i].parent, orig[i].parent);
    EXPECT_EQ(back[i].name, orig[i].name);
    EXPECT_EQ(back[i].node, orig[i].node);
    EXPECT_EQ(back[i].ctx, orig[i].ctx);
    EXPECT_EQ(back[i].open, orig[i].open);
    EXPECT_EQ(back[i].abandoned, orig[i].abandoned);
    EXPECT_EQ(back[i].bytes, orig[i].bytes);
    EXPECT_EQ(back[i].count, orig[i].count);
    EXPECT_NEAR(sim::toSeconds(back[i].begin),
                sim::toSeconds(orig[i].begin), 1e-6);
    EXPECT_NEAR(back[i].joules, orig[i].joules,
                0.01 + 1e-4 * orig[i].joules);
  }
}

TEST(RecoveryTrace, MigrationEmitsSpanAndOwnershipTransfer) {
  core::Cluster c(params(3, 0, 0));
  const auto table = c.createTable("t");
  c.bulkLoad(table, 6'000, 1000);

  const auto tablets =
      c.coord().tabletMap().tabletsOwnedBy(c.serverNodeId(0));
  ASSERT_FALSE(tablets.empty());
  bool ok = false;
  c.migrateTablet(tablets[0], 1, [&ok](bool r) { ok = r; });
  c.sim().runFor(seconds(20));
  ASSERT_TRUE(ok);

  const auto& j = c.journal();
  const auto migs = j.spansNamed("migration");
  ASSERT_EQ(migs.size(), 1u);
  EXPECT_FALSE(migs[0]->open);
  EXPECT_FALSE(migs[0]->abandoned);
  EXPECT_EQ(migs[0]->node, c.serverNodeId(0));
  EXPECT_GT(migs[0]->count, 0u);  // objects shipped

  // The coordinator's ownership flip is causally linked to the migration.
  const auto xfers = j.spansNamed("ownership_transfer");
  ASSERT_EQ(xfers.size(), 1u);
  EXPECT_EQ(xfers[0]->parent, migs[0]->id);
  EXPECT_EQ(xfers[0]->node, 0);  // coordinator
  EXPECT_GE(xfers[0]->begin, migs[0]->begin);
}

}  // namespace
}  // namespace rc
