// Cross-module integration and property tests: durability through crashes,
// determinism, end-to-end experiment sanity.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "core/recovery_experiment.hpp"

namespace rc {
namespace {

using sim::msec;
using sim::seconds;

// ---- Property: every write acknowledged to a client before the crash is
// readable after recovery, across replication factors and seeds.
struct DurabilityParam {
  int rf;
  std::uint64_t seed;
};

class CrashDurability : public ::testing::TestWithParam<DurabilityParam> {};

TEST_P(CrashDurability, AckedWritesSurviveCrash) {
  const auto [rf, seed] = GetParam();
  core::ClusterParams p;
  p.servers = 5;
  p.clients = 2;
  p.seed = seed;
  p.replicationFactor = rf;
  core::Cluster c(p);
  const auto table = c.createTable("t");
  c.bulkLoad(table, 2'000, 1000);

  // Live traffic: clients overwrite random keys; we remember every key
  // whose write was ACKED (and its last acked version).
  std::map<std::uint64_t, std::uint64_t> acked;
  std::uint64_t stamp = 0;
  auto& rc0 = *c.clientHost(0).rc;
  sim::Rng keys(seed ^ 0xabc);
  bool stopWrites = false;
  std::function<void()> writeLoop = [&] {
    if (stopWrites) return;
    const std::uint64_t k = keys.uniformInt(2'000);
    const std::uint64_t v = ++stamp;
    rc0.write(table, k, 1000, [&, k, v](net::Status s, sim::Duration) {
      if (s == net::Status::kOk && !stopWrites) acked[k] = v;
      c.sim().schedule(sim::usec(200), writeLoop);
    });
  };
  writeLoop();

  c.sim().runFor(seconds(2));
  const int victim = 2;
  stopWrites = true;  // determinism of the acked set at crash time
  c.crashServer(victim);

  for (int i = 0; i < 1200 && c.coord().recoveryLog().empty(); ++i) {
    c.sim().runFor(msec(100));
  }
  ASSERT_FALSE(c.coord().recoveryLog().empty());
  EXPECT_TRUE(c.coord().recoveryLog().front().succeeded);

  // Every acked key is present at its current owner.
  for (const auto& [k, v] : acked) {
    const auto owner = c.ownerOfKey(table, k);
    ASSERT_NE(owner, node::kInvalidNode);
    auto* m = c.directory().masterOn(owner);
    ASSERT_NE(m, nullptr);
    const auto* loc = m->objectMap().get(hash::Key{table, k});
    ASSERT_NE(loc, nullptr) << "key " << k << " lost (rf=" << rf << ")";
  }
  // And the bulk-loaded baseline survived too.
  EXPECT_TRUE(c.verifyAllKeysPresent(table, 2'000));
}

INSTANTIATE_TEST_SUITE_P(
    RfSeedSweep, CrashDurability,
    ::testing::Values(DurabilityParam{1, 11}, DurabilityParam{1, 12},
                      DurabilityParam{2, 21}, DurabilityParam{2, 22},
                      DurabilityParam{3, 31}, DurabilityParam{3, 32},
                      DurabilityParam{4, 41}));

// ---- Property: deleted keys stay deleted through recovery (tombstones).
TEST(CrashDurabilityTombstones, RemovedKeysStayRemoved) {
  core::ClusterParams p;
  p.servers = 4;
  p.clients = 1;
  p.replicationFactor = 2;
  core::Cluster c(p);
  const auto table = c.createTable("t");
  c.bulkLoad(table, 1'000, 1000);

  auto& rc0 = *c.clientHost(0).rc;
  std::vector<std::uint64_t> removed;
  int pending = 0;
  for (std::uint64_t k = 0; k < 1000; k += 7) {
    ++pending;
    rc0.remove(table, k, [&removed, &pending, k](net::Status s, sim::Duration) {
      if (s == net::Status::kOk) removed.push_back(k);
      --pending;
    });
  }
  while (pending > 0) c.sim().runFor(msec(50));
  ASSERT_FALSE(removed.empty());

  c.crashServer(1);
  for (int i = 0; i < 1200 && c.coord().recoveryLog().empty(); ++i) {
    c.sim().runFor(msec(100));
  }
  ASSERT_FALSE(c.coord().recoveryLog().empty());
  ASSERT_TRUE(c.coord().recoveryLog().front().succeeded);

  for (std::uint64_t k : removed) {
    const auto owner = c.ownerOfKey(table, k);
    auto* m = c.directory().masterOn(owner);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->objectMap().get(hash::Key{table, k}), nullptr)
        << "deleted key " << k << " resurrected by recovery";
  }
}

// ---- Determinism: the entire stack is reproducible from the seed.
TEST(Determinism, SameSeedSameExperimentResult) {
  auto once = [] {
    core::YcsbExperimentConfig cfg;
    cfg.servers = 3;
    cfg.clients = 3;
    cfg.replicationFactor = 2;
    cfg.workload = ycsb::WorkloadSpec::A(5'000);
    cfg.warmup = msec(300);
    cfg.measure = seconds(1);
    cfg.seed = 777;
    return core::runYcsbExperiment(cfg);
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.opsMeasured, b.opsMeasured);
  EXPECT_DOUBLE_EQ(a.throughputOpsPerSec, b.throughputOpsPerSec);
  EXPECT_DOUBLE_EQ(a.meanPowerPerServerW, b.meanPowerPerServerW);
}

// The hot-path engine (inline tasks, indexed event heap, pooled RPC
// requests) must keep seeded runs reproducible down to the exported bytes:
// run the same steady-state config twice and byte-compare the JSONL.
TEST(Determinism, SameSeedYcsbExportIsByteIdentical) {
  auto runOnce = [](const std::string& dir) {
    core::ClusterParams p;
    p.servers = 4;
    p.clients = 3;
    p.seed = 4242;
    p.replicationFactor = 2;
    core::Cluster c(p);
    const auto table = c.createTable("det");
    c.bulkLoad(table, 5'000, 512);
    c.configureYcsb(table, ycsb::WorkloadSpec::B(5'000),
                    ycsb::YcsbClientParams{});
    c.startYcsb();
    c.sim().runFor(seconds(2));
    c.stopYcsb();
    ASSERT_TRUE(c.exportMetrics(dir));
  };
  const std::string dirA = ::testing::TempDir() + "det_ycsb_a";
  const std::string dirB = ::testing::TempDir() + "det_ycsb_b";
  runOnce(dirA);
  runOnce(dirB);
  auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const std::string metricsA = slurp(dirA + "/metrics.jsonl");
  ASSERT_FALSE(metricsA.empty());
  EXPECT_EQ(metricsA, slurp(dirB + "/metrics.jsonl"));
  EXPECT_EQ(slurp(dirA + "/events.jsonl"), slurp(dirB + "/events.jsonl"));
}

TEST(Determinism, DifferentSeedsDiffer) {
  auto once = [](std::uint64_t seed) {
    core::YcsbExperimentConfig cfg;
    cfg.servers = 2;
    cfg.clients = 2;
    cfg.workload = ycsb::WorkloadSpec::A(2'000);
    cfg.warmup = msec(200);
    cfg.measure = seconds(1);
    cfg.seed = seed;
    return core::runYcsbExperiment(cfg).opsMeasured;
  };
  EXPECT_NE(once(1), once(2));
}

// ---- End-to-end recovery experiment (miniature Fig. 9/11).
TEST(RecoveryExperiment, SmallScaleEndToEnd) {
  core::RecoveryExperimentConfig cfg;
  cfg.servers = 5;
  cfg.replicationFactor = 2;
  cfg.records = 200'000;  // ~200 MB
  cfg.killAt = seconds(5);
  cfg.settleAfter = seconds(3);
  const auto r = core::runRecoveryExperiment(cfg);
  EXPECT_TRUE(r.recovered);
  EXPECT_TRUE(r.allKeysRecovered);
  EXPECT_GT(sim::toSeconds(r.recoveryDuration), 0.3);
  EXPECT_LT(sim::toSeconds(r.detectionDelay), 1.0);
  EXPECT_GT(r.peakCpuPct, 50.0);          // recovery burns CPU (Fig. 9a)
  EXPECT_GT(r.meanPowerDuringRecoveryW, 95.0);  // and watts (Fig. 9b)
  EXPECT_GT(r.diskWriteMBps.maxValue(), 1.0);   // re-replication I/O
  EXPECT_GT(r.diskReadMBps.maxValue(), 1.0);    // backup reads
  EXPECT_FALSE(r.cpuMeanPct.empty());
}

TEST(RecoveryExperiment, RecoveryTimeGrowsWithRf) {
  double last = 0;
  for (int rf : {1, 3}) {
    core::RecoveryExperimentConfig cfg;
    cfg.servers = 5;
    cfg.replicationFactor = rf;
    cfg.records = 150'000;
    cfg.killAt = seconds(3);
    cfg.settleAfter = seconds(1);
    const auto r = core::runRecoveryExperiment(cfg);
    ASSERT_TRUE(r.recovered);
    if (rf > 1) {
      EXPECT_GT(sim::toSeconds(r.recoveryDuration), last * 1.3)
          << "Finding 6: higher rf must slow recovery";
    }
    last = sim::toSeconds(r.recoveryDuration);
  }
}

// ---- Steady-state experiment shape checks (miniature paper findings).
TEST(ExperimentShape, ReadOnlyScalesWithClients) {
  auto run = [](int clients) {
    core::YcsbExperimentConfig cfg;
    cfg.servers = 5;
    cfg.clients = clients;
    cfg.workload = ycsb::WorkloadSpec::C(20'000);
    cfg.warmup = msec(300);
    cfg.measure = seconds(1);
    return core::runYcsbExperiment(cfg);
  };
  const auto two = run(2);
  const auto eight = run(8);
  EXPECT_GT(eight.throughputOpsPerSec, 3.2 * two.throughputOpsPerSec);
  EXPECT_EQ(eight.opFailures, 0u);
}

TEST(ExperimentShape, ReplicationDegradesUpdateThroughput) {
  auto run = [](int rf) {
    core::YcsbExperimentConfig cfg;
    cfg.servers = 5;
    cfg.clients = 5;
    cfg.replicationFactor = rf;
    cfg.workload = ycsb::WorkloadSpec::A(20'000);
    cfg.warmup = msec(300);
    cfg.measure = seconds(2);
    return core::runYcsbExperiment(cfg).throughputOpsPerSec;
  };
  const double rf1 = run(1);
  const double rf4 = run(4);
  EXPECT_LT(rf4, 0.75 * rf1) << "Finding 3: rf=4 must cost >25% throughput";
}

TEST(ExperimentShape, UpdateHeavyBurnsMorePowerPerOp) {
  auto run = [](ycsb::WorkloadSpec w) {
    core::YcsbExperimentConfig cfg;
    cfg.servers = 4;
    cfg.clients = 8;
    cfg.workload = std::move(w);
    cfg.warmup = msec(300);
    cfg.measure = seconds(2);
    return core::runYcsbExperiment(cfg);
  };
  const auto a = run(ycsb::WorkloadSpec::A(20'000));
  const auto c = run(ycsb::WorkloadSpec::C(20'000));
  // Finding 2: far fewer ops per joule for update-heavy.
  EXPECT_LT(a.opsPerJoule * 3, c.opsPerJoule);
}

}  // namespace
}  // namespace rc
