// Unit tests for the network and RPC fabric.

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/rpc.hpp"

namespace rc::net {
namespace {

using sim::msec;
using sim::nsec;
using sim::toSeconds;
using sim::usec;

TEST(Network, SmallMessageArrivesAfterLatency) {
  sim::Simulation sim;
  Network net(sim, TransportParams::infiniband());
  bool arrived = false;
  net.send(1, 2, 0, [&] { arrived = true; });
  sim.run();
  EXPECT_TRUE(arrived);
  EXPECT_NEAR(static_cast<double>(sim.now()),
              static_cast<double>(usec(2) + nsec(300)), 1.0);
}

TEST(Network, LargeTransferPaysBandwidth) {
  sim::Simulation sim;
  TransportParams p = TransportParams::infiniband();  // 2000 MB/s
  Network net(sim, p);
  net.send(1, 2, 2'000'000'000, [] {});  // 2 GB -> 1 s
  sim.run();
  EXPECT_NEAR(toSeconds(sim.now()), 1.0, 0.01);
}

TEST(Network, SenderNicSerialises) {
  sim::Simulation sim;
  Network net(sim, TransportParams::infiniband());
  sim::SimTime first = 0, second = 0;
  net.send(1, 2, 200'000'000, [&] { first = sim.now(); });   // 100 ms wire
  net.send(1, 3, 200'000'000, [&] { second = sim.now(); });  // queued behind
  sim.run();
  EXPECT_GE(second - first, msec(99));
}

TEST(Network, DifferentSendersDoNotSerialise) {
  sim::Simulation sim;
  Network net(sim, TransportParams::infiniband());
  sim::SimTime a = 0, b = 0;
  net.send(1, 9, 200'000'000, [&] { a = sim.now(); });
  net.send(2, 9, 200'000'000, [&] { b = sim.now(); });
  sim.run();
  EXPECT_LT(std::abs(a - b), usec(10));
}

TEST(Network, EthernetSlowerThanInfiniband) {
  const auto ib = TransportParams::infiniband();
  const auto eth = TransportParams::gigabitEthernet();
  EXPECT_GT(eth.oneWayLatency, ib.oneWayLatency);
  EXPECT_LT(eth.bandwidthMBps, ib.bandwidthMBps);
}

class EchoService : public RpcService {
 public:
  int handled = 0;
  void handleRpc(const RpcRequest& req, node::NodeId /*from*/,
                 Responder respond) override {
    ++handled;
    RpcResponse r;
    r.a = req.a + 1;
    respond(std::move(r));
  }
};

TEST(Rpc, RoundTripDeliversResponse) {
  sim::Simulation sim;
  Network net(sim, TransportParams::infiniband());
  RpcSystem rpc(sim, net);
  EchoService echo;
  rpc.bind(2, kMasterPort, &echo);

  RpcRequest req;
  req.a = 41;
  bool got = false;
  rpc.call(1, 2, kMasterPort, req, sim::seconds(1),
           [&](const RpcResponse& resp) {
             got = true;
             EXPECT_EQ(resp.status, Status::kOk);
             EXPECT_EQ(resp.a, 42u);
           });
  sim.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(echo.handled, 1);
}

TEST(Rpc, UnboundTargetTimesOut) {
  sim::Simulation sim;
  Network net(sim, TransportParams::infiniband());
  RpcSystem rpc(sim, net);
  bool got = false;
  rpc.call(1, 7, kMasterPort, RpcRequest{}, msec(50),
           [&](const RpcResponse& resp) {
             got = true;
             EXPECT_EQ(resp.status, Status::kTimeout);
           });
  sim.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(sim.now(), msec(50));
  EXPECT_EQ(rpc.timeoutsObserved(), 1u);
}

TEST(Rpc, UnbindDuringFlightTimesOut) {
  sim::Simulation sim;
  Network net(sim, TransportParams::infiniband());
  RpcSystem rpc(sim, net);
  EchoService echo;
  rpc.bind(2, kMasterPort, &echo);
  rpc.unbind(2, kMasterPort);
  bool timedOut = false;
  rpc.call(1, 2, kMasterPort, RpcRequest{}, msec(10),
           [&](const RpcResponse& r) {
             timedOut = r.status == Status::kTimeout;
           });
  sim.run();
  EXPECT_TRUE(timedOut);
  EXPECT_EQ(echo.handled, 0);
}

class SlowService : public RpcService {
 public:
  explicit SlowService(sim::Simulation& s) : sim_(s) {}
  void handleRpc(const RpcRequest&, node::NodeId,
                 Responder respond) override {
    sim_.schedule(msec(100), [respond = std::move(respond)]() mutable {
      respond(RpcResponse{});
    });
  }
  sim::Simulation& sim_;
};

TEST(Rpc, LateResponseAfterTimeoutIsDropped) {
  sim::Simulation sim;
  Network net(sim, TransportParams::infiniband());
  RpcSystem rpc(sim, net);
  SlowService slow(sim);
  rpc.bind(2, kMasterPort, &slow);
  int callbacks = 0;
  rpc.call(1, 2, kMasterPort, RpcRequest{}, msec(10),
           [&](const RpcResponse& r) {
             ++callbacks;
             EXPECT_EQ(r.status, Status::kTimeout);
           });
  sim.run();
  EXPECT_EQ(callbacks, 1);  // exactly once, and it was the timeout
}

TEST(Rpc, ManyConcurrentCallsAllComplete) {
  sim::Simulation sim;
  Network net(sim, TransportParams::infiniband());
  RpcSystem rpc(sim, net);
  EchoService echo;
  rpc.bind(2, kMasterPort, &echo);
  int done = 0;
  for (int i = 0; i < 500; ++i) {
    RpcRequest req;
    req.a = static_cast<std::uint64_t>(i);
    rpc.call(1, 2, kMasterPort, req, sim::seconds(1),
             [&done, i](const RpcResponse& r) {
               EXPECT_EQ(r.a, static_cast<std::uint64_t>(i) + 1);
               ++done;
             });
  }
  sim.run();
  EXPECT_EQ(done, 500);
}

}  // namespace
}  // namespace rc::net
