// Tests for the master/backup services, dispatch and replication manager,
// exercised through a small simulated cluster.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/cluster.hpp"
#include "server/backup_service.hpp"
#include "server/dispatch.hpp"
#include "server/master_service.hpp"

namespace rc::server {
namespace {

using sim::msec;
using sim::seconds;
using sim::usec;

core::ClusterParams smallCluster(int servers, int rf) {
  core::ClusterParams p;
  p.servers = servers;
  p.clients = 1;
  p.replicationFactor = rf;
  return p;
}

net::RpcResponse callSync(core::Cluster& c, node::NodeId to,
                          net::RpcRequest req,
                          sim::Duration timeout = seconds(2)) {
  net::RpcResponse out;
  bool done = false;
  c.rpc().call(c.clientNodeId(0), to, net::kMasterPort, req, timeout,
               [&](const net::RpcResponse& r) {
                 out = r;
                 done = true;
               });
  while (!done) c.sim().runFor(msec(10));
  return out;
}

net::RpcRequest writeReq(std::uint64_t table, std::uint64_t key,
                         std::uint64_t bytes = 1000) {
  net::RpcRequest r;
  r.op = net::Opcode::kWrite;
  r.a = table;
  r.b = key;
  r.payloadBytes = bytes;
  return r;
}

net::RpcRequest readReq(std::uint64_t table, std::uint64_t key) {
  net::RpcRequest r;
  r.op = net::Opcode::kRead;
  r.a = table;
  r.b = key;
  return r;
}

TEST(Dispatch, SerialisesItems) {
  sim::Simulation sim;
  DispatchParams p;
  p.perItem = usec(1);
  Dispatch d(sim, p);
  std::vector<sim::SimTime> at;
  for (int i = 0; i < 5; ++i) {
    d.enqueue([&] { at.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(at.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(at[static_cast<size_t>(i)], usec(i + 1));
}

TEST(Dispatch, ExtraCostDelaysFollowers) {
  sim::Simulation sim;
  DispatchParams p;
  p.perItem = usec(1);
  Dispatch d(sim, p);
  sim::SimTime second = 0;
  d.enqueue([] {}, usec(99));  // a backup write hogging the dispatch core
  d.enqueue([&] { second = sim.now(); });
  sim.run();
  EXPECT_EQ(second, usec(101));
}

TEST(Dispatch, CrashDropsQueued) {
  sim::Simulation sim;
  Dispatch d(sim, DispatchParams{});
  bool ran = false;
  d.enqueue([&] { ran = true; });
  d.crash();
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Dispatch, BacklogGrowsMonotonicallyUnderOverload) {
  sim::Simulation sim;
  DispatchParams p;
  p.perItem = usec(10);
  Dispatch d(sim, p);
  // Offer items faster than the dispatch core can hand them off (one per
  // 10 us service time, arriving instantaneously): the backlog and queue
  // depth must grow monotonically, never reset or wrap.
  sim::Duration prevBacklog = 0;
  std::uint64_t prevDepth = 0;
  for (int i = 0; i < 50; ++i) {
    d.enqueue([] {});
    EXPECT_GE(d.backlogDelay(), prevBacklog);
    EXPECT_GE(d.queueDepth(), prevDepth);
    prevBacklog = d.backlogDelay();
    prevDepth = d.queueDepth();
  }
  EXPECT_EQ(d.queueDepth(), 50u);
  EXPECT_EQ(d.maxQueueDepth(), 50u);
  EXPECT_EQ(d.backlogDelay(), usec(500));
  EXPECT_EQ(d.nextFreeAt(), usec(500));
  sim.run();
  // Everything drained: depth returns to zero, high-water mark sticks.
  EXPECT_EQ(d.queueDepth(), 0u);
  EXPECT_EQ(d.maxQueueDepth(), 50u);
  EXPECT_EQ(d.itemsDispatched(), 50u);
}

TEST(Dispatch, QueueMetricsExposed) {
  sim::Simulation sim;
  DispatchParams p;
  p.perItem = usec(10);
  Dispatch d(sim, p);
  obs::MetricRegistry reg;
  d.registerMetrics(reg, "node1.master.dispatch");
  for (int i = 0; i < 8; ++i) d.enqueue([] {});
  EXPECT_DOUBLE_EQ(reg.value("node1.master.dispatch.queue_depth"), 8.0);
  EXPECT_DOUBLE_EQ(reg.value("node1.master.dispatch.backlog_us"), 80.0);
  sim.run();
  EXPECT_DOUBLE_EQ(reg.value("node1.master.dispatch.queue_depth"), 0.0);
  EXPECT_DOUBLE_EQ(reg.value("node1.master.dispatch.items"), 8.0);
}

TEST(MasterService, WriteThenReadRoundTrip) {
  core::Cluster c(smallCluster(2, 0));
  const auto table = c.createTable("t");
  auto w = callSync(c, c.ownerOfKey(table, 5), writeReq(table, 5));
  EXPECT_EQ(w.status, net::Status::kOk);
  auto r = callSync(c, c.ownerOfKey(table, 5), readReq(table, 5));
  EXPECT_EQ(r.status, net::Status::kOk);
  EXPECT_EQ(r.a, 1u);  // found
  EXPECT_EQ(r.payloadBytes, 1100u);  // 1000 B value + 100 B log metadata
}

TEST(MasterService, ReadMissingKeyReportsAbsent) {
  core::Cluster c(smallCluster(1, 0));
  const auto table = c.createTable("t");
  auto r = callSync(c, c.serverNodeId(0), readReq(table, 12345));
  EXPECT_EQ(r.status, net::Status::kOk);
  EXPECT_EQ(r.a, 0u);
}

TEST(MasterService, WrongOwnerReturnsUnknownTablet) {
  core::Cluster c(smallCluster(2, 0));
  const auto table = c.createTable("t");
  const auto owner = c.ownerOfKey(table, 5);
  const auto other = owner == c.serverNodeId(0) ? c.serverNodeId(1)
                                                : c.serverNodeId(0);
  auto r = callSync(c, other, readReq(table, 5));
  EXPECT_EQ(r.status, net::Status::kUnknownTablet);
}

TEST(MasterService, VersionsIncreaseAcrossOverwrites) {
  core::Cluster c(smallCluster(1, 0));
  const auto table = c.createTable("t");
  callSync(c, c.serverNodeId(0), writeReq(table, 1));
  callSync(c, c.serverNodeId(0), writeReq(table, 1));
  auto r = callSync(c, c.serverNodeId(0), readReq(table, 1));
  EXPECT_GE(r.b, 2u);
  // The overwritten entry is dead in the log.
  const auto& master = *c.server(0).master;
  EXPECT_LT(master.log().liveBytes(), master.log().appendedBytes());
}

TEST(MasterService, RemoveDeletesAndWritesTombstone) {
  core::Cluster c(smallCluster(1, 0));
  const auto table = c.createTable("t");
  callSync(c, c.serverNodeId(0), writeReq(table, 9));
  net::RpcRequest rm;
  rm.op = net::Opcode::kRemove;
  rm.a = table;
  rm.b = 9;
  auto resp = callSync(c, c.serverNodeId(0), rm);
  EXPECT_EQ(resp.status, net::Status::kOk);
  EXPECT_EQ(resp.a, 1u);
  auto r = callSync(c, c.serverNodeId(0), readReq(table, 9));
  EXPECT_EQ(r.a, 0u);  // gone
  EXPECT_EQ(c.server(0).master->objectMap().get(hash::Key{table, 9}),
            nullptr);
}

TEST(MasterService, UnreplicatedWriteSlowerThanRead) {
  // The paper's Finding 2: updates cost far more than reads even at RF=0.
  core::Cluster c(smallCluster(1, 0));
  const auto table = c.createTable("t");
  callSync(c, c.serverNodeId(0), writeReq(table, 1));
  const auto& st = c.server(0).master->stats();
  ASSERT_EQ(st.writes, 1u);
  EXPECT_GT(st.writeServiceLatency.mean(), 4 * st.readServiceLatency.mean() +
                                               static_cast<double>(usec(50)));
}

TEST(Replication, AckedWriteIsDurableOnRfBackups) {
  for (int rf : {1, 2, 3}) {
    core::Cluster c(smallCluster(5, rf));
    const auto table = c.createTable("t");
    const auto owner = c.ownerOfKey(table, 77);
    auto w = callSync(c, owner, writeReq(table, 77));
    ASSERT_EQ(w.status, net::Status::kOk);

    auto& master = *c.server(owner - 1).master;
    const auto* loc = master.objectMap().get(hash::Key{table, 77});
    ASSERT_NE(loc, nullptr);
    const auto* placement =
        master.replicaManager().placementOf(loc->ref.segment);
    ASSERT_NE(placement, nullptr);
    ASSERT_EQ(placement->size(), static_cast<std::size_t>(rf));
    for (node::NodeId b : *placement) {
      EXPECT_NE(b, owner);  // never self
      auto frames = c.directory().backupOn(b)->framesForMaster(owner);
      ASSERT_EQ(frames.size(), 1u);
      EXPECT_GE(frames[0].bytes, 1100u);  // the write is within watermark
    }
  }
}

TEST(Replication, DistinctBackupsPerSegment) {
  core::Cluster c(smallCluster(6, 3));
  const auto table = c.createTable("t");
  const auto owner = c.ownerOfKey(table, 1);
  callSync(c, owner, writeReq(table, 1));
  auto& master = *c.server(owner - 1).master;
  const auto* loc = master.objectMap().get(hash::Key{table, 1});
  const auto* placement = master.replicaManager().placementOf(loc->ref.segment);
  ASSERT_NE(placement, nullptr);
  std::set<node::NodeId> uniq(placement->begin(), placement->end());
  EXPECT_EQ(uniq.size(), placement->size());
}

TEST(Replication, WriteLatencyGrowsWithRf) {
  double lastLatency = 0;
  for (int rf : {0, 1, 2, 4}) {
    core::Cluster c(smallCluster(6, rf));
    const auto table = c.createTable("t");
    const auto owner = c.ownerOfKey(table, 3);
    callSync(c, owner, writeReq(table, 3));
    const double lat =
        c.server(owner - 1).master->stats().writeServiceLatency.mean();
    if (rf >= 2) EXPECT_GT(lat, lastLatency);
    lastLatency = lat;
  }
}

TEST(Replication, BackupCrashTriggersReplacement) {
  core::Cluster c(smallCluster(5, 2));
  const auto table = c.createTable("t");
  const auto owner = c.ownerOfKey(table, 42);
  callSync(c, owner, writeReq(table, 42));

  auto& master = *c.server(owner - 1).master;
  const auto* loc = master.objectMap().get(hash::Key{table, 42});
  const auto* placement = master.replicaManager().placementOf(loc->ref.segment);
  ASSERT_NE(placement, nullptr);
  const node::NodeId victim = placement->front();
  c.coord().stopFailureDetector();  // isolate: no recovery, just replication
  c.crashServer(victim - 1);

  // A second write to the same master (any key it owns) must still be
  // acknowledged: the manager replaces the dead backup.
  std::uint64_t key2 = 43;
  while (c.ownerOfKey(table, key2) != owner) ++key2;
  auto w = callSync(c, owner, writeReq(table, key2), seconds(5));
  EXPECT_EQ(w.status, net::Status::kOk);
  EXPECT_GE(master.replicaManager().replacementsMade(), 1u);
  const auto* now = master.replicaManager().placementOf(loc->ref.segment);
  ASSERT_NE(now, nullptr);
  for (node::NodeId b : *now) EXPECT_NE(b, victim);
}

TEST(Replication, ConsistencyAblationSkipsAckWait) {
  // SS IX-B: fire-and-forget replication must be much faster than synced.
  double synced = 0, relaxed = 0;
  for (bool wait : {true, false}) {
    core::ClusterParams p = smallCluster(5, 3);
    p.master.replication.waitForAcks = wait;
    core::Cluster c(p);
    const auto table = c.createTable("t");
    const auto owner = c.ownerOfKey(table, 5);
    callSync(c, owner, writeReq(table, 5));
    const double lat =
        c.server(owner - 1).master->stats().writeServiceLatency.mean();
    (wait ? synced : relaxed) = lat;
  }
  EXPECT_LT(relaxed * 2, synced);
}

TEST(BackupService, SealedSegmentFlushesToDisk) {
  core::ClusterParams p = smallCluster(3, 1);
  p.master.log.segmentBytes = 64 * 1024;  // seal quickly
  core::Cluster c(p);
  const auto table = c.createTable("t", 1);
  const auto owner = c.ownerOfKey(table, 0);
  // ~60 writes of 1.1 KB fill a 64 KB segment.
  for (int i = 0; i < 120; ++i) {
    callSync(c, owner, writeReq(table, static_cast<std::uint64_t>(i)));
  }
  c.sim().runFor(seconds(2));  // let flushes drain
  std::uint64_t flushed = 0;
  for (int i = 0; i < c.serverCount(); ++i) {
    for (const auto& f :
         c.server(i).backup->framesForMaster(owner)) {
      if (f.onDisk) ++flushed;
    }
  }
  EXPECT_GE(flushed, 1u);
}

TEST(BackupService, FreesFramesOnRequest) {
  core::Cluster c(smallCluster(3, 2));
  const auto table = c.createTable("t");
  const auto owner = c.ownerOfKey(table, 8);
  callSync(c, owner, writeReq(table, 8));
  auto& master = *c.server(owner - 1).master;
  const auto* loc = master.objectMap().get(hash::Key{table, 8});
  master.replicaManager().freeSegment(loc->ref.segment);
  c.sim().runFor(msec(100));
  for (int i = 0; i < c.serverCount(); ++i) {
    EXPECT_TRUE(c.server(i).backup->framesForMaster(owner).empty());
  }
}

TEST(MasterService, CleanerReclaimsUnderChurn) {
  core::ClusterParams p = smallCluster(1, 0);
  p.master.log.segmentBytes = 32 * 1024;
  p.master.log.capacityBytes = 256 * 1024;  // 8 segments
  p.master.log.cleanerThreshold = 0.5;
  core::Cluster c(p);
  const auto table = c.createTable("t");
  // Overwrite 20 keys repeatedly: appended >> live, cleaner must run.
  for (int round = 0; round < 20; ++round) {
    for (std::uint64_t k = 0; k < 20; ++k) {
      auto w = callSync(c, c.serverNodeId(0), writeReq(table, k));
      ASSERT_EQ(w.status, net::Status::kOk);
    }
  }
  c.sim().runFor(seconds(2));
  const auto& master = *c.server(0).master;
  EXPECT_GT(master.stats().cleanerRuns, 0u);
  EXPECT_LE(master.log().memoryInUse(), p.master.log.capacityBytes);
  // All 20 keys still readable with latest data.
  for (std::uint64_t k = 0; k < 20; ++k) {
    auto r = callSync(c, c.serverNodeId(0), readReq(table, k));
    EXPECT_EQ(r.a, 1u) << "key " << k;
  }
}

TEST(Backoff, GrowsExponentiallyWithJitterInsideTarget) {
  Backoff b{msec(1), msec(100)};
  for (int attempt = 0; attempt < 20; ++attempt) {
    sim::Duration target = msec(1) << std::min(attempt, 30);
    if (target > msec(100) || target <= 0) target = msec(100);
    const sim::Duration d = b.delay(attempt, /*salt=*/42);
    EXPECT_GE(d, target / 2) << "attempt " << attempt;
    EXPECT_LT(d, target) << "attempt " << attempt;
  }
  // Capped: far-out attempts never exceed the cap.
  EXPECT_LT(b.delay(1000, 7), msec(100));
}

TEST(Backoff, JitterIsDeterministicPerSaltAndSpreadsAcrossSalts) {
  Backoff b{msec(2), msec(200)};
  // Same (attempt, salt) -> bit-identical delay (replayable schedules).
  EXPECT_EQ(b.delay(3, 1234), b.delay(3, 1234));
  // Different salts decorrelate retry loops (no synchronized hammering).
  std::set<sim::Duration> seen;
  for (std::uint64_t salt = 0; salt < 16; ++salt) {
    seen.insert(b.delay(3, salt));
  }
  EXPECT_GT(seen.size(), 8u);
}

TEST(MasterService, CrashedMasterStopsResponding) {
  core::Cluster c(smallCluster(2, 0));
  const auto table = c.createTable("t");
  c.coord().stopFailureDetector();
  c.crashServer(0);
  auto r = callSync(c, c.serverNodeId(0), readReq(table, 1), msec(300));
  EXPECT_EQ(r.status, net::Status::kTimeout);
}

}  // namespace
}  // namespace rc::server
