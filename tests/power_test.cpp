// Dedicated tests for the power/energy substrate: efficiency metrics, PDU
// sampling windows, suspension accounting.

#include <gtest/gtest.h>

#include "node/node.hpp"
#include "power/pdu.hpp"
#include "power/power_model.hpp"

namespace rc::power {
namespace {

using sim::msec;
using sim::seconds;

TEST(Efficiency, OpsPerJoule) {
  EXPECT_DOUBLE_EQ(efficiency::opsPerJoule(372'000, 122.0), 372'000 / 122.0);
  EXPECT_DOUBLE_EQ(efficiency::opsPerJoule(100, 0), 0);
}

TEST(Efficiency, PaperFig8Definition) {
  // The paper's rf=1 / 40-server point: 237 Kop/s at 103 W/node = 2.3 Kop/J.
  EXPECT_NEAR(efficiency::opsPerJoulePerNode(237'000, 103.0), 2300, 10);
}

TEST(PduSampler, CoversWindowsBackToBack) {
  sim::Simulation sim;
  PowerModel model;
  // Utilisation callback: 0.5 in even seconds, 0 in odd ones.
  int call = 0;
  PduSampler pdu(sim, model, [&call](sim::SimTime, sim::SimTime) {
    return (call++ % 2 == 0) ? 0.5 : 0.0;
  });
  sim.runUntil(seconds(4) + msec(1));
  ASSERT_EQ(pdu.trace().size(), 4u);
  EXPECT_NEAR(pdu.trace().points()[0].value, model.watts(0.5), 1e-9);
  EXPECT_NEAR(pdu.trace().points()[1].value, model.watts(0.0), 1e-9);
  // Sampled energy = sum of sample * interval.
  EXPECT_NEAR(pdu.sampledEnergyJoules(0, seconds(4)),
              2 * model.watts(0.5) + 2 * model.watts(0.0), 1e-6);
}

TEST(PduSampler, StopFreezesTrace) {
  sim::Simulation sim;
  PduSampler pdu(sim, PowerModel{}, [](sim::SimTime, sim::SimTime) {
    return 0.3;
  });
  sim.runUntil(seconds(2) + msec(1));
  pdu.stop();
  sim.runUntil(seconds(10));
  EXPECT_EQ(pdu.trace().size(), 2u);
}

TEST(NodePower, SuspensionWindowMixesCorrectly) {
  sim::Simulation sim;
  node::NodeParams p;
  node::Node n(sim, 1, p);
  n.startProcess();
  const auto snap = n.snapshotPower();
  // 5 s running idle (polling core), then 5 s suspended.
  sim.runUntil(seconds(5));
  n.suspendMachine();
  sim.runUntil(seconds(10));
  const double j = n.energyJoulesSince(snap, sim.now());
  const double expect = p.power.watts(0.25) * 5 + p.suspendedWatts * 5;
  EXPECT_NEAR(j, expect, 1.0);
  EXPECT_NEAR(n.meanWattsSince(snap, sim.now()), expect / 10, 0.2);
}

TEST(NodePower, ResumeRestoresActiveAccounting) {
  sim::Simulation sim;
  node::NodeParams p;
  node::Node n(sim, 1, p);
  n.startProcess();
  n.suspendMachine();
  sim.runUntil(seconds(5));
  n.resumeMachine();
  EXPECT_TRUE(n.processRunning());
  const auto snap = n.snapshotPower();
  sim.runUntil(seconds(10));
  EXPECT_NEAR(n.meanWattsSince(snap, sim.now()), p.power.watts(0.25), 0.5);
}

TEST(NodePower, SuspendedDrawsSmallFractionOfIdle) {
  node::NodeParams p;
  EXPECT_LT(p.suspendedWatts * 5, p.power.idleWatts);
}

}  // namespace
}  // namespace rc::power
