// Dedicated tests for the power/energy substrate: efficiency metrics, PDU
// sampling windows, suspension accounting.

#include <gtest/gtest.h>

#include "node/node.hpp"
#include "power/pdu.hpp"
#include "power/power_model.hpp"

namespace rc::power {
namespace {

using sim::msec;
using sim::seconds;

TEST(Efficiency, OpsPerJoule) {
  EXPECT_DOUBLE_EQ(efficiency::opsPerJoule(372'000, 122.0), 372'000 / 122.0);
  EXPECT_DOUBLE_EQ(efficiency::opsPerJoule(100, 0), 0);
}

TEST(Efficiency, PaperFig8Definition) {
  // The paper's rf=1 / 40-server point: 237 Kop/s at 103 W/node = 2.3 Kop/J.
  EXPECT_NEAR(efficiency::opsPerJoulePerNode(237'000, 103.0), 2300, 10);
}

TEST(PduSampler, CoversWindowsBackToBack) {
  sim::Simulation sim;
  PowerModel model;
  // Energy callback: 0.5 utilisation in even windows, idle in odd ones.
  int call = 0;
  PduSampler pdu(sim, [&call, &model](sim::SimTime from, sim::SimTime to) {
    const double u = (call++ % 2 == 0) ? 0.5 : 0.0;
    return model.joules(u, sim::toSeconds(to - from));
  });
  sim.runUntil(seconds(4) + msec(1));
  ASSERT_EQ(pdu.trace().size(), 4u);
  EXPECT_NEAR(pdu.trace().points()[0].value, model.watts(0.5), 1e-9);
  EXPECT_NEAR(pdu.trace().points()[1].value, model.watts(0.0), 1e-9);
  // Sampled energy = sum of sample * covered window = continuous integral.
  const double expect = 2 * model.watts(0.5) + 2 * model.watts(0.0);
  EXPECT_NEAR(pdu.sampledEnergyJoules(0, seconds(4)), expect, 1e-6);
  EXPECT_NEAR(pdu.totalSampledJoules(), expect, 1e-9);
}

TEST(PduSampler, StopTakesFinalFractionalSample) {
  sim::Simulation sim;
  // Constant 100 W node.
  PduSampler pdu(sim, [](sim::SimTime from, sim::SimTime to) {
    return 100.0 * sim::toSeconds(to - from);
  });
  sim.runUntil(seconds(2) + msec(500));
  pdu.stop();
  EXPECT_TRUE(pdu.stopped());
  sim.runUntil(seconds(10));
  // Samples at 1 s, 2 s, plus the fractional 0.5 s window stop() took;
  // nothing accrues after stop.
  ASSERT_EQ(pdu.trace().size(), 3u);
  EXPECT_NEAR(pdu.trace().points()[2].value, 100.0, 1e-9);
  EXPECT_NEAR(pdu.totalSampledJoules(), 100.0 * 2.5, 1e-6);
  // Full-trace window query reproduces the integral despite the short
  // final window (the 0.1 % reconciliation gate relies on this).
  EXPECT_NEAR(pdu.sampledEnergyJoules(0, seconds(10)), 250.0, 1e-6);
}

TEST(PduSampler, StopIsIdempotent) {
  sim::Simulation sim;
  PduSampler pdu(sim, [](sim::SimTime from, sim::SimTime to) {
    return 50.0 * sim::toSeconds(to - from);
  });
  sim.runUntil(seconds(1) + msec(250));
  pdu.stop();
  const double j = pdu.totalSampledJoules();
  const std::size_t points = pdu.trace().size();
  pdu.stop();
  pdu.stop();
  EXPECT_DOUBLE_EQ(pdu.totalSampledJoules(), j);
  EXPECT_EQ(pdu.trace().size(), points);
  EXPECT_NEAR(j, 50.0 * 1.25, 1e-6);
}

TEST(PduSampler, MidWindowStopReconcilesWithContinuousIntegral) {
  sim::Simulation sim;
  node::NodeParams p;
  node::Node n(sim, 1, p);
  n.startProcess();
  n.startPduSampling();
  ASSERT_NE(n.pduBaseline(), nullptr);
  // Stop mid-window: the final sample covers the 0.7 s fraction.
  sim.runUntil(seconds(3) + msec(700));
  n.stopPduSampling();
  const double continuous =
      n.energyJoulesSince(*n.pduBaseline(), sim.now());
  EXPECT_NEAR(n.pdu()->totalSampledJoules(), continuous, 1e-6);
  EXPECT_NEAR(n.pdu()->sampledEnergyJoules(0, sim.now()), continuous, 1e-6);
}

TEST(NodePowerModel, StaticsSumToFittedIntercept) {
  NodePowerModel m;
  EXPECT_DOUBLE_EQ(m.staticWatts(), 60.5);
  double sum = 0;
  for (std::size_t c = 0; c < kComponentCount; ++c) {
    sum += m.staticComponentWatts(static_cast<Component>(c));
  }
  EXPECT_DOUBLE_EQ(sum, 60.5);
}

TEST(NodePowerModel, ComponentSumWithinCalibrationGate) {
  // The per-resource decomposition must stay within 2 % of the fitted
  // whole-node curve P(u) = 60.5 + 63.4u across the utilisation range.
  NodePowerModel m;
  PowerModel fitted;
  for (double u = 0; u <= 1.0; u += 0.05) {
    const double component = m.watts(u);
    const double reference = fitted.watts(u);
    EXPECT_NEAR(component, reference, 0.02 * reference) << "u=" << u;
  }
}

TEST(NodePowerModel, EventEnergiesAreSmallAgainstCpuTerm) {
  // Per-event dynamics at the paper's single-server peak (372 Kop/s of
  // ~130 B RPCs) must stay under ~1 W so calibration holds.
  NodePowerModel m;
  const double nicW = 372'000 * m.nicJoules(130);
  const double dramW = 372'000 * m.dramJoules(130);
  EXPECT_LT(nicW, 1.0);
  EXPECT_LT(dramW, 0.1);
}

TEST(NodePower, SuspensionWindowMixesCorrectly) {
  sim::Simulation sim;
  node::NodeParams p;
  node::Node n(sim, 1, p);
  n.startProcess();
  const auto snap = n.snapshotPower();
  // 5 s running idle (polling core), then 5 s suspended.
  sim.runUntil(seconds(5));
  n.suspendMachine();
  sim.runUntil(seconds(10));
  const double j = n.energyJoulesSince(snap, sim.now());
  const double expect = p.power.watts(0.25) * 5 + p.suspendedWatts * 5;
  EXPECT_NEAR(j, expect, 1.0);
  EXPECT_NEAR(n.meanWattsSince(snap, sim.now()), expect / 10, 0.2);
}

TEST(NodePower, ResumeRestoresActiveAccounting) {
  sim::Simulation sim;
  node::NodeParams p;
  node::Node n(sim, 1, p);
  n.startProcess();
  n.suspendMachine();
  sim.runUntil(seconds(5));
  n.resumeMachine();
  EXPECT_TRUE(n.processRunning());
  const auto snap = n.snapshotPower();
  sim.runUntil(seconds(10));
  EXPECT_NEAR(n.meanWattsSince(snap, sim.now()), p.power.watts(0.25), 0.5);
}

TEST(NodePower, SuspendedDrawsSmallFractionOfIdle) {
  node::NodeParams p;
  EXPECT_LT(p.suspendedWatts * 5, p.power.idleWatts);
}

}  // namespace
}  // namespace rc::power
