// Randomized stress / invariant tests: the whole stack under mixed load
// with failures injected, checking structural invariants afterwards.

#include <gtest/gtest.h>

#include "core/cluster.hpp"

namespace rc {
namespace {

using sim::msec;
using sim::seconds;

struct StressParam {
  std::uint64_t seed;
  int servers;
  int rf;
  bool crash;
};

class ClusterStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(ClusterStress, InvariantsHoldUnderRandomLoad) {
  const auto [seed, servers, rf, crash] = GetParam();
  core::ClusterParams p;
  p.servers = servers;
  p.clients = 4;
  p.seed = seed;
  p.replicationFactor = rf;
  p.master.log.segmentBytes = 256 * 1024;  // lots of seal/replicate churn
  core::Cluster c(p);
  const auto table = c.createTable("t");
  c.bulkLoad(table, 3'000, 1000);

  // Four clients do a random op soup: reads, writes, removes, multi-ops,
  // scans. The loop objects are owned by this scope and consulted through
  // weak handles so nothing dangles when the test tears down.
  sim::Rng rng(seed ^ 0x5717e55);
  bool running = true;
  std::uint64_t completed = 0;
  std::vector<std::shared_ptr<std::function<void()>>> loops;
  for (int ci = 0; ci < 4; ++ci) {
    client::RamCloudClient* rcp = c.clientHost(ci).rc.get();
    auto loop = std::make_shared<std::function<void()>>();
    loops.push_back(loop);
    std::weak_ptr<std::function<void()>> weak = loop;
    auto again = [&c, weak](sim::Duration d) {
      c.sim().schedule(d, [weak] {
        if (auto l = weak.lock()) (*l)();
      });
    };
    *loop = [&running, &rng, &completed, rcp, table, again] {
      if (!running) return;
      const std::uint64_t k = rng.uniformInt(3'000);
      const auto dice = rng.uniformInt(100);
      if (dice < 50) {
        rcp->read(table, k,
                  [&completed, again](net::Status, sim::Duration) {
                    ++completed;
                    again(sim::usec(100));
                  });
      } else if (dice < 80) {
        rcp->write(table, k,
                   static_cast<std::uint32_t>(500 + rng.uniformInt(1'000)),
                   [&completed, again](net::Status, sim::Duration) {
                     ++completed;
                     again(sim::usec(100));
                   });
      } else if (dice < 90) {
        rcp->remove(table, k,
                    [&completed, again](net::Status, sim::Duration) {
                      ++completed;
                      again(sim::usec(200));
                    });
      } else if (dice < 96) {
        std::vector<std::uint64_t> keys;
        for (int i = 0; i < 32; ++i) keys.push_back(rng.uniformInt(3'000));
        rcp->multiRead(table, std::move(keys),
                       [&completed, again](net::Status, std::uint64_t,
                                           std::uint64_t) {
                         ++completed;
                         again(sim::usec(300));
                       });
      } else {
        rcp->scanTable(table,
                       [&completed, again](net::Status, std::uint64_t,
                                           std::uint64_t) {
                         ++completed;
                         again(msec(5));
                       });
      }
    };
    (*loop)();
  }

  c.sim().runFor(seconds(2));
  if (crash && rf > 0) {
    c.crashServer(static_cast<int>(rng.uniformInt(
        static_cast<std::uint64_t>(servers))));
    for (int i = 0; i < 900 && c.coord().recoveryLog().empty(); ++i) {
      c.sim().runFor(msec(100));
    }
    ASSERT_FALSE(c.coord().recoveryLog().empty());
    EXPECT_TRUE(c.coord().recoveryLog().front().succeeded);
  }
  c.sim().runFor(seconds(2));
  running = false;
  c.sim().runFor(seconds(3));  // drain every in-flight op

  EXPECT_GT(completed, 10'000u);

  // ---- structural invariants after the dust settles
  for (int i = 0; i < c.serverCount(); ++i) {
    if (!c.serverAlive(i)) continue;
    auto& master = *c.server(i).master;
    // No leaked workers, no stuck lock, no half-done recoveries.
    EXPECT_EQ(c.server(i).node->cpu().busyWorkers(), 0) << "server " << i;
    EXPECT_EQ(c.server(i).node->cpu().queuedRequests(), 0u);
    EXPECT_EQ(master.logLockWaiters(), 0u);
    EXPECT_EQ(master.activeRecoveries(), 0u);
    EXPECT_EQ(master.activeMigrations(), 0u);
    // Log accounting consistent: live <= appended, hash entries resolve.
    EXPECT_LE(master.log().liveBytes(), master.log().appendedBytes());
    master.objectMap().forEach([&](const hash::Key& k,
                                   const hash::ObjectLocation& loc) {
      const auto seg = master.findSegment(loc.ref.segment);
      ASSERT_NE(seg, nullptr) << "dangling ref for key " << k.keyId;
      const auto& e = seg->entry(loc.ref.index);
      EXPECT_EQ(e.keyId, k.keyId);
      EXPECT_EQ(e.version, loc.version);
      EXPECT_TRUE(e.live);
    });
  }
  // Coordinator: tablet map covers the full hash space exactly once.
  for (std::uint64_t h :
       {0ULL, 1ULL << 20, 1ULL << 40, ~0ULL - 5, ~0ULL}) {
    const auto* e = c.coord().tabletMap().lookup(table, h);
    ASSERT_NE(e, nullptr) << std::hex << h;
    EXPECT_NE(e->tablet.owner, node::kInvalidNode);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClusterStress,
    ::testing::Values(StressParam{101, 3, 0, false},
                      StressParam{202, 4, 2, false},
                      StressParam{303, 5, 2, true},
                      StressParam{404, 5, 3, true},
                      StressParam{505, 3, 1, true}));

}  // namespace
}  // namespace rc
