// Minitransaction edge cases (docs/TRANSACTIONS.md): unit tests for the
// TxLockTable — lock lifecycle, orphan dedup, vote fencing, and the shared
// ownership of prepare/decision records between the lock table and the
// RIFL watermark GC — plus cluster-level tests for the three hard
// interleavings: a lease expiring while a transaction holds locks, a
// duplicated decision retry after a reply drop, and the ack watermark
// advancing over a prepare record that a still-undecided lock needs.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/cluster.hpp"
#include "fault/fault_injector.hpp"
#include "server/master_service.hpp"
#include "server/tx_lock_table.hpp"

namespace rc {
namespace {

using server::TxLockTable;
using sim::msec;
using sim::seconds;

TxLockTable::Lock lock(std::uint64_t txId, std::uint64_t clientId,
                       std::uint64_t tableId, std::uint64_t keyId,
                       log::SegmentId segment = 1,
                       bool ownedByUnacked = false) {
  TxLockTable::Lock l;
  l.txId = txId;
  l.clientId = clientId;
  l.tableId = tableId;
  l.keyId = keyId;
  l.pendingValueBytes = 64;
  l.expectedVersion = 1;
  l.prepareRecord = log::LogRef{segment, 0};
  l.recordOwnedByUnacked = ownedByUnacked;
  return l;
}

// ----- TxLockTable unit tests

TEST(TxLockTable, AcquireConflictAndRelease) {
  TxLockTable t;
  ASSERT_TRUE(t.acquire(lock(10, 1, 1, 5)));
  EXPECT_NE(t.get(1, 5), nullptr);
  EXPECT_TRUE(t.holdsTx(10));

  // A different transaction cannot steal the lock; the same transaction
  // may refresh it (a retried prepare re-installing its own lock).
  EXPECT_FALSE(t.acquire(lock(11, 2, 1, 5)));
  EXPECT_TRUE(t.acquire(lock(10, 1, 1, 5, /*segment=*/2)));
  EXPECT_EQ(t.get(1, 5)->prepareRecord.segment, 2u);

  // Release hands the lock back so the caller can kill the prepare record;
  // a wrong-tx release must not drop someone else's lock.
  TxLockTable::Lock out;
  EXPECT_FALSE(t.release(1, 5, 11, &out));
  ASSERT_TRUE(t.release(1, 5, 10, &out));
  EXPECT_EQ(out.prepareRecord.segment, 2u);
  EXPECT_EQ(t.get(1, 5), nullptr);
  EXPECT_EQ(t.locksHeld(), 0u);
}

TEST(TxLockTable, OrphanedLocksDedupeByTxAndSkipValidLeases) {
  TxLockTable t;
  // tx 10 (client 1) holds two locks; tx 20 (client 2) holds one.
  ASSERT_TRUE(t.acquire(lock(10, 1, 1, 5)));
  ASSERT_TRUE(t.acquire(lock(10, 1, 1, 6)));
  ASSERT_TRUE(t.acquire(lock(20, 2, 1, 7)));

  // Both leases valid: nothing is orphaned.
  EXPECT_TRUE(t.orphanedLocks([](std::uint64_t) { return true; }).empty());

  // Client 1 expired: exactly one representative for tx 10, none for the
  // still-leased tx 20.
  const auto orphans =
      t.orphanedLocks([](std::uint64_t cid) { return cid == 2; });
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0].txId, 10u);
  EXPECT_EQ(orphans[0].clientId, 1u);
}

TEST(TxLockTable, VoteStatusLifecycleAndAbortFence) {
  TxLockTable t;
  EXPECT_EQ(t.voteStatus(10), 0);  // never seen

  ASSERT_TRUE(t.acquire(lock(10, 1, 1, 5)));
  EXPECT_EQ(t.voteStatus(10), 1);  // prepared here

  TxLockTable::Lock out;
  ASSERT_TRUE(t.release(1, 5, 10, &out));
  t.noteResolved(10, /*commit=*/true, 1, 1, 5, log::LogRef{3, 0},
                 /*recordOwnedByUnacked=*/false, /*now=*/100);
  EXPECT_EQ(t.voteStatus(10), 2);  // committed
  EXPECT_FALSE(t.isFencedAborted(10));

  // A later no-vote fence must NOT overwrite the recorded commit — a
  // kTxVote racing a slow resolution would otherwise flip the outcome.
  t.fenceAbort(10, /*now=*/200);
  EXPECT_EQ(t.voteStatus(10), 2);

  // A fresh unknown tx fences to aborted, and stays fenced.
  t.fenceAbort(30, /*now=*/200);
  EXPECT_EQ(t.voteStatus(30), 3);
  EXPECT_TRUE(t.isFencedAborted(30));
}

TEST(TxLockTable, AdoptRecordTransfersOwnershipFromWatermarkGc) {
  TxLockTable t;
  // The prepare record doubles as the prepare RPC's completion record, so
  // UnackedRpcResults owns it first.
  ASSERT_TRUE(t.acquire(lock(10, 1, 1, 5, /*segment=*/4,
                             /*ownedByUnacked=*/true)));

  // Ack watermark advanced past the prepare's seq while the decision is
  // still pending: the lock must take over the record instead of letting
  // the watermark GC kill it under a held lock.
  EXPECT_TRUE(t.adoptRecord(log::LogRef{4, 0}));
  EXPECT_FALSE(t.get(1, 5)->recordOwnedByUnacked);

  // Unknown refs (or records nobody holds a lock on) are not adopted —
  // the caller frees those normally.
  EXPECT_FALSE(t.adoptRecord(log::LogRef{9, 0}));
  // Re-adopting the same ref is a no-op: ownership already transferred.
  EXPECT_FALSE(t.adoptRecord(log::LogRef{4, 0}));
}

TEST(TxLockTable, GcResolvedHonorsLeaseAgeAndRecordOwnership) {
  TxLockTable t;
  // Two resolved transactions: tx 10's decision record is owned by the
  // lock table (resolution-driven decision, untracked), tx 20's by
  // UnackedRpcResults (client-driven decision with a completion record).
  t.noteResolved(10, true, 1, 1, 5, log::LogRef{6, 0},
                 /*recordOwnedByUnacked=*/false, /*now=*/100);
  t.noteResolved(20, true, 2, 1, 7, log::LogRef{7, 0},
                 /*recordOwnedByUnacked=*/true, /*now=*/100);

  std::vector<log::LogRef> freed;
  // Leases still valid: nothing is reclaimed.
  t.gcResolved([](std::uint64_t) { return true; }, /*now=*/10'000,
               /*minAge=*/100, &freed);
  EXPECT_TRUE(freed.empty());
  EXPECT_EQ(t.voteStatus(10), 2);

  // Lease gone but the entry is too young: still fencing late prepares.
  t.gcResolved([](std::uint64_t) { return false; }, /*now=*/150,
               /*minAge=*/100, &freed);
  EXPECT_TRUE(freed.empty());
  EXPECT_EQ(t.voteStatus(10), 2);

  // Lease gone and aged out: both entries drop, but only the record the
  // lock table owns is handed back to be marked dead — the watermark GC
  // owns (and already freed or will free) the other.
  t.gcResolved([](std::uint64_t) { return false; }, /*now=*/10'000,
               /*minAge=*/100, &freed);
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0].segment, 6u);
  EXPECT_EQ(t.voteStatus(10), 0);
  EXPECT_EQ(t.voteStatus(20), 0);
}

TEST(TxLockTable, GcResolvedKeepsEntriesWhileLocksRemain) {
  TxLockTable t;
  // Partially decided: one lock of tx 10 released and recorded, another
  // still held (its decision hasn't arrived yet).
  ASSERT_TRUE(t.acquire(lock(10, 1, 1, 6)));
  t.noteResolved(10, true, 1, 1, 5, log::LogRef{6, 0}, false, /*now=*/100);

  std::vector<log::LogRef> freed;
  t.gcResolved([](std::uint64_t) { return false; }, /*now=*/10'000,
               /*minAge=*/100, &freed);
  // The resolved entry must survive: dropping it would un-fence the tx
  // while an object is still locked by it.
  EXPECT_TRUE(freed.empty());
  EXPECT_EQ(t.voteStatus(10), 1);
}

// ----- cluster-level interleavings

core::ClusterParams params(int servers, int clients, int rf) {
  core::ClusterParams p;
  p.servers = servers;
  p.clients = clients;
  p.replicationFactor = rf;
  p.coordinator.leaseTerm = seconds(2);
  return p;
}

int ownerIndexOf(core::Cluster& c, std::uint64_t table,
                 std::uint64_t keyId) {
  return static_cast<int>(c.ownerOfKey(table, keyId)) - 1;
}

/// Seed a key with a tracked write and return the assigned version.
std::uint64_t seedKey(core::Cluster& c, std::uint64_t table,
                      std::uint64_t key) {
  std::uint64_t version = 0;
  bool done = false;
  c.clientHost(0).rc->writeV(
      table, key, 64, 0,
      [&](net::Status s, std::uint64_t v, sim::Duration) {
        ASSERT_EQ(s, net::Status::kOk);
        version = v;
        done = true;
      });
  while (!done) c.sim().runFor(msec(10));
  return version;
}

std::uint64_t sumLocksHeld(core::Cluster& c) {
  std::uint64_t n = 0;
  for (int i = 0; i < c.serverCount(); ++i) {
    if (c.serverAlive(i)) {
      n += c.server(i).master->txLockTable().locksHeld();
    }
  }
  return n;
}

// The client's lease runs out while its transaction holds locks on two
// masters (the decision round is trapped behind a stall). The lease sweep
// must hand the orphan to the coordinator, resolution must commit it
// (both participants voted yes), and the resumed client must agree.
TEST(TxCluster, LeaseExpiryWhileHoldingLocksResolvesOrphan) {
  core::Cluster c(params(2, 1, 0));
  const auto table = c.createTable("t", 2);
  auto& rc = *c.clientHost(0).rc;

  // Two keys on different masters, both seeded.
  const std::uint64_t keyA = 1;
  std::uint64_t keyB = 2;
  while (ownerIndexOf(c, table, keyB) == ownerIndexOf(c, table, keyA)) {
    ++keyB;
  }
  const std::uint64_t seedA = seedKey(c, table, keyA);
  const std::uint64_t seedB = seedKey(c, table, keyB);

  net::Status status = net::Status::kError;
  bool done = false;
  const std::uint64_t tx = rc.txBegin();
  rc.txWrite(tx, table, keyA, 64);
  rc.txWrite(tx, table, keyB, 64);
  rc.txCommit(tx, [&](net::Status s, sim::Duration) {
    status = s;
    done = true;
  });
  rc.stallFor(seconds(6));  // prepares are out; decisions are not

  c.sim().runFor(seconds(1));
  EXPECT_EQ(sumLocksHeld(c), 2u);  // both locks parked behind the stall

  const sim::SimTime deadline = c.sim().now() + seconds(30);
  while (c.sim().now() < deadline &&
         (!done || c.coord().txResolutionInProgress() ||
          sumLocksHeld(c) != 0)) {
    c.sim().runFor(msec(100));
  }

  EXPECT_TRUE(done);
  EXPECT_EQ(status, net::Status::kOk);  // resolution committed; client agrees
  EXPECT_EQ(sumLocksHeld(c), 0u);
  EXPECT_GE(c.coord().leasesExpired(), 1u);
  EXPECT_GE(c.coord().txResolutionsStarted(), 1u);
  EXPECT_GE(c.coord().txResolutionsCommitted(), 1u);
  std::uint64_t orphans = 0;
  for (int i = 0; i < c.serverCount(); ++i) {
    orphans += c.server(i).master->txLockTable().orphansResolved();
  }
  EXPECT_EQ(orphans, 2u);  // one resolution-applied decision per lock

  // The resolved commit applied on both sides: versions advanced.
  std::uint64_t vA = 0;
  std::uint64_t vB = 0;
  int got = 0;
  rc.readV(table, keyA, [&](net::Status s, std::uint64_t v, sim::Duration) {
    if (s == net::Status::kOk) vA = v;
    ++got;
  });
  rc.readV(table, keyB, [&](net::Status s, std::uint64_t v, sim::Duration) {
    if (s == net::Status::kOk) vB = v;
    ++got;
  });
  c.sim().runFor(seconds(2));
  EXPECT_EQ(got, 2);
  EXPECT_GT(vA, seedA);
  EXPECT_GT(vB, seedB);
}

// Every reply from one participant vanishes for a window covering the
// whole commit: the client must retry both the prepare and the decision,
// and the master must answer the retries from RIFL completion state — one
// vote, one decision applied, no double commit.
TEST(TxCluster, DuplicateCommitRetriesAfterReplyDropApplyOnce) {
  core::Cluster c(params(2, 1, 0));
  const auto table = c.createTable("t", 2);
  auto& rc = *c.clientHost(0).rc;

  const std::uint64_t keyA = 1;
  std::uint64_t keyB = 2;
  while (ownerIndexOf(c, table, keyB) == ownerIndexOf(c, table, keyA)) {
    ++keyB;
  }
  seedKey(c, table, keyA);
  seedKey(c, table, keyB);
  const int owner = ownerIndexOf(c, table, keyB);

  fault::FaultPlan plan;
  plan.replyDrop(msec(400), owner, /*probability=*/1.0, msec(1500));
  fault::FaultInjector injector(c, plan, c.sim().rng().fork(0x7A7A));
  injector.arm();
  c.sim().runFor(msec(500));  // into the drop window

  net::Status status = net::Status::kError;
  bool done = false;
  const std::uint64_t tx = rc.txBegin();
  rc.txWrite(tx, table, keyA, 64);
  rc.txWrite(tx, table, keyB, 64);
  rc.txCommit(tx, [&](net::Status s, sim::Duration) {
    status = s;
    done = true;
  });
  const sim::SimTime deadline = c.sim().now() + seconds(30);
  while (c.sim().now() < deadline && !done) c.sim().runFor(msec(100));

  ASSERT_TRUE(done);
  EXPECT_EQ(status, net::Status::kOk);
  EXPECT_GE(rc.retriesForOpcode(net::Opcode::kTxPrepare) +
                rc.retriesForOpcode(net::Opcode::kTxDecision),
            1u);

  // Applied exactly once on the dropped-reply participant, despite the
  // duplicate prepare/decision attempts.
  const auto& locks = c.server(owner).master->txLockTable();
  EXPECT_EQ(locks.prepares(), 1u);
  EXPECT_EQ(locks.commits(), 1u);
  EXPECT_EQ(locks.aborts(), 0u);
  EXPECT_EQ(locks.locksHeld(), 0u);
  EXPECT_GE(
      c.server(owner).master->unackedRpcResults().duplicatesSuppressed(), 1u);
}

// The ack watermark races the decision: later tracked RPCs advance
// firstUnacked past the prepare's seq, which GCs the prepare's completion
// record while the lock still references it. The lock table must adopt
// the record (keep it live) until the decision applies — committing more
// transactions on the same keys afterwards must neither wedge nor lose
// state, including across the resolved-entry GC after lease expiry.
TEST(TxCluster, WatermarkAdvanceOverPrepareRecordKeepsLockUsable) {
  core::Cluster c(params(2, 1, 0));
  const auto table = c.createTable("t", 2);
  auto& rc = *c.clientHost(0).rc;

  const std::uint64_t keyA = 1;
  std::uint64_t keyB = 2;
  while (ownerIndexOf(c, table, keyB) == ownerIndexOf(c, table, keyA)) {
    ++keyB;
  }
  seedKey(c, table, keyA);
  seedKey(c, table, keyB);

  // A chain of transactions over the same pair: each commit's decision RPC
  // carries a firstUnacked past its own prepare's seq, and each subsequent
  // transaction's prepares push the watermark over the previous
  // transaction's decision seqs.
  std::uint64_t lastVersionB = 0;
  for (int i = 0; i < 5; ++i) {
    net::Status status = net::Status::kError;
    bool done = false;
    const std::uint64_t tx = rc.txBegin();
    rc.txWrite(tx, table, keyA, 64);
    rc.txWrite(tx, table, keyB, 64);
    rc.txCommit(tx, [&](net::Status s, sim::Duration) {
      status = s;
      done = true;
    });
    const sim::SimTime deadline = c.sim().now() + seconds(10);
    while (c.sim().now() < deadline && !done) c.sim().runFor(msec(50));
    ASSERT_TRUE(done);
    ASSERT_EQ(status, net::Status::kOk);
    ASSERT_EQ(sumLocksHeld(c), 0u);

    std::uint64_t vB = 0;
    bool read = false;
    rc.readV(table, keyB,
             [&](net::Status s, std::uint64_t v, sim::Duration) {
               ASSERT_EQ(s, net::Status::kOk);
               vB = v;
               read = true;
             });
    while (!read) c.sim().runFor(msec(10));
    EXPECT_GT(vB, lastVersionB);  // exactly-once forward progress
    lastVersionB = vB;
  }

  // Let the lease lapse so the resolved-entry GC sweep reclaims the
  // decided-tx state, then commit one more transaction under a fresh
  // lease: nothing may have been wedged or lost by the reclamation.
  rc.stallFor(seconds(6));
  c.sim().runFor(seconds(10));
  EXPECT_GE(c.coord().leasesExpired(), 1u);

  net::Status status = net::Status::kError;
  bool done = false;
  const std::uint64_t tx = rc.txBegin();
  rc.txWrite(tx, table, keyA, 64);
  rc.txWrite(tx, table, keyB, 64);
  rc.txCommit(tx, [&](net::Status s, sim::Duration) {
    status = s;
    done = true;
  });
  const sim::SimTime deadline = c.sim().now() + seconds(10);
  while (c.sim().now() < deadline && !done) c.sim().runFor(msec(50));
  EXPECT_TRUE(done);
  EXPECT_EQ(status, net::Status::kOk);
  EXPECT_EQ(sumLocksHeld(c), 0u);

  std::uint64_t vB = 0;
  bool read = false;
  rc.readV(table, keyB, [&](net::Status s, std::uint64_t v, sim::Duration) {
    ASSERT_EQ(s, net::Status::kOk);
    vB = v;
    read = true;
  });
  while (!read) c.sim().runFor(msec(10));
  EXPECT_GT(vB, lastVersionB);
}

}  // namespace
}  // namespace rc
