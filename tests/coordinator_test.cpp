// Tests for the coordinator: tablet map, table creation, failure detection
// and recovery orchestration.

#include <gtest/gtest.h>

#include "coordinator/coordinator.hpp"
#include "coordinator/tablet_map.hpp"
#include "core/cluster.hpp"

namespace rc::coordinator {
namespace {

using sim::msec;
using sim::seconds;

TEST(TabletMap, LookupFindsOwningTablet) {
  TabletMap m;
  server::Tablet t;
  t.tableId = 1;
  t.startHash = 100;
  t.endHash = 200;
  t.owner = 3;
  m.addTablet(t);
  EXPECT_EQ(m.lookup(1, 150)->tablet.owner, 3);
  EXPECT_EQ(m.lookup(1, 50), nullptr);
  EXPECT_EQ(m.lookup(2, 150), nullptr);
}

TEST(TabletMap, MarkRecoveringBumpsVersion) {
  TabletMap m;
  server::Tablet t;
  t.tableId = 1;
  t.owner = 3;
  m.addTablet(t);
  const auto v = m.version();
  m.markRecovering(3);
  EXPECT_GT(m.version(), v);
  EXPECT_EQ(m.lookup(1, 0)->state, TabletMap::TabletState::kRecovering);
  EXPECT_TRUE(m.anyRecovering());
}

TEST(TabletMap, ReassignSplitsRange) {
  TabletMap m;
  server::Tablet t;
  t.tableId = 1;
  t.startHash = 0;
  t.endHash = 999;
  t.owner = 3;
  m.addTablet(t);
  m.markRecovering(3);
  m.reassign(1, 200, 499, 3, 7);
  EXPECT_EQ(m.lookup(1, 100)->tablet.owner, 3);
  EXPECT_EQ(m.lookup(1, 300)->tablet.owner, 7);
  EXPECT_EQ(m.lookup(1, 300)->state, TabletMap::TabletState::kUp);
  EXPECT_EQ(m.lookup(1, 600)->tablet.owner, 3);
  // Boundaries exact.
  EXPECT_EQ(m.lookup(1, 199)->tablet.owner, 3);
  EXPECT_EQ(m.lookup(1, 200)->tablet.owner, 7);
  EXPECT_EQ(m.lookup(1, 499)->tablet.owner, 7);
  EXPECT_EQ(m.lookup(1, 500)->tablet.owner, 3);
}

TEST(TabletMap, FullHashSpaceAlwaysCovered) {
  core::Cluster c([] {
    core::ClusterParams p;
    p.servers = 7;
    p.clients = 0;
    return p;
  }());
  const auto table = c.createTable("t");
  const auto& m = c.coord().tabletMap();
  // Probe boundaries of the 7-way split plus random points.
  for (std::uint64_t h :
       {0ULL, 1ULL, ~0ULL, ~0ULL - 1, 0x2492492492492492ULL,
        0x9999999999999999ULL, 0xfedcba9876543210ULL}) {
    EXPECT_NE(m.lookup(table, h), nullptr) << std::hex << h;
  }
}

TEST(Coordinator, CreateTableSpansServers) {
  core::Cluster c([] {
    core::ClusterParams p;
    p.servers = 4;
    p.clients = 0;
    return p;
  }());
  const auto table = c.createTable("t");  // ServerSpan = 4
  std::set<server::ServerId> owners;
  for (const auto& e : c.coord().tabletMap().entries()) {
    if (e.tablet.tableId == table) owners.insert(e.tablet.owner);
  }
  EXPECT_EQ(owners.size(), 4u);
  // Masters were told about their tablets.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(c.server(i).master->tablets().size(), 1u);
  }
}

TEST(Coordinator, CreateTableIsIdempotentByName) {
  core::Cluster c([] {
    core::ClusterParams p;
    p.servers = 2;
    p.clients = 0;
    return p;
  }());
  EXPECT_EQ(c.createTable("same"), c.createTable("same"));
}

TEST(Coordinator, DetectorNoticesCrashWithinASecond) {
  core::Cluster c([] {
    core::ClusterParams p;
    p.servers = 3;
    p.clients = 0;
    return p;
  }());
  c.createTable("t");
  c.bulkLoad(1, 1000, 1000);
  bool detected = false;
  sim::SimTime at = 0;
  c.coord().onCrashDetected = [&](server::ServerId) {
    detected = true;
    at = c.sim().now();
  };
  c.sim().runFor(seconds(2));
  const sim::SimTime killTime = c.sim().now();
  c.crashServer(1);
  c.sim().runFor(seconds(2));
  ASSERT_TRUE(detected);
  EXPECT_LT(at - killTime, seconds(1));
  EXPECT_EQ(c.coord().upServers().size(), 2u);
}

TEST(Coordinator, NoFalsePositivesWhenHealthy) {
  core::Cluster c([] {
    core::ClusterParams p;
    p.servers = 3;
    p.clients = 0;
    return p;
  }());
  bool detected = false;
  c.coord().onCrashDetected = [&](server::ServerId) { detected = true; };
  c.sim().runFor(seconds(30));
  EXPECT_FALSE(detected);
}

TEST(Coordinator, RecoveryRestoresTabletOwnership) {
  core::Cluster c([] {
    core::ClusterParams p;
    p.servers = 4;
    p.clients = 0;
    p.replicationFactor = 2;
    return p;
  }());
  const auto table = c.createTable("t");
  c.bulkLoad(table, 20'000, 1000);

  c.sim().runFor(seconds(1));
  c.crashServer(2);
  const auto dead = c.serverNodeId(2);

  // Wait for recovery to finish.
  for (int i = 0; i < 600 && c.coord().recoveryLog().empty(); ++i) {
    c.sim().runFor(msec(100));
  }
  ASSERT_FALSE(c.coord().recoveryLog().empty());
  const auto& rec = c.coord().recoveryLog().front();
  EXPECT_TRUE(rec.succeeded);
  EXPECT_EQ(rec.crashed, dead);
  EXPECT_EQ(rec.partitions, 3);

  // No tablet owned by the dead server, nothing left recovering.
  EXPECT_TRUE(c.coord().tabletMap().tabletsOwnedBy(dead).empty());
  EXPECT_FALSE(c.coord().tabletMap().anyRecovering());
  // All data readable from the new owners.
  EXPECT_TRUE(c.verifyAllKeysPresent(table, 20'000));
}

TEST(Coordinator, RecoveryWithoutReplicationFailsSafely) {
  core::Cluster c([] {
    core::ClusterParams p;
    p.servers = 3;
    p.clients = 0;
    p.replicationFactor = 0;  // no replicas anywhere
    return p;
  }());
  const auto table = c.createTable("t");
  c.bulkLoad(table, 5'000, 1000);
  c.sim().runFor(seconds(1));
  c.crashServer(0);
  for (int i = 0; i < 300 && c.coord().recoveryLog().empty(); ++i) {
    c.sim().runFor(msec(100));
  }
  ASSERT_FALSE(c.coord().recoveryLog().empty());
  EXPECT_FALSE(c.coord().recoveryLog().front().succeeded);  // data loss
}

TEST(Coordinator, SecondCrashDuringRecoveryIsHandled) {
  core::Cluster c([] {
    core::ClusterParams p;
    p.servers = 5;
    p.clients = 0;
    p.replicationFactor = 3;
    return p;
  }());
  const auto table = c.createTable("t");
  c.bulkLoad(table, 30'000, 1000);
  c.sim().runFor(seconds(1));
  c.crashServer(0);
  // Kill a second server (a recovery master) shortly after.
  c.sim().runFor(msec(600));
  c.crashServer(1);

  for (int i = 0;
       i < 1200 && c.coord().recoveryLog().size() < 2 && i < 1200; ++i) {
    c.sim().runFor(msec(100));
  }
  // Both recoveries eventually finish and all data survives (rf=3 tolerates
  // two failures).
  ASSERT_GE(c.coord().recoveryLog().size(), 2u);
  for (const auto& rec : c.coord().recoveryLog()) {
    EXPECT_TRUE(rec.succeeded);
  }
  EXPECT_TRUE(c.verifyAllKeysPresent(table, 30'000));
}

TEST(Coordinator, RecoveryMasterDeathReassignsItsPartitions) {
  // Kill a recovery master 80 ms after the coordinator admits the first
  // recovery — while its partition replay is in flight (the plan's setup
  // delay is ~50 ms and partitions run well past 100 ms at this data
  // volume). The partition must
  // be reassigned (retryPartition), the recovery must still succeed, and
  // the journal must show each partition completed exactly once by a
  // surviving master (the dead master's attempt closes as abandoned).
  core::Cluster c([] {
    core::ClusterParams p;
    p.servers = 5;
    p.clients = 0;
    p.replicationFactor = 3;
    return p;
  }());
  const auto table = c.createTable("t");
  c.bulkLoad(table, 60'000, 1000);

  std::uint64_t firstRecoveryId = 0;
  c.coord().onRecoveryStarted = [&](std::uint64_t recoveryId,
                                    server::ServerId) {
    if (firstRecoveryId != 0) return;
    firstRecoveryId = recoveryId;
    c.sim().schedule(msec(80), [&c] { c.crashServer(1); });
  };

  c.sim().runFor(seconds(1));
  c.crashServer(0);

  // Both recoveries (the original crash, then the recovery master's own)
  // must complete.
  for (int i = 0; i < 1800 && (c.coord().recoveryLog().size() < 2 ||
                               c.coord().recoveryInProgress());
       ++i) {
    c.sim().runFor(msec(100));
  }
  ASSERT_EQ(firstRecoveryId, 1u);
  ASSERT_GE(c.coord().recoveryLog().size(), 2u);
  for (const auto& rec : c.coord().recoveryLog()) {
    EXPECT_TRUE(rec.succeeded);
  }
  EXPECT_TRUE(c.verifyAllKeysPresent(table, 60'000));

  // The log is completion-ordered and the delayed recovery finishes last —
  // find the original crash's record by victim.
  const RecoveryRecord* rec0 = nullptr;
  for (const auto& rec : c.coord().recoveryLog()) {
    if (rec.crashed == c.serverNodeId(0)) rec0 = &rec;
  }
  ASSERT_NE(rec0, nullptr);
  EXPECT_GE(rec0->partitionRetries, 1);

  // Span accounting for recovery 1: exactly one completed
  // partition_recovery span per partition, all owned by masters that are
  // still alive; the dead recovery master's attempt was abandoned.
  int completed = 0;
  int abandoned = 0;
  for (const auto* s : c.journal().spansNamed("partition_recovery")) {
    if (s->ctx != firstRecoveryId) continue;
    EXPECT_FALSE(s->open);
    if (s->abandoned) {
      ++abandoned;
      continue;
    }
    ++completed;
    bool ownerAlive = false;
    for (int i = 0; i < c.serverCount(); ++i) {
      ownerAlive |= c.serverAlive(i) && c.serverNodeId(i) == s->node;
    }
    EXPECT_TRUE(ownerAlive) << "completed partition span on dead node "
                            << s->node;
  }
  EXPECT_EQ(completed, rec0->partitions);
  EXPECT_GE(abandoned, 1);
}

}  // namespace
}  // namespace rc::coordinator
