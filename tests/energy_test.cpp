// End-to-end tests for per-resource energy attribution (docs/ENERGY.md):
// ledger cells populated across components/classes/tenants, export-time
// reconciliation against the sampled PDU total, and byte-identical
// energy.jsonl across repeated seeded runs.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/cluster.hpp"
#include "power/energy_ledger.hpp"
#include "ycsb/workload.hpp"
#include "ycsb/ycsb_client.hpp"

namespace rc {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

/// First numeric value following `"key": ` in a JSONL line; NaN-free
/// because every writer emits plain %f/%d fields.
double field(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\":";
  const auto at = line.find(pat);
  if (at == std::string::npos) return -1;
  return std::strtod(line.c_str() + at + pat.size(), nullptr);
}

double classJoules(const power::EnergyMeter& m, power::OpClass cls,
                   bool tenantedOnly = false) {
  double j = 0;
  m.forEachCell([&](power::Component, power::OpClass o, std::uint16_t slot,
                    double v) {
    if (o == cls && (!tenantedOnly || slot > 0)) j += v;
  });
  return j;
}

/// Canonical small run: 4 servers rf=2, tenant-tagged YCSB-A (so reads,
/// updates and replication all charge), PDUs live, full export.
std::unique_ptr<core::Cluster> runWorkload(std::uint64_t seed,
                                           bool metering = true) {
  core::ClusterParams p;
  p.servers = 4;
  p.clients = 2;
  p.replicationFactor = 2;
  p.seed = seed;
  auto c = std::make_unique<core::Cluster>(p);
  if (!metering) c->setEnergyMetering(false);
  c->sloTracker().declareClass("acme/read", obs::SloTarget{sim::msec(5), 0});
  c->sloTracker().declareClass("acme/update", obs::SloTarget{sim::msec(5), 0});
  const auto table = c->createTable("usertable");
  c->bulkLoad(table, 5'000, 128);
  c->startPduSampling();
  ycsb::YcsbClientParams ycp;
  ycp.tenant = "acme";
  c->configureYcsb(table, ycsb::WorkloadSpec::A(5'000), ycp);
  c->startYcsb();
  c->sim().runFor(sim::seconds(2));
  c->stopYcsb();
  return c;
}

TEST(EnergyE2E, LedgerAttributesAcrossComponentsClassesAndTenants) {
  auto c = runWorkload(42);
  // Every server's dynamic meters must have accrued CPU, NIC and DRAM
  // charges (each serves reads, replicas, or both).
  for (int i = 0; i < c->serverCount(); ++i) {
    const auto& m = c->server(i).node->energyMeter();
    EXPECT_GT(m.componentJoules(power::Component::kCpu), 0) << "server " << i;
    EXPECT_GT(m.componentJoules(power::Component::kNic), 0) << "server " << i;
    EXPECT_GT(m.componentJoules(power::Component::kDram), 0) << "server " << i;
  }
  // Op-class attribution: reads, updates and their replication fan-out are
  // all present, and the YCSB ops carry their tenant slot (slot 0 is the
  // untenanted remainder; slots 1+ map to SLO classes).
  double read = 0, update = 0, repl = 0, tenanted = 0, disk = 0;
  for (int i = 0; i < c->serverCount(); ++i) {
    const auto& m = c->server(i).node->energyMeter();
    read += classJoules(m, power::OpClass::kRead);
    update += classJoules(m, power::OpClass::kUpdate);
    repl += classJoules(m, power::OpClass::kReplication);
    tenanted += classJoules(m, power::OpClass::kRead, /*tenantedOnly=*/true);
    disk += m.componentJoules(power::Component::kDisk);
  }
  EXPECT_GT(read, 0);
  EXPECT_GT(update, 0);
  EXPECT_GT(repl, 0);
  EXPECT_GT(tenanted, 0);
  EXPECT_GE(disk, 0);  // backups may batch past the measured window
}

TEST(EnergyE2E, MeteringOffLeavesCellsEmptyAndTimingUnchanged) {
  auto on = runWorkload(7, /*metering=*/true);
  auto off = runWorkload(7, /*metering=*/false);
  int cells = 0;
  for (int i = 0; i < off->serverCount(); ++i) {
    off->server(i).node->energyMeter().forEachCell(
        [&cells](power::Component, power::OpClass, std::uint16_t, double) {
          ++cells;
        });
  }
  EXPECT_EQ(cells, 0);
  // Charging is pure accounting: the simulation's trajectory must be
  // bit-identical with the meter on or off.
  EXPECT_EQ(on->sim().now(), off->sim().now());
  EXPECT_EQ(on->totalOpsCompleted(), off->totalOpsCompleted());
}

TEST(EnergyE2E, ExportedNodeRowsReconcileWithPduWithinTenthOfPercent) {
  const std::string dir = ::testing::TempDir() + "energy_reconcile";
  std::filesystem::remove_all(dir);
  auto c = runWorkload(42);
  ASSERT_TRUE(c->exportMetrics(dir));
  std::ifstream is(dir + "/energy.jsonl");
  ASSERT_TRUE(is);
  std::string line;
  int nodeRows = 0;
  bool sawCluster = false;
  while (std::getline(is, line)) {
    if (line.find("\"energy_node\"") != std::string::npos) {
      ++nodeRows;
      const double total = field(line, "total_j");
      const double pdu = field(line, "pdu_j");
      ASSERT_GT(pdu, 0) << line;
      EXPECT_LE(std::abs(total - pdu) / pdu, 0.001) << line;
    }
    if (line.find("\"energy_remainder\"") != std::string::npos) {
      EXPECT_GE(field(line, "joules"), 0) << line;
    }
    if (line.find("\"energy_cluster\"") != std::string::npos) {
      sawCluster = true;
      EXPECT_GT(field(line, "total_j"), 0);
      EXPECT_GT(field(line, "ops"), 0);
      EXPECT_GT(field(line, "ops_per_j"), 0);
    }
  }
  EXPECT_EQ(nodeRows, c->serverCount());
  EXPECT_TRUE(sawCluster);
}

TEST(EnergyE2E, EnergyJsonlIsByteIdenticalAcrossRepeatedRuns) {
  for (const std::uint64_t seed : {101ull, 202ull, 303ull}) {
    std::string first;
    for (int rep = 0; rep < 2; ++rep) {
      const std::string dir = ::testing::TempDir() + "energy_det_" +
                              std::to_string(seed) + "_" +
                              std::to_string(rep);
      std::filesystem::remove_all(dir);
      auto c = runWorkload(seed);
      ASSERT_TRUE(c->exportMetrics(dir));
      const std::string bytes = slurp(dir + "/energy.jsonl");
      ASSERT_FALSE(bytes.empty());
      if (rep == 0) {
        first = bytes;
      } else {
        EXPECT_EQ(first, bytes) << "seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace rc
