// Open-loop traffic engine tests (docs/WORKLOADS.md):
//
//   1. Arrival-process statistics under a fixed seed: Poisson mean and
//      index of dispersion ~ 1, on/off self-similar traffic measurably
//      burstier at the same mean, diurnal modulation integrating to the
//      curve's analytic mean, flash-crowd edges exact.
//   2. Hot-key shifts: the shifted key stream is exactly the cached affine
//      remap of the unshifted one (golden sequence pinned).
//   3. The TrafficSource's batched generation: o(1) heap events per
//      request, offered rate delivered, intent-time SLO accounting.
//   4. Per-tenant QoS at dispatch: a surging tenant is policed at its
//      bucket rate while the other tenant's p999 stays put.
//   5. Determinism: same seed + same schedule => bit-identical
//      metrics.jsonl / slo.jsonl across runs (seeds 101/202/303).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/openloop.hpp"
#include "fault/fault_injector.hpp"
#include "load/arrival.hpp"
#include "load/traffic_source.hpp"
#include "sim/token_bucket.hpp"
#include "ycsb/workload.hpp"

namespace rc {
namespace {

using sim::msec;
using sim::seconds;
using sim::usec;

// ------------------------------------------------ arrival-process statistics

// Bin a drawn arrival stream and return {meanRate, indexOfDispersion}.
// Dispersion (variance/mean of per-bin counts) is 1 for Poisson and > 1
// for bursty processes — the standard burstiness probe.
struct BinStats {
  double ratePerSec = 0;
  double dispersion = 0;
  std::uint64_t count = 0;
};

BinStats binArrivals(load::ArrivalProcess& p, sim::Duration horizon,
                     sim::Duration bin) {
  std::vector<sim::SimTime> out;
  sim::SimTime cursor = 0;
  while (cursor < horizon) {
    cursor = p.drawRun(cursor, msec(5), 100000, out);
  }
  const auto bins = static_cast<std::size_t>(horizon / bin);
  std::vector<double> counts(bins, 0);
  for (sim::SimTime t : out) {
    if (t >= horizon) break;
    counts[static_cast<std::size_t>(t / bin)] += 1;
  }
  double mean = 0;
  for (double c : counts) mean += c;
  mean /= static_cast<double>(bins);
  double var = 0;
  for (double c : counts) var += (c - mean) * (c - mean);
  var /= static_cast<double>(bins);
  BinStats s;
  s.count = out.size();
  s.ratePerSec = static_cast<double>(out.size()) / sim::toSeconds(horizon);
  s.dispersion = mean > 0 ? var / mean : 0;
  return s;
}

TEST(Arrival, PoissonMeanAndDispersion) {
  load::TrafficShape shape;
  shape.process = load::TrafficShape::Process::kPoisson;
  shape.users = 50'000;
  shape.opsPerUserPerSec = 1.0;
  load::ArrivalProcess p(shape, sim::Rng(101, 1));
  const BinStats s = binArrivals(p, seconds(2), msec(10));
  // 100k expected arrivals: mean within 2%, dispersion ~ 1.
  EXPECT_NEAR(s.ratePerSec, 50'000.0, 1'000.0);
  EXPECT_GT(s.dispersion, 0.8);
  EXPECT_LT(s.dispersion, 1.25);
}

TEST(Arrival, OnOffIsBurstierThanPoissonAtSameMean) {
  load::TrafficShape shape;
  shape.process = load::TrafficShape::Process::kOnOff;
  shape.users = 50'000;
  shape.opsPerUserPerSec = 1.0;
  shape.onOffSources = 8;
  shape.onFraction = 0.25;
  shape.onMean = msec(50);
  shape.paretoShape = 1.5;
  load::ArrivalProcess p(shape, sim::Rng(101, 1));
  const BinStats s = binArrivals(p, seconds(5), msec(10));
  // Long-run mean converges to users * opsPerUser (generous tolerance: the
  // heavy-tailed off periods make convergence slow by construction).
  EXPECT_NEAR(s.ratePerSec, 50'000.0, 17'500.0);
  // The whole point of the Willinger construction: visibly over-dispersed.
  EXPECT_GT(s.dispersion, 1.5);
}

TEST(Arrival, DiurnalCurveMeanIsExactIntegral) {
  load::DiurnalCurve c;
  c.period = seconds(4);
  // Triangle wave 0.5 -> 1.5 -> 0.5: mean exactly 1.0.
  c.points = {{0.0, 0.5}, {0.5, 1.5}};
  EXPECT_FALSE(c.flat());
  EXPECT_NEAR(c.mean(), 1.0, 1e-9);
  EXPECT_NEAR(c.at(0), 0.5, 1e-9);
  EXPECT_NEAR(c.at(seconds(2)), 1.5, 1e-9);
  EXPECT_NEAR(c.at(seconds(1)), 1.0, 1e-9);  // halfway up
  EXPECT_NEAR(c.at(seconds(3)), 1.0, 1e-9);  // halfway down (wrap side)
  EXPECT_NEAR(c.at(seconds(4)), 0.5, 1e-9);  // periodic
}

TEST(Arrival, DiurnalModulatedCountMatchesCurveMean) {
  load::TrafficShape shape;
  shape.users = 20'000;
  shape.diurnal.period = seconds(1);
  shape.diurnal.points = {{0.0, 0.2}, {0.5, 1.8}};  // mean 1.0
  load::ArrivalProcess p(shape, sim::Rng(202, 1));
  // Whole number of periods, so the integral applies exactly.
  const BinStats s = binArrivals(p, seconds(4), msec(10));
  EXPECT_NEAR(s.ratePerSec, 20'000.0 * shape.diurnal.mean(), 1'500.0);
  // Valley rate ~0.2x, peak ~1.8x: strongly over-dispersed in 10 ms bins.
  EXPECT_GT(s.dispersion, 2.0);
}

TEST(Arrival, FlashCrowdMultipliesRateExactlyInWindow) {
  load::TrafficShape shape;
  shape.users = 10'000;
  shape.flashCrowds = {{seconds(1), msec(500), 5.0}};
  load::ArrivalProcess p(shape, sim::Rng(303, 1));
  EXPECT_NEAR(p.rateAt(msec(500)), 10'000.0, 1e-6);
  EXPECT_NEAR(p.rateAt(seconds(1)), 50'000.0, 1e-6);
  EXPECT_NEAR(p.rateAt(msec(1499)), 50'000.0, 1e-6);
  EXPECT_NEAR(p.rateAt(msec(1500)), 10'000.0, 1e-6);

  std::vector<sim::SimTime> out;
  sim::SimTime cursor = 0;
  while (cursor < seconds(2)) cursor = p.drawRun(cursor, msec(5), 100000, out);
  std::uint64_t inCrowd = 0;
  std::uint64_t before = 0;
  for (sim::SimTime t : out) {
    if (t < seconds(1)) ++before;
    else if (t < msec(1500)) ++inCrowd;
  }
  const double baseRate = static_cast<double>(before) / 1.0;
  const double crowdRate = static_cast<double>(inCrowd) / 0.5;
  EXPECT_NEAR(crowdRate / baseRate, 5.0, 0.5);
}

TEST(Arrival, SameSeedDrawsIdenticalRuns) {
  load::TrafficShape shape;
  shape.users = 5'000;
  shape.flashCrowds = {{msec(200), msec(100), 3.0}};
  load::ArrivalProcess a(shape, sim::Rng(101, 7));
  load::ArrivalProcess b(shape, sim::Rng(101, 7));
  std::vector<sim::SimTime> outA;
  std::vector<sim::SimTime> outB;
  sim::SimTime ca = 0;
  sim::SimTime cb = 0;
  for (int i = 0; i < 200; ++i) {
    ca = a.drawRun(ca, msec(1), 4096, outA);
    cb = b.drawRun(cb, msec(1), 4096, outB);
  }
  EXPECT_EQ(ca, cb);
  ASSERT_EQ(outA.size(), outB.size());
  EXPECT_TRUE(outA == outB);
}

// ------------------------------------------------------------ hot-key shift

TEST(HotKeyShift, ShiftedStreamIsAffineImageOfUnshifted) {
  ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::B(10'000);
  ycsb::KeyChooser plain(spec, sim::Rng(42, 1));
  ycsb::KeyChooser shifted(spec, sim::Rng(42, 1));
  shifted.shiftHotKeys(0xBEEF);
  EXPECT_EQ(shifted.shiftCount(), 1u);
  bool moved = false;
  for (int i = 0; i < 5'000; ++i) {
    const std::uint64_t u = plain.next();
    const std::uint64_t s = shifted.next();
    ASSERT_EQ(s, shifted.remap(u));
    ASSERT_LT(s, spec.recordCount);
    if (s != u) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(HotKeyShift, RemapIsABijection) {
  ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::B(4'096);
  ycsb::KeyChooser k(spec, sim::Rng(1, 1));
  k.shiftHotKeys(7);
  k.shiftHotKeys(1234567);  // composed shifts stay bijective
  std::vector<char> seen(4'096, 0);
  for (std::uint64_t i = 0; i < 4'096; ++i) {
    const std::uint64_t m = k.remap(i);
    ASSERT_LT(m, 4'096u);
    ASSERT_FALSE(seen[m]) << "collision at " << i;
    seen[m] = 1;
  }
  // Inserted keys (beyond the preloaded range) are never remapped.
  EXPECT_EQ(k.remap(5'000), 5'000u);
}

TEST(HotKeyShift, GoldenSequencePinned) {
  // Deterministic regression anchor: seed 42, zipfian B over 10k records,
  // one shift. If the permutation derivation or the zipfian stream change,
  // this fails loudly and the golden values must be re-derived consciously.
  ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::B(10'000);
  ycsb::KeyChooser k(spec, sim::Rng(42, 1));
  k.shiftHotKeys(0xBEEF);
  std::vector<std::uint64_t> got;
  for (int i = 0; i < 8; ++i) got.push_back(k.next());
  const std::vector<std::uint64_t> golden = {2421, 2606, 7343, 4767,
                                             5895, 837,  890,  7687};
  EXPECT_EQ(got, golden) << "golden zipfian-shift sequence drifted";
}

// --------------------------------------------------------- sim token bucket

TEST(TokenBucket, TryAcquireNeverGoesIntoDebt) {
  sim::TokenBucket tb(1'000.0, 2.0);  // 1k/s, depth 2
  EXPECT_TRUE(tb.tryAcquire(0));
  EXPECT_TRUE(tb.tryAcquire(0));
  EXPECT_FALSE(tb.tryAcquire(0));  // empty: policing refuses, no debt
  // 1 ms refills exactly one token.
  EXPECT_TRUE(tb.tryAcquire(msec(1)));
  EXPECT_FALSE(tb.tryAcquire(msec(1)));
}

TEST(TokenBucket, TimeToTokenIsNonConsumingHint) {
  sim::TokenBucket tb(1'000.0, 1.0);
  EXPECT_TRUE(tb.tryAcquire(0));
  const sim::Duration wait = tb.timeToToken(0);
  EXPECT_GT(wait, 0);
  EXPECT_LE(wait, msec(1));
  EXPECT_EQ(wait, tb.timeToToken(0));  // hint does not consume
  EXPECT_TRUE(tb.tryAcquire(wait));
}

TEST(TokenBucket, ReserveStillPacesWithDebt) {
  // The client-side contract (retry budgets) is unchanged by the move to
  // sim/: reserve() commits and returns the wait.
  sim::TokenBucket tb(100.0, 1.0);
  EXPECT_EQ(tb.reserve(0), 0);
  EXPECT_GT(tb.reserve(0), 0);  // debt: caller must wait
}

// ------------------------------------------------- open-loop traffic engine

core::OpenLoopConfig smallConfig() {
  core::OpenLoopConfig cfg;
  cfg.servers = 4;
  cfg.workload = ycsb::WorkloadSpec::B(20'000);
  cfg.warmup = msec(500);
  cfg.measure = seconds(2);
  cfg.seed = 42;
  core::OpenLoopTenantConfig t;
  t.name = "web";
  t.sources = 2;
  t.shape.users = 1'000;  // 2 sources x 1k users x 1 op/s = 2k ops/s
  t.readSlo = {msec(4), msec(20)};
  t.updateSlo = {msec(8), msec(40)};
  cfg.tenants = {t};
  return cfg;
}

TEST(OpenLoop, DeliversOfferedRateWhenUncongested) {
  const core::OpenLoopConfig cfg = smallConfig();
  const core::OpenLoopResult r = core::runOpenLoopExperiment(cfg);
  EXPECT_EQ(r.modeledUsers, 2'000u);
  EXPECT_NEAR(r.offeredRatePerSec, 2'000.0, 1e-6);
  // Open loop at ~2% of capacity: delivered == offered (within noise).
  EXPECT_NEAR(r.deliveredOpsPerSec, r.offeredRatePerSec,
              0.1 * r.offeredRatePerSec);
  EXPECT_EQ(r.opFailures, 0u);
  EXPECT_EQ(r.sourceDropped, 0u);
  EXPECT_GT(r.sloWindows.size(), 0u);
}

TEST(OpenLoop, BatchedGenerationAmortizesHeapEvents) {
  core::OpenLoopConfig cfg = smallConfig();
  cfg.tenants[0].sources = 1;
  cfg.tenants[0].shape.users = 200'000;  // 200k ops/s through one source
  cfg.warmup = msec(100);
  cfg.measure = msec(500);
  const core::OpenLoopResult batched = core::runOpenLoopExperiment(cfg);
  ASSERT_GT(batched.generatorWakeups, 0u);
  const double perWake =
      static_cast<double>(batched.arrivalsGenerated) /
      static_cast<double>(batched.generatorWakeups);
  // 200k/s x 100 us quantum = ~20 arrivals per wakeup event.
  EXPECT_GT(perWake, 5.0);

  cfg.batchQuantum = 0;  // pace per arrival: ~one wakeup each
  const core::OpenLoopResult paced = core::runOpenLoopExperiment(cfg);
  ASSERT_GT(paced.arrivalsGenerated, 0u);
  // Slightly under 1:1 only when two drawn arrivals share a timestamp.
  EXPECT_GE(static_cast<double>(paced.generatorWakeups),
            0.95 * static_cast<double>(paced.arrivalsGenerated));
}

TEST(OpenLoop, SourceDropGuardsCollapse) {
  // Offered far beyond capacity with a tiny in-flight cap: the source
  // sheds at the generator instead of growing client state unboundedly.
  core::OpenLoopConfig cfg = smallConfig();
  cfg.servers = 2;
  cfg.tenants[0].sources = 1;
  cfg.tenants[0].shape.users = 500'000;
  cfg.warmup = msec(100);
  cfg.measure = msec(500);
  core::OpenLoopResult r;
  {
    core::OpenLoopConfig c = cfg;
    c.clusterHook = [](core::Cluster&) {};
    r = core::runOpenLoopExperiment(c);
  }
  EXPECT_GT(r.sourceDropped + r.shedRequests, 0u);
}

TEST(OpenLoop, LoadSurgeFaultRaisesOpenLoopRate) {
  // The kLoadSurge fault lands on TrafficSources as a flash-crowd overlay
  // (the closed-loop-only hook it subsumes).
  core::ClusterParams cp;
  cp.servers = 3;
  cp.clients = 1;
  cp.seed = 7;
  core::Cluster cluster(cp);
  const std::uint64_t table = cluster.createTable("usertable");
  ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::C(10'000);
  cluster.bulkLoad(table, spec.recordCount, spec.valueBytes);

  load::TrafficSourceParams p;
  p.shape.users = 2'000;
  cluster.configureOpenLoop(table, spec, {p});
  cluster.startTraffic();

  fault::FaultPlan plan;
  plan.loadSurge(seconds(1), /*clientIdx=*/-1, /*factor=*/4.0, seconds(1));
  fault::FaultInjector injector(cluster, plan, cluster.sim().rng().fork(9));
  injector.arm();

  cluster.sim().runFor(msec(900));
  const std::uint64_t before = cluster.totalArrivalsGenerated();
  EXPECT_NEAR(cluster.clientHost(0).traffic->offeredRate(), 2'000.0, 1e-6);
  cluster.sim().runFor(msec(600));  // inside the surge window
  const std::uint64_t during = cluster.totalArrivalsGenerated() - before;
  EXPECT_NEAR(cluster.clientHost(0).traffic->offeredRate(), 8'000.0, 1e-6);
  cluster.sim().runFor(seconds(1));  // past it
  EXPECT_NEAR(cluster.clientHost(0).traffic->offeredRate(), 2'000.0, 1e-6);
  cluster.stopTraffic();
  // ~0.9 s at 2k/s vs 0.6 s at 8k/s: the surge window generated more.
  EXPECT_GT(during, before);
}

// ----------------------------------------------------- per-tenant QoS stage

TEST(OpenLoop, TenantIsolationUnderTenXSurge) {
  // The acceptance invariant: tenant B surges 10x; its admitted rate is
  // policed at the bucket while tenant A's intent-time p999 holds.
  core::OpenLoopConfig cfg;
  cfg.servers = 4;
  cfg.workload = ycsb::WorkloadSpec::B(20'000);
  cfg.warmup = seconds(1);
  cfg.measure = seconds(5);
  cfg.seed = 42;

  core::OpenLoopTenantConfig a;
  a.name = "tenantA";
  a.sources = 1;
  a.shape.users = 1'500;
  a.readSlo = {msec(4), msec(20)};
  a.updateSlo = {msec(8), msec(40)};
  a.qosRatePerSec = 1'000;  // 4k/s cluster-wide >> 1.5k offered
  a.qosPriority = true;

  core::OpenLoopTenantConfig b = a;
  b.name = "tenantB";
  b.shape.users = 1'500;
  b.qosRatePerSec = 750;  // 3k/s cluster-wide cap
  b.qosPriority = false;
  // 10x surge for 2 s in the middle of the measurement window.
  b.shape.flashCrowds = {{seconds(3), seconds(2), 10.0}};

  cfg.tenants = {a, b};
  const core::OpenLoopResult r = core::runOpenLoopExperiment(cfg);

  ASSERT_EQ(r.tenants.size(), 2u);
  const core::OpenLoopTenantResult& ra = r.tenants[0];
  const core::OpenLoopTenantResult& rb = r.tenants[1];

  // A never throttles; B does, hard, and only via the bucket.
  EXPECT_EQ(ra.qosThrottled, 0u);
  EXPECT_GT(rb.qosThrottled, 5'000u);
  EXPECT_GT(rb.qosEpisodes, 0u);

  // B's admitted total ~= offered outside the surge (4 s x 1.5k) plus the
  // bucket cap inside it (2 s x 3k): policing at the bucket rate.
  const double expectAdmitted = 4.0 * 1'500 + 2.0 * 3'000;
  EXPECT_NEAR(static_cast<double>(rb.qosAdmitted), expectAdmitted,
              0.25 * expectAdmitted);

  // Tenant A's per-window intent-time p999: surge windows stay within 20%
  // of the pre-surge baseline (both tails taken over read windows).
  double baseP999 = 0;
  double surgeP999 = 0;
  for (const auto& w : r.sloWindows) {
    if (w.cls != "tenantA/read" || w.count == 0) continue;
    const double p = sim::toMicros(w.p999);
    if (w.window >= 1 && w.window < 4) baseP999 = std::max(baseP999, p);
    if (w.window >= 4 && w.window < 6) surgeP999 = std::max(surgeP999, p);
  }
  ASSERT_GT(baseP999, 0.0);
  ASSERT_GT(surgeP999, 0.0);
  EXPECT_LT(surgeP999, 1.2 * baseP999)
      << "tenant A p999 degraded >20% during tenant B's surge";
}

// ------------------------------------------------------------- determinism

class OpenLoopSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OpenLoopSeed, ReplaysBitIdentical) {
  const std::uint64_t seed = GetParam();
  auto run = [&](const std::string& dir) {
    core::OpenLoopConfig cfg = smallConfig();
    cfg.seed = seed;
    cfg.warmup = msec(300);
    cfg.measure = seconds(1);
    cfg.metricsDir = dir;
    // Exercise every schedule type in the replay: diurnal valley, flash
    // crowd, hot-key shift, on/off tenant.
    cfg.tenants[0].shape.diurnal.period = msec(800);
    cfg.tenants[0].shape.diurnal.points = {{0.0, 0.6}, {0.5, 1.4}};
    cfg.tenants[0].shape.flashCrowds = {{msec(600), msec(200), 3.0}};
    cfg.tenants[0].shape.hotKeyShifts = {{msec(500), 0xABCD}};
    core::OpenLoopTenantConfig burst;
    burst.name = "burst";
    burst.sources = 1;
    burst.shape.process = load::TrafficShape::Process::kOnOff;
    burst.shape.users = 500;
    burst.shape.onOffSources = 4;
    burst.readSlo = {msec(4), msec(20)};
    burst.updateSlo = {msec(8), msec(40)};
    cfg.tenants.push_back(burst);
    return core::runOpenLoopExperiment(cfg);
  };
  const std::string dirA =
      ::testing::TempDir() + "openloop_replay_a" + std::to_string(seed);
  const std::string dirB =
      ::testing::TempDir() + "openloop_replay_b" + std::to_string(seed);
  const core::OpenLoopResult a = run(dirA);
  const core::OpenLoopResult b = run(dirB);
  EXPECT_EQ(a.opsMeasured, b.opsMeasured);
  EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
  EXPECT_EQ(a.arrivalsGenerated, b.arrivalsGenerated);

  auto slurp = [](const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    std::stringstream ss;
    ss << f.rdbuf();
    return ss.str();
  };
  const std::string metricsA = slurp(dirA + "/metrics.jsonl");
  ASSERT_FALSE(metricsA.empty());
  EXPECT_EQ(metricsA, slurp(dirB + "/metrics.jsonl"));
  const std::string sloA = slurp(dirA + "/slo.jsonl");
  ASSERT_FALSE(sloA.empty());
  EXPECT_EQ(sloA, slurp(dirB + "/slo.jsonl"));
}

INSTANTIATE_TEST_SUITE_P(Matrix, OpenLoopSeed,
                         ::testing::Values(101u, 202u, 303u));

}  // namespace
}  // namespace rc
