// Overload control & graceful degradation (docs/OVERLOAD.md): unit tests
// for the dispatch admission gate, the shared jittered-backoff policy and
// the kLoadSurge fault, plus the chaos overload scenarios — flash crowd,
// hot-key storm, retry storm against a degraded backup — asserting the
// no-collapse invariant:
//
//   1. With defenses on, goodput under a surge to ~3x capacity stays
//      >= 80% of the pre-surge level, and admitted-op p99 stays bounded.
//   2. No acked data is lost: every bulk-loaded key reads back kOk after
//      the storm quiesces.
//   3. Same seed + same plan => bit-identical metrics.jsonl/events.jsonl.
//   4. The regression fixture (admission off, retry budget off) runs the
//      same storm and demonstrably degrades — the metastable timeout-retry
//      amplification the defenses exist to prevent.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "core/cluster.hpp"
#include "fault/fault_injector.hpp"
#include "server/common.hpp"
#include "server/dispatch.hpp"
#include "server/master_service.hpp"
#include "sim/backoff.hpp"

namespace rc {
namespace {

using sim::msec;
using sim::seconds;
using sim::usec;

// ------------------------------------------------- dispatch admission gate

server::DispatchParams admissionParams() {
  server::DispatchParams dp;
  dp.admission.enabled = true;
  return dp;
}

TEST(Admission, QuietNodeAdmitsEverything) {
  sim::Simulation sim;
  server::Dispatch d(sim, admissionParams());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(d.admit(i % 2 == 0, 0).admitted);
  }
  EXPECT_EQ(d.shedTotal(), 0u);
  EXPECT_FALSE(d.underPressure());
}

TEST(Admission, DisabledNeverSheds) {
  sim::Simulation sim;
  server::DispatchParams dp;
  dp.admission.enabled = false;
  server::Dispatch d(sim, dp);
  d.noteSojourn(seconds(1));
  sim.runFor(msec(100));
  EXPECT_TRUE(d.admit(true, 0).admitted);
  EXPECT_EQ(d.shedTotal(), 0u);
}

TEST(Admission, TransientSpikeIsAbsorbed) {
  // CoDel-style: load above target for less than `interval` never sheds.
  sim::Simulation sim;
  server::Dispatch d(sim, admissionParams());
  d.noteSojourn(msec(20));
  EXPECT_TRUE(d.admit(true, 0).admitted);  // starts the sustained-above gate
  sim.runFor(msec(5));                     // < interval (10 ms)
  d.noteSojourn(msec(20));
  EXPECT_TRUE(d.admit(true, 0).admitted);
  EXPECT_EQ(d.shedTotal(), 0u);
}

TEST(Admission, ShedsWritesBeforeReads) {
  // Sustained sojourn between writeTarget (2 ms) and readTarget (8 ms):
  // writes bounce, reads pass — the degradation ladder's first rung.
  sim::Simulation sim;
  server::Dispatch d(sim, admissionParams());
  d.noteSojourn(msec(5));
  EXPECT_TRUE(d.admit(true, 0).admitted);
  sim.runFor(msec(10));
  d.noteSojourn(msec(5));
  EXPECT_FALSE(d.admit(true, 0).admitted);
  EXPECT_TRUE(d.admit(false, 0).admitted);
  EXPECT_EQ(d.shedWrites(), 1u);
  EXPECT_EQ(d.shedReads(), 0u);
  EXPECT_TRUE(d.underPressure());

  // Past readTarget everything data-plane sheds.
  d.noteSojourn(msec(20));
  EXPECT_FALSE(d.admit(false, 0).admitted);
  EXPECT_EQ(d.shedReads(), 1u);
}

TEST(Admission, PriorityTenantShedsLast) {
  sim::Simulation sim;
  server::DispatchParams dp = admissionParams();
  dp.admission.priorityTenants = {7};
  server::Dispatch d(sim, dp);
  d.noteSojourn(msec(5));
  EXPECT_TRUE(d.admit(true, 0).admitted);
  sim.runFor(msec(10));
  d.noteSojourn(msec(5));
  // 5 ms > writeTarget for the best-effort tenant, but under tenant 7's
  // scaled target (2 ms x 4 = 8 ms).
  EXPECT_FALSE(d.admit(true, 0).admitted);
  EXPECT_TRUE(d.admit(true, 7).admitted);
}

TEST(Admission, RetryAfterHintTracksLoadAndClamps) {
  sim::Simulation sim;
  server::Dispatch d(sim, admissionParams());
  d.noteSojourn(msec(5));
  (void)d.admit(true, 0);
  sim.runFor(msec(10));
  d.noteSojourn(msec(5));
  const auto shed = d.admit(true, 0);
  ASSERT_FALSE(shed.admitted);
  EXPECT_GE(shed.retryAfter, msec(1));
  EXPECT_LE(shed.retryAfter, msec(50));
  EXPECT_NEAR(static_cast<double>(shed.retryAfter),
              static_cast<double>(msec(5)), static_cast<double>(msec(1)));

  // An absurd estimate clamps to maxRetryAfter.
  d.noteSojourn(seconds(2));
  const auto capped = d.admit(true, 0);
  ASSERT_FALSE(capped.admitted);
  EXPECT_EQ(capped.retryAfter, msec(50));
}

TEST(Admission, EwmaDecaysAndOverloadExits) {
  sim::Simulation sim;
  server::Dispatch d(sim, admissionParams());
  int enters = 0;
  int exits = 0;
  d.onOverloadState = [&](bool on) { on ? ++enters : ++exits; };
  d.noteSojourn(msec(20));
  (void)d.admit(true, 0);
  sim.runFor(msec(10));
  d.noteSojourn(msec(20));
  EXPECT_FALSE(d.admit(true, 0).admitted);
  EXPECT_EQ(enters, 1);
  EXPECT_TRUE(d.underPressure());

  // Quiet for a second: the sojourn EWMA halves per interval, the estimate
  // drops under target, and the next admit() exits overload.
  sim.runFor(seconds(1));
  EXPECT_LE(d.loadEstimate(sim.now()), msec(2));
  EXPECT_TRUE(d.admit(true, 0).admitted);
  EXPECT_FALSE(d.underPressure());
  EXPECT_EQ(exits, 1);
  EXPECT_EQ(d.overloadEnters(), 1u);
}

TEST(Admission, CrashResetsAdmissionState) {
  sim::Simulation sim;
  server::Dispatch d(sim, admissionParams());
  d.noteSojourn(msec(20));
  (void)d.admit(true, 0);
  sim.runFor(msec(10));
  d.noteSojourn(msec(20));
  EXPECT_FALSE(d.admit(true, 0).admitted);
  d.crash();
  EXPECT_FALSE(d.underPressure());
  d.restart();
  EXPECT_TRUE(d.admit(true, 0).admitted);
}

// ----------------------------------------------------- shared backoff policy

TEST(Backoff, ServerAliasIsTheSharedPolicy) {
  // Satellite: client and server share one jittered-backoff header; the
  // old server::Backoff is now an alias of sim::Backoff.
  static_assert(std::is_same_v<server::Backoff, sim::Backoff>,
                "server::Backoff must alias the shared sim::Backoff");
  SUCCEED();
}

TEST(Backoff, DelayIsJitteredDeterministicAndCapped) {
  const sim::Backoff b{msec(1), msec(200)};
  for (int attempt = 0; attempt < 12; ++attempt) {
    const sim::Duration target =
        std::min<sim::Duration>(msec(200), msec(1) << std::min(attempt, 20));
    const sim::Duration d1 = b.delay(attempt, /*salt=*/0xABCD);
    const sim::Duration d2 = b.delay(attempt, /*salt=*/0xABCD);
    EXPECT_EQ(d1, d2) << "same (attempt, salt) must replay identically";
    EXPECT_GE(d1, target / 2);
    EXPECT_LT(d1, target);
  }
  // Different salts de-synchronize: across many salts the delays spread.
  std::vector<sim::Duration> delays;
  for (std::uint64_t s = 0; s < 32; ++s) delays.push_back(b.delay(4, s));
  std::sort(delays.begin(), delays.end());
  EXPECT_GT(delays.back() - delays.front(), msec(1));
}

// --------------------------------------------------------- kLoadSurge fault

TEST(LoadSurge, SurgesEveryClientForTheWindow) {
  core::ClusterParams p;
  p.servers = 3;
  p.clients = 2;
  p.replicationFactor = 2;
  p.seed = 11;
  core::Cluster c(p);
  const auto table = c.createTable("surge");
  c.bulkLoad(table, 1'000, 128);
  c.configureYcsb(table, ycsb::WorkloadSpec::B(1'000),
                  ycsb::YcsbClientParams{});
  c.startYcsb();

  fault::FaultPlan plan;
  plan.loadSurge(msec(500), /*clientIdx=*/-1, /*factor=*/3.0, seconds(1));
  fault::FaultInjector injector(c, plan, c.sim().rng().fork(0x50463));
  injector.arm();

  c.sim().runFor(msec(700));  // inside the surge window
  for (int i = 0; i < c.clientCount(); ++i) {
    EXPECT_TRUE(c.clientHost(i).ycsb->surging()) << "client " << i;
  }
  EXPECT_EQ(c.journal().spansNamed("fault_load_surge").size(),
            static_cast<std::size_t>(c.clientCount()));

  c.sim().runFor(seconds(1));  // past surgeUntil
  for (int i = 0; i < c.clientCount(); ++i) {
    EXPECT_FALSE(c.clientHost(i).ycsb->surging()) << "client " << i;
  }
  c.stopYcsb();
}

// ------------------------------------------------------- overload scenarios

// Scenario geometry: a deliberately small cluster (1 worker thread, slow
// service times) so a modest client fleet can push it past saturation, and
// a short op timeout so the undefended variant exhibits the timeout-retry
// amplification loop. Offered load: 72 clients at ~24.8 ms/op baseline
// (~2.9 Kop/s, roughly half of capacity), surging 10x past saturation.
//
// The op timeout sits between the baseline queueing delay (~2 ms) and the
// saturated queueing delay (~12 ms by Little's law: 72 clients / ~6 Kop/s).
// Defended, admission keeps sojourn under the (tightened) targets and ops
// finish inside the timeout; undefended, most saturated ops time out and
// every timeout re-issues work the servers are still executing — the
// metastable loop that holds goodput down.
constexpr int kStormServers = 3;
constexpr int kStormClients = 72;
constexpr std::uint64_t kStormRecords = 2'000;
constexpr sim::Duration kStormOpTimeout = msec(6);

struct StormOptions {
  std::uint64_t seed = 101;
  bool defenses = true;        ///< admission control + retry budgets
  bool hotKey = false;         ///< surge only clients pinned to one owner
  bool slowBackup = false;     ///< slow one replica's network in the surge
  std::string exportDir;
};

struct StormResult {
  double baselineGoodput = 0;  ///< successful ops/s before the surge
  double surgeGoodput = 0;     ///< successful ops/s during the surge
  double postGoodput = 0;      ///< successful ops/s after the surge ends
  double p99BaselineUs = 0;
  double p99SurgeUs = 0;
  std::uint64_t shedTotal = 0;
  std::uint64_t shedHot = 0;      ///< sheds on the hot-key owner
  std::uint64_t shedColdMax = 0;  ///< max sheds across the other servers
  std::uint64_t bounces = 0;
  std::uint64_t budgetWaits = 0;
  std::uint64_t giveUps = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t failures = 0;
  std::uint64_t brownouts = 0;
  int overloadEnterEvents = 0;
  int readbackFailures = 0;
};

double p99Us(std::vector<sim::Duration>& v) {
  if (v.empty()) return 0;
  std::size_t k = (v.size() * 99) / 100;
  if (k >= v.size()) k = v.size() - 1;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k),
                   v.end());
  return sim::toMicros(v[static_cast<std::ptrdiff_t>(k)]);
}

StormResult runStorm(const StormOptions& o) {
  core::ClusterParams p;
  p.servers = kStormServers;
  p.clients = kStormClients;
  p.replicationFactor = 3;
  p.seed = o.seed;
  // Shrink per-node capacity so the storm saturates a 3-node cluster with
  // tens (not thousands) of closed-loop clients.
  p.serverNode.cpu.workerThreads = 1;
  p.master.readServiceTime = usec(300);
  p.master.writeAppendCpu = usec(400);
  // Short timeout: queueing past ~6 ms turns into client re-issues — the
  // fuel of the metastable feedback loop the admission gate breaks. The
  // admission targets are tightened to keep admitted RTTs inside it.
  p.client.opTimeout = kStormOpTimeout;
  p.dispatch.admission.writeTarget = msec(1);
  p.dispatch.admission.readTarget = msec(4);
  // A bounced closed-loop client contributes nothing while it waits, so cap
  // both the server hint and the client's bounce backoff well under their
  // 50/200 ms defaults, and let ops ride out more bounces instead of giving
  // up: rejected clients re-offer soon enough to keep the pipeline full.
  p.dispatch.admission.maxRetryAfter = msec(10);
  p.client.overloadBackoff = sim::Backoff{msec(2), msec(10)};
  p.client.retryBackoff = sim::Backoff{msec(1), msec(10)};
  p.client.maxRetries = 10;
  if (!o.defenses) {
    p.dispatch.admission.enabled = false;
    p.client.retryBudgetPerSec = 0;
  }
  if (o.slowBackup) {
    // A tight per-client retry budget: the degraded replica multiplies
    // retries, and the budget is what visibly meters them.
    p.client.retryBudgetPerSec = o.defenses ? 25.0 : 0.0;
    p.client.retryBudgetBurst = 5.0;
  }
  core::Cluster c(p);
  const auto table = c.createTable("storm");
  c.bulkLoad(table, kStormRecords, 128);

  // Hot-key variant: a quarter of the fleet only touches keys owned by one
  // master, so only that node should shed.
  const int hotClients = kStormClients / 4;
  const auto hotOwner = c.ownerOfKey(table, 1);
  ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::A(kStormRecords);
  spec.valueBytes = 128;
  ycsb::YcsbClientParams ycp;
  ycp.clientOverheadPerOp = msec(24);
  c.configureYcsb(table, spec, ycp,
                  [&](int i, ycsb::YcsbClientParams& cp) {
                    if (o.hotKey && i < hotClients) {
                      cp.keyPredicate = [&c, table,
                                         hotOwner](std::uint64_t k) {
                        return c.ownerOfKey(table, k) == hotOwner;
                      };
                    }
                  });

  std::vector<sim::Duration> baseLat, surgeLat;
  std::vector<sim::Duration>* sink = nullptr;
  for (int i = 0; i < c.clientCount(); ++i) {
    c.clientHost(i).ycsb->onOpComplete =
        [&sink](sim::SimTime, sim::Duration l, bool) {
          if (sink != nullptr) sink->push_back(l);
        };
  }

  fault::FaultPlan plan;
  if (o.hotKey) {
    for (int i = 0; i < hotClients; ++i) {
      plan.loadSurge(seconds(2), i, /*factor=*/10.0, msec(1500));
    }
  } else {
    plan.loadSurge(seconds(2), /*clientIdx=*/-1, /*factor=*/10.0, msec(1500));
  }
  if (o.slowBackup) {
    // Gray failure on one replica: every RPC to/from node 1 — client ops
    // and, crucially, replication from the other masters to its backup —
    // picks up extra wire latency for the storm window.
    fault::FaultEvent slow;
    slow.kind = fault::FaultKind::kNetworkDelay;
    slow.trigger.at = seconds(2);
    slow.server = 1;
    slow.extraLatency = usec(250);
    slow.duration = msec(1500);
    slow.tag = "slow-backup";
    plan.events.push_back(std::move(slow));
  }
  fault::FaultInjector injector(c, plan, c.sim().rng().fork(0x0E21));
  injector.arm();

  c.startYcsb();
  c.sim().runFor(msec(500));  // warmup, unmeasured

  auto goodOps = [&c] {
    std::uint64_t ok = 0;
    for (int i = 0; i < c.clientCount(); ++i) {
      const auto& s = c.clientHost(i).ycsb->stats();
      ok += s.opsCompleted - s.failures;
    }
    return ok;
  };

  const std::uint64_t g0 = goodOps();
  sink = &baseLat;
  c.sim().runFor(msec(1500));  // baseline [0.5 s, 2.0 s)
  const std::uint64_t g1 = goodOps();
  sink = &surgeLat;
  c.sim().runFor(msec(1500));  // surge [2.0 s, 3.5 s)
  const std::uint64_t g2 = goodOps();
  sink = nullptr;
  c.sim().runFor(msec(1000));  // post-surge [3.5 s, 4.5 s)
  const std::uint64_t g3 = goodOps();

  c.stopYcsb();
  c.sim().runFor(seconds(1));  // drain trailing retries

  StormResult r;
  r.baselineGoodput = static_cast<double>(g1 - g0) / 1.5;
  r.surgeGoodput = static_cast<double>(g2 - g1) / 1.5;
  r.postGoodput = static_cast<double>(g3 - g2) / 1.0;
  r.p99BaselineUs = p99Us(baseLat);
  r.p99SurgeUs = p99Us(surgeLat);
  for (int i = 0; i < c.serverCount(); ++i) {
    const std::uint64_t shed = c.server(i).dispatch->shedTotal();
    r.shedTotal += shed;
    if (c.serverNodeId(i) == hotOwner) {
      r.shedHot = shed;
    } else {
      r.shedColdMax = std::max(r.shedColdMax, shed);
    }
  }
  for (int i = 0; i < c.clientCount(); ++i) {
    const auto& s = c.clientHost(i).rc->stats();
    r.bounces += s.overloadedBounces;
    r.budgetWaits += s.retryBudgetWaits;
    r.giveUps += s.overloadedGiveUps;
    r.timeouts += s.rpcTimeouts;
    const auto& y = c.clientHost(i).ycsb->stats();
    r.failures += y.failures;
  }
  r.brownouts = c.sloTracker().brownoutEngagements();
  r.overloadEnterEvents =
      static_cast<int>(c.journal().spansNamed("overload_enter").size());

  // Acked-write safety: every bulk-loaded key must still read back. The
  // storm sheds requests, never data.
  int pending = 0;
  int fails = 0;
  for (std::uint64_t k = 0; k < 64; ++k) {
    ++pending;
    c.clientHost(0).rc->read(table, (k * 31) % kStormRecords,
                             [&](net::Status s, sim::Duration) {
                               --pending;
                               if (s != net::Status::kOk) ++fails;
                             });
  }
  for (int i = 0; i < 100 && pending > 0; ++i) c.sim().runFor(msec(100));
  r.readbackFailures = fails + pending;

  if (!o.exportDir.empty()) {
    EXPECT_TRUE(c.exportMetrics(o.exportDir));
  }
  if (std::getenv("OVERLOAD_DEBUG") != nullptr) {
    std::printf(
        "storm seed=%llu defenses=%d hot=%d slow=%d: goodput %.0f/%.0f/%.0f "
        "p99 %.0f/%.0fus shed=%llu (hot=%llu coldMax=%llu) bounces=%llu "
        "budgetWaits=%llu giveUps=%llu timeouts=%llu failures=%llu "
        "brownouts=%llu enters=%d readbackFail=%d\n",
        (unsigned long long)o.seed, o.defenses, o.hotKey, o.slowBackup,
        r.baselineGoodput, r.surgeGoodput, r.postGoodput, r.p99BaselineUs,
        r.p99SurgeUs, (unsigned long long)r.shedTotal,
        (unsigned long long)r.shedHot, (unsigned long long)r.shedColdMax,
        (unsigned long long)r.bounces, (unsigned long long)r.budgetWaits,
        (unsigned long long)r.giveUps, (unsigned long long)r.timeouts,
        (unsigned long long)r.failures, (unsigned long long)r.brownouts,
        r.overloadEnterEvents, r.readbackFailures);
  }
  return r;
}

void expectNoCollapse(const StormResult& r) {
  // Admission engaged and was visible end to end: servers shed, clients
  // bounced, the brownout rung fired.
  EXPECT_GT(r.shedTotal, 0u);
  EXPECT_GT(r.bounces, 0u);
  EXPECT_GE(r.overloadEnterEvents, 1);
  EXPECT_GE(r.brownouts, 1u);
  // The no-collapse invariant: goodput under ~3x capacity holds >= 80% of
  // the pre-surge level, and recovers after the surge.
  EXPECT_GE(r.surgeGoodput, 0.8 * r.baselineGoodput);
  EXPECT_GE(r.postGoodput, 0.8 * r.baselineGoodput);
  // p99 stays bounded even at the height of the storm: the worst op rides
  // out ~10 bounce-waits of <= 10 ms each before landing — shed-and-retry
  // with a deterministic ceiling, not queue-forever (the undefended run's
  // tail is several times longer).
  EXPECT_LT(r.p99SurgeUs, sim::toMicros(msec(120)));
  // Nothing acked was lost.
  EXPECT_EQ(r.readbackFailures, 0);
}

class OverloadSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OverloadSeed, FlashCrowdDoesNotCollapse) {
  StormOptions o;
  o.seed = GetParam();
  expectNoCollapse(runStorm(o));
}

INSTANTIATE_TEST_SUITE_P(Matrix, OverloadSeed,
                         ::testing::Values(101ull, 202ull, 303ull));

TEST(Overload, HotKeyStormShedsOnlyTheHotServer) {
  StormOptions o;
  o.seed = 101;
  o.hotKey = true;
  const StormResult r = runStorm(o);
  // The surged quarter of the fleet hammers one owner: that node sheds,
  // the cold nodes stay comfortably under their targets.
  EXPECT_GT(r.shedHot, 0u);
  EXPECT_LT(r.shedColdMax, r.shedHot / 4 + 1);
  // Cold traffic keeps flowing. The bar is a notch below the flash-crowd
  // invariant: unsurged clients still route 1/3 of their ops at the hot
  // node and pay bounce-waits there, but the cluster stays productive.
  EXPECT_GE(r.surgeGoodput, 0.7 * r.baselineGoodput);
  EXPECT_GE(r.postGoodput, 0.8 * r.baselineGoodput);
  EXPECT_EQ(r.readbackFailures, 0);
}

TEST(Overload, RetryStormWithSlowBackupStaysStable) {
  // Compound fault: the flash crowd lands while one replica's network is
  // degraded, so every write's replication leg is stretched and timeouts
  // multiply retries — the classic retry-storm trigger. Capacity is
  // legitimately reduced (the slow node drags the whole write path), so
  // the bar is stability, not full throughput: forward progress through
  // the storm, the retry budget visibly metering the amplification, and a
  // clean snap back to baseline once the fault lifts.
  StormOptions o;
  o.seed = 202;
  o.slowBackup = true;
  const StormResult r = runStorm(o);
  EXPECT_GT(r.shedTotal, 0u);
  EXPECT_GT(r.bounces, 0u);
  EXPECT_GE(r.overloadEnterEvents, 1);
  // The tight per-client budget ran dry and delayed retries — the meter
  // that caps the storm's amplification.
  EXPECT_GT(r.budgetWaits, 0u);
  // Degraded but live: goodput never collapses toward zero...
  EXPECT_GE(r.surgeGoodput, 0.3 * r.baselineGoodput);
  // ...ops give up rarely instead of en masse...
  EXPECT_LT(r.failures, 100u);
  // ...and the system recovers completely after the window.
  EXPECT_GE(r.postGoodput, 0.8 * r.baselineGoodput);
  EXPECT_EQ(r.readbackFailures, 0);
}

TEST(Overload, FlashCrowdReplaysBitIdentical) {
  const std::string dirA = ::testing::TempDir() + "overload_replay_a";
  const std::string dirB = ::testing::TempDir() + "overload_replay_b";
  StormOptions o;
  o.seed = 101;
  o.exportDir = dirA;
  const StormResult a = runStorm(o);
  o.exportDir = dirB;
  const StormResult b = runStorm(o);
  expectNoCollapse(a);
  expectNoCollapse(b);

  auto slurp = [](const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    std::stringstream ss;
    ss << f.rdbuf();
    return ss.str();
  };
  const std::string metricsA = slurp(dirA + "/metrics.jsonl");
  ASSERT_FALSE(metricsA.empty());
  EXPECT_EQ(metricsA, slurp(dirB + "/metrics.jsonl"));
  const std::string eventsA = slurp(dirA + "/events.jsonl");
  ASSERT_FALSE(eventsA.empty());
  EXPECT_EQ(eventsA, slurp(dirB + "/events.jsonl"));
}

// The anti-metastability regression fixture: the same flash crowd with
// every defense off. Queueing pushes latency past the op timeout, each
// timeout re-issues work the servers are still executing, and the
// amplification holds goodput down — demonstrably worse than the defended
// run on the same seed. If this fixture ever stops collapsing, the storm
// no longer exercises the defenses and must be re-tuned.
TEST(Overload, CollapseWithoutDefensesRegressionFixture) {
  StormOptions defended;
  defended.seed = 303;
  const StormResult with = runStorm(defended);

  StormOptions exposed = defended;
  exposed.defenses = false;
  const StormResult without = runStorm(exposed);

  // No admission control: nothing sheds, nobody bounces.
  EXPECT_EQ(without.shedTotal, 0u);
  EXPECT_EQ(without.bounces, 0u);
  // The timeout-retry loop engages: at least twice the re-issues of the
  // defended run (which still absorbs some write-path timeouts — the write
  // RTT includes the replication leg the admission gate cannot see).
  EXPECT_GT(without.timeouts, 2 * with.timeouts);
  // ...and goodput degrades through the surge where the defended run held.
  EXPECT_LT(without.surgeGoodput, 0.8 * without.baselineGoodput);
  EXPECT_LT(without.surgeGoodput, with.surgeGoodput);
}

}  // namespace
}  // namespace rc
