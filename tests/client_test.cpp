// Tests for the client library: routing, retries, recovery back-off,
// token-bucket throttling.

#include <gtest/gtest.h>

#include <set>

#include "sim/token_bucket.hpp"
#include "core/cluster.hpp"

namespace rc::client {
namespace {

using sim::msec;
using sim::seconds;
using sim::toSeconds;
using sim::usec;

core::ClusterParams clusterOf(int servers, int clients, int rf = 0) {
  core::ClusterParams p;
  p.servers = servers;
  p.clients = clients;
  p.replicationFactor = rf;
  return p;
}

TEST(TokenBucket, DisabledNeverWaits) {
  sim::TokenBucket tb(0);
  EXPECT_FALSE(tb.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(tb.reserve(seconds(i)), 0);
}

TEST(TokenBucket, SustainedRateMatchesConfig) {
  sim::TokenBucket tb(100);  // 100 ops/s
  sim::SimTime now = 0;
  int issued = 0;
  while (now < seconds(10)) {
    now += tb.reserve(now);
    ++issued;
  }
  EXPECT_NEAR(issued / 10.0, 100.0, 5.0);
}

TEST(TokenBucket, BurstAllowsInitialSpike) {
  sim::TokenBucket tb(10, 5);
  int immediate = 0;
  while (tb.reserve(0) == 0) ++immediate;
  EXPECT_EQ(immediate, 5);
}

TEST(TokenBucket, NegativeRateDisables) {
  sim::TokenBucket tb(-3.0);
  EXPECT_FALSE(tb.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(tb.reserve(seconds(i)), 0);
}

TEST(TokenBucket, BurstBelowOneClampsToOne) {
  // A depth under a single token would make even the first reserve wait;
  // the constructor clamps to 1 so an idle bucket always admits one op.
  sim::TokenBucket tb(10, 0.25);
  EXPECT_EQ(tb.reserve(0), 0);
  EXPECT_GT(tb.reserve(0), 0);
}

TEST(TokenBucket, RefillIsCappedAtBurst) {
  // A long idle gap must not bank more than `burst` tokens: after an hour
  // quiet, exactly `burst` ops go out immediately, the next one waits.
  sim::TokenBucket tb(100, 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(tb.reserve(0), 0);
  EXPECT_GT(tb.reserve(0), 0);
  const sim::SimTime later = seconds(3600);
  sim::TokenBucket tb2(100, 4);
  (void)tb2.reserve(0);  // start the clock with one token spent
  int immediate = 0;
  while (tb2.reserve(later) == 0) ++immediate;
  EXPECT_EQ(immediate, 4);
}

TEST(TokenBucket, FractionalRefillAccumulates) {
  // 2 tokens/s, probed every 100 ms: each refill adds 0.2 of a token.
  // The fractions must accumulate (no integer truncation) so the long-run
  // admitted rate matches the configured rate.
  sim::TokenBucket tb(2.0, 1.0);
  int admitted = 0;
  for (int tick = 0; tick < 100; ++tick) {
    sim::TokenBucket probe = tb;  // peek without committing debt
    if (probe.reserve(msec(100) * tick) == 0) {
      tb.reserve(msec(100) * tick);
      ++admitted;
    }
  }
  // 10 s at 2 tokens/s from a 1-token start: ~21 admitted, and certainly
  // far more than the 10 an integer-truncating refill would allow.
  EXPECT_GE(admitted, 19);
  EXPECT_LE(admitted, 22);
}

TEST(TokenBucket, CommittedDebtDelaysNextReserve) {
  // reserve() always commits the token: a burst of B+2 calls at t=0 leaves
  // the balance at -2, and the waits it returned are monotone increasing —
  // each extra caller queues one token-time behind the previous.
  sim::TokenBucket tb(10, 2);
  EXPECT_EQ(tb.reserve(0), 0);
  EXPECT_EQ(tb.reserve(0), 0);
  const sim::Duration w1 = tb.reserve(0);
  const sim::Duration w2 = tb.reserve(0);
  EXPECT_GT(w1, 0);
  EXPECT_NEAR(toSeconds(w2 - w1), 0.1, 1e-9);  // one token at 10/s
}

TEST(RamCloudClient, ReadAfterWriteSucceeds) {
  core::Cluster c(clusterOf(3, 1));
  const auto table = c.createTable("t");
  auto& rc = *c.clientHost(0).rc;
  bool ok = false;
  rc.write(table, 5, 1000, [&](net::Status s, sim::Duration) {
    ASSERT_EQ(s, net::Status::kOk);
    rc.read(table, 5, [&](net::Status s2, sim::Duration) {
      ok = s2 == net::Status::kOk;
    });
  });
  c.sim().runFor(seconds(1));
  EXPECT_TRUE(ok);
  EXPECT_EQ(rc.stats().opsSucceeded, 2u);
  EXPECT_GE(rc.stats().mapRefreshes, 1u);  // bootstrap fetch
}

TEST(RamCloudClient, RoutesToAllOwners) {
  core::Cluster c(clusterOf(4, 1));
  const auto table = c.createTable("t");
  auto& rc = *c.clientHost(0).rc;
  std::set<server::ServerId> owners;
  for (std::uint64_t k = 0; k < 64; ++k) {
    owners.insert(c.ownerOfKey(table, k));
    rc.write(table, k, 100, [](net::Status s, sim::Duration) {
      ASSERT_EQ(s, net::Status::kOk);
    });
  }
  c.sim().runFor(seconds(1));
  EXPECT_EQ(owners.size(), 4u);  // uniform distribution reached everyone
  for (int i = 0; i < 4; ++i) {
    EXPECT_GT(c.server(i).master->stats().writes, 0u);
  }
}

TEST(RamCloudClient, LatencyIsMicroseconds) {
  core::Cluster c(clusterOf(1, 1));
  const auto table = c.createTable("t");
  auto& rc = *c.clientHost(0).rc;
  c.bulkLoad(table, 100, 1000);
  sim::Duration lat = 0;
  rc.read(table, 1, [&](net::Status s, sim::Duration l) {
    ASSERT_EQ(s, net::Status::kOk);
    lat = l;
  });
  c.sim().runFor(seconds(1));
  EXPECT_GT(lat, usec(5));
  EXPECT_LT(lat, usec(100));
}

TEST(RamCloudClient, OpToDeadServerTimesOutThenFails) {
  core::Cluster c(clusterOf(2, 1));
  const auto table = c.createTable("t");
  auto& rc = *c.clientHost(0).rc;
  // Warm the map first.
  rc.read(table, 1, [](net::Status, sim::Duration) {});
  c.sim().runFor(msec(100));
  c.coord().stopFailureDetector();  // nothing will ever fix the crash
  const auto victim = c.ownerOfKey(table, 7);
  c.crashServer(victim - 1);

  net::Status final = net::Status::kOk;
  rc.read(table, 7, [&](net::Status s, sim::Duration) { final = s; });
  c.sim().runFor(seconds(30));
  EXPECT_NE(final, net::Status::kOk);
  EXPECT_GE(rc.stats().rpcTimeouts, 1u);
}

TEST(RamCloudClient, BlockedOpCompletesAfterRecovery) {
  // Fig. 10 semantics: an op on lost data blocks for the whole recovery
  // and then succeeds; its latency ~= detection + recovery time.
  core::Cluster c(clusterOf(4, 1, /*rf=*/2));
  const auto table = c.createTable("t");
  c.bulkLoad(table, 10'000, 1000);
  auto& rc = *c.clientHost(0).rc;
  rc.read(table, 3, [](net::Status, sim::Duration) {});
  c.sim().runFor(seconds(1));

  const auto victim = c.ownerOfKey(table, 3);
  c.crashServer(victim - 1);
  net::Status final = net::Status::kError;
  sim::Duration lat = 0;
  rc.read(table, 3, [&](net::Status s, sim::Duration l) {
    final = s;
    lat = l;
  });
  for (int i = 0; i < 600 && final == net::Status::kError; ++i) {
    c.sim().runFor(msec(100));
  }
  EXPECT_EQ(final, net::Status::kOk);
  EXPECT_GT(lat, msec(300));  // blocked at least through detection
  ASSERT_FALSE(c.coord().recoveryLog().empty());
  const auto& rec = c.coord().recoveryLog().front();
  // End-to-end op latency is within ~2.5 s of (detection + recovery).
  const auto expect = rec.finishedAt - (rec.detectedAt - msec(450));
  EXPECT_LT(std::abs(lat - expect), seconds(3));
}

TEST(RamCloudClient, StaleMapRefreshedAfterRecovery) {
  core::Cluster c(clusterOf(4, 1, 2));
  const auto table = c.createTable("t");
  c.bulkLoad(table, 5'000, 1000);
  auto& rc = *c.clientHost(0).rc;
  rc.read(table, 1, [](net::Status, sim::Duration) {});
  c.sim().runFor(seconds(1));

  c.crashServer(c.ownerOfKey(table, 1) - 1);
  for (int i = 0; i < 600 && c.coord().recoveryLog().empty(); ++i) {
    c.sim().runFor(msec(100));
  }
  ASSERT_FALSE(c.coord().recoveryLog().empty());

  // A later read must land on the new owner and succeed quickly.
  net::Status s = net::Status::kError;
  sim::Duration lat = 0;
  rc.read(table, 1, [&](net::Status st, sim::Duration l) {
    s = st;
    lat = l;
  });
  c.sim().runFor(seconds(5));
  EXPECT_EQ(s, net::Status::kOk);
  EXPECT_LT(lat, seconds(2));
}

}  // namespace
}  // namespace rc::client
