// Seeded chaos harness: a declarative fault matrix (crashes, a backup death
// mid-recovery, network loss/latency, disk stall/degradation, a gray CPU
// failure, corrupt replica frames) driven against a live cluster under
// write-heavy YCSB load. The invariants (docs/FAULTS.md):
//
//   1. No acked write is lost while concurrent process crashes <= rf - 1.
//   2. Every triggered recovery converges and succeeds.
//   3. The replication-factor deficit returns to zero (background repair).
//   4. The event journal stays well-formed (no dangling open spans; every
//      re-replication span closed with bytes attached).
//   5. Same seed + same plan => bit-identical metrics.jsonl / events.jsonl.

#include <gtest/gtest.h>

#include <array>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "core/cluster.hpp"
#include "fault/fault_injector.hpp"
#include "server/master_service.hpp"

namespace rc {
namespace {

using sim::msec;
using sim::seconds;
using sim::usec;

constexpr std::uint64_t kRecords = 8'000;
constexpr int kServers = 8;
constexpr int kRf = 3;
constexpr int kTableSpan = 6;  // servers 6 and 7 stay tablet-less (pure
                               // backups), so crashing them mid-recovery
                               // attacks durability, not availability

// Transactional-YCSB account pool, outside every other key range (YCSB
// zipfian keys < kRecords, probe keys scan up from kRecords + 1, inserts
// start at kRecords + 2^32). Only transfers ever write these keys, so each
// key's version is an exact count of the transfers applied to it.
constexpr std::uint64_t kTxPoolBase = kRecords * 4;
constexpr std::uint64_t kTxPoolAccounts = 12;

// The standing fault matrix. Two crashes total (== rf - 1): the tablet
// owner at t=2s — timed so it lands *between* a write's durable apply and
// its reply (the RIFL worst case) — then a pure backup 50 ms into the
// ensuing recovery. A window of pure reply loss plus a client stall long
// enough to expire its lease exercise the exactly-once layer; the
// surrounding loss/latency/disk/CPU/corruption faults make every hardened
// path fire on the same run.
fault::FaultPlan chaosPlan() {
  fault::FaultPlan plan;
  plan.networkLoss(seconds(1), 0.02, seconds(1));
  plan.latencySpike(msec(1500), usec(200), seconds(1));
  plan.diskDegrade(seconds(1), /*serverIdx=*/4, /*factor=*/2.0, seconds(2));
  plan.cpuThrottle(seconds(1), /*serverIdx=*/5, /*fraction=*/0.34,
                   seconds(2));
  // Before the 2% loss window opens, so the probe chain on server 1 is
  // guaranteed to have a write in flight when replies start vanishing.
  plan.replyDrop(msec(500), /*serverIdx=*/1, /*probability=*/1.0, msec(400));
  plan.corruptFrames(msec(1800), /*serverIdx=*/2, /*count=*/2);
  plan.crashBeforeReply(seconds(2), /*serverIdx=*/0);
  plan.crashOnRecovery(/*ordinal=*/1, msec(50), /*serverIdx=*/7);
  plan.diskStall(msec(2500), /*serverIdx=*/3, msec(300));
  plan.clientStall(msec(2500), /*clientIdx=*/1, msec(2500));
  return plan;
}

struct ChaosResult {
  bool converged = false;
  std::size_t recoveries = 0;
  bool allRecoveriesSucceeded = false;
  bool allKeysPresent = false;
  double rfDeficitMetric = -1;
  std::size_t openSpans = 0;
  std::size_t rereplicationSpans = 0;
  std::size_t rereplicationWithBytes = 0;
  std::size_t faultEvents = 0;
  std::size_t crashBeforeReplyEvents = 0;
  std::size_t replyDropEvents = 0;
  std::size_t clientStallEvents = 0;
  int crashesInjected = 0;
  std::size_t activeNetworkRules = 0;
  std::uint64_t opsCompleted = 0;
  bool backupCrashLandedMidRecovery = false;
  double duplicatesSuppressed = 0;
  std::uint64_t leasesExpired = 0;
  // Read-your-write checker outcome per client (see RywChecker).
  std::array<std::uint64_t, 2> rywRounds{};
  std::array<std::uint64_t, 2> rywMismatches{};
  bool rywViolation = false;
  // Client 0's write-only probe on the reply-drop server.
  std::uint64_t probeRounds = 0;
  std::uint64_t probeMismatches = 0;
  // Transactional atomicity (docs/TRANSACTIONS.md): account-pool transfer
  // outcomes, the cross-server pair checker, the deliberately orphaned
  // commit, and the end-of-run lock census.
  std::uint64_t txTransfersCommitted = 0;
  std::uint64_t txTransfersAborted = 0;
  std::uint64_t txTransfersUnknown = 0;
  bool txPoolSnapshotOk = false;
  std::uint64_t txPairCommitted = 0;
  std::uint64_t txPairSnapshots = 0;
  std::uint64_t txPairCuts = 0;
  bool txTornRead = false;
  bool txPairPresent = false;
  bool txStragglerSettled = false;
  bool txStragglerCommitted = false;
  std::uint64_t txLocksAtQuiesce = ~0ull;
  double txOrphansResolved = -1;
  double txResolutionsStarted = -1;
};

/// Per-client exactly-once probe on a private key nobody else writes: a
/// chain of conditional writes, each expecting the last version this client
/// itself produced, each followed by a read-your-write verification. If a
/// retried write ever applied twice, the next conditional write (or the
/// read) sees a version this client never acked — under a valid lease
/// that is an exactly-once violation. After an indeterminate terminal
/// failure (retry budget, recovery deadline) or a kVersionMismatch (legal
/// only once the lease expired and the tracking state was reclaimed) the
/// checker resyncs from a read and keeps going.
struct RywChecker {
  struct State {
    std::uint64_t confirmedVersion = 0;
    std::uint64_t rounds = 0;
    std::uint64_t mismatches = 0;
    bool violation = false;
    bool stop = false;
  };

  /// `readBack` false runs a write-only chain (duplicate application still
  /// trips the conditional check as a mismatch); true verifies each acked
  /// write with a read before the next round.
  static std::shared_ptr<State> start(core::Cluster& c, std::uint64_t table,
                                      int clientIdx, std::uint64_t key,
                                      bool readBack = true) {
    auto st = std::make_shared<State>();
    auto& rc = *c.clientHost(clientIdx).rc;
    auto step = std::make_shared<std::function<void()>>();
    auto again = [&c, step](sim::Duration d) {
      c.sim().schedule(d, [step] { (*step)(); });
    };
    auto resync = [&c, &rc, table, key, st, again] {
      rc.readV(table, key,
               [st, again](net::Status s, std::uint64_t v, sim::Duration) {
                 if (st->stop) return;
                 if (s == net::Status::kOk && v != 0) {
                   st->confirmedVersion = v;
                 }
                 again(msec(50));
               });
    };
    *step = [&c, &rc, table, key, st, again, resync, readBack] {
      if (st->stop) return;
      rc.writeV(
          table, key, 64, st->confirmedVersion,
          [&rc, table, key, st, again, resync, readBack](
              net::Status s, std::uint64_t v, sim::Duration) {
            if (st->stop) return;
            if (s == net::Status::kOk) {
              if (!readBack) {
                st->confirmedVersion = v;
                ++st->rounds;
                again(msec(5));
                return;
              }
              rc.readV(table, key,
                       [st, again, v](net::Status rs, std::uint64_t rv,
                                      sim::Duration) {
                         if (st->stop) return;
                         if (rs == net::Status::kOk) {
                           if (rv != v) st->violation = true;
                           st->confirmedVersion = v;
                           ++st->rounds;
                         }
                         again(msec(20));
                       });
              return;
            }
            if (s == net::Status::kVersionMismatch) ++st->mismatches;
            resync();
          });
    };
    (*step)();
    return st;
  }
};

/// Atomicity checker on one fixed cross-server key pair. A serial writer
/// runs conditioned two-key transfers (txRead both, txWrite both, commit)
/// while a snapshot reader on the *other* client runs read-only
/// transactions over the same pair. Versions are per-master monotonic (not
/// per-object counters), so the oracle is the *pairing*, not arithmetic:
/// the writer is the only mutator and every committed transfer rewrites
/// both keys in one transaction, so a given version of keyA coexists with
/// exactly one version of keyB. Every validated transaction — a committed
/// transfer validates its read-set, a read-only snapshot validates both
/// reads — certifies one such consistent cut; two cuts that disagree on
/// the mapping prove a torn (non-atomic) state was observable. Commit
/// outcomes keep tallying after stop() so the end-of-run accounting is
/// complete.
struct TxPairChecker {
  struct State {
    std::uint64_t committed = 0;
    std::uint64_t aborted = 0;
    std::uint64_t unknown = 0;
    std::uint64_t snapshots = 0;
    std::uint64_t cuts = 0;
    bool tornRead = false;
    bool writerInFlight = false;
    bool stop = false;
    std::map<std::uint64_t, std::uint64_t> aToB;
    std::map<std::uint64_t, std::uint64_t> bToA;

    /// Record a validated consistent cut (vA, vB); flag a torn read if it
    /// contradicts a previously certified cut in either direction.
    void certify(std::uint64_t vA, std::uint64_t vB) {
      ++cuts;
      const auto a = aToB.emplace(vA, vB);
      if (!a.second && a.first->second != vB) tornRead = true;
      const auto b = bToA.emplace(vB, vA);
      if (!b.second && b.first->second != vA) tornRead = true;
    }
  };

  static std::shared_ptr<State> start(core::Cluster& c, std::uint64_t table,
                                      int writerClient, int readerClient,
                                      std::uint64_t keyA, std::uint64_t keyB) {
    auto st = std::make_shared<State>();
    startWriter(c, *c.clientHost(writerClient).rc, table, keyA, keyB, st);
    startReader(c, *c.clientHost(readerClient).rc, table, keyA, keyB, st);
    return st;
  }

 private:
  static void startWriter(core::Cluster& c, client::RamCloudClient& rc,
                          std::uint64_t table, std::uint64_t keyA,
                          std::uint64_t keyB, std::shared_ptr<State> st) {
    auto step = std::make_shared<std::function<void()>>();
    auto again = [&c, step](sim::Duration d) {
      c.sim().schedule(d, [step] { (*step)(); });
    };
    *step = [&rc, table, keyA, keyB, st, again] {
      if (st->stop) return;
      st->writerInFlight = true;
      const std::uint64_t tx = rc.txBegin();
      using Obs = std::pair<net::Status, std::uint64_t>;
      auto vA = std::make_shared<Obs>(net::Status::kTimeout, 0);
      auto vB = std::make_shared<Obs>(net::Status::kTimeout, 0);
      auto pending = std::make_shared<int>(2);
      auto readDone = [&rc, table, tx, keyA, keyB, st, again, vA, vB,
                       pending] {
        // A failed read leaves that side unconditioned; still proceed —
        // atomicity holds regardless, only conflict detection weakens.
        if (--*pending > 0) return;
        rc.txWrite(tx, table, keyA, 64);
        rc.txWrite(tx, table, keyB, 64);
        rc.txCommit(tx, [st, again, vA, vB](net::Status s, sim::Duration) {
          // Outcomes count even after stop: end-of-run accounting needs
          // them.
          if (s == net::Status::kOk) {
            ++st->committed;
            // The prepare round re-validated both read versions, so the
            // pre-state this transfer read was a consistent cut.
            if (vA->first == net::Status::kOk &&
                vB->first == net::Status::kOk) {
              st->certify(vA->second, vB->second);
            }
          } else if (s == net::Status::kTxConflict) {
            ++st->aborted;
          } else {
            ++st->unknown;
          }
          st->writerInFlight = false;
          if (!st->stop) again(msec(25));
        });
      };
      rc.txRead(tx, table, keyA,
                [vA, readDone](net::Status s, std::uint64_t v,
                               sim::Duration) mutable {
                  *vA = {s, v};
                  readDone();
                });
      rc.txRead(tx, table, keyB,
                [vB, readDone](net::Status s, std::uint64_t v,
                               sim::Duration) mutable {
                  *vB = {s, v};
                  readDone();
                });
    };
    (*step)();
  }

  static void startReader(core::Cluster& c, client::RamCloudClient& rc,
                          std::uint64_t table, std::uint64_t keyA,
                          std::uint64_t keyB, std::shared_ptr<State> st) {
    auto step = std::make_shared<std::function<void()>>();
    auto again = [&c, step](sim::Duration d) {
      c.sim().schedule(d, [step] { (*step)(); });
    };
    *step = [&rc, table, keyA, keyB, st, again] {
      if (st->stop) return;
      const std::uint64_t tx = rc.txBegin();
      using Obs = std::pair<net::Status, std::uint64_t>;
      auto vA = std::make_shared<Obs>(net::Status::kTimeout, 0);
      auto vB = std::make_shared<Obs>(net::Status::kTimeout, 0);
      auto pending = std::make_shared<int>(2);
      auto maybeCommit = [&rc, tx, st, again, vA, vB, pending] {
        if (--*pending > 0) return;
        rc.txCommit(tx, [st, again, vA, vB](net::Status s, sim::Duration) {
          if (st->stop) return;
          if (s == net::Status::kOk && vA->first == net::Status::kOk &&
              vB->first == net::Status::kOk) {
            ++st->snapshots;
            st->certify(vA->second, vB->second);
          }
          again(msec(40));
        });
      };
      rc.txRead(tx, table, keyA,
                [vA, maybeCommit](net::Status s, std::uint64_t v,
                                  sim::Duration) mutable {
                  *vA = {s, v};
                  maybeCommit();
                });
      rc.txRead(tx, table, keyB,
                [vB, maybeCommit](net::Status s, std::uint64_t v,
                                  sim::Duration) mutable {
                  *vB = {s, v};
                  maybeCommit();
                });
    };
    (*step)();
  }
};

ChaosResult runChaos(std::uint64_t seed, const std::string& exportDir = "") {
  core::ClusterParams p;
  p.servers = kServers;
  p.clients = 2;
  p.seed = seed;
  p.replicationFactor = kRf;
  // Short lease so client 1's 2.5 s stall runs out the clock: the sweep
  // expires it, masters reclaim its tracking state, and the client has to
  // reopen on resume.
  p.coordinator.leaseTerm = seconds(2);
  core::Cluster c(p);
  const auto table = c.createTable("chaos", kTableSpan);
  c.bulkLoad(table, kRecords, 256);

  // Write-heavy closed-loop load for the whole fault window, with the
  // transactional variant on: RMWs run as single-key minitransactions and
  // ~5% of ops are two-key transfers inside a private account pool.
  ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::A(kRecords);
  spec.valueBytes = 256;
  ycsb::YcsbClientParams ycsbParams;
  ycsbParams.transactionalRmw = true;
  ycsbParams.transferProportion = 0.05;
  ycsbParams.transferKeyBase = kTxPoolBase;
  ycsbParams.transferAccounts = kTxPoolAccounts;
  c.configureYcsb(table, spec, ycsbParams);

  // Account-pool transfer ledger: definite commits, definite aborts, and
  // outcomes the client couldn't learn (settled by orphan resolution).
  struct TxPoolLedger {
    std::uint64_t committed = 0;
    std::uint64_t aborted = 0;
    std::uint64_t unknown = 0;
  };
  auto pool = std::make_shared<TxPoolLedger>();
  for (int i = 0; i < c.clientCount(); ++i) {
    c.clientHost(i).ycsb->onTransferComplete =
        [pool](std::uint64_t, std::uint64_t, net::Status s) {
          if (s == net::Status::kOk) {
            ++pool->committed;
          } else if (s == net::Status::kTxConflict) {
            ++pool->aborted;
          } else {
            ++pool->unknown;
          }
        };
  }
  c.startYcsb();

  // Exactly-once probes on keys outside the YCSB range. The write-only
  // probe runs on client 0 (which never stalls, so its lease never lapses)
  // against a key owned by server 1 — the reply-drop target — so the drop
  // window is guaranteed to catch a tracked write and force a suppressed
  // duplicate. The two read-your-write checkers live away from the drop.
  auto keyOwnedBy = [&c, table](int serverIdx, std::uint64_t from) {
    std::uint64_t k = from;
    while (c.ownerOfKey(table, k) != c.serverNodeId(serverIdx)) ++k;
    return k;
  };
  const std::uint64_t probeKey = keyOwnedBy(1, kRecords + 1);
  const std::uint64_t key0 = keyOwnedBy(2, probeKey + 1);
  const std::uint64_t key1 = keyOwnedBy(3, key0 + 1);
  auto probe =
      RywChecker::start(c, table, 0, probeKey, /*readBack=*/false);
  std::array<std::shared_ptr<RywChecker::State>, 2> ryw = {
      RywChecker::start(c, table, 0, key0),
      RywChecker::start(c, table, 1, key1),
  };

  // Transactional pair checker: keyA on server 0 (the crash-before-reply
  // target, so commits straddle its recovery) and keyB on server 5 (the
  // CPU-throttled one). Pre-seeded so both keys exist before the first
  // snapshot (absence would validate as version 0).
  const std::uint64_t pairA = keyOwnedBy(0, key1 + 1);
  const std::uint64_t pairB = keyOwnedBy(5, pairA + 1);
  {
    int seeded = 0;
    auto& rc0 = *c.clientHost(0).rc;
    rc0.write(table, pairA, 64,
              [&seeded](net::Status, sim::Duration) { ++seeded; });
    rc0.write(table, pairB, 64,
              [&seeded](net::Status, sim::Duration) { ++seeded; });
    while (seeded < 2) c.sim().runFor(msec(10));
  }
  auto pair = TxPairChecker::start(c, table, /*writerClient=*/0,
                                   /*readerClient=*/1, pairA, pairB);

  fault::FaultInjector injector(c, chaosPlan(),
                                c.sim().rng().fork(0xFA171));
  injector.arm();

  c.sim().runFor(seconds(6));
  c.stopYcsb();

  auto rfDeficit = [&c] {
    double d = 0;
    for (int i = 0; i < c.serverCount(); ++i) {
      if (c.serverAlive(i)) {
        d += static_cast<double>(
            c.server(i).master->replicaManager().rfDeficit());
      }
    }
    return d;
  };

  // Healthy map: every tablet served by a live server. A recovery master
  // dying just after its partition completes leaves tablets pointed at a
  // corpse until its own failure detection fires — wait the cascade out.
  auto mapHealthy = [&c] {
    for (const auto& e : c.coord().tabletMap().entries()) {
      if (e.state != coordinator::TabletMap::TabletState::kUp) return false;
      bool alive = false;
      for (int i = 0; i < c.serverCount(); ++i) {
        alive |= c.serverAlive(i) && c.serverNodeId(i) == e.tablet.owner;
      }
      if (!alive) return false;
    }
    return true;
  };

  // Converge: recoveries done, background repair drained the RF deficit.
  const sim::SimTime deadline = c.sim().now() + seconds(300);
  while (c.sim().now() < deadline &&
         (c.coord().recoveryInProgress() || c.coord().recoveryLog().empty() ||
          rfDeficit() > 0 || !mapHealthy())) {
    c.sim().runFor(msec(100));
  }
  probe->stop = true;
  for (auto& st : ryw) st->stop = true;
  pair->stop = true;
  c.sim().runFor(seconds(2));  // let trailing RPCs and spans settle

  // Drain the pair writer's in-flight commit (if any) so the straggler
  // below cannot lose its votes to a leftover lock.
  const sim::SimTime drainDeadline = c.sim().now() + seconds(30);
  while (c.sim().now() < drainDeadline && pair->writerInFlight) {
    c.sim().runFor(msec(50));
  }

  // Deterministic orphan: commit a transfer on the pair, then stall the
  // client past its lease before the decision round can leave the client.
  // The prepares hold locks on two masters, the lease runs out, the sweep
  // hands the orphan to the coordinator, and recovery-driven resolution
  // must commit it (both participants voted yes). The client's own
  // decisions go out when the stall lifts, find the locks already
  // resolved, and get durable acks — it must still report commit.
  auto stragglerStatus = std::make_shared<net::Status>(net::Status::kTimeout);
  auto stragglerDone = std::make_shared<bool>(false);
  {
    auto& rc0 = *c.clientHost(0).rc;
    const std::uint64_t tx = rc0.txBegin();
    rc0.txWrite(tx, table, pairA, 64);
    rc0.txWrite(tx, table, pairB, 64);
    rc0.txCommit(tx, [stragglerStatus, stragglerDone](net::Status s,
                                                      sim::Duration) {
      *stragglerStatus = s;
      *stragglerDone = true;
    });
  }
  for (int i = 0; i < c.clientCount(); ++i) {
    c.clientHost(i).rc->stallFor(seconds(6));
  }

  // Quiesce: every lock drained, no resolution active, every commit
  // outcome reported. A lock still held past the deadline would be a
  // prepared-but-undecided transaction that survived recovery plus lease
  // expiry — exactly the state the transaction layer forbids.
  auto locksHeld = [&c] {
    std::uint64_t n = 0;
    for (int i = 0; i < c.serverCount(); ++i) {
      if (c.serverAlive(i)) {
        n += c.server(i).master->txLockTable().locksHeld();
      }
    }
    return n;
  };
  const sim::SimTime txDeadline = c.sim().now() + seconds(60);
  while (c.sim().now() < txDeadline &&
         (locksHeld() != 0 || c.coord().txResolutionInProgress() ||
          !*stragglerDone || pair->writerInFlight)) {
    c.sim().runFor(msec(100));
  }
  c.sim().runFor(seconds(3));  // stall lifted; retried decisions drain

  // Final pair state over plain reads (all transactions are settled). The
  // readback is certified against the cut history: if the straggler's
  // resolved commit had applied to only one key, the final state would
  // contradict a previously certified mapping.
  std::map<std::uint64_t, std::uint64_t> finalVersions;
  {
    auto& rc0 = *c.clientHost(0).rc;
    int pendingReads = 0;
    auto readKey = [&rc0, table, &finalVersions,
                    &pendingReads](std::uint64_t k) {
      ++pendingReads;
      rc0.readV(table, k,
                [&finalVersions, &pendingReads, k](
                    net::Status s, std::uint64_t v, sim::Duration) {
                  if (s == net::Status::kOk) finalVersions[k] = v;
                  --pendingReads;
                });
    };
    readKey(pairA);
    readKey(pairB);
    const sim::SimTime readDeadline = c.sim().now() + seconds(30);
    while (c.sim().now() < readDeadline && pendingReads > 0) {
      c.sim().runFor(msec(20));
    }
  }

  // At quiesce a read-only transaction across the whole account pool must
  // validate: nothing is concurrent anymore, so the only way it can abort
  // is a lock that never drained or phantom version churn.
  bool poolSnapshotOk = false;
  {
    auto& rc0 = *c.clientHost(0).rc;
    const std::uint64_t tx = rc0.txBegin();
    auto pendingReads =
        std::make_shared<int>(static_cast<int>(kTxPoolAccounts));
    bool snapDone = false;
    for (std::uint64_t i = 0; i < kTxPoolAccounts; ++i) {
      rc0.txRead(tx, table, kTxPoolBase + i,
                 [&rc0, tx, pendingReads, &poolSnapshotOk, &snapDone](
                     net::Status, std::uint64_t, sim::Duration) {
                   if (--*pendingReads > 0) return;
                   rc0.txCommit(tx, [&poolSnapshotOk, &snapDone](
                                        net::Status s, sim::Duration) {
                     poolSnapshotOk = s == net::Status::kOk;
                     snapDone = true;
                   });
                 });
    }
    const sim::SimTime snapDeadline = c.sim().now() + seconds(20);
    while (c.sim().now() < snapDeadline && !snapDone) {
      c.sim().runFor(msec(20));
    }
  }

  ChaosResult r;
  r.converged = !c.coord().recoveryInProgress() &&
                !c.coord().recoveryLog().empty() && rfDeficit() == 0 &&
                mapHealthy();
  r.recoveries = c.coord().recoveryLog().size();
  r.allRecoveriesSucceeded = true;
  for (const auto& rec : c.coord().recoveryLog()) {
    r.allRecoveriesSucceeded = r.allRecoveriesSucceeded && rec.succeeded;
  }
  r.allKeysPresent = c.verifyAllKeysPresent(table, kRecords);
  r.rfDeficitMetric = c.metrics().value("cluster.rf_deficit");
  r.openSpans = c.journal().openSpans();
  for (const auto* s : c.journal().spansNamed("rereplication")) {
    ++r.rereplicationSpans;
    if (!s->open && !s->abandoned && s->bytes > 0) {
      ++r.rereplicationWithBytes;
    }
  }
  r.faultEvents = c.journal().spansNamed("fault_crash_server").size();
  r.crashBeforeReplyEvents =
      c.journal().spansNamed("fault_crash_before_reply").size();
  r.replyDropEvents = c.journal().spansNamed("fault_reply_drop").size();
  r.clientStallEvents = c.journal().spansNamed("fault_client_stall").size();
  r.crashesInjected = injector.crashesInjected();
  r.activeNetworkRules = injector.activeNetworkRules();
  for (int i = 0; i < c.clientCount(); ++i) {
    r.opsCompleted += c.clientHost(i).ycsb->stats().opsCompleted;
  }
  r.duplicatesSuppressed =
      c.metrics().value("cluster.linearize.duplicates_suppressed");
  r.leasesExpired = c.coord().leasesExpired();
  for (std::size_t i = 0; i < ryw.size(); ++i) {
    r.rywRounds[i] = ryw[i]->rounds;
    r.rywMismatches[i] = ryw[i]->mismatches;
    r.rywViolation = r.rywViolation || ryw[i]->violation;
  }
  r.probeRounds = probe->rounds;
  r.probeMismatches = probe->mismatches;
  r.txTransfersCommitted = pool->committed;
  r.txTransfersAborted = pool->aborted;
  r.txTransfersUnknown = pool->unknown;
  r.txPoolSnapshotOk = poolSnapshotOk;
  r.txPairCommitted = pair->committed;
  r.txPairSnapshots = pair->snapshots;
  r.txStragglerSettled = *stragglerDone;
  r.txStragglerCommitted = *stragglerStatus == net::Status::kOk;
  const auto itA = finalVersions.find(pairA);
  const auto itB = finalVersions.find(pairB);
  r.txPairPresent = itA != finalVersions.end() && itB != finalVersions.end();
  if (r.txPairPresent) pair->certify(itA->second, itB->second);
  r.txPairCuts = pair->cuts;
  r.txTornRead = pair->tornRead;
  r.txLocksAtQuiesce = locksHeld();
  r.txOrphansResolved = c.metrics().value("cluster.tx.orphans_resolved");
  r.txResolutionsStarted =
      c.metrics().value("coordinator.tx.resolutions_started");
  // The conditional crash must actually land inside the first recovery's
  // window — otherwise the mid-recovery failover paths went unexercised.
  for (const auto& inj : injector.injections()) {
    if (inj.kind != fault::FaultKind::kCrashServer || inj.server != 7) {
      continue;
    }
    for (const auto& rec : c.coord().recoveryLog()) {
      if (rec.crashed == c.serverNodeId(0) && inj.at >= rec.detectedAt &&
          inj.at <= rec.finishedAt) {
        r.backupCrashLandedMidRecovery = true;
      }
    }
  }
  if (!exportDir.empty()) {
    EXPECT_TRUE(c.exportMetrics(exportDir));
  }
  if (std::getenv("CHAOS_DEBUG") != nullptr) {
    for (int i = 0; i < c.serverCount(); ++i) {
      if (!c.serverAlive(i)) { std::printf("srv%d dead\n", i); continue; }
      const auto& u = c.server(i).master->unackedRpcResults();
      std::printf("srv%d suppressed=%llu completions=%llu recovered=%llu\n",
                  i, (unsigned long long)u.duplicatesSuppressed(),
                  (unsigned long long)u.completionsRecorded(),
                  (unsigned long long)u.recordsRecovered());
    }
    for (int i = 0; i < c.clientCount(); ++i) {
      std::printf("cli%d retries(write)=%llu retries(read)=%llu lease=%llu "
                  "expiries=%llu\n",
                  i,
                  (unsigned long long)c.clientHost(i).rc->retriesForOpcode(
                      net::Opcode::kWrite),
                  (unsigned long long)c.clientHost(i).rc->retriesForOpcode(
                      net::Opcode::kRead),
                  (unsigned long long)c.clientHost(i).rc->clientId(),
                  (unsigned long long)c.clientHost(i).rc->stats().leaseExpiries);
    }
    for (std::size_t i = 0; i < ryw.size(); ++i) {
      std::printf("ryw%zu rounds=%llu mismatches=%llu key=%llu\n", i,
                  (unsigned long long)ryw[i]->rounds,
                  (unsigned long long)ryw[i]->mismatches,
                  (unsigned long long)(i == 0 ? key0 : key1));
    }
  }
  return r;
}

void expectInvariants(const ChaosResult& r) {
  EXPECT_TRUE(r.converged);
  // The tablet owner's crash must recover; the pure backup's crash may or
  // may not produce its own (empty) recovery record.
  EXPECT_GE(r.recoveries, 1u);
  EXPECT_TRUE(r.allRecoveriesSucceeded);
  EXPECT_TRUE(r.allKeysPresent);
  EXPECT_EQ(r.rfDeficitMetric, 0.0);
  EXPECT_EQ(r.openSpans, 0u);
  // Losing a backup under rf=3 forces re-replication, and it must carry
  // payload bytes.
  EXPECT_GT(r.rereplicationSpans, 0u);
  EXPECT_GT(r.rereplicationWithBytes, 0u);
  // Server 0 dies via the crash-before-reply hook, server 7 via a plain
  // crash: one journal span of each kind, two crashes total (== rf - 1).
  EXPECT_EQ(r.faultEvents, 1u);
  EXPECT_EQ(r.crashBeforeReplyEvents, 1u);
  EXPECT_EQ(r.replyDropEvents, 1u);
  EXPECT_EQ(r.clientStallEvents, 1u);
  EXPECT_EQ(r.crashesInjected, 2);
  EXPECT_EQ(r.activeNetworkRules, 0u);  // every network fault healed
  EXPECT_GT(r.opsCompleted, 0u);
  EXPECT_TRUE(r.backupCrashLandedMidRecovery);
  // Exactly-once layer under fire: lost replies forced retries that were
  // answered from completion records, not re-executed...
  EXPECT_GE(r.duplicatesSuppressed, 1.0);
  // ...the stalled client's lease ran out and was reclaimed...
  EXPECT_GE(r.leasesExpired, 1u);
  // ...and every acked conditional write applied exactly once. Client 0
  // held its lease throughout, so it may never observe a version it did
  // not produce; client 1's mismatches (if any) are the documented
  // post-expiry loss of the guarantee.
  EXPECT_FALSE(r.rywViolation);
  EXPECT_EQ(r.rywMismatches[0], 0u);
  EXPECT_GT(r.rywRounds[0], 0u);
  EXPECT_GT(r.rywRounds[1], 0u);
  // The write-only probe holds a valid lease throughout: a version mismatch
  // there would mean a retried write applied twice.
  EXPECT_EQ(r.probeMismatches, 0u);
  EXPECT_GT(r.probeRounds, 0u);
  // Transactions under the same fault matrix (docs/TRANSACTIONS.md): the
  // account pool saw real transfer traffic and validated as a consistent
  // whole once quiesced...
  EXPECT_GT(r.txTransfersCommitted, 0u);
  EXPECT_TRUE(r.txPoolSnapshotOk);
  // ...every consistent cut certified on the cross-server pair — committed
  // transfers' validated read-sets, validated read-only snapshots, and the
  // final readback — agrees on the version pairing (no torn state was
  // ever observable)...
  EXPECT_GT(r.txPairCommitted, 0u);
  EXPECT_GT(r.txPairSnapshots, 0u);
  EXPECT_GT(r.txPairCuts, 0u);
  EXPECT_FALSE(r.txTornRead);
  EXPECT_TRUE(r.txPairPresent);
  // ...the deliberately orphaned commit was resolved server-side (and the
  // stalled client, once resumed, agreed it committed)...
  EXPECT_TRUE(r.txStragglerSettled);
  EXPECT_TRUE(r.txStragglerCommitted);
  EXPECT_GE(r.txOrphansResolved, 1.0);
  EXPECT_GE(r.txResolutionsStarted, 1.0);
  // ...and no lock survived recovery + lease expiry + quiesce.
  EXPECT_EQ(r.txLocksAtQuiesce, 0u);
}

class ChaosSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSeed, InvariantsHoldUnderFaultMatrix) {
  expectInvariants(runChaos(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Matrix, ChaosSeed,
                         ::testing::Values(101ull, 202ull, 303ull));

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// A participant crashes mid-commit *during orphan resolution*: the client
// fires txCommit and immediately stalls past its lease, so the prepares
// hold locks on two masters but the decision round never leaves the
// client. The lease sweep hands the orphan to the coordinator; the
// resolution's commit decision lands on server 0, applies durably, and the
// armed hook kills the server before the reply. Recovery must replay the
// decision (not resurrect the lock), the surviving participant's counter
// must show the resolution, and both keys must advance together.
TEST(ChaosTx, ParticipantCrashMidCommitResolvesOrphan) {
  core::ClusterParams p;
  p.servers = 6;
  p.clients = 1;
  p.seed = 7;
  p.replicationFactor = kRf;
  p.coordinator.leaseTerm = seconds(2);
  core::Cluster c(p);
  const auto table = c.createTable("txchaos", 4);
  c.bulkLoad(table, 1'000, 128);

  auto keyOwnedBy = [&c, table](int serverIdx, std::uint64_t from) {
    std::uint64_t k = from;
    while (c.ownerOfKey(table, k) != c.serverNodeId(serverIdx)) ++k;
    return k;
  };
  const std::uint64_t keyA = keyOwnedBy(0, 2'000);
  const std::uint64_t keyB = keyOwnedBy(1, keyA + 1);

  // Seed both accounts, capturing the versions the masters assigned
  // (versions are per-master monotonic, not per-object counters).
  auto& rc = *c.clientHost(0).rc;
  int seeded = 0;
  std::uint64_t seedA = 0;
  std::uint64_t seedB = 0;
  rc.writeV(table, keyA, 64, 0,
            [&seeded, &seedA](net::Status, std::uint64_t v, sim::Duration) {
              seedA = v;
              ++seeded;
            });
  rc.writeV(table, keyB, 64, 0,
            [&seeded, &seedB](net::Status, std::uint64_t v, sim::Duration) {
              seedB = v;
              ++seeded;
            });
  while (seeded < 2) c.sim().runFor(msec(10));

  // No other traffic targets server 0, so the next hooked apply there is
  // the resolution's commit decision.
  c.server(0).master->armCrashBeforeReply([&c] { c.crashServer(0); });

  auto status = std::make_shared<net::Status>(net::Status::kTimeout);
  auto done = std::make_shared<bool>(false);
  const std::uint64_t tx = rc.txBegin();
  rc.txWrite(tx, table, keyA, 64);
  rc.txWrite(tx, table, keyB, 64);
  rc.txCommit(tx, [status, done](net::Status s, sim::Duration) {
    *status = s;
    *done = true;
  });
  rc.stallFor(seconds(8));  // prepares are already out; decisions are not

  auto locksHeld = [&c] {
    std::uint64_t n = 0;
    for (int i = 0; i < c.serverCount(); ++i) {
      if (c.serverAlive(i)) {
        n += c.server(i).master->txLockTable().locksHeld();
      }
    }
    return n;
  };
  const sim::SimTime deadline = c.sim().now() + seconds(120);
  while (c.sim().now() < deadline &&
         (!*done || c.coord().recoveryInProgress() ||
          c.coord().recoveryLog().empty() ||
          c.coord().txResolutionInProgress() || locksHeld() != 0)) {
    c.sim().runFor(msec(100));
  }
  c.sim().runFor(seconds(2));

  EXPECT_TRUE(*done);
  EXPECT_EQ(*status, net::Status::kOk);
  EXPECT_FALSE(c.coord().txResolutionInProgress());
  EXPECT_GE(c.coord().txResolutionsStarted(), 1u);
  EXPECT_GE(c.coord().txResolutionsCommitted(), 1u);
  EXPECT_EQ(locksHeld(), 0u);
  EXPECT_GE(c.metrics().value("cluster.tx.orphans_resolved"), 1.0);
  ASSERT_GE(c.coord().recoveryLog().size(), 1u);
  for (const auto& rec : c.coord().recoveryLog()) {
    EXPECT_TRUE(rec.succeeded);
  }

  // All-or-nothing: the pair's only transaction was resolved to commit, so
  // *both* accounts must have advanced past their seeded versions. (A
  // participant losing the decision would leave its key at the seed —
  // a partial commit.)
  std::uint64_t vA = 0;
  std::uint64_t vB = 0;
  int got = 0;
  rc.readV(table, keyA,
           [&vA, &got](net::Status s, std::uint64_t v, sim::Duration) {
             if (s == net::Status::kOk) vA = v;
             ++got;
           });
  rc.readV(table, keyB,
           [&vB, &got](net::Status s, std::uint64_t v, sim::Duration) {
             if (s == net::Status::kOk) vB = v;
             ++got;
           });
  const sim::SimTime readDeadline = c.sim().now() + seconds(10);
  while (c.sim().now() < readDeadline && got < 2) c.sim().runFor(msec(10));
  EXPECT_EQ(got, 2);
  EXPECT_GT(seedA, 0u);
  EXPECT_GT(seedB, 0u);
  EXPECT_GT(vA, seedA);
  EXPECT_GT(vB, seedB);

  // Exported for CI's orphan-resolution grep gate.
  EXPECT_TRUE(c.exportMetrics(::testing::TempDir() + "chaos_tx"));
}

TEST(Chaos, SameSeedSamePlanIsBitIdentical) {
  const std::string dirA = ::testing::TempDir() + "chaos_replay_a";
  const std::string dirB = ::testing::TempDir() + "chaos_replay_b";
  const auto a = runChaos(777, dirA);
  const auto b = runChaos(777, dirB);
  expectInvariants(a);
  expectInvariants(b);

  const std::string metricsA = slurp(dirA + "/metrics.jsonl");
  const std::string metricsB = slurp(dirB + "/metrics.jsonl");
  ASSERT_FALSE(metricsA.empty());
  EXPECT_EQ(metricsA, metricsB);

  const std::string eventsA = slurp(dirA + "/events.jsonl");
  const std::string eventsB = slurp(dirB + "/events.jsonl");
  ASSERT_FALSE(eventsA.empty());
  EXPECT_EQ(eventsA, eventsB);
}

}  // namespace
}  // namespace rc
