// Seeded chaos harness: a declarative fault matrix (crashes, a backup death
// mid-recovery, network loss/latency, disk stall/degradation, a gray CPU
// failure, corrupt replica frames) driven against a live cluster under
// write-heavy YCSB load. The invariants (docs/FAULTS.md):
//
//   1. No acked write is lost while concurrent process crashes <= rf - 1.
//   2. Every triggered recovery converges and succeeds.
//   3. The replication-factor deficit returns to zero (background repair).
//   4. The event journal stays well-formed (no dangling open spans; every
//      re-replication span closed with bytes attached).
//   5. Same seed + same plan => bit-identical metrics.jsonl / events.jsonl.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/cluster.hpp"
#include "fault/fault_injector.hpp"
#include "server/master_service.hpp"

namespace rc {
namespace {

using sim::msec;
using sim::seconds;
using sim::usec;

constexpr std::uint64_t kRecords = 8'000;
constexpr int kServers = 8;
constexpr int kRf = 3;
constexpr int kTableSpan = 6;  // servers 6 and 7 stay tablet-less (pure
                               // backups), so crashing them mid-recovery
                               // attacks durability, not availability

// The standing fault matrix. Two crashes total (== rf - 1): the tablet
// owner at t=2s, then a pure backup 50 ms into the ensuing recovery. The
// surrounding loss/latency/disk/CPU/corruption faults make every hardened
// path fire on the same run.
fault::FaultPlan chaosPlan() {
  fault::FaultPlan plan;
  plan.networkLoss(seconds(1), 0.02, seconds(1));
  plan.latencySpike(msec(1500), usec(200), seconds(1));
  plan.diskDegrade(seconds(1), /*serverIdx=*/4, /*factor=*/2.0, seconds(2));
  plan.cpuThrottle(seconds(1), /*serverIdx=*/5, /*fraction=*/0.34,
                   seconds(2));
  plan.corruptFrames(msec(1800), /*serverIdx=*/2, /*count=*/2);
  plan.crashServer(seconds(2), /*serverIdx=*/0);
  plan.crashOnRecovery(/*ordinal=*/1, msec(50), /*serverIdx=*/7);
  plan.diskStall(msec(2500), /*serverIdx=*/3, msec(300));
  return plan;
}

struct ChaosResult {
  bool converged = false;
  std::size_t recoveries = 0;
  bool allRecoveriesSucceeded = false;
  bool allKeysPresent = false;
  double rfDeficitMetric = -1;
  std::size_t openSpans = 0;
  std::size_t rereplicationSpans = 0;
  std::size_t rereplicationWithBytes = 0;
  std::size_t faultEvents = 0;
  int crashesInjected = 0;
  std::size_t activeNetworkRules = 0;
  std::uint64_t opsCompleted = 0;
  bool backupCrashLandedMidRecovery = false;
};

ChaosResult runChaos(std::uint64_t seed, const std::string& exportDir = "") {
  core::ClusterParams p;
  p.servers = kServers;
  p.clients = 2;
  p.seed = seed;
  p.replicationFactor = kRf;
  core::Cluster c(p);
  const auto table = c.createTable("chaos", kTableSpan);
  c.bulkLoad(table, kRecords, 256);

  // Write-heavy closed-loop load for the whole fault window.
  ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::A(kRecords);
  spec.valueBytes = 256;
  c.configureYcsb(table, spec, ycsb::YcsbClientParams{});
  c.startYcsb();

  fault::FaultInjector injector(c, chaosPlan(),
                                c.sim().rng().fork(0xFA171));
  injector.arm();

  c.sim().runFor(seconds(6));
  c.stopYcsb();

  auto rfDeficit = [&c] {
    double d = 0;
    for (int i = 0; i < c.serverCount(); ++i) {
      if (c.serverAlive(i)) {
        d += static_cast<double>(
            c.server(i).master->replicaManager().rfDeficit());
      }
    }
    return d;
  };

  // Healthy map: every tablet served by a live server. A recovery master
  // dying just after its partition completes leaves tablets pointed at a
  // corpse until its own failure detection fires — wait the cascade out.
  auto mapHealthy = [&c] {
    for (const auto& e : c.coord().tabletMap().entries()) {
      if (e.state != coordinator::TabletMap::TabletState::kUp) return false;
      bool alive = false;
      for (int i = 0; i < c.serverCount(); ++i) {
        alive |= c.serverAlive(i) && c.serverNodeId(i) == e.tablet.owner;
      }
      if (!alive) return false;
    }
    return true;
  };

  // Converge: recoveries done, background repair drained the RF deficit.
  const sim::SimTime deadline = c.sim().now() + seconds(300);
  while (c.sim().now() < deadline &&
         (c.coord().recoveryInProgress() || c.coord().recoveryLog().empty() ||
          rfDeficit() > 0 || !mapHealthy())) {
    c.sim().runFor(msec(100));
  }
  c.sim().runFor(seconds(2));  // let trailing RPCs and spans settle

  ChaosResult r;
  r.converged = !c.coord().recoveryInProgress() &&
                !c.coord().recoveryLog().empty() && rfDeficit() == 0 &&
                mapHealthy();
  r.recoveries = c.coord().recoveryLog().size();
  r.allRecoveriesSucceeded = true;
  for (const auto& rec : c.coord().recoveryLog()) {
    r.allRecoveriesSucceeded = r.allRecoveriesSucceeded && rec.succeeded;
  }
  r.allKeysPresent = c.verifyAllKeysPresent(table, kRecords);
  r.rfDeficitMetric = c.metrics().value("cluster.rf_deficit");
  r.openSpans = c.journal().openSpans();
  for (const auto* s : c.journal().spansNamed("rereplication")) {
    ++r.rereplicationSpans;
    if (!s->open && !s->abandoned && s->bytes > 0) {
      ++r.rereplicationWithBytes;
    }
  }
  r.faultEvents = c.journal().spansNamed("fault_crash_server").size();
  r.crashesInjected = injector.crashesInjected();
  r.activeNetworkRules = injector.activeNetworkRules();
  for (int i = 0; i < c.clientCount(); ++i) {
    r.opsCompleted += c.clientHost(i).ycsb->stats().opsCompleted;
  }
  // The conditional crash must actually land inside the first recovery's
  // window — otherwise the mid-recovery failover paths went unexercised.
  for (const auto& inj : injector.injections()) {
    if (inj.kind != fault::FaultKind::kCrashServer || inj.server != 7) {
      continue;
    }
    for (const auto& rec : c.coord().recoveryLog()) {
      if (rec.crashed == c.serverNodeId(0) && inj.at >= rec.detectedAt &&
          inj.at <= rec.finishedAt) {
        r.backupCrashLandedMidRecovery = true;
      }
    }
  }
  if (!exportDir.empty()) {
    EXPECT_TRUE(c.exportMetrics(exportDir));
  }
  return r;
}

void expectInvariants(const ChaosResult& r) {
  EXPECT_TRUE(r.converged);
  // The tablet owner's crash must recover; the pure backup's crash may or
  // may not produce its own (empty) recovery record.
  EXPECT_GE(r.recoveries, 1u);
  EXPECT_TRUE(r.allRecoveriesSucceeded);
  EXPECT_TRUE(r.allKeysPresent);
  EXPECT_EQ(r.rfDeficitMetric, 0.0);
  EXPECT_EQ(r.openSpans, 0u);
  // Losing a backup under rf=3 forces re-replication, and it must carry
  // payload bytes.
  EXPECT_GT(r.rereplicationSpans, 0u);
  EXPECT_GT(r.rereplicationWithBytes, 0u);
  EXPECT_EQ(r.faultEvents, 2u);  // both crashes journaled
  EXPECT_EQ(r.crashesInjected, 2);
  EXPECT_EQ(r.activeNetworkRules, 0u);  // every network fault healed
  EXPECT_GT(r.opsCompleted, 0u);
  EXPECT_TRUE(r.backupCrashLandedMidRecovery);
}

class ChaosSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSeed, InvariantsHoldUnderFaultMatrix) {
  expectInvariants(runChaos(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Matrix, ChaosSeed,
                         ::testing::Values(101ull, 202ull, 303ull));

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(Chaos, SameSeedSamePlanIsBitIdentical) {
  const std::string dirA = ::testing::TempDir() + "chaos_replay_a";
  const std::string dirB = ::testing::TempDir() + "chaos_replay_b";
  const auto a = runChaos(777, dirA);
  const auto b = runChaos(777, dirB);
  expectInvariants(a);
  expectInvariants(b);

  const std::string metricsA = slurp(dirA + "/metrics.jsonl");
  const std::string metricsB = slurp(dirB + "/metrics.jsonl");
  ASSERT_FALSE(metricsA.empty());
  EXPECT_EQ(metricsA, metricsB);

  const std::string eventsA = slurp(dirA + "/events.jsonl");
  const std::string eventsB = slurp(dirB + "/events.jsonl");
  ASSERT_FALSE(eventsA.empty());
  EXPECT_EQ(eventsA, eventsB);
}

}  // namespace
}  // namespace rc
