// Seeded chaos harness: a declarative fault matrix (crashes, a backup death
// mid-recovery, network loss/latency, disk stall/degradation, a gray CPU
// failure, corrupt replica frames) driven against a live cluster under
// write-heavy YCSB load. The invariants (docs/FAULTS.md):
//
//   1. No acked write is lost while concurrent process crashes <= rf - 1.
//   2. Every triggered recovery converges and succeeds.
//   3. The replication-factor deficit returns to zero (background repair).
//   4. The event journal stays well-formed (no dangling open spans; every
//      re-replication span closed with bytes attached).
//   5. Same seed + same plan => bit-identical metrics.jsonl / events.jsonl.

#include <gtest/gtest.h>

#include <array>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>

#include "core/cluster.hpp"
#include "fault/fault_injector.hpp"
#include "server/master_service.hpp"

namespace rc {
namespace {

using sim::msec;
using sim::seconds;
using sim::usec;

constexpr std::uint64_t kRecords = 8'000;
constexpr int kServers = 8;
constexpr int kRf = 3;
constexpr int kTableSpan = 6;  // servers 6 and 7 stay tablet-less (pure
                               // backups), so crashing them mid-recovery
                               // attacks durability, not availability

// The standing fault matrix. Two crashes total (== rf - 1): the tablet
// owner at t=2s — timed so it lands *between* a write's durable apply and
// its reply (the RIFL worst case) — then a pure backup 50 ms into the
// ensuing recovery. A window of pure reply loss plus a client stall long
// enough to expire its lease exercise the exactly-once layer; the
// surrounding loss/latency/disk/CPU/corruption faults make every hardened
// path fire on the same run.
fault::FaultPlan chaosPlan() {
  fault::FaultPlan plan;
  plan.networkLoss(seconds(1), 0.02, seconds(1));
  plan.latencySpike(msec(1500), usec(200), seconds(1));
  plan.diskDegrade(seconds(1), /*serverIdx=*/4, /*factor=*/2.0, seconds(2));
  plan.cpuThrottle(seconds(1), /*serverIdx=*/5, /*fraction=*/0.34,
                   seconds(2));
  // Before the 2% loss window opens, so the probe chain on server 1 is
  // guaranteed to have a write in flight when replies start vanishing.
  plan.replyDrop(msec(500), /*serverIdx=*/1, /*probability=*/1.0, msec(400));
  plan.corruptFrames(msec(1800), /*serverIdx=*/2, /*count=*/2);
  plan.crashBeforeReply(seconds(2), /*serverIdx=*/0);
  plan.crashOnRecovery(/*ordinal=*/1, msec(50), /*serverIdx=*/7);
  plan.diskStall(msec(2500), /*serverIdx=*/3, msec(300));
  plan.clientStall(msec(2500), /*clientIdx=*/1, msec(2500));
  return plan;
}

struct ChaosResult {
  bool converged = false;
  std::size_t recoveries = 0;
  bool allRecoveriesSucceeded = false;
  bool allKeysPresent = false;
  double rfDeficitMetric = -1;
  std::size_t openSpans = 0;
  std::size_t rereplicationSpans = 0;
  std::size_t rereplicationWithBytes = 0;
  std::size_t faultEvents = 0;
  std::size_t crashBeforeReplyEvents = 0;
  std::size_t replyDropEvents = 0;
  std::size_t clientStallEvents = 0;
  int crashesInjected = 0;
  std::size_t activeNetworkRules = 0;
  std::uint64_t opsCompleted = 0;
  bool backupCrashLandedMidRecovery = false;
  double duplicatesSuppressed = 0;
  std::uint64_t leasesExpired = 0;
  // Read-your-write checker outcome per client (see RywChecker).
  std::array<std::uint64_t, 2> rywRounds{};
  std::array<std::uint64_t, 2> rywMismatches{};
  bool rywViolation = false;
  // Client 0's write-only probe on the reply-drop server.
  std::uint64_t probeRounds = 0;
  std::uint64_t probeMismatches = 0;
};

/// Per-client exactly-once probe on a private key nobody else writes: a
/// chain of conditional writes, each expecting the last version this client
/// itself produced, each followed by a read-your-write verification. If a
/// retried write ever applied twice, the next conditional write (or the
/// read) sees a version this client never acked — under a valid lease
/// that is an exactly-once violation. After an indeterminate terminal
/// failure (retry budget, recovery deadline) or a kVersionMismatch (legal
/// only once the lease expired and the tracking state was reclaimed) the
/// checker resyncs from a read and keeps going.
struct RywChecker {
  struct State {
    std::uint64_t confirmedVersion = 0;
    std::uint64_t rounds = 0;
    std::uint64_t mismatches = 0;
    bool violation = false;
    bool stop = false;
  };

  /// `readBack` false runs a write-only chain (duplicate application still
  /// trips the conditional check as a mismatch); true verifies each acked
  /// write with a read before the next round.
  static std::shared_ptr<State> start(core::Cluster& c, std::uint64_t table,
                                      int clientIdx, std::uint64_t key,
                                      bool readBack = true) {
    auto st = std::make_shared<State>();
    auto& rc = *c.clientHost(clientIdx).rc;
    auto step = std::make_shared<std::function<void()>>();
    auto again = [&c, step](sim::Duration d) {
      c.sim().schedule(d, [step] { (*step)(); });
    };
    auto resync = [&c, &rc, table, key, st, again] {
      rc.readV(table, key,
               [st, again](net::Status s, std::uint64_t v, sim::Duration) {
                 if (st->stop) return;
                 if (s == net::Status::kOk && v != 0) {
                   st->confirmedVersion = v;
                 }
                 again(msec(50));
               });
    };
    *step = [&c, &rc, table, key, st, again, resync, readBack] {
      if (st->stop) return;
      rc.writeV(
          table, key, 64, st->confirmedVersion,
          [&rc, table, key, st, again, resync, readBack](
              net::Status s, std::uint64_t v, sim::Duration) {
            if (st->stop) return;
            if (s == net::Status::kOk) {
              if (!readBack) {
                st->confirmedVersion = v;
                ++st->rounds;
                again(msec(5));
                return;
              }
              rc.readV(table, key,
                       [st, again, v](net::Status rs, std::uint64_t rv,
                                      sim::Duration) {
                         if (st->stop) return;
                         if (rs == net::Status::kOk) {
                           if (rv != v) st->violation = true;
                           st->confirmedVersion = v;
                           ++st->rounds;
                         }
                         again(msec(20));
                       });
              return;
            }
            if (s == net::Status::kVersionMismatch) ++st->mismatches;
            resync();
          });
    };
    (*step)();
    return st;
  }
};

ChaosResult runChaos(std::uint64_t seed, const std::string& exportDir = "") {
  core::ClusterParams p;
  p.servers = kServers;
  p.clients = 2;
  p.seed = seed;
  p.replicationFactor = kRf;
  // Short lease so client 1's 2.5 s stall runs out the clock: the sweep
  // expires it, masters reclaim its tracking state, and the client has to
  // reopen on resume.
  p.coordinator.leaseTerm = seconds(2);
  core::Cluster c(p);
  const auto table = c.createTable("chaos", kTableSpan);
  c.bulkLoad(table, kRecords, 256);

  // Write-heavy closed-loop load for the whole fault window.
  ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::A(kRecords);
  spec.valueBytes = 256;
  c.configureYcsb(table, spec, ycsb::YcsbClientParams{});
  c.startYcsb();

  // Exactly-once probes on keys outside the YCSB range. The write-only
  // probe runs on client 0 (which never stalls, so its lease never lapses)
  // against a key owned by server 1 — the reply-drop target — so the drop
  // window is guaranteed to catch a tracked write and force a suppressed
  // duplicate. The two read-your-write checkers live away from the drop.
  auto keyOwnedBy = [&c, table](int serverIdx, std::uint64_t from) {
    std::uint64_t k = from;
    while (c.ownerOfKey(table, k) != c.serverNodeId(serverIdx)) ++k;
    return k;
  };
  const std::uint64_t probeKey = keyOwnedBy(1, kRecords + 1);
  const std::uint64_t key0 = keyOwnedBy(2, probeKey + 1);
  const std::uint64_t key1 = keyOwnedBy(3, key0 + 1);
  auto probe =
      RywChecker::start(c, table, 0, probeKey, /*readBack=*/false);
  std::array<std::shared_ptr<RywChecker::State>, 2> ryw = {
      RywChecker::start(c, table, 0, key0),
      RywChecker::start(c, table, 1, key1),
  };

  fault::FaultInjector injector(c, chaosPlan(),
                                c.sim().rng().fork(0xFA171));
  injector.arm();

  c.sim().runFor(seconds(6));
  c.stopYcsb();

  auto rfDeficit = [&c] {
    double d = 0;
    for (int i = 0; i < c.serverCount(); ++i) {
      if (c.serverAlive(i)) {
        d += static_cast<double>(
            c.server(i).master->replicaManager().rfDeficit());
      }
    }
    return d;
  };

  // Healthy map: every tablet served by a live server. A recovery master
  // dying just after its partition completes leaves tablets pointed at a
  // corpse until its own failure detection fires — wait the cascade out.
  auto mapHealthy = [&c] {
    for (const auto& e : c.coord().tabletMap().entries()) {
      if (e.state != coordinator::TabletMap::TabletState::kUp) return false;
      bool alive = false;
      for (int i = 0; i < c.serverCount(); ++i) {
        alive |= c.serverAlive(i) && c.serverNodeId(i) == e.tablet.owner;
      }
      if (!alive) return false;
    }
    return true;
  };

  // Converge: recoveries done, background repair drained the RF deficit.
  const sim::SimTime deadline = c.sim().now() + seconds(300);
  while (c.sim().now() < deadline &&
         (c.coord().recoveryInProgress() || c.coord().recoveryLog().empty() ||
          rfDeficit() > 0 || !mapHealthy())) {
    c.sim().runFor(msec(100));
  }
  probe->stop = true;
  for (auto& st : ryw) st->stop = true;
  c.sim().runFor(seconds(2));  // let trailing RPCs and spans settle

  ChaosResult r;
  r.converged = !c.coord().recoveryInProgress() &&
                !c.coord().recoveryLog().empty() && rfDeficit() == 0 &&
                mapHealthy();
  r.recoveries = c.coord().recoveryLog().size();
  r.allRecoveriesSucceeded = true;
  for (const auto& rec : c.coord().recoveryLog()) {
    r.allRecoveriesSucceeded = r.allRecoveriesSucceeded && rec.succeeded;
  }
  r.allKeysPresent = c.verifyAllKeysPresent(table, kRecords);
  r.rfDeficitMetric = c.metrics().value("cluster.rf_deficit");
  r.openSpans = c.journal().openSpans();
  for (const auto* s : c.journal().spansNamed("rereplication")) {
    ++r.rereplicationSpans;
    if (!s->open && !s->abandoned && s->bytes > 0) {
      ++r.rereplicationWithBytes;
    }
  }
  r.faultEvents = c.journal().spansNamed("fault_crash_server").size();
  r.crashBeforeReplyEvents =
      c.journal().spansNamed("fault_crash_before_reply").size();
  r.replyDropEvents = c.journal().spansNamed("fault_reply_drop").size();
  r.clientStallEvents = c.journal().spansNamed("fault_client_stall").size();
  r.crashesInjected = injector.crashesInjected();
  r.activeNetworkRules = injector.activeNetworkRules();
  for (int i = 0; i < c.clientCount(); ++i) {
    r.opsCompleted += c.clientHost(i).ycsb->stats().opsCompleted;
  }
  r.duplicatesSuppressed =
      c.metrics().value("cluster.linearize.duplicates_suppressed");
  r.leasesExpired = c.coord().leasesExpired();
  for (std::size_t i = 0; i < ryw.size(); ++i) {
    r.rywRounds[i] = ryw[i]->rounds;
    r.rywMismatches[i] = ryw[i]->mismatches;
    r.rywViolation = r.rywViolation || ryw[i]->violation;
  }
  r.probeRounds = probe->rounds;
  r.probeMismatches = probe->mismatches;
  // The conditional crash must actually land inside the first recovery's
  // window — otherwise the mid-recovery failover paths went unexercised.
  for (const auto& inj : injector.injections()) {
    if (inj.kind != fault::FaultKind::kCrashServer || inj.server != 7) {
      continue;
    }
    for (const auto& rec : c.coord().recoveryLog()) {
      if (rec.crashed == c.serverNodeId(0) && inj.at >= rec.detectedAt &&
          inj.at <= rec.finishedAt) {
        r.backupCrashLandedMidRecovery = true;
      }
    }
  }
  if (!exportDir.empty()) {
    EXPECT_TRUE(c.exportMetrics(exportDir));
  }
  if (std::getenv("CHAOS_DEBUG") != nullptr) {
    for (int i = 0; i < c.serverCount(); ++i) {
      if (!c.serverAlive(i)) { std::printf("srv%d dead\n", i); continue; }
      const auto& u = c.server(i).master->unackedRpcResults();
      std::printf("srv%d suppressed=%llu completions=%llu recovered=%llu\n",
                  i, (unsigned long long)u.duplicatesSuppressed(),
                  (unsigned long long)u.completionsRecorded(),
                  (unsigned long long)u.recordsRecovered());
    }
    for (int i = 0; i < c.clientCount(); ++i) {
      std::printf("cli%d retries(write)=%llu retries(read)=%llu lease=%llu "
                  "expiries=%llu\n",
                  i,
                  (unsigned long long)c.clientHost(i).rc->retriesForOpcode(
                      net::Opcode::kWrite),
                  (unsigned long long)c.clientHost(i).rc->retriesForOpcode(
                      net::Opcode::kRead),
                  (unsigned long long)c.clientHost(i).rc->clientId(),
                  (unsigned long long)c.clientHost(i).rc->stats().leaseExpiries);
    }
    for (std::size_t i = 0; i < ryw.size(); ++i) {
      std::printf("ryw%zu rounds=%llu mismatches=%llu key=%llu\n", i,
                  (unsigned long long)ryw[i]->rounds,
                  (unsigned long long)ryw[i]->mismatches,
                  (unsigned long long)(i == 0 ? key0 : key1));
    }
  }
  return r;
}

void expectInvariants(const ChaosResult& r) {
  EXPECT_TRUE(r.converged);
  // The tablet owner's crash must recover; the pure backup's crash may or
  // may not produce its own (empty) recovery record.
  EXPECT_GE(r.recoveries, 1u);
  EXPECT_TRUE(r.allRecoveriesSucceeded);
  EXPECT_TRUE(r.allKeysPresent);
  EXPECT_EQ(r.rfDeficitMetric, 0.0);
  EXPECT_EQ(r.openSpans, 0u);
  // Losing a backup under rf=3 forces re-replication, and it must carry
  // payload bytes.
  EXPECT_GT(r.rereplicationSpans, 0u);
  EXPECT_GT(r.rereplicationWithBytes, 0u);
  // Server 0 dies via the crash-before-reply hook, server 7 via a plain
  // crash: one journal span of each kind, two crashes total (== rf - 1).
  EXPECT_EQ(r.faultEvents, 1u);
  EXPECT_EQ(r.crashBeforeReplyEvents, 1u);
  EXPECT_EQ(r.replyDropEvents, 1u);
  EXPECT_EQ(r.clientStallEvents, 1u);
  EXPECT_EQ(r.crashesInjected, 2);
  EXPECT_EQ(r.activeNetworkRules, 0u);  // every network fault healed
  EXPECT_GT(r.opsCompleted, 0u);
  EXPECT_TRUE(r.backupCrashLandedMidRecovery);
  // Exactly-once layer under fire: lost replies forced retries that were
  // answered from completion records, not re-executed...
  EXPECT_GE(r.duplicatesSuppressed, 1.0);
  // ...the stalled client's lease ran out and was reclaimed...
  EXPECT_GE(r.leasesExpired, 1u);
  // ...and every acked conditional write applied exactly once. Client 0
  // held its lease throughout, so it may never observe a version it did
  // not produce; client 1's mismatches (if any) are the documented
  // post-expiry loss of the guarantee.
  EXPECT_FALSE(r.rywViolation);
  EXPECT_EQ(r.rywMismatches[0], 0u);
  EXPECT_GT(r.rywRounds[0], 0u);
  EXPECT_GT(r.rywRounds[1], 0u);
  // The write-only probe holds a valid lease throughout: a version mismatch
  // there would mean a retried write applied twice.
  EXPECT_EQ(r.probeMismatches, 0u);
  EXPECT_GT(r.probeRounds, 0u);
}

class ChaosSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSeed, InvariantsHoldUnderFaultMatrix) {
  expectInvariants(runChaos(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Matrix, ChaosSeed,
                         ::testing::Values(101ull, 202ull, 303ull));

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(Chaos, SameSeedSamePlanIsBitIdentical) {
  const std::string dirA = ::testing::TempDir() + "chaos_replay_a";
  const std::string dirB = ::testing::TempDir() + "chaos_replay_b";
  const auto a = runChaos(777, dirA);
  const auto b = runChaos(777, dirB);
  expectInvariants(a);
  expectInvariants(b);

  const std::string metricsA = slurp(dirA + "/metrics.jsonl");
  const std::string metricsB = slurp(dirB + "/metrics.jsonl");
  ASSERT_FALSE(metricsA.empty());
  EXPECT_EQ(metricsA, metricsB);

  const std::string eventsA = slurp(dirA + "/events.jsonl");
  const std::string eventsB = slurp(dirB + "/events.jsonl");
  ASSERT_FALSE(eventsA.empty());
  EXPECT_EQ(eventsA, eventsB);
}

}  // namespace
}  // namespace rc
