// Tests for the YCSB workload generator and closed-loop client.

#include <gtest/gtest.h>

#include <map>

#include "core/cluster.hpp"
#include "ycsb/workload.hpp"
#include "ycsb/ycsb_client.hpp"

namespace rc::ycsb {
namespace {

using sim::msec;
using sim::seconds;

TEST(WorkloadSpec, PresetsMatchPaper) {
  EXPECT_DOUBLE_EQ(WorkloadSpec::A().readProportion, 0.5);
  EXPECT_DOUBLE_EQ(WorkloadSpec::A().updateProportion, 0.5);
  EXPECT_DOUBLE_EQ(WorkloadSpec::B().readProportion, 0.95);
  EXPECT_DOUBLE_EQ(WorkloadSpec::C().readProportion, 1.0);
  EXPECT_EQ(WorkloadSpec::C().valueBytes, 1000u);  // 1 KB records
  EXPECT_EQ(WorkloadSpec::C().distribution,
            WorkloadSpec::Distribution::kUniform);
}

TEST(KeyChooser, UniformCoversKeySpace) {
  WorkloadSpec s = WorkloadSpec::C(100);
  KeyChooser kc(s, sim::Rng(1));
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto k = kc.next();
    ASSERT_LT(k, 100u);
    ++counts[k];
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 250);
}

TEST(KeyChooser, ZipfianIsSkewedAndRankOrdered) {
  WorkloadSpec s = WorkloadSpec::C(10'000);
  s.distribution = WorkloadSpec::Distribution::kZipfian;
  KeyChooser kc(s, sim::Rng(2));
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 200000; ++i) ++counts[kc.next()];
  // Key 0 is the hottest; top key gets far more than uniform share (20).
  EXPECT_GT(counts[0], 10000);
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[1000]);
}

TEST(KeyChooser, ZipfianStaysInRange) {
  WorkloadSpec s = WorkloadSpec::C(50);
  s.distribution = WorkloadSpec::Distribution::kZipfian;
  KeyChooser kc(s, sim::Rng(3));
  for (int i = 0; i < 100000; ++i) ASSERT_LT(kc.next(), 50u);
}

core::ClusterParams tiny() {
  core::ClusterParams p;
  p.servers = 2;
  p.clients = 1;
  return p;
}

TEST(YcsbClient, RespectsOpsTarget) {
  core::Cluster c(tiny());
  const auto table = c.createTable("t");
  c.bulkLoad(table, 1000, 1000);
  YcsbClientParams yp;
  yp.opsTarget = 500;
  c.configureYcsb(table, WorkloadSpec::C(1000), yp);
  bool doneFired = false;
  c.clientHost(0).ycsb->onDone = [&] { doneFired = true; };
  c.startYcsb();
  c.sim().runFor(seconds(10));
  EXPECT_TRUE(doneFired);
  EXPECT_TRUE(c.clientHost(0).ycsb->done());
  EXPECT_EQ(c.clientHost(0).ycsb->stats().opsCompleted, 500u);
}

TEST(YcsbClient, MixMatchesProportions) {
  core::Cluster c(tiny());
  const auto table = c.createTable("t");
  c.bulkLoad(table, 1000, 1000);
  YcsbClientParams yp;
  yp.opsTarget = 4000;
  c.configureYcsb(table, WorkloadSpec::B(1000), yp);
  c.startYcsb();
  c.sim().runFor(seconds(30));
  const auto& st = c.clientHost(0).ycsb->stats();
  ASSERT_EQ(st.opsCompleted, 4000u);
  EXPECT_NEAR(static_cast<double>(st.updates) / 4000.0, 0.05, 0.015);
}

TEST(YcsbClient, ThrottleCapsRate) {
  core::Cluster c(tiny());
  const auto table = c.createTable("t");
  c.bulkLoad(table, 1000, 1000);
  YcsbClientParams yp;
  yp.throttleOpsPerSec = 200;
  c.configureYcsb(table, WorkloadSpec::C(1000), yp);
  c.startYcsb();
  c.sim().runFor(seconds(10));
  c.stopYcsb();
  const auto ops = c.clientHost(0).ycsb->stats().opsCompleted;
  EXPECT_NEAR(static_cast<double>(ops) / 10.0, 200.0, 20.0);
}

TEST(YcsbClient, UnthrottledRateMatchesClosedLoopModel) {
  // cycle ~= client overhead (26 us) + RTT + service: ~23-28 Kop/s.
  core::Cluster c(tiny());
  const auto table = c.createTable("t");
  c.bulkLoad(table, 1000, 1000);
  c.configureYcsb(table, WorkloadSpec::C(1000), YcsbClientParams{});
  c.startYcsb();
  c.sim().runFor(seconds(5));
  c.stopYcsb();
  const double rate =
      static_cast<double>(c.clientHost(0).ycsb->stats().opsCompleted) / 5.0;
  EXPECT_GT(rate, 18'000);
  EXPECT_LT(rate, 33'000);
}

TEST(YcsbClient, KeyPredicateRestrictsKeys) {
  core::Cluster c(tiny());
  const auto table = c.createTable("t");
  c.bulkLoad(table, 1000, 1000);
  const auto victim = c.serverNodeId(0);
  YcsbClientParams yp;
  yp.opsTarget = 300;
  yp.keyPredicate = [&c, table, victim](std::uint64_t k) {
    return c.ownerOfKey(table, k) == victim;
  };
  c.configureYcsb(table, WorkloadSpec::C(1000), yp);
  c.startYcsb();
  c.sim().runFor(seconds(10));
  EXPECT_EQ(c.server(0).master->stats().reads, 300u);
  EXPECT_EQ(c.server(1).master->stats().reads, 0u);
}

TEST(WorkloadSpec, DAndFPresets) {
  const auto d = WorkloadSpec::D();
  EXPECT_DOUBLE_EQ(d.readProportion, 0.95);
  EXPECT_DOUBLE_EQ(d.insertProportion, 0.05);
  EXPECT_EQ(d.distribution, WorkloadSpec::Distribution::kLatest);
  const auto f = WorkloadSpec::F();
  EXPECT_DOUBLE_EQ(f.readProportion, 0.5);
  EXPECT_DOUBLE_EQ(f.readModifyWriteProportion, 0.5);
}

TEST(KeyChooser, LatestPrefersNewestKeys) {
  WorkloadSpec s = WorkloadSpec::D(10'000);
  KeyChooser kc(s, sim::Rng(4));
  std::uint64_t newestHits = 0;
  const int draws = 50'000;
  for (int i = 0; i < draws; ++i) {
    if (kc.next(10'000) >= 9'900) ++newestHits;  // newest 1 %
  }
  // Zipfian-at-latest: the newest 1% draws far more than 1% of requests.
  EXPECT_GT(newestHits, draws / 20);
}

// Golden sequence: pins the zipfian generator's exact arithmetic. Any
// change to the draw path (e.g. reordering the pow() hoist, switching
// float widths) shifts these values and must be caught — seeded runs
// across the whole simulator depend on them bit-for-bit.
TEST(KeyChooser, ZipfianGoldenSequenceIsStable) {
  WorkloadSpec s = WorkloadSpec::C(10'000);
  s.distribution = WorkloadSpec::Distribution::kZipfian;
  KeyChooser kc(s, sim::Rng(7));
  const std::uint64_t golden[32] = {
      1818, 427,  1728, 36,   5927, 85, 136,  771,   //
      90,   1,    95,   4867, 1988, 2,  2030, 1005,  //
      5,    9090, 0,    839,  0,    0,  7854, 4,     //
      0,    50,   4,    7516, 0,    3,  2079, 1,
  };
  for (std::uint64_t expected : golden) {
    EXPECT_EQ(kc.next(), expected);
  }
}

TEST(YcsbClient, WorkloadDInsertsGrowKeyspace) {
  core::Cluster c(tiny());
  const auto table = c.createTable("t");
  c.bulkLoad(table, 2'000, 1000);
  YcsbClientParams yp;
  yp.opsTarget = 3'000;
  c.configureYcsb(table, WorkloadSpec::D(2'000), yp);
  c.startYcsb();
  c.sim().runFor(seconds(30));
  const auto& st = c.clientHost(0).ycsb->stats();
  ASSERT_EQ(st.opsCompleted, 3'000u);
  EXPECT_NEAR(static_cast<double>(st.inserts) / 3'000.0, 0.05, 0.02);
  EXPECT_EQ(st.failures, 0u);
  // Inserted keys are really stored (beyond the preloaded id range).
  std::uint64_t beyond = 0;
  for (int i = 0; i < c.serverCount(); ++i) {
    c.server(i).master->objectMap().forEach(
        [&](const hash::Key& k, const hash::ObjectLocation&) {
          if (k.keyId >= 2'000) ++beyond;
        });
  }
  EXPECT_EQ(beyond, st.inserts);
}

TEST(YcsbClient, WorkloadFReadModifyWrites) {
  core::Cluster c(tiny());
  const auto table = c.createTable("t");
  c.bulkLoad(table, 1'000, 1000);
  YcsbClientParams yp;
  yp.opsTarget = 2'000;
  c.configureYcsb(table, WorkloadSpec::F(1'000), yp);
  c.startYcsb();
  c.sim().runFor(seconds(30));
  const auto& st = c.clientHost(0).ycsb->stats();
  ASSERT_EQ(st.opsCompleted, 2'000u);
  EXPECT_NEAR(static_cast<double>(st.readModifyWrites) / 2'000.0, 0.5, 0.05);
  // An RMW is a read followed by a write at the server.
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  for (int i = 0; i < c.serverCount(); ++i) {
    reads += c.server(i).master->stats().reads;
    writes += c.server(i).master->stats().writes;
  }
  EXPECT_EQ(reads, st.reads + st.readModifyWrites);
  EXPECT_EQ(writes, st.readModifyWrites);
}

TEST(YcsbClient, StopHaltsIssuing) {
  core::Cluster c(tiny());
  const auto table = c.createTable("t");
  c.bulkLoad(table, 1000, 1000);
  c.configureYcsb(table, WorkloadSpec::C(1000), YcsbClientParams{});
  c.startYcsb();
  c.sim().runFor(seconds(1));
  c.stopYcsb();
  const auto ops = c.clientHost(0).ycsb->stats().opsCompleted;
  c.sim().runFor(seconds(1));
  EXPECT_EQ(c.clientHost(0).ycsb->stats().opsCompleted, ops);
}

}  // namespace
}  // namespace rc::ycsb
