// Tail-latency attribution tests (docs/SLO.md): windowed quantiles and
// burn rates, exemplar capture, flight-recorder arming, abandonSpan
// forensics and end-to-end determinism of slo.jsonl.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/slo_tracker.hpp"
#include "obs/time_trace.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "ycsb/workload.hpp"
#include "ycsb/ycsb_client.hpp"

using namespace rc;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

}  // namespace

// ----- SloTracker unit behaviour --------------------------------------------

TEST(SloTracker, WindowedQuantilesMatchReferenceDigest) {
  sim::Simulation sim;
  obs::SloTracker slo(sim);
  const int cls = slo.declareClass("t/read", obs::SloTarget{sim::msec(10), 0});

  // Same stream into the tracker (spread over 3 nodes) and into a
  // reference digest: the class-level window must merge the per-node
  // streams without loss.
  sim::LatencyDigest ref;
  for (int i = 1; i <= 900; ++i) {
    const sim::Duration v = sim::usec(i);
    ref.add(v);
    slo.record(cls, /*node=*/i % 3, /*span=*/static_cast<std::uint64_t>(i), v,
               nullptr);
  }
  slo.finish();

  ASSERT_EQ(slo.rows().size(), 1u);
  const auto& row = slo.rows()[0];
  EXPECT_EQ(row.count, 900u);
  EXPECT_EQ(row.p50, ref.percentile(0.5));
  EXPECT_EQ(row.p99, ref.percentile(0.99));
  EXPECT_EQ(row.p999, ref.percentile(0.999));

  // Per-node digests partition the stream: counts sum to the class count.
  ASSERT_EQ(row.perNode.size(), 3u);
  std::uint64_t nodeSum = 0;
  for (const auto& nq : row.perNode) nodeSum += nq.count;
  EXPECT_EQ(nodeSum, row.count);
}

TEST(SloTracker, BurnRateAndBreachArithmetic) {
  sim::Simulation sim;
  obs::SloTracker slo(sim);
  // p99 target 100us: budget is 1% of requests over target.
  const int cls =
      slo.declareClass("t/read", obs::SloTarget{sim::usec(100), 0});

  // 98 under target, 2 over -> over-fraction 2% -> burn 2.0 -> breached.
  for (int i = 0; i < 98; ++i) {
    slo.record(cls, 0, 0, sim::usec(50), nullptr);
  }
  slo.record(cls, 0, 0, sim::usec(500), nullptr);
  slo.record(cls, 0, 0, sim::usec(500), nullptr);
  slo.finish();

  ASSERT_EQ(slo.rows().size(), 1u);
  const auto& row = slo.rows()[0];
  EXPECT_EQ(row.overP99, 2u);
  EXPECT_DOUBLE_EQ(row.burnRate99, 2.0);
  EXPECT_DOUBLE_EQ(row.burnRate, 2.0);
  EXPECT_TRUE(row.breached);
  EXPECT_EQ(slo.breachedWindows(), 1u);
}

TEST(SloTracker, WindowEdgesSplitExactlyAtBoundaries) {
  sim::Simulation sim;
  obs::SloTracker slo(sim);  // 1 s windows aligned to epoch 0
  const int cls = slo.declareClass("t/read", obs::SloTarget{sim::msec(1), 0});

  // Last representable instant of window 0...
  sim.runFor(sim::seconds(1) - 1);
  ASSERT_EQ(slo.windowIndexAt(sim.now()), 0u);
  slo.record(cls, 0, 1, sim::usec(10), nullptr);
  // ...and the first instant of window 1.
  sim.runFor(1);
  ASSERT_EQ(slo.windowIndexAt(sim.now()), 1u);
  slo.record(cls, 0, 2, sim::usec(10), nullptr);
  slo.record(cls, 0, 3, sim::usec(10), nullptr);
  slo.finish();

  ASSERT_EQ(slo.rows().size(), 2u);
  EXPECT_EQ(slo.rows()[0].window, 0u);
  EXPECT_EQ(slo.rows()[0].count, 1u);
  EXPECT_EQ(slo.rows()[1].window, 1u);
  EXPECT_EQ(slo.rows()[1].count, 2u);
}

TEST(SloTracker, LazyRotationSkipsIdleWindows) {
  sim::Simulation sim;
  obs::SloTracker slo(sim);
  const int cls = slo.declareClass("t/read", obs::SloTarget{sim::msec(1), 0});

  slo.record(cls, 0, 1, sim::usec(10), nullptr);
  sim.runFor(sim::seconds(5));
  slo.record(cls, 0, 2, sim::usec(10), nullptr);
  slo.finish();

  // Windows 1..4 saw no traffic and cost nothing: only 0 and 5 emit rows.
  ASSERT_EQ(slo.rows().size(), 2u);
  EXPECT_EQ(slo.rows()[0].window, 0u);
  EXPECT_EQ(slo.rows()[1].window, 5u);
}

TEST(SloTracker, ExemplarsKeepSlowestRequestsWithStages) {
  sim::Simulation sim;
  obs::SloTracker slo(sim, sim::seconds(1), /*exemplarsPerWindow=*/2);
  const int cls = slo.declareClass("t/read", obs::SloTarget{sim::usec(50), 0});

  obs::TimeTrace::SpanDetail detail;
  detail.total = sim::usec(400);
  detail.numStages = 2;
  detail.stages[0] =
      obs::TimeTrace::StageRec{obs::TimeTrace::Stage::kNetworkRequest,
                               sim::usec(100), 3, 1};
  detail.stages[1] =
      obs::TimeTrace::StageRec{obs::TimeTrace::Stage::kWorkerService,
                               sim::usec(300), -1, 1};

  for (int i = 1; i <= 10; ++i) {
    slo.record(cls, 0, static_cast<std::uint64_t>(i), sim::usec(10 * i),
               i == 7 ? &detail : nullptr);
  }
  slo.finish();

  ASSERT_EQ(slo.rows().size(), 1u);
  const auto& ex = slo.rows()[0].exemplars;
  ASSERT_EQ(ex.size(), 2u);  // k = 2: the two slowest survive
  EXPECT_EQ(ex[0].span, 10u);
  EXPECT_EQ(ex[0].latency, sim::usec(100));
  EXPECT_EQ(ex[1].span, 9u);
  // The span that carried a SpanDetail was evicted by slower requests; the
  // retained ones carry whatever detail they were recorded with.
  EXPECT_EQ(ex[0].detail.numStages, 0);
}

TEST(SloTracker, UnknownAndNegativeClassIdsAreNoops) {
  sim::Simulation sim;
  obs::SloTracker slo(sim);
  EXPECT_EQ(slo.classId("nope"), -1);
  slo.record(-1, 0, 0, sim::usec(10), nullptr);  // must not crash
  slo.finish();
  EXPECT_EQ(slo.rows().size(), 0u);
  EXPECT_FALSE(slo.enabled());
}

// ----- abandonSpan forensics ------------------------------------------------

TEST(FlightRecorder, AbandonSpanFlushesRetainedStampsToRing) {
  sim::Simulation sim;
  obs::TimeTrace trace(sim);
  obs::FlightRecorder flight(64);
  trace.setFlightRecorder(&flight);

  const std::uint64_t span = trace.beginSpan(/*tenant=*/5);
  sim.runFor(sim::usec(10));
  trace.stamp(span, obs::TimeTrace::Stage::kNetworkRequest, /*queueDepth=*/3,
              /*node=*/2);
  sim.runFor(sim::usec(20));
  trace.stamp(span, obs::TimeTrace::Stage::kDispatchWait, /*queueDepth=*/7,
              /*node=*/2);
  trace.abandonSpan(span);

  // Two live stamps + the same two re-emitted as abandoned forensics.
  const auto entries = flight.entries();
  ASSERT_EQ(entries.size(), 4u);
  int abandonedCount = 0;
  for (const auto& e : entries) {
    EXPECT_EQ(e.span, span);
    EXPECT_EQ(e.tenant, 5);
    if (e.abandoned) ++abandonedCount;
  }
  EXPECT_EQ(abandonedCount, 2);
  // The re-emission preserves per-stage queue depths and elapsed charges.
  EXPECT_EQ(entries[2].queueDepth, 3);
  EXPECT_EQ(entries[2].elapsed, sim::usec(10));
  EXPECT_EQ(entries[3].queueDepth, 7);
  EXPECT_EQ(entries[3].elapsed, sim::usec(20));
  // Forensic flush must not count as a completed span.
  EXPECT_EQ(trace.spansCompleted(), 0u);
}

TEST(FlightRecorder, RingOverwritesOldestAndNeverAllocates) {
  obs::FlightRecorder flight(4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    flight.record(obs::FlightRecorder::Entry{0, i, 0, false, 0, -1, -1, 0});
  }
  const auto entries = flight.entries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries.front().span, 7u);  // oldest retained
  EXPECT_EQ(entries.back().span, 10u);
  EXPECT_EQ(flight.recorded(), 10u);
  EXPECT_FALSE(flight.triggered());
}

// ----- cluster end-to-end ---------------------------------------------------

namespace {

struct E2eOutcome {
  std::string sloJsonl;
  bool flightTriggered = false;
  std::uint64_t breached = 0;
  std::vector<obs::SloTracker::WindowRow> rows;
};

/// Small YCSB-B cluster with the SLO tracker live; optionally stalls
/// server 1's disk mid-run. Small segments + a small backup buffer pool so
/// a stalled disk genuinely back-pressures replication (closed frames pile
/// up unflushed, the pool fills, write acks gate) instead of hiding behind
/// the default 48 MB of DRAM buffering. Deterministic given (seed, stall).
E2eOutcome runE2e(std::uint64_t seed, bool stall, bool tightTargets) {
  core::ClusterParams p;
  p.servers = 4;
  p.clients = 3;
  p.replicationFactor = 2;
  p.seed = seed;
  p.master.log.segmentBytes = 64 * 1024;
  // Small enough that a 400 ms disk stall overruns the 2x hard limit and
  // gates open-head append acks (client-visible replication stall).
  p.backup.bufferPoolBytes = 128 * 1024;
  core::Cluster c(p);
  // Tight targets sit just above the healthy-cluster tail (so only a fault
  // breaches them); loose ones are far above anything a healthy or faulty
  // short run produces (determinism runs must not arm the recorder).
  if (tightTargets) {
    c.sloTracker().declareClass(
        "acme/read", obs::SloTarget{sim::usec(250), sim::msec(1)});
    c.sloTracker().declareClass(
        "acme/update", obs::SloTarget{sim::msec(2), sim::msec(20)});
  } else {
    c.sloTracker().declareClass(
        "acme/read", obs::SloTarget{sim::msec(50), sim::msec(200)});
    c.sloTracker().declareClass(
        "acme/update", obs::SloTarget{sim::msec(50), sim::msec(200)});
  }

  const auto table = c.createTable("usertable");
  c.bulkLoad(table, 20'000, 256);

  ycsb::YcsbClientParams ycp;
  ycp.tenant = "acme";
  c.configureYcsb(table, ycsb::WorkloadSpec::B(20'000), ycp);

  std::unique_ptr<fault::FaultInjector> injector;
  if (stall) {
    fault::FaultPlan plan;
    plan.diskStall(sim::msec(1200), /*serverIdx=*/1, sim::msec(400));
    injector = std::make_unique<fault::FaultInjector>(
        c, plan, c.sim().rng().fork(0x510));
    injector->arm();
  }

  c.startYcsb();
  c.sim().runFor(sim::seconds(3));
  c.stopYcsb();
  c.sim().runFor(sim::msec(200));

  c.sloTracker().finish();
  E2eOutcome out;
  out.sloJsonl = c.sloTracker().toJsonl();
  out.flightTriggered = c.flightRecorder().triggered();
  out.breached = c.sloTracker().breachedWindows();
  out.rows = c.sloTracker().rows();
  return out;
}

}  // namespace

TEST(SloEndToEnd, DiskStallBreachesTenantWindowWithExemplarForensics) {
  const auto out = runE2e(/*seed=*/42, /*stall=*/true, /*tightTargets=*/true);

  // The stall window must blow at least one class budget, and the breach
  // must have armed the flight recorder.
  EXPECT_GT(out.breached, 0u);
  EXPECT_TRUE(out.flightTriggered);

  // The breached window names the stall period and its exemplars
  // decompose: stage durations sum to the span total within 1 us.
  bool sawBreachedWithExemplar = false;
  for (const auto& row : out.rows) {
    if (!row.breached) continue;
    for (const auto& ex : row.exemplars) {
      if (ex.detail.numStages == 0) continue;
      sawBreachedWithExemplar = true;
      sim::Duration sum = 0;
      for (std::uint8_t i = 0; i < ex.detail.numStages; ++i) {
        sum += ex.detail.stages[i].elapsed;
      }
      const sim::Duration diff =
          sum > ex.detail.total ? sum - ex.detail.total : ex.detail.total - sum;
      EXPECT_LE(diff, sim::usec(1))
          << "exemplar span " << ex.span << " stages drift from total";
    }
  }
  EXPECT_TRUE(sawBreachedWithExemplar);
}

TEST(SloEndToEnd, FaultFreeRunsNeverArmTheFlightRecorderAtLooseTargets) {
  // Targets far above anything a healthy 4-server cluster produces: no
  // breach, so the recorder stays passive and flight.jsonl is not written.
  core::ClusterParams p;
  p.servers = 4;
  p.clients = 2;
  p.replicationFactor = 2;
  p.seed = 7;
  core::Cluster c(p);
  c.sloTracker().declareClass("acme/read",
                              obs::SloTarget{sim::seconds(1), 0});
  c.sloTracker().declareClass("acme/update",
                              obs::SloTarget{sim::seconds(1), 0});
  const auto table = c.createTable("usertable");
  c.bulkLoad(table, 10'000, 256);
  ycsb::YcsbClientParams ycp;
  ycp.tenant = "acme";
  c.configureYcsb(table, ycsb::WorkloadSpec::B(10'000), ycp);
  c.startYcsb();
  c.sim().runFor(sim::seconds(2));
  c.stopYcsb();

  EXPECT_FALSE(c.flightRecorder().triggered());
  EXPECT_GT(c.sloTracker().recorded(), 0u);

  const std::string dir = ::testing::TempDir() + "slo_fault_free";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(c.exportMetrics(dir));
  EXPECT_TRUE(std::filesystem::exists(dir + "/slo.jsonl"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/flight.jsonl"));
}

TEST(SloEndToEnd, SloJsonlIsByteIdenticalAcrossRepeatedRuns) {
  for (const std::uint64_t seed : {101ull, 202ull, 303ull}) {
    const auto a = runE2e(seed, /*stall=*/false, /*tightTargets=*/false);
    const auto b = runE2e(seed, /*stall=*/false, /*tightTargets=*/false);
    EXPECT_FALSE(a.sloJsonl.empty());
    EXPECT_EQ(a.sloJsonl, b.sloJsonl) << "seed " << seed;
    EXPECT_FALSE(a.flightTriggered);
  }
}

TEST(SloEndToEnd, ExportWritesSloJsonlThatRoundTripsByteIdentically) {
  const std::string dirA = ::testing::TempDir() + "slo_export_a";
  const std::string dirB = ::testing::TempDir() + "slo_export_b";
  std::filesystem::remove_all(dirA);
  std::filesystem::remove_all(dirB);
  for (const std::string& dir : {dirA, dirB}) {
    core::ClusterParams p;
    p.servers = 3;
    p.clients = 2;
    p.replicationFactor = 2;
    p.seed = 11;
    core::Cluster c(p);
    c.sloTracker().declareClass("acme/read",
                                obs::SloTarget{sim::usec(500), 0});
    c.sloTracker().declareClass("acme/update",
                                obs::SloTarget{sim::msec(1), 0});
    const auto table = c.createTable("usertable");
    c.bulkLoad(table, 5'000, 128);
    ycsb::YcsbClientParams ycp;
    ycp.tenant = "acme";
    c.configureYcsb(table, ycsb::WorkloadSpec::B(5'000), ycp);
    c.startYcsb();
    c.sim().runFor(sim::seconds(2));
    c.stopYcsb();
    ASSERT_TRUE(c.exportMetrics(dir));
  }
  const std::string a = slurp(dirA + "/slo.jsonl");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(dirB + "/slo.jsonl"));
}
