// Tests for the output formatting utilities used by the bench binaries.

#include <gtest/gtest.h>

#include <sstream>

#include "core/table_format.hpp"

namespace rc::core {
namespace {

TEST(TableFormatter, AlignsColumns) {
  TableFormatter t({"a", "long-header", "x"});
  t.addRow({"1", "2", "3"});
  t.addRow({"100", "veeeeery-long-cell", "z"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header + separator + 2 rows + borders, all same width.
  std::istringstream lines(out);
  std::string line;
  std::size_t width = 0;
  int n = 0;
  while (std::getline(lines, line)) {
    if (n++ == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
  EXPECT_EQ(n, 6);
  EXPECT_NE(out.find("veeeeery-long-cell"), std::string::npos);
}

TEST(TableFormatter, ShortRowsArePadded) {
  TableFormatter t({"a", "b", "c"});
  t.addRow({"only-one"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(TableFormatter, NumFormatting) {
  EXPECT_EQ(TableFormatter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TableFormatter::num(3.14159, 0), "3");
  EXPECT_EQ(TableFormatter::kops(372'000), "372K");
  EXPECT_EQ(TableFormatter::kops(1'500, 1), "1.5K");
}

TEST(ShapeCheck, PrintsVerdictAndReturns) {
  std::ostringstream os;
  EXPECT_TRUE(shapeCheck(true, "all good", os));
  EXPECT_FALSE(shapeCheck(false, "broken", os));
  EXPECT_NE(os.str().find("PASS — all good"), std::string::npos);
  EXPECT_NE(os.str().find("FAIL — broken"), std::string::npos);
}

TEST(Within, InclusiveBounds) {
  EXPECT_TRUE(within(1.0, 1.0, 2.0));
  EXPECT_TRUE(within(2.0, 1.0, 2.0));
  EXPECT_FALSE(within(2.01, 1.0, 2.0));
}

}  // namespace
}  // namespace rc::core
