// Unit and property tests for the log-structured memory and its cleaner.

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "log/cleaner.hpp"
#include "log/log.hpp"
#include "sim/rng.hpp"

namespace rc::log {
namespace {

LogEntry object(std::uint64_t key, std::uint32_t size, std::uint64_t version) {
  LogEntry e;
  e.tableId = 1;
  e.keyId = key;
  e.sizeBytes = size;
  e.version = version;
  return e;
}

LogParams smallLog(std::uint64_t segBytes = 1024,
                   std::uint64_t capacity = 16 * 1024) {
  LogParams p;
  p.segmentBytes = segBytes;
  p.capacityBytes = capacity;
  return p;
}

TEST(Segment, AppendTracksBytesAndLiveness) {
  Segment s(1, 1000, 0);
  EXPECT_TRUE(s.hasRoom(400));
  const auto i0 = s.append(object(1, 400, 1));
  const auto i1 = s.append(object(2, 400, 2));
  EXPECT_FALSE(s.hasRoom(400));
  EXPECT_EQ(s.appendedBytes(), 800u);
  EXPECT_EQ(s.liveBytes(), 800u);
  s.markDead(i0);
  EXPECT_EQ(s.liveBytes(), 400u);
  EXPECT_DOUBLE_EQ(s.utilisation(), 0.5);
  s.markDead(i0);  // idempotent
  EXPECT_EQ(s.liveBytes(), 400u);
  EXPECT_EQ(s.entry(i1).keyId, 2u);
}

TEST(Segment, SealedRefusesAppends) {
  Segment s(1, 1000, 0);
  s.seal();
  EXPECT_FALSE(s.hasRoom(1));
}

TEST(Log, RollsHeadWhenFull) {
  Log log(smallLog());
  int sealed = 0;
  int opened = 0;
  log.onSegmentSealed = [&](Segment&) { ++sealed; };
  log.onSegmentOpened = [&](Segment&) { ++opened; };
  for (int i = 0; i < 10; ++i) {
    log.append(object(static_cast<std::uint64_t>(i), 300, 1), 0);
  }
  // 3 entries of 300 B fit in a 1024 B segment.
  EXPECT_EQ(opened, 4);
  EXPECT_EQ(sealed, 3);
  EXPECT_EQ(log.segmentCount(), 4u);
}

TEST(Log, EntryAtResolvesRefs) {
  Log log(smallLog());
  const LogRef ref = log.append(object(7, 100, 3), 0);
  EXPECT_EQ(log.entryAt(ref).keyId, 7u);
  EXPECT_EQ(log.entryAt(ref).version, 3u);
}

TEST(Log, MarkDeadUpdatesGlobalLiveBytes) {
  Log log(smallLog());
  const LogRef a = log.append(object(1, 100, 1), 0);
  log.append(object(2, 100, 2), 0);
  EXPECT_EQ(log.liveBytes(), 200u);
  log.markDead(a);
  EXPECT_EQ(log.liveBytes(), 100u);
}

TEST(Log, OversizeEntryThrows) {
  Log log(smallLog(512));
  EXPECT_THROW(log.append(object(1, 600, 1), 0), std::invalid_argument);
}

TEST(Log, SegmentIdBaseGivesDisjointRanges) {
  LogParams a = smallLog();
  a.segmentIdBase = 1000;
  Log log(a);
  const LogRef r = log.append(object(1, 10, 1), 0);
  EXPECT_EQ(r.segment, 1000u);
}

TEST(Log, AdoptForeignSegment) {
  Log donorLog(smallLog());
  donorLog.append(object(5, 100, 1), 0);
  donorLog.sealHead();
  ASSERT_EQ(donorLog.segments().size(), 1u);
  auto seg = donorLog.segments().begin()->second;

  LogParams p = smallLog();
  p.segmentIdBase = 500;
  Log host(p);
  host.adopt(seg);
  EXPECT_NE(host.segment(1), nullptr);
  EXPECT_EQ(host.liveBytes(), 100u);
}

TEST(Log, NeedsCleaningAboveThreshold) {
  LogParams p = smallLog(1024, 4096);  // 4 segments max
  p.cleanerThreshold = 0.5;
  Log log(p);
  EXPECT_FALSE(log.needsCleaning());
  for (int i = 0; i < 9; ++i) {
    log.append(object(static_cast<std::uint64_t>(i), 300, 1), 0);
  }
  EXPECT_TRUE(log.needsCleaning());  // 3 segments allocated > 2
}

TEST(Cleaner, ReclaimsDeadOnlySegment) {
  Log log(smallLog());
  std::vector<LogRef> refs;
  for (int i = 0; i < 3; ++i) {
    refs.push_back(log.append(object(static_cast<std::uint64_t>(i), 300, 1), 0));
  }
  log.sealHead();
  for (const auto& r : refs) log.markDead(r);
  LogCleaner cleaner(log, nullptr);
  const auto reclaimed = cleaner.cleanOnce(sim::seconds(10));
  EXPECT_EQ(reclaimed, 900u);
  EXPECT_EQ(cleaner.stats().bytesRelocated, 0u);
  EXPECT_EQ(log.segment(1), nullptr);
}

TEST(Cleaner, RelocatesLiveEntriesAndNotifies) {
  Log log(smallLog());
  const LogRef a = log.append(object(1, 300, 1), 0);
  const LogRef b = log.append(object(2, 300, 2), 0);
  log.append(object(3, 300, 3), 0);
  log.sealHead();
  log.markDead(a);

  std::map<std::uint64_t, LogRef> relocated;
  LogCleaner cleaner(log, [&](const LogEntry& e, LogRef nr) {
    relocated[e.keyId] = nr;
  });
  cleaner.cleanSegment(b.segment, sim::seconds(1));
  EXPECT_EQ(relocated.size(), 2u);  // keys 2 and 3 moved, key 1 was dead
  EXPECT_EQ(log.entryAt(relocated[2]).version, 2u);
  EXPECT_EQ(log.liveBytes(), 600u);
}

TEST(Cleaner, SelectsLowestUtilisationVictim) {
  Log log(smallLog());
  // Segment 1: all dead. Segment 2: all live.
  std::vector<LogRef> first;
  for (int i = 0; i < 3; ++i) {
    first.push_back(log.append(object(static_cast<std::uint64_t>(i), 300, 1), 0));
  }
  for (int i = 3; i < 6; ++i) {
    log.append(object(static_cast<std::uint64_t>(i), 300, 1), 0);
  }
  log.sealHead();
  for (const auto& r : first) log.markDead(r);
  LogCleaner cleaner(log, nullptr);
  EXPECT_EQ(cleaner.selectVictim(sim::seconds(5)), first[0].segment);
}

TEST(Cleaner, GreedyIgnoresAgeCostBenefitUsesIt) {
  // Two sealed segments with equal utilisation but different ages: greedy
  // is indifferent (picks the first-best), cost-benefit must prefer the
  // OLDER one (stable data pays off longer).
  Log log(smallLog());
  const LogRef oldA = log.append(object(1, 300, 1), /*now=*/0);
  log.append(object(2, 300, 2), 0);
  log.append(object(3, 300, 3), 0);
  // Second segment created much later.
  const LogRef newA = log.append(object(4, 300, 4), sim::seconds(100));
  log.append(object(5, 300, 5), sim::seconds(100));
  log.append(object(6, 300, 6), sim::seconds(100));
  log.sealHead();
  log.markDead(oldA);
  log.markDead(newA);  // both segments now at 2/3 utilisation

  LogCleaner costBenefit(log, nullptr, CleanerPolicy::kCostBenefit);
  EXPECT_EQ(costBenefit.selectVictim(sim::seconds(200)), oldA.segment);

  LogCleaner greedy(log, nullptr, CleanerPolicy::kGreedy);
  // Greedy scores both equally (same utilisation); it must still pick a
  // valid victim.
  const SegmentId g = greedy.selectVictim(sim::seconds(200));
  EXPECT_TRUE(g == oldA.segment || g == newA.segment);
}

TEST(Cleaner, WriteAmplificationStat) {
  Log log(smallLog());
  const LogRef a = log.append(object(1, 300, 1), 0);
  log.append(object(2, 300, 2), 0);
  log.append(object(3, 300, 3), 0);
  log.sealHead();
  log.markDead(a);
  LogCleaner cleaner(log, nullptr);
  cleaner.cleanSegment(a.segment, sim::seconds(1));
  // 600 B relocated for 900 B reclaimed.
  EXPECT_NEAR(cleaner.stats().writeAmplification(), 600.0 / 900.0, 1e-9);
}

TEST(Cleaner, SkipsUnsealedHead) {
  Log log(smallLog());
  log.append(object(1, 100, 1), 0);
  LogCleaner cleaner(log, nullptr);
  EXPECT_EQ(cleaner.selectVictim(sim::seconds(1)), kInvalidSegment);
  EXPECT_EQ(cleaner.cleanOnce(sim::seconds(1)), 0u);
}

TEST(Cleaner, DropsTombstoneWhenObjectSegmentGone) {
  Log log(smallLog());
  const LogRef obj = log.append(object(1, 300, 1), 0);
  LogEntry tomb;
  tomb.tableId = 1;
  tomb.keyId = 1;
  tomb.sizeBytes = 60;
  tomb.version = 2;
  tomb.type = EntryType::kTombstone;
  tomb.refSegment = obj.segment;
  log.append(tomb, 0);
  log.append(object(9, 600, 3), 0);  // roll to next segment soon
  log.append(object(10, 600, 4), 0);
  log.sealHead();

  // Kill the object, clean its segment away, then clean the tombstone's
  // segment: the tombstone must be dropped, not relocated.
  log.markDead(obj);
  LogCleaner cleaner(log, nullptr);
  cleaner.cleanSegment(obj.segment, sim::seconds(1));
  EXPECT_EQ(cleaner.stats().tombstonesDropped, 1u);
}

// ---- Property: cleaning never loses live data. A model key-value map is
// mutated alongside the log; after heavy cleaning every live key's entry
// must still be resolvable with the right version.
class CleanerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CleanerProperty, NoLiveDataLostUnderChurn) {
  sim::Rng rng(GetParam());
  LogParams p;
  p.segmentBytes = 8 * 1024;
  p.capacityBytes = 64 * 1024;
  p.cleanerThreshold = 0.6;
  Log log(p);

  struct Loc {
    LogRef ref;
    std::uint64_t version;
  };
  std::unordered_map<std::uint64_t, Loc> model;

  LogCleaner cleaner(log, [&](const LogEntry& e, LogRef nr) {
    auto it = model.find(e.keyId);
    if (it != model.end() && it->second.version == e.version) {
      it->second.ref = nr;
    }
  });

  std::uint64_t version = 1;
  for (int op = 0; op < 5000; ++op) {
    const std::uint64_t key = rng.uniformInt(64);
    const auto size = static_cast<std::uint32_t>(100 + rng.uniformInt(400));
    const LogRef ref = log.append(object(key, size, version), op);
    if (auto it = model.find(key); it != model.end()) {
      log.markDead(it->second.ref);
    }
    model[key] = Loc{ref, version};
    ++version;

    while (log.needsCleaning()) {
      if (cleaner.cleanOnce(op) == 0) break;
    }
  }

  for (const auto& [key, loc] : model) {
    const LogEntry& e = log.entryAt(loc.ref);
    EXPECT_EQ(e.keyId, key);
    EXPECT_EQ(e.version, loc.version);
    EXPECT_TRUE(e.live);
  }
  // And the log stayed within its memory budget.
  EXPECT_LE(log.memoryInUse(), p.capacityBytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CleanerProperty,
                         ::testing::Values(1, 7, 42, 99, 12345));

}  // namespace
}  // namespace rc::log
