// End-to-end smoke: a small cluster serves reads and writes.

#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "core/experiment.hpp"

namespace rc {
namespace {

TEST(Smoke, ClusterServesReadOnlyWorkload) {
  core::YcsbExperimentConfig cfg;
  cfg.servers = 2;
  cfg.clients = 2;
  cfg.workload = ycsb::WorkloadSpec::C(10'000);
  cfg.warmup = sim::msec(200);
  cfg.measure = sim::seconds(1);
  const auto r = core::runYcsbExperiment(cfg);
  EXPECT_GT(r.throughputOpsPerSec, 1000.0);
  EXPECT_EQ(r.opFailures, 0u);
  EXPECT_FALSE(r.crashed);
  EXPECT_GT(r.meanPowerPerServerW, 60.0);
  EXPECT_LT(r.meanPowerPerServerW, 130.0);
}

TEST(Smoke, ClusterServesUpdateHeavyWithReplication) {
  core::YcsbExperimentConfig cfg;
  cfg.servers = 3;
  cfg.clients = 2;
  cfg.replicationFactor = 2;
  cfg.workload = ycsb::WorkloadSpec::A(5'000);
  cfg.warmup = sim::msec(200);
  cfg.measure = sim::seconds(1);
  const auto r = core::runYcsbExperiment(cfg);
  EXPECT_GT(r.throughputOpsPerSec, 500.0);
  EXPECT_EQ(r.opFailures, 0u);
}

}  // namespace
}  // namespace rc
