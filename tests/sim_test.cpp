// Unit tests for the discrete-event kernel, RNG and statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "sim/event_heap.hpp"
#include "sim/fifo_lock.hpp"
#include "sim/inline_task.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"

namespace rc::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next32() == b.next32();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntInBounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.uniformInt(17), 17u);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng r(9);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) ++seen[r.uniformInt(10)];
  for (int c : seen) EXPECT_GT(c, 800);  // ~1000 each
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.uniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(1);
  Rng c = a.fork(0);
  Rng d = a.fork(0);
  // forks taken sequentially must differ (parent state advanced)
  EXPECT_NE(c.next64(), d.next64());
}

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(usec(30), [&] { order.push_back(3); });
  sim.schedule(usec(10), [&] { order.push_back(1); });
  sim.schedule(usec(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), usec(30));
}

TEST(Simulation, TiesBreakByScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(usec(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulation sim;
  int ran = 0;
  sim.schedule(usec(10), [&] { ++ran; });
  sim.schedule(usec(100), [&] { ++ran; });
  sim.runUntil(usec(50));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), usec(50));
  sim.run();
  EXPECT_EQ(ran, 2);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  const EventId id = sim.schedule(usec(10), [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule(usec(1), chain);
  };
  sim.schedule(usec(1), chain);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), usec(5));
}

TEST(Simulation, StopHaltsRun) {
  Simulation sim;
  int ran = 0;
  sim.schedule(usec(1), [&] {
    ++ran;
    sim.stop();
  });
  sim.schedule(usec(2), [&] { ++ran; });
  sim.run();
  EXPECT_EQ(ran, 1);
  sim.clearStop();
  sim.run();
  EXPECT_EQ(ran, 2);
}

TEST(Simulation, NegativeDelayClampsToNow) {
  Simulation sim;
  sim.schedule(usec(5), [] {});
  sim.run();
  bool ran = false;
  sim.schedule(-100, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), usec(5));
}

TEST(PeriodicTask, FiresAtInterval) {
  Simulation sim;
  std::vector<SimTime> fires;
  PeriodicTask task(sim, seconds(1), [&](SimTime t) { fires.push_back(t); });
  sim.runUntil(seconds(5) + msec(500));
  ASSERT_EQ(fires.size(), 5u);
  EXPECT_EQ(fires[0], seconds(1));
  EXPECT_EQ(fires[4], seconds(5));
}

TEST(PeriodicTask, CancelStopsFiring) {
  Simulation sim;
  int fires = 0;
  PeriodicTask task(sim, seconds(1), [&](SimTime) { ++fires; });
  sim.runUntil(seconds(2) + msec(1));
  task.cancel();
  sim.runUntil(seconds(10));
  EXPECT_EQ(fires, 2);
}

TEST(MinMaxMean, TracksExtremesAndMean) {
  MinMaxMean m;
  for (double v : {3.0, 1.0, 4.0, 1.5, 9.0}) m.add(v);
  EXPECT_DOUBLE_EQ(m.min(), 1.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
  EXPECT_NEAR(m.mean(), 3.7, 1e-9);
  EXPECT_EQ(m.count(), 5u);
}

TEST(MinMaxMean, MergeCombines) {
  MinMaxMean a, b;
  a.add(1);
  a.add(2);
  b.add(10);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  EXPECT_EQ(a.count(), 3u);
}

TEST(Histogram, PercentilesRoughlyCorrect) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(usec(i));
  // log-bucketed: ~2-3 % resolution
  EXPECT_NEAR(toMicros(h.percentile(0.5)), 500, 25);
  EXPECT_NEAR(toMicros(h.percentile(0.99)), 990, 40);
  EXPECT_EQ(h.percentile(1.0), h.max());
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.mean() / 1000.0, 500.5, 5);
}

TEST(Histogram, MergePreservesCountAndBounds) {
  Histogram a, b;
  a.add(usec(10));
  b.add(usec(1000));
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), usec(10));
  EXPECT_EQ(a.max(), usec(1000));
}

TEST(Histogram, SmallValuesExact) {
  Histogram h;
  h.add(5);
  EXPECT_EQ(h.percentile(1.0), 5);
}

TEST(TimeSeries, MeanAndWindow) {
  TimeSeries ts;
  ts.add(seconds(1), 10);
  ts.add(seconds(2), 20);
  ts.add(seconds(3), 30);
  EXPECT_DOUBLE_EQ(ts.meanValue(), 20);
  EXPECT_DOUBLE_EQ(ts.meanInWindow(seconds(2), seconds(4)), 25);
  EXPECT_DOUBLE_EQ(ts.maxValue(), 30);
}

TEST(TimeSeries, StepIntegral) {
  TimeSeries ts;
  ts.add(0, 100);          // 100 W for 2 s
  ts.add(seconds(2), 50);  // 50 W for 1 s
  EXPECT_DOUBLE_EQ(ts.stepIntegral(seconds(3)), 250.0);
}

TEST(TimeWeightedValue, IntegratesPiecewiseConstant) {
  TimeWeightedValue v;
  v.set(0, 2.0);
  v.set(seconds(10), 4.0);
  EXPECT_DOUBLE_EQ(v.integralTo(seconds(10)), 20.0);
  EXPECT_DOUBLE_EQ(v.integralTo(seconds(15)), 40.0);
}

// ----- degenerate-input regressions: every stats helper must return 0 (not
// divide by zero, wrap, or crash) on empty or zero-length inputs.

TEST(OpCounter, RateZeroOnDegenerateWindow) {
  EXPECT_DOUBLE_EQ(OpCounter::rate(0, 100, seconds(5), seconds(5)), 0.0);
  EXPECT_DOUBLE_EQ(OpCounter::rate(0, 100, seconds(5), seconds(4)), 0.0);
  // Counter reset (end behind start, e.g. across a crash) must not wrap
  // the unsigned difference into a huge rate.
  EXPECT_DOUBLE_EQ(OpCounter::rate(100, 40, seconds(0), seconds(1)), 0.0);
  EXPECT_DOUBLE_EQ(OpCounter::rate(40, 100, seconds(0), seconds(2)), 30.0);
}

TEST(TimeSeries, MeanInWindowEmpty) {
  TimeSeries empty;
  EXPECT_DOUBLE_EQ(empty.meanInWindow(0, seconds(10)), 0.0);
  TimeSeries ts;
  ts.add(seconds(1), 10);
  // Window containing no samples, and a zero-length window.
  EXPECT_DOUBLE_EQ(ts.meanInWindow(seconds(5), seconds(6)), 0.0);
  EXPECT_DOUBLE_EQ(ts.meanInWindow(seconds(1), seconds(1)), 0.0);
}

TEST(Histogram, PercentileMonotonicInQ) {
  Histogram h;
  for (int i = 1; i <= 500; ++i) h.add(usec(i * 3));
  Duration prev = 0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const Duration p = h.percentile(q);
    EXPECT_GE(p, prev) << "percentile not monotonic at q=" << q;
    prev = p;
  }
  EXPECT_LE(h.percentile(0.5), h.percentile(0.99));
  EXPECT_LE(h.percentile(0.99), h.max());
}

TEST(Histogram, PercentileEmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.percentile(0.5), 0);
  EXPECT_EQ(h.percentile(1.0), 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(TimeWeightedValue, IntegralZeroBeforeFirstSet) {
  TimeWeightedValue v;
  EXPECT_DOUBLE_EQ(v.integralTo(seconds(100)), 0.0);
  EXPECT_DOUBLE_EQ(v.current(), 0.0);
  v.set(seconds(50), 3.0);
  // Time before the first set contributes nothing.
  EXPECT_DOUBLE_EQ(v.integralTo(seconds(60)), 30.0);
}

TEST(FifoLock, GrantsInOrder) {
  FifoLock lock;
  std::vector<int> order;
  EXPECT_TRUE(lock.acquire([&] { order.push_back(0); }));
  lock.acquire([&] { order.push_back(1); });
  lock.acquire([&] { order.push_back(2); });
  EXPECT_EQ(lock.waiters(), 2u);
  lock.release();
  lock.release();
  lock.release();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(lock.held());
}

TEST(FifoLock, ResetClears) {
  FifoLock lock;
  lock.acquire([] {});
  lock.acquire([] { FAIL() << "waiter must not be granted after reset"; });
  lock.reset();
  EXPECT_FALSE(lock.held());
  EXPECT_EQ(lock.waiters(), 0u);
}

// Property: the kernel is deterministic — same seed, same interleaving.
class SimDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimDeterminism, SameSeedSameTrace) {
  auto runOnce = [&](std::uint64_t seed) {
    Simulation sim(seed);
    std::vector<std::uint64_t> trace;
    for (int i = 0; i < 50; ++i) {
      sim.schedule(static_cast<Duration>(sim.rng().uniformInt(1000)) + 1,
                   [&trace, &sim] {
                     trace.push_back(static_cast<std::uint64_t>(sim.now()) ^
                                     sim.rng().next32());
                   });
    }
    sim.run();
    return trace;
  };
  EXPECT_EQ(runOnce(GetParam()), runOnce(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimDeterminism,
                         ::testing::Values(1, 42, 1337, 0xdeadbeef));

// ---------------------------------------------------------------------------
// InlineFunction / InlineTask

struct DtorCounter {
  int* ctors;
  int* dtors;
  DtorCounter(int* c, int* d) : ctors(c), dtors(d) { ++*ctors; }
  DtorCounter(const DtorCounter& o) : ctors(o.ctors), dtors(o.dtors) {
    ++*ctors;
  }
  DtorCounter(DtorCounter&& o) noexcept : ctors(o.ctors), dtors(o.dtors) {
    ++*ctors;
  }
  ~DtorCounter() { ++*dtors; }
};

TEST(InlineTask, SmallCaptureStoresInline) {
  int x = 0;
  InlineTask t([&x] { x = 7; });
  EXPECT_TRUE(t.isInline());
  t();
  EXPECT_EQ(x, 7);
}

TEST(InlineTask, LargeCaptureOverflowsToPoolAndStillRuns) {
  std::array<std::uint64_t, 16> big{};  // 128 bytes > kInlineBytes
  big[15] = 99;
  std::uint64_t out = 0;
  InlineTask t([big, &out] { out = big[15]; });
  EXPECT_FALSE(t.isInline());
  t();
  EXPECT_EQ(out, 99u);
}

TEST(InlineTask, MoveTransfersTargetAndEmptiesSource) {
  int calls = 0;
  InlineTask a([&calls] { ++calls; });
  InlineTask b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);

  InlineTask c;
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(InlineTask, DestroysInlineTargetExactlyOnce) {
  int ctors = 0;
  int dtors = 0;
  {
    DtorCounter probe(&ctors, &dtors);
    InlineTask t([probe] {});
    EXPECT_TRUE(t.isInline());
    InlineTask moved(std::move(t));
    InlineTask assigned;
    assigned = std::move(moved);
  }
  EXPECT_EQ(ctors, dtors);
  EXPECT_GT(dtors, 0);
}

TEST(InlineTask, DestroysOverflowTargetExactlyOnce) {
  int ctors = 0;
  int dtors = 0;
  {
    std::array<std::uint64_t, 16> pad{};
    DtorCounter probe(&ctors, &dtors);
    InlineTask t([probe, pad] {});
    EXPECT_FALSE(t.isInline());
    // Overflow moves are pointer swaps: no extra target copies.
    const int ctorsBeforeMove = ctors;
    InlineTask moved(std::move(t));
    EXPECT_EQ(ctors, ctorsBeforeMove);
    moved.reset();
  }
  EXPECT_EQ(ctors, dtors);
  EXPECT_GT(dtors, 0);
}

TEST(InlineTask, ReassignmentDestroysPreviousTarget) {
  int ctors = 0;
  int dtors = 0;
  DtorCounter probe(&ctors, &dtors);
  InlineTask t([probe] {});
  const int dtorsBefore = dtors;
  t = nullptr;
  EXPECT_EQ(dtors, dtorsBefore + 1);
  EXPECT_FALSE(static_cast<bool>(t));
}

TEST(InlineFunction, ForwardsArgumentsAndReturnValue) {
  InlineFunction<int(int, int)> f([](int a, int b) { return a * 10 + b; });
  EXPECT_EQ(f(3, 4), 34);
}

// ---------------------------------------------------------------------------
// EventHeap

TEST(EventHeap, PopsInTimeOrder) {
  EventHeap h;
  std::vector<int> order;
  h.push(msec(30), [&order] { order.push_back(30); });
  h.push(msec(10), [&order] { order.push_back(10); });
  h.push(msec(20), [&order] { order.push_back(20); });
  while (!h.empty()) {
    SimTime t = 0;
    h.popTop(&t)();
  }
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

TEST(EventHeap, EqualTimesPopFifo) {
  EventHeap h;
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    h.push(msec(5), [&order, i] { order.push_back(i); });
  }
  while (!h.empty()) {
    SimTime t = 0;
    h.popTop(&t)();
    EXPECT_EQ(t, msec(5));
  }
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventHeap, CancelInMiddleRemovesEagerlyAndPreservesOrder) {
  EventHeap h;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(h.push(msec(i + 1), [&order, i] { order.push_back(i); }));
  }
  // Cancel every third event, scattered through the middle of the heap.
  for (int i = 2; i < 20; i += 3) {
    EXPECT_TRUE(h.cancel(ids[static_cast<std::size_t>(i)]));
  }
  EXPECT_EQ(h.size(), 20u - 6u);  // removed immediately, not tombstoned
  SimTime prev = 0;
  while (!h.empty()) {
    SimTime t = 0;
    h.popTop(&t)();
    EXPECT_GE(t, prev);
    prev = t;
  }
  for (int i : order) EXPECT_NE(i % 3, 2);
  EXPECT_EQ(order.size(), 14u);
}

TEST(EventHeap, CancelledIdIsNoOpAfterPopOrSecondCancel) {
  EventHeap h;
  const EventId id = h.push(msec(1), [] {});
  EXPECT_TRUE(h.cancel(id));
  EXPECT_FALSE(h.cancel(id));  // slot generation bumped

  int runs = 0;
  const EventId id2 = h.push(msec(2), [&runs] { ++runs; });
  SimTime t = 0;
  h.popTop(&t)();
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(h.cancel(id2));  // already ran
}

TEST(EventHeap, SlotReuseInvalidatesStaleIds) {
  EventHeap h;
  const EventId stale = h.push(msec(1), [] {});
  SimTime t = 0;
  h.popTop(&t)();
  // The freed slot is reused; the stale id must not cancel the new event.
  int runs = 0;
  const EventId fresh = h.push(msec(2), [&runs] { ++runs; });
  EXPECT_NE(stale, fresh);
  EXPECT_FALSE(h.cancel(stale));
  EXPECT_EQ(h.size(), 1u);
  h.popTop(&t)();
  EXPECT_TRUE(h.cancel(fresh) == false);
}

TEST(EventHeap, InterleavedPushPopCancelKeepsOrdering) {
  EventHeap h;
  Rng rng(99);
  std::vector<EventId> live;
  SimTime prev = 0;
  std::uint64_t popped = 0;
  for (int round = 0; round < 2000; ++round) {
    const auto roll = rng.uniformInt(10);
    if (roll < 6 || h.empty()) {
      live.push_back(
          h.push(prev + static_cast<Duration>(rng.uniformInt(5000)), [] {}));
    } else if (roll < 8 && !live.empty()) {
      const std::size_t pick = rng.uniformInt(live.size());
      h.cancel(live[pick]);  // may already have run: no-op then
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      SimTime t = 0;
      h.popTop(&t)();
      ++popped;
      EXPECT_GE(t, prev);
      prev = t;
    }
  }
  EXPECT_GT(popped, 100u);
}

}  // namespace
}  // namespace rc::sim
