// SS IX-B ablation: "Better communication for replication?" — replace the
// CPU-mediated backup writes with one-sided RDMA writes (the paper's
// proposed mitigation: "completely removing the CPU overhead of
// replication requests ... e.g. one-sided RDMA writes") and quantify what
// it buys, with consistency preserved (acks still awaited).

#include <cstdio>

#include "bench_common.hpp"
#include "core/cluster.hpp"
#include "ycsb/ycsb_client.hpp"

using namespace rc;

namespace {

struct Result {
  double kops;
  double wattsPerNode;
  double opsPerJoule;
};

Result run(int rf, bool rdma, const bench::Options& opt) {
  core::ClusterParams cp;
  cp.servers = 20;
  cp.clients = 60;
  cp.seed = opt.seed;
  cp.replicationFactor = rf;
  cp.master.replication.oneSidedRdma = rdma;
  core::Cluster cluster(cp);
  const auto table = cluster.createTable("usertable");
  cluster.bulkLoad(table, 100'000, 1000);
  cluster.configureYcsb(table, ycsb::WorkloadSpec::A(),
                        ycsb::YcsbClientParams{});
  cluster.startYcsb();

  const auto warmup = static_cast<sim::Duration>(
      static_cast<double>(sim::seconds(2)) * opt.timeScale());
  const auto measure = static_cast<sim::Duration>(
      static_cast<double>(sim::seconds(8)) * opt.timeScale());
  cluster.sim().runFor(warmup);
  const auto t0 = cluster.sim().now();
  const auto ops0 = cluster.totalOpsCompleted();
  std::vector<node::CpuScheduler::Snapshot> snaps;
  for (int i = 0; i < cluster.serverCount(); ++i) {
    snaps.push_back(cluster.server(i).node->snapshotCpu());
  }
  cluster.sim().runFor(measure);
  const auto t1 = cluster.sim().now();

  Result r;
  r.kops = static_cast<double>(cluster.totalOpsCompleted() - ops0) /
           sim::toSeconds(t1 - t0) / 1e3;
  double watts = 0;
  for (int i = 0; i < cluster.serverCount(); ++i) {
    watts += cp.serverNode.power.watts(
        cluster.server(i).node->meanUtilisationSince(
            snaps[static_cast<std::size_t>(i)], t1));
  }
  r.wattsPerNode = watts / cluster.serverCount();
  r.opsPerJoule = r.kops * 1e3 / watts;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Ablation — one-sided RDMA replication (SS IX-B)",
                "Taleb et al., ICDCS'17, SS IX-B (RDMA discussion)");

  core::TableFormatter t({"rf", "mode", "throughput (Kop/s)", "W/node",
                          "op/J"});
  double cpuThr[3], rdmaThr[3], cpuEff[3], rdmaEff[3];
  int i = 0;
  for (int rf : {1, 2, 4}) {
    const Result c = run(rf, false, opt);
    const Result x = run(rf, true, opt);
    cpuThr[i] = c.kops;
    rdmaThr[i] = x.kops;
    cpuEff[i] = c.opsPerJoule;
    rdmaEff[i] = x.opsPerJoule;
    t.addRow({std::to_string(rf), "CPU replication",
              core::TableFormatter::num(c.kops, 0) + "K",
              core::TableFormatter::num(c.wattsPerNode, 1),
              core::TableFormatter::num(c.opsPerJoule, 0)});
    t.addRow({std::to_string(rf), "one-sided RDMA",
              core::TableFormatter::num(x.kops, 0) + "K",
              core::TableFormatter::num(x.wattsPerNode, 1),
              core::TableFormatter::num(x.opsPerJoule, 0)});
    ++i;
  }
  t.print();

  bench::Verdict v;
  v.check(rdmaThr[2] > 1.25 * cpuThr[2],
          "RDMA replication recovers substantial rf=4 throughput");
  v.check(rdmaEff[2] > 1.2 * cpuEff[2],
          "and improves energy efficiency (the paper's stated goal)");
  v.check(rdmaThr[0] >= cpuThr[0] * 0.95,
          "no regression at rf=1");
  const double cpuDrop = 1 - cpuThr[2] / cpuThr[0];
  const double rdmaDrop = 1 - rdmaThr[2] / rdmaThr[0];
  v.check(rdmaDrop < cpuDrop,
          "RDMA flattens the rf penalty (consistency kept)");
  return v.exitCode();
}
