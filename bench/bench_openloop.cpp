// Open-loop population scaling (docs/WORKLOADS.md): one TrafficSource
// aggregates the whole modeled population into a single batched arrival
// process, so simulator cost tracks the *request rate*, not the number of
// modeled users.
//
// Part 1 sweeps 10^3 -> 10^6 modeled users at a constant offered rate and
// checks that delivered rate and heap events/op stay flat while the
// population grows a thousandfold.
//
// Part 2 is the closed-loop parity gate: at an equal delivered op rate the
// open-loop engine's heap events/op must stay within 10% of the classic
// closed-loop YCSB-B harness — batching makes open-loop generation o(1)
// events per request, not a constant-factor tax.
//
// Part 3 is the tenant-isolation run (two tenants, B surges 10x against
// its dispatch QoS bucket) exported for CI's grep gates.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "core/openloop.hpp"

using namespace rc;

namespace {

struct SweepRow {
  double users = 0;
  core::OpenLoopResult r;
};

core::OpenLoopTenantConfig tenantShape(double users, double ratePerSec) {
  core::OpenLoopTenantConfig t;
  t.name = "pop";
  t.sources = 1;
  t.shape.users = users;
  t.shape.opsPerUserPerSec = ratePerSec / users;
  t.readSlo = {sim::msec(4), sim::msec(20)};
  t.updateSlo = {sim::msec(8), sim::msec(40)};
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Open-loop population scaling + tenant QoS",
                "extension; methodology of SS IV (docs/WORKLOADS.md)");

  constexpr double kRate = 20'000;  // offered ops/s, constant over the sweep
  bench::Verdict v;

  // ----- Part 1: 10^3 -> 10^6 modeled users at constant offered rate -------
  const double populations[] = {1e3, 1e4, 1e5, 1e6};
  std::vector<SweepRow> sweep;
  for (double users : populations) {
    core::OpenLoopConfig cfg;
    cfg.servers = 10;
    cfg.workload = ycsb::WorkloadSpec::B();
    cfg.warmup = sim::seconds(1);
    cfg.measure = sim::seconds(4);
    cfg.seed = opt.seed;
    cfg.timeScale = opt.timeScale();
    cfg.tenants = {tenantShape(users, kRate)};
    SweepRow row;
    row.users = users;
    row.r = core::runOpenLoopExperiment(cfg);
    sweep.push_back(std::move(row));
  }

  core::TableFormatter t({"modeled users", "offered (op/s)",
                          "delivered (op/s)", "events/op", "arrivals/wakeup"});
  double evMin = 1e300;
  double evMax = 0;
  for (const auto& row : sweep) {
    const double perWake =
        row.r.generatorWakeups > 0
            ? static_cast<double>(row.r.arrivalsGenerated) /
                  static_cast<double>(row.r.generatorWakeups)
            : 0;
    evMin = std::min(evMin, row.r.eventsPerOp);
    evMax = std::max(evMax, row.r.eventsPerOp);
    t.addRow({core::TableFormatter::num(row.users, 0),
              core::TableFormatter::num(row.r.offeredRatePerSec, 0),
              core::TableFormatter::num(row.r.deliveredOpsPerSec, 0),
              core::TableFormatter::num(row.r.eventsPerOp, 2),
              core::TableFormatter::num(perWake, 1)});
  }
  t.print();
  std::printf("one source stands in for the whole population: simulator "
              "cost follows the op rate, not the user count\n\n");

  for (const auto& row : sweep) {
    v.check(core::within(row.r.deliveredOpsPerSec, 0.9 * kRate, 1.1 * kRate),
            "delivered ~= offered at " +
                core::TableFormatter::num(row.users, 0) + " users");
  }
  v.check(evMax <= 1.15 * evMin,
          "events/op flat across a 1000x population sweep");
  // 20k/s x 100 us quantum = ~2 arrivals per wakeup event.
  const auto& big = sweep.back().r;
  v.check(big.modeledUsers == 1'000'000 &&
              static_cast<double>(big.arrivalsGenerated) >
                  1.5 * static_cast<double>(big.generatorWakeups),
          "10^6 users sustained with batched (o(1)-event) generation");

  // ----- Part 2: closed-loop parity at equal delivered rate ----------------
  // Classic closed-loop YCSB-B throttled to the same delivered op rate;
  // compare heap events per delivered op.
  double closedEventsPerOp = 0;
  double closedRate = 0;
  {
    core::ClusterParams cp;
    cp.servers = 10;
    cp.clients = 10;
    cp.seed = opt.seed;
    core::Cluster cluster(cp);
    const std::uint64_t table = cluster.createTable("usertable");
    const ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::B();
    cluster.bulkLoad(table, spec.recordCount, spec.valueBytes);
    ycsb::YcsbClientParams ycp;
    ycp.opsTarget = 0;
    ycp.throttleOpsPerSec = kRate / cp.clients;
    cluster.configureYcsb(table, spec, ycp);
    cluster.startYcsb();
    const auto warmup = static_cast<sim::Duration>(
        static_cast<double>(sim::seconds(1)) * opt.timeScale());
    const auto measure = std::max<sim::Duration>(
        sim::msec(500), static_cast<sim::Duration>(
                            static_cast<double>(sim::seconds(4)) *
                            opt.timeScale()));
    cluster.sim().runFor(warmup);
    const std::uint64_t ev0 = cluster.sim().eventsExecuted();
    const std::uint64_t ops0 = cluster.totalOpsCompleted();
    const sim::SimTime t0 = cluster.sim().now();
    cluster.sim().runFor(measure);
    const std::uint64_t evD = cluster.sim().eventsExecuted() - ev0;
    const std::uint64_t opsD = cluster.totalOpsCompleted() - ops0;
    cluster.stopYcsb();
    closedEventsPerOp =
        opsD > 0 ? static_cast<double>(evD) / static_cast<double>(opsD) : 0;
    closedRate = static_cast<double>(opsD) /
                 sim::toSeconds(cluster.sim().now() - t0);
  }
  const double openEventsPerOp = sweep.back().r.eventsPerOp;
  std::printf("parity: closed-loop ycsb_b %.0f op/s at %.2f events/op vs "
              "open-loop 10^6 users %.0f op/s at %.2f events/op\n\n",
              closedRate, closedEventsPerOp,
              sweep.back().r.deliveredOpsPerSec, openEventsPerOp);
  v.check(core::within(closedRate, 0.9 * kRate, 1.1 * kRate),
          "closed-loop baseline throttled to the same delivered rate");
  v.check(closedEventsPerOp > 0 &&
              openEventsPerOp <= 1.10 * closedEventsPerOp,
          "open-loop events/op within 10% of the closed-loop baseline");

  // ----- Part 3: tenant isolation under a 10x surge ------------------------
  core::OpenLoopConfig iso;
  iso.servers = 10;
  iso.workload = ycsb::WorkloadSpec::B();
  iso.warmup = sim::seconds(1);
  iso.measure = sim::seconds(5);
  iso.seed = opt.seed;
  iso.timeScale = opt.timeScale();
  iso.metricsDir = opt.runDir("qos_isolation");

  core::OpenLoopTenantConfig a = tenantShape(5'000, 5'000);
  a.name = "tenantA";
  a.qosRatePerSec = 1'000;  // 10k/s cluster-wide, 2x headroom
  a.qosPriority = true;
  core::OpenLoopTenantConfig b = tenantShape(5'000, 5'000);
  b.name = "tenantB";
  b.qosRatePerSec = 800;  // 8k/s cluster-wide cap
  const sim::SimTime surgeAt = static_cast<sim::SimTime>(
      static_cast<double>(sim::seconds(3)) * iso.timeScale +
      static_cast<double>(sim::seconds(1)) * iso.timeScale);
  const auto surgeLen = static_cast<sim::Duration>(
      static_cast<double>(sim::seconds(2)) * iso.timeScale);
  b.shape.flashCrowds = {{surgeAt, surgeLen, 10.0}};
  iso.tenants = {a, b};

  // Control run: same two tenants, no surge. Tenant A's whole-run p999 in
  // the surge run is gated against this baseline, which stays meaningful
  // at --quick timescales where the run fits inside one SLO window.
  core::OpenLoopConfig control = iso;
  control.metricsDir.clear();
  control.tenants[1].shape.flashCrowds.clear();
  const core::OpenLoopResult cr = core::runOpenLoopExperiment(control);
  const core::OpenLoopResult ir = core::runOpenLoopExperiment(iso);

  core::TableFormatter qt({"tenant", "offered (op/s)", "qos offered",
                           "admitted", "throttled", "episodes",
                           "read p999 (us)"});
  for (const auto& row : ir.tenants) {
    qt.addRow({row.name, core::TableFormatter::num(row.offeredRatePerSec, 0),
               std::to_string(row.qosOffered),
               std::to_string(row.qosAdmitted),
               std::to_string(row.qosThrottled),
               std::to_string(row.qosEpisodes),
               core::TableFormatter::num(row.readP999Us, 1)});
  }
  qt.print();
  std::printf("tenant B's surge is policed at its bucket; tenant A rides "
              "through\n\n");

  v.check(ir.tenants[0].qosThrottled == 0,
          "tenant A never throttled by its own bucket");
  v.check(ir.tenants[1].qosThrottled > 0 && ir.tenants[1].qosEpisodes > 0,
          "tenant B throttled at the bucket during the surge");
  v.check(cr.tenants[1].qosThrottled == 0,
          "control run (no surge): tenant B under its bucket, no throttle");
  // Intent-time p999 for tenant A: surge run within 20% of the no-surge
  // control (the isolation invariant, docs/WORKLOADS.md).
  const double baseP999 = cr.tenants[0].readP999Us;
  const double surgeP999 = ir.tenants[0].readP999Us;
  std::printf("tenant A read p999: %.1f us (control) vs %.1f us (surge)\n\n",
              baseP999, surgeP999);
  v.check(baseP999 > 0 && surgeP999 > 0 && surgeP999 < 1.2 * baseP999,
          "tenant A p999 degrades <20% while B surges 10x");
  return v.exitCode();
}
