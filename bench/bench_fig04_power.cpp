// Figure 4: (a) average power per node of 20 servers as a function of the
// client count for workloads A/B/C; (b) total energy consumed serving the
// 90-client run (9 M requests) per workload.
//
// Paper: power orders update-heavy > read-heavy > read-only and rises with
// clients; total energy for A is ~4.9x that of C (Finding 2). Note: the
// paper's absolute watts here (82-110 W) sit below its own Table I/Fig. 1b
// measurements for comparable per-node load; we calibrate against the
// latter, so our C watts are higher — see EXPERIMENTS.md.

#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"

using namespace rc;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Fig. 4 — power and energy by workload, 20 servers",
                "Taleb et al., ICDCS'17, Fig. 4a/4b, Finding 2");

  const int clientCounts[] = {10, 20, 30, 60, 90};
  const ycsb::WorkloadSpec specs[] = {ycsb::WorkloadSpec::C(),
                                      ycsb::WorkloadSpec::B(),
                                      ycsb::WorkloadSpec::A()};
  double watts[3][5];
  core::YcsbExperimentResult at90[3];
  for (int w = 0; w < 3; ++w) {
    for (int ci = 0; ci < 5; ++ci) {
      core::YcsbExperimentConfig cfg;
      cfg.servers = 20;
      cfg.clients = clientCounts[ci];
      cfg.workload = specs[w];
      cfg.seed = opt.seed;
      cfg.timeScale = opt.timeScale();
      const auto r = core::runYcsbExperiment(cfg);
      watts[w][ci] = r.meanPowerPerServerW;
      if (ci == 4) at90[w] = r;
    }
  }

  std::printf("\n(a) Average power per node (W)\n");
  core::TableFormatter ta({"clients", "read-only", "read-heavy",
                           "update-heavy"});
  for (int ci = 0; ci < 5; ++ci) {
    ta.addRow({std::to_string(clientCounts[ci]),
               core::TableFormatter::num(watts[0][ci], 1),
               core::TableFormatter::num(watts[1][ci], 1),
               core::TableFormatter::num(watts[2][ci], 1)});
  }
  ta.print();

  // (b): the paper's 90-client run serves 90 x 100 K = 9 M requests.
  const std::uint64_t totalRequests = 9'000'000;
  std::printf("\n(b) Total energy for the 90-client run (9M requests)\n");
  core::TableFormatter tb({"workload", "throughput", "run time (s)",
                           "energy (KJ)"});
  const char* names[] = {"C", "B", "A"};
  double energy[3];
  for (int w = 0; w < 3; ++w) {
    const double kj = at90[w].energyForRequestsJ(totalRequests) / 1e3;
    energy[w] = kj;
    tb.addRow({names[w], core::TableFormatter::kops(at90[w].throughputOpsPerSec),
               core::TableFormatter::num(
                   totalRequests / at90[w].throughputOpsPerSec, 1),
               core::TableFormatter::num(kj, 1)});
  }
  tb.print();

  bench::Verdict v;
  v.check(watts[2][4] >= watts[1][4] - 1.5,
          "update-heavy draws at least read-heavy's power at 90 clients");
  bool risingA = true;
  for (int ci = 1; ci < 5; ++ci) risingA &= watts[2][ci] >= watts[2][ci - 1] - 1;
  v.check(risingA, "update-heavy power rises with client count");
  v.check(energy[2] > 3.0 * energy[0],
          "A consumes several times C's total energy (paper: 4.92x)");
  v.check(energy[1] > energy[0],
          "B consumes more total energy than C (paper: +28%)");
  return v.exitCode();
}
