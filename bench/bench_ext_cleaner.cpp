// Extension bench: log-cleaning under memory pressure.
//
// The paper deliberately sized memory so the cleaner never ran (SS III-C:
// "we avoid saturating the main memory ... and trigger the cleaning
// mechanism"). This bench removes that guard: an update-heavy workload at
// increasing memory utilisation, showing the cleaner's cost (throughput
// loss, write amplification) and the cost-benefit vs greedy victim-policy
// ablation (Rumble et al., FAST'14 — the design RAMCloud ships).

#include <cstdio>

#include "bench_common.hpp"
#include "core/cluster.hpp"
#include "ycsb/ycsb_client.hpp"

using namespace rc;

namespace {

struct Result {
  double kops = 0;
  double writeAmp = 0;
  std::uint64_t cleanerRuns = 0;
};

Result run(double memoryUtilisation, log::CleanerPolicy policy,
           const bench::Options& opt) {
  // 20 K records of ~1.1 KB live data per server pair; capacity chosen so
  // live/capacity == memoryUtilisation.
  const std::uint64_t records = 20'000;
  const std::uint64_t liveBytes = records * 1100;

  core::ClusterParams cp;
  cp.servers = 2;
  cp.clients = 4;
  cp.seed = opt.seed;
  cp.master.log.segmentBytes = 1 * 1024 * 1024;
  cp.master.log.capacityBytes = static_cast<std::uint64_t>(
      static_cast<double>(liveBytes / 2) / memoryUtilisation);
  cp.master.log.cleanerThreshold = 0.9;
  cp.master.cleanerPolicy = policy;
  core::Cluster cluster(cp);
  const auto table = cluster.createTable("t");
  cluster.bulkLoad(table, records, 1000);

  ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::A(records);
  // Skew makes segment ages diverge — where cost-benefit beats greedy.
  spec.distribution = ycsb::WorkloadSpec::Distribution::kZipfian;
  cluster.configureYcsb(table, spec, ycsb::YcsbClientParams{});
  cluster.startYcsb();

  const auto warmup = static_cast<sim::Duration>(
      static_cast<double>(sim::seconds(2)) * opt.timeScale() / 0.4);
  const auto measure = static_cast<sim::Duration>(
      static_cast<double>(sim::seconds(6)) * opt.timeScale() / 0.4);
  cluster.sim().runFor(warmup);
  const auto t0 = cluster.sim().now();
  const auto ops0 = cluster.totalOpsCompleted();
  cluster.sim().runFor(measure);
  const auto t1 = cluster.sim().now();
  cluster.stopYcsb();

  Result r;
  r.kops = static_cast<double>(cluster.totalOpsCompleted() - ops0) /
           sim::toSeconds(t1 - t0) / 1e3;
  double amp = 0;
  for (int i = 0; i < cluster.serverCount(); ++i) {
    const auto& st = cluster.server(i).master->cleaner().stats();
    amp = std::max(amp, st.writeAmplification());
    r.cleanerRuns += cluster.server(i).master->stats().cleanerRuns;
  }
  r.writeAmp = amp;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Extension — log cleaning under memory pressure",
                "Taleb et al. SS III-C (avoided) + Rumble et al. FAST'14");

  const double utils[] = {0.30, 0.60, 0.80, 0.90};
  core::TableFormatter t({"memory util", "policy", "throughput (Kop/s)",
                          "cleaner passes", "write amp"});
  double cbThr[4], grThr[4], cbAmp[4], grAmp[4];
  std::uint64_t cbRuns[4];
  for (int i = 0; i < 4; ++i) {
    const Result cb = run(utils[i], log::CleanerPolicy::kCostBenefit, opt);
    const Result gr = run(utils[i], log::CleanerPolicy::kGreedy, opt);
    cbThr[i] = cb.kops;
    grThr[i] = gr.kops;
    cbAmp[i] = cb.writeAmp;
    grAmp[i] = gr.writeAmp;
    cbRuns[i] = cb.cleanerRuns;
    t.addRow({core::TableFormatter::num(100 * utils[i], 0) + "%",
              "cost-benefit", core::TableFormatter::num(cb.kops, 1) + "K",
              std::to_string(cb.cleanerRuns),
              core::TableFormatter::num(cb.writeAmp, 2)});
    t.addRow({"", "greedy", core::TableFormatter::num(gr.kops, 1) + "K",
              std::to_string(gr.cleanerRuns),
              core::TableFormatter::num(gr.writeAmp, 2)});
  }
  t.print();

  bench::Verdict v;
  v.check(cbAmp[0] < 0.3,
          "at 30% utilisation cleaning is nearly free: victims are almost "
          "all dead (write amp < 0.3)");
  v.check(cbRuns[3] > 20 * cbRuns[0],
          "at 90% utilisation cleaning is continuous");
  v.check(cbThr[3] < cbThr[0],
          "memory pressure costs update throughput (cleaner steals CPU)");
  v.check(cbAmp[3] > cbAmp[1],
          "write amplification grows with memory utilisation");
  v.check(cbAmp[3] <= grAmp[3] + 0.15,
          "cost-benefit's write amplification <= greedy's under skew+aging");
  return v.exitCode();
}
