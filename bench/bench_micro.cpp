// Micro-benchmarks of the substrate data structures (google-benchmark):
// hash-table ops, log appends, cleaner passes, DES event throughput,
// zipfian key generation, end-to-end simulated RPCs.

#include <benchmark/benchmark.h>

#include "hash/object_map.hpp"
#include "log/cleaner.hpp"
#include "log/log.hpp"
#include "net/rpc.hpp"
#include "sim/simulation.hpp"
#include "ycsb/workload.hpp"

namespace {

using namespace rc;

void BM_ObjectMapPut(benchmark::State& state) {
  hash::ObjectMap m;
  std::uint64_t k = 0;
  for (auto _ : state) {
    m.put({1, k++ % 100000}, hash::ObjectLocation{{1, 0}, k, 1000});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObjectMapPut);

void BM_ObjectMapGet(benchmark::State& state) {
  hash::ObjectMap m;
  for (std::uint64_t k = 0; k < 100000; ++k) {
    m.put({1, k}, hash::ObjectLocation{{1, 0}, k, 1000});
  }
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.get({1, k++ % 100000}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObjectMapGet);

void BM_LogAppend(benchmark::State& state) {
  log::LogParams p;
  p.segmentBytes = 8 * 1024 * 1024;
  p.capacityBytes = 1ULL << 40;  // never clean
  log::Log lg(p);
  log::LogEntry e;
  e.tableId = 1;
  e.sizeBytes = 1100;
  for (auto _ : state) {
    e.keyId = static_cast<std::uint64_t>(state.iterations());
    e.version = e.keyId + 1;
    benchmark::DoNotOptimize(lg.append(e, 0));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1100);
}
BENCHMARK(BM_LogAppend);

void BM_CleanerPass(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    log::LogParams p;
    p.segmentBytes = 64 * 1024;
    p.capacityBytes = 1ULL << 30;
    log::Log lg(p);
    std::vector<log::LogRef> refs;
    log::LogEntry e;
    e.tableId = 1;
    e.sizeBytes = 1000;
    for (int i = 0; i < 128; ++i) {
      e.keyId = static_cast<std::uint64_t>(i);
      e.version = static_cast<std::uint64_t>(i) + 1;
      refs.push_back(lg.append(e, 0));
    }
    lg.sealHead();
    for (std::size_t i = 0; i < refs.size(); i += 2) lg.markDead(refs[i]);
    log::LogCleaner cleaner(lg, nullptr);
    state.ResumeTiming();
    benchmark::DoNotOptimize(cleaner.cleanOnce(sim::seconds(1)));
  }
}
BENCHMARK(BM_CleanerPass);

void BM_SimEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10000) sim.schedule(100, tick);
    };
    sim.schedule(100, tick);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimEventThroughput);

void BM_ZipfianNext(benchmark::State& state) {
  ycsb::WorkloadSpec s = ycsb::WorkloadSpec::C(1'000'000);
  s.distribution = ycsb::WorkloadSpec::Distribution::kZipfian;
  ycsb::KeyChooser kc(s, sim::Rng(1));
  for (auto _ : state) benchmark::DoNotOptimize(kc.next());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfianNext);

void BM_UniformNext(benchmark::State& state) {
  ycsb::KeyChooser kc(ycsb::WorkloadSpec::C(1'000'000), sim::Rng(1));
  for (auto _ : state) benchmark::DoNotOptimize(kc.next());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UniformNext);

class NopService : public net::RpcService {
 public:
  void handleRpc(const net::RpcRequest&, node::NodeId,
                 Responder respond) override {
    respond(net::RpcResponse{});
  }
};

void BM_SimulatedRpcRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    net::Network network(sim, net::TransportParams::infiniband());
    net::RpcSystem rpc(sim, network);
    NopService svc;
    rpc.bind(2, net::kMasterPort, &svc);
    int done = 0;
    std::function<void()> next = [&] {
      if (done >= 1000) return;
      rpc.call(1, 2, net::kMasterPort, net::RpcRequest{}, sim::seconds(1),
               [&](const net::RpcResponse&) {
                 ++done;
                 next();
               });
    };
    next();
    sim.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatedRpcRoundTrip);

}  // namespace

BENCHMARK_MAIN();
