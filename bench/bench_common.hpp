#pragma once

// Shared plumbing for the figure/table reproduction binaries.
//
// Every binary accepts:
//   --quick      smaller windows / data (CI smoke)
//   --full       paper-scale data volumes (slow; closest to the paper)
//   --seed N     experiment seed (default 42)
//   --csv        additionally dump any timeline series as CSV
//   --metrics-dir DIR   per-run metrics.jsonl + aligned 1 Hz series.csv
//                dumps (one subdirectory per experiment run)
//
// Output format: the paper-style table, then one "shape-check:" line per
// qualitative claim. The process exits non-zero if any shape check fails.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "core/table_format.hpp"
#include "obs/event_journal.hpp"
#include "sim/time.hpp"

namespace rc::bench {

struct Options {
  enum class Scale { kQuick, kDefault, kFull };
  Scale scale = Scale::kDefault;
  std::uint64_t seed = 42;
  bool csv = false;
  std::string metricsDir;

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) o.scale = Scale::kQuick;
      if (std::strcmp(argv[i], "--full") == 0) o.scale = Scale::kFull;
      if (std::strcmp(argv[i], "--csv") == 0) o.csv = true;
      if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        o.seed = std::strtoull(argv[++i], nullptr, 10);
      }
      if (std::strcmp(argv[i], "--metrics-dir") == 0 && i + 1 < argc) {
        o.metricsDir = argv[++i];
      }
    }
    return o;
  }

  /// Per-run subdirectory under --metrics-dir ("" when disabled).
  std::string runDir(const std::string& runName) const {
    return metricsDir.empty() ? std::string() : metricsDir + "/" + runName;
  }

  /// Multiplier for measurement windows.
  double timeScale() const {
    switch (scale) {
      case Scale::kQuick:
        return 0.15;
      case Scale::kFull:
        return 1.0;
      case Scale::kDefault:
        return 0.4;
    }
    return 0.4;
  }

  /// Timeline bucket for the crash-recovery experiments. Quick runs
  /// recover in well under a second, so 1 s buckets would average the
  /// replay burst into the surrounding idle time.
  sim::Duration recoverySampleEvery() const {
    return scale == Scale::kQuick ? sim::msec(100) : sim::seconds(1);
  }

  /// Records for the big crash-recovery experiments (paper: 10 M).
  std::uint64_t recoveryRecords(std::uint64_t paperValue = 10'000'000) const {
    switch (scale) {
      case Scale::kQuick:
        return paperValue / 50;
      case Scale::kFull:
        return paperValue;
      case Scale::kDefault:
        return paperValue / 5;
    }
    return paperValue / 5;
  }
};

/// Collects shape-check verdicts and renders the exit code.
class Verdict {
 public:
  void check(bool ok, const std::string& what) {
    all_ &= core::shapeCheck(ok, what);
  }
  int exitCode() const { return all_ ? 0 : 1; }

 private:
  bool all_ = true;
};

// ----- Event-journal shape helpers (recovery benches) -----------------------
//
// Recovery experiments return a copy of the cluster's event journal
// (RecoveryExperimentResult::spans); these helpers answer the usual shape
// questions — which phases ran, on how many nodes, and for how long.

/// The (single, if the run was healthy) root span named "recovery".
inline const obs::EventJournal::Span* recoveryRoot(
    const std::vector<obs::EventJournal::Span>& spans) {
  for (const auto& s : spans) {
    if (s.name == "recovery") return &s;
  }
  return nullptr;
}

inline int spanCount(const std::vector<obs::EventJournal::Span>& spans,
                     const std::string& name) {
  int n = 0;
  for (const auto& s : spans) n += s.name == name ? 1 : 0;
  return n;
}

/// Summed wall time of *closed* spans named `name` (busy-time; concurrent
/// spans count multiply).
inline double spanBusySeconds(
    const std::vector<obs::EventJournal::Span>& spans,
    const std::string& name) {
  double sec = 0;
  for (const auto& s : spans) {
    if (s.name == name && !s.open) sec += sim::toSeconds(s.duration());
  }
  return sec;
}

inline std::uint64_t spanBytes(
    const std::vector<obs::EventJournal::Span>& spans,
    const std::string& name) {
  std::uint64_t b = 0;
  for (const auto& s : spans) {
    if (s.name == name) b += s.bytes;
  }
  return b;
}

/// Distinct phase names grouped under recovery context `ctx`.
inline std::set<std::string> phaseNames(
    const std::vector<obs::EventJournal::Span>& spans, std::uint64_t ctx) {
  std::set<std::string> names;
  for (const auto& s : spans) {
    if (s.ctx == ctx) names.insert(s.name);
  }
  return names;
}

/// Distinct actor nodes participating in recovery context `ctx`.
inline std::set<int> phaseNodes(
    const std::vector<obs::EventJournal::Span>& spans, std::uint64_t ctx) {
  std::set<int> nodes;
  for (const auto& s : spans) {
    if (s.ctx == ctx) nodes.insert(s.node);
  }
  return nodes;
}

inline void banner(const std::string& title, const std::string& paperRef) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paperRef.c_str());
  std::printf("==============================================================\n");
}

}  // namespace rc::bench
