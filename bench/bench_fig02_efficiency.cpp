// Figure 2: energy efficiency (op/joule) of different cluster sizes under
// the read-only peak-performance workload.
//
// Paper: highest efficiency with 1 server at 30 clients (~3000 op/J);
// 5 servers reach barely half of that; 10 servers are several times less
// efficient — over-provisioning wastes idle-ish watts (Finding 1).

#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"

using namespace rc;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Fig. 2 — energy efficiency vs cluster size (read-only)",
                "Taleb et al., ICDCS'17, Fig. 2, Finding 1");

  const int serverCounts[] = {1, 5, 10};
  const int clientCounts[] = {1, 10, 30};
  double eff[3][3];
  for (int si = 0; si < 3; ++si) {
    for (int ci = 0; ci < 3; ++ci) {
      core::YcsbExperimentConfig cfg;
      cfg.servers = serverCounts[si];
      cfg.clients = clientCounts[ci];
      cfg.workload = ycsb::WorkloadSpec::C(500'000);
      cfg.seed = opt.seed;
      cfg.timeScale = opt.timeScale();
      eff[si][ci] = core::runYcsbExperiment(cfg).opsPerJoule;
    }
  }

  core::TableFormatter t(
      {"servers \\ clients", "1", "10", "30", "(op/joule)"});
  for (int si = 0; si < 3; ++si) {
    t.addRow({std::to_string(serverCounts[si]),
              core::TableFormatter::num(eff[si][0], 0),
              core::TableFormatter::num(eff[si][1], 0),
              core::TableFormatter::num(eff[si][2], 0), ""});
  }
  t.print();

  bench::Verdict v;
  v.check(core::within(eff[0][2], 2400, 3600),
          "1 server / 30 clients ~3000 op/J (paper: ~3000)");
  v.check(eff[1][2] < 0.65 * eff[0][2],
          "5 servers reach barely half the single-server efficiency");
  v.check(eff[2][2] < eff[1][2],
          "10 servers even less efficient (paper: 7.6x below 1 server)");
  v.check(eff[0][2] > eff[0][1] && eff[0][1] > eff[0][0],
          "efficiency rises with load on a fixed cluster");
  return v.exitCode();
}
