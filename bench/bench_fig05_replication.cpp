// Figure 5: total aggregated throughput of 20 servers running the
// update-heavy workload as a function of the replication factor.
//
// Paper: at 10 clients, rf 1 -> 4 drops 78 K -> 43 K (-45 %); at 30/60
// clients rf=4 lands around 41-50 K — replication is a first-order
// performance cost (Finding 3).

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "core/experiment.hpp"

using namespace rc;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Fig. 5 — replication factor vs throughput, 20 servers",
                "Taleb et al., ICDCS'17, Fig. 5, Finding 3");

  const int clientCounts[] = {10, 30, 60};
  double thr[3][4];
  double replWaitUs[3][4];
  // Exemplar integrity, collected from the 10-client runs (SLO tracking
  // on): every captured exemplar's stage durations must sum to its span
  // total within 1 us — the decomposition accounts for the whole RPC.
  std::uint64_t exemplars = 0;
  std::uint64_t exemplarsWithStages = 0;
  std::uint64_t exemplarSumViolations = 0;
  for (int ci = 0; ci < 3; ++ci) {
    for (int rf = 1; rf <= 4; ++rf) {
      core::YcsbExperimentConfig cfg;
      cfg.servers = 20;
      cfg.clients = clientCounts[ci];
      cfg.replicationFactor = rf;
      cfg.workload = ycsb::WorkloadSpec::A();
      cfg.seed = opt.seed;
      cfg.timeScale = opt.timeScale();
      cfg.metricsDir = opt.runDir("cl" + std::to_string(clientCounts[ci]) +
                                  "_rf" + std::to_string(rf));
      if (ci == 0) {
        cfg.tenant = "fig05";
        cfg.readSlo = obs::SloTarget{sim::usec(250), sim::msec(1)};
        cfg.updateSlo = obs::SloTarget{sim::usec(800), sim::msec(4)};
      }
      const auto r = core::runYcsbExperiment(cfg);
      thr[ci][rf - 1] = r.throughputOpsPerSec;
      replWaitUs[ci][rf - 1] = r.replicationWaitMeanUs;
      for (const auto& row : r.sloWindows) {
        for (const auto& ex : row.exemplars) {
          ++exemplars;
          if (ex.detail.numStages == 0) continue;
          ++exemplarsWithStages;
          sim::Duration sum = 0;
          for (std::uint8_t si = 0; si < ex.detail.numStages; ++si) {
            sum += ex.detail.stages[si].elapsed;
          }
          const auto diff = sum > ex.detail.total ? sum - ex.detail.total
                                                  : ex.detail.total - sum;
          if (diff > sim::usec(1)) ++exemplarSumViolations;
        }
      }
    }
  }

  core::TableFormatter t({"replication factor", "10 clients", "30 clients",
                          "60 clients", "(Kop/s)"});
  for (int rf = 1; rf <= 4; ++rf) {
    t.addRow({std::to_string(rf), core::TableFormatter::kops(thr[0][rf - 1]),
              core::TableFormatter::kops(thr[1][rf - 1]),
              core::TableFormatter::kops(thr[2][rf - 1]), ""});
  }
  t.print();
  std::printf("paper: 10 clients 78->43K (rf1->4); 30cl rf4 ~41K; "
              "60cl rf4 ~50K\n");
  std::printf("mean replication wait, 10 clients: rf1 %.0fus -> rf4 %.0fus\n\n",
              replWaitUs[0][0], replWaitUs[0][3]);

  bench::Verdict v;
  const double drop10 = 1.0 - thr[0][3] / thr[0][0];
  v.check(core::within(drop10, 0.30, 0.65),
          "rf 1->4 costs ~45% throughput at 10 clients (measured " +
              core::TableFormatter::num(100 * drop10, 0) + "%)");
  for (int ci = 0; ci < 3; ++ci) {
    bool monotone = true;
    for (int rf = 1; rf < 4; ++rf) monotone &= thr[ci][rf] < thr[ci][rf - 1];
    v.check(monotone, std::string("throughput falls monotonically with rf (") +
                          std::to_string(clientCounts[ci]) + " clients)");
  }
  v.check(replWaitUs[0][3] > replWaitUs[0][0],
          "per-RPC replication wait grows rf 1->4 (10 clients)");
  std::printf("exemplars: %llu captured, %llu with stage decompositions, "
              "%llu sum violations\n",
              static_cast<unsigned long long>(exemplars),
              static_cast<unsigned long long>(exemplarsWithStages),
              static_cast<unsigned long long>(exemplarSumViolations));
  v.check(exemplarsWithStages > 0,
          "10-client runs captured staged exemplars");
  v.check(exemplarSumViolations == 0,
          "every exemplar's stages sum to its span total (within 1us)");
  return v.exitCode();
}
