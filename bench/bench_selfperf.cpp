// bench_selfperf — wall-clock performance of the simulator itself.
//
// Unlike the fig/table benches (which reproduce the paper's *modelled*
// numbers), this harness measures how fast the host turns over simulated
// events on three canonical scenarios; sweep density — and therefore CI
// wall time — is directly proportional to it. See docs/PERF.md.
//
//   bench_selfperf [--quick] [--repeat N] [--json FILE]
//                  [--check BASELINE] [--tolerance FRAC]
//                  [--slo-overhead [--slo-tolerance FRAC]]
//                  [--energy-overhead [--energy-tolerance FRAC]]
//                  [--overload-overhead [--overload-tolerance FRAC]]
//
// --check gates the process exit code: any scenario whose events/sec drops
// more than --tolerance (default 0.25) below the recorded baseline fails.
//
// --slo-overhead runs the ycsb_b scenario twice on this host — SLO tracker
// off, then on (tenant classes declared, every op recorded, exemplars
// kept) — and fails if the on-variant's events/sec drops more than
// --slo-tolerance (default 0.05) below the off-variant's. Same-machine
// A/B, so the gate is immune to host speed differences.
//
// --energy-overhead is the same A/B for the per-resource energy ledger
// (docs/ENERGY.md): ycsb_b with metering off vs on (the default wiring),
// gated at --energy-tolerance (default 0.05).
//
// --overload-overhead is the same A/B for the overload-control machinery
// (docs/OVERLOAD.md): ycsb_b — which never sheds — with admission control
// and client retry budgets off vs on (the default wiring), gated at
// --overload-tolerance (default 0.05). The scenario stays below capacity,
// so the pair isolates the pure bookkeeping cost of admission checks and
// sojourn tracking on the request hot path.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fault/selfperf.hpp"

namespace {

// Same-host off/on A/B of a hot-path feature's cost on ycsb_b. Wall-clock
// A/B on a shared host is noisy (~+-5% run to run), so: one discarded
// warmup, then N reps per side with the off/on order alternating each rep
// (cancels cache/allocator warmup bias), and the per-side *best* run as
// the estimate — the minimum-interference execution is the stablest proxy
// for true cost. Returns 0 when the on-variant's events/sec stays within
// `tolerance` of the off-variant's.
int overheadGate(const char* what, const rc::fault::selfperf::Options& off,
                 const rc::fault::selfperf::Options& on, double tolerance) {
  const int reps = off.repeat < 5 ? 5 : off.repeat;
  (void)rc::fault::selfperf::runYcsbB(off);  // warmup, discarded
  std::vector<double> offs, ons;
  for (int r = 0; r < reps; ++r) {
    if (r % 2 == 0) {
      offs.push_back(rc::fault::selfperf::runYcsbB(off).eventsPerSec());
      ons.push_back(rc::fault::selfperf::runYcsbB(on).eventsPerSec());
    } else {
      ons.push_back(rc::fault::selfperf::runYcsbB(on).eventsPerSec());
      offs.push_back(rc::fault::selfperf::runYcsbB(off).eventsPerSec());
    }
  }
  const double evOff = *std::max_element(offs.begin(), offs.end());
  const double evOn = *std::max_element(ons.begin(), ons.end());
  const double drop = evOff > 0 ? 1.0 - evOn / evOff : 0.0;
  std::printf("%s-overhead: ycsb_b off %.0f ev/s, on %.0f ev/s, "
              "drop %.2f%% (tolerance %.2f%%)\n",
              what, evOff, evOn, drop * 100.0, tolerance * 100.0);
  if (drop > tolerance) {
    std::fprintf(stderr, "selfperf: %s overhead %.2f%% exceeds %.2f%%\n",
                 what, drop * 100.0, tolerance * 100.0);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  rc::fault::selfperf::Options opt;
  std::string jsonPath = "BENCH_selfperf.json";
  std::string checkPath;
  double tolerance = 0.25;
  bool sloOverhead = false;
  double sloTolerance = 0.05;
  bool energyOverhead = false;
  double energyTolerance = 0.05;
  bool overloadOverhead = false;
  double overloadTolerance = 0.05;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) opt.quick = true;
    if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      opt.repeat = std::atoi(argv[++i]);
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    }
    if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      checkPath = argv[++i];
    }
    if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    }
    if (std::strcmp(argv[i], "--slo-overhead") == 0) sloOverhead = true;
    if (std::strcmp(argv[i], "--slo-tolerance") == 0 && i + 1 < argc) {
      sloTolerance = std::strtod(argv[++i], nullptr);
    }
    if (std::strcmp(argv[i], "--energy-overhead") == 0) energyOverhead = true;
    if (std::strcmp(argv[i], "--energy-tolerance") == 0 && i + 1 < argc) {
      energyTolerance = std::strtod(argv[++i], nullptr);
    }
    if (std::strcmp(argv[i], "--overload-overhead") == 0) {
      overloadOverhead = true;
    }
    if (std::strcmp(argv[i], "--overload-tolerance") == 0 && i + 1 < argc) {
      overloadTolerance = std::strtod(argv[++i], nullptr);
    }
  }
  if (opt.repeat < 1) opt.repeat = 1;

  if (sloOverhead) {
    // A/B the SLO tracker's hot-path cost on ycsb_b (docs/SLO.md gate).
    auto off = opt;
    off.slo = false;
    auto on = opt;
    on.slo = true;
    return overheadGate("slo", off, on, sloTolerance);
  }

  if (energyOverhead) {
    // A/B the energy ledger's charging cost on ycsb_b (docs/ENERGY.md
    // gate): metering disabled vs the default fully-wired accounting.
    auto off = opt;
    off.energy = false;
    auto on = opt;
    on.energy = true;
    return overheadGate("energy", off, on, energyTolerance);
  }

  if (overloadOverhead) {
    // A/B the admission-control + retry-budget bookkeeping on a
    // never-overloaded ycsb_b (docs/OVERLOAD.md gate).
    auto off = opt;
    off.overload = false;
    auto on = opt;
    on.overload = true;
    return overheadGate("overload", off, on, overloadTolerance);
  }

  std::printf("selfperf: simulator hot-path throughput (%s scale, "
              "best of %d)\n", opt.quick ? "quick" : "default", opt.repeat);
  const auto results = rc::fault::selfperf::runAll(opt);
  for (const auto& r : results) {
    std::printf("  %-14s %12llu events  %6.2f sim-s  %7.3f wall-s  "
                "%10.0f ev/s  %.4f wall-s/sim-s",
                r.name.c_str(), static_cast<unsigned long long>(r.events),
                r.simSeconds, r.wallSeconds, r.eventsPerSec(),
                r.wallPerSimSecond());
    if (r.ops > 0) std::printf("  %.2f ev/op", r.eventsPerOp());
    std::printf("\n");
  }

  if (!rc::fault::selfperf::writeJson(results, opt, jsonPath)) {
    std::fprintf(stderr, "selfperf: cannot write %s\n", jsonPath.c_str());
    return 1;
  }
  std::printf("selfperf: wrote %s\n", jsonPath.c_str());

  if (!checkPath.empty()) {
    const auto check = rc::fault::selfperf::checkAgainstBaseline(
        results, checkPath, tolerance);
    for (const auto& m : check.messages) {
      std::printf("baseline-check: %s\n", m.c_str());
    }
    if (!check.ok) {
      std::fprintf(stderr, "selfperf: events/sec regression vs %s\n",
                   checkPath.c_str());
      return 1;
    }
  }
  return 0;
}
