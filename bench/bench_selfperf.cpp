// bench_selfperf — wall-clock performance of the simulator itself.
//
// Unlike the fig/table benches (which reproduce the paper's *modelled*
// numbers), this harness measures how fast the host turns over simulated
// events on three canonical scenarios; sweep density — and therefore CI
// wall time — is directly proportional to it. See docs/PERF.md.
//
//   bench_selfperf [--quick] [--repeat N] [--json FILE]
//                  [--check BASELINE] [--tolerance FRAC]
//
// --check gates the process exit code: any scenario whose events/sec drops
// more than --tolerance (default 0.25) below the recorded baseline fails.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fault/selfperf.hpp"

int main(int argc, char** argv) {
  rc::fault::selfperf::Options opt;
  std::string jsonPath = "BENCH_selfperf.json";
  std::string checkPath;
  double tolerance = 0.25;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) opt.quick = true;
    if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      opt.repeat = std::atoi(argv[++i]);
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    }
    if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      checkPath = argv[++i];
    }
    if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    }
  }
  if (opt.repeat < 1) opt.repeat = 1;

  std::printf("selfperf: simulator hot-path throughput (%s scale, "
              "best of %d)\n", opt.quick ? "quick" : "default", opt.repeat);
  const auto results = rc::fault::selfperf::runAll(opt);
  for (const auto& r : results) {
    std::printf("  %-14s %12llu events  %6.2f sim-s  %7.3f wall-s  "
                "%10.0f ev/s  %.4f wall-s/sim-s\n",
                r.name.c_str(), static_cast<unsigned long long>(r.events),
                r.simSeconds, r.wallSeconds, r.eventsPerSec(),
                r.wallPerSimSecond());
  }

  if (!rc::fault::selfperf::writeJson(results, opt, jsonPath)) {
    std::fprintf(stderr, "selfperf: cannot write %s\n", jsonPath.c_str());
    return 1;
  }
  std::printf("selfperf: wrote %s\n", jsonPath.c_str());

  if (!checkPath.empty()) {
    const auto check = rc::fault::selfperf::checkAgainstBaseline(
        results, checkPath, tolerance);
    for (const auto& m : check.messages) {
      std::printf("baseline-check: %s\n", m.c_str());
    }
    if (!check.ok) {
      std::fprintf(stderr, "selfperf: events/sec regression vs %s\n",
                   checkPath.c_str());
      return 1;
    }
  }
  return 0;
}
