// Network ablation: Infiniband vs Gigabit Ethernet transport.
//
// The paper uses RAMCloud's Infiniband transport exclusively and cites a
// companion study (Taleb et al., hal-01376923) for the network's impact on
// performance and energy efficiency. This bench quantifies that choice on
// our substrate: kernel-TCP GigE multiplies small-RPC latency and caps
// per-client closed-loop rates.

#include <cstdio>

#include "bench_common.hpp"
#include "core/cluster.hpp"
#include "ycsb/ycsb_client.hpp"

using namespace rc;

namespace {

struct Result {
  double kops;
  double readLatUs;
  double opsPerJoule;
};

Result run(net::TransportParams transport, const bench::Options& opt) {
  core::ClusterParams cp;
  cp.servers = 5;
  cp.clients = 10;
  cp.seed = opt.seed;
  cp.transport = transport;
  core::Cluster cluster(cp);
  const auto table = cluster.createTable("usertable");
  cluster.bulkLoad(table, 100'000, 1000);
  cluster.configureYcsb(table, ycsb::WorkloadSpec::C(),
                        ycsb::YcsbClientParams{});
  cluster.startYcsb();

  const auto warmup = static_cast<sim::Duration>(
      static_cast<double>(sim::seconds(1)) * opt.timeScale() / 0.4);
  const auto measure = static_cast<sim::Duration>(
      static_cast<double>(sim::seconds(4)) * opt.timeScale() / 0.4);
  cluster.sim().runFor(warmup);
  const auto t0 = cluster.sim().now();
  const auto ops0 = cluster.totalOpsCompleted();
  std::vector<node::CpuScheduler::Snapshot> snaps;
  for (int i = 0; i < cluster.serverCount(); ++i) {
    snaps.push_back(cluster.server(i).node->snapshotCpu());
  }
  cluster.sim().runFor(measure);
  const auto t1 = cluster.sim().now();
  cluster.stopYcsb();

  Result r;
  r.kops = static_cast<double>(cluster.totalOpsCompleted() - ops0) /
           sim::toSeconds(t1 - t0) / 1e3;
  sim::Histogram reads;
  for (int i = 0; i < cluster.clientCount(); ++i) {
    reads.merge(cluster.clientHost(i).ycsb->stats().readLatency);
  }
  r.readLatUs = reads.mean() / 1e3;
  double watts = 0;
  for (int i = 0; i < cluster.serverCount(); ++i) {
    watts += cp.serverNode.power.watts(
        cluster.server(i).node->meanUtilisationSince(
            snaps[static_cast<std::size_t>(i)], t1));
  }
  r.opsPerJoule = r.kops * 1e3 / watts;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Ablation — Infiniband vs Gigabit Ethernet transport",
                "Taleb et al., ICDCS'17, SS III-B (transport choice) & [24]");

  const Result ib = run(net::TransportParams::infiniband(), opt);
  const Result eth = run(net::TransportParams::gigabitEthernet(), opt);

  core::TableFormatter t({"transport", "throughput (Kop/s)",
                          "read latency (us)", "op/J"});
  t.addRow({"Infiniband-20G", core::TableFormatter::num(ib.kops, 0) + "K",
            core::TableFormatter::num(ib.readLatUs, 1),
            core::TableFormatter::num(ib.opsPerJoule, 0)});
  t.addRow({"Gigabit Ethernet", core::TableFormatter::num(eth.kops, 0) + "K",
            core::TableFormatter::num(eth.readLatUs, 1),
            core::TableFormatter::num(eth.opsPerJoule, 0)});
  t.print();

  bench::Verdict v;
  v.check(ib.readLatUs < 30, "IB keeps small reads in the ~15 us regime");
  v.check(eth.readLatUs > 3 * ib.readLatUs,
          "kernel-TCP GigE multiplies small-RPC latency");
  v.check(eth.kops < 0.5 * ib.kops,
          "closed-loop throughput collapses accordingly");
  v.check(eth.opsPerJoule < ib.opsPerJoule,
          "and energy efficiency with it (the companion study's point)");
  return v.exitCode();
}
