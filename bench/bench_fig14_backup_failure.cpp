// Figure 14 (extension): recovery resilience to backup failures *during*
// recovery. For rf = 2..4, crash a tablet owner, then kill 0, 1 or 2 pure
// backup servers mid-recovery (30/60 ms after the coordinator admits it)
// and measure recovery time and the availability gap (crash -> tablets
// served again). The paper only studies clean recoveries (Figs. 9-11);
// this quantifies the safety margin the replication factor actually buys:
// rf = r tolerates r-1 concurrent process failures with bounded recovery
// inflation, and fewer replicas than failures means permanent loss.
//
// Emits one JSON line per run (machine-readable) plus the usual table.

#include <cstdio>
#include <functional>
#include <memory>

#include "bench_common.hpp"
#include "core/cluster.hpp"
#include "fault/fault_injector.hpp"
#include "server/master_service.hpp"

using namespace rc;

namespace {

constexpr int kServers = 8;
constexpr int kTableSpan = 5;  // servers 5..7 hold replicas but no tablets
constexpr sim::SimTime kKillAt = sim::seconds(2);

struct RunResult {
  bool converged = false;
  bool recovered = false;
  bool allKeys = false;
  double recoverySec = 0;   ///< coordinator's detectedAt -> finishedAt
  double gapSec = 0;        ///< crash -> tablets served again
  double repairDeficit = 0; ///< rf deficit left at the deadline
  std::uint64_t rpcRetries = 0;      ///< client re-issues (net.rpc.retries.*)
  double duplicatesSuppressed = 0;   ///< linearize.duplicates_suppressed
};

/// Closed-loop write probe on a key owned by the server that will crash:
/// the write caught by the crash times out and is retried, so the run
/// exercises the client retry path (and, when the original attempt got
/// durable first, the new owner's duplicate suppression). Returns the stop
/// flag.
std::shared_ptr<bool> startWriteProbe(core::Cluster& c, std::uint64_t table,
                                      std::uint64_t key) {
  auto stop = std::make_shared<bool>(false);
  auto step = std::make_shared<std::function<void()>>();
  auto& rc = *c.clientHost(0).rc;
  *step = [&c, &rc, table, key, stop, step] {
    if (*stop) return;
    rc.write(table, key, 100, [&c, stop, step](net::Status, sim::Duration) {
      if (*stop) return;
      c.sim().schedule(sim::msec(2), [step] { (*step)(); });
    });
  };
  (*step)();
  return stop;
}

RunResult runOnce(int rf, int backupFailures, std::uint64_t records,
                  std::uint64_t seed, bool injectFaults = true) {
  core::ClusterParams p;
  p.servers = kServers;
  p.clients = 1;
  p.seed = seed;
  p.replicationFactor = rf;
  core::Cluster c(p);
  const auto table = c.createTable("t", kTableSpan);
  c.bulkLoad(table, records, 1000);

  std::uint64_t probeKey = 0;
  while (c.ownerOfKey(table, probeKey) != c.serverNodeId(0)) ++probeKey;
  auto probeStop = startWriteProbe(c, table, probeKey);

  fault::FaultPlan plan;
  if (injectFaults) {
    plan.crashServer(kKillAt, 0);
    if (backupFailures >= 1) plan.crashOnRecovery(1, sim::msec(30), 7);
    if (backupFailures >= 2) plan.crashOnRecovery(1, sim::msec(60), 6);
  }
  fault::FaultInjector injector(c, plan, c.sim().rng().fork(0xF14));
  injector.arm();

  auto rfDeficit = [&c] {
    double d = 0;
    for (int i = 0; i < c.serverCount(); ++i) {
      if (c.serverAlive(i)) {
        d += static_cast<double>(
            c.server(i).master->replicaManager().rfDeficit());
      }
    }
    return d;
  };

  // Healthy map: every tablet served by a live server. A recovery master
  // that dies right after finishing its partition leaves tablets pointed
  // at a corpse until the failure detector triggers the *next* recovery —
  // convergence must wait that cascade out.
  auto mapHealthy = [&c] {
    for (const auto& e : c.coord().tabletMap().entries()) {
      if (e.state != coordinator::TabletMap::TabletState::kUp) return false;
      bool alive = false;
      for (int i = 0; i < c.serverCount(); ++i) {
        alive |= c.serverAlive(i) && c.serverNodeId(i) == e.tablet.owner;
      }
      if (!alive) return false;
    }
    return true;
  };

  if (injectFaults) {
    const sim::SimTime deadline = sim::seconds(600);
    while (c.sim().now() < deadline &&
           (c.coord().recoveryLog().empty() ||
            c.coord().recoveryInProgress() || rfDeficit() > 0 ||
            !mapHealthy())) {
      c.sim().runFor(sim::msec(100));
    }
  } else {
    // Fault-free shape-check window: no retries, no suppressed duplicates.
    c.sim().runFor(sim::seconds(4));
  }
  *probeStop = true;
  c.sim().runFor(sim::seconds(1));  // drain the probe's last op

  RunResult r;
  r.converged =
      !c.coord().recoveryInProgress() && rfDeficit() == 0 && mapHealthy();
  r.repairDeficit = rfDeficit();
  for (const auto& rec : c.coord().recoveryLog()) {
    if (rec.crashed != c.serverNodeId(0)) continue;
    r.recovered = rec.succeeded;
    r.recoverySec = sim::toSeconds(rec.duration());
    r.gapSec = sim::toSeconds(rec.finishedAt - kKillAt);
  }
  r.allKeys = c.verifyAllKeysPresent(table, records);
  r.rpcRetries = c.totalRpcRetries();
  r.duplicatesSuppressed =
      c.metrics().value("cluster.linearize.duplicates_suppressed");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner(
      "Fig. 14 (ext) — recovery under backup failures, by replication factor",
      "extends Taleb et al., ICDCS'17, Figs. 9-11 (multi-failure hardening)");

  const std::uint64_t records = opt.recoveryRecords(300'000);
  core::TableFormatter t({"rf", "backup deaths", "recovered", "all keys",
                          "recovery (s)", "avail. gap (s)"});
  // results[rf - 2][failures]
  RunResult results[3][3];
  for (int rf = 2; rf <= 4; ++rf) {
    for (int failures = 0; failures <= 2; ++failures) {
      const auto r = runOnce(rf, failures, records, opt.seed);
      results[rf - 2][failures] = r;
      t.addRow({std::to_string(rf), std::to_string(failures),
                r.recovered ? "yes" : "NO", r.allKeys ? "yes" : "NO",
                core::TableFormatter::num(r.recoverySec, 2),
                core::TableFormatter::num(r.gapSec, 2)});
      std::printf(
          "{\"figure\":\"14ext\",\"rf\":%d,\"backup_failures\":%d,"
          "\"recovered\":%s,\"all_keys_present\":%s,\"converged\":%s,"
          "\"recovery_s\":%.3f,\"availability_gap_s\":%.3f,"
          "\"rf_deficit_left\":%.0f,\"rpc_retries\":%llu,"
          "\"duplicates_suppressed\":%.0f,\"records\":%llu,\"seed\":%llu}\n",
          rf, failures, r.recovered ? "true" : "false",
          r.allKeys ? "true" : "false", r.converged ? "true" : "false",
          r.recoverySec, r.gapSec, r.repairDeficit,
          static_cast<unsigned long long>(r.rpcRetries),
          r.duplicatesSuppressed, static_cast<unsigned long long>(records),
          static_cast<unsigned long long>(opt.seed));
    }
  }
  t.print();
  std::printf("note: each run crashes one tablet owner at t=2s; backup "
              "deaths hit tablet-less replica holders 30/60 ms into the "
              "recovery. 'avail. gap' = crash to tablets served again. A "
              "write probe runs throughout, so rpc_retries counts the "
              "client re-issues the crash forced and duplicates_suppressed "
              "the retries answered from completion records.\n\n");

  // Fault-free shape check: the exactly-once machinery must be inert when
  // nothing fails.
  const auto base = runOnce(3, 0, records, opt.seed, /*injectFaults=*/false);
  std::printf(
      "{\"figure\":\"14ext-baseline\",\"rf\":3,\"backup_failures\":0,"
      "\"rpc_retries\":%llu,\"duplicates_suppressed\":%.0f,"
      "\"records\":%llu,\"seed\":%llu}\n",
      static_cast<unsigned long long>(base.rpcRetries),
      base.duplicatesSuppressed, static_cast<unsigned long long>(records),
      static_cast<unsigned long long>(opt.seed));

  bench::Verdict v;
  v.check(base.duplicatesSuppressed == 0 && base.rpcRetries == 0,
          "no faults -> zero suppressed duplicates and zero client retries");
  // With failures <= rf-1 concurrent crashes, nothing may be lost.
  bool safeZoneIntact = true;
  for (int rf = 2; rf <= 4; ++rf) {
    for (int f = 0; f <= 2 && f <= rf - 2; ++f) {
      const auto& r = results[rf - 2][f];
      safeZoneIntact &= r.recovered && r.allKeys && r.converged;
    }
  }
  v.check(safeZoneIntact,
          "every run with backup deaths <= rf-2 recovers with zero loss "
          "(total concurrent failures stay <= rf-1)");
  v.check(results[1][1].recovered && results[1][1].allKeys,
          "rf=3 tolerates one backup death mid-recovery");
  v.check(results[1][1].recoverySec <
              2.0 * results[1][0].recoverySec + 0.5,
          "rf=3's recovery time inflates < 2x when one backup dies "
          "mid-recovery (failover, not restart)");
  v.check(results[2][2].recovered && results[2][2].allKeys,
          "rf=4 tolerates two backup deaths mid-recovery");
  v.check(results[0][0].recovered && results[0][0].allKeys,
          "clean recovery baseline holds at rf=2");
  return v.exitCode();
}
