// Table II: aggregated throughput of 10 servers under YCSB workloads
// A (50/50), B (95/5) and C (read-only) for 10..90 clients.
//
// Paper row shapes: C scales linearly to 2 Mop/s; B flattens after 30
// clients (~844 K at 90); A peaks around 20 clients (~106 K) then
// *declines* to ~64 K — Finding 2's thread-handling collapse.

#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"

using namespace rc;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Table II — throughput by workload, 10 servers",
                "Taleb et al., ICDCS'17, Table II, Finding 2");

  const int clientCounts[] = {10, 20, 30, 60, 90};
  double thr[3][5];
  const ycsb::WorkloadSpec specs[] = {ycsb::WorkloadSpec::A(),
                                      ycsb::WorkloadSpec::B(),
                                      ycsb::WorkloadSpec::C()};
  for (int w = 0; w < 3; ++w) {
    for (int ci = 0; ci < 5; ++ci) {
      core::YcsbExperimentConfig cfg;
      cfg.servers = 10;
      cfg.clients = clientCounts[ci];
      cfg.workload = specs[w];
      cfg.seed = opt.seed;
      cfg.timeScale = opt.timeScale();
      thr[w][ci] = core::runYcsbExperiment(cfg).throughputOpsPerSec;
    }
  }

  core::TableFormatter t({"clients", "A (Kop/s)", "B (Kop/s)", "C (Kop/s)"});
  for (int ci = 0; ci < 5; ++ci) {
    t.addRow({std::to_string(clientCounts[ci]),
              core::TableFormatter::kops(thr[0][ci]),
              core::TableFormatter::kops(thr[1][ci]),
              core::TableFormatter::kops(thr[2][ci])});
  }
  t.print();
  std::printf("paper:    A: 98/106/64/63/64K   B: 236/454/622/816/844K   "
              "C: 236/482/753/1433/2004K\n\n");

  bench::Verdict v;
  // C: linear scaling.
  v.check(thr[2][4] > 7.0 * thr[2][0],
          "C scales ~linearly from 10 to 90 clients");
  v.check(core::within(thr[2][4] / 1e3, 1500, 2800),
          "C reaches ~2 Mop/s at 90 clients");
  // B: flattens (sub-2x gain from 30 to 90 clients).
  v.check(thr[1][4] < 1.6 * thr[1][2],
          "B collapses (sub-linear) after 30 clients");
  v.check(thr[1][4] < 0.65 * thr[2][4],
          "B loses a large share vs C at 90 clients (paper: 57%)");
  // A: peaks then declines to a plateau.
  const double aPeak = std::max({thr[0][0], thr[0][1], thr[0][2]});
  v.check(aPeak >= thr[0][4],
          "A peaks at low-mid client counts, no gain at 90");
  v.check(thr[0][4] < 0.08 * thr[2][4],
          "A degraded >= 92% vs C at 90 clients (paper: 97%)");
  return v.exitCode();
}
