// Figure 7: average power per node of 40 servers (60 clients,
// update-heavy) as a function of the replication factor.
//
// Paper: ~103 W at rf=1 rising to ~115 W at rf=4 — replication work burns
// CPU on every node (Finding 3).

#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"

using namespace rc;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Fig. 7 — power per node vs replication factor, 40 servers",
                "Taleb et al., ICDCS'17, Fig. 7");

  double watts[4];
  for (int rf = 1; rf <= 4; ++rf) {
    core::YcsbExperimentConfig cfg;
    cfg.servers = 40;
    cfg.clients = 60;
    cfg.replicationFactor = rf;
    cfg.workload = ycsb::WorkloadSpec::A();
    cfg.seed = opt.seed;
    cfg.timeScale = opt.timeScale();
    watts[rf - 1] = core::runYcsbExperiment(cfg).meanPowerPerServerW;
  }

  core::TableFormatter t({"replication factor", "avg power per node (W)"});
  for (int rf = 1; rf <= 4; ++rf) {
    t.addRow({std::to_string(rf), core::TableFormatter::num(watts[rf - 1], 1)});
  }
  t.print();
  std::printf("paper: 103 / ~108 / ~112 / 115 W\n\n");

  bench::Verdict v;
  v.check(core::within(watts[0], 85, 112), "rf=1 in the ~100 W band");
  v.check(watts[3] < 128, "rf=4 stays within the node's power envelope");
  // The key claim is the ordering, not the exact delta.
  v.check(watts[3] > watts[0],
          "power per node rises with the replication factor");
  return v.exitCode();
}
