// Figure 13: aggregated throughput with client-side request throttling
// (update-heavy, 10 servers, rf=2, client rate capped at 200 or 500
// req/s).
//
// Paper §IX: throttling lets the overload-prone 10-server configuration
// scale linearly with clients instead of collapsing/crashing.
//
// Part 2 (SLO attribution, docs/SLO.md): a mixed-tenant run — half the
// clients throttled at 200 R/S, half open — with per-tenant windowed
// p99/p999 and burn-rate columns. SLO latency counts from op *intent*
// (before the token-bucket wait), so the throttled tenant's burn rate must
// dominate the open tenant's in every window: throttling trades tail
// latency for cluster stability, and the tracker makes that trade visible.

#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "core/openloop.hpp"

using namespace rc;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Fig. 13 — client-side request throttling",
                "Taleb et al., ICDCS'17, Fig. 13, SS IX");

  const int clientCounts[] = {10, 30, 60};
  const double rates[] = {200, 500};
  double thr[2][3];
  for (int ri = 0; ri < 2; ++ri) {
    for (int ci = 0; ci < 3; ++ci) {
      core::YcsbExperimentConfig cfg;
      cfg.servers = 10;
      cfg.clients = clientCounts[ci];
      cfg.replicationFactor = 2;
      cfg.workload = ycsb::WorkloadSpec::A();
      cfg.throttleOpsPerSec = rates[ri];
      cfg.seed = opt.seed;
      cfg.timeScale = opt.timeScale();
      thr[ri][ci] = core::runYcsbExperiment(cfg).throughputOpsPerSec;
    }
  }

  core::TableFormatter t({"clients", "rate 200 R/S (op/s)",
                          "rate 500 R/S (op/s)"});
  for (int ci = 0; ci < 3; ++ci) {
    t.addRow({std::to_string(clientCounts[ci]),
              core::TableFormatter::num(thr[0][ci], 0),
              core::TableFormatter::num(thr[1][ci], 0)});
  }
  t.print();
  std::printf("paper: linear growth up to 60 clients; 500 R/S x 60 = 30K\n\n");

  bench::Verdict v;
  v.check(core::within(thr[0][2], 10'800, 13'200),
          "200 R/S x 60 clients -> ~12 Kop/s delivered");
  v.check(core::within(thr[1][2], 27'000, 33'000),
          "500 R/S x 60 clients -> ~30 Kop/s delivered");
  for (int ri = 0; ri < 2; ++ri) {
    const double perClient10 = thr[ri][0] / 10;
    const double perClient60 = thr[ri][2] / 60;
    v.check(std::abs(perClient60 - perClient10) < 0.12 * perClient10,
            "linear scaling under throttling (rate " +
                core::TableFormatter::num(rates[ri], 0) + ")");
  }

  // ----- Part 2: mixed-tenant SLO attribution ------------------------------
  std::printf("mixed tenants: 10 clients throttled @200 R/S, 10 open "
              "(intent-time SLO latency)\n");
  core::YcsbExperimentConfig mix;
  mix.servers = 10;
  mix.clients = 20;
  mix.replicationFactor = 2;
  mix.workload = ycsb::WorkloadSpec::A();
  mix.seed = opt.seed;
  mix.timeScale = opt.timeScale();
  mix.metricsDir = opt.runDir("mixed_tenants");  // slo.jsonl for `rcdiag slo`
  const obs::SloTarget readTarget{sim::usec(250), sim::msec(1)};
  const obs::SloTarget updateTarget{sim::usec(600), sim::usecF(2500)};
  mix.clusterHook = [&](core::Cluster& c) {
    c.sloTracker().declareClass("throttled/read", readTarget);
    c.sloTracker().declareClass("throttled/update", updateTarget);
    c.sloTracker().declareClass("open/read", readTarget);
    c.sloTracker().declareClass("open/update", updateTarget);
  };
  mix.perClientParams = [](int i, ycsb::YcsbClientParams& p) {
    if (i % 2 == 0) {
      p.tenant = "throttled";
      p.throttleOpsPerSec = 200;
    } else {
      p.tenant = "open";
    }
  };
  const auto mr = core::runYcsbExperiment(mix);

  // window -> class -> row, for side-by-side per-window columns.
  std::map<std::uint64_t, std::map<std::string, obs::SloTracker::WindowRow>>
      byWindow;
  for (const auto& row : mr.sloWindows) byWindow[row.window][row.cls] = row;

  core::TableFormatter st({"window", "class", "count", "p99 (us)",
                           "p999 (us)", "burn", "breached"});
  for (const auto& [win, classes] : byWindow) {
    for (const auto& [cls, row] : classes) {
      st.addRow({std::to_string(win), cls, std::to_string(row.count),
                 core::TableFormatter::num(sim::toMicros(row.p99), 1),
                 core::TableFormatter::num(sim::toMicros(row.p999), 1),
                 core::TableFormatter::num(row.burnRate, 2),
                 row.breached ? "YES" : "no"});
    }
  }
  st.print();

  // Throttled burn must dominate open burn wherever both tenants completed
  // requests in the same window (both op classes).
  int comparable = 0;
  int dominated = 0;
  for (const auto& [win, classes] : byWindow) {
    for (const char* op : {"read", "update"}) {
      const auto t = classes.find(std::string("throttled/") + op);
      const auto o = classes.find(std::string("open/") + op);
      if (t == classes.end() || o == classes.end()) continue;
      if (t->second.count == 0 || o->second.count == 0) continue;
      ++comparable;
      dominated += t->second.burnRate >= o->second.burnRate ? 1 : 0;
    }
  }
  std::printf("throttled-vs-open burn: dominated in %d/%d comparable "
              "windows\n\n", dominated, comparable);
  v.check(comparable > 0 && dominated == comparable,
          "throttled tenant burns budget faster than open in every window");
  v.check(mr.sloBreachedWindows > 0,
          "over-admitted throttled tenant breaches its SLO");

  // ----- Part 3: server-side per-tenant QoS, open-loop ---------------------
  // The dual of the paper's client-side throttling: the *server's* dispatch
  // polices each tenant with a weighted token bucket (docs/WORKLOADS.md).
  // Tenant B's population surges 10x; its admitted volume is capped at the
  // bucket while tenant A's intent-time tail holds.
  std::printf("open-loop tenants: steady A vs surging B, dispatch QoS "
              "buckets (docs/WORKLOADS.md)\n");
  core::OpenLoopConfig ol;
  ol.servers = 10;
  ol.replicationFactor = 2;
  ol.workload = ycsb::WorkloadSpec::A();
  ol.seed = opt.seed;
  ol.timeScale = opt.timeScale();
  auto mkTenant = [](const char* name, double perNodeRate) {
    core::OpenLoopTenantConfig t;
    t.name = name;
    t.sources = 1;
    t.shape.users = 4'000;  // 4 Kop/s offered per tenant
    t.readSlo = {sim::usec(250), sim::msec(1)};
    t.updateSlo = {sim::usec(600), sim::usecF(2500)};
    t.qosRatePerSec = perNodeRate;
    return t;
  };
  core::OpenLoopTenantConfig olA = mkTenant("steady", 800);  // 8 Kop/s cap
  olA.qosPriority = true;
  core::OpenLoopTenantConfig olB = mkTenant("surging", 600);  // 6 Kop/s cap
  const auto surgeStart = static_cast<sim::SimTime>(
      static_cast<double>(sim::seconds(4)) * ol.timeScale);
  olB.shape.flashCrowds = {
      {surgeStart,
       static_cast<sim::Duration>(static_cast<double>(sim::seconds(3)) *
                                  ol.timeScale),
       10.0}};
  ol.tenants = {olA, olB};
  const auto olr = core::runOpenLoopExperiment(ol);

  core::TableFormatter qt({"tenant", "qos offered", "admitted", "throttled",
                           "episodes", "read p999 (us)"});
  for (const auto& row : olr.tenants) {
    qt.addRow({row.name, std::to_string(row.qosOffered),
               std::to_string(row.qosAdmitted),
               std::to_string(row.qosThrottled),
               std::to_string(row.qosEpisodes),
               core::TableFormatter::num(row.readP999Us, 1)});
  }
  qt.print();
  v.check(olr.tenants[0].qosThrottled == 0,
          "steady tenant never hits its bucket");
  v.check(olr.tenants[1].qosThrottled > olr.tenants[1].qosAdmitted / 2,
          "surging tenant policed at the bucket, not admitted at 10x");
  return v.exitCode();
}
