// Figure 13: aggregated throughput with client-side request throttling
// (update-heavy, 10 servers, rf=2, client rate capped at 200 or 500
// req/s).
//
// Paper §IX: throttling lets the overload-prone 10-server configuration
// scale linearly with clients instead of collapsing/crashing.

#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"

using namespace rc;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Fig. 13 — client-side request throttling",
                "Taleb et al., ICDCS'17, Fig. 13, SS IX");

  const int clientCounts[] = {10, 30, 60};
  const double rates[] = {200, 500};
  double thr[2][3];
  for (int ri = 0; ri < 2; ++ri) {
    for (int ci = 0; ci < 3; ++ci) {
      core::YcsbExperimentConfig cfg;
      cfg.servers = 10;
      cfg.clients = clientCounts[ci];
      cfg.replicationFactor = 2;
      cfg.workload = ycsb::WorkloadSpec::A();
      cfg.throttleOpsPerSec = rates[ri];
      cfg.seed = opt.seed;
      cfg.timeScale = opt.timeScale();
      thr[ri][ci] = core::runYcsbExperiment(cfg).throughputOpsPerSec;
    }
  }

  core::TableFormatter t({"clients", "rate 200 R/S (op/s)",
                          "rate 500 R/S (op/s)"});
  for (int ci = 0; ci < 3; ++ci) {
    t.addRow({std::to_string(clientCounts[ci]),
              core::TableFormatter::num(thr[0][ci], 0),
              core::TableFormatter::num(thr[1][ci], 0)});
  }
  t.print();
  std::printf("paper: linear growth up to 60 clients; 500 R/S x 60 = 30K\n\n");

  bench::Verdict v;
  v.check(core::within(thr[0][2], 10'800, 13'200),
          "200 R/S x 60 clients -> ~12 Kop/s delivered");
  v.check(core::within(thr[1][2], 27'000, 33'000),
          "500 R/S x 60 clients -> ~30 Kop/s delivered");
  for (int ri = 0; ri < 2; ++ri) {
    const double perClient10 = thr[ri][0] / 10;
    const double perClient60 = thr[ri][2] / 60;
    v.check(std::abs(perClient60 - perClient10) < 0.12 * perClient10,
            "linear scaling under throttling (rate " +
                core::TableFormatter::num(rates[ri], 0) + ")");
  }
  return v.exitCode();
}
