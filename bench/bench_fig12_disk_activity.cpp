// Figure 12: total aggregated disk activity (read and write) of 9 nodes
// during crash recovery.
//
// Paper: a modest read bump right after the crash (backups loading the
// dead master's segments), then a much larger write surge (re-replication
// of the recovered data) overlapping the reads until recovery ends — the
// disk contention behind Finding 6.

#include <cstdio>

#include "bench_common.hpp"
#include "core/recovery_experiment.hpp"

using namespace rc;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Fig. 12 — aggregated disk I/O during crash-recovery",
                "Taleb et al., ICDCS'17, Fig. 12, Finding 6");

  core::RecoveryExperimentConfig cfg;
  cfg.servers = 9;
  cfg.replicationFactor = 3;
  cfg.records = opt.recoveryRecords();
  cfg.killAt = sim::seconds(5);
  cfg.settleAfter = sim::seconds(4);
  cfg.seed = opt.seed;
  // At quick scale the lost data is under one 8 MB segment per recovery
  // master, so the fetch/replay pipeline the paper's overlap comes from
  // degenerates to a single read-then-write handoff. Shrink the segments
  // so each master still alternates segment reads with re-replication
  // writes, and sample finer than 1 s to resolve it.
  if (opt.scale == bench::Options::Scale::kQuick) {
    cfg.segmentBytes = 1 * 1024 * 1024;
  }
  cfg.sampleEvery = opt.recoverySampleEvery();
  const double bucketS = sim::toSeconds(cfg.sampleEvery);
  const auto r = core::runRecoveryExperiment(cfg);

  core::TableFormatter t({"t (s)", "read (MB/s)", "write (MB/s)"});
  const auto& rd = r.diskReadMBps.points();
  const auto& wr = r.diskWriteMBps.points();
  for (std::size_t i = 0; i < rd.size() && i < wr.size(); ++i) {
    if (rd[i].value < 0.01 && wr[i].value < 0.01) continue;  // idle rows
    t.addRow({core::TableFormatter::num(sim::toSeconds(rd[i].time), 1),
              core::TableFormatter::num(rd[i].value, 1),
              core::TableFormatter::num(wr[i].value, 1)});
  }
  t.print();
  if (opt.csv) {
    std::printf("%s\n", r.diskReadMBps.toCsv("read_MBps").c_str());
    std::printf("%s\n", r.diskWriteMBps.toCsv("write_MBps").c_str());
  }

  // Aggregate over the recovery window.
  const sim::SimTime t0 = r.killTime;
  const sim::SimTime t1 =
      r.killTime + r.detectionDelay + r.recoveryDuration + sim::seconds(1);
  // Series points are MB/s per bucket; multiply by the bucket width to
  // integrate back to megabytes.
  double readTotal = 0;
  double writeTotal = 0;
  for (const auto& p : rd) {
    if (p.time >= t0 && p.time <= t1) readTotal += p.value * bucketS;
  }
  for (const auto& p : wr) {
    if (p.time >= t0 && p.time <= t1) writeTotal += p.value * bucketS;
  }
  const double dataMB = r.dataRecoveredGB * 1024;
  std::printf("\ntotals over recovery: read %.0f MB, written %.0f MB "
              "(lost data: %.0f MB, rf=3)\n\n",
              readTotal, writeTotal, dataMB);

  bench::Verdict v;
  v.check(r.recovered, "recovery completed");
  v.check(r.diskReadMBps.maxValue() > 1,
          "read activity right after the crash (backups load segments)");
  v.check(writeTotal > 1.8 * readTotal,
          "write volume dominates (re-replication at rf=3: ~3x the reads)");
  v.check(core::within(readTotal / dataMB, 0.5, 1.6),
          "reads ~= one pass over the lost data");
  v.check(core::within(writeTotal / dataMB, 2.0, 4.2),
          "writes ~= rf passes over the lost data");
  // Reads and writes overlap in time (the contention of Finding 6).
  int overlapBuckets = 0;
  for (std::size_t i = 0; i < rd.size() && i < wr.size(); ++i) {
    if (rd[i].value > 0.5 && wr[i].value > 0.5) ++overlapBuckets;
  }
  v.check(overlapBuckets >= 2, "read and write activity overlap");

  // Journal shape: the read bump is the surviving backups loading the
  // dead master's on-disk segments — every segment_read span sits on a
  // live backup node inside the recovery window.
  int reads = 0;
  bool readsOk = true;
  for (const auto& s : r.spans) {
    if (s.name != "segment_read") continue;
    ++reads;
    readsOk &= !s.open && !s.abandoned && s.node != r.victimNodeId &&
               s.begin >= r.killTime &&
               s.end <= r.recoveryEndTime + sim::seconds(1);
  }
  v.check(reads >= 1,
          "backups emit segment_read spans (disk load of lost segments)");
  v.check(readsOk,
          "segment_read spans sit on surviving backups within the "
          "recovery window");
  v.check(bench::spanBytes(r.spans, "rereplication") > 0,
          "re-replication spans carry the recovered bytes");
  return v.exitCode();
}
