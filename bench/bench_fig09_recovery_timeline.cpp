// Figure 9: average CPU usage (a) and power (b) of 10 servers before,
// during and after crash-recovery (rf=4). A random server is killed after
// a fixed idle period.
//
// Paper: idle cluster sits at exactly 25 % CPU (polling core); on crash
// the remaining nodes jump to ~92 % / ~119 W while replaying, then return
// to idle.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/recovery_experiment.hpp"

using namespace rc;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Fig. 9 — CPU and power timeline through crash-recovery",
                "Taleb et al., ICDCS'17, Fig. 9a/9b, Finding 5");

  core::RecoveryExperimentConfig cfg;
  cfg.servers = 10;
  cfg.replicationFactor = 4;
  cfg.records = opt.recoveryRecords();  // paper: 10 M x 1 KB = 9.7 GB
  cfg.killAt = opt.scale == bench::Options::Scale::kFull ? sim::seconds(60)
                                                         : sim::seconds(10);
  cfg.seed = opt.seed;
  cfg.sampleEvery = opt.recoverySampleEvery();
  const auto r = core::runRecoveryExperiment(cfg);

  std::printf("\ndata on crashed server: %.2f GB   detection: %.2f s   "
              "recovery: %.1f s\n\n",
              r.dataRecoveredGB, sim::toSeconds(r.detectionDelay),
              sim::toSeconds(r.recoveryDuration));

  core::TableFormatter t({"t (s)", "avg CPU of alive servers (%)",
                          "avg power (W)"});
  const auto& cpu = r.cpuMeanPct.points();
  const auto& pw = r.powerMeanW.points();
  // Fine-grained (quick-scale) timelines get decimated to ~40 rows; the
  // shape checks below still see every bucket.
  const std::size_t stride = std::max<std::size_t>(1, cpu.size() / 40);
  for (std::size_t i = 0; i < cpu.size() && i < pw.size(); i += stride) {
    t.addRow({core::TableFormatter::num(sim::toSeconds(cpu[i].time), 1),
              core::TableFormatter::num(cpu[i].value, 1),
              core::TableFormatter::num(pw[i].value, 1)});
  }
  t.print();
  if (opt.csv) {
    std::printf("%s\n", r.cpuMeanPct.toCsv("cpu_pct").c_str());
    std::printf("%s\n", r.powerMeanW.toCsv("power_w").c_str());
  }

  // Split the timeline at the kill.
  double idleCpu = r.cpuMeanPct.meanInWindow(sim::seconds(2), r.killTime);
  double idlePower = r.powerMeanW.meanInWindow(sim::seconds(2), r.killTime);

  bench::Verdict v;
  v.check(r.recovered && r.allKeysRecovered,
          "recovery completed and every key is readable again");
  v.check(core::within(idleCpu, 24.5, 26.5),
          "idle cluster sits at 25% CPU (polling core)");
  v.check(core::within(idlePower, 74, 80), "idle power ~76 W");
  v.check(r.peakCpuPct > 60,
          "recovery drives CPU far above idle (paper: up to 92%)");
  v.check(r.powerMeanW.maxValue() > idlePower + 20,
          "recovery adds tens of watts per node (paper: ~119 W peak)");
  // Post-recovery: back to idle.
  const sim::SimTime end = r.killTime + r.detectionDelay +
                           r.recoveryDuration + sim::seconds(3);
  const double after = r.cpuMeanPct.meanInWindow(end, end + sim::seconds(6));
  v.check(after < 40, "CPU returns toward idle after recovery");

  // Journal shape: the crash must yield one complete cross-node span tree.
  const auto* root = bench::recoveryRoot(r.spans);
  v.check(root != nullptr && !root->open && !root->abandoned &&
              bench::spanCount(r.spans, "recovery") == 1,
          "journal holds exactly one closed recovery span tree");
  if (root != nullptr) {
    const auto phases = bench::phaseNames(r.spans, root->ctx);
    const auto nodes = bench::phaseNodes(r.spans, root->ctx);
    v.check(phases.size() >= 7,
            "span tree covers >= 7 distinct recovery phases");
    v.check(nodes.size() >= 3, "span tree crosses >= 3 nodes");
  }
  // Data-path work (fetch/replay/read/re-replicate) dwarfs the
  // coordinator's control phases — recovery is bandwidth-, not
  // coordination-bound.
  const double dataBusy = bench::spanBusySeconds(r.spans, "segment_fetch") +
                          bench::spanBusySeconds(r.spans, "replay") +
                          bench::spanBusySeconds(r.spans, "segment_read") +
                          bench::spanBusySeconds(r.spans, "rereplication");
  const double ctrlBusy =
      bench::spanBusySeconds(r.spans, "will_lookup") +
      bench::spanBusySeconds(r.spans, "partition_assignment");
  v.check(dataBusy > ctrlBusy,
          "data-path span busy-time dominates coordinator control phases");
  return v.exitCode();
}
