// Figure 11: (a) recovery time and (b) per-node energy during recovery as
// a function of the replication factor (9 servers, ~1.085 GB to recover).
//
// Paper: counterintuitively, recovery time *grows* near-linearly with rf
// (10 s at rf=1 up to 55 s at rf=5) because replay re-inserts data through
// the same replicated write path; per-node energy grows accordingly
// (~1.2 KJ -> ~6.4 KJ) at a roughly constant 114-117 W (Finding 6).

#include <cstdio>

#include "bench_common.hpp"
#include "core/recovery_experiment.hpp"

using namespace rc;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Fig. 11 — recovery time and energy vs replication factor",
                "Taleb et al., ICDCS'17, Fig. 11a/11b, Finding 6");

  core::TableFormatter t({"rf", "recovery time (s)", "energy/node (KJ)",
                          "power/node (W)", "all keys back"});
  double times[5];
  double joules[5];
  double rereplBusy[5];
  bool journalOk = true;
  for (int rf = 1; rf <= 5; ++rf) {
    core::RecoveryExperimentConfig cfg;
    cfg.servers = 9;
    cfg.replicationFactor = rf;
    cfg.records = opt.recoveryRecords();
    cfg.killAt = sim::seconds(5);
    cfg.settleAfter = sim::seconds(2);
    cfg.seed = opt.seed;
    const auto r = core::runRecoveryExperiment(cfg);
    times[rf - 1] = sim::toSeconds(r.recoveryDuration);
    joules[rf - 1] = r.energyPerNodeDuringRecoveryJ;
    rereplBusy[rf - 1] = bench::spanBusySeconds(r.spans, "rereplication");
    const auto* root = bench::recoveryRoot(r.spans);
    journalOk &= root != nullptr && !root->open && !root->abandoned;
    t.addRow({std::to_string(rf),
              core::TableFormatter::num(times[rf - 1], 1),
              core::TableFormatter::num(joules[rf - 1] / 1e3, 2),
              core::TableFormatter::num(r.meanPowerDuringRecoveryW, 1),
              r.allKeysRecovered ? "yes" : "NO"});
  }
  t.print();
  std::printf("paper (9.7 GB total): 10 / ~21 / ~32 / ~43 / 55 s; "
              "1.2 -> 6.4 KJ per node\n");
  std::printf("note: at --%s scale this run recovers %.0f%% of the paper's "
              "data volume; times scale with it\n\n",
              opt.scale == bench::Options::Scale::kFull ? "full" : "default",
              100.0 * static_cast<double>(opt.recoveryRecords()) / 10e6);

  bench::Verdict v;
  bool monotone = true;
  for (int i = 1; i < 5; ++i) monotone &= times[i] > times[i - 1];
  v.check(monotone,
          "recovery time grows monotonically with rf (Finding 6)");
  v.check(times[4] > 2.2 * times[0],
          "rf=5 takes several times rf=1's recovery time (paper: 5.5x)");
  bool energyMonotone = true;
  for (int i = 1; i < 5; ++i) energyMonotone &= joules[i] > joules[i - 1];
  v.check(energyMonotone, "per-node recovery energy grows with rf");
  v.check(joules[4] / joules[0] > 2.0,
          "energy scales roughly with time (power stays ~flat)");
  v.check(journalOk, "every rf run closes its recovery span tree");
  v.check(rereplBusy[4] > rereplBusy[0],
          "re-replication spans take longer at rf=5 than rf=1 "
          "(the replicated write path behind Finding 6)");
  return v.exitCode();
}
