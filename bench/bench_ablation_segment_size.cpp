// SS IX ablation: "Faster data reconstruction?" — sweep the log segment
// size and measure recovery time.
//
// Paper: tuning the segment size from 1 MB to 32 MB, the hard-coded 8 MB
// gives the best recovery times on their HDD machines (small segments add
// per-segment overheads and seeks; huge segments lose pipeline overlap).

#include <cstdio>

#include "bench_common.hpp"
#include "core/recovery_experiment.hpp"

using namespace rc;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Ablation — log segment size vs recovery time",
                "Taleb et al., ICDCS'17, SS IX (segment-size discussion)");

  const std::uint64_t sizesMB[] = {1, 2, 4, 8, 16, 32};
  core::TableFormatter t({"segment size (MB)", "recovery time (s)",
                          "all keys back"});
  double times[6];
  int i = 0;
  for (std::uint64_t mb : sizesMB) {
    core::RecoveryExperimentConfig cfg;
    cfg.servers = 9;
    cfg.replicationFactor = 3;
    // The sweep needs the lost data to span several segments even at
    // 32 MB, or the 1 MB-vs-8 MB overhead and 8 MB-vs-32 MB pipelining
    // trade-offs both vanish; quick's usual /50 scaling is too small.
    cfg.records = opt.scale == bench::Options::Scale::kQuick
                      ? 600'000
                      : opt.recoveryRecords() / 2;
    cfg.killAt = sim::seconds(5);
    cfg.settleAfter = sim::seconds(1);
    cfg.segmentBytes = mb * 1024 * 1024;
    cfg.seed = opt.seed;
    const auto r = core::runRecoveryExperiment(cfg);
    times[i++] = sim::toSeconds(r.recoveryDuration);
    t.addRow({std::to_string(mb),
              core::TableFormatter::num(sim::toSeconds(r.recoveryDuration), 1),
              r.allKeysRecovered ? "yes" : "NO"});
  }
  t.print();
  std::printf("paper: 8 MB (RAMCloud's hard-coded default) recovered "
              "fastest on these HDD nodes\n\n");

  bench::Verdict v;
  const double best = *std::min_element(times, times + 6);
  v.check(times[3] <= 1.25 * best,
          "8 MB is at or near the best recovery time");
  v.check(times[0] > times[3],
          "1 MB segments recover slower than 8 MB (per-segment overheads)");
  return v.exitCode();
}
