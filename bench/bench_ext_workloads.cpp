// Extension bench: the paper's SS X future work — "consider more workloads"
// (YCSB D: read-latest with inserts; F: read-modify-write) and "evaluate
// the system with different request distributions" (uniform vs zipfian).
//
// Run on the Table II configuration (10 servers) for comparability.

#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"

using namespace rc;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Extension — workloads D/F and request distributions",
                "Taleb et al., ICDCS'17, SS X future work");

  auto run = [&opt](ycsb::WorkloadSpec spec, int clients) {
    core::YcsbExperimentConfig cfg;
    cfg.servers = 10;
    cfg.clients = clients;
    cfg.workload = std::move(spec);
    cfg.seed = opt.seed;
    cfg.timeScale = opt.timeScale();
    return core::runYcsbExperiment(cfg);
  };

  // --- more workloads at 30 clients
  core::TableFormatter t({"workload", "mix", "throughput (Kop/s)",
                          "W/node", "op/J"});
  struct Row {
    const char* mix;
    ycsb::WorkloadSpec spec;
  };
  const Row rows[] = {
      {"50r/50u", ycsb::WorkloadSpec::A()},
      {"95r/5u", ycsb::WorkloadSpec::B()},
      {"100r", ycsb::WorkloadSpec::C()},
      {"95r/5i latest", ycsb::WorkloadSpec::D()},
      {"50r/50rmw", ycsb::WorkloadSpec::F()},
  };
  double thr[5];
  int i = 0;
  for (const Row& row : rows) {
    const auto r = run(row.spec, 30);
    thr[i++] = r.throughputOpsPerSec;
    t.addRow({row.spec.name, row.mix,
              core::TableFormatter::kops(r.throughputOpsPerSec),
              core::TableFormatter::num(r.meanPowerPerServerW, 1),
              core::TableFormatter::num(r.opsPerJoule, 0)});
  }
  t.print();

  // --- request distributions on the update-heavy mix
  std::printf("\nrequest-distribution sweep (workload A, 30 clients)\n");
  core::TableFormatter td({"distribution", "throughput (Kop/s)",
                           "CPU spread min-max (%)"});
  double dthr[2];
  double spread[2];
  int di = 0;
  for (auto dist : {ycsb::WorkloadSpec::Distribution::kUniform,
                    ycsb::WorkloadSpec::Distribution::kZipfian}) {
    ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::A();
    spec.distribution = dist;
    const auto r = run(spec, 30);
    dthr[di] = r.throughputOpsPerSec;
    spread[di] = r.maxCpuPct - r.minCpuPct;
    td.addRow({dist == ycsb::WorkloadSpec::Distribution::kUniform
                   ? "uniform (paper)"
                   : "zipfian 0.99",
               core::TableFormatter::kops(r.throughputOpsPerSec),
               core::TableFormatter::num(r.minCpuPct, 1) + " - " +
                   core::TableFormatter::num(r.maxCpuPct, 1)});
    ++di;
  }
  td.print();

  bench::Verdict v;
  v.check(thr[3] > thr[0] && thr[3] < thr[2] * 1.05,
          "D (read-mostly) lands between A and C, near B");
  v.check(thr[4] < thr[1],
          "F pays for its write half: well below read-heavy B");
  v.check(thr[4] < 0.8 * thr[2], "F far below read-only C");
  v.check(dthr[1] < dthr[0],
          "zipfian skew costs update throughput (hot-spot contention)");
  v.check(spread[1] > spread[0] + 2.0,
          "zipfian widens the per-node CPU imbalance (hot tablet)");
  return v.exitCode();
}
