// Extension bench: the paper's SS X future work — "consider more workloads"
// (YCSB D: read-latest with inserts; F: read-modify-write) and "evaluate
// the system with different request distributions" (uniform vs zipfian).
//
// Run on the Table II configuration (10 servers) for comparability.

// Part 2 (docs/WORKLOADS.md): the same B and D mixes driven open-loop by a
// TrafficSource population — offered vs delivered rate instead of a closed
// loop's equilibrium throughput — plus a diurnal rate-curve demonstration
// (the peak:valley delivered ratio follows the curve).

#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "core/openloop.hpp"

using namespace rc;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Extension — workloads D/F and request distributions",
                "Taleb et al., ICDCS'17, SS X future work");

  auto run = [&opt](ycsb::WorkloadSpec spec, int clients) {
    core::YcsbExperimentConfig cfg;
    cfg.servers = 10;
    cfg.clients = clients;
    cfg.workload = std::move(spec);
    cfg.seed = opt.seed;
    cfg.timeScale = opt.timeScale();
    return core::runYcsbExperiment(cfg);
  };

  // --- more workloads at 30 clients
  core::TableFormatter t({"workload", "mix", "throughput (Kop/s)",
                          "W/node", "op/J"});
  struct Row {
    const char* mix;
    ycsb::WorkloadSpec spec;
  };
  const Row rows[] = {
      {"50r/50u", ycsb::WorkloadSpec::A()},
      {"95r/5u", ycsb::WorkloadSpec::B()},
      {"100r", ycsb::WorkloadSpec::C()},
      {"95r/5i latest", ycsb::WorkloadSpec::D()},
      {"50r/50rmw", ycsb::WorkloadSpec::F()},
  };
  double thr[5];
  int i = 0;
  for (const Row& row : rows) {
    const auto r = run(row.spec, 30);
    thr[i++] = r.throughputOpsPerSec;
    t.addRow({row.spec.name, row.mix,
              core::TableFormatter::kops(r.throughputOpsPerSec),
              core::TableFormatter::num(r.meanPowerPerServerW, 1),
              core::TableFormatter::num(r.opsPerJoule, 0)});
  }
  t.print();

  // --- request distributions on the update-heavy mix
  std::printf("\nrequest-distribution sweep (workload A, 30 clients)\n");
  core::TableFormatter td({"distribution", "throughput (Kop/s)",
                           "CPU spread min-max (%)"});
  double dthr[2];
  double spread[2];
  int di = 0;
  for (auto dist : {ycsb::WorkloadSpec::Distribution::kUniform,
                    ycsb::WorkloadSpec::Distribution::kZipfian}) {
    ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::A();
    spec.distribution = dist;
    const auto r = run(spec, 30);
    dthr[di] = r.throughputOpsPerSec;
    spread[di] = r.maxCpuPct - r.minCpuPct;
    td.addRow({dist == ycsb::WorkloadSpec::Distribution::kUniform
                   ? "uniform (paper)"
                   : "zipfian 0.99",
               core::TableFormatter::kops(r.throughputOpsPerSec),
               core::TableFormatter::num(r.minCpuPct, 1) + " - " +
                   core::TableFormatter::num(r.maxCpuPct, 1)});
    ++di;
  }
  td.print();

  bench::Verdict v;
  v.check(thr[3] > thr[0] && thr[3] < thr[2] * 1.05,
          "D (read-mostly) lands between A and C, near B");
  v.check(thr[4] < thr[1],
          "F pays for its write half: well below read-heavy B");
  v.check(thr[4] < 0.8 * thr[2], "F far below read-only C");
  v.check(dthr[1] < dthr[0],
          "zipfian skew costs update throughput (hot-spot contention)");
  v.check(spread[1] > spread[0] + 2.0,
          "zipfian widens the per-node CPU imbalance (hot tablet)");

  // --- Part 2: the B and D mixes, open-loop ------------------------------
  std::printf("\nopen-loop B/D: 100k-user population at 0.25 op/user/s "
              "(docs/WORKLOADS.md)\n");
  auto openRun = [&opt](ycsb::WorkloadSpec spec,
                        load::DiurnalCurve diurnal) {
    core::OpenLoopConfig cfg;
    cfg.servers = 10;
    cfg.workload = std::move(spec);
    cfg.seed = opt.seed;
    cfg.timeScale = opt.timeScale();
    core::OpenLoopTenantConfig t;
    t.name = "pop";
    t.sources = 2;
    t.shape.users = 50'000;
    t.shape.opsPerUserPerSec = 0.25;  // 25 Kop/s offered in total
    t.shape.diurnal = std::move(diurnal);
    t.readSlo = {sim::msec(4), sim::msec(20)};
    t.updateSlo = {sim::msec(8), sim::msec(40)};
    cfg.tenants = {t};
    return core::runOpenLoopExperiment(cfg);
  };
  core::TableFormatter ot({"workload", "offered (Kop/s)",
                           "delivered (Kop/s)", "read p99 (us)",
                           "failures"});
  const auto ob = openRun(ycsb::WorkloadSpec::B(), {});
  const auto od = openRun(ycsb::WorkloadSpec::D(), {});
  for (const auto* r : {&ob, &od}) {
    ot.addRow({r == &ob ? "B (open)" : "D (open)",
               core::TableFormatter::kops(r->offeredRatePerSec),
               core::TableFormatter::kops(r->deliveredOpsPerSec),
               core::TableFormatter::num(r->tenants[0].readP99Us, 1),
               std::to_string(r->opFailures)});
  }
  ot.print();
  v.check(core::within(ob.deliveredOpsPerSec, 0.9 * ob.offeredRatePerSec,
                       1.1 * ob.offeredRatePerSec),
          "open-loop B delivers its offered rate");
  v.check(core::within(od.deliveredOpsPerSec, 0.9 * od.offeredRatePerSec,
                       1.1 * od.offeredRatePerSec),
          "open-loop D (inserts, read-latest) delivers its offered rate");

  // --- diurnal curve: delivered rate follows the valley ------------------
  load::DiurnalCurve day;
  // Period chosen so every measurement window covers whole periods at any
  // --quick/--full timescale (windows are >= 500 ms).
  day.period = sim::msec(250);
  day.points = {{0.0, 0.4}, {0.5, 1.6}};  // valley 0.4x, peak 1.6x, mean 1.0
  const auto odi = openRun(ycsb::WorkloadSpec::B(), day);
  std::printf("\ndiurnal B: mean multiplier %.2f -> delivered %.1f Kop/s\n",
              day.mean(), odi.deliveredOpsPerSec / 1e3);
  v.check(core::within(odi.deliveredOpsPerSec,
                       0.88 * odi.offeredRatePerSec,
                       1.1 * odi.offeredRatePerSec),
          "diurnal modulation preserves the curve's mean rate");
  return v.exitCode();
}
