// Extension bench: energy-proportional cluster sizing (SS IX).
//
// The paper's Finding 1 shows RAMCloud wastes energy when over-provisioned
// and proposes coordinator-level resizing (a la Sierra / Rabbit). This
// bench drives a diurnal load against (a) a static 8-server cluster and
// (b) the same cluster managed by the Autoscaler (drain -> suspend on low
// load, resume -> rebalance on high load, tablet migration underneath),
// and compares delivered operations and consumed energy.

#include <cstdio>

#include "bench_common.hpp"
#include "core/autoscaler.hpp"
#include "core/cluster.hpp"
#include "ycsb/ycsb_client.hpp"

using namespace rc;

namespace {

struct Outcome {
  double energyKJ = 0;
  std::uint64_t ops = 0;
  std::uint64_t failures = 0;
  double meanActive = 0;
  int downs = 0;
  int ups = 0;
};

Outcome run(bool autoscale, const bench::Options& opt, double phaseScale) {
  core::ClusterParams cp;
  cp.servers = 8;
  cp.clients = 16;
  cp.seed = opt.seed;
  cp.replicationFactor = 1;
  core::Cluster c(cp);
  const auto table = c.createTable("t");
  c.bulkLoad(table, 50'000, 1000);
  c.configureYcsb(table, ycsb::WorkloadSpec::C(50'000),
                  ycsb::YcsbClientParams{});

  core::AutoscalerParams ap;
  ap.interval = sim::seconds(1);
  ap.minActive = 3;
  ap.highWaterCpu = 0.65;
  ap.lowWaterCpu = 0.42;
  core::Autoscaler scaler(c, ap);
  if (autoscale) scaler.start();

  std::vector<node::Node::PowerSnapshot> snaps;
  for (int i = 0; i < c.serverCount(); ++i) {
    snaps.push_back(c.server(i).node->snapshotPower());
  }

  auto setActiveClients = [&c](int n) {
    for (int i = 0; i < c.clientCount(); ++i) {
      auto* y = c.clientHost(i).ycsb.get();
      if (i < n) {
        y->start();
      } else {
        y->stop();
      }
    }
  };

  const auto phase = [&](double s) {
    return static_cast<sim::Duration>(sim::secondsF(s * phaseScale));
  };
  // Diurnal pattern: peak -> trough -> peak.
  setActiveClients(16);
  c.sim().runFor(phase(25));
  setActiveClients(2);
  c.sim().runFor(phase(60));
  setActiveClients(16);
  c.sim().runFor(phase(25));
  c.stopYcsb();
  scaler.stop();

  Outcome o;
  const sim::SimTime end = c.sim().now();
  for (int i = 0; i < c.serverCount(); ++i) {
    o.energyKJ += c.server(i).node->energyJoulesSince(
                      snaps[static_cast<std::size_t>(i)], end) /
                  1e3;
  }
  o.ops = c.totalOpsCompleted();
  o.failures = c.totalOpFailures();
  o.meanActive =
      autoscale ? scaler.activeTrace().meanValue() : c.serverCount();
  o.downs = scaler.scaleDowns();
  o.ups = scaler.scaleUps();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Extension — energy-proportional autoscaling (SS IX)",
                "Taleb et al., ICDCS'17, SS IX 'how to choose the right "
                "cluster size' + Finding 1");

  const double phaseScale = opt.scale == bench::Options::Scale::kQuick
                                ? 0.4
                                : (opt.scale == bench::Options::Scale::kFull
                                       ? 2.0
                                       : 1.0);
  const Outcome fixed = run(false, opt, phaseScale);
  const Outcome scaled = run(true, opt, phaseScale);

  core::TableFormatter t({"cluster", "energy (KJ)", "ops served (M)",
                          "failed ops", "mean active servers",
                          "resize events"});
  t.addRow({"static 8 servers", core::TableFormatter::num(fixed.energyKJ, 1),
            core::TableFormatter::num(fixed.ops / 1e6, 2),
            std::to_string(fixed.failures),
            core::TableFormatter::num(fixed.meanActive, 1), "-"});
  t.addRow({"autoscaled", core::TableFormatter::num(scaled.energyKJ, 1),
            core::TableFormatter::num(scaled.ops / 1e6, 2),
            std::to_string(scaled.failures),
            core::TableFormatter::num(scaled.meanActive, 1),
            std::to_string(scaled.downs) + " down / " +
                std::to_string(scaled.ups) + " up"});
  t.print();
  const double savings = 100.0 * (1.0 - scaled.energyKJ / fixed.energyKJ);
  std::printf("\nenergy saved: %.1f%%   ops delivered: %.1f%% of static\n\n",
              savings,
              100.0 * static_cast<double>(scaled.ops) /
                  static_cast<double>(fixed.ops));

  bench::Verdict v;
  v.check(scaled.downs >= 1 && scaled.ups >= 1,
          "the autoscaler resized in both directions");
  v.check(savings > 12.0, "double-digit energy savings on a diurnal load");
  v.check(scaled.failures == 0, "no client-visible failures while resizing");
  v.check(static_cast<double>(scaled.ops) >
              0.85 * static_cast<double>(fixed.ops),
          "delivered throughput within 15% of the static cluster");
  return v.exitCode();
}
