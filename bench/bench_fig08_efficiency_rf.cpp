// Figure 8: energy efficiency of 20/30/40-server clusters (60 clients,
// update-heavy) as a function of the replication factor.
//
// Paper: in sharp contrast to Fig. 2, with replication + update-heavy
// *more* servers are more efficient: at rf=1, 20 srv ~1.5 Kop/J, 30 srv
// ~1.9, 40 srv ~2.3; the gaps shrink as rf rises (Finding 4). The paper
// divides aggregate throughput by *per-node* watts — its rf=1/40-server
// point only reproduces under that definition (237 Kop/s / 103 W = 2.3
// Kop/J), so that is the metric printed here.

#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"

using namespace rc;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Fig. 8 — energy efficiency vs rf (update-heavy, 60 clients)",
                "Taleb et al., ICDCS'17, Fig. 8, Finding 4");

  const int serverCounts[] = {20, 30, 40};
  double eff[3][4];
  for (int si = 0; si < 3; ++si) {
    for (int rf = 1; rf <= 4; ++rf) {
      core::YcsbExperimentConfig cfg;
      cfg.servers = serverCounts[si];
      cfg.clients = 60;
      cfg.replicationFactor = rf;
      cfg.workload = ycsb::WorkloadSpec::A();
      cfg.seed = opt.seed;
      cfg.timeScale = opt.timeScale();
      eff[si][rf - 1] = core::runYcsbExperiment(cfg).opsPerJoulePerNode;
    }
  }

  core::TableFormatter t({"rf", "20 srv", "30 srv", "40 srv",
                          "(op/joule-per-node)"});
  for (int rf = 1; rf <= 4; ++rf) {
    t.addRow({std::to_string(rf), core::TableFormatter::num(eff[0][rf - 1], 0),
              core::TableFormatter::num(eff[1][rf - 1], 0),
              core::TableFormatter::num(eff[2][rf - 1], 0), ""});
  }
  t.print();
  std::printf("paper: rf=1: 1500 / 1900 / 2300\n\n");

  bench::Verdict v;
  v.check(eff[2][0] > eff[1][0] && eff[1][0] > eff[0][0],
          "more servers = better efficiency with update-heavy + replication "
          "(Finding 4, opposite of Fig. 2)");
  // The paper's text claims the relative gaps shrink with rf; its own
  // Fig. 6a throughputs imply roughly stable gaps, which is what we get —
  // check the robust part: the ordering persists at every rf.
  v.check(eff[2][3] > eff[1][3] && eff[1][3] > eff[0][3],
          "the more-servers-more-efficient ordering persists at rf=4");
  bool fallsWithRf = true;
  for (int si = 0; si < 3; ++si) {
    fallsWithRf &= eff[si][3] < eff[si][0];
  }
  v.check(fallsWithRf, "efficiency falls with the replication factor");
  return v.exitCode();
}
