// Figure 6: (a) throughput and (b) total energy as a function of the
// number of servers and the replication factor (update-heavy, 60 clients).
//
// Paper: rf=1 grows 128 K -> 237 K from 10 to 40 servers; higher rf is
// uniformly slower; at 10 servers with rf>2 the authors' runs always
// crashed with excessive timeouts. Energy: 20 servers rf 1->4 costs 3.5x
// more total energy (81 KJ -> 285 KJ) — Finding 3.
//
// Our simulator stays stable where the real deployment crashed; those
// cells report measured throughput flagged with '!' instead (see
// EXPERIMENTS.md).

#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"

using namespace rc;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Fig. 6 — cluster size x replication factor, 60 clients",
                "Taleb et al., ICDCS'17, Fig. 6a/6b, Findings 3-4");

  const int serverCounts[] = {10, 20, 30, 40};
  core::YcsbExperimentResult res[4][4];
  for (int si = 0; si < 4; ++si) {
    for (int rf = 1; rf <= 4; ++rf) {
      core::YcsbExperimentConfig cfg;
      cfg.servers = serverCounts[si];
      cfg.clients = 60;
      cfg.replicationFactor = rf;
      cfg.workload = ycsb::WorkloadSpec::A();
      cfg.seed = opt.seed;
      cfg.timeScale = opt.timeScale();
      res[si][rf - 1] = core::runYcsbExperiment(cfg);
    }
  }

  const std::uint64_t totalRequests = 6'000'000;  // 60 clients x 100 K

  std::printf("\n(a) Throughput (Kop/s)   [! = config the paper could not "
              "complete]\n");
  core::TableFormatter ta({"rf", "10 srv", "20 srv", "30 srv", "40 srv"});
  std::printf("(b) Total energy for the run (KJ)\n\n");
  core::TableFormatter tb({"rf", "10 srv", "20 srv", "30 srv", "40 srv"});
  for (int rf = 1; rf <= 4; ++rf) {
    std::vector<std::string> ra{std::to_string(rf)};
    std::vector<std::string> rb{std::to_string(rf)};
    for (int si = 0; si < 4; ++si) {
      const auto& r = res[si][rf - 1];
      std::string mark = (si == 0 && rf > 2) ? "!" : "";
      ra.push_back(core::TableFormatter::kops(r.throughputOpsPerSec) + mark);
      rb.push_back(core::TableFormatter::num(
          r.energyForRequestsJ(totalRequests) / 1e3, 0));
    }
    ta.addRow(ra);
    tb.addRow(rb);
  }
  std::printf("(a):\n");
  ta.print();
  std::printf("(b):\n");
  tb.print();

  bench::Verdict v;
  v.check(res[3][0].throughputOpsPerSec > 1.4 * res[0][0].throughputOpsPerSec,
          "rf=1: 10 -> 40 servers raises throughput substantially "
          "(paper: 128K -> 237K)");
  bool rfMonotone = true;
  for (int si = 0; si < 4; ++si) {
    for (int rf = 1; rf < 4; ++rf) {
      rfMonotone &= res[si][rf].throughputOpsPerSec <
                    res[si][rf - 1].throughputOpsPerSec * 1.02;
    }
  }
  v.check(rfMonotone, "higher rf never helps throughput");
  const double e1 = res[1][0].energyForRequestsJ(totalRequests);
  const double e4 = res[1][3].energyForRequestsJ(totalRequests);
  v.check(core::within(e4 / e1, 2.0, 5.5),
          "20 servers: rf 1->4 costs ~3.5x total energy (measured " +
              core::TableFormatter::num(e4 / e1, 1) + "x)");
  v.check(res[0][3].throughputOpsPerSec <= res[1][3].throughputOpsPerSec,
          "10 servers is the worst rf=4 configuration (paper: crashed)");
  return v.exitCode();
}
