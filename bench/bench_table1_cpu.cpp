// Table I: min-max per-node CPU usage (%) for different cluster sizes and
// client counts, read-only workload.
//
// Paper anchors: 0 clients -> exactly 25 % (the pinned dispatch/polling
// core on 4-core nodes); 1 client -> ~50 %; saturation in the high 90s at
// 10+ clients while throughput is still short of peak.

#include <cstdio>

#include "bench_common.hpp"
#include "core/cluster.hpp"
#include "core/experiment.hpp"

using namespace rc;

namespace {

struct Row {
  double avg1 = 0;  // 1 server (single node: avg only, like the paper)
  double min5 = 0, max5 = 0;
  double min10 = 0, max10 = 0;
};

Row measure(int clients, const bench::Options& opt) {
  Row row;
  for (int servers : {1, 5, 10}) {
    core::YcsbExperimentConfig cfg;
    cfg.servers = servers;
    cfg.clients = clients;
    cfg.workload = ycsb::WorkloadSpec::C(500'000);
    cfg.seed = opt.seed;
    cfg.timeScale = opt.timeScale();
    if (clients == 0) {
      // Idle cluster: run it directly, no YCSB.
      core::ClusterParams cp;
      cp.servers = servers;
      cp.clients = 0;
      cp.seed = opt.seed;
      core::Cluster c(cp);
      auto snap = c.server(0).node->snapshotCpu();
      std::vector<node::CpuScheduler::Snapshot> snaps;
      for (int i = 0; i < servers; ++i) {
        snaps.push_back(c.server(i).node->snapshotCpu());
      }
      c.sim().runFor(sim::seconds(4));
      double mn = 1, mx = 0;
      for (int i = 0; i < servers; ++i) {
        const double u =
            c.server(i).node->meanUtilisationSince(snaps[static_cast<std::size_t>(i)], c.sim().now());
        mn = std::min(mn, u);
        mx = std::max(mx, u);
      }
      (void)snap;
      if (servers == 1) row.avg1 = 100 * mx;
      if (servers == 5) {
        row.min5 = 100 * mn;
        row.max5 = 100 * mx;
      }
      if (servers == 10) {
        row.min10 = 100 * mn;
        row.max10 = 100 * mx;
      }
      continue;
    }
    const auto r = core::runYcsbExperiment(cfg);
    if (servers == 1) row.avg1 = r.meanCpuPct;
    if (servers == 5) {
      row.min5 = r.minCpuPct;
      row.max5 = r.maxCpuPct;
    }
    if (servers == 10) {
      row.min10 = r.minCpuPct;
      row.max10 = r.maxCpuPct;
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Table I — per-node CPU usage, read-only workload",
                "Taleb et al., ICDCS'17, Table I");

  const int clientCounts[] = {0, 1, 2, 3, 4, 5, 10, 30};
  core::TableFormatter t({"clients", "1 srv (avg %)", "5 srv (min - max %)",
                          "10 srv (min - max %)"});
  std::vector<Row> rows;
  for (int c : clientCounts) {
    const Row r = measure(c, opt);
    rows.push_back(r);
    auto range = [](double a, double b) {
      return core::TableFormatter::num(a, 2) + " - " +
             core::TableFormatter::num(b, 2);
    };
    t.addRow({std::to_string(c), core::TableFormatter::num(r.avg1, 2),
              range(r.min5, r.max5), range(r.min10, r.max10)});
  }
  t.print();

  bench::Verdict v;
  v.check(core::within(rows[0].avg1, 24.9, 25.1),
          "idle server pins 25% CPU (polling core, Table I row 0)");
  v.check(core::within(rows[1].avg1, 45, 55),
          "1 client -> ~50% CPU (paper: 49.81)");
  v.check(rows[6].avg1 > 95, "10 clients saturate a single server's CPU");
  v.check(rows[7].avg1 > 95, "30 clients keep it saturated");
  // Monotone staircase on a single node.
  bool monotone = true;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    monotone &= rows[i].avg1 >= rows[i - 1].avg1 - 1.5;
  }
  v.check(monotone, "CPU grows monotonically with client count");
  v.check(rows[7].min10 > 45,
          "all 10 nodes loaded evenly at 30 clients (min within range)");
  return v.exitCode();
}
