// Figure 3: scalability factor of 10 servers in throughput when growing
// the client count, baselined at 10 clients.
//
// Paper: read-only tracks the perfect line (9x at 90 clients), read-heavy
// collapses between 30 and 60 clients, update-heavy never scales at all.

#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"

using namespace rc;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Fig. 3 — throughput scalability factor, 10 servers",
                "Taleb et al., ICDCS'17, Fig. 3");

  const int clientCounts[] = {10, 20, 30, 60, 90};
  const ycsb::WorkloadSpec specs[] = {ycsb::WorkloadSpec::C(),
                                      ycsb::WorkloadSpec::B(),
                                      ycsb::WorkloadSpec::A()};
  const char* names[] = {"read-only", "read-heavy", "update-heavy"};
  double factor[3][5];
  for (int w = 0; w < 3; ++w) {
    double base = 0;
    for (int ci = 0; ci < 5; ++ci) {
      core::YcsbExperimentConfig cfg;
      cfg.servers = 10;
      cfg.clients = clientCounts[ci];
      cfg.workload = specs[w];
      cfg.seed = opt.seed;
      cfg.timeScale = opt.timeScale();
      const double thr = core::runYcsbExperiment(cfg).throughputOpsPerSec;
      if (ci == 0) base = thr;
      factor[w][ci] = thr / base;
    }
  }

  core::TableFormatter t({"clients", "perfect", "read-only", "read-heavy",
                          "update-heavy"});
  for (int ci = 0; ci < 5; ++ci) {
    t.addRow({std::to_string(clientCounts[ci]),
              core::TableFormatter::num(clientCounts[ci] / 10.0, 1),
              core::TableFormatter::num(factor[0][ci], 2),
              core::TableFormatter::num(factor[1][ci], 2),
              core::TableFormatter::num(factor[2][ci], 2)});
  }
  t.print();
  (void)names;

  bench::Verdict v;
  v.check(factor[0][4] > 7.0,
          "read-only tracks near-perfect scalability (9x at 90 clients)");
  v.check(factor[1][4] < 0.55 * 9.0,
          "read-heavy collapses well below perfect by 90 clients");
  v.check(factor[2][4] < 1.6,
          "update-heavy never scales with clients (paper: degrades)");
  v.check(factor[1][2] > factor[2][2],
          "read-heavy above update-heavy at every point");
  return v.exitCode();
}
