// Figure 10: per-operation latency of two concurrent clients before,
// during and after crash recovery. Client 1 requests exclusively the
// killed server's data; client 2 requests the rest.
//
// Paper: client 1 blocks for the whole recovery (~40 s at rf=4); client
// 2's latency jumps from ~15 us to ~35 us (1.4-2.4x on average) while the
// recovery masters are busy replaying.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/recovery_experiment.hpp"

using namespace rc;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Fig. 10 — client latency through crash-recovery",
                "Taleb et al., ICDCS'17, Fig. 10, Finding 5");

  core::RecoveryExperimentConfig cfg;
  cfg.servers = 10;
  cfg.replicationFactor = 4;
  cfg.records = opt.recoveryRecords();
  cfg.killAt = opt.scale == bench::Options::Scale::kFull ? sim::seconds(60)
                                                         : sim::seconds(10);
  cfg.probeClients = true;
  cfg.seed = opt.seed;
  cfg.sampleEvery = opt.recoverySampleEvery();
  const auto r = core::runRecoveryExperiment(cfg);

  core::TableFormatter t({"t (s)", "client 1 (lost data) us",
                          "client 2 (live data) us"});
  // Join the two series on time.
  auto valueAt = [](const sim::TimeSeries& s, sim::SimTime t) -> double {
    for (const auto& p : s.points()) {
      if (p.time == t) return p.value;
    }
    return -1;
  };
  const auto& c2pts = r.client2LatencyUs.points();
  const std::size_t stride = std::max<std::size_t>(1, c2pts.size() / 40);
  for (std::size_t i = 0; i < c2pts.size(); i += stride) {
    const auto& p = c2pts[i];
    const double c1 = valueAt(r.client1LatencyUs, p.time);
    t.addRow({core::TableFormatter::num(sim::toSeconds(p.time), 1),
              c1 < 0 ? "(blocked)" : core::TableFormatter::num(c1, 1),
              core::TableFormatter::num(p.value, 1)});
  }
  t.print();
  if (opt.csv) {
    std::printf("%s\n", r.client1LatencyUs.toCsv("client1_us").c_str());
    std::printf("%s\n", r.client2LatencyUs.toCsv("client2_us").c_str());
  }

  // Client 2's degradation happens while the recovery masters replay —
  // measure the replay window itself, not the detection-idle prefix
  // (which dominates a down-scaled sub-second recovery).
  const sim::SimTime recStart = r.killTime + r.detectionDelay;
  const sim::SimTime recEnd = recStart + r.recoveryDuration;
  const double c2Before =
      r.client2LatencyUs.meanInWindow(sim::seconds(1), r.killTime);
  const double c2During = r.client2LatencyUs.meanInWindow(recStart, recEnd);
  const double c1Before =
      r.client1LatencyUs.meanInWindow(sim::seconds(1), r.killTime);

  // Client 1's blocked op: the single worst operation (the per-second
  // means above dilute it across the ~2000 fast ops of its bucket).
  const double c1MaxUs = r.client1WorstOpUs;

  std::printf("\nclient2 mean latency: %.1f us before, %.1f us during "
              "recovery (%.2fx)\n",
              c2Before, c2During, c2During / c2Before);
  std::printf("client1 worst op: %.2f s (recovery took %.2f s)\n",
              c1MaxUs / 1e6,
              sim::toSeconds(r.detectionDelay + r.recoveryDuration));

  bench::Verdict v;
  v.check(r.recovered, "recovery completed");
  v.check(core::within(c1Before, 8, 40) && core::within(c2Before, 8, 40),
          "pre-crash latency is tens of microseconds");
  v.check(c1MaxUs / 1e6 >
              0.7 * sim::toSeconds(r.detectionDelay + r.recoveryDuration),
          "client 1 blocks for ~the whole recovery (lost data unavailable)");
  v.check(c2During > 1.2 * c2Before,
          "client 2 sees elevated latency during recovery "
          "(paper: 1.4-2.4x)");
  v.check(c2During < 30 * c2Before,
          "client 2 is degraded, not blocked");

  // Journal shape: the root recovery span must agree with the recovery
  // record, and detection must complete before the will lookup starts.
  const auto* root = bench::recoveryRoot(r.spans);
  const double rootS = root ? sim::toSeconds(root->duration()) : 0;
  const double recS = sim::toSeconds(r.recoveryDuration);
  v.check(root != nullptr && !root->open && recS > 0 &&
              core::within(rootS / recS, 0.9, 1.1),
          "journal root span duration matches the recovery record");
  const obs::EventJournal::Span* det = nullptr;
  const obs::EventJournal::Span* wl = nullptr;
  for (const auto& s : r.spans) {
    if (s.name == "failure_detection" && det == nullptr) det = &s;
    if (s.name == "will_lookup" && wl == nullptr) wl = &s;
  }
  v.check(det != nullptr && wl != nullptr && !det->open && !det->abandoned &&
              det->end <= wl->begin,
          "failure detection completes before the will lookup begins");
  return v.exitCode();
}
