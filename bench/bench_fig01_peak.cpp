// Figure 1: aggregated read-only throughput (a) and average power per
// server (b) as a function of cluster size and client count.
//
// Paper reference points (Grid'5000 Nancy nodes):
//   1 server saturates at ~372 Kop/s with 30 clients;
//   5 servers scale linearly with clients; 10 servers add nothing at 30
//   clients (client-limited);
//   power: ~92 W at 1 client, ~122-127 W at 10 and 30 clients — the same
//   watts for very different throughputs (Finding 1).

#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"

using namespace rc;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Fig. 1 — peak read-only throughput and power",
                "Taleb et al., ICDCS'17, Fig. 1a/1b, Finding 1");

  const std::uint64_t records =
      opt.scale == bench::Options::Scale::kFull ? 5'000'000 : 500'000;

  struct Cell {
    double kops = 0;
    double watts = 0;
  };
  const int serverCounts[] = {1, 5, 10};
  const int clientCounts[] = {1, 10, 30};
  Cell grid[3][3];

  for (int si = 0; si < 3; ++si) {
    for (int ci = 0; ci < 3; ++ci) {
      core::YcsbExperimentConfig cfg;
      cfg.servers = serverCounts[si];
      cfg.clients = clientCounts[ci];
      cfg.workload = ycsb::WorkloadSpec::C(records);
      cfg.seed = opt.seed;
      cfg.timeScale = opt.timeScale();
      const auto r = core::runYcsbExperiment(cfg);
      grid[si][ci] = Cell{r.throughputOpsPerSec / 1e3, r.meanPowerPerServerW};
    }
  }

  std::printf("\n(a) Aggregated throughput (Kop/s)\n");
  core::TableFormatter ta({"servers \\ clients", "1", "10", "30"});
  std::printf("(b) Average power per server (W)\n\n");
  core::TableFormatter tb({"servers \\ clients", "1", "10", "30"});
  for (int si = 0; si < 3; ++si) {
    std::vector<std::string> ra{std::to_string(serverCounts[si])};
    std::vector<std::string> rb{std::to_string(serverCounts[si])};
    for (int ci = 0; ci < 3; ++ci) {
      ra.push_back(core::TableFormatter::num(grid[si][ci].kops, 0) + "K");
      rb.push_back(core::TableFormatter::num(grid[si][ci].watts, 1));
    }
    ta.addRow(ra);
    tb.addRow(rb);
  }
  std::printf("(a) throughput:\n");
  ta.print();
  std::printf("(b) power:\n");
  tb.print();

  bench::Verdict v;
  v.check(core::within(grid[0][2].kops, 280, 460),
          "single-server read peak ~372 Kop/s (paper: 372K)");
  v.check(grid[1][2].kops > 1.8 * grid[0][2].kops,
          "5 servers scale read throughput well past 1 server at 30 clients");
  v.check(std::abs(grid[2][2].kops - grid[1][2].kops) <
              0.15 * grid[1][2].kops,
          "10 servers add nothing over 5 at 30 clients (client-limited)");
  v.check(core::within(grid[0][0].watts, 88, 97),
          "1 server / 1 client draws ~92 W");
  v.check(core::within(grid[0][1].watts, 117, 128) &&
              core::within(grid[0][2].watts, 117, 128),
          "1 server draws ~122-127 W at 10 and 30 clients");
  v.check(std::abs(grid[0][1].watts - grid[0][2].watts) < 4.0,
          "same power for different throughput (non-proportionality)");
  return v.exitCode();
}
