// SS IX-B ablation: "Tuning the consistency-level?" — acknowledge updates
// without waiting for backup acks (relaxed consistency) and compare
// throughput, power and energy against the strongly-consistent default.
//
// The paper proposes this as a mitigation for Finding 3's replication
// overhead; this bench quantifies what the trade buys.

#include <cstdio>

#include "bench_common.hpp"
#include "core/cluster.hpp"
#include "core/experiment.hpp"

using namespace rc;

namespace {

core::YcsbExperimentResult run(int rf, bool waitForAcks,
                               const bench::Options& opt) {
  core::YcsbExperimentConfig cfg;
  cfg.servers = 20;
  cfg.clients = 60;
  cfg.replicationFactor = rf;
  cfg.workload = ycsb::WorkloadSpec::A();
  cfg.seed = opt.seed;
  cfg.timeScale = opt.timeScale();
  // Reach through the cluster defaults: the experiment runner copies
  // MasterParams from ClusterParams, so we run it manually here.
  core::ClusterParams cp;
  cp.servers = cfg.servers;
  cp.clients = cfg.clients;
  cp.seed = cfg.seed;
  cp.replicationFactor = rf;
  cp.master.replication.waitForAcks = waitForAcks;
  core::Cluster cluster(cp);
  const auto table = cluster.createTable("usertable");
  cluster.bulkLoad(table, cfg.workload.recordCount, cfg.workload.valueBytes);

  ycsb::YcsbClientParams ycp;
  cluster.configureYcsb(table, cfg.workload, ycp);
  cluster.startYcsb();
  cluster.sim().runFor(static_cast<sim::Duration>(
      static_cast<double>(sim::seconds(2)) * cfg.timeScale));
  const auto t0 = cluster.sim().now();
  const auto ops0 = cluster.totalOpsCompleted();
  std::vector<node::CpuScheduler::Snapshot> snaps;
  for (int i = 0; i < cluster.serverCount(); ++i) {
    snaps.push_back(cluster.server(i).node->snapshotCpu());
  }
  cluster.sim().runFor(static_cast<sim::Duration>(
      static_cast<double>(sim::seconds(8)) * cfg.timeScale));
  const auto t1 = cluster.sim().now();

  core::YcsbExperimentResult r;
  r.measuredSeconds = sim::toSeconds(t1 - t0);
  r.opsMeasured = cluster.totalOpsCompleted() - ops0;
  r.throughputOpsPerSec = static_cast<double>(r.opsMeasured) /
                          r.measuredSeconds;
  double watts = 0;
  for (int i = 0; i < cluster.serverCount(); ++i) {
    watts += cp.serverNode.power.watts(
        cluster.server(i).node->meanUtilisationSince(
            snaps[static_cast<std::size_t>(i)], t1));
  }
  r.clusterPowerW = watts;
  r.meanPowerPerServerW = watts / cluster.serverCount();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("Ablation — relaxed vs strong replication consistency",
                "Taleb et al., ICDCS'17, SS IX-B (consistency discussion)");

  const std::uint64_t totalRequests = 6'000'000;
  core::TableFormatter t({"rf", "mode", "throughput (Kop/s)",
                          "power/node (W)", "run energy (KJ)"});
  double syncThr[3], relaxThr[3];
  double syncE[3], relaxE[3];
  int i = 0;
  for (int rf : {1, 2, 4}) {
    const auto s = run(rf, true, opt);
    const auto x = run(rf, false, opt);
    syncThr[i] = s.throughputOpsPerSec;
    relaxThr[i] = x.throughputOpsPerSec;
    syncE[i] = s.energyForRequestsJ(totalRequests) / 1e3;
    relaxE[i] = x.energyForRequestsJ(totalRequests) / 1e3;
    t.addRow({std::to_string(rf), "strong (wait for acks)",
              core::TableFormatter::kops(s.throughputOpsPerSec),
              core::TableFormatter::num(s.meanPowerPerServerW, 1),
              core::TableFormatter::num(syncE[i], 0)});
    t.addRow({std::to_string(rf), "relaxed (fire-and-forget)",
              core::TableFormatter::kops(x.throughputOpsPerSec),
              core::TableFormatter::num(x.meanPowerPerServerW, 1),
              core::TableFormatter::num(relaxE[i], 0)});
    ++i;
  }
  t.print();

  bench::Verdict v;
  v.check(relaxThr[2] > 1.5 * syncThr[2],
          "relaxed consistency recovers most of the rf=4 throughput loss");
  v.check(relaxE[2] < 0.7 * syncE[2],
          "and most of the energy overhead");
  v.check(relaxThr[0] > syncThr[0] * 0.98,
          "relaxation helps (or is neutral) even at rf=1");
  // Relaxation removes the ack *wait* but not the replication *work*:
  // backup writes still contend for server CPU, so some rf cost remains —
  // a caveat the paper's SS IX-B proposal glosses over.
  const double relaxDrop = 1 - relaxThr[2] / relaxThr[0];
  const double syncDrop = 1 - syncThr[2] / syncThr[0];
  v.check(relaxDrop < 0.9 * syncDrop && relaxDrop > 0.05,
          "relaxed mode softens (but cannot erase) the rf penalty — "
          "replication CPU contention remains");
  return v.exitCode();
}
