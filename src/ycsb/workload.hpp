#pragma once

#include <cstdint>
#include <string>

#include "sim/rng.hpp"

namespace rc::ycsb {

/// A YCSB core-workload specification (Cooper et al., SoCC'10). The paper
/// runs A/B/C over 1 KB records with a *uniform* request distribution and
/// names "more workloads" and "different request distributions" as future
/// work — D (read-latest with inserts) and F (read-modify-write) plus the
/// zipfian distribution are provided for that. (Workload E needs ordered
/// range scans, which hash-partitioned RAMCloud tables do not have; our
/// kScan is a tablet enumeration, not a range query.)
struct WorkloadSpec {
  std::string name = "custom";
  double readProportion = 1.0;
  double updateProportion = 0.0;
  double insertProportion = 0.0;
  double readModifyWriteProportion = 0.0;

  std::uint64_t recordCount = 100'000;
  std::uint32_t valueBytes = 1000;

  enum class Distribution {
    kUniform,
    kZipfian,
    kLatest,  ///< zipfian anchored at the newest record (workload D)
  };
  Distribution distribution = Distribution::kUniform;
  double zipfianTheta = 0.99;  ///< YCSB's default skew

  static WorkloadSpec A(std::uint64_t records = 100'000);
  static WorkloadSpec B(std::uint64_t records = 100'000);
  static WorkloadSpec C(std::uint64_t records = 100'000);
  static WorkloadSpec D(std::uint64_t records = 100'000);
  static WorkloadSpec F(std::uint64_t records = 100'000);
};

/// Draws keys in [0, recordCount) following the spec's distribution.
/// The zipfian generator uses Gray et al.'s rejection-free algorithm as in
/// YCSB's ZipfianGenerator, with the zeta constant precomputed.
class KeyChooser {
 public:
  KeyChooser(const WorkloadSpec& spec, sim::Rng rng);

  std::uint64_t next();

  /// Key over a keyspace grown to `currentN` records (inserts). kLatest
  /// anchors the skew at the newest key; kUniform spreads over all of it.
  std::uint64_t next(std::uint64_t currentN);

  /// Hot-key shift (scheduled by load::TrafficShape): re-anchor which keys
  /// are popular by composing a bijective affine remap
  /// idx -> (mult*idx + add) mod recordCount over the preloaded keyspace.
  /// The (mult, add) pair is derived from `shiftSeed` and cached *once per
  /// shift event* — the per-op hot path stays one multiply-add, instead of
  /// re-deriving the permutation (gcd search) on every draw. Inserted keys
  /// (idx >= recordCount) and kLatest's newest-anchored ranks are left
  /// unshifted. Repeated shifts compose (each remaps the previous layout).
  void shiftHotKeys(std::uint64_t shiftSeed);

  std::uint64_t shiftCount() const { return shifts_; }

  /// The currently cached remap, exposed so tests can verify the shifted
  /// stream is exactly the affine image of the unshifted one.
  std::uint64_t remap(std::uint64_t idx) const {
    if (shiftMult_ == 1 && shiftAdd_ == 0) return idx;
    if (idx >= n_) return idx;  // inserted tail is unshifted
    return (shiftMult_ * idx + shiftAdd_) % n_;
  }

 private:
  std::uint64_t nextZipfian();

  std::uint64_t n_;
  WorkloadSpec::Distribution dist_;
  sim::Rng rng_;

  // Cached hot-key-shift permutation (identity until the first shift).
  std::uint64_t shiftMult_ = 1;
  std::uint64_t shiftAdd_ = 0;
  std::uint64_t shifts_ = 0;

  // Zipfian state.
  double theta_ = 0;
  double zetan_ = 0;
  double zeta2_ = 0;
  double alpha_ = 0;
  double eta_ = 0;
  double halfPowTheta_ = 0;  ///< pow(0.5, theta): loop-invariant, hoisted
};

}  // namespace rc::ycsb
