#include "ycsb/workload.hpp"

#include <cmath>
#include <numeric>

#include "sim/backoff.hpp"

namespace rc::ycsb {

WorkloadSpec WorkloadSpec::A(std::uint64_t records) {
  WorkloadSpec s;
  s.name = "A";
  s.readProportion = 0.5;
  s.updateProportion = 0.5;
  s.recordCount = records;
  return s;
}

WorkloadSpec WorkloadSpec::B(std::uint64_t records) {
  WorkloadSpec s;
  s.name = "B";
  s.readProportion = 0.95;
  s.updateProportion = 0.05;
  s.recordCount = records;
  return s;
}

WorkloadSpec WorkloadSpec::C(std::uint64_t records) {
  WorkloadSpec s;
  s.name = "C";
  s.readProportion = 1.0;
  s.updateProportion = 0.0;
  s.recordCount = records;
  return s;
}

WorkloadSpec WorkloadSpec::D(std::uint64_t records) {
  WorkloadSpec s;
  s.name = "D";
  s.readProportion = 0.95;
  s.insertProportion = 0.05;
  s.recordCount = records;
  s.distribution = Distribution::kLatest;
  return s;
}

WorkloadSpec WorkloadSpec::F(std::uint64_t records) {
  WorkloadSpec s;
  s.name = "F";
  s.readProportion = 0.5;
  s.readModifyWriteProportion = 0.5;
  s.recordCount = records;
  return s;
}

namespace {
double zetaStatic(std::uint64_t n, double theta) {
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}
}  // namespace

KeyChooser::KeyChooser(const WorkloadSpec& spec, sim::Rng rng)
    : n_(spec.recordCount), dist_(spec.distribution), rng_(rng) {
  if (dist_ != WorkloadSpec::Distribution::kUniform) {
    theta_ = spec.zipfianTheta;
    zetan_ = zetaStatic(n_, theta_);
    zeta2_ = zetaStatic(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
    halfPowTheta_ = std::pow(0.5, theta_);
  }
}

std::uint64_t KeyChooser::next() { return next(n_); }

void KeyChooser::shiftHotKeys(std::uint64_t shiftSeed) {
  if (n_ < 2) return;
  // Compose a fresh affine layer onto the cached permutation. The search
  // for a multiplier coprime with n (the expensive part) runs here, once
  // per shift event; remap() afterwards is a single multiply-add-mod.
  std::uint64_t m = sim::Backoff::mix(shiftSeed) % n_;
  if (m < 2) m = 2;
  while (std::gcd(m, n_) != 1) {
    ++m;
    if (m >= n_) m = 2;
  }
  const std::uint64_t a =
      sim::Backoff::mix(shiftSeed ^ 0x5bf03635ULL) % n_;
  // (m*x + a) o (M*x + A) = (m*M)*x + (m*A + a), all mod n.
  shiftMult_ = (m * shiftMult_) % n_;
  shiftAdd_ = (m * shiftAdd_ + a) % n_;
  ++shifts_;
}

std::uint64_t KeyChooser::next(std::uint64_t currentN) {
  if (currentN == 0) currentN = 1;
  switch (dist_) {
    case WorkloadSpec::Distribution::kUniform:
      // A permutation of uniform is uniform; remap anyway so mixed
      // workloads keep one key layout across a shift.
      return remap(rng_.uniformInt(currentN));
    case WorkloadSpec::Distribution::kZipfian:
      return remap(nextZipfian() % currentN);
    case WorkloadSpec::Distribution::kLatest: {
      // Skew anchored at the newest record: rank 0 = latest insert.
      const std::uint64_t rank = nextZipfian() % currentN;
      return currentN - 1 - rank;
    }
  }
  return 0;
}

std::uint64_t KeyChooser::nextZipfian() {
  const double u = rng_.uniformDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + halfPowTheta_) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace rc::ycsb
