#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>

#include <string>

#include "client/ramcloud_client.hpp"
#include "sim/token_bucket.hpp"
#include "obs/slo_tracker.hpp"
#include "sim/stats.hpp"
#include "ycsb/workload.hpp"

namespace rc::ycsb {

struct YcsbClientParams {
  /// Ops to issue; 0 = run until stop().
  std::uint64_t opsTarget = 0;

  /// Client-side per-op processing cost (YCSB's Java-side work: key
  /// generation, marshalling, stats). Bounds the per-client rate exactly
  /// as in the paper, where 30 clients saturate around ~1 Mop/s (Fig. 1a).
  sim::Duration clientOverheadPerOp = sim::usec(26);

  /// Relative jitter on the overhead (uniform in [1-j, 1+j]); breaks the
  /// phase-lock a deterministic closed loop would otherwise exhibit.
  double clientOverheadJitter = 0.25;

  /// Fig. 13's client-level throttle; <= 0 disables.
  double throttleOpsPerSec = 0;

  /// First key id this client's *inserts* use (workload D). Each client
  /// must get a disjoint base; Cluster::configureYcsb assigns them.
  std::uint64_t insertKeyBase = 1ULL << 40;

  /// Keep only keys satisfying this predicate (rejection-sampled). Used by
  /// Fig. 10's "client 1 requests exclusively the killed server's data" /
  /// "client 2 requests the rest". Null = accept all keys.
  std::function<bool(std::uint64_t)> keyPredicate;

  /// Tenant name for SLO attribution ("" = untracked). Ops record into the
  /// tracker's "<tenant>/read" and "<tenant>/update" classes; the client
  /// also tags its RPCs with the tenant's dense id + 1 (docs/SLO.md).
  std::string tenant;

  // ----- transactional variant (docs/TRANSACTIONS.md)

  /// Run read-modify-write ops as single-key minitransactions (txRead +
  /// txWrite + txCommit) instead of an unconditioned read-then-write.
  bool transactionalRmw = false;

  /// Proportion of ops (drawn independently of the workload mix) issued as
  /// two-key transactional transfers between distinct "account" keys.
  /// <= 0 disables.
  double transferProportion = 0;

  /// Account keyspace for transfers: keys [transferKeyBase,
  /// transferKeyBase + transferAccounts). Place it outside the workload's
  /// key range when an external checker models the account state (regular
  /// YCSB writes to account keys would look like torn transfers).
  std::uint64_t transferKeyBase = 0;
  std::uint64_t transferAccounts = 16;
};

struct YcsbStats {
  std::uint64_t opsCompleted = 0;
  std::uint64_t reads = 0;
  std::uint64_t updates = 0;
  std::uint64_t inserts = 0;
  std::uint64_t readModifyWrites = 0;
  std::uint64_t transfers = 0;      ///< committed two-key transfers
  std::uint64_t txAborted = 0;      ///< definite aborts (clean outcome)
  std::uint64_t txUnknown = 0;      ///< outcomes left to orphan resolution
  std::uint64_t failures = 0;
  sim::Histogram readLatency;
  sim::Histogram updateLatency;  ///< updates, inserts and RMWs
  sim::SimTime lastCompletionAt = 0;
};

/// A closed-loop YCSB client instance (one per client node, as the paper
/// runs exactly one YCSB process per machine).
class YcsbClient {
 public:
  YcsbClient(sim::Simulation& sim, client::RamCloudClient& client,
             std::uint64_t tableId, WorkloadSpec spec, YcsbClientParams params,
             sim::Rng rng);

  void start();
  void stop();

  bool running() const { return running_; }
  bool done() const {
    return params_.opsTarget > 0 && stats_.opsCompleted >= params_.opsTarget;
  }

  const YcsbStats& stats() const { return stats_; }

  /// Attach the cluster's SLO tracker. Resolves this client's tenant
  /// classes ("<tenant>/read", "<tenant>/update") to dense ids once, so the
  /// per-op record path is id-indexed. The classes must already be
  /// declared; a client with an empty tenant stays untracked. SLO latency
  /// is measured from op *intent* (before any token-bucket throttle wait),
  /// so an over-admitted throttled tenant visibly burns its budget.
  void setSloTracker(obs::SloTracker* slo);

  /// Called on every completed op (for latency timelines): (now, latency).
  std::function<void(sim::SimTime, sim::Duration, bool isRead)> onOpComplete;

  /// Called after every transfer attempt with both account keys and the
  /// commit outcome (kOk = committed, kTxConflict = aborted, other =
  /// unknown). The chaos harness's atomicity checker hangs off this.
  std::function<void(std::uint64_t keyA, std::uint64_t keyB, net::Status)>
      onTransferComplete;

  /// Called once when opsTarget is reached.
  std::function<void()> onDone;

  /// Fault hook (FaultPlan kLoadSurge): multiply this client's arrival
  /// rate by `factor` until `d` from now, by dividing the closed loop's
  /// per-op client overhead. Overlapping surges keep the larger factor
  /// and the later deadline.
  void applyLoadSurge(double factor, sim::Duration d) {
    surgeFactor_ = std::max(surgeFactor_, factor);
    surgeUntil_ = std::max(surgeUntil_, sim_.now() + d);
  }
  bool surging() const {
    return surgeFactor_ > 1.0 && sim_.now() < surgeUntil_;
  }

 private:
  enum class OpKind { kRead, kUpdate, kInsert, kReadModifyWrite, kTransfer };

  void issueNext();
  OpKind pickOp();
  std::uint64_t pickKey();
  std::uint64_t keyspaceSize() const {
    return spec_.recordCount + inserted_;
  }

  sim::Simulation& sim_;
  client::RamCloudClient& client_;
  std::uint64_t tableId_;
  WorkloadSpec spec_;
  YcsbClientParams params_;
  sim::Rng rng_;
  KeyChooser keys_;
  sim::TokenBucket bucket_;

  bool running_ = false;
  double surgeFactor_ = 1.0;      ///< kLoadSurge arrival-rate multiplier
  sim::SimTime surgeUntil_ = 0;   ///< surge window end (absolute)
  std::uint64_t generation_ = 0;  ///< invalidates in-flight loops on stop()
  std::uint64_t inserted_ = 0;    ///< grows the keyspace (workload D)
  YcsbStats stats_;
  obs::SloTracker* slo_ = nullptr;
  int readClass_ = -1;
  int updateClass_ = -1;
};

}  // namespace rc::ycsb
