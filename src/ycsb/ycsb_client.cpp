#include "ycsb/ycsb_client.hpp"

#include <utility>

namespace rc::ycsb {

YcsbClient::YcsbClient(sim::Simulation& sim, client::RamCloudClient& client,
                       std::uint64_t tableId, WorkloadSpec spec,
                       YcsbClientParams params, sim::Rng rng)
    : sim_(sim),
      client_(client),
      tableId_(tableId),
      spec_(std::move(spec)),
      params_(params),
      rng_(rng),
      keys_(spec_, rng_.fork(1)),
      bucket_(params.throttleOpsPerSec) {}

void YcsbClient::setSloTracker(obs::SloTracker* slo) {
  slo_ = slo;
  readClass_ = updateClass_ = -1;
  if (slo_ == nullptr || params_.tenant.empty()) return;
  readClass_ = slo_->classId(params_.tenant + "/read");
  updateClass_ = slo_->classId(params_.tenant + "/update");
  // Tag outgoing RPCs so server-side flight stamps attribute to us. 0 is
  // reserved for "untagged"; shift the dense class id by one.
  const int base = readClass_ >= 0 ? readClass_ : updateClass_;
  if (base >= 0) client_.setTenant(static_cast<std::uint16_t>(base + 1));
}

void YcsbClient::start() {
  if (running_) return;
  running_ = true;
  ++generation_;
  issueNext();
}

void YcsbClient::stop() {
  running_ = false;
  ++generation_;
}

YcsbClient::OpKind YcsbClient::pickOp() {
  // Transfers are drawn independently of the workload mix so enabling them
  // does not change the relative read/update/insert proportions.
  if (params_.transferProportion > 0 &&
      rng_.uniformDouble() < params_.transferProportion) {
    return OpKind::kTransfer;
  }
  double r = rng_.uniformDouble();
  if (r < spec_.readProportion) return OpKind::kRead;
  r -= spec_.readProportion;
  if (r < spec_.updateProportion) return OpKind::kUpdate;
  r -= spec_.updateProportion;
  if (r < spec_.insertProportion) return OpKind::kInsert;
  return OpKind::kReadModifyWrite;
}

std::uint64_t YcsbClient::pickKey() {
  // The chooser draws an index into the (possibly grown) keyspace; indices
  // past the preloaded records map onto this client's insert range.
  auto resolve = [this](std::uint64_t idx) {
    return idx < spec_.recordCount
               ? idx
               : params_.insertKeyBase + (idx - spec_.recordCount);
  };
  std::uint64_t k = resolve(keys_.next(keyspaceSize()));
  if (params_.keyPredicate) {
    // Rejection sampling; give up after a bounded number of draws so a
    // pathological predicate cannot wedge the simulation.
    for (int tries = 0; tries < 10'000 && !params_.keyPredicate(k); ++tries) {
      k = resolve(keys_.next(keyspaceSize()));
    }
  }
  return k;
}

void YcsbClient::issueNext() {
  if (!running_ || done()) return;
  const std::uint64_t gen = generation_;

  // SLO latency runs from here — the moment the op *wants* to go — so a
  // token-bucket throttle wait counts against the tenant's budget.
  const sim::SimTime intent = sim_.now();
  const sim::Duration wait = bucket_.reserve(sim_.now());
  auto fire = [this, gen, intent] {
    if (generation_ != gen || !running_) return;
    const OpKind op = pickOp();
    const bool isRead = op == OpKind::kRead;
    // Per-op tenant tag: reads and updates land in their own SLO class, so
    // server-side energy charges split by op class too (docs/ENERGY.md).
    // Safe to flip per op — the closed loop has one op in flight.
    if (slo_ != nullptr) {
      const int cls = isRead ? readClass_ : updateClass_;
      if (cls >= 0) client_.setTenant(static_cast<std::uint16_t>(cls + 1));
    }
    std::uint64_t key;
    if (op == OpKind::kInsert) {
      key = params_.insertKeyBase + inserted_;
    } else if (op == OpKind::kTransfer) {
      key = 0;  // transfers pick their own account pair below
    } else {
      key = pickKey();
    }

    const bool isTx =
        op == OpKind::kTransfer ||
        (op == OpKind::kReadModifyWrite && params_.transactionalRmw);
    auto complete = [this, gen, op, isRead, isTx, intent](
                        net::Status status, sim::Duration latency) {
      if (generation_ != gen) return;
      if (status == net::Status::kOk) {
        if (slo_ != nullptr) {
          const int cls = isRead ? readClass_ : updateClass_;
          if (cls >= 0) {
            // Stage decomposition of the op's final RPC attempt, when the
            // trace captured one (timeouts leave lastOp invalid).
            const auto& last = client_.lastOp();
            slo_->record(cls, last.valid ? last.node : -1,
                         last.valid ? last.span : 0, sim_.now() - intent,
                         last.valid ? &last.detail : nullptr);
          }
        }
        ++stats_.opsCompleted;
        switch (op) {
          case OpKind::kRead:
            ++stats_.reads;
            stats_.readLatency.add(latency);
            break;
          case OpKind::kUpdate:
            ++stats_.updates;
            stats_.updateLatency.add(latency);
            break;
          case OpKind::kInsert:
            ++stats_.inserts;
            ++inserted_;
            stats_.updateLatency.add(latency);
            break;
          case OpKind::kReadModifyWrite:
            ++stats_.readModifyWrites;
            stats_.updateLatency.add(latency);
            break;
          case OpKind::kTransfer:
            ++stats_.transfers;
            stats_.updateLatency.add(latency);
            break;
        }
      } else if (isTx && status == net::Status::kTxConflict) {
        // A definite abort is a clean concurrency outcome, not a failure;
        // the op simply doesn't count toward the target (retry in spirit).
        ++stats_.txAborted;
      } else if (isTx) {
        // Commit outcome unknown to this client (e.g. a participant crashed
        // mid-commit); orphan resolution settles it server-side.
        ++stats_.txUnknown;
      } else {
        ++stats_.failures;
      }
      stats_.lastCompletionAt = sim_.now();
      if (onOpComplete) onOpComplete(sim_.now(), latency, isRead);
      if (done()) {
        running_ = false;
        if (onDone) onDone();
        return;
      }
      // Client-side processing before the next op in the closed loop. An
      // active load surge (FaultPlan kLoadSurge) divides the overhead, so
      // this client offers surgeFactor × its normal rate for the window.
      const double j = params_.clientOverheadJitter;
      double factor =
          j > 0 ? 1.0 - j + 2.0 * j * rng_.uniformDouble() : 1.0;
      if (surgeFactor_ > 1.0 && sim_.now() < surgeUntil_) {
        factor /= surgeFactor_;
      }
      const auto overhead = static_cast<sim::Duration>(
          static_cast<double>(params_.clientOverheadPerOp) * factor);
      sim_.schedule(overhead, [this, gen] {
        if (generation_ == gen) issueNext();
      });
    };

    switch (op) {
      case OpKind::kRead:
        client_.read(tableId_, key, std::move(complete));
        break;
      case OpKind::kUpdate:
      case OpKind::kInsert:
        client_.write(tableId_, key, spec_.valueBytes, std::move(complete));
        break;
      case OpKind::kReadModifyWrite: {
        if (params_.transactionalRmw) {
          // Conditioned RMW as a single-key minitransaction: the prepare
          // round re-validates the read version, so a concurrent writer
          // aborts us instead of being silently overwritten.
          const sim::SimTime started = sim_.now();
          const std::uint64_t txId = client_.txBegin();
          client_.txRead(
              txId, tableId_, key,
              [this, gen, txId, key, started, complete = std::move(complete)](
                  net::Status, std::uint64_t, sim::Duration) mutable {
                if (generation_ != gen) return;
                client_.txWrite(txId, tableId_, key, spec_.valueBytes);
                client_.txCommit(
                    txId, [this, started, complete = std::move(complete)](
                              net::Status s, sim::Duration) mutable {
                      complete(s, sim_.now() - started);
                    });
              });
          break;
        }
        // Read then write the same key; one logical op, combined latency.
        const sim::SimTime started = sim_.now();
        client_.read(tableId_, key,
                     [this, gen, key, started,
                      complete = std::move(complete)](
                         net::Status s, sim::Duration) mutable {
                       if (generation_ != gen) return;
                       if (s != net::Status::kOk) {
                         complete(s, sim_.now() - started);
                         return;
                       }
                       client_.write(tableId_, key, spec_.valueBytes,
                                     [started, complete = std::move(complete),
                                      this](net::Status s2, sim::Duration) mutable {
                                       complete(s2, sim_.now() - started);
                                     });
                     });
        break;
      }
      case OpKind::kTransfer: {
        // Atomic two-key transfer between distinct accounts: read both
        // (joining the optimistic read set), rewrite both, commit. Either
        // both keys advance together or neither does — the chaos harness's
        // atomicity checker verifies exactly that via onTransferComplete.
        const sim::SimTime started = sim_.now();
        const std::uint64_t n = std::max<std::uint64_t>(
            2, params_.transferAccounts);
        const std::uint64_t a = params_.transferKeyBase + rng_.uniformInt(n);
        std::uint64_t b = params_.transferKeyBase + rng_.uniformInt(n - 1);
        if (b >= a) ++b;
        const std::uint64_t txId = client_.txBegin();
        auto pendingReads = std::make_shared<int>(2);
        auto readDone = [this, gen, txId, a, b, started,
                         complete = std::move(complete), pendingReads](
                            net::Status, std::uint64_t,
                            sim::Duration) mutable {
          // A failed read just leaves that side unconditioned (blind
          // write); atomicity still holds, only conflict detection
          // weakens for this attempt.
          if (--*pendingReads > 0) return;
          if (generation_ != gen) return;
          client_.txWrite(txId, tableId_, a, spec_.valueBytes);
          client_.txWrite(txId, tableId_, b, spec_.valueBytes);
          client_.txCommit(
              txId, [this, gen, a, b, started,
                     complete = std::move(complete)](net::Status s,
                                                     sim::Duration) mutable {
                // The checker must see every outcome, even if this client
                // was stopped while the commit was in flight.
                if (onTransferComplete) onTransferComplete(a, b, s);
                if (generation_ != gen) return;
                complete(s, sim_.now() - started);
              });
        };
        client_.txRead(txId, tableId_, a, readDone);
        client_.txRead(txId, tableId_, b, std::move(readDone));
        break;
      }
    }
  };

  if (wait > 0) {
    sim_.schedule(wait, std::move(fire));
  } else {
    fire();
  }
}

}  // namespace rc::ycsb
