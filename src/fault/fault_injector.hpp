#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "node/node.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace rc::core {
class Cluster;
}

namespace rc::fault {

/// Drives a FaultPlan against a live Cluster, deterministically.
///
/// All injection state rides on the cluster's single discrete-event clock:
/// timed events are scheduled at exact sim times, conditional events hang
/// off the coordinator's onRecoveryStarted hook, and every stochastic
/// decision (which frame to drop, whether a message is lost) draws from the
/// injector's own forked Rng — so the same plan + seed replays the same
/// fault sequence bit-for-bit, independent of workload randomness.
///
/// Network faults funnel through one Network fault filter installed at
/// arm(): an ordered list of link rules (loss probability, extra latency,
/// partitions as loss=1.0) matched bidirectionally against (from, to).
/// Rules are removed when their duration elapses or a kHealNetwork event
/// names their tag.
class FaultInjector {
 public:
  /// One line of the what-actually-happened ledger, for assertions.
  struct Injection {
    sim::SimTime at = 0;
    FaultKind kind = FaultKind::kCrashServer;
    int server = -1;  ///< -1 for cluster-wide (network) faults
    std::string tag;
  };

  FaultInjector(core::Cluster& cluster, FaultPlan plan, sim::Rng rng);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Install hooks and schedule the plan. Call once, before sim.run().
  void arm();

  const std::vector<Injection>& injections() const { return injections_; }
  int crashesInjected() const { return crashes_; }
  int recoveriesObserved() const { return recoveriesSeen_; }
  std::size_t activeNetworkRules() const { return rules_.size(); }

 private:
  struct LinkRule {
    std::uint64_t id = 0;
    std::vector<node::NodeId> a;  ///< empty = match any node
    std::vector<node::NodeId> b;  ///< empty = match any node
    double loss = 0;
    sim::Duration extra = 0;
    /// false: match (a,b) in either direction. true: only a -> b — used by
    /// kReplyDrop so requests get through while replies vanish.
    bool directional = false;
    std::string tag;
  };

  void scheduleEvent(const FaultEvent& ev);
  void fire(const FaultEvent& ev);
  void record(const FaultEvent& ev);

  void fireCrash(const FaultEvent& ev);
  void fireNetwork(const FaultEvent& ev);
  void healTag(const std::string& tag);
  void removeRule(std::uint64_t ruleId);

  /// Install the Network fault filter only while link rules exist. Every
  /// message otherwise pays a filter call that scans an empty rule list —
  /// with no rule armed the filter draws no randomness, so adding and
  /// removing it as rules come and go is draw-order-identical.
  void syncFilter();
  void fireDisk(const FaultEvent& ev);
  void fireFrames(const FaultEvent& ev);
  void fireCpu(const FaultEvent& ev);
  void restoreCpu(int serverIdx);
  void fireClientStall(const FaultEvent& ev);
  void fireCrashBeforeReply(const FaultEvent& ev);
  void fireLoadSurge(const FaultEvent& ev);

  /// Map the event's setA/setB (server indexes; empty A -> {ev.server},
  /// empty B -> wildcard) to node ids.
  std::vector<node::NodeId> resolveSet(const std::vector<int>& set,
                                       int fallbackServer) const;

  void journalEvent(const FaultEvent& ev, const char* prefix);

  core::Cluster& cluster_;
  FaultPlan plan_;
  sim::Rng rng_;
  bool armed_ = false;
  bool filterInstalled_ = false;

  std::vector<LinkRule> rules_;
  std::uint64_t nextRuleId_ = 1;

  /// Workers stolen per server index for kCpuThrottle (count still held).
  struct Throttle {
    int serverIdx = -1;
    std::vector<int> heldWorkers;
    std::uint64_t epoch = 0;
  };
  std::vector<Throttle> throttles_;

  std::vector<Injection> injections_;
  int crashes_ = 0;
  int recoveriesSeen_ = 0;
};

}  // namespace rc::fault
