#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace rc::fault {

/// What to break. Every kind maps onto an existing model hook (network
/// filter, disk stall/degrade, CPU worker theft, backup frame surgery,
/// process crash), so plans compose without special cases.
enum class FaultKind {
  kCrashServer,    ///< kill the RAMCloud process on a server (permanent)
  kNetworkLoss,    ///< drop each matching message with probability
  kNetworkDelay,   ///< add fixed extra one-way latency to matching messages
  kPartition,      ///< drop everything between two node sets
  kHealNetwork,    ///< remove network rules carrying a given tag
  kDiskStall,      ///< firmware-style pause: no I/O progress for `duration`
  kDiskDegrade,    ///< divide disk throughput by `magnitude`
  kDiskRestore,    ///< restore nominal disk throughput
  kDropFrames,     ///< silently delete `magnitude` replica frames
  kCorruptFrames,  ///< mark `magnitude` frames unreadable (listed but
                   ///< failing on read — the nasty kind)
  kCpuThrottle,    ///< gray failure: cap worker capacity at `magnitude`
  kCpuRestore,     ///< give stolen workers back
  kReplyDrop,       ///< drop server->client traffic only (lost replies force
                    ///< retries of already-applied ops — the RIFL scenario)
  kClientStall,     ///< freeze a client (no RPCs, no lease renewals)
  kCrashBeforeReply,  ///< arm a master to crash after its next write is
                      ///< durable but before the reply is sent
  kLoadSurge,  ///< multiply a client's arrival rate by `magnitude` for
               ///< `duration` (flash crowd / overload injection)
};

/// Stable lower-case name, used for journal events ("fault_<name>").
const char* faultKindName(FaultKind k);

/// When to fire. Time triggers are exact sim times; condition triggers
/// fire when the Nth recovery is admitted by the coordinator (plus an
/// optional delay), which is how "crash a backup *during* recovery 1" is
/// expressed without knowing when detection will complete.
struct FaultTrigger {
  enum class When {
    kAtTime,           ///< fire at `at`
    kOnRecoveryStart,  ///< fire `delay` after the `recoveryOrdinal`-th
                       ///< recovery begins
  };
  When when = When::kAtTime;
  sim::SimTime at = 0;
  int recoveryOrdinal = 1;  ///< 1-based
  sim::Duration delay = 0;
};

/// One declarative fault. Which fields matter depends on `kind`; unused
/// fields are ignored. Server identities are cluster server *indexes*
/// (not node ids) so plans stay valid across topology helpers.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrashServer;
  FaultTrigger trigger;

  int server = -1;         ///< target server index (crash/disk/cpu/frames)
  int client = -1;         ///< target client index (kClientStall)
  std::vector<int> setA;   ///< network rule side A (empty -> {server})
  std::vector<int> setB;   ///< network rule side B (empty -> everyone else)

  /// Loss probability [0,1] / disk slowdown factor (>=1) / frame count /
  /// CPU capacity fraction [0,1] — per kind.
  double magnitude = 0;

  /// How long the fault stays active; 0 = permanent (until an explicit
  /// heal/restore event, or forever for crashes).
  sim::Duration duration = 0;

  /// Extra one-way latency for kNetworkDelay.
  sim::Duration extraLatency = 0;

  /// Label connecting a fault to its heal (kHealNetwork removes rules by
  /// tag) and identifying it in the journal.
  std::string tag;
};

/// A deterministic fault schedule: same plan + same seed => identical
/// injection sequence (see docs/FAULTS.md for the determinism rules).
struct FaultPlan {
  std::vector<FaultEvent> events;

  // ----- builder helpers (chainable)

  FaultPlan& crashServer(sim::SimTime at, int serverIdx) {
    FaultEvent e;
    e.kind = FaultKind::kCrashServer;
    e.trigger.at = at;
    e.server = serverIdx;
    events.push_back(std::move(e));
    return *this;
  }

  /// Crash `serverIdx` once the `ordinal`-th recovery has been running for
  /// `delay` — the backup-death-during-recovery scenario.
  FaultPlan& crashOnRecovery(int ordinal, sim::Duration delay,
                             int serverIdx) {
    FaultEvent e;
    e.kind = FaultKind::kCrashServer;
    e.trigger.when = FaultTrigger::When::kOnRecoveryStart;
    e.trigger.recoveryOrdinal = ordinal;
    e.trigger.delay = delay;
    e.server = serverIdx;
    events.push_back(std::move(e));
    return *this;
  }

  FaultPlan& networkLoss(sim::SimTime at, double probability,
                         sim::Duration duration, std::string tag = "loss") {
    FaultEvent e;
    e.kind = FaultKind::kNetworkLoss;
    e.trigger.at = at;
    e.magnitude = probability;
    e.duration = duration;
    e.tag = std::move(tag);
    events.push_back(std::move(e));
    return *this;
  }

  FaultPlan& latencySpike(sim::SimTime at, sim::Duration extra,
                          sim::Duration duration,
                          std::string tag = "latency") {
    FaultEvent e;
    e.kind = FaultKind::kNetworkDelay;
    e.trigger.at = at;
    e.extraLatency = extra;
    e.duration = duration;
    e.tag = std::move(tag);
    events.push_back(std::move(e));
    return *this;
  }

  FaultPlan& partition(sim::SimTime at, std::vector<int> sideA,
                       std::vector<int> sideB, sim::Duration duration,
                       std::string tag = "partition") {
    FaultEvent e;
    e.kind = FaultKind::kPartition;
    e.trigger.at = at;
    e.setA = std::move(sideA);
    e.setB = std::move(sideB);
    e.duration = duration;
    e.tag = std::move(tag);
    events.push_back(std::move(e));
    return *this;
  }

  FaultPlan& healNetwork(sim::SimTime at, std::string tag) {
    FaultEvent e;
    e.kind = FaultKind::kHealNetwork;
    e.trigger.at = at;
    e.tag = std::move(tag);
    events.push_back(std::move(e));
    return *this;
  }

  FaultPlan& diskStall(sim::SimTime at, int serverIdx,
                       sim::Duration duration) {
    FaultEvent e;
    e.kind = FaultKind::kDiskStall;
    e.trigger.at = at;
    e.server = serverIdx;
    e.duration = duration;
    events.push_back(std::move(e));
    return *this;
  }

  FaultPlan& diskDegrade(sim::SimTime at, int serverIdx, double factor,
                         sim::Duration duration) {
    FaultEvent e;
    e.kind = FaultKind::kDiskDegrade;
    e.trigger.at = at;
    e.server = serverIdx;
    e.magnitude = factor;
    e.duration = duration;
    events.push_back(std::move(e));
    return *this;
  }

  FaultPlan& dropFrames(sim::SimTime at, int serverIdx, int count) {
    FaultEvent e;
    e.kind = FaultKind::kDropFrames;
    e.trigger.at = at;
    e.server = serverIdx;
    e.magnitude = count;
    events.push_back(std::move(e));
    return *this;
  }

  FaultPlan& corruptFrames(sim::SimTime at, int serverIdx, int count) {
    FaultEvent e;
    e.kind = FaultKind::kCorruptFrames;
    e.trigger.at = at;
    e.server = serverIdx;
    e.magnitude = count;
    events.push_back(std::move(e));
    return *this;
  }

  /// Drop each reply leaving server `serverIdx` toward any client with
  /// `probability`, for `duration`. Directional: requests still arrive and
  /// are applied, only the acks vanish — every loss forces a client retry
  /// of an op the master already executed (docs/LINEARIZABILITY.md).
  FaultPlan& replyDrop(sim::SimTime at, int serverIdx, double probability,
                       sim::Duration duration, std::string tag = "replydrop") {
    FaultEvent e;
    e.kind = FaultKind::kReplyDrop;
    e.trigger.at = at;
    e.server = serverIdx;
    e.magnitude = probability;
    e.duration = duration;
    e.tag = std::move(tag);
    events.push_back(std::move(e));
    return *this;
  }

  /// Freeze client `clientIdx` for `duration`: no new RPCs, no lease
  /// renewals. A stall longer than the lease term drives the client into
  /// lease expiry deterministically.
  FaultPlan& clientStall(sim::SimTime at, int clientIdx,
                         sim::Duration duration) {
    FaultEvent e;
    e.kind = FaultKind::kClientStall;
    e.trigger.at = at;
    e.client = clientIdx;
    e.duration = duration;
    events.push_back(std::move(e));
    return *this;
  }

  /// Arm master `serverIdx` to crash at the worst possible moment: its next
  /// write completes durably (object + completion record replicated) but
  /// the reply never leaves. The client's retry must be suppressed by the
  /// recovered completion record on the new owner.
  FaultPlan& crashBeforeReply(sim::SimTime at, int serverIdx) {
    FaultEvent e;
    e.kind = FaultKind::kCrashBeforeReply;
    e.trigger.at = at;
    e.server = serverIdx;
    events.push_back(std::move(e));
    return *this;
  }

  /// Flash crowd: multiply client `clientIdx`'s offered load by `factor`
  /// for `duration` (the closed loop's per-op overhead is divided by the
  /// factor). clientIdx == -1 surges every client — the whole-cluster
  /// overload scenario (docs/OVERLOAD.md).
  FaultPlan& loadSurge(sim::SimTime at, int clientIdx, double factor,
                       sim::Duration duration) {
    FaultEvent e;
    e.kind = FaultKind::kLoadSurge;
    e.trigger.at = at;
    e.client = clientIdx;
    e.magnitude = factor;
    e.duration = duration;
    events.push_back(std::move(e));
    return *this;
  }

  /// Gray failure: hold back workers so only `fraction` of the server's
  /// worker capacity remains (granularity 1/workerThreads).
  FaultPlan& cpuThrottle(sim::SimTime at, int serverIdx, double fraction,
                         sim::Duration duration) {
    FaultEvent e;
    e.kind = FaultKind::kCpuThrottle;
    e.trigger.at = at;
    e.server = serverIdx;
    e.magnitude = fraction;
    e.duration = duration;
    events.push_back(std::move(e));
    return *this;
  }
};

}  // namespace rc::fault
