#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rc::fault::selfperf {

/// Host-side (wall-clock) performance of the simulator itself, measured on
/// three canonical scenarios (docs/PERF.md):
///
///   ycsb_b        closed-loop YCSB-B steady state, 10 servers, rf=3
///   recovery_rf3  crash recovery of a loaded master at rf=3
///   chaos_101     the chaos fault matrix (seed 101) under YCSB-A load
///   openloop_1m   10^6 modeled users through 4 batched TrafficSources
///                 (docs/WORKLOADS.md), 10 servers, rf=3
///
/// The metric that matters is host events/sec: every figure, chaos seed and
/// CI job is bounded by how many simulated events per second the host can
/// turn over. wall_per_sim_s is the complementary "how long does one
/// simulated second take me" view. For the load-generation scenarios,
/// events/op shows the heap cost per delivered request (the open-loop
/// engine's batching keeps it o(1) even at 10^6 users).
struct ScenarioResult {
  std::string name;
  std::uint64_t events = 0;  ///< sim events executed in the measured window
  double simSeconds = 0;     ///< simulated time covered by the window
  double wallSeconds = 0;    ///< host wall-clock spent on the window
  std::uint64_t ops = 0;     ///< client ops completed in the window (0 when
                             ///< the scenario doesn't track ops)

  double eventsPerSec() const {
    return wallSeconds > 0 ? static_cast<double>(events) / wallSeconds : 0;
  }
  double wallPerSimSecond() const {
    return simSeconds > 0 ? wallSeconds / simSeconds : 0;
  }
  double eventsPerOp() const {
    return ops > 0 ? static_cast<double>(events) / static_cast<double>(ops)
                   : 0;
  }
};

struct Options {
  bool quick = false;  ///< smaller windows / data (CI smoke)
  int repeat = 1;      ///< run each scenario N times, keep the fastest
  /// Run ycsb_b with the SLO tracker live (tenant classes declared, every
  /// op recorded). Used by the <5% overhead gate: compare events/sec of an
  /// off-vs-on pair on the same host (bench_selfperf --slo-overhead).
  bool slo = false;
  /// Per-resource energy ledger charging (docs/ENERGY.md). On by default —
  /// matching production cluster wiring — and switched off for the A/B
  /// overhead gate (bench_selfperf --energy-overhead), which compares
  /// events/sec of an off-vs-on pair on the same host.
  bool energy = true;
  /// Overload-control machinery (docs/OVERLOAD.md): dispatch admission
  /// control + client retry budgets. On by default — the production
  /// defaults — and switched off for the A/B overhead gate
  /// (bench_selfperf --overload-overhead); the gate runs a *non-overloaded*
  /// workload, so the pair isolates the admission bookkeeping cost.
  bool overload = true;
};

ScenarioResult runYcsbB(const Options& opt);
ScenarioResult runRecoveryRf3(const Options& opt);
ScenarioResult runChaosSeed101(const Options& opt);
ScenarioResult runOpenLoop1M(const Options& opt);

/// All four canonical scenarios, in the order above.
std::vector<ScenarioResult> runAll(const Options& opt);

/// Write BENCH_selfperf.json (one JSON object; schema in docs/PERF.md).
bool writeJson(const std::vector<ScenarioResult>& results,
               const Options& opt, const std::string& path);

/// Compare against a recorded baseline (same JSON schema). A scenario fails
/// when its events/sec drops more than `tolerance` (fraction) below the
/// baseline's; scenarios missing from the baseline are ignored. Returns
/// human-readable verdict lines in `messages`.
struct BaselineCheck {
  bool ok = true;
  std::vector<std::string> messages;
};
BaselineCheck checkAgainstBaseline(const std::vector<ScenarioResult>& results,
                                   const std::string& baselinePath,
                                   double tolerance);

}  // namespace rc::fault::selfperf
