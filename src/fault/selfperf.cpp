#include "fault/selfperf.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/cluster.hpp"
#include "fault/fault_injector.hpp"
#include "ycsb/workload.hpp"
#include "ycsb/ycsb_client.hpp"

namespace rc::fault::selfperf {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Measure `body(cluster)` — wall-clock and sim-events — after `setup` has
/// built the scenario. Only the body is timed: bulk loads and wiring are
/// one-off costs that no sweep pays per simulated second.
template <typename Setup, typename Body>
ScenarioResult measure(const std::string& name, Setup setup, Body body) {
  auto cluster = setup();
  core::Cluster& c = *cluster;
  const std::uint64_t events0 = c.sim().eventsExecuted();
  const sim::SimTime sim0 = c.sim().now();
  const auto wall0 = Clock::now();
  body(c);
  ScenarioResult r;
  r.name = name;
  r.events = c.sim().eventsExecuted() - events0;
  r.simSeconds = sim::toSeconds(c.sim().now() - sim0);
  r.wallSeconds = secondsSince(wall0);
  return r;
}

template <typename RunOnce>
ScenarioResult bestOf(int repeat, RunOnce runOnce) {
  ScenarioResult best = runOnce();
  for (int i = 1; i < repeat; ++i) {
    ScenarioResult r = runOnce();
    if (r.eventsPerSec() > best.eventsPerSec()) best = r;
  }
  return best;
}

}  // namespace

ScenarioResult runYcsbB(const Options& opt) {
  const std::uint64_t records = opt.quick ? 20'000 : 100'000;
  const sim::Duration warmup = sim::msec(500);
  const sim::Duration window = opt.quick ? sim::seconds(1) : sim::seconds(3);
  return bestOf(opt.repeat, [&] {
    std::uint64_t ops0 = 0;
    std::uint64_t ops1 = 0;
    ScenarioResult r = measure(
        "ycsb_b",
        [&] {
          core::ClusterParams p;
          p.servers = 10;
          p.clients = 10;
          p.replicationFactor = 3;
          p.seed = 42;
          if (!opt.overload) {
            p.dispatch.admission.enabled = false;
            p.client.retryBudgetPerSec = 0;
          }
          auto c = std::make_unique<core::Cluster>(p);
          if (!opt.energy) c->setEnergyMetering(false);
          ycsb::YcsbClientParams ycp;
          if (opt.slo) {
            // SLO-on variant: declared targets + per-op recording, so the
            // pair (off, on) isolates the tracker's hot-path cost.
            c->sloTracker().declareClass("bench/read",
                                         obs::SloTarget{sim::usec(200),
                                                        sim::usec(500)});
            c->sloTracker().declareClass("bench/update",
                                         obs::SloTarget{sim::usec(600),
                                                        sim::msec(2)});
            ycp.tenant = "bench";
          }
          const auto table = c->createTable("usertable");
          c->bulkLoad(table, records, 1000);
          c->startPduSampling();
          const ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::B(records);
          c->configureYcsb(table, spec, ycp);
          c->startYcsb();
          c->sim().runFor(warmup);
          return c;
        },
        [&](core::Cluster& c) {
          ops0 = c.totalOpsCompleted();
          c.sim().runFor(window);
          ops1 = c.totalOpsCompleted();
          c.stopYcsb();
        });
    r.ops = ops1 - ops0;
    return r;
  });
}

ScenarioResult runRecoveryRf3(const Options& opt) {
  const std::uint64_t records = opt.quick ? 100'000 : 1'000'000;
  return bestOf(opt.repeat, [&] {
    bool recovered = false;
    return measure(
        "recovery_rf3",
        [&] {
          core::ClusterParams p;
          p.servers = 9;
          p.clients = 1;
          p.replicationFactor = 3;
          p.seed = 42;
          auto c = std::make_unique<core::Cluster>(p);
          const auto table = c->createTable("usertable");
          c->bulkLoad(table, records, 1000);
          c->startPduSampling();
          c->coord().onRecoveryFinished =
              [&recovered](const coordinator::RecoveryRecord&) {
                recovered = true;
              };
          core::Cluster* cp = c.get();
          c->sim().schedule(sim::seconds(1), [cp] { cp->crashServer(3); });
          return c;
        },
        [&](core::Cluster& c) {
          // Run until the coordinator reports the recovery finished (plus a
          // short settle for trailing re-replication), capped defensively.
          const sim::SimTime deadline = c.sim().now() + sim::seconds(120);
          while (!recovered && c.sim().now() < deadline) {
            c.sim().runFor(sim::msec(250));
          }
          c.sim().runFor(sim::seconds(1));
        });
  });
}

ScenarioResult runChaosSeed101(const Options& opt) {
  const std::uint64_t records = 8'000;
  const sim::Duration window = opt.quick ? sim::seconds(3) : sim::seconds(6);
  return bestOf(opt.repeat, [&] {
    // Mirrors tests/chaos_test.cpp's standing matrix (minus the RIFL
    // probes): loss + latency + disk + gray-CPU faults around a master
    // crash, then a pure-backup crash mid-recovery.
    FaultPlan plan;
    plan.networkLoss(sim::seconds(1), 0.02, sim::seconds(1));
    plan.latencySpike(sim::msec(1500), sim::usec(200), sim::seconds(1));
    plan.diskDegrade(sim::seconds(1), /*serverIdx=*/4, /*factor=*/2.0,
                     sim::seconds(2));
    plan.cpuThrottle(sim::seconds(1), /*serverIdx=*/5, /*fraction=*/0.34,
                     sim::seconds(2));
    plan.diskStall(sim::msec(2500), /*serverIdx=*/3, sim::msec(300));
    plan.crashServer(sim::seconds(2), /*serverIdx=*/0);
    plan.crashOnRecovery(/*ordinal=*/1, sim::msec(50), /*serverIdx=*/7);

    std::unique_ptr<FaultInjector> injector;
    ScenarioResult r = measure(
        "chaos_101",
        [&] {
          core::ClusterParams p;
          p.servers = 8;
          p.clients = 2;
          p.replicationFactor = 3;
          p.seed = 101;
          auto c = std::make_unique<core::Cluster>(p);
          // Servers 6 and 7 stay tablet-less pure backups so the
          // mid-recovery crash attacks durability, not availability.
          const auto table = c->createTable("chaos", /*serverSpan=*/6);
          c->bulkLoad(table, records, 256);
          ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::A(records);
          spec.valueBytes = 256;
          c->configureYcsb(table, spec, ycsb::YcsbClientParams{});
          c->startYcsb();
          injector = std::make_unique<FaultInjector>(
              *c, plan, c->sim().rng().fork(0xFA171));
          injector->arm();
          return c;
        },
        [&](core::Cluster& c) {
          c.sim().runFor(window);
          c.stopYcsb();
          c.sim().runFor(sim::seconds(2));  // trailing RPCs + repair settle
        });
    injector.reset();
    return r;
  });
}

ScenarioResult runOpenLoop1M(const Options& opt) {
  // 10^6 modeled users aggregated into 4 TrafficSources (250k users each)
  // at 0.12 op/user/s — 120 Kop/s offered, comparable to ycsb_b's
  // closed-loop delivered rate, so events/op is an apples-to-apples cost
  // comparison between the two load engines (docs/WORKLOADS.md).
  const std::uint64_t records = opt.quick ? 20'000 : 100'000;
  const sim::Duration warmup = sim::msec(500);
  const sim::Duration window = opt.quick ? sim::seconds(1) : sim::seconds(3);
  return bestOf(opt.repeat, [&] {
    std::uint64_t ops0 = 0;
    std::uint64_t ops1 = 0;
    ScenarioResult r = measure(
        "openloop_1m",
        [&] {
          core::ClusterParams p;
          p.servers = 10;
          p.clients = 4;
          p.replicationFactor = 3;
          p.seed = 42;
          if (!opt.overload) {
            p.dispatch.admission.enabled = false;
            p.client.retryBudgetPerSec = 0;
          }
          auto c = std::make_unique<core::Cluster>(p);
          if (!opt.energy) c->setEnergyMetering(false);
          const auto table = c->createTable("usertable");
          c->bulkLoad(table, records, 1000);
          c->startPduSampling();
          const ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::B(records);
          std::vector<load::TrafficSourceParams> sources(4);
          for (auto& s : sources) {
            s.shape.users = 250'000;
            s.shape.opsPerUserPerSec = 0.12;
          }
          c->configureOpenLoop(table, spec, sources);
          c->startTraffic();
          c->sim().runFor(warmup);
          return c;
        },
        [&](core::Cluster& c) {
          ops0 = c.totalOpsCompleted();
          c.sim().runFor(window);
          ops1 = c.totalOpsCompleted();
          c.stopTraffic();
        });
    r.ops = ops1 - ops0;
    return r;
  });
}

std::vector<ScenarioResult> runAll(const Options& opt) {
  return {runYcsbB(opt), runRecoveryRf3(opt), runChaosSeed101(opt),
          runOpenLoop1M(opt)};
}

bool writeJson(const std::vector<ScenarioResult>& results,
               const Options& opt, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  os << "{\n  \"bench\": \"selfperf\",\n  \"schema\": 1,\n"
     << "  \"quick\": " << (opt.quick ? "true" : "false") << ",\n"
     << "  \"slo\": " << (opt.slo ? "true" : "false") << ",\n"
     << "  \"energy\": " << (opt.energy ? "true" : "false") << ",\n"
     << "  \"overload\": " << (opt.overload ? "true" : "false") << ",\n"
     << "  \"repeat\": " << opt.repeat << ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    char line[512];
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"events\": %llu, "
                  "\"sim_s\": %.6f, \"wall_s\": %.6f, "
                  "\"events_per_sec\": %.1f, \"wall_per_sim_s\": %.6f, "
                  "\"ops\": %llu, \"events_per_op\": %.2f}%s\n",
                  r.name.c_str(), static_cast<unsigned long long>(r.events),
                  r.simSeconds, r.wallSeconds, r.eventsPerSec(),
                  r.wallPerSimSecond(),
                  static_cast<unsigned long long>(r.ops), r.eventsPerOp(),
                  i + 1 < results.size() ? "," : "");
    os << line;
  }
  os << "  ]\n}\n";
  return static_cast<bool>(os);
}

BaselineCheck checkAgainstBaseline(const std::vector<ScenarioResult>& results,
                                   const std::string& baselinePath,
                                   double tolerance) {
  BaselineCheck out;
  std::ifstream is(baselinePath);
  if (!is) {
    out.ok = false;
    out.messages.push_back("cannot read baseline: " + baselinePath);
    return out;
  }
  std::stringstream ss;
  ss << is.rdbuf();
  const std::string text = ss.str();

  for (const ScenarioResult& r : results) {
    const std::string namePat = "\"name\": \"" + r.name + "\"";
    const auto at = text.find(namePat);
    if (at == std::string::npos) {
      out.messages.push_back(r.name + ": not in baseline, skipped");
      continue;
    }
    const std::string keyPat = "\"events_per_sec\": ";
    const auto kat = text.find(keyPat, at);
    if (kat == std::string::npos) {
      out.messages.push_back(r.name + ": baseline has no events_per_sec");
      continue;
    }
    const double base = std::strtod(text.c_str() + kat + keyPat.size(),
                                    nullptr);
    const double cur = r.eventsPerSec();
    const double floor = base * (1.0 - tolerance);
    char msg[256];
    std::snprintf(msg, sizeof(msg),
                  "%s: %.0f ev/s vs baseline %.0f (floor %.0f) -> %s",
                  r.name.c_str(), cur, base, floor,
                  cur >= floor ? "ok" : "REGRESSION");
    out.messages.push_back(msg);
    if (cur < floor) out.ok = false;
  }
  return out;
}

}  // namespace rc::fault::selfperf
