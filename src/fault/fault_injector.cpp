#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/cluster.hpp"

namespace rc::fault {

const char* faultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kCrashServer:
      return "crash_server";
    case FaultKind::kNetworkLoss:
      return "network_loss";
    case FaultKind::kNetworkDelay:
      return "network_delay";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kHealNetwork:
      return "heal_network";
    case FaultKind::kDiskStall:
      return "disk_stall";
    case FaultKind::kDiskDegrade:
      return "disk_degrade";
    case FaultKind::kDiskRestore:
      return "disk_restore";
    case FaultKind::kDropFrames:
      return "drop_frames";
    case FaultKind::kCorruptFrames:
      return "corrupt_frames";
    case FaultKind::kCpuThrottle:
      return "cpu_throttle";
    case FaultKind::kCpuRestore:
      return "cpu_restore";
    case FaultKind::kReplyDrop:
      return "reply_drop";
    case FaultKind::kClientStall:
      return "client_stall";
    case FaultKind::kCrashBeforeReply:
      return "crash_before_reply";
    case FaultKind::kLoadSurge:
      return "load_surge";
  }
  return "unknown";
}

namespace {

bool inSet(const std::vector<node::NodeId>& set, node::NodeId n) {
  if (set.empty()) return true;  // wildcard
  return std::find(set.begin(), set.end(), n) != set.end();
}

}  // namespace

FaultInjector::FaultInjector(core::Cluster& cluster, FaultPlan plan,
                             sim::Rng rng)
    : cluster_(cluster), plan_(std::move(plan)), rng_(rng) {}

FaultInjector::~FaultInjector() {
  if (filterInstalled_) cluster_.network().setFaultFilter({});
}

void FaultInjector::syncFilter() {
  const bool want = armed_ && !rules_.empty();
  if (want == filterInstalled_) return;
  filterInstalled_ = want;
  if (!want) {
    cluster_.network().setFaultFilter({});
    return;
  }
  // One choke point for every network fault: the filter consults the live
  // rule list on each message. The rng_ draw order is a deterministic
  // function of the message sequence, which is itself deterministic.
  cluster_.network().setFaultFilter(
      [this](node::NodeId from, node::NodeId to,
             std::uint64_t /*bytes*/) -> net::Network::FaultVerdict {
        net::Network::FaultVerdict v;
        for (const LinkRule& r : rules_) {
          const bool forward = inSet(r.a, from) && inSet(r.b, to);
          const bool match =
              r.directional
                  ? forward
                  : forward || (inSet(r.a, to) && inSet(r.b, from));
          if (!match) continue;
          if (r.loss > 0 && rng_.bernoulli(r.loss)) v.drop = true;
          v.extraLatency += r.extra;
        }
        return v;
      });
}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;

  // Chain (don't clobber) any hook a harness already installed.
  auto prev = cluster_.coord().onRecoveryStarted;
  cluster_.coord().onRecoveryStarted =
      [this, prev = std::move(prev)](std::uint64_t recoveryId,
                                     server::ServerId crashed) {
        if (prev) prev(recoveryId, crashed);
        const int ordinal = ++recoveriesSeen_;
        for (const FaultEvent& ev : plan_.events) {
          if (ev.trigger.when != FaultTrigger::When::kOnRecoveryStart ||
              ev.trigger.recoveryOrdinal != ordinal) {
            continue;
          }
          const FaultEvent* evp = &ev;
          if (ev.trigger.delay > 0) {
            cluster_.sim().schedule(ev.trigger.delay,
                                    [this, evp] { fire(*evp); });
          } else {
            fire(*evp);
          }
        }
      };

  for (const FaultEvent& ev : plan_.events) {
    if (ev.trigger.when == FaultTrigger::When::kAtTime) scheduleEvent(ev);
  }
}

void FaultInjector::scheduleEvent(const FaultEvent& ev) {
  // plan_.events is immutable once armed, so the pointer stays valid.
  const FaultEvent* evp = &ev;
  cluster_.sim().scheduleAt(ev.trigger.at, [this, evp] { fire(*evp); });
}

void FaultInjector::record(const FaultEvent& ev) {
  injections_.push_back(
      Injection{cluster_.sim().now(), ev.kind, ev.server, ev.tag});
}

void FaultInjector::journalEvent(const FaultEvent& ev, const char* prefix) {
  const int node = ev.server >= 0 ? cluster_.serverNodeId(ev.server) : 0;
  cluster_.journal().event(std::string(prefix) + faultKindName(ev.kind),
                           node);
}

void FaultInjector::fire(const FaultEvent& ev) {
  // Any injected fault arms the flight recorder: the fine-grained stamp
  // ring around the fault gets dumped at export (docs/SLO.md).
  cluster_.flightRecorder().trigger(
      cluster_.sim().now(), std::string("fault:") + faultKindName(ev.kind));
  switch (ev.kind) {
    case FaultKind::kCrashServer:
      fireCrash(ev);
      return;
    case FaultKind::kNetworkLoss:
    case FaultKind::kNetworkDelay:
    case FaultKind::kPartition:
    case FaultKind::kReplyDrop:
      fireNetwork(ev);
      return;
    case FaultKind::kClientStall:
      fireClientStall(ev);
      return;
    case FaultKind::kCrashBeforeReply:
      fireCrashBeforeReply(ev);
      return;
    case FaultKind::kHealNetwork:
      record(ev);
      healTag(ev.tag);
      return;
    case FaultKind::kDiskStall:
    case FaultKind::kDiskDegrade:
    case FaultKind::kDiskRestore:
      fireDisk(ev);
      return;
    case FaultKind::kDropFrames:
    case FaultKind::kCorruptFrames:
      fireFrames(ev);
      return;
    case FaultKind::kCpuThrottle:
    case FaultKind::kCpuRestore:
      fireCpu(ev);
      return;
    case FaultKind::kLoadSurge:
      fireLoadSurge(ev);
      return;
  }
}

void FaultInjector::fireCrash(const FaultEvent& ev) {
  const int idx = ev.server;
  if (idx < 0 || idx >= cluster_.serverCount()) return;
  if (!cluster_.serverAlive(idx)) return;  // idempotent
  record(ev);
  journalEvent(ev, "fault_");
  ++crashes_;
  cluster_.crashServer(idx);
}

void FaultInjector::fireNetwork(const FaultEvent& ev) {
  record(ev);
  journalEvent(ev, "fault_");
  LinkRule r;
  r.id = nextRuleId_++;
  r.a = resolveSet(ev.setA, ev.server);
  r.b = resolveSet(ev.setB, -1);
  r.tag = ev.tag;
  switch (ev.kind) {
    case FaultKind::kNetworkLoss:
      r.loss = std::clamp(ev.magnitude, 0.0, 1.0);
      break;
    case FaultKind::kNetworkDelay:
      r.extra = ev.extraLatency;
      break;
    case FaultKind::kPartition:
      r.loss = 1.0;
      break;
    case FaultKind::kReplyDrop: {
      // Directional server -> clients: requests, replication and recovery
      // traffic still flow; only client-bound replies are lost.
      r.loss = std::clamp(ev.magnitude, 0.0, 1.0);
      r.directional = true;
      r.b.clear();
      for (int i = 0; i < cluster_.clientCount(); ++i) {
        r.b.push_back(cluster_.clientNodeId(i));
      }
      break;
    }
    default:
      return;
  }
  const std::uint64_t ruleId = r.id;
  rules_.push_back(std::move(r));
  syncFilter();
  if (ev.duration > 0) {
    const FaultEvent* evp = &ev;
    cluster_.sim().schedule(ev.duration, [this, ruleId, evp] {
      removeRule(ruleId);
      journalEvent(*evp, "heal_");
    });
  }
}

void FaultInjector::healTag(const std::string& tag) {
  rules_.erase(std::remove_if(rules_.begin(), rules_.end(),
                              [&tag](const LinkRule& r) {
                                return r.tag == tag;
                              }),
               rules_.end());
  syncFilter();
}

void FaultInjector::removeRule(std::uint64_t ruleId) {
  rules_.erase(std::remove_if(rules_.begin(), rules_.end(),
                              [ruleId](const LinkRule& r) {
                                return r.id == ruleId;
                              }),
               rules_.end());
  syncFilter();
}

void FaultInjector::fireDisk(const FaultEvent& ev) {
  const int idx = ev.server;
  if (idx < 0 || idx >= cluster_.serverCount()) return;
  if (!cluster_.serverAlive(idx)) return;
  record(ev);
  journalEvent(ev, "fault_");
  node::Disk& disk = cluster_.server(idx).node->disk();
  switch (ev.kind) {
    case FaultKind::kDiskStall:
      disk.stallFor(ev.duration);
      return;
    case FaultKind::kDiskDegrade: {
      disk.setSlowdownFactor(std::max(1.0, ev.magnitude));
      if (ev.duration > 0) {
        const FaultEvent* evp = &ev;
        cluster_.sim().schedule(ev.duration, [this, idx, evp] {
          if (!cluster_.serverAlive(idx)) return;
          cluster_.server(idx).node->disk().setSlowdownFactor(1.0);
          journalEvent(*evp, "heal_");
        });
      }
      return;
    }
    case FaultKind::kDiskRestore:
      disk.setSlowdownFactor(1.0);
      return;
    default:
      return;
  }
}

void FaultInjector::fireFrames(const FaultEvent& ev) {
  const int idx = ev.server;
  if (idx < 0 || idx >= cluster_.serverCount()) return;
  if (!cluster_.serverAlive(idx)) return;
  record(ev);
  journalEvent(ev, "fault_");
  auto& backup = *cluster_.server(idx).backup;
  const int count = std::max(0, static_cast<int>(ev.magnitude));
  if (ev.kind == FaultKind::kDropFrames) {
    backup.injectFrameLoss(count, rng_);
  } else {
    backup.injectFrameCorruption(count, rng_);
  }
}

void FaultInjector::fireCpu(const FaultEvent& ev) {
  const int idx = ev.server;
  if (idx < 0 || idx >= cluster_.serverCount()) return;
  if (!cluster_.serverAlive(idx)) return;
  if (ev.kind == FaultKind::kCpuRestore) {
    record(ev);
    journalEvent(ev, "fault_");
    restoreCpu(idx);
    return;
  }
  // Gray failure: hold workers so only `magnitude` of capacity remains.
  // Granularity is 1/workerThreads; at least one worker always survives
  // (a full freeze is a crash, not a gray failure).
  node::CpuScheduler& cpu = cluster_.server(idx).node->cpu();
  const int total = cpu.workerThreads();
  const double frac = std::clamp(ev.magnitude, 0.0, 1.0);
  const int keep =
      std::max(1, static_cast<int>(std::lround(frac * total)));
  const int steal = total - keep;
  if (steal <= 0) return;
  record(ev);
  journalEvent(ev, "fault_");
  throttles_.push_back(Throttle{idx, {}, cpu.epoch()});
  const std::size_t slot = throttles_.size() - 1;
  for (int i = 0; i < steal; ++i) {
    cpu.acquireWorker([this, slot, idx](int workerId) {
      Throttle& t = throttles_[slot];
      // If the server crashed while we queued for a worker, drop the grant.
      if (!cluster_.serverAlive(idx) ||
          cluster_.server(idx).node->cpu().epoch() != t.epoch) {
        return;
      }
      t.heldWorkers.push_back(workerId);
    });
  }
  if (ev.duration > 0) {
    const FaultEvent* evp = &ev;
    cluster_.sim().schedule(ev.duration, [this, idx, evp] {
      restoreCpu(idx);
      if (cluster_.serverAlive(idx)) journalEvent(*evp, "heal_");
    });
  }
}

void FaultInjector::fireClientStall(const FaultEvent& ev) {
  const int idx = ev.client;
  if (idx < 0 || idx >= cluster_.clientCount()) return;
  record(ev);
  cluster_.journal().event("fault_client_stall", cluster_.clientNodeId(idx));
  cluster_.clientHost(idx).rc->stallFor(ev.duration);
}

void FaultInjector::fireLoadSurge(const FaultEvent& ev) {
  if (ev.magnitude <= 1.0) return;
  record(ev);
  // client == -1 surges every client: the flash-crowd scenario.
  const int first = ev.client >= 0 ? ev.client : 0;
  const int last = ev.client >= 0 ? ev.client : cluster_.clientCount() - 1;
  for (int idx = first; idx <= last && idx < cluster_.clientCount(); ++idx) {
    auto& host = cluster_.clientHost(idx);
    if (!host.ycsb && !host.traffic) continue;
    cluster_.journal().event("fault_load_surge", cluster_.clientNodeId(idx));
    if (host.ycsb) host.ycsb->applyLoadSurge(ev.magnitude, ev.duration);
    // Open-loop sources surge as a superposed flash crowd: the offered rate
    // itself rises, not just the think-time of a closed population.
    if (host.traffic) host.traffic->applyLoadSurge(ev.magnitude, ev.duration);
  }
}

void FaultInjector::fireCrashBeforeReply(const FaultEvent& ev) {
  const int idx = ev.server;
  if (idx < 0 || idx >= cluster_.serverCount()) return;
  if (!cluster_.serverAlive(idx)) return;
  // Arm now; the ledger line and the crash happen when the master's next
  // write reaches its reply point (the hook runs inside the reply path, so
  // the crash itself goes through a fresh event to avoid re-entrancy).
  const FaultEvent* evp = &ev;
  cluster_.server(idx).master->armCrashBeforeReply([this, idx, evp] {
    record(*evp);
    journalEvent(*evp, "fault_");
    ++crashes_;
    cluster_.sim().schedule(0, [this, idx] { cluster_.crashServer(idx); });
  });
}

void FaultInjector::restoreCpu(int serverIdx) {
  for (Throttle& t : throttles_) {
    if (t.serverIdx != serverIdx) continue;
    if (cluster_.serverAlive(serverIdx) &&
        cluster_.server(serverIdx).node->cpu().epoch() == t.epoch) {
      node::CpuScheduler& cpu = cluster_.server(serverIdx).node->cpu();
      for (const int id : t.heldWorkers) cpu.releaseWorker(id);
    }
    t.heldWorkers.clear();
    t.serverIdx = -1;  // spent
  }
}

std::vector<node::NodeId> FaultInjector::resolveSet(
    const std::vector<int>& set, int fallbackServer) const {
  std::vector<node::NodeId> out;
  if (set.empty()) {
    if (fallbackServer >= 0) out.push_back(cluster_.serverNodeId(fallbackServer));
    return out;  // empty = wildcard when no fallback either
  }
  out.reserve(set.size());
  for (const int idx : set) out.push_back(cluster_.serverNodeId(idx));
  return out;
}

}  // namespace rc::fault
