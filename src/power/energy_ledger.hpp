#pragma once

#include <array>
#include <cstdint>

#include "power/energy_model.hpp"

namespace rc::power {

/// Per-node energy ledger: dynamic (event-driven) joules accumulated into
/// (component, op-class, tenant) cells.
///
/// Charge sites — worker-occupancy release, disk chunk completion, NIC
/// serialisation, DRAM log appends — call charge() with the EnergyTag the
/// operation carried; the static floors and the integral-vs-attributed
/// remainders (polling core, spin-before-sleep) are added at export time by
/// the node, never stored here. Charging is pure accounting: it reads
/// nothing back into the simulation, so runs are bit-identical with the
/// meter on or off (docs/ENERGY.md).
///
/// Tenant slots beyond the fixed capacity collapse into the last slot, so
/// the ledger stays a flat constant-size array (no per-charge allocation).
class EnergyMeter {
 public:
  /// Slot 0 = untenanted; slots 1..15 = SLO class id + 1; 16 = overflow.
  static constexpr std::size_t kTenantSlots = 17;

  void setEnabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void charge(Component c, EnergyTag tag, double joules) {
    if (!enabled_ || joules <= 0) return;
    const std::size_t ci = static_cast<std::size_t>(c);
    const std::size_t slot = tenantSlot(tag.tenant);
    cells_[cellIndex(ci, static_cast<std::size_t>(tag.cls), slot)] += joules;
    componentTotals_[ci] += joules;
    tenantTotals_[slot] += joules;
  }

  /// Dynamic joules charged to a component (all classes/tenants).
  double componentJoules(Component c) const {
    return componentTotals_[static_cast<std::size_t>(c)];
  }

  double cellJoules(Component c, OpClass o, std::uint16_t tenant) const {
    return cells_[cellIndex(static_cast<std::size_t>(c),
                            static_cast<std::size_t>(o),
                            tenantSlot(tenant))];
  }

  /// Dynamic joules charged against a tenant slot (all components).
  double tenantJoules(std::uint16_t tenant) const {
    return tenantTotals_[tenantSlot(tenant)];
  }

  std::array<double, kComponentCount> componentTotals() const {
    return componentTotals_;
  }

  /// Visit every non-zero cell in deterministic (component, class, tenant)
  /// order: fn(Component, OpClass, tenantSlot, joules).
  template <typename Fn>
  void forEachCell(Fn fn) const {
    for (std::size_t c = 0; c < kComponentCount; ++c) {
      for (std::size_t o = 0; o < kOpClassCount; ++o) {
        for (std::size_t t = 0; t < kTenantSlots; ++t) {
          const double j = cells_[cellIndex(c, o, t)];
          if (j > 0) {
            fn(static_cast<Component>(c), static_cast<OpClass>(o),
               static_cast<std::uint16_t>(t), j);
          }
        }
      }
    }
  }

  static std::size_t tenantSlot(std::uint16_t tenant) {
    return tenant < kTenantSlots ? tenant : kTenantSlots - 1;
  }

 private:
  static constexpr std::size_t cellIndex(std::size_t c, std::size_t o,
                                         std::size_t t) {
    return (c * kOpClassCount + o) * kTenantSlots + t;
  }

  bool enabled_ = true;
  std::array<double, kComponentCount * kOpClassCount * kTenantSlots> cells_{};
  std::array<double, kComponentCount> componentTotals_{};
  std::array<double, kTenantSlots> tenantTotals_{};
};

}  // namespace rc::power
