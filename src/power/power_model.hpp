#pragma once

#include <algorithm>

namespace rc::power {

/// Linear CPU-utilisation -> wall-power model for one server node.
///
/// Stands in for the Grid'5000 per-node PDU wattmeters. The paper's own data
/// shows node power tracking CPU usage almost linearly; we fit the two
/// endpoints the paper reports for the Nancy nodes (Xeon X3440):
///   ~50 % CPU -> 92 W   (Fig. 1b, 1 server / 1 client, Table I: 49.8 %)
///   ~98.5 % CPU -> 122 W (Fig. 1b, 1 server / 10+ clients, Table I: 98.4 %)
/// giving  P(u) = 60.5 W + 63.4 W * u.
struct PowerModel {
  double idleWatts = 60.5;     ///< machine powered on, 0 % CPU
  double dynamicWatts = 63.4;  ///< added at 100 % CPU

  /// Instantaneous power at utilisation u in [0,1].
  double watts(double utilisation) const {
    const double u = std::clamp(utilisation, 0.0, 1.0);
    return idleWatts + dynamicWatts * u;
  }

  /// Energy in joules for a period of `seconds` at average utilisation u.
  double joules(double utilisation, double seconds) const {
    return watts(utilisation) * seconds;
  }
};

/// Energy-efficiency metrics as the paper defines them.
namespace efficiency {

/// Requests served per joule across the whole cluster (paper Fig. 2).
inline double opsPerJoule(double throughputOpsPerSec, double clusterWatts) {
  return clusterWatts > 0 ? throughputOpsPerSec / clusterWatts : 0;
}

/// The paper's Fig. 8 divides *aggregate* throughput by *per-node* power
/// (its RF=1 points only make sense that way: 237 Kop/s / 103 W = 2.3 Kop/J).
/// We reproduce that definition and flag it in EXPERIMENTS.md.
inline double opsPerJoulePerNode(double throughputOpsPerSec,
                                 double perNodeWatts) {
  return perNodeWatts > 0 ? throughputOpsPerSec / perNodeWatts : 0;
}

}  // namespace efficiency
}  // namespace rc::power
