#include "power/pdu.hpp"

#include <algorithm>
#include <utility>

namespace rc::power {

PduSampler::PduSampler(sim::Simulation& sim, EnergyFn energy,
                       sim::Duration interval)
    : sim_(sim),
      energy_(std::move(energy)),
      interval_(interval),
      start_(sim.now()),
      lastSample_(sim.now()) {
  task_ = std::make_unique<sim::PeriodicTask>(
      sim, interval, [this](sim::SimTime now) { takeSample(now); });
}

void PduSampler::stop() {
  if (stopped_) return;
  stopped_ = true;
  if (task_) task_->cancel();
  takeSample(sim_.now());  // final (possibly fractional) window
}

void PduSampler::takeSample(sim::SimTime now) {
  if (now <= lastSample_) return;
  const double joules = energy_(lastSample_, now);
  trace_.add(now, joules / sim::toSeconds(now - lastSample_));
  totalJoules_ += joules;
  lastSample_ = now;
}

double PduSampler::sampledEnergyJoules(sim::SimTime from,
                                       sim::SimTime to) const {
  if (to <= from) return 0;
  double joules = 0;
  sim::SimTime prev = start_;
  for (const auto& p : trace_.points()) {
    // The sample at time t covers (prev, t]; clip against [from, to).
    const sim::SimTime lo = std::max(prev, from);
    const sim::SimTime hi = std::min(p.time, to);
    if (hi > lo) joules += p.value * sim::toSeconds(hi - lo);
    prev = p.time;
  }
  return joules;
}

}  // namespace rc::power
