#include "power/pdu.hpp"

#include <utility>

namespace rc::power {

PduSampler::PduSampler(sim::Simulation& sim, PowerModel model,
                       UtilisationFn utilisation, sim::Duration interval)
    : sim_(sim),
      model_(model),
      utilisation_(std::move(utilisation)),
      interval_(interval),
      lastSample_(sim.now()) {
  task_ = std::make_unique<sim::PeriodicTask>(
      sim, interval, [this](sim::SimTime now) { takeSample(now); });
}

void PduSampler::stop() {
  if (task_) task_->cancel();
}

void PduSampler::takeSample(sim::SimTime now) {
  const double u = utilisation_(lastSample_, now);
  trace_.add(now, model_.watts(u));
  lastSample_ = now;
}

double PduSampler::sampledEnergyJoules(sim::SimTime from,
                                       sim::SimTime to) const {
  if (to <= from) return 0;
  double joules = 0;
  for (const auto& p : trace_.points()) {
    // A sample at time t covers [t - interval, t).
    const sim::SimTime cover = p.time - interval_;
    if (cover >= from && p.time <= to) {
      joules += p.value * sim::toSeconds(interval_);
    }
  }
  return joules;
}

}  // namespace rc::power
