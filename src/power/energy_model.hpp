#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

#include "power/power_model.hpp"

namespace rc::power {

/// Hardware resources a joule can be attributed to. kPlatform absorbs
/// everything outside the modelled components (fans, VRM losses, chipset,
/// and the suspended-machine draw).
enum class Component : std::uint8_t {
  kCpu,
  kDram,
  kNic,
  kDisk,
  kPlatform,
};

constexpr std::size_t kComponentCount = 5;

inline const char* componentName(Component c) {
  switch (c) {
    case Component::kCpu: return "cpu";
    case Component::kDram: return "dram";
    case Component::kNic: return "nic";
    case Component::kDisk: return "disk";
    case Component::kPlatform: return "platform";
  }
  return "unknown";
}

/// Work classes a joule can be charged against. kStatic is reserved for
/// always-on baseline draw; kUnattributed collects dynamic energy no charge
/// site claimed (polling core, worker spin-before-sleep, wakeup latency).
enum class OpClass : std::uint8_t {
  kStatic,
  kRead,
  kUpdate,
  kReplication,
  kRecovery,
  kMigration,
  kCleaner,
  kControl,
  kUnattributed,
};

constexpr std::size_t kOpClassCount = 9;

inline const char* opClassName(OpClass c) {
  switch (c) {
    case OpClass::kStatic: return "static";
    case OpClass::kRead: return "read";
    case OpClass::kUpdate: return "update";
    case OpClass::kReplication: return "replication";
    case OpClass::kRecovery: return "recovery";
    case OpClass::kMigration: return "migration";
    case OpClass::kCleaner: return "cleaner";
    case OpClass::kControl: return "control";
    case OpClass::kUnattributed: return "unattributed";
  }
  return "unknown";
}

/// Attribution label carried by CPU slices, disk IOs and network frames.
/// `tenant` is the SLO class id + 1 (0 = untenanted), so ledger tenant
/// slots map 1:1 onto the classes declared on the SloTracker.
struct EnergyTag {
  OpClass cls = OpClass::kUnattributed;
  std::uint16_t tenant = 0;
};

/// Composable per-resource power model for one server node.
///
/// Decomposes the whole-node linear fit P(u) = 60.5 + 63.4u (PowerModel)
/// into per-component static floors plus per-event dynamic energies, in the
/// spirit of Mikrou et al.'s per-resource KV-store power characterization:
///
///   static:  cpu 14.0 + dram 16.5 + nic 4.0 + disk(spindle) 8.0 +
///            platform 18.0  =  60.5 W  (the fitted idle intercept)
///   cpu:     15.85 W per busy core — 63.4 W / 4 cores, so the CPU term
///            reproduces the fitted slope *exactly* at any utilisation
///   nic:     0.8 nJ/byte + 60 nJ/packet serialisation energy
///   dram:    0.06 nJ/byte activate/copy energy on log appends and reads
///   disk:    +3.5 W while the spindle is seeking/transferring
///
/// The event energies are small against the CPU term at the paper's
/// operating points (< 0.5 W at the 372 Kop/s single-server peak), which is
/// what keeps the summed curve within the 2 % calibration gate of the
/// fitted node curve (tests/power_test.cpp, docs/ENERGY.md).
struct NodePowerModel {
  double cpuIdleWatts = 14.0;
  double cpuActiveWattsPerCore = 15.85;
  /// Deep C-state / low-power floor for a consolidated (suspended-tier)
  /// core — the knob behind Lang-style energy-proportional consolidation;
  /// unused until the autoscaler powers cores down individually.
  double cpuLowPowerWatts = 3.5;

  double dramStaticWatts = 16.5;
  double dramNanojoulesPerByte = 0.06;

  double nicIdleWatts = 4.0;
  double nicNanojoulesPerByte = 0.8;
  double nicNanojoulesPerPacket = 60.0;

  double diskSpindleWatts = 8.0;
  double diskActiveWatts = 3.5;

  double platformWatts = 18.0;

  /// Always-on draw of a powered, idle machine (the fitted intercept).
  double staticWatts() const {
    return cpuIdleWatts + dramStaticWatts + nicIdleWatts + diskSpindleWatts +
           platformWatts;
  }

  double staticComponentWatts(Component c) const {
    switch (c) {
      case Component::kCpu: return cpuIdleWatts;
      case Component::kDram: return dramStaticWatts;
      case Component::kNic: return nicIdleWatts;
      case Component::kDisk: return diskSpindleWatts;
      case Component::kPlatform: return platformWatts;
    }
    return 0;
  }

  /// Instantaneous whole-node watts at CPU utilisation u (the component
  /// sum, excluding event-driven nic/dram/disk dynamics) — the calibration
  /// surface checked against PowerModel::watts.
  double watts(double utilisation, int cores = 4) const {
    const double u = std::clamp(utilisation, 0.0, 1.0);
    return staticWatts() + cpuActiveWattsPerCore * u * cores;
  }

  double nicJoules(std::uint64_t bytes) const {
    return (nicNanojoulesPerByte * static_cast<double>(bytes) +
            nicNanojoulesPerPacket) * 1e-9;
  }

  double dramJoules(std::uint64_t bytes) const {
    return dramNanojoulesPerByte * static_cast<double>(bytes) * 1e-9;
  }
};

}  // namespace rc::power
