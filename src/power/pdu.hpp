#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "power/power_model.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace rc::power {

/// Per-node power distribution unit, sampled once per simulated second —
/// exactly how the paper's measurement scripts polled the physical PDUs
/// over SNMP.
///
/// The sampler asks the node for the joules it consumed over the elapsed
/// sampling interval (via the provided callback) and appends the mean watts
/// to a TimeSeries. Because every sample is an energy *delta* over a
/// contiguous window — including the final fractional window taken by
/// stop() — the sum of samples weighted by their coverage reproduces the
/// node's continuous energy integral exactly, which is the reconciliation
/// invariant `rcdiag energy check` gates on (docs/ENERGY.md).
class PduSampler {
 public:
  /// `energy(from, to)` must return the joules the node consumed over
  /// [from, to). Called once per sample with contiguous windows.
  using EnergyFn = std::function<double(sim::SimTime, sim::SimTime)>;

  PduSampler(sim::Simulation& sim, EnergyFn energy,
             sim::Duration interval = sim::seconds(1));

  /// Stop sampling (e.g. at the end of the measured window), taking one
  /// final fractional sample covering [lastSample, now). Idempotent:
  /// repeated calls are no-ops.
  void stop();
  bool stopped() const { return stopped_; }

  const sim::TimeSeries& trace() const { return trace_; }

  /// Mean sampled watts over the whole trace.
  double meanWatts() const { return trace_.meanValue(); }

  /// Mean sampled watts within [from, to).
  double meanWattsInWindow(sim::SimTime from, sim::SimTime to) const {
    return trace_.meanInWindow(from, to);
  }

  /// Energy in joules over [from, to) computed exactly as the paper does:
  /// each power sample multiplied by the window it covers, summed. Windows
  /// are the actual inter-sample gaps (the final stop() sample may cover a
  /// fraction of the nominal interval), clipped against [from, to), so a
  /// full-trace query equals totalSampledJoules() and the continuous
  /// integral the node computed.
  double sampledEnergyJoules(sim::SimTime from, sim::SimTime to) const;

  /// Sum of every energy delta sampled so far (the whole-trace integral).
  double totalSampledJoules() const { return totalJoules_; }

  /// Time the first sample window opened at (sampler construction).
  sim::SimTime startTime() const { return start_; }

  sim::Duration interval() const { return interval_; }

 private:
  void takeSample(sim::SimTime now);

  sim::Simulation& sim_;
  EnergyFn energy_;
  sim::Duration interval_;
  sim::TimeSeries trace_;
  sim::SimTime start_;
  sim::SimTime lastSample_;
  double totalJoules_ = 0;
  bool stopped_ = false;
  std::unique_ptr<sim::PeriodicTask> task_;
};

}  // namespace rc::power
