#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "power/power_model.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace rc::power {

/// Per-node power distribution unit, sampled once per simulated second —
/// exactly how the paper's measurement scripts polled the physical PDUs
/// over SNMP.
///
/// The sampler reads the node's average CPU utilisation over the elapsed
/// sampling interval (via the provided callback), converts it to watts with
/// the PowerModel, and appends to a TimeSeries. Total energy is also
/// integrated *continuously* (not from the 1 Hz samples) so short spikes are
/// not lost; the paper's sum-of-samples approach converges to the same value.
class PduSampler {
 public:
  /// `utilisation(from, to)` must return mean CPU utilisation in [0,1] of
  /// the node over [from, to).
  using UtilisationFn = std::function<double(sim::SimTime, sim::SimTime)>;

  PduSampler(sim::Simulation& sim, PowerModel model, UtilisationFn utilisation,
             sim::Duration interval = sim::seconds(1));

  /// Stop sampling (e.g. at the end of the measured window).
  void stop();

  const sim::TimeSeries& trace() const { return trace_; }
  const PowerModel& model() const { return model_; }

  /// Mean sampled watts over the whole trace.
  double meanWatts() const { return trace_.meanValue(); }

  /// Mean sampled watts within [from, to).
  double meanWattsInWindow(sim::SimTime from, sim::SimTime to) const {
    return trace_.meanInWindow(from, to);
  }

  /// Energy in joules over [from, to) computed exactly as the paper does:
  /// each 1 Hz power sample multiplied by its sampling interval, summed.
  /// (Node::energyJoulesSince gives the continuous-integral equivalent.)
  double sampledEnergyJoules(sim::SimTime from, sim::SimTime to) const;

  sim::Duration interval() const { return interval_; }

 private:
  void takeSample(sim::SimTime now);

  sim::Simulation& sim_;
  PowerModel model_;
  UtilisationFn utilisation_;
  sim::Duration interval_;
  sim::TimeSeries trace_;
  sim::SimTime lastSample_;
  std::unique_ptr<sim::PeriodicTask> task_;
};

}  // namespace rc::power
