#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hash/object_map.hpp"
#include "node/node.hpp"
#include "sim/backoff.hpp"

namespace rc::server {

/// RAMCloud server id. Masters and backups are collocated one per node in
/// the paper's deployment, so server id == node id here.
using ServerId = node::NodeId;

/// A contiguous range of the 64-bit key-hash space of one table, owned by
/// one master. [startHash, endHash] inclusive.
struct Tablet {
  std::uint64_t tableId = 0;
  std::uint64_t startHash = 0;
  std::uint64_t endHash = ~0ULL;
  ServerId owner = node::kInvalidNode;

  bool covers(std::uint64_t tableId_, std::uint64_t hash) const {
    return tableId == tableId_ && hash >= startHash && hash <= endHash;
  }
};

class MasterService;
class BackupService;

/// How simulator components find each other's *state* (the data plane's
/// bytes travel out-of-band through shared memory; all *timing* is still
/// paid through RPCs, CPU tasks and disk operations).
struct ServiceDirectory {
  std::function<MasterService*(node::NodeId)> masterOn;
  std::function<BackupService*(node::NodeId)> backupOn;
  /// Nodes with a live backup service (replica-placement candidates).
  std::function<std::vector<node::NodeId>()> liveBackups;
  /// Coordinator lease check: is this client id's lease still valid?
  /// Masters consult it on every tracked RPC and in the reclamation sweep
  /// (content-plane side channel; lease *grants* still travel as RPCs).
  std::function<bool(std::uint64_t)> leaseValid;
};

/// Default RPC deadlines.
namespace timeouts {
constexpr sim::Duration kClientOp = sim::seconds(1);
constexpr sim::Duration kReplication = sim::msec(800);
constexpr sim::Duration kPing = sim::msec(150);
constexpr sim::Duration kRecoveryData = sim::seconds(30);
constexpr sim::Duration kControl = sim::seconds(5);
}  // namespace timeouts

/// The shared jittered-backoff policy lives in sim/backoff.hpp; server and
/// client retry paths use the same type so their schedules stay comparable.
using Backoff = sim::Backoff;

}  // namespace rc::server
