#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hash/object_map.hpp"
#include "node/node.hpp"

namespace rc::server {

/// RAMCloud server id. Masters and backups are collocated one per node in
/// the paper's deployment, so server id == node id here.
using ServerId = node::NodeId;

/// A contiguous range of the 64-bit key-hash space of one table, owned by
/// one master. [startHash, endHash] inclusive.
struct Tablet {
  std::uint64_t tableId = 0;
  std::uint64_t startHash = 0;
  std::uint64_t endHash = ~0ULL;
  ServerId owner = node::kInvalidNode;

  bool covers(std::uint64_t tableId_, std::uint64_t hash) const {
    return tableId == tableId_ && hash >= startHash && hash <= endHash;
  }
};

class MasterService;
class BackupService;

/// How simulator components find each other's *state* (the data plane's
/// bytes travel out-of-band through shared memory; all *timing* is still
/// paid through RPCs, CPU tasks and disk operations).
struct ServiceDirectory {
  std::function<MasterService*(node::NodeId)> masterOn;
  std::function<BackupService*(node::NodeId)> backupOn;
  /// Nodes with a live backup service (replica-placement candidates).
  std::function<std::vector<node::NodeId>()> liveBackups;
  /// Coordinator lease check: is this client id's lease still valid?
  /// Masters consult it on every tracked RPC and in the reclamation sweep
  /// (content-plane side channel; lease *grants* still travel as RPCs).
  std::function<bool(std::uint64_t)> leaseValid;
};

/// Default RPC deadlines.
namespace timeouts {
constexpr sim::Duration kClientOp = sim::seconds(1);
constexpr sim::Duration kReplication = sim::msec(800);
constexpr sim::Duration kPing = sim::msec(150);
constexpr sim::Duration kRecoveryData = sim::seconds(30);
constexpr sim::Duration kControl = sim::seconds(5);
}  // namespace timeouts

/// Capped exponential backoff with deterministic jitter.
///
/// delay(attempt, salt) = target * j where target = min(cap, base << attempt)
/// and j in [0.5, 1.0) is derived by hashing (salt, attempt) — no shared RNG
/// stream, so concurrent retry loops (client ops, replica repair) stay
/// independent and every run of the same schedule is bit-identical.
struct Backoff {
  sim::Duration base = sim::msec(1);
  sim::Duration cap = sim::msec(200);

  static std::uint64_t mix(std::uint64_t x) {
    // splitmix64 finalizer: full-avalanche, cheap, stable across platforms.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  sim::Duration delay(int attempt, std::uint64_t salt) const {
    const int shift = attempt < 0 ? 0 : (attempt > 30 ? 30 : attempt);
    sim::Duration target = base << shift;
    if (target > cap || target <= 0) target = cap;
    const std::uint64_t h =
        mix(salt * 0x100000001b3ULL + static_cast<std::uint64_t>(shift));
    const double frac = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    return target / 2 +
           static_cast<sim::Duration>(static_cast<double>(target / 2) * frac);
  }
};

}  // namespace rc::server
