#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "log/segment.hpp"
#include "net/rpc.hpp"
#include "node/node.hpp"
#include "obs/event_journal.hpp"
#include "server/common.hpp"
#include "sim/inline_task.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"

namespace rc::server {

struct ReplicationParams {
  /// Replicas per segment (the paper sweeps 1..5; 0 disables durability,
  /// as in the paper's Sections IV-V).
  int factor = 0;

  /// Master-side CPU to build and send one replication RPC. Charged to the
  /// worker holding the update (it stays busy-spinning through the sync) —
  /// this, plus the ack wait, is the paper's Finding-3 contention.
  sim::Duration perReplicaSendCpu = sim::usec(18);

  /// Master-side CPU to process one replication acknowledgement.
  sim::Duration ackProcessing = sim::usec(15);

  /// Strong consistency: the update is acknowledged to the client only
  /// after every backup acked (paper SS VI). false = the SS IX-B ablation
  /// (fire-and-forget replication, relaxed consistency).
  bool waitForAcks = true;

  /// SS IX-B's other proposal: one-sided RDMA writes into backup frames.
  /// The master posts a DMA (~1 us CPU) and the backup's CPU is not
  /// involved at all — the NIC deposits the bytes and the completion is
  /// polled. Keeps the ack wait (consistency preserved) but removes the
  /// CPU contention of Finding 3.
  bool oneSidedRdma = false;

  /// Replacement attempts when a backup times out before giving up.
  int maxRetries = 3;

  /// Wait before re-sending after a failed replica write, and between
  /// background-repair rounds (deterministic jitter; see sim::Backoff).
  Backoff retryBackoff{sim::msec(2), sim::msec(200)};

  /// Overload degradation (docs/OVERLOAD.md): while the owning node is
  /// shedding, background-repair rounds are stretched by this factor —
  /// but only when every damaged segment still has >= 1 healthy replica,
  /// so the deferral can never widen a full-exposure window.
  int pressureStretch = 4;
};

/// Manages segment replica placement and replication traffic for one
/// master (RAMCloud's ReplicaManager + ReplicatedSegment).
class ReplicaManager {
 public:
  using DoneFn = sim::InlineFunction<void(bool ok)>;
  /// Candidate backup nodes (alive, backup service up, excluding self).
  using CandidatesFn = std::function<std::vector<node::NodeId>()>;
  /// Resolve one of this master's segments (for watermark resends).
  using SegmentLookupFn =
      std::function<const log::Segment*(log::SegmentId)>;

  ReplicaManager(sim::Simulation& sim, net::RpcSystem& rpc,
                 node::NodeId self, ReplicationParams params,
                 CandidatesFn candidates, SegmentLookupFn segmentLookup,
                 sim::Rng rng);

  /// Recovery tasks destroy their ReplicaManager mid-run; the pending
  /// repair-tick event must not outlive `this` (eager O(log n) cancel).
  ~ReplicaManager();

  /// Pick `factor` distinct backups for a fresh segment (random scatter —
  /// RAMCloud's placement, chosen so recovery can enlist many machines).
  void onSegmentOpened(const log::Segment& seg);

  /// Replicate `bytes` just appended to `segId`, in the caller's worker
  /// context: replicas are serviced one after another and `done` runs when
  /// the last ack arrives (or immediately if waitForAcks is false).
  void replicateAppend(log::SegmentId segId, std::uint64_t bytes,
                       DoneFn done);

  /// Asynchronously replicate the still-unreplicated tail of a sealed
  /// segment and mark replicas closed (triggers backup disk flushes).
  void sealSegment(const log::Segment& seg);

  /// Replicate an entire (sealed) segment in one batched write per replica
  /// — the recovery-replay path. Sequential per replica; `done` runs after
  /// the last (flush-gated) ack.
  void replicateWholeSegment(const log::Segment& seg, DoneFn done);

  /// Tell the replicas' backups to drop a cleaned segment.
  void freeSegment(log::SegmentId segId);

  /// A backup died (coordinator broadcast / local timeout evidence): every
  /// placement slot pointing at it is invalidated and a background-repair
  /// loop re-replicates the affected segments — open heads up to their
  /// watermark, sealed segments in full — onto fresh backups, with capped
  /// exponential backoff between rounds.
  void onBackupFailed(node::NodeId backup);

  /// Replica slots currently missing across all segments (invalidated by a
  /// backup death and not yet repaired, plus under-placed segments). The
  /// cluster-level `cluster.rf_deficit` gauge sums this over live masters.
  std::uint64_t rfDeficit() const;

  /// Replication writes in flight that nobody is waiting on (seal tails).
  std::uint64_t pendingAsyncWrites() const { return pendingAsync_; }

  const std::vector<node::NodeId>* placementOf(log::SegmentId segId) const;

  std::uint64_t replicaTimeouts() const { return replicaTimeouts_; }
  std::uint64_t replacementsMade() const { return replacements_; }
  std::uint64_t repairsCompleted() const { return repairsCompleted_; }
  /// Cumulative payload bytes pushed to backups (all replicas counted).
  std::uint64_t bytesReplicated() const { return bytesReplicated_; }
  const ReplicationParams& params() const { return params_; }

  /// Aliveness guard supplied by the owning master (crash safety).
  std::function<bool()> stillAlive;

  /// Overload probe supplied by the owning master (dispatch shedding state);
  /// unset or false means repair runs at full cadence.
  std::function<bool()> underPressure;

  /// Repair rounds stretched because the node was shedding.
  std::uint64_t repairsDeferred() const { return repairsDeferred_; }

  /// Attach the cluster's event journal; background repairs emit
  /// "rereplication" spans on this node. nullptr disables.
  void setJournal(obs::EventJournal* journal, std::uint64_t ctx = 0) {
    journal_ = journal;
    journalCtx_ = ctx;
  }

 private:
  struct SegmentState {
    std::vector<node::NodeId> backups;
    std::uint64_t bytesSent = 0;  ///< per-replica watermark (kept in sync)
    bool closedSent = false;
    int repairsInFlight = 0;
  };

  void sendChain(log::SegmentId segId, std::uint64_t bytes, bool close,
                 std::size_t replicaIdx, int retriesLeft, DoneFn done);
  node::NodeId pickReplacement(const std::vector<node::NodeId>& current);
  void scheduleRepair();
  void repairTick();
  void repairSlot(log::SegmentId segId, std::size_t slot);
  bool anySegmentFullyExposed() const;

  sim::Simulation& sim_;
  net::RpcSystem& rpc_;
  node::NodeId self_;
  ReplicationParams params_;
  CandidatesFn candidates_;
  SegmentLookupFn segmentLookup_;
  sim::Rng rng_;

  std::unordered_map<log::SegmentId, SegmentState> segments_;
  std::uint64_t pendingAsync_ = 0;
  std::uint64_t replicaTimeouts_ = 0;
  std::uint64_t replacements_ = 0;
  std::uint64_t repairsCompleted_ = 0;
  std::uint64_t bytesReplicated_ = 0;
  std::uint64_t repairsDeferred_ = 0;
  bool repairScheduled_ = false;
  sim::EventId repairEvent_ = sim::kInvalidEvent;
  int repairAttempt_ = 0;
  obs::EventJournal* journal_ = nullptr;
  std::uint64_t journalCtx_ = 0;
};

}  // namespace rc::server
