#include "server/recovery_task.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "server/backup_service.hpp"
#include "server/master_service.hpp"

namespace rc::server {

namespace {
/// Globally unique side-log segment-id ranges (65536 segments each).
log::SegmentId nextSideLogBase() {
  static std::atomic<std::uint32_t> instance{0};
  return 0x8000'0000u + (instance++ << 16);
}
}  // namespace

RecoveryTask::RecoveryTask(MasterService& master, RecoveryPlanPtr plan,
                           int partitionIndex)
    : master_(master),
      plan_(std::move(plan)),
      part_(partitionIndex),
      alive_(std::make_shared<bool>(true)) {
  log::LogParams lp = master_.params().log;
  lp.segmentIdBase = nextSideLogBase();
  sideLog_ = std::make_unique<log::Log>(lp);
  sideRepl_ = std::make_unique<ReplicaManager>(
      master_.node().sim(), master_.rpc(), master_.node().id(),
      master_.params().replication,
      [this] { return master_.backupCandidates(); },
      [this](log::SegmentId id) -> const log::Segment* {
        auto s = sideSegment(id);
        return s.get();
      },
      master_.rng_.fork(0x51de));
  sideRepl_->stillAlive = [w = std::weak_ptr<bool>(alive_)] {
    auto p = w.lock();
    return p != nullptr && *p;
  };
  sideLog_->onSegmentOpened = [this](log::Segment& seg) {
    sideRepl_->onSegmentOpened(seg);
  };
  sideLog_->onSegmentSealed = [this](log::Segment& seg) {
    onSideSegmentSealed(seg);
  };
}

RecoveryTask::~RecoveryTask() { *alive_ = false; }

void RecoveryTask::abort() {
  if (aborted_) return;
  aborted_ = true;
  *alive_ = false;
  unpinWorkers();
}

std::shared_ptr<const log::Segment> RecoveryTask::sideSegment(
    log::SegmentId id) const {
  return sideLog_ ? sideLog_->sharedSegment(id) : nullptr;
}

void RecoveryTask::pinWorkers() {
  auto* cpu = &master_.node().cpu();
  workerEpoch_ = cpu->epoch();
  // Grants may arrive after the task finished (commit/abort set *alive_
  // false); such late grants hand the worker straight back.
  auto pin = [this, cpu, w = std::weak_ptr<bool>(alive_)](int* slot) {
    cpu->acquireWorker([this, cpu, w, slot](int wk) {
      auto p = w.lock();
      if (p != nullptr && *p) {
        cpu->tagWorker(wk, {power::OpClass::kRecovery, 0});
        *slot = wk;
      } else {
        cpu->releaseWorker(wk);
      }
    });
  };
  pin(&replayWorker_);
  if (master_.params().replication.factor > 0) pin(&syncWorker_);
}

void RecoveryTask::unpinWorkers() {
  *alive_ = false;  // cut continuations; the task is done either way
  auto& cpu = master_.node().cpu();
  if (cpu.epoch() == workerEpoch_ && cpu.poweredOn()) {
    if (replayWorker_ >= 0) cpu.releaseWorker(replayWorker_);
    if (syncWorker_ >= 0) cpu.releaseWorker(syncWorker_);
  }
  replayWorker_ = -1;
  syncWorker_ = -1;
}

void RecoveryTask::start() {
  if (auto* j = master_.journal()) {
    taskSpan_ = j->beginSpan("partition_recovery", master_.node().id(),
                             plan_->rootSpan, plan_->recoveryId);
  }
  pinWorkers();
  pumpFetches();
}

void RecoveryTask::abandonJournalSpans() {
  auto* j = master_.journal();
  if (j == nullptr) return;  // abandonSpan is a no-op on closed spans
  for (const auto& [segIdx, span] : fetchSpans_) j->abandonSpan(span);
  if (replaySpan_ != 0) j->abandonSpan(replaySpan_);
  if (taskSpan_ != 0) j->abandonSpan(taskSpan_);
}

void RecoveryTask::pumpFetches() {
  if (aborted_ || failed_) return;
  while (nextFetch_ < plan_->segments.size() &&
         outstandingFetches_ < master_.params().recoveryFetchWindow) {
    const std::size_t idx = nextFetch_++;
    ++outstandingFetches_;
    fetchSegment(idx, 0);
  }
  maybeFinish();
}

void RecoveryTask::fetchSegment(std::size_t segIdx, std::size_t sourceIdx) {
  const RecoveryPlan::SegmentSource& src = plan_->segments[segIdx];
  // Skip sources already known dead (coordinator broadcast) — no point
  // burning a full RPC timeout on them.
  while (sourceIdx < src.backups.size() &&
         deadBackups_.contains(src.backups[sourceIdx])) {
    ++sourceIdx;
  }
  if (sourceIdx >= src.backups.size()) {
    // Every replica of this segment is gone: data loss, partition fails.
    inFlightFetches_.erase(segIdx);
    fail();
    return;
  }
  const node::NodeId backup = src.backups[sourceIdx];
  if (auto* j = master_.journal();
      j != nullptr && !fetchSpans_.contains(segIdx)) {
    // One span per segment, spanning replica fallbacks; up to
    // recoveryFetchWindow of these legitimately overlap per actor.
    fetchSpans_[segIdx] = j->beginSpan("segment_fetch", master_.node().id(),
                                       taskSpan_, plan_->recoveryId);
  }
  FetchState& fs = inFlightFetches_[segIdx];
  fs.backup = backup;
  fs.sourceIdx = sourceIdx;
  fs.generation = ++fetchGeneration_;
  const std::uint64_t gen = fs.generation;

  net::RpcRequest req;
  req.op = net::Opcode::kGetRecoveryData;
  req.a = static_cast<std::uint64_t>(plan_->crashedMaster);
  req.b = src.segment;
  req.c = static_cast<std::uint64_t>(part_);
  req.d = plan_->planId;
  // Carry the fetch span so the backup parents its segment_read under it
  // (backups never stamp TimeTrace, so the field is free on this opcode).
  if (auto it = fetchSpans_.find(segIdx); it != fetchSpans_.end()) {
    req.traceSpan = it->second;
  }

  master_.rpc().call(
      master_.node().id(), backup, net::kBackupPort, req,
      timeouts::kRecoveryData,
      [this, w = std::weak_ptr<bool>(alive_), segIdx, sourceIdx, gen,
       backup](const net::RpcResponse& resp) {
        auto p = w.lock();
        if (p == nullptr || !*p) return;
        auto fit = inFlightFetches_.find(segIdx);
        if (fit == inFlightFetches_.end() || fit->second.generation != gen) {
          return;  // superseded by an onBackupDown failover
        }
        if (resp.status != net::Status::kOk) {
          fetchSegment(segIdx, sourceIdx + 1);
          return;
        }
        BackupService* bs = master_.directory().backupOn(backup);
        if (bs == nullptr) {
          fetchSegment(segIdx, sourceIdx + 1);
          return;
        }
        inFlightFetches_.erase(fit);
        onSegmentData(segIdx,
                      bs->filteredEntries(plan_->crashedMaster,
                                          plan_->segments[segIdx].segment,
                                          plan_->partitions[static_cast<
                                              std::size_t>(part_)]));
      });
}

void RecoveryTask::onBackupDown(node::NodeId dead) {
  if (aborted_ || failed_ || committed_) return;
  deadBackups_.insert(dead);
  if (sideRepl_) sideRepl_->onBackupFailed(dead);
  // Collect first: fetchSegment mutates inFlightFetches_.
  std::vector<std::pair<std::size_t, std::size_t>> failover;
  for (const auto& [segIdx, fs] : inFlightFetches_) {
    if (fs.backup == dead) failover.emplace_back(segIdx, fs.sourceIdx + 1);
  }
  std::sort(failover.begin(), failover.end());
  for (const auto& [segIdx, next] : failover) fetchSegment(segIdx, next);
}

void RecoveryTask::onSegmentData(std::size_t segIdx,
                                 std::vector<log::LogEntry> entries) {
  if (aborted_ || failed_) return;
  --outstandingFetches_;
  ++segmentsFetched_;
  if (auto it = fetchSpans_.find(segIdx); it != fetchSpans_.end()) {
    auto* j = master_.journal();
    j->addBytes(it->second, plan_->segments[segIdx].bytes);
    j->addCount(it->second, entries.size());
    j->endSpan(it->second);
    fetchSpans_.erase(it);
  }
  replayQueue_.push_back(std::move(entries));
  pumpFetches();
  pumpReplay();
}

void RecoveryTask::pumpReplay() {
  if (aborted_ || failed_ || replaying_) return;
  if (unackedSegments_ > master_.params().recoveryMaxUnackedSegments) return;
  if (replayQueue_.empty()) {
    maybeFinish();
    return;
  }
  replaying_ = true;
  if (auto* j = master_.journal()) {
    replaySpan_ = j->beginSpan("replay", master_.node().id(), taskSpan_,
                               plan_->recoveryId);
  }
  std::vector<log::LogEntry> entries = std::move(replayQueue_.front());
  replayQueue_.pop_front();
  replayChunk(std::move(entries), 0);
}

void RecoveryTask::replayChunk(std::vector<log::LogEntry> entries,
                               std::size_t offset) {
  if (aborted_ || failed_) return;
  if (offset >= entries.size()) {
    replaying_ = false;
    if (replaySpan_ != 0) {
      master_.journal()->endSpan(replaySpan_);
      replaySpan_ = 0;
    }
    ++segmentsReplayed_;
    pumpReplay();
    return;
  }
  const std::size_t chunk = std::min<std::size_t>(
      static_cast<std::size_t>(master_.params().replayChunkEntries),
      entries.size() - offset);
  const sim::Duration cpu =
      master_.params().replayPerEntryCpu * static_cast<sim::Duration>(chunk);

  // Replay runs on the task's pinned replay worker (already accounted
  // busy); chunking keeps the event loop responsive.
  master_.node().sim().schedule(cpu, [this, w = std::weak_ptr<bool>(alive_),
                                      entries = std::move(entries), offset,
                                      chunk]() mutable {
    auto p = w.lock();
    if (p == nullptr || !*p) return;
    for (std::size_t i = offset; i < offset + chunk; ++i) {
      applyEntry(entries[i]);
      ++entriesReplayed_;
    }
    if (replaySpan_ != 0) master_.journal()->addCount(replaySpan_, chunk);
    // Replication gating: if appends sealed a side segment and too many
    // are unacked, pause until acks drain (pumpReplay re-checks).
    if (unackedSegments_ > master_.params().recoveryMaxUnackedSegments) {
      // Pause: re-queue the remainder at the front so order is preserved;
      // pumpReplay resumes once acks drain.
      if (offset + chunk < entries.size()) {
        std::vector<log::LogEntry> rest(
            entries.begin() + static_cast<std::ptrdiff_t>(offset + chunk),
            entries.end());
        replayQueue_.push_front(std::move(rest));
      } else {
        ++segmentsReplayed_;
      }
      replaying_ = false;
      if (replaySpan_ != 0) {
        master_.journal()->endSpan(replaySpan_);
        replaySpan_ = 0;
      }
      pumpReplay();
      return;
    }
    replayChunk(std::move(entries), offset + chunk);
  });
}

void RecoveryTask::applyEntry(const log::LogEntry& e) {
  if (e.type == log::EntryType::kTxPrepare ||
      e.type == log::EntryType::kTxDecision) {
    const bool isPrepare = e.type == log::EntryType::kTxPrepare;
    // A dead prepare was decided on the crashed master before it died (the
    // decision path marks it dead in place, which the backup's shared
    // segment sees): replaying it must NOT resurrect the lock. Decisions
    // are replayed even when dead — they only fence, never lock.
    if (isPrepare && !e.live) return;
    auto& seen = isPrepare ? seenTxPrepares_ : seenTxDecisions_;
    if (!seen.insert({e.txId, e.tableId, e.keyId}).second) return;
    log::LogEntry copy = e;
    copy.live = true;
    const log::LogRef ref =
        sideLog_->append(copy, master_.node().sim().now());
    master_.node().chargeDram(e.sizeBytes, {power::OpClass::kRecovery, 0});
    (isPrepare ? recoveredTxPrepares_ : recoveredTxDecisions_)
        .emplace_back(copy, ref);
    return;
  }
  if (e.type == log::EntryType::kCompletion) {
    // Completion records bypass the object staging table: they share the
    // object's (tableId, keyId) but are keyed by (clientId, seq), and the
    // version-dedup below would drop them against the object itself.
    const auto key = std::make_pair(e.clientId, e.rpcSeq);
    if (!seenCompletions_.insert(key).second) return;
    log::LogEntry copy = e;
    copy.live = true;
    const log::LogRef ref =
        sideLog_->append(copy, master_.node().sim().now());
    master_.node().chargeDram(e.sizeBytes, {power::OpClass::kRecovery, 0});
    recoveredCompletions_.emplace_back(copy, ref);
    return;
  }
  const hash::Key k{e.tableId, e.keyId};
  Staged& st = staging_[k];
  if (e.version <= st.version) return;  // stale duplicate from another copy
  if (st.ref.valid()) sideLog_->markDead(st.ref);

  log::LogEntry copy = e;
  copy.live = true;
  const log::LogRef ref = sideLog_->append(copy, master_.node().sim().now());
  master_.node().chargeDram(e.sizeBytes, {power::OpClass::kRecovery, 0});
  st.version = e.version;
  st.sizeBytes = e.sizeBytes;
  st.tombstone = e.type == log::EntryType::kTombstone;
  st.ref = ref;
}

void RecoveryTask::onSideSegmentSealed(log::Segment& seg) {
  ++unackedSegments_;
  std::uint64_t replSpan = 0;
  if (auto* j = master_.journal()) {
    replSpan = j->beginSpan("rereplication", master_.node().id(), taskSpan_,
                            plan_->recoveryId);
    j->addBytes(replSpan, seg.appendedBytes());
  }
  sideRepl_->replicateWholeSegment(
      seg, [this, w = std::weak_ptr<bool>(alive_), replSpan](bool ok) {
        auto p = w.lock();
        if (p == nullptr || !*p) return;
        --unackedSegments_;
        if (replSpan != 0) {
          if (ok) {
            master_.journal()->endSpan(replSpan);
          } else {
            master_.journal()->abandonSpan(replSpan);
          }
        }
        if (!ok) {
          fail();
          return;
        }
        pumpReplay();
        maybeFinish();
      });
}

void RecoveryTask::maybeFinish() {
  if (aborted_ || failed_ || committed_) return;
  const bool allFetched = nextFetch_ >= plan_->segments.size() &&
                          outstandingFetches_ == 0;
  if (!allFetched || !replayQueue_.empty() || replaying_) return;
  if (!drainStarted_) {
    drainStarted_ = true;
    sideLog_->sealHead();  // triggers final replication (if non-empty)
  }
  if (unackedSegments_ > 0) return;
  commit();
}

void RecoveryTask::commit() {
  if (committed_) return;
  committed_ = true;
  unpinWorkers();
  if (auto* j = master_.journal(); j != nullptr && taskSpan_ != 0) {
    j->addCount(taskSpan_, entriesReplayed_);
    j->endSpan(taskSpan_);
  }

  // Atomically switch ownership: install recovered objects, adopt the
  // side-log segments, take over the partition's tablets.
  std::vector<std::shared_ptr<log::Segment>> adopted;
  for (const auto& [id, seg] : sideLog_->segments()) adopted.push_back(seg);
  for (auto& seg : adopted) master_.log().adopt(seg);

  for (const auto& [key, st] : staging_) {
    if (st.tombstone) {
      master_.map_.erase(key);
      if (st.ref.valid()) master_.log().markDead(st.ref);
    } else {
      master_.map_.put(key,
                       hash::ObjectLocation{st.ref, st.version, st.sizeBytes});
    }
  }
  for (const Tablet& t :
       plan_->partitions[static_cast<std::size_t>(part_)].ranges) {
    master_.addTablet(t);
  }
  for (const auto& [e, ref] : recoveredCompletions_) {
    UnackedRpcResults::Result rr;
    rr.status = e.opStatus;
    rr.version = e.version;
    rr.found = e.found;
    rr.tableId = e.tableId;
    rr.keyId = e.keyId;
    rr.record = ref;
    if (!master_.unackedRpcResults().recover(e.clientId, e.rpcSeq, rr)) {
      // Already known (an earlier partition of the same crash carried it,
      // or the client's watermark has passed): drop the duplicate copy.
      master_.log().markDead(ref);
    }
  }

  // Minitransaction state, decisions first: the resolved-tx table must be
  // fenced before prepares are classified, and a prepare whose (txId,
  // object) decision survived must not become a lock again.
  std::set<TxRecordKey> decided;
  for (const auto& [e, ref] : recoveredTxDecisions_) {
    decided.insert({e.txId, e.tableId, e.keyId});
    bool owned = false;
    if (e.clientId != 0 && e.rpcSeq != 0) {
      UnackedRpcResults::Result rr;
      rr.status = e.opStatus;
      rr.version = e.version;
      rr.found = true;
      rr.tableId = e.tableId;
      rr.keyId = e.keyId;
      rr.record = ref;
      owned = master_.unackedRpcResults().recover(e.clientId, e.rpcSeq, rr);
    }
    master_.txLockTable().noteResolved(e.txId, e.txCommit, e.clientId,
                                       e.tableId, e.keyId, ref, owned,
                                       master_.node().sim().now());
  }
  for (const auto& [e, ref] : recoveredTxPrepares_) {
    if (decided.contains({e.txId, e.tableId, e.keyId})) {
      // The outcome landed durably; the prepare record is spent.
      master_.log().markDead(ref);
      continue;
    }
    bool owned = false;
    if (e.clientId != 0) {
      UnackedRpcResults::Result rr;
      rr.status = e.opStatus;
      rr.version = e.version;
      rr.found = true;
      rr.tableId = e.tableId;
      rr.keyId = e.keyId;
      rr.record = ref;
      owned = master_.unackedRpcResults().recover(e.clientId, e.rpcSeq, rr);
    }
    if (master_.installRecoveredTxLock(e, ref, owned)) {
      master_.txLockTable().countRecovered();
    } else if (!owned) {
      master_.log().markDead(ref);
    }
  }

  net::RpcRequest req;
  req.op = net::Opcode::kRecoveryDone;
  req.a = plan_->planId;
  req.b = static_cast<std::uint64_t>(part_);
  req.c = 0;  // success
  master_.rpc().call(master_.node().id(), master_.coordinatorNode(),
                     net::kCoordinatorPort, req, timeouts::kControl,
                     [](const net::RpcResponse&) {});
  master_.onRecoveryTaskFinished(this);
}

void RecoveryTask::fail() {
  if (failed_ || committed_) return;
  failed_ = true;
  unpinWorkers();
  abandonJournalSpans();
  net::RpcRequest req;
  req.op = net::Opcode::kRecoveryDone;
  req.a = plan_->planId;
  req.b = static_cast<std::uint64_t>(part_);
  req.c = 1;  // failure
  master_.rpc().call(master_.node().id(), master_.coordinatorNode(),
                     net::kCoordinatorPort, req, timeouts::kControl,
                     [](const net::RpcResponse&) {});
  master_.onRecoveryTaskFinished(this);
}

}  // namespace rc::server
