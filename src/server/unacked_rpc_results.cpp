#include "server/unacked_rpc_results.hpp"

#include <algorithm>

namespace rc::server {

void UnackedRpcResults::advanceWatermark(ClientState& st,
                                         std::uint64_t firstUnacked,
                                         std::vector<log::LogRef>* freed) {
  if (firstUnacked <= st.firstUnacked) return;
  st.firstUnacked = firstUnacked;
  auto it = st.results.begin();
  while (it != st.results.end() && it->first < firstUnacked) {
    if (freed != nullptr && it->second.record.valid()) {
      freed->push_back(it->second.record);
    }
    ++recordsGced_;
    it = st.results.erase(it);
  }
  auto ip = st.inProgress.begin();
  while (ip != st.inProgress.end() && ip->first < firstUnacked) {
    ip = st.inProgress.erase(ip);
  }
}

UnackedRpcResults::BeginResult UnackedRpcResults::begin(
    std::uint64_t clientId, std::uint64_t seq, std::uint64_t firstUnacked,
    std::vector<log::LogRef>* freed) {
  ClientState& st = clients_[clientId];
  advanceWatermark(st, firstUnacked, freed);

  BeginResult r;
  if (seq < st.firstUnacked) {
    // The client itself acknowledged this seq already; replaying it would
    // be a protocol error (its record may already be garbage-collected).
    ++staleRejected_;
    r.check = Check::kStale;
    return r;
  }
  if (auto it = st.results.find(seq); it != st.results.end()) {
    ++duplicatesSuppressed_;
    r.check = Check::kCompleted;
    r.result = it->second;
    return r;
  }
  if (st.inProgress.count(seq) > 0) {
    r.check = Check::kInProgress;
    return r;
  }
  st.inProgress[seq] = true;
  r.check = Check::kNew;
  return r;
}

void UnackedRpcResults::recordCompletion(std::uint64_t clientId,
                                         std::uint64_t seq,
                                         const Result& result) {
  ClientState& st = clients_[clientId];
  st.inProgress.erase(seq);
  st.results[seq] = result;
  ++completionsRecorded_;
}

void UnackedRpcResults::abortInProgress(std::uint64_t clientId,
                                        std::uint64_t seq) {
  auto it = clients_.find(clientId);
  if (it == clients_.end()) return;
  it->second.inProgress.erase(seq);
}

bool UnackedRpcResults::recover(std::uint64_t clientId, std::uint64_t seq,
                                const Result& result) {
  ClientState& st = clients_[clientId];
  if (seq < st.firstUnacked) return false;
  if (st.results.count(seq) > 0) return false;  // duplicate replica copy
  st.results[seq] = result;
  st.inProgress.erase(seq);
  ++recordsRecovered_;
  return true;
}

std::size_t UnackedRpcResults::reclaimExpired(
    const std::function<bool(std::uint64_t)>& leaseValid,
    std::vector<log::LogRef>* freed) {
  std::size_t reclaimed = 0;
  for (auto it = clients_.begin(); it != clients_.end();) {
    if (leaseValid && leaseValid(it->first)) {
      ++it;
      continue;
    }
    for (const auto& [seq, res] : it->second.results) {
      if (freed != nullptr && res.record.valid()) {
        freed->push_back(res.record);
      }
      ++recordsGced_;
    }
    it = clients_.erase(it);
    ++reclaimed;
    ++clientsExpired_;
  }
  return reclaimed;
}

std::vector<UnackedRpcResults::Retained> UnackedRpcResults::collectForRange(
    const std::function<bool(std::uint64_t, std::uint64_t)>& inRange) const {
  std::vector<Retained> out;
  for (const auto& [cid, st] : clients_) {
    for (const auto& [seq, res] : st.results) {
      if (inRange(res.tableId, res.keyId)) {
        out.push_back(Retained{cid, seq, res});
      }
    }
  }
  // clients_ is an unordered_map; sort so migration batches are
  // deterministic regardless of hash-table iteration order.
  std::sort(out.begin(), out.end(), [](const Retained& a, const Retained& b) {
    return a.clientId != b.clientId ? a.clientId < b.clientId
                                    : a.seq < b.seq;
  });
  return out;
}

void UnackedRpcResults::eraseForRange(
    const std::function<bool(std::uint64_t, std::uint64_t)>& inRange,
    std::vector<log::LogRef>* freed) {
  for (auto it = clients_.begin(); it != clients_.end();) {
    ClientState& st = it->second;
    for (auto rit = st.results.begin(); rit != st.results.end();) {
      if (inRange(rit->second.tableId, rit->second.keyId)) {
        if (freed != nullptr && rit->second.record.valid()) {
          freed->push_back(rit->second.record);
        }
        rit = st.results.erase(rit);
      } else {
        ++rit;
      }
    }
    if (st.results.empty() && st.inProgress.empty()) {
      it = clients_.erase(it);
    } else {
      ++it;
    }
  }
}

void UnackedRpcResults::updateRecordRef(std::uint64_t clientId,
                                        std::uint64_t seq,
                                        const log::LogRef& newRef) {
  auto it = clients_.find(clientId);
  if (it == clients_.end()) return;
  auto rit = it->second.results.find(seq);
  if (rit == it->second.results.end()) return;
  rit->second.record = newRef;
}

}  // namespace rc::server
