#include "server/migration.hpp"

#include <utility>

#include "server/master_service.hpp"

namespace rc::server {

MigrationTask::MigrationTask(MasterService& source, Tablet tablet,
                             node::NodeId destination)
    : source_(source),
      tablet_(tablet),
      dest_(destination),
      alive_(std::make_shared<bool>(true)) {}

MigrationTask::~MigrationTask() { *alive_ = false; }

void MigrationTask::abort() {
  aborted_ = true;
  *alive_ = false;
}

void MigrationTask::start() {
  if (auto* j = source_.journal()) {
    migrationSpan_ = j->beginSpan("migration", source_.node().id());
  }
  collectKeys();
  sendNextBatch();
}

void MigrationTask::collectKeys() {
  // Snapshot the objects in the migrating range. Writes to the range are
  // already being bounced, so the snapshot is stable.
  source_.objectMap().forEach([this](const hash::Key& k,
                                     const hash::ObjectLocation& loc) {
    if (k.tableId != tablet_.tableId) return;
    const std::uint64_t h = hash::keyHash(k);
    if (h < tablet_.startHash || h > tablet_.endHash) return;
    log::LogEntry e;
    e.tableId = k.tableId;
    e.keyId = k.keyId;
    e.sizeBytes = loc.sizeBytes;
    e.version = loc.version;
    e.type = log::EntryType::kObject;
    pending_.push_back(e);
  });
  // Minitransaction version locks move with the tablet: rebuild each
  // in-range kTxPrepare record so the destination re-installs the lock
  // before it answers for the range (docs/TRANSACTIONS.md). Shipped ahead
  // of the completion records so the lock adopts the prepare's suppression
  // entry on install and the later plain copy dedups against it.
  const auto locks = source_.txLockTable().collectForRange(
      [this](std::uint64_t tableId, std::uint64_t keyId) {
        return keyInRange(tableId, keyId);
      });
  for (const auto& lock : locks) {
    log::LogEntry e;
    e.tableId = lock.tableId;
    e.keyId = lock.keyId;
    e.sizeBytes = source_.params().txPrepareRecordBytes;
    e.version = lock.expectedVersion;
    e.type = log::EntryType::kTxPrepare;
    e.clientId = lock.clientId;
    e.rpcSeq = lock.rpcSeq;
    e.opStatus = static_cast<std::uint8_t>(net::Status::kOk);
    e.txId = lock.txId;
    e.txPendingBytes = lock.pendingValueBytes;
    e.txExpectedVersion = lock.expectedVersion;
    e.txParticipants = lock.participants;
    pending_.push_back(e);
  }
  // Duplicate-suppression state travels with the tablet: ship the retained
  // completion records too, so a retry that lands on the new owner after
  // the map flips is still suppressed (docs/LINEARIZABILITY.md).
  const auto completions = source_.unackedRpcResults().collectForRange(
      [this](std::uint64_t tableId, std::uint64_t keyId) {
        return keyInRange(tableId, keyId);
      });
  for (const auto& r : completions) {
    log::LogEntry e;
    e.tableId = r.result.tableId;
    e.keyId = r.result.keyId;
    e.sizeBytes = source_.params().completionRecordBytes;
    e.version = r.result.version;
    e.type = log::EntryType::kCompletion;
    e.clientId = r.clientId;
    e.rpcSeq = r.seq;
    e.opStatus = r.result.status;
    e.found = r.result.found;
    pending_.push_back(e);
  }
}

bool MigrationTask::keyInRange(std::uint64_t tableId,
                               std::uint64_t keyId) const {
  if (tableId != tablet_.tableId) return false;
  const std::uint64_t h = hash::keyHash(hash::Key{tableId, keyId});
  return h >= tablet_.startHash && h <= tablet_.endHash;
}

std::vector<log::LogEntry> MigrationTask::takeBatch(std::uint64_t batchId) {
  auto it = inFlight_.find(batchId);
  if (it == inFlight_.end()) return {};
  std::vector<log::LogEntry> out = std::move(it->second);
  inFlight_.erase(it);
  return out;
}

void MigrationTask::sendNextBatch() {
  if (aborted_ || failed_ || done_) return;
  if (nextIndex_ >= pending_.size()) {
    finish(true);
    return;
  }
  const std::size_t n = std::min<std::size_t>(
      static_cast<std::size_t>(source_.params().migration.batchObjects),
      pending_.size() - nextIndex_);
  std::vector<log::LogEntry> batch(
      pending_.begin() + static_cast<std::ptrdiff_t>(nextIndex_),
      pending_.begin() + static_cast<std::ptrdiff_t>(nextIndex_ + n));
  nextIndex_ += n;

  std::uint64_t bytes = 0;
  for (const auto& e : batch) bytes += e.sizeBytes;
  const std::uint64_t batchId = nextBatchId_++;
  inFlight_[batchId] = std::move(batch);

  // Source-side marshalling CPU, then ship the batch.
  const sim::Duration cpu =
      source_.params().migration.sourcePerObjectCpu *
      static_cast<sim::Duration>(n);
  source_.node().cpu().run(cpu, {power::OpClass::kMigration, 0},
                           [this, w = std::weak_ptr<bool>(alive_),
                            batchId, bytes, n] {
    auto p = w.lock();
    if (p == nullptr || !*p) return;
    net::RpcRequest req;
    req.op = net::Opcode::kMigrationData;
    req.a = static_cast<std::uint64_t>(source_.node().id());
    req.b = batchId;
    req.c = n;
    req.payloadBytes = bytes;
    source_.rpc().call(
        source_.node().id(), dest_, net::kMasterPort, req,
        sim::seconds(10),
        [this, w](const net::RpcResponse& resp) {
          auto p2 = w.lock();
          if (p2 == nullptr || !*p2) return;
          if (resp.status != net::Status::kOk) {
            finish(false);
            return;
          }
          objectsMoved_ += resp.a;
          if (migrationSpan_ != 0) {
            source_.journal()->addCount(migrationSpan_, resp.a);
          }
          sendNextBatch();
        });
  });
}

void MigrationTask::finish(bool ok) {
  if (done_ || failed_) return;
  if (!ok) {
    failed_ = true;
  } else {
    done_ = true;
    // Drop the moved objects and the tablet; the coordinator flips the map
    // when it receives kMigrationDone.
    for (const auto& e : pending_) {
      if (e.type != log::EntryType::kObject) continue;
      const hash::Key k{e.tableId, e.keyId};
      if (const auto* loc = source_.objectMap().get(k);
          loc != nullptr && loc->version == e.version) {
        source_.dropObjectForMigration(k);
      }
    }
    // The new owner holds the handed-off version locks now: drop ours
    // first (so releaseCompletionRecords below cannot re-adopt a record
    // for a lock that just left) and mark their solely-owned records dead.
    std::vector<log::LogRef> lockFreed;
    source_.txLockTable().eraseForRange(
        [this](std::uint64_t tableId, std::uint64_t keyId) {
          return keyInRange(tableId, keyId);
        },
        &lockFreed);
    for (const log::LogRef& ref : lockFreed) {
      if (ref.valid() && source_.log().segment(ref.segment) != nullptr) {
        source_.log().markDead(ref);
      }
    }
    // The new owner answers retries now; drop the handed-off suppression
    // state and let the cleaner reclaim its records.
    std::vector<log::LogRef> freed;
    source_.unackedRpcResults().eraseForRange(
        [this](std::uint64_t tableId, std::uint64_t keyId) {
          return keyInRange(tableId, keyId);
        },
        &freed);
    source_.releaseCompletionRecords(freed);
    source_.removeTablet(tablet_);
  }

  if (migrationSpan_ != 0) {
    if (ok) {
      source_.journal()->endSpan(migrationSpan_);
    } else {
      source_.journal()->abandonSpan(migrationSpan_);
    }
  }

  net::RpcRequest req;
  req.op = net::Opcode::kMigrationDone;
  req.a = tablet_.tableId;
  req.b = tablet_.startHash;
  req.c = tablet_.endHash;
  req.d = static_cast<std::uint64_t>(ok ? dest_ : node::kInvalidNode);
  // Carry the migration span so the coordinator parents its
  // ownership_transfer event under it (this opcode never stamps TimeTrace).
  req.traceSpan = migrationSpan_;
  source_.rpc().call(source_.node().id(), source_.coordinatorNode(),
                     net::kCoordinatorPort, req, timeouts::kControl,
                     [](const net::RpcResponse&) {});
  source_.onMigrationTaskFinished(this);
}

}  // namespace rc::server
