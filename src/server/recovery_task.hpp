#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "log/log.hpp"
#include "server/recovery_plan.hpp"
#include "server/replica_manager.hpp"

namespace rc::server {

class MasterService;

/// Replays one partition of a crashed master's data on a recovery master.
///
/// Pipeline (mirrors RAMCloud's SOSP'11 design):
///   fetch  — up to `recoveryFetchWindow` kGetRecoveryData RPCs in flight;
///            backups read the frame from disk once and serve all
///            partitions from memory.
///   replay — entries re-inserted in worker-CPU chunks into a private
///            *side log*, newest version wins (so segment order is
///            irrelevant), tombstones suppress deleted objects.
///   re-replicate — each sealed side-log segment is replicated whole to
///            fresh backups; replay pauses when more than
///            `recoveryMaxUnackedSegments` are unacknowledged. Backup acks
///            are flush-gated under buffer pressure, which couples recovery
///            speed to contended disk bandwidth (Findings 5/6).
///   commit — hash table updated, side-log segments adopted, tablets
///            added, kRecoveryDone sent to the coordinator.
class RecoveryTask {
 public:
  RecoveryTask(MasterService& master, RecoveryPlanPtr plan,
               int partitionIndex);
  ~RecoveryTask();

  void start();
  bool finished() const { return committed_ || failed_; }
  bool failed() const { return failed_; }
  int partitionIndex() const { return part_; }

  /// Owner-side abort (recovery master crashed).
  void abort();

  /// Coordinator broadcast: `dead` crashed. In-flight segment fetches
  /// aimed at it fail over to the next replica immediately (instead of
  /// waiting out the long kGetRecoveryData timeout), future fetches skip
  /// it, and side-log replicas on it are queued for repair.
  void onBackupDown(node::NodeId dead);

  // Progress counters (for tests and the Fig. 9-12 timelines).
  std::size_t segmentsFetched() const { return segmentsFetched_; }
  std::uint64_t entriesReplayed() const { return entriesReplayed_; }

  /// Resolve a side-log segment (backups snapshot replica contents
  /// through the owning master's findSegment).
  std::shared_ptr<const log::Segment> sideSegment(log::SegmentId id) const;

 private:
  struct Staged {
    std::uint64_t version = 0;
    std::uint32_t sizeBytes = 0;
    bool tombstone = false;
    log::LogRef ref;
  };
  struct KeyHasher {
    std::size_t operator()(const hash::Key& k) const {
      return static_cast<std::size_t>(hash::keyHash(k));
    }
  };

  void pumpFetches();
  void fetchSegment(std::size_t segIdx, std::size_t sourceIdx);
  void onSegmentData(std::size_t segIdx, std::vector<log::LogEntry> entries);
  void abandonJournalSpans();
  void pumpReplay();
  void replayChunk(std::vector<log::LogEntry> entries, std::size_t offset);
  void applyEntry(const log::LogEntry& e);
  void onSideSegmentSealed(log::Segment& seg);
  void maybeFinish();
  void commit();
  void fail();

  MasterService& master_;
  RecoveryPlanPtr plan_;
  int part_;

  std::unique_ptr<log::Log> sideLog_;
  std::unique_ptr<ReplicaManager> sideRepl_;
  std::unordered_map<hash::Key, Staged, KeyHasher> staging_;

  /// kCompletion entries seen during replay: deduped by (clientId, seq) —
  /// several backup copies of a segment replay the same record — then
  /// installed into the new owner's UnackedRpcResults at commit so retries
  /// of already-applied ops are suppressed, not re-executed.
  std::set<std::pair<std::uint64_t, std::uint64_t>> seenCompletions_;
  std::vector<std::pair<log::LogEntry, log::LogRef>> recoveredCompletions_;

  /// Minitransaction records seen during replay, deduped per (txId, object).
  /// At commit, kTxDecision records rebuild the resolved-tx fence table and
  /// kTxPrepare records *without* a matching decision re-install the
  /// version lock (docs/TRANSACTIONS.md: crash-safe orphan resolution).
  using TxRecordKey = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>;
  std::set<TxRecordKey> seenTxPrepares_;
  std::set<TxRecordKey> seenTxDecisions_;
  std::vector<std::pair<log::LogEntry, log::LogRef>> recoveredTxPrepares_;
  std::vector<std::pair<log::LogEntry, log::LogRef>> recoveredTxDecisions_;

  /// Worker slots pinned for the task's lifetime: RAMCloud recovery
  /// masters dedicate a replay thread and a replication/sync thread that
  /// busy-spin through the whole recovery — the source of Fig. 9a's ~92 %
  /// CPU and Fig. 10's latency bump on live reads.
  int replayWorker_ = -1;
  int syncWorker_ = -1;
  std::uint64_t workerEpoch_ = 0;
  void pinWorkers();
  void unpinWorkers();

  /// One entry per in-flight kGetRecoveryData RPC; `generation` lets a
  /// failover invalidate the superseded RPC's response when it eventually
  /// arrives (or times out).
  struct FetchState {
    node::NodeId backup = node::kInvalidNode;
    std::size_t sourceIdx = 0;
    std::uint64_t generation = 0;
  };
  std::unordered_map<std::size_t, FetchState> inFlightFetches_;
  std::uint64_t fetchGeneration_ = 0;
  std::unordered_set<node::NodeId> deadBackups_;

  std::size_t nextFetch_ = 0;
  int outstandingFetches_ = 0;
  std::deque<std::vector<log::LogEntry>> replayQueue_;
  bool replaying_ = false;
  int unackedSegments_ = 0;
  std::size_t segmentsFetched_ = 0;
  std::size_t segmentsReplayed_ = 0;
  std::uint64_t entriesReplayed_ = 0;
  bool drainStarted_ = false;
  bool committed_ = false;
  bool failed_ = false;
  bool aborted_ = false;

  /// Journal spans (0 / absent when tracing is off). taskSpan_ is the
  /// "partition_recovery" span covering the whole task; one segment_fetch
  /// span per segment (spanning replica fallbacks); one replay span per
  /// replaying_ burst — serial per actor by construction.
  std::uint64_t taskSpan_ = 0;
  std::uint64_t replaySpan_ = 0;
  std::unordered_map<std::size_t, std::uint64_t> fetchSpans_;

  std::shared_ptr<bool> alive_;  ///< guards continuations after abort
};

}  // namespace rc::server
