#include "server/backup_service.hpp"

#include <algorithm>
#include <utility>

#include "hash/object_map.hpp"
#include "server/master_service.hpp"

namespace rc::server {

BackupService::BackupService(
    node::Node& node, Dispatch& dispatch, net::RpcSystem& rpc,
    const ServiceDirectory& directory, BackupParams params,
    std::function<RecoveryPlanPtr(std::uint64_t)> planLookup)
    : node_(node),
      dispatch_(dispatch),
      rpc_(rpc),
      directory_(directory),
      params_(params),
      planLookup_(std::move(planLookup)) {}

void BackupService::handleRpc(const net::RpcRequest& req, node::NodeId /*from*/,
                              Responder respond) {
  switch (req.op) {
    case net::Opcode::kBackupWrite:
      onBackupWrite(req, std::move(respond));
      break;
    case net::Opcode::kGetRecoveryData:
      onGetRecoveryData(req, std::move(respond));
      break;
    case net::Opcode::kGetSegmentList:
      onGetSegmentList(req, std::move(respond));
      break;
    case net::Opcode::kBackupFree:
      onBackupFree(req, std::move(respond));
      break;
    default: {
      net::RpcResponse r;
      r.status = net::Status::kError;
      respond(std::move(r));
    }
  }
}

void BackupService::crash() {
  frames_.clear();
  unflushedBytes_ = 0;
  ackWaiters_.clear();
}

void BackupService::onBackupWrite(const net::RpcRequest& req,
                                  Responder respond) {
  const ServerId master = static_cast<ServerId>(req.a);
  const auto segId = static_cast<log::SegmentId>(req.b);
  const bool close = (req.c & 1) != 0;
  const bool oneSided = (req.c & 2) != 0;
  const std::uint64_t bytes = req.payloadBytes;

  auto apply = [this, master, segId, close, bytes,
                respond = std::move(respond)]() mutable {
    ++writesServiced_;

    const FrameKey key{master, segId};
    Frame& f = frames_[key];
    if (!f.data) {
      if (MasterService* m = directory_.masterOn(master)) {
        f.data = m->findSegment(segId);
      }
    }
    f.ackedBytes += bytes;
    bool gated = false;
    if (close && !f.closed) {
      f.closed = true;
      // Closed-but-unflushed bytes create buffer-pool pressure; open
      // heads are expected DRAM residents (paper SS II-B) and only gate
      // once the pool is exhausted outright (below).
      unflushedBytes_ += f.ackedBytes;
      maybeStartFlush(key);
      gated = unflushedBytes_ > params_.bufferPoolBytes;
    }
    // Past 2x the pool the backup is out of (non-volatile) buffer space
    // entirely: *every* write ack — open-head appends included — waits
    // for a flush to free room. This is how a stalled/degraded disk
    // becomes visible to clients: masters sync-replicating an update
    // block on the gated ack (Finding 5's disk bandwidth, coupled back
    // into the write tail). Transient backlog between 1x and 2x only
    // delays segment-close acks, which masters absorb asynchronously.
    gated = gated || unflushedBytes_ > 2 * params_.bufferPoolBytes;
    if (gated) {
      ++acksDelayed_;
      ackWaiters_.push_back(std::move(respond));
    } else {
      respond(net::RpcResponse{});
    }
  };

  if (oneSided) {
    // SS IX-B RDMA mode: the NIC deposits the bytes into the registered
    // frame; no backup CPU is consumed (durability gating still applies).
    node_.sim().schedule(sim::nsec(300), std::move(apply));
    return;
  }

  // Backup writes are serviced at dispatch priority (no worker): RAMCloud
  // keeps replication from queueing behind worker-holding updates, at the
  // price of dispatch-thread contention with normal requests (Finding 3).
  // The cycles are real CPU work, so they feed the power model too.
  const sim::Duration svc =
      params_.writeBaseServiceTime +
      sim::secondsF(static_cast<double>(bytes) /
                    (params_.bufferCopyGBps * 1e9));
  node_.cpu().chargeAuxiliaryWork(svc, {power::OpClass::kReplication, 0});
  dispatch_.enqueue(std::move(apply), svc);
}

void BackupService::maybeStartFlush(const FrameKey& key) {
  auto it = frames_.find(key);
  if (it == frames_.end()) return;
  Frame& f = it->second;
  if (!f.closed || f.flushing || f.onDisk) return;
  f.flushing = true;
  const std::uint64_t flushBytes = f.ackedBytes;
  std::uint64_t flushSpan = 0;
  if (journal_ != nullptr) {
    flushSpan = journal_->beginSpan("frame_flush", node_.id());
    journal_->addBytes(flushSpan, flushBytes);
  }
  node_.disk().write(
      flushBytes,
      [this, key, flushBytes, flushSpan] {
        if (journal_ != nullptr && flushSpan != 0) {
          journal_->endSpan(flushSpan);
        }
        auto it2 = frames_.find(key);
        if (it2 == frames_.end()) {
          // Frame freed while flushing; the pool accounting was already
          // fixed up by onBackupFree.
          return;
        }
        Frame& f2 = it2->second;
        f2.flushing = false;
        f2.onDisk = true;
        f2.inMemory = false;  // spilled: DRAM copy dropped (paper SS II-B)
        unflushedBytes_ -= std::min(unflushedBytes_, flushBytes);
        drainAckWaiters();
      },
      {power::OpClass::kReplication, 0});
}

void BackupService::drainAckWaiters() {
  while (!ackWaiters_.empty() &&
         unflushedBytes_ <= params_.bufferPoolBytes) {
    Responder r = std::move(ackWaiters_.front());
    ackWaiters_.pop_front();
    r(net::RpcResponse{});
  }
}

void BackupService::onGetRecoveryData(const net::RpcRequest& req,
                                      Responder respond) {
  const ServerId master = static_cast<ServerId>(req.a);
  const auto segId = static_cast<log::SegmentId>(req.b);
  const std::uint64_t planId = req.d;
  // On kGetRecoveryData the trace-span field carries the recovery master's
  // segment_fetch journal span, making the disk read its cross-node child.
  const std::uint64_t fetchSpan = req.traceSpan;

  dispatch_.enqueue([this, master, segId, planId, fetchSpan,
                     respond = std::move(respond)]() mutable {
    const FrameKey key{master, segId};
    auto it = frames_.find(key);
    if (it == frames_.end() || !it->second.data || it->second.corrupt) {
      net::RpcResponse r;
      r.status = net::Status::kError;
      respond(std::move(r));
      return;
    }
    RecoveryPlanPtr plan = planLookup_ ? planLookup_(planId) : nullptr;
    const std::uint64_t parts =
        plan && !plan->partitions.empty() ? plan->partitions.size() : 1;

    Frame& f = it->second;
    auto deliver = [this, key, parts, respond = std::move(respond)]() mutable {
      auto it2 = frames_.find(key);
      if (it2 == frames_.end()) {
        net::RpcResponse r;
        r.status = net::Status::kError;
        respond(std::move(r));
        return;
      }
      Frame& f2 = it2->second;
      // Count entries within the acked watermark for the filtering cost.
      std::uint64_t seen = 0;
      std::uint64_t count = 0;
      for (const auto& e : f2.data->entries()) {
        if (seen + e.sizeBytes > f2.ackedBytes) break;
        seen += e.sizeBytes;
        ++count;
      }
      const std::uint64_t share = f2.ackedBytes / parts;
      node_.cpu().acquireWorker([this, count, share,
                                 respond = std::move(respond)](int w) mutable {
        node_.cpu().tagWorker(w, {power::OpClass::kRecovery, 0});
        const std::uint64_t epoch = node_.cpu().epoch();
        const sim::Duration cpu =
            params_.filterPerEntry * static_cast<sim::Duration>(count);
        node_.sim().schedule(cpu, [this, epoch, w, count, share,
                                   respond = std::move(respond)]() mutable {
          if (node_.cpu().epoch() != epoch) return;
          node_.cpu().releaseWorker(w);
          net::RpcResponse r;
          r.a = count;
          r.payloadBytes = share;
          respond(std::move(r));
        });
      });
    };

    if (f.onDisk && !f.inMemory) {
      f.loadWaiters.push_back(std::move(deliver));
      if (!f.loading) {
        f.loading = true;
        std::uint64_t readSpan = 0;
        if (journal_ != nullptr) {
          readSpan = journal_->beginSpan(
              "segment_read", node_.id(), fetchSpan,
              plan != nullptr ? plan->recoveryId : 0);
          journal_->addBytes(readSpan, f.ackedBytes);
        }
        node_.disk().read(
            f.ackedBytes,
            [this, key, readSpan] {
              if (journal_ != nullptr && readSpan != 0) {
                journal_->endSpan(readSpan);
              }
              auto it3 = frames_.find(key);
              if (it3 == frames_.end()) return;
              Frame& f3 = it3->second;
              f3.loading = false;
              f3.inMemory = true;  // cached: later partitions skip the disk
              auto waiters = std::move(f3.loadWaiters);
              f3.loadWaiters.clear();
              for (auto& wfn : waiters) wfn();
            },
            {power::OpClass::kRecovery, 0});
      }
    } else {
      deliver();
    }
  });
}

void BackupService::onGetSegmentList(const net::RpcRequest& req,
                                     Responder respond) {
  const ServerId master = static_cast<ServerId>(req.a);
  dispatch_.enqueue([this, master, respond = std::move(respond)]() mutable {
    net::RpcResponse r;
    r.a = framesForMaster(master).size();
    respond(std::move(r));
  });
}

void BackupService::onBackupFree(const net::RpcRequest& req,
                                 Responder respond) {
  const ServerId master = static_cast<ServerId>(req.a);
  const auto segId = static_cast<log::SegmentId>(req.b);
  const bool allOfMaster = (req.c & 1) != 0;
  dispatch_.enqueue([this, master, segId, allOfMaster,
                     respond = std::move(respond)]() mutable {
    for (auto it = frames_.begin(); it != frames_.end();) {
      if (it->first.master == master &&
          (allOfMaster || it->first.segment == segId)) {
        const Frame& f = it->second;
        if (f.closed && !f.onDisk) {
          unflushedBytes_ -= std::min(unflushedBytes_, f.ackedBytes);
        }
        it = frames_.erase(it);
      } else {
        ++it;
      }
    }
    drainAckWaiters();
    respond(net::RpcResponse{});
  });
}

void BackupService::bulkInstallFrame(ServerId master,
                                     std::shared_ptr<const log::Segment> data,
                                     std::uint64_t ackedBytes, bool closed,
                                     bool onDisk) {
  Frame f;
  f.data = std::move(data);
  f.ackedBytes = ackedBytes;
  f.closed = closed;
  f.onDisk = onDisk;
  f.inMemory = !onDisk;
  frames_[FrameKey{master, f.data->id()}] = std::move(f);
}

std::vector<BackupService::FrameKey> BackupService::sortedFrameKeys() const {
  std::vector<FrameKey> keys;
  keys.reserve(frames_.size());
  for (const auto& [key, f] : frames_) keys.push_back(key);
  std::sort(keys.begin(), keys.end(), [](const FrameKey& a,
                                         const FrameKey& b) {
    return a.master != b.master ? a.master < b.master
                                : a.segment < b.segment;
  });
  return keys;
}

std::size_t BackupService::injectFrameLoss(std::size_t count,
                                           sim::Rng& rng) {
  std::vector<FrameKey> keys = sortedFrameKeys();
  std::size_t dropped = 0;
  while (dropped < count && !keys.empty()) {
    const std::size_t pick = rng.uniformInt(keys.size());
    const FrameKey key = keys[pick];
    keys.erase(keys.begin() + static_cast<std::ptrdiff_t>(pick));
    auto it = frames_.find(key);
    if (it == frames_.end()) continue;
    const Frame& f = it->second;
    if (f.closed && !f.onDisk) {
      unflushedBytes_ -= std::min(unflushedBytes_, f.ackedBytes);
    }
    // Pending loadWaiters see the frame vanish and answer kError.
    frames_.erase(it);
    ++dropped;
  }
  if (dropped > 0) drainAckWaiters();
  return dropped;
}

std::size_t BackupService::injectFrameCorruption(std::size_t count,
                                                 sim::Rng& rng) {
  std::vector<FrameKey> keys = sortedFrameKeys();
  std::erase_if(keys, [this](const FrameKey& k) {
    return frames_.at(k).corrupt;
  });
  std::size_t hit = 0;
  while (hit < count && !keys.empty()) {
    const std::size_t pick = rng.uniformInt(keys.size());
    const FrameKey key = keys[pick];
    keys.erase(keys.begin() + static_cast<std::ptrdiff_t>(pick));
    frames_[key].corrupt = true;
    ++corruptFrames_;
    ++hit;
  }
  return hit;
}

std::vector<BackupService::FrameInfo> BackupService::framesForMaster(
    ServerId master) const {
  std::vector<FrameInfo> out;
  for (const auto& [key, f] : frames_) {
    if (key.master == master) {
      out.push_back(FrameInfo{key.segment, f.ackedBytes, f.closed, f.onDisk});
    }
  }
  return out;
}

void BackupService::registerMetrics(obs::MetricRegistry& reg,
                                    const std::string& prefix) {
  reg.probeCounter(prefix + ".writes_serviced", "ops", [this] {
    return static_cast<double>(writesServiced_);
  });
  reg.probeCounter(prefix + ".acks_delayed", "ops", [this] {
    return static_cast<double>(acksDelayed_);
  });
  reg.probeGauge(prefix + ".unflushed_bytes", "bytes", [this] {
    return static_cast<double>(unflushedBytes_);
  });
  reg.probeGauge(prefix + ".frames_held", "items", [this] {
    return static_cast<double>(frames_.size());
  });
}

std::vector<log::LogEntry> BackupService::filteredEntries(
    ServerId master, log::SegmentId segment, const PartitionSpec& part) const {
  std::vector<log::LogEntry> out;
  auto it = frames_.find(FrameKey{master, segment});
  if (it == frames_.end() || !it->second.data || it->second.corrupt) {
    return out;
  }
  const Frame& f = it->second;
  // Recovery replay batches run thousands of entries; one upfront
  // reservation beats log2(n) growth reallocations per segment.
  out.reserve(f.data->entries().size());
  std::uint64_t seen = 0;
  for (const auto& e : f.data->entries()) {
    if (seen + e.sizeBytes > f.ackedBytes) break;
    seen += e.sizeBytes;
    const std::uint64_t h = hash::keyHash(hash::Key{e.tableId, e.keyId});
    if (part.covers(e.tableId, h)) out.push_back(e);
  }
  return out;
}

}  // namespace rc::server
