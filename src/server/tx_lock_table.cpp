#include "server/tx_lock_table.hpp"

#include <algorithm>

namespace rc::server {

const TxLockTable::Lock* TxLockTable::get(std::uint64_t tableId,
                                          std::uint64_t keyId) const {
  auto it = locks_.find(Key{tableId, keyId});
  return it == locks_.end() ? nullptr : &it->second;
}

bool TxLockTable::acquire(Lock lock) {
  const Key k{lock.tableId, lock.keyId};
  auto it = locks_.find(k);
  if (it != locks_.end() && it->second.txId != lock.txId) return false;
  locks_[k] = std::move(lock);
  return true;
}

bool TxLockTable::release(std::uint64_t tableId, std::uint64_t keyId,
                          std::uint64_t txId, Lock* out) {
  auto it = locks_.find(Key{tableId, keyId});
  if (it == locks_.end() || it->second.txId != txId) return false;
  if (out != nullptr) *out = it->second;
  locks_.erase(it);
  return true;
}

void TxLockTable::noteResolved(std::uint64_t txId, bool commit,
                               std::uint64_t clientId, std::uint64_t tableId,
                               std::uint64_t keyId, const log::LogRef& record,
                               bool recordOwnedByUnacked, sim::SimTime now) {
  Resolved& r = resolved_[txId];
  r.commit = commit;
  if (clientId != 0) r.clientId = clientId;
  r.resolvedAt = now;
  if (record.valid()) {
    r.records[{tableId, keyId}] = Resolved::Record{record, recordOwnedByUnacked};
  }
}

void TxLockTable::fenceAbort(std::uint64_t txId, sim::SimTime now) {
  auto it = resolved_.find(txId);
  if (it != resolved_.end()) return;  // already decided: keep that outcome
  Resolved r;
  r.commit = false;
  r.resolvedAt = now;
  resolved_[txId] = std::move(r);
}

int TxLockTable::voteStatus(std::uint64_t txId) const {
  if (holdsTx(txId)) return 1;
  auto it = resolved_.find(txId);
  if (it != resolved_.end()) return it->second.commit ? 2 : 3;
  return 0;
}

bool TxLockTable::isFencedAborted(std::uint64_t txId) const {
  auto it = resolved_.find(txId);
  return it != resolved_.end() && !it->second.commit;
}

bool TxLockTable::holdsTx(std::uint64_t txId) const {
  for (const auto& [k, lock] : locks_) {
    if (lock.txId == txId) return true;
  }
  return false;
}

std::vector<TxLockTable::Lock> TxLockTable::orphanedLocks(
    const std::function<bool(std::uint64_t)>& leaseValid) const {
  std::map<std::uint64_t, Lock> byTx;  // deduped, txId-ordered
  for (const auto& [k, lock] : locks_) {
    if (leaseValid && leaseValid(lock.clientId)) continue;
    byTx.emplace(lock.txId, lock);
  }
  std::vector<Lock> out;
  out.reserve(byTx.size());
  for (auto& [txId, lock] : byTx) out.push_back(std::move(lock));
  return out;
}

bool TxLockTable::adoptRecord(const log::LogRef& ref) {
  for (auto& [k, lock] : locks_) {
    if (lock.recordOwnedByUnacked && lock.prepareRecord == ref) {
      lock.recordOwnedByUnacked = false;
      return true;
    }
  }
  return false;
}

void TxLockTable::updatePrepareRef(std::uint64_t txId, std::uint64_t tableId,
                                   std::uint64_t keyId,
                                   const log::LogRef& newRef) {
  auto it = locks_.find(Key{tableId, keyId});
  if (it != locks_.end() && it->second.txId == txId) {
    it->second.prepareRecord = newRef;
  }
}

void TxLockTable::updateDecisionRef(std::uint64_t txId, std::uint64_t tableId,
                                    std::uint64_t keyId,
                                    const log::LogRef& newRef) {
  auto it = resolved_.find(txId);
  if (it == resolved_.end()) return;
  auto rec = it->second.records.find({tableId, keyId});
  if (rec != it->second.records.end()) rec->second.ref = newRef;
}

void TxLockTable::gcResolved(
    const std::function<bool(std::uint64_t)>& leaseValid, sim::SimTime now,
    sim::Duration minAge, std::vector<log::LogRef>* freed) {
  for (auto it = resolved_.begin(); it != resolved_.end();) {
    const Resolved& r = it->second;
    const bool leaseGone =
        r.clientId == 0 || !leaseValid || !leaseValid(r.clientId);
    if (!leaseGone || holdsTx(it->first) || now - r.resolvedAt < minAge) {
      ++it;
      continue;
    }
    for (const auto& [obj, rec] : r.records) {
      if (!rec.ownedByUnacked && freed != nullptr) freed->push_back(rec.ref);
    }
    it = resolved_.erase(it);
  }
}

std::vector<TxLockTable::Lock> TxLockTable::collectForRange(
    const std::function<bool(std::uint64_t, std::uint64_t)>& inRange) const {
  std::vector<Lock> out;
  for (const auto& [k, lock] : locks_) {
    if (inRange(lock.tableId, lock.keyId)) out.push_back(lock);
  }
  return out;
}

void TxLockTable::eraseForRange(
    const std::function<bool(std::uint64_t, std::uint64_t)>& inRange,
    std::vector<log::LogRef>* freed) {
  for (auto it = locks_.begin(); it != locks_.end();) {
    const Lock& lock = it->second;
    if (inRange(lock.tableId, lock.keyId)) {
      if (!lock.recordOwnedByUnacked && freed != nullptr) {
        freed->push_back(lock.prepareRecord);
      }
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
}

void TxLockTable::clear() {
  locks_.clear();
  resolved_.clear();
}

}  // namespace rc::server
