#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>

#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace rc::server {

struct DispatchParams {
  /// Dispatch-thread cost to poll, classify and hand off one request or
  /// reply. The dispatch core is modelled as always-busy (it polls); this
  /// only bounds its throughput and adds queueing delay under load.
  sim::Duration perItem = sim::nsec(400);
};

/// The RAMCloud dispatch thread of one server process: a serial hand-off
/// stage in front of the worker pool, shared by the master and backup
/// services on the node. (Its dedicated core's 100 % busy-poll is accounted
/// in CpuScheduler::pollingCores.)
class Dispatch {
 public:
  Dispatch(sim::Simulation& sim, DispatchParams params)
      : sim_(sim), params_(params) {}

  Dispatch(const Dispatch&) = delete;
  Dispatch& operator=(const Dispatch&) = delete;

  /// Serialise `fn` through the dispatch thread. `extraCost` is additional
  /// dispatch-thread CPU consumed by this item (e.g. backup-write buffer
  /// copies, which RAMCloud services at dispatch priority so replication
  /// can never deadlock against worker-holding updates — this is exactly
  /// the "CPU contention between replication requests and normal requests"
  /// of the paper's Finding 3).
  void enqueue(std::function<void()> fn, sim::Duration extraCost = 0) {
    if (!alive_) return;
    const sim::SimTime start = std::max(sim_.now(), nextFree_);
    nextFree_ = start + params_.perItem + extraCost;
    const std::uint64_t epoch = epoch_;
    sim_.scheduleAt(nextFree_, [this, epoch, fn = std::move(fn)] {
      if (epoch_ != epoch) return;
      fn();
    });
    ++itemsDispatched_;
  }

  /// Kill the process: queued hand-offs are dropped.
  void crash() {
    alive_ = false;
    ++epoch_;
  }

  void restart() {
    alive_ = true;
    ++epoch_;
    nextFree_ = sim_.now();
  }

  bool alive() const { return alive_; }
  std::uint64_t itemsDispatched() const { return itemsDispatched_; }

  /// Current backlog expressed as time until the dispatch thread is free.
  sim::Duration backlogDelay() const {
    return std::max<sim::Duration>(0, nextFree_ - sim_.now());
  }

 private:
  sim::Simulation& sim_;
  DispatchParams params_;
  sim::SimTime nextFree_ = 0;
  bool alive_ = true;
  std::uint64_t epoch_ = 0;
  std::uint64_t itemsDispatched_ = 0;
};

}  // namespace rc::server
