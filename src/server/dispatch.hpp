#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>

#include "obs/metric_registry.hpp"
#include "sim/inline_task.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace rc::server {

struct DispatchParams {
  /// Dispatch-thread cost to poll, classify and hand off one request or
  /// reply. The dispatch core is modelled as always-busy (it polls); this
  /// only bounds its throughput and adds queueing delay under load.
  sim::Duration perItem = sim::nsec(400);
};

/// The RAMCloud dispatch thread of one server process: a serial hand-off
/// stage in front of the worker pool, shared by the master and backup
/// services on the node. (Its dedicated core's 100 % busy-poll is accounted
/// in CpuScheduler::pollingCores.)
class Dispatch {
 public:
  Dispatch(sim::Simulation& sim, DispatchParams params)
      : sim_(sim), params_(params) {}

  Dispatch(const Dispatch&) = delete;
  Dispatch& operator=(const Dispatch&) = delete;

  /// Serialise `fn` through the dispatch thread. `extraCost` is additional
  /// dispatch-thread CPU consumed by this item (e.g. backup-write buffer
  /// copies, which RAMCloud services at dispatch priority so replication
  /// can never deadlock against worker-holding updates — this is exactly
  /// the "CPU contention between replication requests and normal requests"
  /// of the paper's Finding 3).
  void enqueue(sim::InlineTask fn, sim::Duration extraCost = 0) {
    if (!alive_) return;
    const sim::SimTime start = std::max(sim_.now(), nextFree_);
    nextFree_ = start + params_.perItem + extraCost;
    ++queued_;
    maxQueueDepth_ = std::max(maxQueueDepth_, queued_);
    // Items wait in the dispatch's own FIFO; the scheduled hand-off event
    // captures only (this, epoch), so it always fits an InlineTask's inline
    // buffer — no nested-closure overflow. Hand-off events fire at strictly
    // increasing times within an epoch, so the front item is always the one
    // whose event is firing.
    items_.push_back(std::move(fn));
    const std::uint64_t epoch = epoch_;
    sim_.scheduleAt(nextFree_, [this, epoch] {
      if (epoch_ != epoch) return;  // crashed/restarted: item was dropped
      if (queued_ > 0) --queued_;
      sim::InlineTask fn = std::move(items_.front());
      items_.pop_front();
      fn();
    });
    ++itemsDispatched_;
  }

  /// Kill the process: queued hand-offs are dropped.
  void crash() {
    alive_ = false;
    ++epoch_;
    queued_ = 0;
    items_.clear();
  }

  void restart() {
    alive_ = true;
    ++epoch_;
    nextFree_ = sim_.now();
    queued_ = 0;
    items_.clear();
  }

  bool alive() const { return alive_; }
  std::uint64_t itemsDispatched() const { return itemsDispatched_; }

  /// Items accepted but not yet handed off to their service stage.
  std::uint64_t queueDepth() const { return queued_; }
  std::uint64_t maxQueueDepth() const { return maxQueueDepth_; }

  /// Absolute time at which the dispatch thread frees up.
  sim::SimTime nextFreeAt() const { return nextFree_; }

  /// Current backlog expressed as time until the dispatch thread is free.
  sim::Duration backlogDelay() const {
    return std::max<sim::Duration>(0, nextFree_ - sim_.now());
  }

  /// Register this dispatch stage's metrics under `prefix`
  /// (e.g. "node3.dispatch").
  void registerMetrics(obs::MetricRegistry& reg, const std::string& prefix) {
    reg.probeCounter(prefix + ".items", "ops", [this] {
      return static_cast<double>(itemsDispatched_);
    });
    reg.probeGauge(prefix + ".queue_depth", "items",
                   [this] { return static_cast<double>(queued_); });
    reg.probeGauge(prefix + ".backlog_us", "us",
                   [this] { return sim::toMicros(backlogDelay()); });
  }

 private:
  sim::Simulation& sim_;
  DispatchParams params_;
  std::deque<sim::InlineTask> items_;
  sim::SimTime nextFree_ = 0;
  bool alive_ = true;
  std::uint64_t epoch_ = 0;
  std::uint64_t itemsDispatched_ = 0;
  std::uint64_t queued_ = 0;
  std::uint64_t maxQueueDepth_ = 0;
};

}  // namespace rc::server
