#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/metric_registry.hpp"
#include "sim/inline_task.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace rc::server {

/// Admission control at the dispatch queue (CoDel-style): requests are shed
/// with kOverloaded — cheap to reject, one dispatch poll, no worker — when
/// the load estimate has stayed above target for a sustained interval. The
/// load estimate is max(dispatch backlog, peak-hold EWMA of recent request
/// sojourn times), because worker-pool and log-lock queueing dominate
/// dispatch backlog long before the dispatch thread itself saturates.
///
/// Writes shed before reads (writeTarget < readTarget): a shed write costs
/// the client one bounce, while an admitted write holds the log lock and
/// replication pipeline that every other request then queues behind.
/// Priority tenants' targets are scaled up by priorityFactor, so best-effort
/// tenants shed first.
struct AdmissionParams {
  bool enabled = true;
  /// Sojourn target above which writes are shed (lowest rung).
  sim::Duration writeTarget = sim::msec(2);
  /// Sojourn target above which reads (and everything else) are shed.
  sim::Duration readTarget = sim::msec(8);
  /// Load must stay above target this long before shedding starts.
  sim::Duration interval = sim::msec(10);
  /// Priority tenants tolerate priorityFactor × the target before shedding.
  double priorityFactor = 4.0;
  /// Tenant ids treated as priority class (tiny list, linear scan).
  std::vector<int> priorityTenants;
  /// Bounds on the retry-after hint returned with kOverloaded.
  sim::Duration minRetryAfter = sim::msec(1);
  sim::Duration maxRetryAfter = sim::msec(50);
};

struct DispatchParams {
  /// Dispatch-thread cost to poll, classify and hand off one request or
  /// reply. The dispatch core is modelled as always-busy (it polls); this
  /// only bounds its throughput and adds queueing delay under load.
  sim::Duration perItem = sim::nsec(400);
  AdmissionParams admission;
};

/// The RAMCloud dispatch thread of one server process: a serial hand-off
/// stage in front of the worker pool, shared by the master and backup
/// services on the node. (Its dedicated core's 100 % busy-poll is accounted
/// in CpuScheduler::pollingCores.)
class Dispatch {
 public:
  Dispatch(sim::Simulation& sim, DispatchParams params)
      : sim_(sim), params_(params) {}

  Dispatch(const Dispatch&) = delete;
  Dispatch& operator=(const Dispatch&) = delete;

  /// Serialise `fn` through the dispatch thread. `extraCost` is additional
  /// dispatch-thread CPU consumed by this item (e.g. backup-write buffer
  /// copies, which RAMCloud services at dispatch priority so replication
  /// can never deadlock against worker-holding updates — this is exactly
  /// the "CPU contention between replication requests and normal requests"
  /// of the paper's Finding 3).
  void enqueue(sim::InlineTask fn, sim::Duration extraCost = 0) {
    if (!alive_) return;
    const sim::SimTime start = std::max(sim_.now(), nextFree_);
    nextFree_ = start + params_.perItem + extraCost;
    ++queued_;
    maxQueueDepth_ = std::max(maxQueueDepth_, queued_);
    // Items wait in the dispatch's own FIFO; the scheduled hand-off event
    // captures only (this, epoch), so it always fits an InlineTask's inline
    // buffer — no nested-closure overflow. Hand-off events fire at strictly
    // increasing times within an epoch, so the front item is always the one
    // whose event is firing.
    items_.push_back(std::move(fn));
    const std::uint64_t epoch = epoch_;
    sim_.scheduleAt(nextFree_, [this, epoch] {
      if (epoch_ != epoch) return;  // crashed/restarted: item was dropped
      if (queued_ > 0) --queued_;
      sim::InlineTask fn = std::move(items_.front());
      items_.pop_front();
      fn();
    });
    ++itemsDispatched_;
  }

  /// Kill the process: queued hand-offs are dropped.
  void crash() {
    alive_ = false;
    ++epoch_;
    queued_ = 0;
    items_.clear();
    resetAdmission();
  }

  void restart() {
    alive_ = true;
    ++epoch_;
    nextFree_ = sim_.now();
    queued_ = 0;
    items_.clear();
    resetAdmission();
  }

  // --- Admission control ---------------------------------------------------

  struct AdmitResult {
    bool admitted = true;
    sim::Duration retryAfter = 0;  // hint for kOverloaded responses
  };

  /// Admission decision for one data-plane request. Call before enqueue();
  /// control-plane, replication, ping and tx-decision traffic must bypass
  /// this entirely (shedding a lock-release would wedge the lock table).
  AdmitResult admit(bool isWrite, int tenant) {
    if (!params_.admission.enabled || !alive_) return {};
    const sim::SimTime now = sim_.now();
    const sim::Duration est = loadEstimate(now);
    const AdmissionParams& a = params_.admission;
    // The sustained-above gate runs against the lowest rung (writeTarget):
    // transient bursts shorter than `interval` are absorbed, CoDel-style.
    if (est <= a.writeTarget) {
      aboveSince_ = -1;
      setOverloaded(false);
      return {};
    }
    if (aboveSince_ < 0) aboveSince_ = now;
    if (now - aboveSince_ < a.interval) return {};
    sim::Duration target = isWrite ? a.writeTarget : a.readTarget;
    if (isPriority(tenant)) {
      target = static_cast<sim::Duration>(static_cast<double>(target) *
                                          a.priorityFactor);
    }
    if (est <= target) return {};
    setOverloaded(true);
    ++shedTotal_;
    if (isWrite) {
      ++shedWrites_;
    } else {
      ++shedReads_;
    }
    noteShedTenant(tenant);
    return {false, std::clamp(est, a.minRetryAfter, a.maxRetryAfter)};
  }

  /// Report the dispatch-to-completion sojourn of a finished request. This
  /// is the admission signal: worker-pool and log-lock queueing show up
  /// here, invisible to backlogDelay().
  void noteSojourn(sim::Duration d) {
    if (!params_.admission.enabled) return;
    decayTo(sim_.now());
    const double s = static_cast<double>(std::max<sim::Duration>(d, 0));
    // Peak-hold blend: jump to spikes immediately, relax via EWMA + the
    // idle half-life in decayTo(). Keeps the estimate honest when the
    // worker pool is wedged and completions become rare.
    sojournEwma_ = std::max(s, sojournEwma_ * (1.0 - kEwmaAlpha) +
                                   s * kEwmaAlpha);
  }

  /// Current load estimate (ns): max of dispatch backlog and the decayed
  /// sojourn EWMA.
  sim::Duration loadEstimate(sim::SimTime now) {
    decayTo(now);
    return std::max(backlogDelay(), static_cast<sim::Duration>(sojournEwma_));
  }

  /// True while the node is actively shedding — degradation hooks (cleaner
  /// deferral, repair-backoff stretch, exemplar brownout) key off this.
  bool underPressure() const { return overloaded_; }

  /// Fired on every shedding-state transition (enter=true / exit=false).
  std::function<void(bool)> onOverloadState;

  std::uint64_t shedTotal() const { return shedTotal_; }
  std::uint64_t shedReads() const { return shedReads_; }
  std::uint64_t shedWrites() const { return shedWrites_; }
  std::uint64_t overloadEnters() const { return overloadEnters_; }

  bool alive() const { return alive_; }
  std::uint64_t itemsDispatched() const { return itemsDispatched_; }

  /// Items accepted but not yet handed off to their service stage.
  std::uint64_t queueDepth() const { return queued_; }
  std::uint64_t maxQueueDepth() const { return maxQueueDepth_; }

  /// Absolute time at which the dispatch thread frees up.
  sim::SimTime nextFreeAt() const { return nextFree_; }

  /// Current backlog expressed as time until the dispatch thread is free.
  sim::Duration backlogDelay() const {
    return std::max<sim::Duration>(0, nextFree_ - sim_.now());
  }

  /// Register this dispatch stage's metrics under `prefix`
  /// (e.g. "node3.dispatch").
  void registerMetrics(obs::MetricRegistry& reg, const std::string& prefix) {
    reg.probeCounter(prefix + ".items", "ops", [this] {
      return static_cast<double>(itemsDispatched_);
    });
    reg.probeGauge(prefix + ".queue_depth", "items",
                   [this] { return static_cast<double>(queued_); });
    reg.probeGauge(prefix + ".backlog_us", "us",
                   [this] { return sim::toMicros(backlogDelay()); });
  }

  /// Register admission/shed metrics under `prefix` (e.g. "node3.dispatch").
  /// Per-tenant shed counters appear lazily under `prefix + ".shed.tenant<k>"`
  /// the first time tenant k is shed.
  void registerOverloadMetrics(obs::MetricRegistry& reg,
                               const std::string& prefix) {
    metricReg_ = &reg;
    metricPrefix_ = prefix;
    reg.probeCounter(prefix + ".shed.total", "ops", [this] {
      return static_cast<double>(shedTotal_);
    });
    reg.probeCounter(prefix + ".shed.reads", "ops", [this] {
      return static_cast<double>(shedReads_);
    });
    reg.probeCounter(prefix + ".shed.writes", "ops", [this] {
      return static_cast<double>(shedWrites_);
    });
    reg.probeCounter(prefix + ".shed.overload_enters", "count", [this] {
      return static_cast<double>(overloadEnters_);
    });
    reg.probeGauge(prefix + ".shed.overloaded", "bool",
                   [this] { return overloaded_ ? 1.0 : 0.0; });
    reg.probeGauge(prefix + ".load_estimate_us", "us", [this] {
      return sim::toMicros(std::max(
          backlogDelay(), static_cast<sim::Duration>(sojournEwma_)));
    });
  }

 private:
  static constexpr double kEwmaAlpha = 0.2;

  bool isPriority(int tenant) const {
    for (int t : params_.admission.priorityTenants) {
      if (t == tenant) return true;
    }
    return false;
  }

  /// Halve the sojourn EWMA once per admission interval of elapsed time, so
  /// a quiet node forgets its last storm.
  void decayTo(sim::SimTime now) {
    const sim::Duration interval = params_.admission.interval;
    if (interval <= 0 || now <= lastDecay_) {
      if (lastDecay_ == 0) lastDecay_ = now;
      return;
    }
    const auto halvings = (now - lastDecay_) / interval;
    if (halvings <= 0) return;
    lastDecay_ += halvings * interval;
    if (halvings >= 60) {
      sojournEwma_ = 0;
    } else {
      sojournEwma_ *= 1.0 / static_cast<double>(1ULL << halvings);
    }
  }

  void setOverloaded(bool v) {
    if (overloaded_ == v) return;
    overloaded_ = v;
    if (v) ++overloadEnters_;
    if (onOverloadState) onOverloadState(v);
  }

  void noteShedTenant(int tenant) {
    auto [it, inserted] = shedByTenant_.try_emplace(tenant, 0);
    ++it->second;
    if (inserted && metricReg_ != nullptr) {
      const std::uint64_t* cell = &it->second;
      metricReg_->probeCounter(
          metricPrefix_ + ".shed.tenant" + std::to_string(tenant), "ops",
          [cell] { return static_cast<double>(*cell); });
    }
  }

  void resetAdmission() {
    sojournEwma_ = 0;
    aboveSince_ = -1;
    lastDecay_ = sim_.now();
    setOverloaded(false);
  }

  sim::Simulation& sim_;
  DispatchParams params_;
  std::deque<sim::InlineTask> items_;
  sim::SimTime nextFree_ = 0;
  bool alive_ = true;
  std::uint64_t epoch_ = 0;
  std::uint64_t itemsDispatched_ = 0;
  std::uint64_t queued_ = 0;
  std::uint64_t maxQueueDepth_ = 0;

  // Admission state. shedByTenant_ is a std::map so per-tenant counter cells
  // are stable pointers and iteration order is deterministic.
  double sojournEwma_ = 0;
  sim::SimTime aboveSince_ = -1;
  sim::SimTime lastDecay_ = 0;
  bool overloaded_ = false;
  std::uint64_t shedTotal_ = 0;
  std::uint64_t shedReads_ = 0;
  std::uint64_t shedWrites_ = 0;
  std::uint64_t overloadEnters_ = 0;
  std::map<int, std::uint64_t> shedByTenant_;
  obs::MetricRegistry* metricReg_ = nullptr;
  std::string metricPrefix_;
};

}  // namespace rc::server
