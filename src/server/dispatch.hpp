#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metric_registry.hpp"
#include "sim/inline_task.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"
#include "sim/token_bucket.hpp"

namespace rc::server {

/// Admission control at the dispatch queue (CoDel-style): requests are shed
/// with kOverloaded — cheap to reject, one dispatch poll, no worker — when
/// the load estimate has stayed above target for a sustained interval. The
/// load estimate is max(dispatch backlog, peak-hold EWMA of recent request
/// sojourn times), because worker-pool and log-lock queueing dominate
/// dispatch backlog long before the dispatch thread itself saturates.
///
/// Writes shed before reads (writeTarget < readTarget): a shed write costs
/// the client one bounce, while an admitted write holds the log lock and
/// replication pipeline that every other request then queues behind.
/// Priority tenants' targets are scaled up by priorityFactor, so best-effort
/// tenants shed first.
struct AdmissionParams {
  bool enabled = true;
  /// Sojourn target above which writes are shed (lowest rung).
  sim::Duration writeTarget = sim::msec(2);
  /// Sojourn target above which reads (and everything else) are shed.
  sim::Duration readTarget = sim::msec(8);
  /// Load must stay above target this long before shedding starts.
  sim::Duration interval = sim::msec(10);
  /// Priority tenants tolerate priorityFactor × the target before shedding.
  double priorityFactor = 4.0;
  /// Tenant ids treated as priority class (tiny list, linear scan).
  std::vector<int> priorityTenants;
  /// Bounds on the retry-after hint returned with kOverloaded.
  sim::Duration minRetryAfter = sim::msec(1);
  sim::Duration maxRetryAfter = sim::msec(50);
};

struct DispatchParams {
  /// Dispatch-thread cost to poll, classify and hand off one request or
  /// reply. The dispatch core is modelled as always-busy (it polls); this
  /// only bounds its throughput and adds queueing delay under load.
  sim::Duration perItem = sim::nsec(400);
  AdmissionParams admission;
};

/// One tenant's contract at the per-tenant QoS stage (docs/WORKLOADS.md):
/// a weighted token bucket policing the tenant's *admitted* rate on this
/// node, checked before the CoDel gate so a surging tenant is bounced at
/// its own rate instead of inflating everyone's sojourn first.
struct QosTenantPolicy {
  /// Name used in metric paths ("node<N>.dispatch.qos.<name>.*").
  std::string name;
  /// RPC tenant tags sharing this bucket. A tenant's read and update SLO
  /// classes carry distinct tags (dense class id + 1, docs/SLO.md); list
  /// both so the bucket covers the tenant, not one op class.
  std::vector<int> tags;
  /// Admitted requests/sec on this node. > 0: absolute cap. 0: derived as
  /// weight/sum(weights) of QosParams::nodeRatePerSec.
  double ratePerSec = 0;
  double weight = 0;
  double burst = 64;  ///< bucket depth (requests)
  /// Also a CoDel priority tenant: when the aggregate gate does shed, this
  /// tenant tolerates priorityFactor x the sojourn target (sheds last).
  bool priority = false;
};

struct QosParams {
  bool enabled = false;
  /// Capacity split among weight-based policies (ratePerSec == 0).
  double nodeRatePerSec = 0;
  std::vector<QosTenantPolicy> tenants;
  /// A throttle after this much clean time starts a new episode (the unit
  /// rcdiag report aggregates).
  sim::Duration episodeGap = sim::msec(100);
};

/// The RAMCloud dispatch thread of one server process: a serial hand-off
/// stage in front of the worker pool, shared by the master and backup
/// services on the node. (Its dedicated core's 100 % busy-poll is accounted
/// in CpuScheduler::pollingCores.)
class Dispatch {
 public:
  Dispatch(sim::Simulation& sim, DispatchParams params)
      : sim_(sim), params_(params) {}

  Dispatch(const Dispatch&) = delete;
  Dispatch& operator=(const Dispatch&) = delete;

  /// Serialise `fn` through the dispatch thread. `extraCost` is additional
  /// dispatch-thread CPU consumed by this item (e.g. backup-write buffer
  /// copies, which RAMCloud services at dispatch priority so replication
  /// can never deadlock against worker-holding updates — this is exactly
  /// the "CPU contention between replication requests and normal requests"
  /// of the paper's Finding 3).
  void enqueue(sim::InlineTask fn, sim::Duration extraCost = 0) {
    if (!alive_) return;
    const sim::SimTime start = std::max(sim_.now(), nextFree_);
    nextFree_ = start + params_.perItem + extraCost;
    ++queued_;
    maxQueueDepth_ = std::max(maxQueueDepth_, queued_);
    // Items wait in the dispatch's own FIFO; the scheduled hand-off event
    // captures only (this, epoch), so it always fits an InlineTask's inline
    // buffer — no nested-closure overflow. Hand-off events fire at strictly
    // increasing times within an epoch, so the front item is always the one
    // whose event is firing.
    items_.push_back(std::move(fn));
    const std::uint64_t epoch = epoch_;
    sim_.scheduleAt(nextFree_, [this, epoch] {
      if (epoch_ != epoch) return;  // crashed/restarted: item was dropped
      if (queued_ > 0) --queued_;
      sim::InlineTask fn = std::move(items_.front());
      items_.pop_front();
      fn();
    });
    ++itemsDispatched_;
  }

  /// Kill the process: queued hand-offs are dropped.
  void crash() {
    alive_ = false;
    ++epoch_;
    queued_ = 0;
    items_.clear();
    resetAdmission();
  }

  void restart() {
    alive_ = true;
    ++epoch_;
    nextFree_ = sim_.now();
    queued_ = 0;
    items_.clear();
    resetAdmission();
  }

  // --- Admission control ---------------------------------------------------

  struct AdmitResult {
    bool admitted = true;
    sim::Duration retryAfter = 0;  // hint for kOverloaded responses
  };

  /// Install (or replace) the per-tenant QoS stage. Callable after
  /// construction, once tenant tags are known (SLO classes declared).
  /// Policies with priority=true are also appended to the CoDel gate's
  /// priorityTenants, so the two layers compose: the bucket polices each
  /// tenant's rate, the sojourn gate protects the aggregate and sheds
  /// best-effort tenants first.
  void configureQos(const QosParams& qos) {
    qos_ = qos;
    slots_.clear();
    tagToSlot_.clear();
    double weightSum = 0;
    for (const QosTenantPolicy& p : qos.tenants) {
      if (p.ratePerSec <= 0) weightSum += p.weight;
    }
    for (const QosTenantPolicy& p : qos.tenants) {
      double rate = p.ratePerSec;
      if (rate <= 0 && p.weight > 0 && weightSum > 0) {
        rate = qos.nodeRatePerSec * p.weight / weightSum;
      }
      slots_.push_back(std::make_unique<QosSlot>(p.name,
                                                 sim::TokenBucket(rate, p.burst)));
      for (int tag : p.tags) {
        if (tag < 0) continue;
        if (tagToSlot_.size() <= static_cast<std::size_t>(tag)) {
          tagToSlot_.resize(static_cast<std::size_t>(tag) + 1, -1);
        }
        tagToSlot_[static_cast<std::size_t>(tag)] =
            static_cast<int>(slots_.size()) - 1;
      }
      if (p.priority) {
        for (int tag : p.tags) {
          params_.admission.priorityTenants.push_back(tag);
        }
      }
    }
  }

  /// Per-policy counters, indexed as in QosParams::tenants; the cluster's
  /// aggregate probes and rcdiag's episode summary read these.
  struct QosSlot {
    QosSlot(std::string n, sim::TokenBucket b)
        : name(std::move(n)), bucket(std::move(b)) {}
    std::string name;
    sim::TokenBucket bucket;
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t throttled = 0;
    std::uint64_t episodes = 0;
    sim::SimTime lastThrottleAt = -1;
  };
  std::size_t qosSlotCount() const { return slots_.size(); }
  const QosSlot& qosSlot(std::size_t i) const { return *slots_[i]; }

  /// Fired when a tenant's first throttle after a clean gap starts a new
  /// throttle episode (the cluster journals it).
  std::function<void(const std::string& tenantName)> onQosEpisode;

  /// Admission decision for one data-plane request. Call before enqueue();
  /// control-plane, replication, ping and tx-decision traffic must bypass
  /// this entirely (shedding a lock-release would wedge the lock table).
  /// The per-tenant QoS bucket is checked first — policing one tenant must
  /// not wait for the aggregate sojourn gate to notice pressure.
  AdmitResult admit(bool isWrite, int tenant) {
    if (!alive_) return {};
    if (qos_.enabled && tenant >= 0 &&
        static_cast<std::size_t>(tenant) < tagToSlot_.size() &&
        tagToSlot_[static_cast<std::size_t>(tenant)] >= 0) {
      QosSlot& s =
          *slots_[static_cast<std::size_t>(
              tagToSlot_[static_cast<std::size_t>(tenant)])];
      ++s.offered;
      const sim::SimTime now = sim_.now();
      if (!s.bucket.tryAcquire(now)) {
        ++s.throttled;
        if (s.lastThrottleAt < 0 || now - s.lastThrottleAt > qos_.episodeGap) {
          ++s.episodes;
          if (onQosEpisode) onQosEpisode(s.name);
        }
        s.lastThrottleAt = now;
        const AdmissionParams& a = params_.admission;
        return {false, std::clamp(s.bucket.timeToToken(now), a.minRetryAfter,
                                  a.maxRetryAfter)};
      }
      ++s.admitted;
    }
    if (!params_.admission.enabled) return {};
    const sim::SimTime now = sim_.now();
    const sim::Duration est = loadEstimate(now);
    const AdmissionParams& a = params_.admission;
    // The sustained-above gate runs against the lowest rung (writeTarget):
    // transient bursts shorter than `interval` are absorbed, CoDel-style.
    if (est <= a.writeTarget) {
      aboveSince_ = -1;
      setOverloaded(false);
      return {};
    }
    if (aboveSince_ < 0) aboveSince_ = now;
    if (now - aboveSince_ < a.interval) return {};
    sim::Duration target = isWrite ? a.writeTarget : a.readTarget;
    if (isPriority(tenant)) {
      target = static_cast<sim::Duration>(static_cast<double>(target) *
                                          a.priorityFactor);
    }
    if (est <= target) return {};
    setOverloaded(true);
    ++shedTotal_;
    if (isWrite) {
      ++shedWrites_;
    } else {
      ++shedReads_;
    }
    noteShedTenant(tenant);
    return {false, std::clamp(est, a.minRetryAfter, a.maxRetryAfter)};
  }

  /// Report the dispatch-to-completion sojourn of a finished request. This
  /// is the admission signal: worker-pool and log-lock queueing show up
  /// here, invisible to backlogDelay().
  void noteSojourn(sim::Duration d) {
    if (!params_.admission.enabled) return;
    decayTo(sim_.now());
    const double s = static_cast<double>(std::max<sim::Duration>(d, 0));
    // Peak-hold blend: jump to spikes immediately, relax via EWMA + the
    // idle half-life in decayTo(). Keeps the estimate honest when the
    // worker pool is wedged and completions become rare.
    sojournEwma_ = std::max(s, sojournEwma_ * (1.0 - kEwmaAlpha) +
                                   s * kEwmaAlpha);
  }

  /// Current load estimate (ns): max of dispatch backlog and the decayed
  /// sojourn EWMA.
  sim::Duration loadEstimate(sim::SimTime now) {
    decayTo(now);
    return std::max(backlogDelay(), static_cast<sim::Duration>(sojournEwma_));
  }

  /// True while the node is actively shedding — degradation hooks (cleaner
  /// deferral, repair-backoff stretch, exemplar brownout) key off this.
  bool underPressure() const { return overloaded_; }

  /// Fired on every shedding-state transition (enter=true / exit=false).
  std::function<void(bool)> onOverloadState;

  std::uint64_t shedTotal() const { return shedTotal_; }
  std::uint64_t shedReads() const { return shedReads_; }
  std::uint64_t shedWrites() const { return shedWrites_; }
  std::uint64_t overloadEnters() const { return overloadEnters_; }

  bool alive() const { return alive_; }
  std::uint64_t itemsDispatched() const { return itemsDispatched_; }

  /// Items accepted but not yet handed off to their service stage.
  std::uint64_t queueDepth() const { return queued_; }
  std::uint64_t maxQueueDepth() const { return maxQueueDepth_; }

  /// Absolute time at which the dispatch thread frees up.
  sim::SimTime nextFreeAt() const { return nextFree_; }

  /// Current backlog expressed as time until the dispatch thread is free.
  sim::Duration backlogDelay() const {
    return std::max<sim::Duration>(0, nextFree_ - sim_.now());
  }

  /// Register this dispatch stage's metrics under `prefix`
  /// (e.g. "node3.dispatch").
  void registerMetrics(obs::MetricRegistry& reg, const std::string& prefix) {
    reg.probeCounter(prefix + ".items", "ops", [this] {
      return static_cast<double>(itemsDispatched_);
    });
    reg.probeGauge(prefix + ".queue_depth", "items",
                   [this] { return static_cast<double>(queued_); });
    reg.probeGauge(prefix + ".backlog_us", "us",
                   [this] { return sim::toMicros(backlogDelay()); });
  }

  /// Register admission/shed metrics under `prefix` (e.g. "node3.dispatch").
  /// Per-tenant shed counters appear lazily under `prefix + ".shed.tenant<k>"`
  /// the first time tenant k is shed.
  void registerOverloadMetrics(obs::MetricRegistry& reg,
                               const std::string& prefix) {
    metricReg_ = &reg;
    metricPrefix_ = prefix;
    reg.probeCounter(prefix + ".shed.total", "ops", [this] {
      return static_cast<double>(shedTotal_);
    });
    reg.probeCounter(prefix + ".shed.reads", "ops", [this] {
      return static_cast<double>(shedReads_);
    });
    reg.probeCounter(prefix + ".shed.writes", "ops", [this] {
      return static_cast<double>(shedWrites_);
    });
    reg.probeCounter(prefix + ".shed.overload_enters", "count", [this] {
      return static_cast<double>(overloadEnters_);
    });
    reg.probeGauge(prefix + ".shed.overloaded", "bool",
                   [this] { return overloaded_ ? 1.0 : 0.0; });
    reg.probeGauge(prefix + ".load_estimate_us", "us", [this] {
      return sim::toMicros(std::max(
          backlogDelay(), static_cast<sim::Duration>(sojournEwma_)));
    });
  }

  /// Register the per-tenant QoS counters under
  /// `prefix + ".qos.<policy-name>.{offered,admitted,throttled,episodes}"`.
  /// Call after configureQos; slots are heap-stable so the probe lambdas
  /// may capture them directly.
  void registerQosMetrics(obs::MetricRegistry& reg,
                          const std::string& prefix) {
    for (const auto& slot : slots_) {
      const QosSlot* s = slot.get();
      const std::string base = prefix + ".qos." + s->name;
      reg.probeCounter(base + ".offered", "ops",
                       [s] { return static_cast<double>(s->offered); });
      reg.probeCounter(base + ".admitted", "ops",
                       [s] { return static_cast<double>(s->admitted); });
      reg.probeCounter(base + ".throttled", "ops",
                       [s] { return static_cast<double>(s->throttled); });
      reg.probeCounter(base + ".episodes", "count",
                       [s] { return static_cast<double>(s->episodes); });
    }
  }

 private:
  static constexpr double kEwmaAlpha = 0.2;

  bool isPriority(int tenant) const {
    for (int t : params_.admission.priorityTenants) {
      if (t == tenant) return true;
    }
    return false;
  }

  /// Halve the sojourn EWMA once per admission interval of elapsed time, so
  /// a quiet node forgets its last storm.
  void decayTo(sim::SimTime now) {
    const sim::Duration interval = params_.admission.interval;
    if (interval <= 0 || now <= lastDecay_) {
      if (lastDecay_ == 0) lastDecay_ = now;
      return;
    }
    const auto halvings = (now - lastDecay_) / interval;
    if (halvings <= 0) return;
    lastDecay_ += halvings * interval;
    if (halvings >= 60) {
      sojournEwma_ = 0;
    } else {
      sojournEwma_ *= 1.0 / static_cast<double>(1ULL << halvings);
    }
  }

  void setOverloaded(bool v) {
    if (overloaded_ == v) return;
    overloaded_ = v;
    if (v) ++overloadEnters_;
    if (onOverloadState) onOverloadState(v);
  }

  void noteShedTenant(int tenant) {
    auto [it, inserted] = shedByTenant_.try_emplace(tenant, 0);
    ++it->second;
    if (inserted && metricReg_ != nullptr) {
      const std::uint64_t* cell = &it->second;
      metricReg_->probeCounter(
          metricPrefix_ + ".shed.tenant" + std::to_string(tenant), "ops",
          [cell] { return static_cast<double>(*cell); });
    }
  }

  void resetAdmission() {
    sojournEwma_ = 0;
    aboveSince_ = -1;
    lastDecay_ = sim_.now();
    setOverloaded(false);
  }

  sim::Simulation& sim_;
  DispatchParams params_;
  std::deque<sim::InlineTask> items_;
  sim::SimTime nextFree_ = 0;
  bool alive_ = true;
  std::uint64_t epoch_ = 0;
  std::uint64_t itemsDispatched_ = 0;
  std::uint64_t queued_ = 0;
  std::uint64_t maxQueueDepth_ = 0;

  // Admission state. shedByTenant_ is a std::map so per-tenant counter cells
  // are stable pointers and iteration order is deterministic.
  double sojournEwma_ = 0;
  sim::SimTime aboveSince_ = -1;
  sim::SimTime lastDecay_ = 0;
  bool overloaded_ = false;
  std::uint64_t shedTotal_ = 0;
  std::uint64_t shedReads_ = 0;
  std::uint64_t shedWrites_ = 0;
  std::uint64_t overloadEnters_ = 0;
  std::map<int, std::uint64_t> shedByTenant_;
  obs::MetricRegistry* metricReg_ = nullptr;
  std::string metricPrefix_;

  // Per-tenant QoS stage (configureQos). tagToSlot_ is a dense tag->index
  // table (tags are small SLO-class ids); slots are heap-allocated so the
  // metric probes hold stable pointers.
  QosParams qos_;
  std::vector<std::unique_ptr<QosSlot>> slots_;
  std::vector<int> tagToSlot_;
};

}  // namespace rc::server
