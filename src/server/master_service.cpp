#include "server/master_service.hpp"

#include <algorithm>
#include <cmath>
#include <atomic>
#include <cstdio>
#include <utility>

#include "server/backup_service.hpp"
#include "server/recovery_task.hpp"

namespace rc::server {

MasterService::MasterService(
    node::Node& node, Dispatch& dispatch, net::RpcSystem& rpc,
    const ServiceDirectory& directory, MasterParams params,
    std::function<RecoveryPlanPtr(std::uint64_t)> planLookup,
    node::NodeId coordinatorNode, sim::Rng rng)
    : node_(node),
      dispatch_(dispatch),
      rpc_(rpc),
      directory_(directory),
      params_(params),
      planLookup_(std::move(planLookup)),
      coordinator_(coordinatorNode),
      rng_(rng),
      log_(params_.log),
      cleaner_(
          log_,
          [this](const log::LogEntry& e, log::LogRef newRef) {
            if (e.type == log::EntryType::kCompletion) {
              // The backing record moved; keep the suppression table's ref
              // fresh so GC marks the relocated copy dead, not the old slot.
              unacked_.updateRecordRef(e.clientId, e.rpcSeq, newRef);
              return;
            }
            if (e.type == log::EntryType::kTxPrepare) {
              // Both the suppression table and the lock table may point at
              // a prepare record; refresh whichever still references it.
              if (e.clientId != 0) {
                unacked_.updateRecordRef(e.clientId, e.rpcSeq, newRef);
              }
              txLocks_.updatePrepareRef(e.txId, e.tableId, e.keyId, newRef);
              return;
            }
            if (e.type == log::EntryType::kTxDecision) {
              if (e.clientId != 0) {
                unacked_.updateRecordRef(e.clientId, e.rpcSeq, newRef);
              }
              txLocks_.updateDecisionRef(e.txId, e.tableId, e.keyId, newRef);
              return;
            }
            if (e.type != log::EntryType::kObject) return;
            const hash::Key k{e.tableId, e.keyId};
            if (auto* loc = map_.getMutable(k);
                loc != nullptr && loc->version == e.version) {
              loc->ref = newRef;
            }
          },
          params.cleanerPolicy),
      replicaMgr_(
          node.sim(), rpc, node.id(), params_.replication,
          [this] { return backupCandidates(); },
          [this](log::SegmentId id) -> const log::Segment* {
            auto s = findSegment(id);
            return s.get();
          },
          rng_.fork(0xbac)) {
  replicaMgr_.stillAlive = [this] { return node_.cpu().poweredOn(); };
  replicaMgr_.underPressure = [this] { return dispatch_.underPressure(); };
  log_.onSegmentOpened = [this](log::Segment& seg) {
    replicaMgr_.onSegmentOpened(seg);
  };
  log_.onSegmentSealed = [this](log::Segment& seg) {
    if (!bulkMode_) replicaMgr_.sealSegment(seg);
  };
}

MasterService::~MasterService() = default;

std::vector<node::NodeId> MasterService::backupCandidates() const {
  std::vector<node::NodeId> out;
  if (directory_.liveBackups) {
    out = directory_.liveBackups();
    std::erase(out, node_.id());
  }
  return out;
}

int MasterService::concurrentStreams() const {
  const sim::SimTime cutoff = node_.sim().now() - params_.concurrencyWindow;
  int n = 0;
  for (auto it = recentStreams_.begin(); it != recentStreams_.end();) {
    if (it->second < cutoff) {
      it = recentStreams_.erase(it);
    } else {
      ++n;
      ++it;
    }
  }
  return n;
}

void MasterService::noteStream(node::NodeId from) {
  recentStreams_[from] = node_.sim().now();
}

void MasterService::handleRpc(const net::RpcRequest& req, node::NodeId from,
                              Responder respond) {
  if (req.op == net::Opcode::kRead || req.op == net::Opcode::kWrite ||
      req.op == net::Opcode::kRemove || req.op == net::Opcode::kTxPrepare ||
      req.op == net::Opcode::kTxDecision) {
    noteStream(from);
    // Span opened at client issue time: the elapsed stage is the
    // client->server network + transport leg.
    stampTrace(req.traceSpan, obs::TimeTrace::Stage::kNetworkRequest);
  }
  // Admission control: shed data-plane work before it costs a worker.
  // Exempt: pings and control plane (cheap / load-shedding them hides
  // failures), replication+recovery (rf safety), and kTxDecision — shedding
  // a lock release would wedge the lock table (docs/OVERLOAD.md).
  switch (req.op) {
    case net::Opcode::kRead:
    case net::Opcode::kWrite:
    case net::Opcode::kRemove:
    case net::Opcode::kTxPrepare:
    case net::Opcode::kScan:
    case net::Opcode::kMultiRead:
    case net::Opcode::kMultiWrite: {
      const bool isWrite = req.op != net::Opcode::kRead &&
                           req.op != net::Opcode::kScan &&
                           req.op != net::Opcode::kMultiRead;
      const Dispatch::AdmitResult ar =
          dispatch_.admit(isWrite, static_cast<int>(req.tenant));
      if (!ar.admitted) {
        ++stats_.shedRequests;
        // One dispatch poll to emit the rejection: cheap, but not free.
        dispatch_.enqueue([respond = std::move(respond),
                           retryAfter = ar.retryAfter]() mutable {
          net::RpcResponse r;
          r.status = net::Status::kOverloaded;
          r.a = static_cast<std::uint64_t>(retryAfter);
          respond(std::move(r));
        });
        return;
      }
      break;
    }
    default:
      break;
  }
  switch (req.op) {
    case net::Opcode::kPing: {
      // Pings are answered by the dispatch thread itself.
      dispatch_.enqueue([respond = std::move(respond)]() mutable {
        respond(net::RpcResponse{});
      });
      break;
    }
    case net::Opcode::kRead:
      onRead(req, std::move(respond));
      break;
    case net::Opcode::kWrite:
      onWrite(req, std::move(respond));
      break;
    case net::Opcode::kTxPrepare:
      onTxPrepare(req, std::move(respond));
      break;
    case net::Opcode::kTxDecision:
      onTxDecision(req, std::move(respond));
      break;
    case net::Opcode::kTxVote:
      onTxVote(req, std::move(respond));
      break;
    case net::Opcode::kRemove:
      onRemove(req, std::move(respond));
      break;
    case net::Opcode::kScan:
      onScan(req, std::move(respond));
      break;
    case net::Opcode::kMultiRead:
    case net::Opcode::kMultiWrite:
      onMultiOp(req, std::move(respond));
      break;
    case net::Opcode::kStartRecovery:
      onStartRecovery(req, std::move(respond));
      break;
    case net::Opcode::kServerListUpdate:
      onServerListUpdate(req, std::move(respond));
      break;
    case net::Opcode::kMigrateTablet:
      onMigrateTablet(req, std::move(respond));
      break;
    case net::Opcode::kMigrationData:
      onMigrationData(req, from, std::move(respond));
      break;
    default: {
      net::RpcResponse r;
      r.status = net::Status::kError;
      respond(std::move(r));
    }
  }
}

void MasterService::crash() {
  for (auto& rt : recoveries_) rt->abort();
  recoveries_.clear();
  for (auto& mt : migrations_) mt->abort();
  migrations_.clear();
  logLock_.reset();
  cleanerActive_ = false;
  // DRAM state dies with the node; suppression state is rebuilt from the
  // replicated kCompletion records by whichever master recovers the tablets,
  // and the tx lock table from the replicated kTxPrepare/kTxDecision records.
  unacked_.clear();
  txLocks_.clear();
  crashBeforeReplyHook_ = nullptr;
  leaseReclaim_.reset();
}

void MasterService::addTablet(const Tablet& t) {
  Tablet owned = t;
  owned.owner = node_.id();
  tablets_.push_back(owned);
  // Heat slots exist from the moment a tablet is owned (recovery and
  // migration add tablets mid-run; their probes appear on the next sample).
  TabletHeat& heat = tabletHeat_[{owned.tableId, owned.startHash}];
  if (metricReg_ != nullptr && !heat.registered) {
    registerTabletHeat(owned.tableId, owned.startHash, heat);
  }
}

void MasterService::noteTabletOp(std::uint64_t tableId, std::uint64_t keyId,
                                 bool isWrite) {
  const std::uint64_t h = hash::keyHash(hash::Key{tableId, keyId});
  for (const Tablet& t : tablets_) {
    if (t.covers(tableId, h)) {
      TabletHeat& heat = tabletHeat_[{t.tableId, t.startHash}];
      if (isWrite) {
        ++heat.writes;
      } else {
        ++heat.reads;
      }
      return;
    }
  }
}

void MasterService::registerTabletHeat(std::uint64_t tableId,
                                       std::uint64_t startHash,
                                       TabletHeat& heat) {
  char slot[64];
  std::snprintf(slot, sizeof(slot), ".tablet.heat.t%llu.h%llx",
                static_cast<unsigned long long>(tableId),
                static_cast<unsigned long long>(startHash));
  const std::string base = metricPrefix_ + slot;
  // `heat` lives in the node-keyed std::map: stable address for the probes.
  metricReg_->probeCounter(base + ".reads", "ops", [&heat] {
    return static_cast<double>(heat.reads);
  });
  metricReg_->probeCounter(base + ".writes", "ops", [&heat] {
    return static_cast<double>(heat.writes);
  });
  heat.registered = true;
}

bool MasterService::ownsKey(std::uint64_t tableId, std::uint64_t keyId) const {
  const std::uint64_t h = hash::keyHash(hash::Key{tableId, keyId});
  for (const Tablet& t : tablets_) {
    if (t.covers(tableId, h)) return true;
  }
  return false;
}

MasterService::ApplyResult MasterService::applyWrite(std::uint64_t tableId,
                                                     std::uint64_t keyId,
                                                     std::uint32_t valueBytes) {
  log::LogEntry e;
  e.tableId = tableId;
  e.keyId = keyId;
  e.sizeBytes = valueBytes + params_.objectOverheadBytes;
  e.version = log_.nextVersion();
  e.type = log::EntryType::kObject;
  const log::LogRef ref = log_.append(e, node_.sim().now());

  const hash::Key k{tableId, keyId};
  if (const auto* old = map_.get(k)) log_.markDead(old->ref);
  map_.put(k, hash::ObjectLocation{ref, e.version, e.sizeBytes});
  return ApplyResult{ref, e.version, e.sizeBytes};
}

log::LogRef MasterService::appendCompletion(std::uint64_t tableId,
                                            std::uint64_t keyId,
                                            std::uint64_t clientId,
                                            std::uint64_t seq,
                                            std::uint64_t version,
                                            net::Status status, bool found) {
  log::LogEntry c;
  c.tableId = tableId;
  c.keyId = keyId;
  c.sizeBytes = params_.completionRecordBytes;
  c.version = version;
  c.type = log::EntryType::kCompletion;
  c.clientId = clientId;
  c.rpcSeq = seq;
  c.opStatus = static_cast<std::uint8_t>(status);
  c.found = found;
  return log_.append(c, node_.sim().now());
}

void MasterService::ensureHeadRoom(std::uint32_t bytes) {
  log::Segment* head = log_.head();
  if (head != nullptr && !head->hasRoom(bytes)) log_.sealHead();
}

void MasterService::releaseCompletionRecords(
    const std::vector<log::LogRef>& freed) {
  for (const log::LogRef& ref : freed) {
    if (!ref.valid() || log_.segment(ref.segment) == nullptr) continue;
    // A freed prepare record may still back a held tx lock (the client acks
    // the prepare seq as soon as the vote reply lands, long before the
    // decision). The lock adopts the record; it is marked dead when the
    // decision releases the lock, keeping it replayable by crash recovery
    // until the transaction is actually resolved.
    if (txLocks_.adoptRecord(ref)) continue;
    log_.markDead(ref);
  }
}

void MasterService::startLeaseReclaim() {
  if (leaseReclaim_ != nullptr || !directory_.leaseValid) return;
  leaseReclaim_ = std::make_unique<sim::PeriodicTask>(
      node_.sim(), params_.leaseReclaimInterval, [this](sim::SimTime) {
        if (!node_.cpu().poweredOn()) return;
        std::vector<log::LogRef> freed;
        unacked_.reclaimExpired(directory_.leaseValid, &freed);
        releaseCompletionRecords(freed);
        sweepOrphanedTx();
        std::vector<log::LogRef> txFreed;
        txLocks_.gcResolved(directory_.leaseValid, node_.sim().now(),
                            2 * params_.leaseReclaimInterval, &txFreed);
        for (const log::LogRef& ref : txFreed) {
          if (ref.valid() && log_.segment(ref.segment) != nullptr) {
            log_.markDead(ref);
          }
        }
      });
}

void MasterService::onRead(const net::RpcRequest& req, Responder respond) {
  const std::uint64_t tableId = req.a;
  const std::uint64_t keyId = req.b;
  const std::uint64_t span = req.traceSpan;
  const std::uint16_t tenant = req.tenant;
  const sim::SimTime arrival = node_.sim().now();

  dispatch_.enqueue(guard([this, tableId, keyId, span, arrival, tenant,
                           respond = std::move(respond)]() mutable {
    stampTrace(span, obs::TimeTrace::Stage::kDispatchWait);
    if (!ownsKey(tableId, keyId)) {
      ++stats_.unknownTablet;
      net::RpcResponse r;
      r.status = net::Status::kUnknownTablet;
      respond(std::move(r));
      return;
    }
    noteTabletOp(tableId, keyId, /*isWrite=*/false);
    node_.cpu().acquireWorker(guard([this, tableId, keyId, span, arrival,
                                     tenant,
                                     respond =
                                         std::move(respond)](int w) mutable {
      node_.cpu().tagWorker(w, {power::OpClass::kRead, tenant});
      node_.sim().schedule(
          params_.readServiceTime,
          guard([this, tableId, keyId, span, arrival, tenant, w,
                 respond = std::move(respond)]() mutable {
            node_.cpu().releaseWorker(w);
            const auto* loc = map_.get(hash::Key{tableId, keyId});
            net::RpcResponse r;
            if (loc != nullptr) {
              r.a = 1;
              r.b = loc->version;
              r.payloadBytes = loc->sizeBytes;
              node_.chargeDram(loc->sizeBytes,
                               {power::OpClass::kRead, tenant});
            } else {
              r.a = 0;
              ++stats_.missingKeys;
            }
            ++stats_.reads;
            stats_.readServiceLatency.add(node_.sim().now() - arrival);
            dispatch_.noteSojourn(node_.sim().now() - arrival);
            stampTrace(span, obs::TimeTrace::Stage::kWorkerService);
            respond(std::move(r));
          }));
    }));
  }));
}

void MasterService::onWrite(const net::RpcRequest& req, Responder respond) {
  struct WriteCtx {
    std::uint64_t tableId = 0;
    std::uint64_t keyId = 0;
    std::uint32_t valueBytes = 0;
    std::uint64_t expected = 0;  ///< conditional write (0 = unconditional)
    std::uint64_t clientId = 0;  ///< 0 = untracked (no exactly-once)
    std::uint64_t rpcSeq = 0;
    std::uint64_t firstUnacked = 0;
    std::uint64_t span = 0;
    std::uint16_t tenant = 0;
    sim::SimTime arrival = 0;
    Responder respond;
  };
  auto cx = std::make_shared<WriteCtx>();
  cx->tableId = req.a;
  cx->keyId = req.b;
  cx->valueBytes = static_cast<std::uint32_t>(req.payloadBytes);
  cx->expected = req.c;
  cx->clientId = req.clientId;
  cx->rpcSeq = req.rpcSeq;
  cx->firstUnacked = req.firstUnacked;
  cx->span = req.traceSpan;
  cx->tenant = req.tenant;
  cx->arrival = node_.sim().now();
  cx->respond = std::move(respond);

  dispatch_.enqueue(guard([this, cx]() mutable {
    stampTrace(cx->span, obs::TimeTrace::Stage::kDispatchWait);
    if (!ownsKey(cx->tableId, cx->keyId)) {
      ++stats_.unknownTablet;
      net::RpcResponse r;
      r.status = net::Status::kUnknownTablet;
      cx->respond(std::move(r));
      return;
    }
    if (isMigratingRange(cx->tableId,
                         hash::keyHash(hash::Key{cx->tableId, cx->keyId}))) {
      // The range is being shipped elsewhere; the client backs off and
      // re-routes once the coordinator flips the tablet map.
      net::RpcResponse r;
      r.status = net::Status::kRecovering;
      cx->respond(std::move(r));
      return;
    }
    noteTabletOp(cx->tableId, cx->keyId, /*isWrite=*/true);
    if (cx->clientId != 0) {
      // RIFL admission: reject expired leases, then check the suppression
      // table before burning a worker on a duplicate.
      if (directory_.leaseValid && !directory_.leaseValid(cx->clientId)) {
        net::RpcResponse r;
        r.status = net::Status::kExpiredLease;
        cx->respond(std::move(r));
        return;
      }
      startLeaseReclaim();
      std::vector<log::LogRef> freed;
      const auto adm =
          unacked_.begin(cx->clientId, cx->rpcSeq, cx->firstUnacked, &freed);
      releaseCompletionRecords(freed);
      switch (adm.check) {
        case UnackedRpcResults::Check::kCompleted: {
          // Duplicate of a finished op: replay the recorded outcome, never
          // re-execute (the original may have been a different value).
          net::RpcResponse r;
          r.status = static_cast<net::Status>(adm.result.status);
          r.b = adm.result.version;
          cx->respond(std::move(r));
          return;
        }
        case UnackedRpcResults::Check::kInProgress: {
          // First attempt still replicating; the retry backs off like a
          // recovery wait and re-probes.
          net::RpcResponse r;
          r.status = net::Status::kRecovering;
          cx->respond(std::move(r));
          return;
        }
        case UnackedRpcResults::Check::kStale: {
          net::RpcResponse r;
          r.status = net::Status::kStaleRpc;
          cx->respond(std::move(r));
          return;
        }
        case UnackedRpcResults::Check::kNew:
          break;
      }
    }
    node_.cpu().acquireWorker(guard([this, cx](int w) mutable {
      node_.cpu().tagWorker(w, {power::OpClass::kUpdate, cx->tenant});
      logLock_.acquire(guard([this, cx, w]() mutable {
        // Thread-handling cost under concurrency (Finding 2's root cause):
        // the more distinct streams hammer this server, the more futile
        // context switches each synced update eats. sqrt keeps the penalty
        // sublinear, as fitted to Table II.
        const int streams = concurrentStreams();
        const sim::Duration penalty = sim::usecF(
            params_.convoyPenaltyUs * std::sqrt(static_cast<double>(streams)));
        node_.sim().schedule(
            params_.writeAppendCpu + penalty, guard([this, cx, w]() mutable {
              const bool tracked = cx->clientId != 0;
              if (const TxLockTable::Lock* held =
                      txLocks_.get(cx->tableId, cx->keyId);
                  held != nullptr) {
                // A prepared minitransaction holds this object's version
                // lock: a plain write slipping underneath would invalidate
                // the vote that participant already cast. Reject; the
                // writer retries after the decision releases the lock.
                // Nothing mutated, so the RIFL entry rolls back (a retry
                // re-runs the check) instead of recording a durable verdict.
                txLocks_.countConflict();
                if (tracked) unacked_.abortInProgress(cx->clientId, cx->rpcSeq);
                net::RpcResponse r;
                r.status = net::Status::kTxConflict;
                r.b = held->expectedVersion;
                stampTrace(cx->span, obs::TimeTrace::Stage::kWorkerService);
                logLock_.release();
                cx->respond(std::move(r));
                node_.cpu().releaseWorker(w);
                return;
              }
              if (cx->expected != 0) {
                // Conditional check under the append lock: an interleaved
                // writer cannot slip between check and apply.
                const auto* loc =
                    map_.get(hash::Key{cx->tableId, cx->keyId});
                const std::uint64_t cur = loc != nullptr ? loc->version : 0;
                if (cur != cx->expected) {
                  onWriteVersionMismatch(cx->tableId, cx->keyId, cx->clientId,
                                         cx->rpcSeq, cur, cx->span,
                                         cx->tenant, cx->arrival, w,
                                         std::move(cx->respond));
                  return;
                }
              }
              if (tracked) {
                // The completion record must land in the same segment as
                // the object so both replicate (and recover) atomically.
                ensureHeadRoom(cx->valueBytes + params_.objectOverheadBytes +
                               params_.completionRecordBytes);
              }
              const ApplyResult res =
                  applyWrite(cx->tableId, cx->keyId, cx->valueBytes);
              log::LogRef rec;
              std::uint32_t entryBytes = res.entryBytes;
              if (tracked) {
                rec = appendCompletion(cx->tableId, cx->keyId, cx->clientId,
                                       cx->rpcSeq, res.version,
                                       net::Status::kOk, true);
                entryBytes += params_.completionRecordBytes;
              }
              node_.chargeDram(entryBytes,
                               {power::OpClass::kUpdate, cx->tenant});
              // Hash/log work done; what follows is the log-sync /
              // replication fan-out the paper's Finding 3 is about.
              stampTrace(cx->span, obs::TimeTrace::Stage::kWorkerService);
              auto finish = guard([this, cx, w, res, rec,
                                   tracked](bool ok) mutable {
                logLock_.release();
                net::RpcResponse r;
                if (!ok) {
                  r.status = net::Status::kError;
                  ++stats_.replicationFailures;
                  if (tracked) {
                    // Nothing durably recorded: the retry re-executes.
                    unacked_.abortInProgress(cx->clientId, cx->rpcSeq);
                    log_.markDead(rec);
                  }
                } else {
                  r.b = res.version;
                  if (tracked) {
                    UnackedRpcResults::Result rr;
                    rr.status =
                        static_cast<std::uint8_t>(net::Status::kOk);
                    rr.version = res.version;
                    rr.found = true;
                    rr.tableId = cx->tableId;
                    rr.keyId = cx->keyId;
                    rr.record = rec;
                    unacked_.recordCompletion(cx->clientId, cx->rpcSeq, rr);
                  }
                }
                ++stats_.writes;
                stats_.writeServiceLatency.add(node_.sim().now() -
                                               cx->arrival);
                dispatch_.noteSojourn(node_.sim().now() - cx->arrival);
                stampTrace(cx->span, obs::TimeTrace::Stage::kReplicationWait);
                if (ok && crashBeforeReplyHook_) {
                  // Fault point: the op is durable (and recorded) but the
                  // reply never leaves — the injector crashes us from the
                  // hook and the client's retry lands on the new owner.
                  auto hook = std::move(crashBeforeReplyHook_);
                  crashBeforeReplyHook_ = nullptr;
                  node_.cpu().releaseWorker(w);
                  hook();
                  return;
                }
                cx->respond(std::move(r));
                node_.cpu().releaseWorker(w);
                maybeStartCleaner();
              });
              if (params_.replication.factor <= 0) {
                // Log sync without backups still pays RAMCloud's
                // thread-handling overhead (see MasterParams).
                node_.sim().schedule(
                    params_.unreplicatedSyncTime,
                    guard([finish = std::move(finish)]() mutable {
                      finish(true);
                    }));
              } else {
                // Object + completion record sync as one append (they are
                // in one segment, see ensureHeadRoom above).
                replicaMgr_.replicateAppend(res.ref.segment, entryBytes,
                                            std::move(finish));
              }
            }));
      }));
    }));
  }));
}

void MasterService::onWriteVersionMismatch(
    std::uint64_t tableId, std::uint64_t keyId, std::uint64_t clientId,
    std::uint64_t seq, std::uint64_t currentVersion, std::uint64_t span,
    std::uint16_t tenant, sim::SimTime arrival, int w, Responder respond) {
  const bool tracked = clientId != 0;
  log::LogRef rec;
  if (tracked) {
    // The rejection is an outcome too: record it durably so a duplicate
    // retry replays kVersionMismatch instead of re-running the check
    // against whatever version exists by then.
    rec = appendCompletion(tableId, keyId, clientId, seq, currentVersion,
                           net::Status::kVersionMismatch, true);
    node_.chargeDram(params_.completionRecordBytes,
                     {power::OpClass::kUpdate, tenant});
  }
  auto finish = guard([this, tableId, keyId, clientId, seq, currentVersion,
                       span, arrival, w, rec, tracked,
                       respond = std::move(respond)](bool ok) mutable {
    logLock_.release();
    net::RpcResponse r;
    if (!ok) {
      r.status = net::Status::kError;
      ++stats_.replicationFailures;
      if (tracked) {
        unacked_.abortInProgress(clientId, seq);
        log_.markDead(rec);
      }
    } else {
      r.status = net::Status::kVersionMismatch;
      r.b = currentVersion;
      if (tracked) {
        UnackedRpcResults::Result rr;
        rr.status = static_cast<std::uint8_t>(net::Status::kVersionMismatch);
        rr.version = currentVersion;
        rr.found = true;
        rr.tableId = tableId;
        rr.keyId = keyId;
        rr.record = rec;
        unacked_.recordCompletion(clientId, seq, rr);
      }
    }
    ++stats_.writes;
    stats_.writeServiceLatency.add(node_.sim().now() - arrival);
    dispatch_.noteSojourn(node_.sim().now() - arrival);
    stampTrace(span, obs::TimeTrace::Stage::kReplicationWait);
    respond(std::move(r));
    node_.cpu().releaseWorker(w);
    maybeStartCleaner();
  });
  if (!tracked || params_.replication.factor <= 0) {
    finish(true);
  } else {
    replicaMgr_.replicateAppend(rec.segment, params_.completionRecordBytes,
                                std::move(finish));
  }
}

void MasterService::onTxPrepare(const net::RpcRequest& req,
                                Responder respond) {
  struct PrepCtx {
    std::uint64_t tableId = 0;
    std::uint64_t keyId = 0;
    std::uint32_t valueBytes = 0;  ///< 0 = validation-only (read-only tx)
    std::uint64_t expected = 0;
    std::uint64_t txId = 0;
    std::uint64_t clientId = 0;
    std::uint64_t rpcSeq = 0;
    std::uint64_t firstUnacked = 0;
    std::uint64_t span = 0;
    std::uint16_t tenant = 0;
    sim::SimTime arrival = 0;
    log::TxParticipants participants;
    Responder respond;
  };
  auto cx = std::make_shared<PrepCtx>();
  cx->tableId = req.a;
  cx->keyId = req.b;
  cx->valueBytes = static_cast<std::uint32_t>(req.payloadBytes);
  cx->expected = req.c;
  cx->txId = req.d;
  cx->clientId = req.clientId;
  cx->rpcSeq = req.rpcSeq;
  cx->firstUnacked = req.firstUnacked;
  cx->span = req.traceSpan;
  cx->tenant = req.tenant;
  cx->arrival = node_.sim().now();
  cx->respond = std::move(respond);
  if (req.keys && !req.keys->empty()) {
    // Participant key list packed as alternating (tableId, keyId) pairs.
    auto parts = std::make_shared<
        std::vector<std::pair<std::uint64_t, std::uint64_t>>>();
    parts->reserve(req.keys->size() / 2);
    for (std::size_t i = 0; i + 1 < req.keys->size(); i += 2) {
      parts->emplace_back((*req.keys)[i], (*req.keys)[i + 1]);
    }
    cx->participants = std::move(parts);
  }

  dispatch_.enqueue(guard([this, cx]() mutable {
    stampTrace(cx->span, obs::TimeTrace::Stage::kDispatchWait);
    if (!ownsKey(cx->tableId, cx->keyId)) {
      ++stats_.unknownTablet;
      net::RpcResponse r;
      r.status = net::Status::kUnknownTablet;
      cx->respond(std::move(r));
      return;
    }
    if (isMigratingRange(cx->tableId,
                         hash::keyHash(hash::Key{cx->tableId, cx->keyId}))) {
      net::RpcResponse r;
      r.status = net::Status::kRecovering;
      cx->respond(std::move(r));
      return;
    }
    noteTabletOp(cx->tableId, cx->keyId, /*isWrite=*/cx->valueBytes != 0);
    if (cx->valueBytes == 0) {
      // Validation-only item (read-only transaction, docs/TRANSACTIONS.md):
      // check the read version is still current and the object unlocked.
      // No lock, no log record — the client decides locally from the votes.
      node_.cpu().acquireWorker(guard([this, cx](int w) mutable {
        node_.cpu().tagWorker(w, {power::OpClass::kRead, cx->tenant});
        node_.sim().schedule(
            params_.readServiceTime, guard([this, cx, w]() mutable {
              node_.cpu().releaseWorker(w);
              const auto* loc = map_.get(hash::Key{cx->tableId, cx->keyId});
              const std::uint64_t cur = loc != nullptr ? loc->version : 0;
              const TxLockTable::Lock* lock =
                  txLocks_.get(cx->tableId, cx->keyId);
              net::RpcResponse r;
              r.b = cur;
              if (lock != nullptr && lock->txId != cx->txId) {
                r.status = net::Status::kTxConflict;
                txLocks_.countConflict();
              } else if (cur != cx->expected) {
                r.status = net::Status::kVersionMismatch;
              }
              stampTrace(cx->span, obs::TimeTrace::Stage::kWorkerService);
              cx->respond(std::move(r));
            }));
      }));
      return;
    }
    if (cx->clientId == 0) {
      // A locking prepare must be RIFL-tracked: without a lease there is no
      // owner to reclaim the lock from when the client dies.
      net::RpcResponse r;
      r.status = net::Status::kError;
      cx->respond(std::move(r));
      return;
    }
    if (directory_.leaseValid && !directory_.leaseValid(cx->clientId)) {
      net::RpcResponse r;
      r.status = net::Status::kExpiredLease;
      cx->respond(std::move(r));
      return;
    }
    startLeaseReclaim();
    std::vector<log::LogRef> freed;
    const auto adm =
        unacked_.begin(cx->clientId, cx->rpcSeq, cx->firstUnacked, &freed);
    releaseCompletionRecords(freed);
    switch (adm.check) {
      case UnackedRpcResults::Check::kCompleted: {
        net::RpcResponse r;
        r.status = static_cast<net::Status>(adm.result.status);
        r.b = adm.result.version;
        cx->respond(std::move(r));
        return;
      }
      case UnackedRpcResults::Check::kInProgress: {
        net::RpcResponse r;
        r.status = net::Status::kRecovering;
        cx->respond(std::move(r));
        return;
      }
      case UnackedRpcResults::Check::kStale: {
        net::RpcResponse r;
        r.status = net::Status::kStaleRpc;
        cx->respond(std::move(r));
        return;
      }
      case UnackedRpcResults::Check::kNew:
        break;
    }
    node_.cpu().acquireWorker(guard([this, cx](int w) mutable {
      node_.cpu().tagWorker(w, {power::OpClass::kUpdate, cx->tenant});
      logLock_.acquire(guard([this, cx, w]() mutable {
        const int streams = concurrentStreams();
        const sim::Duration penalty = sim::usecF(
            params_.convoyPenaltyUs * std::sqrt(static_cast<double>(streams)));
        node_.sim().schedule(
            params_.writeAppendCpu + penalty, guard([this, cx, w]() mutable {
              // Vote checks under the append lock: fence, lock, version.
              if (txLocks_.isFencedAborted(cx->txId)) {
                onTxPrepareReject(cx->tableId, cx->keyId, cx->clientId,
                                  cx->rpcSeq, net::Status::kTxConflict, 0,
                                  cx->span, cx->tenant, w,
                                  std::move(cx->respond));
                return;
              }
              if (txLocks_.voteStatus(cx->txId) == 2) {
                // The tx already committed here (orphan resolution beat a
                // stale prepare retry). Answer yes durably, without a lock:
                // a version-mismatch reject would make the client report
                // abort for data that committed.
                const auto* cl = map_.get(hash::Key{cx->tableId, cx->keyId});
                onTxPrepareReject(cx->tableId, cx->keyId, cx->clientId,
                                  cx->rpcSeq, net::Status::kOk,
                                  cl != nullptr ? cl->version : 0, cx->span,
                                  cx->tenant, w, std::move(cx->respond));
                return;
              }
              const TxLockTable::Lock* held =
                  txLocks_.get(cx->tableId, cx->keyId);
              if (held != nullptr && held->txId != cx->txId) {
                txLocks_.countConflict();
                onTxPrepareReject(cx->tableId, cx->keyId, cx->clientId,
                                  cx->rpcSeq, net::Status::kTxConflict,
                                  held->expectedVersion, cx->span, cx->tenant,
                                  w, std::move(cx->respond));
                return;
              }
              const auto* loc = map_.get(hash::Key{cx->tableId, cx->keyId});
              const std::uint64_t cur = loc != nullptr ? loc->version : 0;
              // expected == 0 means blind write (same convention as
              // onWrite's conditional check).
              if (held == nullptr && cx->expected != 0 &&
                  cur != cx->expected) {
                onTxPrepareReject(cx->tableId, cx->keyId, cx->clientId,
                                  cx->rpcSeq, net::Status::kVersionMismatch,
                                  cur, cx->span, cx->tenant, w,
                                  std::move(cx->respond));
                return;
              }
              // Vote yes: durable prepare record, then the lock.
              ensureHeadRoom(params_.txPrepareRecordBytes);
              log::LogEntry p;
              p.tableId = cx->tableId;
              p.keyId = cx->keyId;
              p.sizeBytes = params_.txPrepareRecordBytes;
              p.version = cur;
              p.type = log::EntryType::kTxPrepare;
              p.clientId = cx->clientId;
              p.rpcSeq = cx->rpcSeq;
              p.opStatus = static_cast<std::uint8_t>(net::Status::kOk);
              p.txId = cx->txId;
              p.txPendingBytes = cx->valueBytes;
              p.txExpectedVersion = cx->expected;
              p.txParticipants = cx->participants;
              const log::LogRef rec = log_.append(p, node_.sim().now());
              node_.chargeDram(p.sizeBytes,
                               {power::OpClass::kUpdate, cx->tenant});
              stampTrace(cx->span, obs::TimeTrace::Stage::kWorkerService);
              std::uint64_t prepSpan = 0;
              if (journal_ != nullptr) {
                prepSpan = journal_->beginSpan(
                    "tx_prepare", static_cast<int>(node_.id()), 0, cx->txId);
              }
              auto finish = guard([this, cx, w, rec, cur,
                                   prepSpan](bool ok) mutable {
                logLock_.release();
                net::RpcResponse r;
                if (!ok) {
                  r.status = net::Status::kError;
                  ++stats_.replicationFailures;
                  unacked_.abortInProgress(cx->clientId, cx->rpcSeq);
                  log_.markDead(rec);
                } else {
                  // Re-prepare by the same tx (lease-expiry retry under a
                  // new clientId): drop the superseded record so it does
                  // not pin live bytes forever.
                  const TxLockTable::Lock* prev =
                      txLocks_.get(cx->tableId, cx->keyId);
                  if (prev != nullptr && prev->prepareRecord.valid() &&
                      !(prev->prepareRecord == rec) &&
                      log_.segment(prev->prepareRecord.segment) != nullptr) {
                    log_.markDead(prev->prepareRecord);
                  }
                  TxLockTable::Lock lock;
                  lock.txId = cx->txId;
                  lock.clientId = cx->clientId;
                  lock.rpcSeq = cx->rpcSeq;
                  lock.tableId = cx->tableId;
                  lock.keyId = cx->keyId;
                  lock.pendingValueBytes = cx->valueBytes;
                  lock.expectedVersion = cx->expected;
                  lock.prepareRecord = rec;
                  lock.participants = cx->participants;
                  lock.preparedAt = node_.sim().now();
                  lock.recordOwnedByUnacked = true;
                  txLocks_.acquire(std::move(lock));
                  txLocks_.countPrepare();
                  UnackedRpcResults::Result rr;
                  rr.status = static_cast<std::uint8_t>(net::Status::kOk);
                  rr.version = cur;
                  rr.found = true;
                  rr.tableId = cx->tableId;
                  rr.keyId = cx->keyId;
                  rr.record = rec;
                  unacked_.recordCompletion(cx->clientId, cx->rpcSeq, rr);
                  r.b = cur;
                }
                ++stats_.writes;
                stats_.writeServiceLatency.add(node_.sim().now() -
                                               cx->arrival);
                dispatch_.noteSojourn(node_.sim().now() - cx->arrival);
                stampTrace(cx->span, obs::TimeTrace::Stage::kReplicationWait);
                if (journal_ != nullptr && prepSpan != 0) {
                  journal_->endSpan(prepSpan);
                }
                cx->respond(std::move(r));
                node_.cpu().releaseWorker(w);
                maybeStartCleaner();
              });
              if (params_.replication.factor <= 0) {
                node_.sim().schedule(
                    params_.unreplicatedSyncTime,
                    guard([finish = std::move(finish)]() mutable {
                      finish(true);
                    }));
              } else {
                replicaMgr_.replicateAppend(rec.segment, p.sizeBytes,
                                            std::move(finish));
              }
            }));
      }));
    }));
  }));
}

void MasterService::onTxPrepareReject(std::uint64_t tableId,
                                      std::uint64_t keyId,
                                      std::uint64_t clientId, std::uint64_t seq,
                                      net::Status verdict,
                                      std::uint64_t currentVersion,
                                      std::uint64_t span, std::uint16_t tenant,
                                      int w, Responder respond) {
  // A vote-no is an outcome: record it durably so a duplicate prepare retry
  // replays the same no (a vote must never flip once given).
  const log::LogRef rec = appendCompletion(tableId, keyId, clientId, seq,
                                           currentVersion, verdict, true);
  node_.chargeDram(params_.completionRecordBytes,
                   {power::OpClass::kUpdate, tenant});
  auto finish = guard([this, clientId, seq, verdict, currentVersion, tableId,
                       keyId, span, w, rec,
                       respond = std::move(respond)](bool ok) mutable {
    logLock_.release();
    net::RpcResponse r;
    if (!ok) {
      r.status = net::Status::kError;
      ++stats_.replicationFailures;
      unacked_.abortInProgress(clientId, seq);
      log_.markDead(rec);
    } else {
      r.status = verdict;
      r.b = currentVersion;
      UnackedRpcResults::Result rr;
      rr.status = static_cast<std::uint8_t>(verdict);
      rr.version = currentVersion;
      rr.found = true;
      rr.tableId = tableId;
      rr.keyId = keyId;
      rr.record = rec;
      unacked_.recordCompletion(clientId, seq, rr);
    }
    stampTrace(span, obs::TimeTrace::Stage::kReplicationWait);
    respond(std::move(r));
    node_.cpu().releaseWorker(w);
    maybeStartCleaner();
  });
  if (params_.replication.factor <= 0) {
    finish(true);
  } else {
    replicaMgr_.replicateAppend(rec.segment, params_.completionRecordBytes,
                                std::move(finish));
  }
}

void MasterService::onTxDecision(const net::RpcRequest& req,
                                 Responder respond) {
  struct DecCtx {
    std::uint64_t tableId = 0;
    std::uint64_t keyId = 0;
    bool commit = false;
    bool fromResolution = false;
    std::uint64_t txId = 0;
    std::uint64_t clientId = 0;
    std::uint64_t rpcSeq = 0;
    std::uint64_t firstUnacked = 0;
    std::uint64_t span = 0;
    std::uint16_t tenant = 0;
    sim::SimTime arrival = 0;
    Responder respond;
  };
  auto cx = std::make_shared<DecCtx>();
  cx->tableId = req.a;
  cx->keyId = req.b;
  cx->commit = (req.c & 1) != 0;
  cx->fromResolution = (req.c & 2) != 0;
  cx->txId = req.d;
  cx->clientId = req.clientId;
  cx->rpcSeq = req.rpcSeq;
  cx->firstUnacked = req.firstUnacked;
  cx->span = req.traceSpan;
  cx->tenant = req.tenant;
  cx->arrival = node_.sim().now();
  cx->respond = std::move(respond);

  dispatch_.enqueue(guard([this, cx]() mutable {
    stampTrace(cx->span, obs::TimeTrace::Stage::kDispatchWait);
    if (!ownsKey(cx->tableId, cx->keyId)) {
      ++stats_.unknownTablet;
      net::RpcResponse r;
      r.status = net::Status::kUnknownTablet;
      cx->respond(std::move(r));
      return;
    }
    if (isMigratingRange(cx->tableId,
                         hash::keyHash(hash::Key{cx->tableId, cx->keyId}))) {
      net::RpcResponse r;
      r.status = net::Status::kRecovering;
      cx->respond(std::move(r));
      return;
    }
    noteTabletOp(cx->tableId, cx->keyId, /*isWrite=*/true);
    const bool tracked = cx->clientId != 0;
    if (tracked) {
      if (directory_.leaseValid && !directory_.leaseValid(cx->clientId)) {
        net::RpcResponse r;
        r.status = net::Status::kExpiredLease;
        cx->respond(std::move(r));
        return;
      }
      startLeaseReclaim();
      std::vector<log::LogRef> freed;
      const auto adm =
          unacked_.begin(cx->clientId, cx->rpcSeq, cx->firstUnacked, &freed);
      releaseCompletionRecords(freed);
      switch (adm.check) {
        case UnackedRpcResults::Check::kCompleted: {
          // Duplicate kTxCommit retry after a dropped reply: replay the
          // recorded outcome, never re-apply the decision.
          net::RpcResponse r;
          r.status = static_cast<net::Status>(adm.result.status);
          r.a = adm.result.found ? 1 : 0;
          r.b = adm.result.version;
          cx->respond(std::move(r));
          return;
        }
        case UnackedRpcResults::Check::kInProgress: {
          net::RpcResponse r;
          r.status = net::Status::kRecovering;
          cx->respond(std::move(r));
          return;
        }
        case UnackedRpcResults::Check::kStale: {
          net::RpcResponse r;
          r.status = net::Status::kStaleRpc;
          cx->respond(std::move(r));
          return;
        }
        case UnackedRpcResults::Check::kNew:
          break;
      }
    }
    node_.cpu().acquireWorker(guard([this, cx, tracked](int w) mutable {
      node_.cpu().tagWorker(w, {power::OpClass::kUpdate, cx->tenant});
      logLock_.acquire(guard([this, cx, tracked, w]() mutable {
        node_.sim().schedule(
            params_.writeAppendCpu, guard([this, cx, tracked, w]() mutable {
              const TxLockTable::Lock* lock =
                  txLocks_.get(cx->tableId, cx->keyId);
              const bool haveLock =
                  lock != nullptr && lock->txId == cx->txId;
              std::uint64_t newVersion = 0;
              std::uint32_t entryBytes = 0;
              log::LogRef decRec;
              log::LogRef lastRef;
              if (haveLock) {
                // Apply: object write (commit only) + decision record land
                // in one segment so they recover atomically.
                const std::uint32_t objBytes =
                    cx->commit ? lock->pendingValueBytes +
                                     params_.objectOverheadBytes
                               : 0;
                ensureHeadRoom(objBytes + params_.completionRecordBytes);
                if (cx->commit) {
                  const ApplyResult res = applyWrite(
                      cx->tableId, cx->keyId, lock->pendingValueBytes);
                  newVersion = res.version;
                  entryBytes += res.entryBytes;
                }
                log::LogEntry d;
                d.tableId = cx->tableId;
                d.keyId = cx->keyId;
                d.sizeBytes = params_.completionRecordBytes;
                d.version = newVersion;
                d.type = log::EntryType::kTxDecision;
                d.clientId = tracked ? cx->clientId : lock->clientId;
                d.rpcSeq = tracked ? cx->rpcSeq : 0;
                d.opStatus = static_cast<std::uint8_t>(net::Status::kOk);
                d.txId = cx->txId;
                d.txCommit = cx->commit;
                decRec = log_.append(d, node_.sim().now());
                entryBytes += d.sizeBytes;
                lastRef = decRec;
                node_.chargeDram(entryBytes,
                                 {power::OpClass::kUpdate, cx->tenant});
              } else if (tracked) {
                // No lock for this tx here (already resolved, or never
                // prepared): the answer must still be durable so a retry
                // replays it instead of racing whatever happens later.
                const auto* loc = map_.get(hash::Key{cx->tableId, cx->keyId});
                newVersion = loc != nullptr ? loc->version : 0;
                ensureHeadRoom(params_.completionRecordBytes);
                decRec = appendCompletion(cx->tableId, cx->keyId,
                                          cx->clientId, cx->rpcSeq,
                                          newVersion, net::Status::kOk,
                                          false);
                entryBytes = params_.completionRecordBytes;
                lastRef = decRec;
                node_.chargeDram(entryBytes,
                                 {power::OpClass::kUpdate, cx->tenant});
              }
              stampTrace(cx->span, obs::TimeTrace::Stage::kWorkerService);
              std::uint64_t decSpan = 0;
              if (journal_ != nullptr && haveLock) {
                decSpan = journal_->beginSpan(
                    cx->commit ? "tx_commit" : "tx_abort",
                    static_cast<int>(node_.id()), 0, cx->txId);
              }
              auto finish = guard([this, cx, tracked, w, haveLock, decRec,
                                   newVersion, decSpan](bool ok) mutable {
                logLock_.release();
                net::RpcResponse r;
                if (!ok) {
                  r.status = net::Status::kError;
                  ++stats_.replicationFailures;
                  if (tracked) {
                    unacked_.abortInProgress(cx->clientId, cx->rpcSeq);
                  }
                  if (decRec.valid()) log_.markDead(decRec);
                  // The lock stays held; the retry (or the resolution
                  // sweep) re-applies the decision.
                } else {
                  if (haveLock) {
                    TxLockTable::Lock released;
                    if (txLocks_.release(cx->tableId, cx->keyId, cx->txId,
                                         &released)) {
                      // The prepare record has served its purpose: without
                      // it, crash replay cannot resurrect the lock (the
                      // decision record fences retries). markDead is
                      // idempotent wrt the suppression table's later GC.
                      if (released.prepareRecord.valid() &&
                          log_.segment(released.prepareRecord.segment) !=
                              nullptr) {
                        log_.markDead(released.prepareRecord);
                      }
                      txLocks_.countDecision(cx->commit, cx->fromResolution);
                      txLocks_.noteResolved(cx->txId, cx->commit,
                                            released.clientId, cx->tableId,
                                            cx->keyId, decRec, tracked,
                                            node_.sim().now());
                    }
                  }
                  if (tracked) {
                    UnackedRpcResults::Result rr;
                    rr.status = static_cast<std::uint8_t>(net::Status::kOk);
                    rr.version = newVersion;
                    rr.found = haveLock;
                    rr.tableId = cx->tableId;
                    rr.keyId = cx->keyId;
                    rr.record = decRec;
                    unacked_.recordCompletion(cx->clientId, cx->rpcSeq, rr);
                  }
                  r.a = haveLock ? 1 : 0;
                  r.b = newVersion;
                }
                ++stats_.writes;
                stats_.writeServiceLatency.add(node_.sim().now() -
                                               cx->arrival);
                dispatch_.noteSojourn(node_.sim().now() - cx->arrival);
                stampTrace(cx->span, obs::TimeTrace::Stage::kReplicationWait);
                if (journal_ != nullptr && decSpan != 0) {
                  journal_->endSpan(decSpan);
                }
                if (ok && haveLock && crashBeforeReplyHook_) {
                  // Fault point "crash a participant mid-commit": decision
                  // durable and applied, reply never leaves this node.
                  auto hook = std::move(crashBeforeReplyHook_);
                  crashBeforeReplyHook_ = nullptr;
                  node_.cpu().releaseWorker(w);
                  hook();
                  return;
                }
                cx->respond(std::move(r));
                node_.cpu().releaseWorker(w);
                maybeStartCleaner();
              });
              if (entryBytes == 0) {
                finish(true);
              } else if (params_.replication.factor <= 0) {
                node_.sim().schedule(
                    params_.unreplicatedSyncTime,
                    guard([finish = std::move(finish)]() mutable {
                      finish(true);
                    }));
              } else {
                replicaMgr_.replicateAppend(lastRef.segment, entryBytes,
                                            std::move(finish));
              }
            }));
      }));
    }));
  }));
}

void MasterService::onTxVote(const net::RpcRequest& req, Responder respond) {
  const std::uint64_t tableId = req.a;
  const std::uint64_t keyId = req.b;
  const std::uint64_t txId = req.d;
  dispatch_.enqueue(guard([this, tableId, keyId, txId,
                           respond = std::move(respond)]() mutable {
    net::RpcResponse r;
    if (!ownsKey(tableId, keyId)) {
      r.status = net::Status::kUnknownTablet;
      respond(std::move(r));
      return;
    }
    const TxLockTable::Lock* lock = txLocks_.get(tableId, keyId);
    if (lock != nullptr && lock->txId == txId) {
      r.a = 1;  // prepared here: vote yes
    } else {
      const int st = txLocks_.voteStatus(txId);
      if (st == 2) {
        r.a = 2;  // decision commit already applied
      } else {
        // No vote (or already aborted). Fence the tx so a late prepare
        // cannot acquire the lock after we told the coordinator "no".
        r.a = 3;
        txLocks_.fenceAbort(txId, node_.sim().now());
      }
    }
    respond(std::move(r));
  }));
}

void MasterService::sweepOrphanedTx() {
  if (!directory_.leaseValid) return;
  const auto orphans = txLocks_.orphanedLocks(directory_.leaseValid);
  for (const TxLockTable::Lock& lock : orphans) {
    // Cooperative termination (docs/TRANSACTIONS.md): ship the tx's full
    // participant list to the coordinator, which collects votes from the
    // current owners and fans out the decision. Fire-and-forget: the sweep
    // re-requests on the next tick while the lock survives.
    net::RpcRequest req;
    req.op = net::Opcode::kTxResolve;
    req.a = lock.txId;
    req.b = lock.clientId;
    if (lock.participants && !lock.participants->empty()) {
      auto keys = std::make_shared<std::vector<std::uint64_t>>();
      keys->reserve(lock.participants->size() * 2);
      for (const auto& [t, k] : *lock.participants) {
        keys->push_back(t);
        keys->push_back(k);
      }
      req.keys = std::move(keys);
    } else {
      // Degenerate single-object tx: the lock itself is the only vote.
      auto keys = std::make_shared<std::vector<std::uint64_t>>();
      keys->push_back(lock.tableId);
      keys->push_back(lock.keyId);
      req.keys = std::move(keys);
    }
    ++txResolveRequests_;
    rpc_.call(node_.id(), coordinator_, net::kCoordinatorPort, std::move(req),
              timeouts::kControl, [](const net::RpcResponse&) {});
  }
}

bool MasterService::installRecoveredTxLock(const log::LogEntry& prepare,
                                           const log::LogRef& ref,
                                           bool ownedByUnacked) {
  TxLockTable::Lock lock;
  lock.txId = prepare.txId;
  lock.clientId = prepare.clientId;
  lock.rpcSeq = prepare.rpcSeq;
  lock.tableId = prepare.tableId;
  lock.keyId = prepare.keyId;
  lock.pendingValueBytes = prepare.txPendingBytes;
  lock.expectedVersion = prepare.txExpectedVersion;
  lock.prepareRecord = ref;
  lock.participants = prepare.txParticipants;
  lock.preparedAt = node_.sim().now();
  lock.recordOwnedByUnacked = ownedByUnacked;
  if (!txLocks_.acquire(std::move(lock))) return false;
  startLeaseReclaim();  // the sweep is what resolves orphans
  return true;
}

void MasterService::onRemove(const net::RpcRequest& req, Responder respond) {
  struct RemoveCtx {
    std::uint64_t tableId = 0;
    std::uint64_t keyId = 0;
    std::uint64_t clientId = 0;
    std::uint64_t rpcSeq = 0;
    std::uint64_t firstUnacked = 0;
    std::uint16_t tenant = 0;
    Responder respond;
  };
  auto cx = std::make_shared<RemoveCtx>();
  cx->tableId = req.a;
  cx->keyId = req.b;
  cx->clientId = req.clientId;
  cx->rpcSeq = req.rpcSeq;
  cx->firstUnacked = req.firstUnacked;
  cx->tenant = req.tenant;
  cx->respond = std::move(respond);

  dispatch_.enqueue(guard([this, cx]() mutable {
    if (!ownsKey(cx->tableId, cx->keyId)) {
      ++stats_.unknownTablet;
      net::RpcResponse r;
      r.status = net::Status::kUnknownTablet;
      cx->respond(std::move(r));
      return;
    }
    if (isMigratingRange(cx->tableId,
                         hash::keyHash(hash::Key{cx->tableId, cx->keyId}))) {
      net::RpcResponse r;
      r.status = net::Status::kRecovering;
      cx->respond(std::move(r));
      return;
    }
    if (cx->clientId != 0) {
      if (directory_.leaseValid && !directory_.leaseValid(cx->clientId)) {
        net::RpcResponse r;
        r.status = net::Status::kExpiredLease;
        cx->respond(std::move(r));
        return;
      }
      startLeaseReclaim();
      std::vector<log::LogRef> freed;
      const auto adm =
          unacked_.begin(cx->clientId, cx->rpcSeq, cx->firstUnacked, &freed);
      releaseCompletionRecords(freed);
      switch (adm.check) {
        case UnackedRpcResults::Check::kCompleted: {
          net::RpcResponse r;
          r.status = static_cast<net::Status>(adm.result.status);
          r.a = adm.result.found ? 1 : 0;
          r.b = adm.result.version;
          cx->respond(std::move(r));
          return;
        }
        case UnackedRpcResults::Check::kInProgress: {
          net::RpcResponse r;
          r.status = net::Status::kRecovering;
          cx->respond(std::move(r));
          return;
        }
        case UnackedRpcResults::Check::kStale: {
          net::RpcResponse r;
          r.status = net::Status::kStaleRpc;
          cx->respond(std::move(r));
          return;
        }
        case UnackedRpcResults::Check::kNew:
          break;
      }
    }
    node_.cpu().acquireWorker(guard([this, cx](int w) mutable {
      node_.cpu().tagWorker(w, {power::OpClass::kUpdate, cx->tenant});
      logLock_.acquire(guard([this, cx, w]() mutable {
        node_.sim().schedule(
            params_.removeServiceTime, guard([this, cx, w]() mutable {
              const bool tracked = cx->clientId != 0;
              if (const TxLockTable::Lock* held =
                      txLocks_.get(cx->tableId, cx->keyId);
                  held != nullptr) {
                // Same rule as onWrite: a prepared transaction's version
                // lock blocks the remove until its decision lands.
                txLocks_.countConflict();
                if (tracked) {
                  unacked_.abortInProgress(cx->clientId, cx->rpcSeq);
                }
                net::RpcResponse r;
                r.status = net::Status::kTxConflict;
                r.b = held->expectedVersion;
                logLock_.release();
                cx->respond(std::move(r));
                node_.cpu().releaseWorker(w);
                return;
              }
              const hash::Key k{cx->tableId, cx->keyId};
              const auto* loc = map_.get(k);
              net::RpcResponse r;
              std::uint32_t entryBytes = 0;
              log::LogRef lastRef;
              std::uint64_t version = 0;
              const bool found = loc != nullptr;
              if (found) {
                if (tracked) {
                  ensureHeadRoom(params_.tombstoneBytes +
                                 params_.completionRecordBytes);
                }
                log::LogEntry t;
                t.tableId = cx->tableId;
                t.keyId = cx->keyId;
                t.sizeBytes = params_.tombstoneBytes;
                t.version = log_.nextVersion();
                t.type = log::EntryType::kTombstone;
                t.refSegment = loc->ref.segment;
                lastRef = log_.append(t, node_.sim().now());
                entryBytes = t.sizeBytes;
                version = t.version;
                log_.markDead(loc->ref);
                map_.erase(k);
                r.a = 1;
              } else {
                r.a = 0;
              }
              log::LogRef rec;
              if (tracked) {
                // Even a not-found remove gets a record: the retry must
                // see the original answer, not whatever a later write put
                // there.
                rec = appendCompletion(cx->tableId, cx->keyId, cx->clientId,
                                       cx->rpcSeq, version, net::Status::kOk,
                                       found);
                entryBytes += params_.completionRecordBytes;
                lastRef = rec;
              }
              node_.chargeDram(entryBytes,
                               {power::OpClass::kUpdate, cx->tenant});
              r.b = version;
              auto finish = guard([this, cx, w, r, rec, version, found,
                                   tracked](bool ok) mutable {
                logLock_.release();
                if (!ok) {
                  r.status = net::Status::kError;
                  if (tracked) {
                    unacked_.abortInProgress(cx->clientId, cx->rpcSeq);
                    log_.markDead(rec);
                  }
                } else if (tracked) {
                  UnackedRpcResults::Result rr;
                  rr.status = static_cast<std::uint8_t>(net::Status::kOk);
                  rr.version = version;
                  rr.found = found;
                  rr.tableId = cx->tableId;
                  rr.keyId = cx->keyId;
                  rr.record = rec;
                  unacked_.recordCompletion(cx->clientId, cx->rpcSeq, rr);
                }
                ++stats_.removes;
                if (ok && crashBeforeReplyHook_) {
                  auto hook = std::move(crashBeforeReplyHook_);
                  crashBeforeReplyHook_ = nullptr;
                  node_.cpu().releaseWorker(w);
                  hook();
                  return;
                }
                cx->respond(std::move(r));
                node_.cpu().releaseWorker(w);
                maybeStartCleaner();
              });
              if (entryBytes == 0 || params_.replication.factor <= 0) {
                finish(true);
              } else {
                replicaMgr_.replicateAppend(lastRef.segment, entryBytes,
                                            std::move(finish));
              }
            }));
      }));
    }));
  }));
}

void MasterService::onScan(const net::RpcRequest& req, Responder respond) {
  const std::uint64_t tableId = req.a;
  const std::uint64_t startHash = req.b;
  const std::uint64_t endHash = req.c;
  const std::uint16_t tenant = req.tenant;

  dispatch_.enqueue(guard([this, tableId, startHash, endHash, tenant,
                           respond = std::move(respond)]() mutable {
    node_.cpu().acquireWorker(guard([this, tableId, startHash, endHash,
                                     tenant,
                                     respond =
                                         std::move(respond)](int w) mutable {
      node_.cpu().tagWorker(w, {power::OpClass::kRead, tenant});
      // Walk the index; objects outside [startHash, endHash] or the table
      // are skipped (they still cost a probe, folded into perEntry).
      std::uint64_t count = 0;
      std::uint64_t bytes = 0;
      map_.forEach([&](const hash::Key& k, const hash::ObjectLocation& loc) {
        if (k.tableId != tableId) return;
        const std::uint64_t h = hash::keyHash(k);
        if (h < startHash || h > endHash) return;
        ++count;
        bytes += loc.sizeBytes;
      });
      const sim::Duration cpu =
          params_.scanSetupCpu +
          params_.scanPerEntryCpu *
              static_cast<sim::Duration>(map_.size());
      node_.sim().schedule(cpu, guard([this, w, count, bytes, tenant,
                                       respond =
                                           std::move(respond)]() mutable {
        node_.chargeDram(bytes, {power::OpClass::kRead, tenant});
        node_.cpu().releaseWorker(w);
        net::RpcResponse r;
        r.a = count;
        r.payloadBytes = bytes;
        respond(std::move(r));
      }));
    }));
  }));
}

bool MasterService::isMigratingRange(std::uint64_t tableId,
                                     std::uint64_t hash) const {
  for (const auto& m : migrations_) {
    if (m->tablet().covers(tableId, hash)) return true;
  }
  return false;
}

void MasterService::startMigration(const Tablet& tablet,
                                   node::NodeId destination) {
  auto task = std::make_unique<MigrationTask>(*this, tablet, destination);
  MigrationTask* raw = task.get();
  migrations_.push_back(std::move(task));
  raw->start();
}

std::vector<log::LogEntry> MasterService::takeMigrationBatch(
    std::uint64_t batchId) {
  for (auto& m : migrations_) {
    auto batch = m->takeBatch(batchId);
    if (!batch.empty()) return batch;
  }
  return {};
}

void MasterService::dropObjectForMigration(const hash::Key& k) {
  if (const auto* loc = map_.get(k)) {
    log_.markDead(loc->ref);
    map_.erase(k);
  }
}

void MasterService::removeTablet(const Tablet& t) {
  std::erase_if(tablets_, [&t](const Tablet& mine) {
    return mine.tableId == t.tableId && mine.startHash == t.startHash &&
           mine.endHash == t.endHash;
  });
}

void MasterService::onMigrationTaskFinished(MigrationTask* task) {
  node_.sim().schedule(0, guard([this, task] {
    std::erase_if(migrations_, [task](const std::unique_ptr<MigrationTask>& p) {
      return p.get() == task;
    });
  }));
}

void MasterService::onMultiOp(const net::RpcRequest& req,
                              Responder respond) {
  const std::uint64_t tableId = req.a;
  const auto valueBytes = static_cast<std::uint32_t>(req.b);
  const bool isWrite = req.op == net::Opcode::kMultiWrite;
  const std::uint16_t tenant = req.tenant;
  auto keys = req.keys;

  dispatch_.enqueue(guard([this, tableId, valueBytes, isWrite, keys, tenant,
                           respond = std::move(respond)]() mutable {
    if (!keys || keys->empty()) {
      net::RpcResponse r;
      r.status = net::Status::kError;
      respond(std::move(r));
      return;
    }
    node_.cpu().acquireWorker(guard([this, tableId, valueBytes, isWrite,
                                     keys, tenant,
                                     respond =
                                         std::move(respond)](int w) mutable {
      node_.cpu().tagWorker(
          w, {isWrite ? power::OpClass::kUpdate : power::OpClass::kRead,
              tenant});
      const auto n = static_cast<sim::Duration>(keys->size());
      const sim::Duration cpu =
          params_.multiOpBaseCpu +
          (isWrite ? params_.multiWritePerKeyCpu
                   : params_.multiReadPerKeyCpu) *
              n;
      // Batched writes still serialise on the log head; model the batch
      // as one lock acquisition.
      auto work = guard([this, tableId, valueBytes, isWrite, keys, w, tenant,
                         respond = std::move(respond)]() mutable {
        net::RpcResponse r;
        std::uint64_t found = 0;
        std::uint64_t bytes = 0;
        std::uint64_t wrongTablet = 0;
        for (const std::uint64_t key : *keys) {
          if (!ownsKey(tableId, key)) {
            ++wrongTablet;
            continue;
          }
          if (isWrite) {
            applyWrite(tableId, key, valueBytes);
            ++found;
            bytes += valueBytes;
            ++stats_.writes;
          } else {
            if (const auto* loc = map_.get(hash::Key{tableId, key})) {
              ++found;
              bytes += loc->sizeBytes;
            }
            ++stats_.reads;
          }
        }
        (void)wrongTablet;
        node_.chargeDram(
            bytes + (isWrite ? found * params_.objectOverheadBytes : 0),
            {isWrite ? power::OpClass::kUpdate : power::OpClass::kRead,
             tenant});
        r.a = found;
        r.b = static_cast<std::uint64_t>(keys->size()) - found;  // missing
        r.payloadBytes = isWrite ? 0 : bytes;
        auto finish = guard([this, w, isWrite, r,
                             respond = std::move(respond)](bool ok) mutable {
          if (isWrite) logLock_.release();
          if (!ok) r.status = net::Status::kError;
          respond(std::move(r));
          node_.cpu().releaseWorker(w);
          maybeStartCleaner();
        });
        if (!isWrite || params_.replication.factor <= 0 ||
            log_.head() == nullptr) {
          finish(true);
        } else {
          // One batched sync for the whole append run.
          replicaMgr_.replicateAppend(
              log_.head()->id(),
              static_cast<std::uint64_t>(found) *
                  (valueBytes + params_.objectOverheadBytes),
              std::move(finish));
        }
      });
      if (isWrite) {
        logLock_.acquire(guard([this, cpu, work = std::move(work)]() mutable {
          node_.sim().schedule(cpu, std::move(work));
        }));
      } else {
        node_.sim().schedule(cpu, std::move(work));
      }
    }));
  }));
}

void MasterService::onMigrateTablet(const net::RpcRequest& req,
                                    Responder respond) {
  const std::uint64_t tableId = req.a;
  const std::uint64_t start = req.b;
  const std::uint64_t end = req.c;
  const auto dest = static_cast<node::NodeId>(req.d);
  dispatch_.enqueue(guard([this, tableId, start, end, dest,
                           respond = std::move(respond)]() mutable {
    // Must own exactly this tablet.
    const Tablet* mine = nullptr;
    for (const Tablet& t : tablets_) {
      if (t.tableId == tableId && t.startHash == start && t.endHash == end) {
        mine = &t;
        break;
      }
    }
    net::RpcResponse r;
    if (mine == nullptr || directory_.masterOn(dest) == nullptr) {
      r.status = net::Status::kError;
      respond(std::move(r));
      return;
    }
    respond(std::move(r));  // ack; completion via kMigrationDone
    startMigration(*mine, dest);
  }));
}

void MasterService::onMigrationData(const net::RpcRequest& req,
                                    node::NodeId from, Responder respond) {
  const auto source = static_cast<node::NodeId>(req.a);
  const std::uint64_t batchId = req.b;
  const std::uint64_t count = req.c;
  (void)from;

  dispatch_.enqueue(guard([this, source, batchId, count,
                           respond = std::move(respond)]() mutable {
    node_.cpu().acquireWorker(guard([this, source, batchId, count,
                                     respond =
                                         std::move(respond)](int w) mutable {
      node_.cpu().tagWorker(w, {power::OpClass::kMigration, 0});
      const sim::Duration cpu =
          params_.migration.destPerObjectCpu *
          static_cast<sim::Duration>(count);
      node_.sim().schedule(cpu, guard([this, source, batchId, w,
                                       respond =
                                           std::move(respond)]() mutable {
        MasterService* src = directory_.masterOn(source);
        std::vector<log::LogEntry> batch =
            src != nullptr ? src->takeMigrationBatch(batchId)
                           : std::vector<log::LogEntry>{};
        net::RpcResponse r;
        if (src == nullptr) {
          r.status = net::Status::kError;
          respond(std::move(r));
          node_.cpu().releaseWorker(w);
          return;
        }
        std::uint64_t bytes = 0;
        log::SegmentId lastSeg = log::kInvalidSegment;
        for (const log::LogEntry& e : batch) {
          log::LogEntry copy = e;
          copy.live = true;
          const log::LogRef ref = log_.append(copy, node_.sim().now());
          bytes += e.sizeBytes;
          lastSeg = ref.segment;
          if (e.type == log::EntryType::kCompletion) {
            // Migrated suppression state: install, never index.
            UnackedRpcResults::Result rr;
            rr.status = e.opStatus;
            rr.version = e.version;
            rr.found = e.found;
            rr.tableId = e.tableId;
            rr.keyId = e.keyId;
            rr.record = ref;
            if (!unacked_.recover(e.clientId, e.rpcSeq, rr)) {
              log_.markDead(ref);
            }
            continue;
          }
          if (e.type == log::EntryType::kTxPrepare) {
            // A version lock moves with its tablet: re-install it and its
            // suppression entry so the new owner votes consistently and the
            // orphan sweep here can finish the tx (docs/TRANSACTIONS.md).
            UnackedRpcResults::Result rr;
            rr.status = e.opStatus;
            rr.version = e.version;
            rr.found = true;
            rr.tableId = e.tableId;
            rr.keyId = e.keyId;
            rr.record = ref;
            const bool owned =
                e.clientId != 0 && unacked_.recover(e.clientId, e.rpcSeq, rr);
            if (installRecoveredTxLock(e, ref, owned)) {
              txLocks_.countMigrated();
            } else if (!owned) {
              log_.markDead(ref);
            }
            continue;
          }
          map_.put(hash::Key{e.tableId, e.keyId},
                   hash::ObjectLocation{ref, e.version, e.sizeBytes});
        }
        node_.chargeDram(bytes, {power::OpClass::kMigration, 0});
        r.a = batch.size();
        auto finish = guard([this, w, r,
                             respond = std::move(respond)](bool ok) mutable {
          if (!ok) r.status = net::Status::kError;
          respond(std::move(r));
          node_.cpu().releaseWorker(w);
          maybeStartCleaner();
        });
        if (params_.replication.factor <= 0 ||
            lastSeg == log::kInvalidSegment) {
          finish(true);
        } else {
          // Durability before ack: the batch is synced like a write (seal
          // hooks true up any bytes that landed in earlier segments).
          replicaMgr_.replicateAppend(lastSeg, bytes, std::move(finish));
        }
      }));
    }));
  }));
}

void MasterService::onStartRecovery(const net::RpcRequest& req,
                                    Responder respond) {
  const std::uint64_t planId = req.a;
  const int partition = static_cast<int>(req.b);
  dispatch_.enqueue(guard([this, planId, partition,
                           respond = std::move(respond)]() mutable {
    RecoveryPlanPtr plan = planLookup_ ? planLookup_(planId) : nullptr;
    net::RpcResponse r;
    if (!plan || partition < 0 ||
        partition >= static_cast<int>(plan->partitions.size())) {
      r.status = net::Status::kError;
      respond(std::move(r));
      return;
    }
    respond(std::move(r));  // ack start; completion arrives via
                            // kRecoveryDone
    startRecovery(std::move(plan), partition);
  }));
}

void MasterService::onServerListUpdate(const net::RpcRequest& req,
                                       Responder respond) {
  const auto dead = static_cast<node::NodeId>(req.a);
  dispatch_.enqueue(guard([this, dead,
                           respond = std::move(respond)]() mutable {
    // Invalidate every replica slot pointing at the dead server and kick
    // off background repair; in-flight recoveries fail over their segment
    // fetches immediately instead of waiting out the RPC timeout.
    replicaMgr_.onBackupFailed(dead);
    for (auto& rt : recoveries_) rt->onBackupDown(dead);
    respond(net::RpcResponse{});
  }));
}

void MasterService::startRecovery(RecoveryPlanPtr plan, int partitionIndex) {
  auto task = std::make_unique<RecoveryTask>(*this, std::move(plan),
                                             partitionIndex);
  RecoveryTask* raw = task.get();
  recoveries_.push_back(std::move(task));
  raw->start();
}

void MasterService::onRecoveryTaskFinished(RecoveryTask* task) {
  // Deferred erase: the task may still be on the call stack.
  node_.sim().schedule(0, guard([this, task] {
    std::erase_if(recoveries_, [task](const std::unique_ptr<RecoveryTask>& p) {
      return p.get() == task;
    });
  }));
}

void MasterService::bulkInsert(std::uint64_t tableId, std::uint64_t keyId,
                               std::uint32_t valueBytes, sim::SimTime now) {
  bulkMode_ = true;
  log::LogEntry e;
  e.tableId = tableId;
  e.keyId = keyId;
  e.sizeBytes = valueBytes + params_.objectOverheadBytes;
  e.version = log_.nextVersion();
  const log::LogRef ref = log_.append(e, now);
  const hash::Key k{tableId, keyId};
  if (const auto* old = map_.get(k)) log_.markDead(old->ref);
  map_.put(k, hash::ObjectLocation{ref, e.version, e.sizeBytes});
  bulkMode_ = false;
}

void MasterService::installReplicasAfterBulkLoad() {
  if (params_.replication.factor <= 0) return;
  for (const auto& [segId, seg] : log_.segments()) {
    const auto* placement = replicaMgr_.placementOf(segId);
    if (placement == nullptr) continue;
    for (node::NodeId b : *placement) {
      if (BackupService* bs = directory_.backupOn(b)) {
        bs->bulkInstallFrame(node_.id(), seg, seg->appendedBytes(),
                             seg->sealed(), /*onDisk=*/seg->sealed());
      }
    }
  }
}

std::shared_ptr<const log::Segment> MasterService::findSegment(
    log::SegmentId id) const {
  if (auto s = log_.sharedSegment(id)) return s;
  for (const auto& rt : recoveries_) {
    // Side-log segments are resolved through the task's log.
    if (auto s = rt->sideSegment(id)) return s;
  }
  return nullptr;
}

void MasterService::registerMetrics(obs::MetricRegistry& reg,
                                    const std::string& prefix) {
  reg.probeCounter(prefix + ".reads", "ops", [this] {
    return static_cast<double>(stats_.reads);
  });
  reg.probeCounter(prefix + ".writes", "ops", [this] {
    return static_cast<double>(stats_.writes);
  });
  reg.probeCounter(prefix + ".removes", "ops", [this] {
    return static_cast<double>(stats_.removes);
  });
  reg.probeCounter(prefix + ".missing_keys", "ops", [this] {
    return static_cast<double>(stats_.missingKeys);
  });
  reg.probeCounter(prefix + ".unknown_tablet", "ops", [this] {
    return static_cast<double>(stats_.unknownTablet);
  });
  reg.probeCounter(prefix + ".cleaner_runs", "ops", [this] {
    return static_cast<double>(stats_.cleanerRuns);
  });
  reg.probeCounter(prefix + ".replication_failures", "ops", [this] {
    return static_cast<double>(stats_.replicationFailures);
  });
  reg.probeCounter(prefix + ".shed_requests", "ops", [this] {
    return static_cast<double>(stats_.shedRequests);
  });
  reg.probeCounter(prefix + ".cleaner_deferrals", "ops", [this] {
    return static_cast<double>(stats_.cleanerDeferrals);
  });
  reg.probeCounter(prefix + ".replication.repairs_deferred", "ops", [this] {
    return static_cast<double>(replicaMgr_.repairsDeferred());
  });
  reg.probeGauge(prefix + ".log_lock_waiters", "items", [this] {
    return static_cast<double>(logLock_.waiters());
  });
  reg.probeGauge(prefix + ".log_segments", "items", [this] {
    return static_cast<double>(log_.segments().size());
  });
  reg.probeGauge(prefix + ".objects", "items", [this] {
    return static_cast<double>(map_.size());
  });
  reg.probeHistogram(prefix + ".read_service", "us",
                     [this]() -> const sim::Histogram* {
                       return &stats_.readServiceLatency;
                     });
  reg.probeHistogram(prefix + ".write_service", "us",
                     [this]() -> const sim::Histogram* {
                       return &stats_.writeServiceLatency;
                     });
  reg.probeCounter(prefix + ".replication.bytes", "bytes", [this] {
    return static_cast<double>(replicaMgr_.bytesReplicated());
  });
  reg.probeCounter(prefix + ".replication.timeouts", "ops", [this] {
    return static_cast<double>(replicaMgr_.replicaTimeouts());
  });
  reg.probeCounter(prefix + ".replication.replacements", "ops", [this] {
    return static_cast<double>(replicaMgr_.replacementsMade());
  });
  reg.probeGauge(prefix + ".replication.pending_async", "items", [this] {
    return static_cast<double>(replicaMgr_.pendingAsyncWrites());
  });
  reg.probeCounter(prefix + ".linearize.duplicates_suppressed", "ops", [this] {
    return static_cast<double>(unacked_.duplicatesSuppressed());
  });
  reg.probeCounter(prefix + ".linearize.completion_records", "ops", [this] {
    return static_cast<double>(unacked_.completionsRecorded());
  });
  reg.probeCounter(prefix + ".linearize.records_recovered", "ops", [this] {
    return static_cast<double>(unacked_.recordsRecovered());
  });
  reg.probeCounter(prefix + ".linearize.records_gced", "ops", [this] {
    return static_cast<double>(unacked_.recordsGced());
  });
  reg.probeCounter(prefix + ".linearize.stale_rejected", "ops", [this] {
    return static_cast<double>(unacked_.staleRejected());
  });
  reg.probeCounter(prefix + ".linearize.expired_clients", "ops", [this] {
    return static_cast<double>(unacked_.clientsExpired());
  });
  reg.probeGauge(prefix + ".linearize.tracked_clients", "items", [this] {
    return static_cast<double>(unacked_.trackedClients());
  });
  reg.probeCounter(prefix + ".tx.prepares", "ops", [this] {
    return static_cast<double>(txLocks_.prepares());
  });
  reg.probeCounter(prefix + ".tx.commits", "ops", [this] {
    return static_cast<double>(txLocks_.commits());
  });
  reg.probeCounter(prefix + ".tx.aborts", "ops", [this] {
    return static_cast<double>(txLocks_.aborts());
  });
  reg.probeCounter(prefix + ".tx.conflicts", "ops", [this] {
    return static_cast<double>(txLocks_.conflicts());
  });
  reg.probeCounter(prefix + ".tx.orphans_resolved", "ops", [this] {
    return static_cast<double>(txLocks_.orphansResolved());
  });
  reg.probeCounter(prefix + ".tx.locks_recovered", "ops", [this] {
    return static_cast<double>(txLocks_.locksRecovered());
  });
  reg.probeCounter(prefix + ".tx.locks_migrated", "ops", [this] {
    return static_cast<double>(txLocks_.locksMigrated());
  });
  reg.probeCounter(prefix + ".tx.resolve_requests", "ops", [this] {
    return static_cast<double>(txResolveRequests_);
  });
  reg.probeGauge(prefix + ".tx.locks_held", "items", [this] {
    return static_cast<double>(txLocks_.locksHeld());
  });
  // Tablet heat: probes for tablets owned now, plus dynamic registration
  // for tablets gained later (recovery, migration) via addTablet.
  metricReg_ = &reg;
  metricPrefix_ = prefix;
  for (auto& [key, heat] : tabletHeat_) {
    if (!heat.registered) registerTabletHeat(key.first, key.second, heat);
  }
}

void MasterService::maybeStartCleaner() {
  if (cleanerActive_ || !log_.needsCleaning()) return;
  // Degradation ladder (docs/OVERLOAD.md): while the node is shedding, the
  // cleaner's CPU and replication bandwidth go to foreground work. Deferred,
  // not cancelled — every write completion re-checks — and the deferral
  // stops at the hard memory ceiling, where cleaning beats admission.
  if (dispatch_.underPressure() &&
      static_cast<double>(log_.memoryInUse()) <
          params_.cleanerDeferUtilization *
              static_cast<double>(log_.params().capacityBytes)) {
    ++stats_.cleanerDeferrals;
    return;
  }
  cleanerActive_ = true;
  cleanerLoop();
}

void MasterService::cleanerLoop() {
  if (!node_.cpu().poweredOn() || !log_.needsCleaning()) {
    cleanerActive_ = false;
    return;
  }
  const log::SegmentId victim = cleaner_.selectVictim(node_.sim().now());
  if (victim == log::kInvalidSegment) {
    cleanerActive_ = false;
    return;
  }
  const log::Segment* seg = log_.segment(victim);
  const std::uint64_t liveBytes = seg != nullptr ? seg->liveBytes() : 0;
  const sim::Duration cost =
      params_.cleanerPassCpu +
      sim::nsec(static_cast<sim::Duration>(
          params_.cleanerPerByteCpuNs * static_cast<double>(liveBytes)));
  // One journal span per pass; cleaner passes on a node are serialized by
  // cleanerActive_, so these spans never overlap per actor.
  std::uint64_t passSpan = 0;
  if (journal_ != nullptr) {
    passSpan = journal_->beginSpan("cleaner_pass", node_.id());
    journal_->addBytes(passSpan, liveBytes);
  }
  node_.cpu().run(cost, {power::OpClass::kCleaner, 0},
                  guard([this, victim, liveBytes, passSpan] {
    if (log_.segment(victim) != nullptr) {
      // Relocations run under the same single-threaded event, so they
      // cannot interleave with a write's append (documented simplification
      // of RAMCloud's fine-grained cleaner/append synchronisation).
      cleaner_.cleanSegment(victim, node_.sim().now());
      replicaMgr_.freeSegment(victim);
      ++stats_.cleanerRuns;
      node_.chargeDram(liveBytes, {power::OpClass::kCleaner, 0});
    }
    if (journal_ != nullptr && passSpan != 0) journal_->endSpan(passSpan);
    cleanerLoop();
  }));
}

}  // namespace rc::server
