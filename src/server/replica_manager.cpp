#include "server/replica_manager.hpp"

#include <algorithm>
#include <utility>

namespace rc::server {

ReplicaManager::ReplicaManager(sim::Simulation& sim, net::RpcSystem& rpc,
                               node::NodeId self, ReplicationParams params,
                               CandidatesFn candidates,
                               SegmentLookupFn segmentLookup, sim::Rng rng)
    : sim_(sim),
      rpc_(rpc),
      self_(self),
      params_(params),
      candidates_(std::move(candidates)),
      segmentLookup_(std::move(segmentLookup)),
      rng_(rng) {}

ReplicaManager::~ReplicaManager() {
  if (repairEvent_ != sim::kInvalidEvent) sim_.cancel(repairEvent_);
}

void ReplicaManager::onSegmentOpened(const log::Segment& seg) {
  if (params_.factor <= 0) return;
  SegmentState st;
  st.backups.reserve(static_cast<std::size_t>(params_.factor));
  std::vector<node::NodeId> pool = candidates_();
  // Random distinct backups; RAMCloud scatters every segment independently.
  for (int r = 0; r < params_.factor && !pool.empty(); ++r) {
    const std::size_t pick = rng_.uniformInt(pool.size());
    st.backups.push_back(pool[pick]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  segments_[seg.id()] = std::move(st);
}

const std::vector<node::NodeId>* ReplicaManager::placementOf(
    log::SegmentId segId) const {
  auto it = segments_.find(segId);
  return it == segments_.end() ? nullptr : &it->second.backups;
}

node::NodeId ReplicaManager::pickReplacement(
    const std::vector<node::NodeId>& current) {
  std::vector<node::NodeId> pool = candidates_();
  std::erase_if(pool, [&](node::NodeId n) {
    return std::find(current.begin(), current.end(), n) != current.end();
  });
  if (pool.empty()) return node::kInvalidNode;
  return pool[rng_.uniformInt(pool.size())];
}

void ReplicaManager::sendChain(log::SegmentId segId, std::uint64_t bytes,
                               bool close, std::size_t replicaIdx,
                               int retriesLeft, DoneFn done) {
  auto it = segments_.find(segId);
  if (it == segments_.end()) {  // freed meanwhile
    if (done) done(false);
    return;
  }
  SegmentState& st = it->second;
  if (replicaIdx >= st.backups.size()) {
    st.bytesSent += bytes;
    if (close) st.closedSent = true;
    if (done) done(true);
    return;
  }
  if (st.backups[replicaIdx] == node::kInvalidNode) {
    // The slot was invalidated by a backup death and not repaired yet:
    // replace inline and bring the fresh replica up to the full watermark.
    if (retriesLeft <= 0) {
      if (done) done(false);
      return;
    }
    const node::NodeId fresh = pickReplacement(st.backups);
    if (fresh == node::kInvalidNode) {
      if (done) done(false);
      return;
    }
    ++replacements_;
    st.backups[replicaIdx] = fresh;
    std::uint64_t resend = bytes;
    if (const log::Segment* seg = segmentLookup_(segId)) {
      resend = std::max<std::uint64_t>(bytes, seg->appendedBytes());
    }
    sendChain(segId, resend, close, replicaIdx, retriesLeft - 1,
              std::move(done));
    return;
  }
  const node::NodeId backup = st.backups[replicaIdx];
  // perReplicaSendCpu is charged by the caller's worker occupancy model:
  // the send itself is wire + remote work; the master-side CPU shows up as
  // elapsed time here because the worker stays busy through the sync.
  // One-sided RDMA shrinks the send to a DMA post and strips the remote
  // CPU entirely (flag bit 1 tells the backup).
  const sim::Duration sendCpu =
      params_.oneSidedRdma ? sim::usec(1) : params_.perReplicaSendCpu;
  sim_.schedule(sendCpu, [this, segId, bytes, close, replicaIdx, retriesLeft,
                          backup, done = std::move(done)]() mutable {
    if (stillAlive && !stillAlive()) return;
    bytesReplicated_ += bytes;
    net::RpcRequest req;
    req.op = net::Opcode::kBackupWrite;
    req.a = static_cast<std::uint64_t>(self_);
    req.b = segId;
    req.c = (close ? 1u : 0u) | (params_.oneSidedRdma ? 2u : 0u);
    req.payloadBytes = bytes;
    rpc_.call(self_, backup, net::kBackupPort, req, timeouts::kReplication,
              [this, segId, bytes, close, replicaIdx, retriesLeft,
               done = std::move(done)](const net::RpcResponse& resp) mutable {
      if (stillAlive && !stillAlive()) return;
      if (resp.status == net::Status::kOk) {
        const sim::Duration ackCpu =
            params_.oneSidedRdma ? sim::usec(2) : params_.ackProcessing;
        sim_.schedule(ackCpu,
                      [this, segId, bytes, close, replicaIdx,
                       done = std::move(done)]() mutable {
          if (stillAlive && !stillAlive()) return;
          sendChain(segId, bytes, close, replicaIdx + 1,
                    params_.maxRetries, std::move(done));
        });
        return;
      }
      // Backup unreachable: pick a replacement and bring it up to the
      // current watermark, then retry this position after a backed-off
      // wait (deterministic jitter keeps retries from synchronising
      // across masters while staying reproducible per seed).
      ++replicaTimeouts_;
      auto it2 = segments_.find(segId);
      if (it2 == segments_.end() || retriesLeft <= 0) {
        if (done) done(false);
        return;
      }
      const node::NodeId fresh = pickReplacement(it2->second.backups);
      if (fresh == node::kInvalidNode) {
        if (done) done(false);
        return;
      }
      ++replacements_;
      it2->second.backups[replicaIdx] = fresh;
      std::uint64_t resend = bytes;
      if (const log::Segment* seg = segmentLookup_(segId)) {
        resend = std::max<std::uint64_t>(bytes, seg->appendedBytes());
      }
      const int attempt = params_.maxRetries - retriesLeft;
      const std::uint64_t salt = (static_cast<std::uint64_t>(self_) << 40) ^
                                 (segId << 8) ^ replicaIdx;
      sim_.schedule(
          params_.retryBackoff.delay(attempt, salt),
          [this, segId, resend, close, replicaIdx, retriesLeft,
           done = std::move(done)]() mutable {
            if (stillAlive && !stillAlive()) return;
            sendChain(segId, resend, close, replicaIdx, retriesLeft - 1,
                      std::move(done));
          });
    });
  });
}

void ReplicaManager::replicateAppend(log::SegmentId segId,
                                     std::uint64_t bytes, DoneFn done) {
  if (params_.factor <= 0) {
    if (done) done(true);
    return;
  }
  if (!params_.waitForAcks) {
    // SS IX-B ablation: fire replication and acknowledge immediately.
    ++pendingAsync_;
    sendChain(segId, bytes, false, 0, params_.maxRetries,
              [this](bool) { --pendingAsync_; });
    if (done) done(true);
    return;
  }
  sendChain(segId, bytes, false, 0, params_.maxRetries, std::move(done));
}

void ReplicaManager::sealSegment(const log::Segment& seg) {
  if (params_.factor <= 0) return;
  auto it = segments_.find(seg.id());
  if (it == segments_.end()) return;
  SegmentState& st = it->second;
  if (st.closedSent) return;
  const std::uint64_t tail =
      seg.appendedBytes() > st.bytesSent ? seg.appendedBytes() - st.bytesSent
                                         : 0;
  ++pendingAsync_;
  sendChain(seg.id(), tail, true, 0, params_.maxRetries,
            [this](bool) { --pendingAsync_; });
}

void ReplicaManager::replicateWholeSegment(const log::Segment& seg,
                                           DoneFn done) {
  if (params_.factor <= 0) {
    if (done) done(true);
    return;
  }
  if (segments_.find(seg.id()) == segments_.end()) onSegmentOpened(seg);
  sendChain(seg.id(), seg.appendedBytes(), true, 0, params_.maxRetries,
            std::move(done));
}

void ReplicaManager::freeSegment(log::SegmentId segId) {
  auto it = segments_.find(segId);
  if (it == segments_.end()) return;
  for (node::NodeId backup : it->second.backups) {
    if (backup == node::kInvalidNode) continue;
    net::RpcRequest req;
    req.op = net::Opcode::kBackupFree;
    req.a = static_cast<std::uint64_t>(self_);
    req.b = segId;
    rpc_.call(self_, backup, net::kBackupPort, req, timeouts::kControl,
              [](const net::RpcResponse&) {});
  }
  segments_.erase(it);
}

void ReplicaManager::onBackupFailed(node::NodeId backup) {
  bool any = false;
  for (auto& [segId, st] : segments_) {
    for (node::NodeId& b : st.backups) {
      if (b == backup) {
        b = node::kInvalidNode;
        any = true;
      }
    }
  }
  if (any) {
    repairAttempt_ = 0;  // fresh incident: restart the backoff ladder
    scheduleRepair();
  }
}

std::uint64_t ReplicaManager::rfDeficit() const {
  if (params_.factor <= 0) return 0;
  const auto want = static_cast<std::size_t>(params_.factor);
  std::uint64_t deficit = 0;
  for (const auto& [segId, st] : segments_) {
    std::size_t healthy = 0;
    for (node::NodeId b : st.backups) {
      if (b != node::kInvalidNode) ++healthy;
    }
    if (healthy < want) deficit += want - healthy;
  }
  return deficit;
}

bool ReplicaManager::anySegmentFullyExposed() const {
  for (const auto& [segId, st] : segments_) {
    bool damaged = false;
    std::size_t healthy = 0;
    for (node::NodeId b : st.backups) {
      if (b == node::kInvalidNode) {
        damaged = true;
      } else {
        ++healthy;
      }
    }
    if (damaged && healthy == 0) return true;
  }
  return false;
}

void ReplicaManager::scheduleRepair() {
  if (repairScheduled_) return;
  if (stillAlive && !stillAlive()) return;
  repairScheduled_ = true;
  const int attempt = repairAttempt_;
  if (repairAttempt_ < 30) ++repairAttempt_;
  const std::uint64_t salt =
      (static_cast<std::uint64_t>(self_) << 32) ^ 0x5eedULL;
  sim::Duration d = params_.retryBackoff.delay(attempt, salt);
  // Degradation ladder: cede replication bandwidth to foreground work while
  // shedding — but never while any damaged segment is down to zero healthy
  // replicas (rf-deficit safety, docs/OVERLOAD.md).
  if (params_.pressureStretch > 1 && underPressure && underPressure() &&
      !anySegmentFullyExposed()) {
    d *= params_.pressureStretch;
    ++repairsDeferred_;
  }
  repairEvent_ = sim_.schedule(d, [this] { repairTick(); });
}

void ReplicaManager::repairTick() {
  repairScheduled_ = false;
  repairEvent_ = sim::kInvalidEvent;
  if (stillAlive && !stillAlive()) return;
  // Deterministic order regardless of hash-map layout.
  std::vector<log::SegmentId> damaged;
  bool inFlight = false;
  for (const auto& [segId, st] : segments_) {
    if (st.repairsInFlight > 0) {
      inFlight = true;
      continue;
    }
    for (node::NodeId b : st.backups) {
      if (b == node::kInvalidNode) {
        damaged.push_back(segId);
        break;
      }
    }
  }
  if (damaged.empty()) {
    if (!inFlight) repairAttempt_ = 0;  // converged; next incident starts fresh
    return;
  }
  std::sort(damaged.begin(), damaged.end());
  for (log::SegmentId segId : damaged) {
    const SegmentState& st = segments_.at(segId);
    for (std::size_t s = 0; s < st.backups.size(); ++s) {
      if (st.backups[s] == node::kInvalidNode) {
        repairSlot(segId, s);
        break;  // one slot per segment per round; the ack chains the next
      }
    }
  }
}

void ReplicaManager::repairSlot(log::SegmentId segId, std::size_t slot) {
  auto it = segments_.find(segId);
  if (it == segments_.end()) return;
  SegmentState& st = it->second;
  if (slot >= st.backups.size() ||
      st.backups[slot] != node::kInvalidNode) {
    return;
  }
  const node::NodeId fresh = pickReplacement(st.backups);
  if (fresh == node::kInvalidNode) {
    scheduleRepair();  // no candidates right now; back off and re-poll
    return;
  }
  std::uint64_t resend = st.bytesSent;
  if (const log::Segment* seg = segmentLookup_(segId)) {
    resend = std::max<std::uint64_t>(resend, seg->appendedBytes());
  }
  ++st.repairsInFlight;
  std::uint64_t span = 0;
  if (journal_) {
    span = journal_->beginSpan("rereplication", self_, 0, journalCtx_);
    journal_->addBytes(span, resend);
  }
  bytesReplicated_ += resend;
  net::RpcRequest req;
  req.op = net::Opcode::kBackupWrite;
  req.a = static_cast<std::uint64_t>(self_);
  req.b = segId;
  req.c = (st.closedSent ? 1u : 0u) | (params_.oneSidedRdma ? 2u : 0u);
  req.payloadBytes = resend;
  rpc_.call(self_, fresh, net::kBackupPort, req, timeouts::kReplication,
            [this, segId, slot, fresh, span](const net::RpcResponse& resp) {
    if (stillAlive && !stillAlive()) {
      if (journal_ && span) journal_->abandonSpan(span);
      return;
    }
    auto it2 = segments_.find(segId);
    if (it2 == segments_.end()) {  // freed while repairing
      if (journal_ && span) journal_->abandonSpan(span);
      return;
    }
    SegmentState& st2 = it2->second;
    if (st2.repairsInFlight > 0) --st2.repairsInFlight;
    if (resp.status == net::Status::kOk && slot < st2.backups.size() &&
        st2.backups[slot] == node::kInvalidNode) {
      st2.backups[slot] = fresh;
      ++replacements_;
      ++repairsCompleted_;
      repairAttempt_ = 0;
      if (journal_ && span) journal_->endSpan(span);
    } else {
      if (resp.status != net::Status::kOk) ++replicaTimeouts_;
      if (journal_ && span) journal_->abandonSpan(span);
    }
    if (rfDeficit() > 0) scheduleRepair();
  });
}

}  // namespace rc::server
