#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "log/segment.hpp"
#include "server/common.hpp"

namespace rc::server {

class MasterService;

/// Parameters of the tablet-migration path (our implementation of the
/// paper's SS IX "smart approach at the coordinator level which can decide
/// whether to add or remove nodes depending on the workload" — migration
/// is the mechanism that makes resizing possible).
struct MigrationParams {
  /// Objects shipped per kMigrationData RPC.
  int batchObjects = 512;
  /// Source-side CPU per migrated object (index probe + marshalling).
  sim::Duration sourcePerObjectCpu = sim::nsec(400);
  /// Destination-side CPU per object (log append + index insert).
  sim::Duration destPerObjectCpu = sim::nsec(900);
};

/// Moves one tablet (a hash range of a table) from this master to another.
///
/// Protocol: the source marks the range migrating (writes are bounced with
/// kRecovering so clients back off; reads keep being served), walks its
/// index in batches, ships each batch to the destination — which appends
/// to its own log with normal replication — then reports kMigrationDone to
/// the coordinator, which flips the tablet map. Finally the source drops
/// the moved objects.
class MigrationTask {
 public:
  MigrationTask(MasterService& source, Tablet tablet,
                node::NodeId destination);
  ~MigrationTask();

  void start();
  bool finished() const { return done_ || failed_; }
  bool failed() const { return failed_; }
  const Tablet& tablet() const { return tablet_; }

  void abort();

  /// Content side-channel: the destination fetches the batch the RPC
  /// announced (the bytes were paid on the wire).
  std::vector<log::LogEntry> takeBatch(std::uint64_t batchId);

  std::uint64_t objectsMoved() const { return objectsMoved_; }

 private:
  void collectKeys();
  void sendNextBatch();
  void finish(bool ok);
  /// Does (tableId, keyId) hash into the migrating range?
  bool keyInRange(std::uint64_t tableId, std::uint64_t keyId) const;

  MasterService& source_;
  Tablet tablet_;
  node::NodeId dest_;

  std::vector<log::LogEntry> pending_;  ///< snapshot of objects to move
  std::size_t nextIndex_ = 0;
  std::uint64_t nextBatchId_ = 1;
  std::unordered_map<std::uint64_t, std::vector<log::LogEntry>> inFlight_;
  std::uint64_t objectsMoved_ = 0;
  bool done_ = false;
  bool failed_ = false;
  bool aborted_ = false;
  std::uint64_t migrationSpan_ = 0;  ///< journal span; 0 = tracing off
  std::shared_ptr<bool> alive_;
};

}  // namespace rc::server
