#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "log/segment.hpp"
#include "server/common.hpp"

namespace rc::server {

/// One recovery master's share of a crashed master's data: a set of
/// key-hash subranges (derived from the crashed master's will).
struct PartitionSpec {
  std::vector<Tablet> ranges;

  bool covers(std::uint64_t tableId, std::uint64_t hash) const {
    for (const Tablet& t : ranges) {
      if (t.covers(tableId, hash)) return true;
    }
    return false;
  }
};

/// The coordinator's plan for recovering one crashed master, shared with
/// the participating backups and recovery masters. (In RAMCloud this state
/// travels inside the recovery RPCs; here the RPCs carry a plan id and the
/// plan structure is read through the ServiceDirectory — the bytes on the
/// wire are still accounted via the RPC payload sizes.)
struct RecoveryPlan {
  std::uint64_t planId = 0;
  ServerId crashedMaster = node::kInvalidNode;

  /// Journal context: the coordinator's recovery id and its root
  /// "recovery" span, so recovery masters and backups parent their phase
  /// spans into the same cross-node span tree (0 when tracing is off).
  std::uint64_t recoveryId = 0;
  std::uint64_t rootSpan = 0;

  std::vector<PartitionSpec> partitions;
  std::vector<ServerId> recoveryMasters;  ///< partition index -> master

  struct SegmentSource {
    log::SegmentId segment = log::kInvalidSegment;
    std::uint64_t bytes = 0;               ///< replicated watermark
    std::vector<node::NodeId> backups;     ///< replica holders (primary first)
  };
  std::vector<SegmentSource> segments;

  int partitionOf(ServerId master) const {
    for (std::size_t i = 0; i < recoveryMasters.size(); ++i) {
      if (recoveryMasters[i] == master) return static_cast<int>(i);
    }
    return -1;
  }
};

using RecoveryPlanPtr = std::shared_ptr<const RecoveryPlan>;

}  // namespace rc::server
