#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "log/segment.hpp"
#include "sim/time.hpp"

namespace rc::server {

/// Per-object minitransaction lock state on a participant master
/// (docs/TRANSACTIONS.md). A lock is installed when a kTxPrepare vote-yes
/// record becomes durable and released when the kTxDecision for the same
/// (txId, object) is applied. The table is DRAM state: a crash drops it and
/// whichever master recovers the tablets rebuilds it from the replicated
/// kTxPrepare records (minus those already covered by a kTxDecision).
class TxLockTable {
 public:
  struct Lock {
    std::uint64_t txId = 0;
    std::uint64_t clientId = 0;  ///< tx client's lease id at prepare time
    std::uint64_t rpcSeq = 0;    ///< prepare RPC's sequence number
    std::uint64_t tableId = 0;
    std::uint64_t keyId = 0;
    std::uint32_t pendingValueBytes = 0;  ///< buffered write applied on commit
    std::uint64_t expectedVersion = 0;    ///< version the vote validated
    log::LogRef prepareRecord;            ///< the durable kTxPrepare entry
    log::TxParticipants participants;     ///< full key list of the tx
    sim::SimTime preparedAt = 0;
    /// True while UnackedRpcResults also references prepareRecord as the
    /// prepare RPC's completion record. Whoever drops their reference last
    /// (watermark/lease GC vs. decision-time release) marks the entry dead;
    /// Segment::markDead is idempotent so the overlap is harmless, but the
    /// flag keeps the record *live* while the lock still needs it.
    bool recordOwnedByUnacked = false;
  };

  /// Transactions already decided on this master; fences late prepares and
  /// answers kTxVote after the locks are gone.
  struct Resolved {
    bool commit = false;
    std::uint64_t clientId = 0;
    sim::SimTime resolvedAt = 0;
    /// Decision records appended here for this tx, keyed by the object they
    /// decide (one per object). Refs owned by UnackedRpcResults are GCed by
    /// the watermark; the rest are reclaimed by the sweep via gcResolved().
    struct Record {
      log::LogRef ref;
      bool ownedByUnacked = false;
    };
    std::map<std::pair<std::uint64_t, std::uint64_t>, Record> records;
  };

  using Key = std::pair<std::uint64_t, std::uint64_t>;  ///< (tableId, keyId)

  /// Lock lookup; nullptr when the object is unlocked.
  const Lock* get(std::uint64_t tableId, std::uint64_t keyId) const;

  /// Install a lock after the prepare record is durable. Returns false (and
  /// installs nothing) if the object is already locked by a different tx.
  bool acquire(Lock lock);

  /// Release the lock held by `txId` on the object; returns the lock (so the
  /// caller can mark the prepare record dead) or nullopt if not held.
  struct Released {
    Lock lock;
  };
  bool release(std::uint64_t tableId, std::uint64_t keyId, std::uint64_t txId,
               Lock* out);

  /// Record a decided transaction (fencing + kTxVote answers). Safe to call
  /// repeatedly; later records append to the same entry. `tableId`/`keyId`
  /// name the object the decision record covers (ignored when `record` is
  /// invalid).
  void noteResolved(std::uint64_t txId, bool commit, std::uint64_t clientId,
                    std::uint64_t tableId, std::uint64_t keyId,
                    const log::LogRef& record, bool recordOwnedByUnacked,
                    sim::SimTime now);
  /// Volatile abort fence (no durable record): installed when kTxVote finds
  /// no vote, so a late prepare for the same tx cannot re-lock the object.
  void fenceAbort(std::uint64_t txId, sim::SimTime now);
  /// kTxVote answer: 0 = unknown, 1 = prepared here, 2 = committed,
  /// 3 = aborted.
  int voteStatus(std::uint64_t txId) const;
  bool isFencedAborted(std::uint64_t txId) const;

  /// Locks whose owning client's lease is no longer valid, deduplicated by
  /// txId in txId order (deterministic sweep fan-out). Each entry carries
  /// one representative lock of that transaction.
  std::vector<Lock> orphanedLocks(
      const std::function<bool(std::uint64_t)>& leaseValid) const;

  /// Called by releaseCompletionRecords before marking a freed ref dead:
  /// if a lock still needs the record, take over ownership (the caller must
  /// then NOT mark it dead). Returns true when ownership was transferred.
  bool adoptRecord(const log::LogRef& ref);

  /// Cleaner relocation: a kTxPrepare entry moved.
  void updatePrepareRef(std::uint64_t txId, std::uint64_t tableId,
                        std::uint64_t keyId, const log::LogRef& newRef);
  /// Cleaner relocation: a kTxDecision entry moved.
  void updateDecisionRef(std::uint64_t txId, std::uint64_t tableId,
                         std::uint64_t keyId, const log::LogRef& newRef);

  /// Drop resolved-tx entries whose client lease expired, no lock remains,
  /// and the entry is older than `minAge`. Decision records not owned by
  /// UnackedRpcResults are appended to `freed` for the caller to mark dead.
  void gcResolved(const std::function<bool(std::uint64_t)>& leaseValid,
                  sim::SimTime now, sim::Duration minAge,
                  std::vector<log::LogRef>* freed);

  /// Migration: collect locks whose object falls inside the moving range.
  std::vector<Lock> collectForRange(
      const std::function<bool(std::uint64_t, std::uint64_t)>& inRange) const;
  /// Migration source: drop the collected locks after a successful handoff;
  /// their prepare-record refs go to `freed` unless owned by unacked.
  void eraseForRange(
      const std::function<bool(std::uint64_t, std::uint64_t)>& inRange,
      std::vector<log::LogRef>* freed);

  void clear();

  std::size_t locksHeld() const { return locks_.size(); }
  bool holdsTx(std::uint64_t txId) const;
  std::uint64_t prepares() const { return prepares_; }
  std::uint64_t commits() const { return commits_; }
  std::uint64_t aborts() const { return aborts_; }
  std::uint64_t conflicts() const { return conflicts_; }
  std::uint64_t orphansResolved() const { return orphansResolved_; }
  std::uint64_t locksRecovered() const { return locksRecovered_; }
  std::uint64_t locksMigrated() const { return locksMigrated_; }

  void countPrepare() { ++prepares_; }
  void countConflict() { ++conflicts_; }
  void countDecision(bool commit, bool fromResolution) {
    if (commit) {
      ++commits_;
    } else {
      ++aborts_;
    }
    if (fromResolution) ++orphansResolved_;
  }
  void countRecovered() { ++locksRecovered_; }
  void countMigrated() { ++locksMigrated_; }

 private:
  std::map<Key, Lock> locks_;
  std::map<std::uint64_t, Resolved> resolved_;
  std::uint64_t prepares_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t aborts_ = 0;
  std::uint64_t conflicts_ = 0;
  std::uint64_t orphansResolved_ = 0;
  std::uint64_t locksRecovered_ = 0;
  std::uint64_t locksMigrated_ = 0;
};

}  // namespace rc::server
