#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "hash/object_map.hpp"
#include "log/cleaner.hpp"
#include "log/log.hpp"
#include "net/rpc.hpp"
#include "node/node.hpp"
#include "obs/event_journal.hpp"
#include "obs/metric_registry.hpp"
#include "obs/time_trace.hpp"
#include "server/common.hpp"
#include "server/dispatch.hpp"
#include "server/migration.hpp"
#include "server/recovery_plan.hpp"
#include "server/replica_manager.hpp"
#include "server/tx_lock_table.hpp"
#include "server/unacked_rpc_results.hpp"
#include "sim/fifo_lock.hpp"
#include "sim/stats.hpp"

namespace rc::server {

class RecoveryTask;

/// Service-time calibration of the master data path. The defaults are
/// fitted to the paper's measurements on the Nancy nodes (see DESIGN.md §4
/// and EXPERIMENTS.md for the derivation of each constant).
struct MasterParams {
  /// Worker CPU per read (hash lookup + reply marshalling). 3 workers at
  /// 8 us give the single-server read ceiling of ~372 Kop/s (Fig. 1a).
  sim::Duration readServiceTime = sim::usec(8);

  /// Worker CPU for the in-memory part of a write: hash-table update plus
  /// log append bookkeeping, under the append lock.
  sim::Duration writeAppendCpu = sim::usec(25);

  /// RAMCloud's log-sync/scheduling overhead on the update path when
  /// replication is off. Calibrated from Table II (workload A at 10
  /// clients); the paper attributes it to thread handling ("this issue was
  /// confirmed by RAMCloud developers" — the nanoscheduling problem).
  sim::Duration unreplicatedSyncTime = sim::usec(90);

  /// Thread-handling cost an update pays under concurrency: each update's
  /// sync is stretched by convoyPenaltyUs * sqrt(S), where S is the number
  /// of distinct request streams (clients) seen in the last
  /// concurrencyWindow. Models the paper's "poor thread handling under
  /// highly-concurrent accesses" (futile context switches / wakeups) and
  /// produces Table II's peak-then-decline for workload A. Calibrated on
  /// Table II rows at 10/20/90 clients.
  double convoyPenaltyUs = 11.0;
  sim::Duration concurrencyWindow = sim::msec(50);

  /// Tombstone append CPU for remove operations.
  sim::Duration removeServiceTime = sim::usec(20);

  /// Scan (paper SS X future work): per-object CPU while walking the hash
  /// index over a tablet range, plus a fixed setup cost.
  sim::Duration scanSetupCpu = sim::usec(10);
  sim::Duration scanPerEntryCpu = sim::nsec(150);

  /// Batched operations (multiRead/multiWrite): one dispatch + worker
  /// hand-off amortised over the batch, then a smaller per-key cost.
  sim::Duration multiOpBaseCpu = sim::usec(6);
  sim::Duration multiReadPerKeyCpu = sim::usec(2);
  sim::Duration multiWritePerKeyCpu = sim::usec(8);

  /// Recovery replay: CPU per entry re-inserted (hash + log, batched).
  sim::Duration replayPerEntryCpu = sim::nsec(1200);
  /// Entries replayed per worker task; small enough that live reads can
  /// interleave (their 1.4-2.4x latency bump during recovery, Fig. 10).
  int replayChunkEntries = 64;
  /// Concurrent segment fetches a recovery master keeps outstanding.
  int recoveryFetchWindow = 3;
  /// Sealed-but-unacked replay segments tolerated before replay pauses
  /// (RAMCloud recovers with bounded un-replicated state).
  int recoveryMaxUnackedSegments = 1;

  /// Log-cleaner pass overhead, per-relocated-byte CPU, victim policy.
  sim::Duration cleanerPassCpu = sim::usec(500);
  double cleanerPerByteCpuNs = 0.3;
  log::CleanerPolicy cleanerPolicy = log::CleanerPolicy::kCostBenefit;

  /// Per-object log metadata footprint added to the value size.
  std::uint32_t objectOverheadBytes = 100;
  std::uint32_t tombstoneBytes = 60;
  /// In-log footprint of a RIFL completion record (compact: clientId, seq,
  /// status, version — docs/LINEARIZABILITY.md).
  std::uint32_t completionRecordBytes = 32;
  /// In-log footprint of a minitransaction kTxPrepare record: completion
  /// header plus txId, pending-value size, expected version and the
  /// participant key list (docs/TRANSACTIONS.md).
  std::uint32_t txPrepareRecordBytes = 64;
  /// Cadence of the sweep that drops duplicate-suppression state for
  /// clients whose coordinator lease expired.
  sim::Duration leaseReclaimInterval = sim::seconds(1);

  /// Hard memory ceiling for the overload cleaner deferral: while the node
  /// is shedding, cleaner passes are skipped *until* memoryInUse exceeds
  /// this fraction of log capacity — past it, reclaiming segments beats
  /// admission (docs/OVERLOAD.md degradation ladder).
  double cleanerDeferUtilization = 0.9;

  log::LogParams log;
  ReplicationParams replication;
  MigrationParams migration;
};

struct MasterStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t removes = 0;
  std::uint64_t missingKeys = 0;
  std::uint64_t unknownTablet = 0;
  std::uint64_t cleanerRuns = 0;
  std::uint64_t replicationFailures = 0;
  std::uint64_t shedRequests = 0;      ///< bounced with kOverloaded
  std::uint64_t cleanerDeferrals = 0;  ///< cleaner passes skipped for load
  sim::Histogram readServiceLatency;   ///< dispatch-arrival to reply
  sim::Histogram writeServiceLatency;
};

/// The storage server: tablets, hash index, log-structured memory,
/// replication, cleaning, and crash-recovery replay.
class MasterService : public net::RpcService {
 public:
  MasterService(node::Node& node, Dispatch& dispatch, net::RpcSystem& rpc,
                const ServiceDirectory& directory, MasterParams params,
                std::function<RecoveryPlanPtr(std::uint64_t)> planLookup,
                node::NodeId coordinatorNode, sim::Rng rng);
  ~MasterService() override;

  void handleRpc(const net::RpcRequest& req, node::NodeId from,
                 Responder respond) override;

  /// Process kill: drops queued work, forgets in-flight operations and
  /// aborts any recovery replay in progress.
  void crash();

  // ----- setup / control plane

  void addTablet(const Tablet& t);
  const std::vector<Tablet>& tablets() const { return tablets_; }
  bool ownsKey(std::uint64_t tableId, std::uint64_t keyId) const;

  /// Event-free data loading (the paper's unmeasured YCSB load phase).
  /// Fills log + hash table; replica frames are installed afterwards with
  /// installReplicasAfterBulkLoad().
  void bulkInsert(std::uint64_t tableId, std::uint64_t keyId,
                  std::uint32_t valueBytes, sim::SimTime now);

  /// Install backup frames (sealed segments flushed to disk, open head
  /// buffered) matching the replica placements chosen during bulk load.
  void installReplicasAfterBulkLoad();

  /// Begin replaying one partition of a crashed master's data.
  void startRecovery(RecoveryPlanPtr plan, int partitionIndex);

  // ----- tablet migration (SS IX cluster resizing)

  /// Begin migrating one of this master's tablets to `destination`.
  void startMigration(const Tablet& tablet, node::NodeId destination);

  /// True while (tableId, hash) is inside a range being migrated away —
  /// writes are bounced so the snapshot stays consistent.
  bool isMigratingRange(std::uint64_t tableId, std::uint64_t hash) const;

  /// Content side-channel for kMigrationData: the destination collects the
  /// announced batch.
  std::vector<log::LogEntry> takeMigrationBatch(std::uint64_t batchId);

  /// Used by MigrationTask at completion.
  void dropObjectForMigration(const hash::Key& k);
  void removeTablet(const Tablet& t);
  void onMigrationTaskFinished(MigrationTask* task);
  std::size_t activeMigrations() const { return migrations_.size(); }

  // ----- introspection

  std::shared_ptr<const log::Segment> findSegment(log::SegmentId id) const;
  const hash::ObjectMap& objectMap() const { return map_; }
  log::Log& log() { return log_; }
  const log::Log& log() const { return log_; }
  ReplicaManager& replicaManager() { return replicaMgr_; }
  const log::LogCleaner& cleaner() const { return cleaner_; }
  const MasterStats& stats() const { return stats_; }
  MasterStats& mutableStats() { return stats_; }
  const MasterParams& params() const { return params_; }
  node::Node& node() { return node_; }
  Dispatch& dispatch() { return dispatch_; }
  net::RpcSystem& rpc() { return rpc_; }
  const ServiceDirectory& directory() const { return directory_; }
  node::NodeId coordinatorNode() const { return coordinator_; }
  std::size_t activeRecoveries() const { return recoveries_.size(); }
  std::size_t logLockWaiters() const { return logLock_.waiters(); }

  // ----- exactly-once (RIFL) support

  UnackedRpcResults& unackedRpcResults() { return unacked_; }
  const UnackedRpcResults& unackedRpcResults() const { return unacked_; }

  // ----- minitransactions (docs/TRANSACTIONS.md)

  TxLockTable& txLockTable() { return txLocks_; }
  const TxLockTable& txLockTable() const { return txLocks_; }

  /// Recovery replay / migration install: a kTxPrepare record without a
  /// matching kTxDecision resurfaced — re-install the version lock so the
  /// orphan-resolution sweep (or the still-live client) can finish the tx.
  /// Returns false when the object is already locked by a different tx
  /// (the caller decides what to do with the spare record).
  bool installRecoveredTxLock(const log::LogEntry& prepare,
                              const log::LogRef& ref, bool ownedByUnacked);

  /// Mark dead the kCompletion log entries freed by watermark advance,
  /// lease reclamation or migration handoff, so the cleaner reclaims them.
  void releaseCompletionRecords(const std::vector<log::LogRef>& freed);

  /// Fault hook (FaultPlan crash_before_reply): the next successful
  /// tracked-or-untracked write completes durably — object and completion
  /// record replicated — but the reply never leaves the node; `hook` runs
  /// instead (the injector crashes the server from it).
  void armCrashBeforeReply(std::function<void()> hook) {
    crashBeforeReplyHook_ = std::move(hook);
  }
  bool crashBeforeReplyArmed() const {
    return static_cast<bool>(crashBeforeReplyHook_);
  }

  // ----- observability

  /// Attach the cluster's per-RPC time trace; read/write/remove handlers
  /// stamp dispatch-wait, worker-service and replication-wait stages
  /// against spans carried in RpcRequest::traceSpan. nullptr disables.
  void setTimeTrace(obs::TimeTrace* trace) { trace_ = trace; }

  /// Attach the cluster's event journal; recovery tasks, migrations,
  /// cleaner passes and background re-replication emit phase spans on this
  /// node. nullptr disables.
  void setJournal(obs::EventJournal* journal) {
    journal_ = journal;
    replicaMgr_.setJournal(journal);
  }
  obs::EventJournal* journal() { return journal_; }

  /// Register this master's counters and service histograms under `prefix`
  /// (e.g. "node3.master").
  void registerMetrics(obs::MetricRegistry& reg, const std::string& prefix);

 private:
  friend class RecoveryTask;

  struct ApplyResult {
    log::LogRef ref;
    std::uint64_t version = 0;
    std::uint32_t entryBytes = 0;
  };

  /// Wrap a continuation so it dies with the process.
  template <typename F>
  auto guard(F f) {
    return [this, e = node_.cpu().epoch(),
            f = std::move(f)](auto&&... args) mutable {
      if (node_.cpu().epoch() == e && node_.cpu().poweredOn()) {
        f(std::forward<decltype(args)>(args)...);
      }
    };
  }

  /// Distinct request streams seen within concurrencyWindow.
  int concurrentStreams() const;
  void noteStream(node::NodeId from);

  /// Stamp a pipeline stage against the request's span, annotated with the
  /// dispatch queue depth *at stamp time* and this node's id — that pair is
  /// what lets rcdiag decompose an exemplar into "waited behind N requests
  /// on node M" (docs/SLO.md).
  void stampTrace(std::uint64_t span, obs::TimeTrace::Stage stage) {
    if (trace_ != nullptr && span != 0) {
      trace_->stamp(span, stage,
                    static_cast<std::int32_t>(dispatch_.queueDepth()),
                    static_cast<std::int32_t>(node_.id()));
    }
  }

  /// Per-tablet op-rate "heat", keyed (tableId, startKeyHash). Registered
  /// as tablet.heat.* probes so the stats sampler exposes load skew to the
  /// (future) autoscaler/rebalancer; migration keeps counters with the
  /// tablet's new owner starting from zero.
  struct TabletHeat {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    bool registered = false;
  };
  void noteTabletOp(std::uint64_t tableId, std::uint64_t keyId, bool isWrite);
  void registerTabletHeat(std::uint64_t tableId, std::uint64_t startHash,
                          TabletHeat& heat);

  void onRead(const net::RpcRequest& req, Responder respond);
  void onWrite(const net::RpcRequest& req, Responder respond);
  void onTxPrepare(const net::RpcRequest& req, Responder respond);
  void onTxDecision(const net::RpcRequest& req, Responder respond);
  void onTxVote(const net::RpcRequest& req, Responder respond);
  void onRemove(const net::RpcRequest& req, Responder respond);
  void onScan(const net::RpcRequest& req, Responder respond);
  void onMultiOp(const net::RpcRequest& req, Responder respond);
  void onStartRecovery(const net::RpcRequest& req, Responder respond);
  void onServerListUpdate(const net::RpcRequest& req, Responder respond);
  void onMigrateTablet(const net::RpcRequest& req, Responder respond);
  void onMigrationData(const net::RpcRequest& req, node::NodeId from,
                       Responder respond);

  ApplyResult applyWrite(std::uint64_t tableId, std::uint64_t keyId,
                         std::uint32_t valueBytes);

  /// Conditional-write rejection: record (tracked) and reply
  /// kVersionMismatch with the current version. Runs under logLock_.
  void onWriteVersionMismatch(std::uint64_t tableId, std::uint64_t keyId,
                              std::uint64_t clientId, std::uint64_t seq,
                              std::uint64_t currentVersion,
                              std::uint64_t span, std::uint16_t tenant,
                              sim::SimTime arrival, int w, Responder respond);

  /// Append a kCompletion record for a tracked RPC's outcome.
  log::LogRef appendCompletion(std::uint64_t tableId, std::uint64_t keyId,
                               std::uint64_t clientId, std::uint64_t seq,
                               std::uint64_t version, net::Status status,
                               bool found);
  /// Seal the head early if `bytes` would not fit: entries that must be
  /// recovered atomically (object + completion) may not straddle segments.
  void ensureHeadRoom(std::uint32_t bytes);
  /// Lazily start the periodic lease-expiry reclamation sweep.
  void startLeaseReclaim();

  /// Tx prepare vote-no: record the rejection durably (like a conditional
  /// write's mismatch) so retries replay it. Runs under logLock_.
  void onTxPrepareReject(std::uint64_t tableId, std::uint64_t keyId,
                         std::uint64_t clientId, std::uint64_t seq,
                         net::Status verdict, std::uint64_t currentVersion,
                         std::uint64_t span, std::uint16_t tenant, int w,
                         Responder respond);
  /// Lease sweep extension: every lock whose owning client's lease expired
  /// asks the coordinator to run cooperative termination for that tx.
  void sweepOrphanedTx();

  void maybeStartCleaner();
  void cleanerLoop();
  void onRecoveryTaskFinished(RecoveryTask* task);

  std::vector<node::NodeId> backupCandidates() const;

  node::Node& node_;
  Dispatch& dispatch_;
  net::RpcSystem& rpc_;
  const ServiceDirectory& directory_;
  MasterParams params_;
  std::function<RecoveryPlanPtr(std::uint64_t)> planLookup_;
  node::NodeId coordinator_;
  sim::Rng rng_;

  std::vector<Tablet> tablets_;
  hash::ObjectMap map_;
  log::Log log_;
  log::LogCleaner cleaner_;
  ReplicaManager replicaMgr_;
  sim::FifoLock logLock_;
  bool cleanerActive_ = false;
  bool bulkMode_ = false;

  std::vector<std::unique_ptr<RecoveryTask>> recoveries_;
  std::vector<std::unique_ptr<MigrationTask>> migrations_;
  UnackedRpcResults unacked_;
  TxLockTable txLocks_;
  std::uint64_t txResolveRequests_ = 0;
  std::function<void()> crashBeforeReplyHook_;
  std::unique_ptr<sim::PeriodicTask> leaseReclaim_;
  mutable std::unordered_map<node::NodeId, sim::SimTime> recentStreams_;
  MasterStats stats_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, TabletHeat> tabletHeat_;
  obs::TimeTrace* trace_ = nullptr;
  obs::EventJournal* journal_ = nullptr;
  obs::MetricRegistry* metricReg_ = nullptr;  ///< for late-added tablets
  std::string metricPrefix_;
};

}  // namespace rc::server
