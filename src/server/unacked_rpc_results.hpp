#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "log/segment.hpp"

namespace rc::server {

/// Per-client duplicate-suppression state, RAMCloud's RIFL UnackedRpcResults
/// (docs/LINEARIZABILITY.md). Each master keeps one table; a tracked
/// mutating RPC is checked against it before execution and recorded after.
/// The recorded outcome is backed by a kCompletion log entry replicated in
/// the same append as the object, so the table can be rebuilt from the log
/// during crash recovery and carried along with tablet migration.
class UnackedRpcResults {
 public:
  /// Outcome a recorded completion replays to a duplicate retry.
  struct Result {
    std::uint8_t status = 0;       ///< net::Status the original reply carried
    std::uint64_t version = 0;     ///< object version the op produced/observed
    bool found = true;             ///< kRemove: object existed
    std::uint64_t tableId = 0;     ///< object identity (migration filtering)
    std::uint64_t keyId = 0;
    log::LogRef record;            ///< the backing kCompletion entry
  };

  enum class Check : std::uint8_t {
    kNew,         ///< never seen: execute and record
    kInProgress,  ///< first attempt still executing: caller should back off
    kCompleted,   ///< duplicate of a finished op: replay `result`
    kStale,       ///< below the client's own firstUnacked watermark
  };

  struct BeginResult {
    Check check = Check::kNew;
    Result result;  ///< valid when check == kCompleted
  };

  /// Admission check for a tracked RPC. Advances the client's watermark to
  /// `firstUnacked`, appending the log refs of any records that fall below
  /// it to `freed` (the caller marks them dead so the cleaner reclaims
  /// them). kNew marks the seq in-progress.
  BeginResult begin(std::uint64_t clientId, std::uint64_t seq,
                    std::uint64_t firstUnacked,
                    std::vector<log::LogRef>* freed);

  /// Record the outcome of a kNew op. Clears the in-progress mark.
  void recordCompletion(std::uint64_t clientId, std::uint64_t seq,
                        const Result& result);

  /// Drop the in-progress mark without recording (the op failed before a
  /// completion record could be logged; the retry will re-execute).
  void abortInProgress(std::uint64_t clientId, std::uint64_t seq);

  /// Install a completion recovered from the log (crash recovery replay or
  /// migration). Duplicates — the same (clientId, seq) seen from several
  /// replicas — are ignored. Returns true if newly installed.
  bool recover(std::uint64_t clientId, std::uint64_t seq,
               const Result& result);

  /// Drop every client whose lease is no longer valid, appending the freed
  /// record refs. Returns the number of clients reclaimed. The exactly-once
  /// guarantee is intentionally lost past lease expiry.
  std::size_t reclaimExpired(
      const std::function<bool(std::uint64_t)>& leaseValid,
      std::vector<log::LogRef>* freed);

  /// Migration: collect every retained completion whose object falls in
  /// [startHash, endHash] of `tableId` (hash computed by the caller via
  /// `inRange`).
  struct Retained {
    std::uint64_t clientId = 0;
    std::uint64_t seq = 0;
    Result result;
  };
  std::vector<Retained> collectForRange(
      const std::function<bool(std::uint64_t, std::uint64_t)>& inRange) const;

  /// Migration source: drop the collected completions after a successful
  /// handoff (their records' refs go to `freed`).
  void eraseForRange(
      const std::function<bool(std::uint64_t, std::uint64_t)>& inRange,
      std::vector<log::LogRef>* freed);

  /// Cleaner relocation callback: the backing kCompletion entry moved.
  void updateRecordRef(std::uint64_t clientId, std::uint64_t seq,
                       const log::LogRef& newRef);

  void clear() { clients_.clear(); }

  std::size_t trackedClients() const { return clients_.size(); }
  std::uint64_t duplicatesSuppressed() const { return duplicatesSuppressed_; }
  std::uint64_t completionsRecorded() const { return completionsRecorded_; }
  std::uint64_t recordsRecovered() const { return recordsRecovered_; }
  std::uint64_t recordsGced() const { return recordsGced_; }
  std::uint64_t clientsExpired() const { return clientsExpired_; }
  std::uint64_t staleRejected() const { return staleRejected_; }

 private:
  struct ClientState {
    std::uint64_t firstUnacked = 1;
    /// Ordered so watermark GC walks the prefix below firstUnacked.
    std::map<std::uint64_t, Result> results;
    std::map<std::uint64_t, bool> inProgress;
  };

  void advanceWatermark(ClientState& st, std::uint64_t firstUnacked,
                        std::vector<log::LogRef>* freed);

  std::unordered_map<std::uint64_t, ClientState> clients_;
  std::uint64_t duplicatesSuppressed_ = 0;
  std::uint64_t completionsRecorded_ = 0;
  std::uint64_t recordsRecovered_ = 0;
  std::uint64_t recordsGced_ = 0;
  std::uint64_t clientsExpired_ = 0;
  std::uint64_t staleRejected_ = 0;
};

}  // namespace rc::server
