#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "log/segment.hpp"
#include "net/rpc.hpp"
#include "node/node.hpp"
#include "obs/event_journal.hpp"
#include "obs/metric_registry.hpp"
#include "server/common.hpp"
#include "server/dispatch.hpp"
#include "server/recovery_plan.hpp"
#include "sim/rng.hpp"

namespace rc::server {

struct BackupParams {
  /// Fixed worker CPU per backup-write RPC (request parsing, frame lookup).
  sim::Duration writeBaseServiceTime = sim::usec(40);
  /// Buffer-copy rate for the size-dependent part of a backup write.
  double bufferCopyGBps = 4.0;

  /// DRAM frames the backup may hold un-flushed before it starts delaying
  /// write acknowledgements until the disk catches up. This backpressure is
  /// what couples recovery re-replication speed to contended disk bandwidth
  /// (paper Findings 5/6, Fig. 12).
  std::uint64_t bufferPoolBytes = 48ULL * 1024 * 1024;

  /// CPU per entry when filtering a recovery segment into partitions.
  sim::Duration filterPerEntry = sim::nsec(300);
};

/// The backup service of one node: stores segment replicas in DRAM frames,
/// spills closed frames to disk, and serves them back during recovery.
class BackupService : public net::RpcService {
 public:
  BackupService(node::Node& node, Dispatch& dispatch, net::RpcSystem& rpc,
                const ServiceDirectory& directory, BackupParams params,
                std::function<RecoveryPlanPtr(std::uint64_t)> planLookup);

  void handleRpc(const net::RpcRequest& req, node::NodeId from,
                 Responder respond) override;

  /// Process death: all frames lost.
  void crash();

  // ----- control-plane / data-content access (see ServiceDirectory docs)

  struct FrameInfo {
    log::SegmentId segment = log::kInvalidSegment;
    std::uint64_t bytes = 0;  ///< durably acknowledged watermark
    bool closed = false;
    bool onDisk = false;
  };
  std::vector<FrameInfo> framesForMaster(ServerId master) const;

  /// Event-free frame installation for the bulk-load path (the paper's
  /// unmeasured YCSB load phase): sealed segments sit on disk, the open
  /// head stays buffered.
  void bulkInstallFrame(ServerId master,
                        std::shared_ptr<const log::Segment> data,
                        std::uint64_t ackedBytes, bool closed, bool onDisk);

  /// Entries of the replica (within the acked watermark) that fall in
  /// `part`. Content side-channel for kGetRecoveryData responses.
  std::vector<log::LogEntry> filteredEntries(ServerId master,
                                             log::SegmentId segment,
                                             const PartitionSpec& part) const;

  // ----- fault injection (see fault::FaultInjector)

  /// Silently drop up to `count` frames (lost backup state). Selection is
  /// deterministic: frames sorted by (master, segment), picked via `rng`.
  /// Returns the number of frames actually dropped.
  std::size_t injectFrameLoss(std::size_t count, sim::Rng& rng);

  /// Mark up to `count` frames corrupt. Corrupt frames still show up in
  /// segment lists — the failure is only discovered when recovery tries to
  /// read them (kGetRecoveryData fails), exercising replica fallback.
  std::size_t injectFrameCorruption(std::size_t count, sim::Rng& rng);

  std::uint64_t unflushedBytes() const { return unflushedBytes_; }
  std::uint64_t framesHeld() const { return frames_.size(); }
  std::uint64_t writesServiced() const { return writesServiced_; }
  std::uint64_t acksDelayed() const { return acksDelayed_; }
  std::uint64_t corruptFramesHeld() const { return corruptFrames_; }

  const BackupParams& params() const { return params_; }

  /// Register this backup's metrics under `prefix` (e.g. "node3.backup").
  void registerMetrics(obs::MetricRegistry& reg, const std::string& prefix);

  /// Attach the cluster's event journal; recovery disk reads emit
  /// segment_read spans (parented under the requesting master's
  /// segment_fetch span) and spills emit frame_flush spans. nullptr
  /// disables.
  void setJournal(obs::EventJournal* journal) { journal_ = journal; }

 private:
  struct FrameKey {
    ServerId master;
    log::SegmentId segment;
    bool operator==(const FrameKey&) const = default;
  };
  struct FrameKeyHash {
    std::size_t operator()(const FrameKey& k) const {
      return std::hash<std::uint64_t>()(
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.master))
           << 32) ^
          k.segment);
    }
  };
  struct Frame {
    std::shared_ptr<const log::Segment> data;
    std::uint64_t ackedBytes = 0;
    bool closed = false;
    bool onDisk = false;
    bool flushing = false;
    bool inMemory = true;   ///< buffered copy still present
    bool loading = false;   ///< recovery read from disk in progress
    bool corrupt = false;   ///< injected fault: reads fail, listing works
    std::vector<sim::InlineTask> loadWaiters;
  };

  /// Frame keys sorted by (master, segment) — deterministic fault picks.
  std::vector<FrameKey> sortedFrameKeys() const;

  void onBackupWrite(const net::RpcRequest& req, Responder respond);
  void onGetRecoveryData(const net::RpcRequest& req, Responder respond);
  void onGetSegmentList(const net::RpcRequest& req, Responder respond);
  void onBackupFree(const net::RpcRequest& req, Responder respond);

  void maybeStartFlush(const FrameKey& key);
  void drainAckWaiters();

  node::Node& node_;
  Dispatch& dispatch_;
  net::RpcSystem& rpc_;
  const ServiceDirectory& directory_;
  BackupParams params_;
  std::function<RecoveryPlanPtr(std::uint64_t)> planLookup_;

  std::unordered_map<FrameKey, Frame, FrameKeyHash> frames_;
  std::uint64_t unflushedBytes_ = 0;
  std::deque<Responder> ackWaiters_;

  std::uint64_t writesServiced_ = 0;
  std::uint64_t acksDelayed_ = 0;
  std::uint64_t corruptFrames_ = 0;
  obs::EventJournal* journal_ = nullptr;
};

}  // namespace rc::server
