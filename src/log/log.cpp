#include "log/log.hpp"

#include <cassert>
#include <stdexcept>

namespace rc::log {

Log::Log(LogParams params)
    : params_(params), nextSegmentId_(params.segmentIdBase) {}

Segment& Log::openNewHead(sim::SimTime now) {
  const SegmentId id = nextSegmentId_++;
  auto seg = std::make_shared<Segment>(id, params_.segmentBytes, now);
  Segment& ref = *seg;
  segments_.emplace(id, std::move(seg));
  head_ = &ref;
  if (onSegmentOpened) onSegmentOpened(ref);
  return ref;
}

std::shared_ptr<const Segment> Log::sharedSegment(SegmentId id) const {
  auto it = segments_.find(id);
  return it == segments_.end() ? nullptr : it->second;
}

void Log::adopt(std::shared_ptr<Segment> seg) {
  if (!seg) return;
  const SegmentId id = seg->id();
  if (head_ == seg.get()) head_ = nullptr;
  appendedBytes_ += seg->appendedBytes();
  liveBytes_ += seg->liveBytes();
  for (const LogEntry& e : seg->entries()) noteVersion(e.version);
  segments_.emplace(id, std::move(seg));
}

LogRef Log::append(const LogEntry& e, sim::SimTime now) {
  if (e.sizeBytes > params_.segmentBytes) {
    throw std::invalid_argument("log entry larger than a segment");
  }
  if (head_ == nullptr) {
    openNewHead(now);
  } else if (!head_->hasRoom(e.sizeBytes)) {
    head_->seal();
    Segment* sealed = head_;
    head_ = nullptr;
    if (onSegmentSealed) onSegmentSealed(*sealed);
    openNewHead(now);
  }
  const std::uint32_t idx = head_->append(e);
  appendedBytes_ += e.sizeBytes;
  if (e.live) liveBytes_ += e.sizeBytes;
  noteVersion(e.version);
  return LogRef{head_->id(), idx};
}

void Log::markDead(LogRef ref) {
  Segment* seg = segment(ref.segment);
  if (seg == nullptr) return;  // segment already cleaned
  const LogEntry& e = seg->entry(ref.index);
  if (e.live) {
    assert(liveBytes_ >= e.sizeBytes);
    liveBytes_ -= e.sizeBytes;
  }
  seg->markDead(ref.index);
}

const LogEntry& Log::entryAt(LogRef ref) const {
  const Segment* seg = segment(ref.segment);
  if (seg == nullptr) throw std::out_of_range("entryAt: freed segment");
  return seg->entry(ref.index);
}

const Segment* Log::segment(SegmentId id) const {
  auto it = segments_.find(id);
  return it == segments_.end() ? nullptr : it->second.get();
}

Segment* Log::segment(SegmentId id) {
  auto it = segments_.find(id);
  return it == segments_.end() ? nullptr : it->second.get();
}

void Log::freeSegment(SegmentId id) {
  auto it = segments_.find(id);
  if (it == segments_.end()) return;
  Segment& seg = *it->second;
  assert(seg.liveBytes() == 0 && "freeing a segment with live data");
  appendedBytes_ -= seg.appendedBytes();
  if (head_ == it->second.get()) head_ = nullptr;
  segments_.erase(it);
}

void Log::sealHead() {
  if (head_ == nullptr) return;
  head_->seal();
  Segment* sealed = head_;
  head_ = nullptr;
  if (onSegmentSealed) onSegmentSealed(*sealed);
}

}  // namespace rc::log
