#pragma once

#include <cstdint>
#include <functional>

#include "log/log.hpp"

namespace rc::log {

struct CleanerStats {
  std::uint64_t passes = 0;
  std::uint64_t segmentsFreed = 0;
  std::uint64_t bytesRelocated = 0;
  std::uint64_t bytesReclaimed = 0;
  std::uint64_t tombstonesDropped = 0;

  /// Write amplification: bytes copied per byte reclaimed.
  double writeAmplification() const {
    return bytesReclaimed > 0 ? static_cast<double>(bytesRelocated) /
                                    static_cast<double>(bytesReclaimed)
                              : 0.0;
  }
};

/// Victim-selection policy. RAMCloud (following LFS/Sprite) uses
/// cost-benefit; greedy (lowest utilisation first) is the classic
/// baseline it beats on skewed/aging workloads.
enum class CleanerPolicy { kCostBenefit, kGreedy };

/// RAMCloud's cost-benefit log cleaner.
///
/// Victim selection scores each sealed segment with
///   (1 - u) * age / (1 + u)
/// where u is the live fraction and age the seconds since creation
/// (older data is more stable, so copying it forward pays off for longer).
/// Live objects are relocated to the log head; tombstones are relocated
/// only while the segment holding the deleted object still exists.
///
/// The cleaner is pure storage logic: the owning master accounts its CPU
/// cost and invokes the relocation callback to fix up its hash table.
class LogCleaner {
 public:
  /// Invoked for every relocated live entry so the owner can re-point its
  /// index at `newRef`.
  using RelocateFn = std::function<void(const LogEntry&, LogRef newRef)>;

  LogCleaner(Log& log, RelocateFn relocate,
             CleanerPolicy policy = CleanerPolicy::kCostBenefit);

  /// Best victim by cost-benefit, or kInvalidSegment if nothing is
  /// cleanable (no sealed segments).
  SegmentId selectVictim(sim::SimTime now) const;

  /// Clean one victim segment. Returns bytes reclaimed (0 if nothing to
  /// clean). Relocations may seal the head and trigger log hooks.
  std::uint64_t cleanOnce(sim::SimTime now);

  /// Clean a specific (sealed) segment. Returns bytes reclaimed.
  std::uint64_t cleanSegment(SegmentId victim, sim::SimTime now);

  /// Clean until the log no longer needsCleaning() or no progress can be
  /// made. Returns total bytes reclaimed.
  std::uint64_t cleanUntilSatisfied(sim::SimTime now);

  const CleanerStats& stats() const { return stats_; }
  CleanerPolicy policy() const { return policy_; }

 private:
  Log& log_;
  RelocateFn relocate_;
  CleanerPolicy policy_;
  CleanerStats stats_;
};

}  // namespace rc::log
