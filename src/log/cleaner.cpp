#include "log/cleaner.hpp"

#include <utility>
#include <vector>

namespace rc::log {

LogCleaner::LogCleaner(Log& log, RelocateFn relocate, CleanerPolicy policy)
    : log_(log), relocate_(std::move(relocate)), policy_(policy) {}

SegmentId LogCleaner::selectVictim(sim::SimTime now) const {
  SegmentId best = kInvalidSegment;
  double bestScore = -1.0;
  for (const auto& [id, seg] : log_.segments()) {
    if (!seg->sealed()) continue;
    const double u = seg->utilisation();
    if (u >= 0.999) continue;  // nothing to reclaim
    double score;
    if (policy_ == CleanerPolicy::kGreedy) {
      score = 1.0 - u;  // most dead space wins
    } else {
      const double age = 1.0 + sim::toSeconds(now - seg->createdAt());
      score = (1.0 - u) * age / (1.0 + u);
    }
    if (score > bestScore) {
      bestScore = score;
      best = id;
    }
  }
  return best;
}

std::uint64_t LogCleaner::cleanOnce(sim::SimTime now) {
  return cleanSegment(selectVictim(now), now);
}

std::uint64_t LogCleaner::cleanSegment(SegmentId victimId, sim::SimTime now) {
  if (victimId == kInvalidSegment) return 0;
  Segment* victim = log_.segment(victimId);
  if (victim == nullptr || !victim->sealed()) return 0;

  ++stats_.passes;
  const std::uint64_t before = victim->appendedBytes();

  // Snapshot entries: relocation appends can reshape the log but never this
  // sealed victim.
  const std::size_t n = victim->entryCount();
  for (std::uint32_t i = 0; i < n; ++i) {
    const LogEntry e = victim->entry(i);
    if (!e.live) continue;
    bool keep = true;
    if (e.type == EntryType::kTombstone) {
      // A tombstone only matters while the dead object's segment exists
      // (it prevents crash replay from resurrecting the object).
      keep = e.refSegment != kInvalidSegment &&
             log_.segment(e.refSegment) != nullptr &&
             e.refSegment != victimId;
      if (!keep) ++stats_.tombstonesDropped;
    }
    log_.markDead(LogRef{victimId, i});
    if (keep) {
      const LogRef newRef = log_.append(e, now);
      stats_.bytesRelocated += e.sizeBytes;
      if (relocate_) relocate_(e, newRef);
    }
  }

  log_.freeSegment(victimId);
  ++stats_.segmentsFreed;
  stats_.bytesReclaimed += before;
  return before;
}

std::uint64_t LogCleaner::cleanUntilSatisfied(sim::SimTime now) {
  std::uint64_t total = 0;
  while (log_.needsCleaning()) {
    const std::uint64_t got = cleanOnce(now);
    if (got == 0) break;
    total += got;
  }
  return total;
}

}  // namespace rc::log
