#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace rc::log {

using SegmentId = std::uint32_t;
constexpr SegmentId kInvalidSegment = 0xffffffffu;

enum class EntryType : std::uint8_t {
  kObject,
  kTombstone,   ///< records a deletion so replay does not resurrect the key
  kCompletion,  ///< durable record of a tracked RPC's outcome (RIFL); lets a
                ///< recovery master suppress retries of already-applied ops
  kTxPrepare,   ///< minitransaction vote: the object is locked for txId and
                ///< the pending write is durable (docs/TRANSACTIONS.md)
  kTxDecision,  ///< minitransaction outcome (commit/abort) for one object;
                ///< fences late prepares and suppresses decision retries
};

/// Key list of every object a minitransaction touches, carried inside each
/// kTxPrepare record so *any* surviving participant can drive cooperative
/// termination after the transaction client dies (docs/TRANSACTIONS.md).
using TxParticipants =
    std::shared_ptr<const std::vector<std::pair<std::uint64_t, std::uint64_t>>>;

/// One record in the log. Object *contents* are not materialised — the
/// simulator tracks sizes, versions and liveness, which is everything the
/// storage-management and recovery logic operates on.
struct LogEntry {
  std::uint64_t tableId = 0;
  std::uint64_t keyId = 0;
  std::uint32_t sizeBytes = 0;  ///< total in-log footprint incl. metadata
  std::uint64_t version = 0;
  EntryType type = EntryType::kObject;
  bool live = true;
  /// For tombstones: the segment that held the deleted object. The
  /// tombstone may be dropped once that segment has been cleaned.
  SegmentId refSegment = kInvalidSegment;
  /// For kCompletion entries: which tracked RPC this records. tableId/keyId
  /// keep the *object's* identity so partition filtering and migration range
  /// collection treat completions like the objects they describe.
  std::uint64_t clientId = 0;
  std::uint64_t rpcSeq = 0;
  std::uint8_t opStatus = 0;  ///< net::Status of the recorded outcome
  bool found = true;          ///< kRemove result: object existed
  /// Minitransaction fields (kTxPrepare / kTxDecision only).
  std::uint64_t txId = 0;          ///< globally unique transaction id
  std::uint32_t txPendingBytes = 0;  ///< prepare: buffered write's value size
  std::uint64_t txExpectedVersion = 0;  ///< prepare: version the vote checked
  bool txCommit = false;           ///< decision: true = commit, false = abort
  TxParticipants txParticipants;   ///< prepare: full participant key list
};

/// Reference to an entry in a specific segment.
struct LogRef {
  SegmentId segment = kInvalidSegment;
  std::uint32_t index = 0;

  bool valid() const { return segment != kInvalidSegment; }
  bool operator==(const LogRef&) const = default;
};

/// An append-only 8 MB (by default) unit of the log. Segments are the
/// granularity of replication, disk I/O and cleaning.
class Segment {
 public:
  Segment(SegmentId id, std::uint64_t capacityBytes, sim::SimTime createdAt);

  SegmentId id() const { return id_; }
  std::uint64_t capacityBytes() const { return capacity_; }
  std::uint64_t appendedBytes() const { return appended_; }
  std::uint64_t liveBytes() const { return live_; }
  sim::SimTime createdAt() const { return createdAt_; }
  bool sealed() const { return sealed_; }
  std::size_t entryCount() const { return entries_.size(); }

  bool hasRoom(std::uint32_t bytes) const {
    return !sealed_ && appended_ + bytes <= capacity_;
  }

  /// Appends and returns the entry index. Caller must check hasRoom().
  std::uint32_t append(const LogEntry& e);

  /// Mark an entry dead (overwritten or deleted object).
  void markDead(std::uint32_t index);

  /// Seal: no further appends (head rolled over or crash replay finished).
  void seal() { sealed_ = true; }

  const LogEntry& entry(std::uint32_t index) const { return entries_[index]; }
  const std::vector<LogEntry>& entries() const { return entries_; }

  /// Fraction of appended bytes still live; 0 for an empty segment.
  double utilisation() const {
    return appended_ ? static_cast<double>(live_) /
                           static_cast<double>(appended_)
                     : 0.0;
  }

 private:
  SegmentId id_;
  std::uint64_t capacity_;
  std::uint64_t appended_ = 0;
  std::uint64_t live_ = 0;
  sim::SimTime createdAt_;
  bool sealed_ = false;
  std::vector<LogEntry> entries_;
};

}  // namespace rc::log
