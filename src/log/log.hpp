#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "log/segment.hpp"

namespace rc::log {

struct LogParams {
  std::uint64_t segmentBytes = 8 * 1024 * 1024;  ///< RAMCloud's 8 MB
  std::uint64_t capacityBytes = 10ULL * 1024 * 1024 * 1024;  ///< 10 GB/server
  /// Cleaning starts above this fraction of capacity appended-and-unfreed.
  double cleanerThreshold = 0.90;
  /// First segment id this log allocates. Each log instance in a cluster
  /// gets a disjoint range so LogRefs stay unambiguous when recovery
  /// side-log segments are adopted into a master's main log.
  SegmentId segmentIdBase = 1;
};

/// Append-only log-structured memory of one master.
///
/// Objects and tombstones are appended to the head segment; when the head
/// fills it is sealed (hook: replication closes the replicas) and a fresh
/// head is opened (hook: replication opens replicas on freshly-chosen
/// backups). Dead entries accumulate until the cleaner reclaims segments.
class Log {
 public:
  explicit Log(LogParams params);

  /// Called when the head seals (for replication close + disk flush).
  std::function<void(Segment&)> onSegmentSealed;
  /// Called when a new head opens (for replica placement).
  std::function<void(Segment&)> onSegmentOpened;

  /// Append an entry; rolls the head if needed. `now` timestamps segments
  /// for the cleaner's age heuristic.
  LogRef append(const LogEntry& e, sim::SimTime now);

  void markDead(LogRef ref);

  const LogEntry& entryAt(LogRef ref) const;

  Segment* head() { return head_; }
  const Segment* segment(SegmentId id) const;
  Segment* segment(SegmentId id);

  /// Remove a (cleaned) segment and reclaim its space.
  void freeSegment(SegmentId id);

  /// Force-seal the current head (end of replay / shutdown).
  void sealHead();

  /// Shared handle to a segment (backups keep replica snapshots alive even
  /// after the owning log frees or crashes). nullptr if unknown.
  std::shared_ptr<const Segment> sharedSegment(SegmentId id) const;

  /// Adopt a foreign segment (recovery side-log commit). The id must not
  /// collide — guaranteed by disjoint segmentIdBase ranges.
  void adopt(std::shared_ptr<Segment> seg);

  std::uint64_t liveBytes() const { return liveBytes_; }
  std::uint64_t appendedBytes() const { return appendedBytes_; }

  /// Bytes of address space consumed: segments currently allocated.
  std::uint64_t memoryInUse() const {
    return static_cast<std::uint64_t>(segments_.size()) *
           params_.segmentBytes;
  }

  bool needsCleaning() const {
    return static_cast<double>(memoryInUse()) >
           params_.cleanerThreshold * static_cast<double>(params_.capacityBytes);
  }

  std::size_t segmentCount() const { return segments_.size(); }
  const std::map<SegmentId, std::shared_ptr<Segment>>& segments() const {
    return segments_;
  }
  const LogParams& params() const { return params_; }

  std::uint64_t nextVersion() { return nextVersion_++; }

  /// Keep the version counter ahead of an entry that carries a version
  /// assigned elsewhere (recovery replay, migration batches). Without this
  /// a destination log could hand a key the same version twice — an ABA
  /// hazard for conditional writes.
  void noteVersion(std::uint64_t v) {
    if (v >= nextVersion_) nextVersion_ = v + 1;
  }

 private:
  Segment& openNewHead(sim::SimTime now);

  LogParams params_;
  std::map<SegmentId, std::shared_ptr<Segment>> segments_;
  Segment* head_ = nullptr;
  SegmentId nextSegmentId_ = 0;
  std::uint64_t liveBytes_ = 0;
  std::uint64_t appendedBytes_ = 0;
  std::uint64_t nextVersion_ = 1;
};

}  // namespace rc::log
