#include "log/segment.hpp"

#include <cassert>

namespace rc::log {

Segment::Segment(SegmentId id, std::uint64_t capacityBytes,
                 sim::SimTime createdAt)
    : id_(id), capacity_(capacityBytes), createdAt_(createdAt) {}

std::uint32_t Segment::append(const LogEntry& e) {
  assert(hasRoom(e.sizeBytes));
  appended_ += e.sizeBytes;
  if (e.live) live_ += e.sizeBytes;
  entries_.push_back(e);
  return static_cast<std::uint32_t>(entries_.size() - 1);
}

void Segment::markDead(std::uint32_t index) {
  assert(index < entries_.size());
  LogEntry& e = entries_[index];
  if (!e.live) return;
  e.live = false;
  assert(live_ >= e.sizeBytes);
  live_ -= e.sizeBytes;
}

}  // namespace rc::log
