#include "node/node.hpp"

#include <memory>

namespace rc::node {

Node::Node(sim::Simulation& sim, NodeId id, NodeParams params)
    : sim_(sim),
      id_(id),
      params_(params),
      cpu_(sim, params.cpu),
      disk_(sim, params.disk) {
  suspendedTime_.set(sim_.now(), 0);
}

void Node::startProcess() {
  cpu_.powerOn();
  disk_.powerOn();
}

void Node::crashProcess() {
  cpu_.powerOff();
  disk_.powerOff();
}

void Node::suspendMachine() {
  if (suspended_) return;
  crashProcess();
  suspended_ = true;
  suspendedTime_.set(sim_.now(), 1);
}

void Node::resumeMachine() {
  if (!suspended_) return;
  suspended_ = false;
  suspendedTime_.set(sim_.now(), 0);
  startProcess();
}

Node::PowerSnapshot Node::snapshotPower() const {
  return PowerSnapshot{cpu_.snapshot(),
                       suspendedTime_.integralTo(sim_.now())};
}

double Node::energyJoulesSince(const PowerSnapshot& s, sim::SimTime t) const {
  if (t <= s.cpu.time) return 0;
  const double wall = sim::toSeconds(t - s.cpu.time);
  const double susp = suspendedTime_.integralTo(t) - s.suspendedSeconds;
  const double active = wall - susp;
  const double u = cpu_.utilisationSince(s.cpu, t);  // busy / active window
  // While suspended the CPU integrator is flat, so u underestimates the
  // active-period utilisation by active/wall; energy uses core-seconds
  // directly to stay exact.
  const double coreSeconds = u * wall * params_.cpu.cores;
  return params_.power.idleWatts * active +
         params_.power.dynamicWatts * coreSeconds / params_.cpu.cores +
         params_.suspendedWatts * susp;
}

double Node::meanWattsSince(const PowerSnapshot& s, sim::SimTime t) const {
  if (t <= s.cpu.time) return 0;
  return energyJoulesSince(s, t) / sim::toSeconds(t - s.cpu.time);
}

void Node::startPduSampling() {
  if (!params_.metered || pdu_) return;
  // The sampler reads mean utilisation over each elapsed interval; the
  // lambda keeps its own rolling snapshot, advanced once per sample.
  auto snap = std::make_shared<CpuScheduler::Snapshot>(cpu_.snapshot());
  pdu_ = std::make_unique<power::PduSampler>(
      sim_, params_.power,
      [this, snap](sim::SimTime /*from*/, sim::SimTime to) {
        const double u = cpu_.utilisationSince(*snap, to);
        *snap = cpu_.snapshot();
        return u;
      });
}

void Node::stopPduSampling() {
  if (pdu_) pdu_->stop();
}

double Node::energyJoulesSince(const CpuScheduler::Snapshot& s,
                               sim::SimTime t) const {
  if (t <= s.time) return 0;
  const double u = cpu_.utilisationSince(s, t);
  return params_.power.joules(u, sim::toSeconds(t - s.time));
}

void Node::registerMetrics(obs::MetricRegistry& reg,
                           const std::string& prefix) {
  // cpu.util and power.watts report the mean over the elapsed window since
  // the previous probe call. The StatsSampler probes once per 1 Hz tick, so
  // these land on exactly the ticks (and values) the PDU sampler reports.
  auto cpuSnap = std::make_shared<CpuScheduler::Snapshot>(cpu_.snapshot());
  reg.probeGauge(prefix + ".cpu.util", "ratio", [this, cpuSnap] {
    const double u = cpu_.utilisationSince(*cpuSnap, sim_.now());
    *cpuSnap = cpu_.snapshot();
    return u;
  });
  auto pwrSnap = std::make_shared<PowerSnapshot>(snapshotPower());
  reg.probeGauge(prefix + ".power.watts", "watts", [this, pwrSnap] {
    const double w = meanWattsSince(*pwrSnap, sim_.now());
    *pwrSnap = snapshotPower();
    return w;
  });
  reg.probeGauge(prefix + ".cpu.busy_workers", "items", [this] {
    return static_cast<double>(cpu_.busyWorkers());
  });
  reg.probeGauge(prefix + ".cpu.queued_requests", "items", [this] {
    return static_cast<double>(cpu_.queuedRequests());
  });
  reg.probeCounter(prefix + ".disk.read_bytes", "bytes", [this] {
    return static_cast<double>(disk_.bytesRead());
  });
  reg.probeCounter(prefix + ".disk.write_bytes", "bytes", [this] {
    return static_cast<double>(disk_.bytesWritten());
  });
  reg.probeGauge(prefix + ".disk.queue_depth", "items", [this] {
    return static_cast<double>(disk_.queueDepth());
  });
  reg.probeGauge(prefix + ".suspended", "ratio",
                 [this] { return suspended_ ? 1.0 : 0.0; });
}

double Node::currentWatts() const {
  if (pdu_ && !pdu_->trace().empty()) {
    return pdu_->trace().points().back().value;
  }
  auto s = cpu_.snapshot();
  (void)s;
  return params_.power.watts(0);
}

}  // namespace rc::node
