#include "node/node.hpp"

namespace rc::node {

Node::Node(sim::Simulation& sim, NodeId id, NodeParams params)
    : sim_(sim),
      id_(id),
      params_(params),
      cpu_(sim, params.cpu),
      disk_(sim, params.disk) {
  suspendedTime_.set(sim_.now(), 0);
}

void Node::startProcess() {
  cpu_.powerOn();
  disk_.powerOn();
}

void Node::crashProcess() {
  cpu_.powerOff();
  disk_.powerOff();
}

void Node::suspendMachine() {
  if (suspended_) return;
  crashProcess();
  suspended_ = true;
  suspendedTime_.set(sim_.now(), 1);
}

void Node::resumeMachine() {
  if (!suspended_) return;
  suspended_ = false;
  suspendedTime_.set(sim_.now(), 0);
  startProcess();
}

Node::PowerSnapshot Node::snapshotPower() const {
  return PowerSnapshot{cpu_.snapshot(),
                       suspendedTime_.integralTo(sim_.now())};
}

double Node::energyJoulesSince(const PowerSnapshot& s, sim::SimTime t) const {
  if (t <= s.cpu.time) return 0;
  const double wall = sim::toSeconds(t - s.cpu.time);
  const double susp = suspendedTime_.integralTo(t) - s.suspendedSeconds;
  const double active = wall - susp;
  const double u = cpu_.utilisationSince(s.cpu, t);  // busy / active window
  // While suspended the CPU integrator is flat, so u underestimates the
  // active-period utilisation by active/wall; energy uses core-seconds
  // directly to stay exact.
  const double coreSeconds = u * wall * params_.cpu.cores;
  return params_.power.idleWatts * active +
         params_.power.dynamicWatts * coreSeconds / params_.cpu.cores +
         params_.suspendedWatts * susp;
}

double Node::meanWattsSince(const PowerSnapshot& s, sim::SimTime t) const {
  if (t <= s.cpu.time) return 0;
  return energyJoulesSince(s, t) / sim::toSeconds(t - s.cpu.time);
}

void Node::startPduSampling() {
  if (!params_.metered || pdu_) return;
  // The sampler reads mean utilisation over each elapsed interval; the
  // lambda keeps its own rolling snapshot, advanced once per sample.
  auto snap = std::make_shared<CpuScheduler::Snapshot>(cpu_.snapshot());
  pdu_ = std::make_unique<power::PduSampler>(
      sim_, params_.power,
      [this, snap](sim::SimTime /*from*/, sim::SimTime to) {
        const double u = cpu_.utilisationSince(*snap, to);
        *snap = cpu_.snapshot();
        return u;
      });
}

void Node::stopPduSampling() {
  if (pdu_) pdu_->stop();
}

double Node::energyJoulesSince(const CpuScheduler::Snapshot& s,
                               sim::SimTime t) const {
  if (t <= s.time) return 0;
  const double u = cpu_.utilisationSince(s, t);
  return params_.power.joules(u, sim::toSeconds(t - s.time));
}

double Node::currentWatts() const {
  if (pdu_ && !pdu_->trace().empty()) {
    return pdu_->trace().points().back().value;
  }
  auto s = cpu_.snapshot();
  (void)s;
  return params_.power.watts(0);
}

}  // namespace rc::node
