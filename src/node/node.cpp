#include "node/node.hpp"

#include <memory>

namespace rc::node {

Node::Node(sim::Simulation& sim, NodeId id, NodeParams params)
    : sim_(sim),
      id_(id),
      params_(params),
      cpu_(sim, params.cpu),
      disk_(sim, params.disk) {
  suspendedTime_.set(sim_.now(), 0);
  installChargeHooks();
}

void Node::installChargeHooks() {
  cpu_.setChargeMeter(&meter_, params_.energy.cpuActiveWattsPerCore);
  disk_.setChargeMeter(&meter_, params_.energy.diskActiveWatts);
}

void Node::setEnergyMetering(bool on) {
  meter_.setEnabled(on);
  if (on) {
    installChargeHooks();
  } else {
    cpu_.setChargeMeter(nullptr, 0);
    disk_.setChargeMeter(nullptr, 0);
  }
}

void Node::startProcess() {
  cpu_.powerOn();
  disk_.powerOn();
}

void Node::crashProcess() {
  cpu_.powerOff();
  disk_.powerOff();
}

void Node::suspendMachine() {
  if (suspended_) return;
  crashProcess();
  suspended_ = true;
  suspendedTime_.set(sim_.now(), 1);
}

void Node::resumeMachine() {
  if (!suspended_) return;
  suspended_ = false;
  suspendedTime_.set(sim_.now(), 0);
  startProcess();
}

Node::PowerSnapshot Node::snapshotPower() const {
  PowerSnapshot s;
  s.cpu = cpu_.snapshot();
  s.suspendedSeconds = suspendedTime_.integralTo(sim_.now());
  s.diskBusySeconds = disk_.busySeconds(sim_.now());
  s.meterJoules = meter_.componentTotals();
  return s;
}

std::array<double, power::kComponentCount> Node::componentEnergySince(
    const PowerSnapshot& s, sim::SimTime t) const {
  std::array<double, power::kComponentCount> out{};
  if (t <= s.cpu.time) return out;
  const power::NodePowerModel& m = params_.energy;
  const double wall = sim::toSeconds(t - s.cpu.time);
  const double susp = suspendedTime_.integralTo(t) - s.suspendedSeconds;
  const double active = wall - susp;
  // While suspended the CPU integrator is flat, so utilisation underestimates
  // the active-period value by active/wall; energy uses core-seconds directly
  // to stay exact (the suspended machine draws suspendedWatts, all platform).
  const double u = cpu_.utilisationSince(s.cpu, t);
  const double coreSeconds = u * wall * params_.cpu.cores;
  const double diskBusy = disk_.busySeconds(t) - s.diskBusySeconds;
  const auto meterNow = meter_.componentTotals();
  const auto dynSince = [&](power::Component c) {
    return meterNow[static_cast<std::size_t>(c)] -
           s.meterJoules[static_cast<std::size_t>(c)];
  };
  out[static_cast<std::size_t>(power::Component::kCpu)] =
      m.cpuIdleWatts * active + m.cpuActiveWattsPerCore * coreSeconds;
  out[static_cast<std::size_t>(power::Component::kDram)] =
      m.dramStaticWatts * active + dynSince(power::Component::kDram);
  out[static_cast<std::size_t>(power::Component::kNic)] =
      m.nicIdleWatts * active + dynSince(power::Component::kNic);
  out[static_cast<std::size_t>(power::Component::kDisk)] =
      m.diskSpindleWatts * active + m.diskActiveWatts * diskBusy;
  out[static_cast<std::size_t>(power::Component::kPlatform)] =
      m.platformWatts * active + params_.suspendedWatts * susp;
  return out;
}

double Node::energyJoulesSince(const PowerSnapshot& s, sim::SimTime t) const {
  const auto by = componentEnergySince(s, t);
  double j = 0;
  for (double c : by) j += c;
  return j;
}

double Node::meanWattsSince(const PowerSnapshot& s, sim::SimTime t) const {
  if (t <= s.cpu.time) return 0;
  return energyJoulesSince(s, t) / sim::toSeconds(t - s.cpu.time);
}

void Node::startPduSampling() {
  if (!params_.metered || pdu_) return;
  // The sampler pulls the energy delta over each elapsed interval; the
  // lambda keeps its own rolling snapshot, advanced once per sample, so the
  // sum of samples is the continuous integral from the baseline.
  pduBaseline_ = std::make_unique<PowerSnapshot>(snapshotPower());
  auto snap = std::make_shared<PowerSnapshot>(*pduBaseline_);
  pdu_ = std::make_unique<power::PduSampler>(
      sim_, [this, snap](sim::SimTime /*from*/, sim::SimTime to) {
        const double j = energyJoulesSince(*snap, to);
        *snap = snapshotPower();
        return j;
      });
}

void Node::stopPduSampling() {
  if (pdu_) pdu_->stop();
}

double Node::energyJoulesSince(const CpuScheduler::Snapshot& s,
                               sim::SimTime t) const {
  if (t <= s.time) return 0;
  const double u = cpu_.utilisationSince(s, t);
  return params_.power.joules(u, sim::toSeconds(t - s.time));
}

void Node::registerMetrics(obs::MetricRegistry& reg,
                           const std::string& prefix) {
  // cpu.util and power.watts report the mean over the elapsed window since
  // the previous probe call. The StatsSampler probes once per 1 Hz tick, so
  // these land on exactly the ticks (and values) the PDU sampler reports.
  auto cpuSnap = std::make_shared<CpuScheduler::Snapshot>(cpu_.snapshot());
  reg.probeGauge(prefix + ".cpu.util", "ratio", [this, cpuSnap] {
    const double u = cpu_.utilisationSince(*cpuSnap, sim_.now());
    *cpuSnap = cpu_.snapshot();
    return u;
  });
  auto pwrSnap = std::make_shared<PowerSnapshot>(snapshotPower());
  reg.probeGauge(prefix + ".power.watts", "watts", [this, pwrSnap] {
    const double w = meanWattsSince(*pwrSnap, sim_.now());
    *pwrSnap = snapshotPower();
    return w;
  });
  // Cumulative per-component joules from a fixed origin: monotone counters
  // whose sampler .rate series are the per-component watts timelines that
  // `rcdiag energy` stacks (docs/ENERGY.md).
  auto energyBase = std::make_shared<PowerSnapshot>(snapshotPower());
  for (std::size_t c = 0; c < power::kComponentCount; ++c) {
    const auto comp = static_cast<power::Component>(c);
    reg.probeCounter(
        prefix + ".energy." + power::componentName(comp) + ".joules",
        "joules", [this, energyBase, c] {
          return componentEnergySince(*energyBase, sim_.now())[c];
        });
  }
  reg.probeGauge(prefix + ".cpu.busy_workers", "items", [this] {
    return static_cast<double>(cpu_.busyWorkers());
  });
  reg.probeGauge(prefix + ".cpu.queued_requests", "items", [this] {
    return static_cast<double>(cpu_.queuedRequests());
  });
  reg.probeCounter(prefix + ".disk.read_bytes", "bytes", [this] {
    return static_cast<double>(disk_.bytesRead());
  });
  reg.probeCounter(prefix + ".disk.write_bytes", "bytes", [this] {
    return static_cast<double>(disk_.bytesWritten());
  });
  reg.probeGauge(prefix + ".disk.queue_depth", "items", [this] {
    return static_cast<double>(disk_.queueDepth());
  });
  reg.probeGauge(prefix + ".suspended", "ratio",
                 [this] { return suspended_ ? 1.0 : 0.0; });
}

double Node::currentWatts() const {
  if (suspended_) return params_.suspendedWatts;
  if (pdu_ && !pdu_->trace().empty()) {
    return pdu_->trace().points().back().value;
  }
  return params_.energy.staticWatts();
}

}  // namespace rc::node
