#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "power/energy_ledger.hpp"
#include "power/energy_model.hpp"
#include "sim/inline_task.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace rc::node {

/// Mechanical-disk parameters (defaults model the Nancy nodes' 298 GB HDD).
struct DiskParams {
  double readMBps = 110.0;   ///< sequential read bandwidth
  double writeMBps = 105.0;  ///< sequential write bandwidth

  /// Head-movement penalty paid whenever the disk switches between
  /// concurrent streams (e.g. recovery-segment reads interleaving with
  /// re-replication flushes — the contention of paper Fig. 12 / Finding 6).
  sim::Duration seekTime = sim::msec(8);

  /// Transfer granularity at which concurrent operations interleave.
  std::uint64_t chunkBytes = 256 * 1024;
};

/// FIFO + round-robin disk model.
///
/// Each read()/write() is one stream. Streams are serviced one chunk at a
/// time, round-robin; every switch between distinct streams pays seekTime.
/// A single sequential stream therefore gets full bandwidth, while mixed
/// read/write activity degrades sharply — the emergent behaviour behind the
/// paper's recovery-time findings.
class Disk {
 public:
  using Callback = sim::InlineTask;

  Disk(sim::Simulation& sim, DiskParams params);

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// `tag` labels the stream for energy attribution: every serviced chunk's
  /// busy time (seek included) is flushed to the charge hook under it.
  void read(std::uint64_t bytes, Callback done,
            power::EnergyTag tag = power::EnergyTag{});
  void write(std::uint64_t bytes, Callback done,
             power::EnergyTag tag = power::EnergyTag{});

  /// Energy-attribution target: per serviced chunk, busySeconds ×
  /// activeWatts joules land directly on the meter (inlined — this is the
  /// per-IO completion path). Null disables attribution.
  void setChargeMeter(power::EnergyMeter* m, double activeWatts) {
    chargeMeter_ = m;
    chargeActiveWatts_ = activeWatts;
  }

  /// Crash: drop queued operations (their callbacks never run).
  void powerOff();
  void powerOn();

  // ----- fault injection (see fault::FaultInjector)

  /// Throughput degradation: both rates are divided by `factor` (>= 1;
  /// 1 restores nominal speed). Applies to chunks started after the call.
  void setSlowdownFactor(double factor);
  double slowdownFactor() const { return slowdown_; }

  /// Firmware-style stall: no new chunk starts before now + `d`. In-flight
  /// chunks finish; queued operations (and their seek/rotate state) are
  /// preserved.
  void stallFor(sim::Duration d);
  bool stalled() const;

  std::size_t queueDepth() const { return queue_.size() + (active_ ? 1 : 0); }
  std::uint64_t bytesRead() const { return bytesRead_; }
  std::uint64_t bytesWritten() const { return bytesWritten_; }

  /// Busy-time integral in seconds (for utilisation stats).
  double busySeconds(sim::SimTime t) const { return busy_.integralTo(t); }

  const DiskParams& params() const { return params_; }

 private:
  struct Op {
    std::uint64_t id;
    bool isWrite;
    std::uint64_t remaining;
    Callback done;
    power::EnergyTag tag;
  };

  void serviceNext();

  sim::Simulation& sim_;
  DiskParams params_;
  bool on_ = true;
  std::uint64_t epoch_ = 0;
  double slowdown_ = 1.0;
  sim::SimTime stallUntil_ = 0;
  bool resumePending_ = false;
  std::uint64_t nextOpId_ = 1;
  std::uint64_t lastServedOp_ = 0;
  std::deque<Op> queue_;
  bool active_ = false;
  std::uint64_t bytesRead_ = 0;
  std::uint64_t bytesWritten_ = 0;
  sim::TimeWeightedValue busy_;
  power::EnergyMeter* chargeMeter_ = nullptr;
  double chargeActiveWatts_ = 0;
};

}  // namespace rc::node
