#include "node/disk.hpp"

#include <algorithm>
#include <utility>

namespace rc::node {

Disk::Disk(sim::Simulation& sim, DiskParams params)
    : sim_(sim), params_(params) {
  busy_.set(sim_.now(), 0);
}

void Disk::read(std::uint64_t bytes, Callback done, power::EnergyTag tag) {
  if (!on_) return;
  queue_.push_back(Op{nextOpId_++, false, std::max<std::uint64_t>(bytes, 1),
                      std::move(done), tag});
  if (!active_) serviceNext();
}

void Disk::write(std::uint64_t bytes, Callback done, power::EnergyTag tag) {
  if (!on_) return;
  queue_.push_back(Op{nextOpId_++, true, std::max<std::uint64_t>(bytes, 1),
                      std::move(done), tag});
  if (!active_) serviceNext();
}

void Disk::powerOff() {
  on_ = false;
  ++epoch_;
  queue_.clear();
  active_ = false;
  busy_.set(sim_.now(), 0);
}

void Disk::powerOn() {
  if (on_) return;
  on_ = true;
  ++epoch_;
}

void Disk::setSlowdownFactor(double factor) {
  slowdown_ = factor < 1.0 ? 1.0 : factor;
}

bool Disk::stalled() const { return sim_.now() < stallUntil_; }

void Disk::stallFor(sim::Duration d) {
  const sim::SimTime until = sim_.now() + d;
  if (until <= stallUntil_) return;
  stallUntil_ = until;
  if (!active_ && !queue_.empty()) serviceNext();
}

void Disk::serviceNext() {
  if (!on_ || queue_.empty()) {
    active_ = false;
    busy_.set(sim_.now(), 0);
    return;
  }
  if (stalled()) {
    // Stalled: hold the queue, resume exactly at stall end. The disk does
    // no useful work, so it counts as idle for utilisation/power.
    active_ = false;
    busy_.set(sim_.now(), 0);
    if (!resumePending_) {
      resumePending_ = true;
      const std::uint64_t epoch = epoch_;
      sim_.scheduleAt(stallUntil_, [this, epoch] {
        resumePending_ = false;
        if (epoch_ != epoch || active_) return;
        if (!queue_.empty()) serviceNext();
      });
    }
    return;
  }
  active_ = true;
  busy_.set(sim_.now(), 1);

  Op op = std::move(queue_.front());
  queue_.pop_front();

  const std::uint64_t chunk = std::min(op.remaining, params_.chunkBytes);
  const double mbps =
      (op.isWrite ? params_.writeMBps : params_.readMBps) / slowdown_;
  sim::Duration t = sim::secondsF(static_cast<double>(chunk) / (mbps * 1e6));
  if (op.id != lastServedOp_) t += params_.seekTime;
  lastServedOp_ = op.id;

  const std::uint64_t epoch = epoch_;
  const double serviceSeconds = sim::toSeconds(t);
  sim_.schedule(t, [this, epoch, chunk, serviceSeconds,
                    op = std::move(op)]() mutable {
    if (epoch_ != epoch) return;
    if (chargeMeter_ != nullptr) {
      chargeMeter_->charge(power::Component::kDisk, op.tag,
                           serviceSeconds * chargeActiveWatts_);
    }
    if (op.isWrite) {
      bytesWritten_ += chunk;
    } else {
      bytesRead_ += chunk;
    }
    op.remaining -= chunk;
    if (op.remaining == 0) {
      if (op.done) op.done();
    } else {
      // Round-robin: unfinished streams go to the back so concurrent
      // operations interleave (and pay seeks on every alternation).
      queue_.push_back(std::move(op));
    }
    serviceNext();
  });
}

}  // namespace rc::node
