#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "power/energy_ledger.hpp"
#include "power/energy_model.hpp"
#include "sim/inline_task.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace rc::node {

/// CPU configuration of one simulated server (defaults model the paper's
/// Grid'5000 Nancy nodes: 1x Xeon X3440, 4 cores).
struct CpuParams {
  int cores = 4;

  /// RAMCloud's dispatch thread busy-polls the NIC and is pinned to its own
  /// core — the paper measures a 25 % CPU floor on 4-core nodes even with
  /// zero clients (Table I row 0, Fig. 9a).
  int pollingCores = 1;

  /// Worker threads servicing requests (RAMCloud runs roughly one per
  /// remaining core).
  int workerThreads = 3;

  /// After finishing work a worker busy-polls this long before sleeping;
  /// this produces Table I's staircase (one hot worker per active client
  /// stream) and the near-100 % CPU at load levels well below peak
  /// throughput — the paper's "non-proportional power" effect.
  sim::Duration workerSpinBeforeSleep = sim::usec(32);

  /// Context-switch cost to wake a sleeping worker.
  sim::Duration wakeupLatency = sim::usec(2);
};

/// Worker-slot scheduler with busy-core accounting.
///
/// A "worker" here is a RAMCloud worker thread. Request handlers acquire a
/// worker, drive an arbitrary multi-stage operation while occupying it
/// (service CPU, lock spin-waits, synchronous replication waits — RAMCloud
/// workers spin, so occupancy == CPU-busy), then release it. Utilisation is
/// integrated continuously and drives the power model.
class CpuScheduler {
 public:
  using WorkerId = int;
  using AcquireFn = sim::InlineFunction<void(WorkerId)>;

  CpuScheduler(sim::Simulation& sim, CpuParams params);

  CpuScheduler(const CpuScheduler&) = delete;
  CpuScheduler& operator=(const CpuScheduler&) = delete;

  /// Start the process: polling core(s) go busy.
  void powerOn();

  /// Kill the process: pending queue dropped, all workers idle, polling
  /// stops. In-flight operations holding workers are orphaned; their
  /// releases become no-ops (guarded by an epoch check).
  void powerOff();

  bool poweredOn() const { return on_; }

  /// Acquire a worker slot. `fn` runs as soon as a worker is available —
  /// synchronously if one is spinning, after wakeupLatency if one must be
  /// woken, or later if all are busy (FIFO request queue).
  void acquireWorker(AcquireFn fn);

  /// Release a worker previously granted to this operation. If requests are
  /// queued the worker immediately starts the next one; otherwise it spins
  /// for workerSpinBeforeSleep and then sleeps. The worker's occupancy
  /// (grant to release, wakeup latency included) is flushed to the charge
  /// hook under the tag set via tagWorker (default: unattributed).
  void releaseWorker(WorkerId id);

  /// Label the current occupancy of `id` for energy attribution; the
  /// charge fires at release time with the full occupancy duration.
  void tagWorker(WorkerId id, power::EnergyTag tag) {
    tags_[static_cast<std::size_t>(id)] = tag;
  }

  /// Energy-attribution target: once per worker occupancy (at release /
  /// crash) and per auxiliary charge, coreSeconds × wattsPerCore joules
  /// land directly on the meter — inlined, since this is the
  /// worker-release hot path. Null disables attribution entirely (the
  /// busy-core integral — and so power — is unaffected either way).
  void setChargeMeter(power::EnergyMeter* m, double wattsPerCore) {
    chargeMeter_ = m;
    chargeWattsPerCore_ = wattsPerCore;
  }

  /// Convenience: occupy a worker for `cpuTime`, then call `done`.
  void run(sim::Duration cpuTime, sim::InlineTask done);
  void run(sim::Duration cpuTime, power::EnergyTag tag, sim::InlineTask done);

  /// Epoch increments on every powerOff/powerOn; continuations captured
  /// before a crash must check it before touching the scheduler.
  std::uint64_t epoch() const { return epoch_; }

  std::size_t queuedRequests() const { return queue_.size(); }
  int busyWorkers() const { return busyCount_; }
  int workerThreads() const { return params_.workerThreads; }
  const CpuParams& params() const { return params_; }

  /// Continuous busy-core integral (core-seconds) up to time t >= now-ish.
  double busyCoreSeconds(sim::SimTime t) const { return busy_.integralTo(t); }

  /// Charge CPU work that is not a worker occupancy — e.g. replication
  /// requests serviced at dispatch priority, whose cycles would otherwise
  /// hide inside the already-pinned polling core. Accumulated into the
  /// utilisation (clamped at the core count), so it shows up in power.
  void chargeAuxiliaryWork(sim::Duration d,
                           power::EnergyTag tag = power::EnergyTag{}) {
    if (!on_) return;
    auxBusyCoreSeconds_ += sim::toSeconds(d);
    if (chargeMeter_ != nullptr) {
      chargeMeter_->charge(power::Component::kCpu, tag,
                           sim::toSeconds(d) * chargeWattsPerCore_);
    }
  }

  /// Mean utilisation in [0,1] between a snapshot and time `t`.
  struct Snapshot {
    sim::SimTime time = 0;
    double busyCoreSeconds = 0;
    double auxBusyCoreSeconds = 0;
  };
  Snapshot snapshot() const;
  double utilisationSince(const Snapshot& s, sim::SimTime t) const;

  /// Lifetime stats.
  std::uint64_t tasksStarted() const { return tasksStarted_; }
  std::size_t maxQueueDepth() const { return maxQueue_; }

 private:
  enum class WorkerState { Sleeping, Spinning, Busy };

  void setBusyCores();
  void assign(WorkerId w, AcquireFn fn, bool fromSleep);
  void startSpin(WorkerId w);
  void flushOccupancy(WorkerId w);

  sim::Simulation& sim_;
  CpuParams params_;
  bool on_ = false;
  std::uint64_t epoch_ = 0;

  std::vector<WorkerState> state_;
  std::vector<sim::EventId> spinEnd_;     // pending spin-end per worker
  std::vector<AcquireFn> pendingAssign_;  // parked across wakeupLatency
  std::vector<power::EnergyTag> tags_;    // attribution of current occupancy
  std::vector<sim::SimTime> occupiedSince_;
  power::EnergyMeter* chargeMeter_ = nullptr;
  double chargeWattsPerCore_ = 0;
  std::vector<WorkerId> spinningStack_;   // LIFO: hottest worker on top
  std::vector<WorkerId> sleepingStack_;
  std::deque<AcquireFn> queue_;
  int busyCount_ = 0;
  int spinningCount_ = 0;

  sim::TimeWeightedValue busy_;
  double auxBusyCoreSeconds_ = 0;
  std::uint64_t tasksStarted_ = 0;
  std::size_t maxQueue_ = 0;
};

}  // namespace rc::node
