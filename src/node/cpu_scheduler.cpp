#include "node/cpu_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace rc::node {

CpuScheduler::CpuScheduler(sim::Simulation& sim, CpuParams params)
    : sim_(sim), params_(params) {
  params_.workerThreads =
      std::max(1, std::min(params_.workerThreads,
                           params_.cores - params_.pollingCores));
  state_.assign(static_cast<std::size_t>(params_.workerThreads),
                WorkerState::Sleeping);
  spinEnd_.assign(state_.size(), sim::kInvalidEvent);
  pendingAssign_.resize(state_.size());
  tags_.assign(state_.size(), power::EnergyTag{});
  occupiedSince_.assign(state_.size(), 0);
  for (int w = params_.workerThreads - 1; w >= 0; --w) {
    sleepingStack_.push_back(w);
  }
  busy_.set(sim_.now(), 0);
}

void CpuScheduler::setBusyCores() {
  const double cores = (on_ ? params_.pollingCores : 0) + busyCount_ +
                       spinningCount_;
  busy_.set(sim_.now(), cores);
}

void CpuScheduler::powerOn() {
  if (on_) return;
  on_ = true;
  ++epoch_;
  setBusyCores();
}

void CpuScheduler::powerOff() {
  if (!on_) return;
  on_ = false;
  ++epoch_;
  queue_.clear();
  for (std::size_t w = 0; w < state_.size(); ++w) {
    if (state_[w] == WorkerState::Busy) {
      flushOccupancy(static_cast<WorkerId>(w));  // orphaned by the crash
    }
    if (spinEnd_[w] != sim::kInvalidEvent) {
      sim_.cancel(spinEnd_[w]);
      spinEnd_[w] = sim::kInvalidEvent;
    }
    pendingAssign_[w] = nullptr;  // wakeups in flight are orphaned
    state_[w] = WorkerState::Sleeping;
  }
  spinningStack_.clear();
  sleepingStack_.clear();
  for (int w = params_.workerThreads - 1; w >= 0; --w) {
    sleepingStack_.push_back(w);
  }
  busyCount_ = 0;
  spinningCount_ = 0;
  setBusyCores();
}

void CpuScheduler::flushOccupancy(WorkerId w) {
  if (chargeMeter_ == nullptr) return;
  const double secs =
      sim::toSeconds(sim_.now() - occupiedSince_[static_cast<std::size_t>(w)]);
  if (secs > 0) {
    chargeMeter_->charge(power::Component::kCpu,
                         tags_[static_cast<std::size_t>(w)],
                         secs * chargeWattsPerCore_);
  }
}

void CpuScheduler::assign(WorkerId w, AcquireFn fn, bool fromSleep) {
  state_[static_cast<std::size_t>(w)] = WorkerState::Busy;
  occupiedSince_[static_cast<std::size_t>(w)] = sim_.now();
  tags_[static_cast<std::size_t>(w)] = power::EnergyTag{};
  ++busyCount_;
  ++tasksStarted_;
  setBusyCores();
  if (fromSleep && params_.wakeupLatency > 0) {
    // Park the grant in the worker's slot: the wakeup event then captures
    // only (this, epoch, w) and stays within InlineTask's inline buffer.
    // The slot is free — a Busy worker cannot be re-assigned until the
    // grant has run and released it.
    pendingAssign_[static_cast<std::size_t>(w)] = std::move(fn);
    const std::uint64_t epoch = epoch_;
    sim_.schedule(params_.wakeupLatency, [this, epoch, w] {
      if (epoch_ != epoch) return;
      AcquireFn fn = std::move(pendingAssign_[static_cast<std::size_t>(w)]);
      fn(w);
    });
  } else {
    fn(w);
  }
}

void CpuScheduler::acquireWorker(AcquireFn fn) {
  if (!on_) return;  // crashed process: request silently dropped (times out)
  if (!spinningStack_.empty()) {
    const WorkerId w = spinningStack_.back();
    spinningStack_.pop_back();
    --spinningCount_;
    sim_.cancel(spinEnd_[static_cast<std::size_t>(w)]);
    spinEnd_[static_cast<std::size_t>(w)] = sim::kInvalidEvent;
    assign(w, std::move(fn), /*fromSleep=*/false);
    return;
  }
  if (!sleepingStack_.empty()) {
    const WorkerId w = sleepingStack_.back();
    sleepingStack_.pop_back();
    assign(w, std::move(fn), /*fromSleep=*/true);
    return;
  }
  queue_.push_back(std::move(fn));
  maxQueue_ = std::max(maxQueue_, queue_.size());
}

void CpuScheduler::releaseWorker(WorkerId w) {
  if (!on_) return;  // release from an operation that straddled a crash
  assert(state_[static_cast<std::size_t>(w)] == WorkerState::Busy);
  flushOccupancy(w);
  if (!queue_.empty()) {
    AcquireFn next = std::move(queue_.front());
    queue_.pop_front();
    ++tasksStarted_;
    // Worker stays Busy; a fresh occupancy window opens for the next op.
    occupiedSince_[static_cast<std::size_t>(w)] = sim_.now();
    tags_[static_cast<std::size_t>(w)] = power::EnergyTag{};
    next(w);
    return;
  }
  --busyCount_;
  startSpin(w);
}

void CpuScheduler::startSpin(WorkerId w) {
  state_[static_cast<std::size_t>(w)] = WorkerState::Spinning;
  ++spinningCount_;
  spinningStack_.push_back(w);
  setBusyCores();
  const std::uint64_t epoch = epoch_;
  spinEnd_[static_cast<std::size_t>(w)] =
      sim_.schedule(params_.workerSpinBeforeSleep, [this, epoch, w] {
        if (epoch_ != epoch) return;
        if (state_[static_cast<std::size_t>(w)] != WorkerState::Spinning)
          return;
        spinEnd_[static_cast<std::size_t>(w)] = sim::kInvalidEvent;
        state_[static_cast<std::size_t>(w)] = WorkerState::Sleeping;
        --spinningCount_;
        auto it = std::find(spinningStack_.begin(), spinningStack_.end(), w);
        if (it != spinningStack_.end()) spinningStack_.erase(it);
        sleepingStack_.push_back(w);
        setBusyCores();
      });
}

void CpuScheduler::run(sim::Duration cpuTime, sim::InlineTask done) {
  run(cpuTime, power::EnergyTag{}, std::move(done));
}

void CpuScheduler::run(sim::Duration cpuTime, power::EnergyTag tag,
                       sim::InlineTask done) {
  const std::uint64_t epoch = epoch_;
  acquireWorker([this, epoch, cpuTime, tag,
                 done = std::move(done)](WorkerId w) mutable {
    tagWorker(w, tag);
    sim_.schedule(cpuTime, [this, epoch, w, done = std::move(done)] {
      if (epoch_ != epoch) return;  // node crashed meanwhile
      releaseWorker(w);
      done();
    });
  });
}

CpuScheduler::Snapshot CpuScheduler::snapshot() const {
  return Snapshot{sim_.now(), busy_.integralTo(sim_.now()),
                  auxBusyCoreSeconds_};
}

double CpuScheduler::utilisationSince(const Snapshot& s,
                                      sim::SimTime t) const {
  if (t <= s.time) return 0;
  const double coreSeconds = busy_.integralTo(t) - s.busyCoreSeconds +
                             (auxBusyCoreSeconds_ - s.auxBusyCoreSeconds);
  const double wall = sim::toSeconds(t - s.time);
  return std::clamp(coreSeconds / (wall * params_.cores), 0.0, 1.0);
}

}  // namespace rc::node
