#pragma once

#include <array>
#include <memory>
#include <string>

#include "node/cpu_scheduler.hpp"
#include "node/disk.hpp"
#include "obs/metric_registry.hpp"
#include "power/energy_ledger.hpp"
#include "power/energy_model.hpp"
#include "power/pdu.hpp"
#include "power/power_model.hpp"
#include "sim/simulation.hpp"

namespace rc::node {

/// Cluster-wide node identifier.
using NodeId = int;

constexpr NodeId kInvalidNode = -1;

struct NodeParams {
  CpuParams cpu;
  DiskParams disk;
  /// Whole-node linear fit P(u) = 60.5 + 63.4u — kept as the calibration
  /// reference curve; accounting runs on the component model below.
  power::PowerModel power;
  /// Per-resource decomposition whose sum reproduces `power` within the
  /// 2 % calibration gate (docs/ENERGY.md).
  power::NodePowerModel energy;
  /// Wall power of a machine put in standby (suspend-to-RAM) by the
  /// autoscaler — the knob behind Sierra/Rabbit-style power
  /// proportionality the paper's SS IX points to.
  double suspendedWatts = 9.0;
  /// Grid'5000 Nancy: only the 40 PDU-equipped machines are metered; client
  /// nodes are not. Unmetered nodes skip PDU sampling (cheaper, and matches
  /// the paper's methodology: reported watts cover servers only).
  bool metered = true;
};

/// One physical machine: CPU, disk, NIC-attachment point, power meter.
///
/// The RAMCloud *process* on a node can crash (crashProcess()) — the machine
/// stays powered (idle watts), exactly like killing the ramcloud-server
/// binary in the paper's crash-recovery experiments.
class Node {
 public:
  Node(sim::Simulation& sim, NodeId id, NodeParams params);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  sim::Simulation& sim() { return sim_; }
  CpuScheduler& cpu() { return cpu_; }
  const CpuScheduler& cpu() const { return cpu_; }
  Disk& disk() { return disk_; }
  const Disk& disk() const { return disk_; }
  const NodeParams& params() const { return params_; }

  /// Start the RAMCloud process (polling core goes busy).
  void startProcess();

  /// Kill the RAMCloud process: CPU queue dropped, disk queue dropped.
  void crashProcess();

  bool processRunning() const { return cpu_.poweredOn(); }

  /// Put the whole machine in standby (process stopped first): it draws
  /// suspendedWatts until resume().
  void suspendMachine();
  void resumeMachine();
  bool suspended() const { return suspended_; }

  /// Suspension-aware power accounting window.
  struct PowerSnapshot {
    CpuScheduler::Snapshot cpu;
    double suspendedSeconds = 0;
    double diskBusySeconds = 0;
    /// Meter dynamic totals at snapshot time (nic/dram event charges).
    std::array<double, power::kComponentCount> meterJoules{};
  };
  PowerSnapshot snapshotPower() const;

  /// Per-component joules consumed between a snapshot and `t` (statics
  /// prorated over the active window, dynamics from the integrals/meter);
  /// the array sums to energyJoulesSince.
  std::array<double, power::kComponentCount> componentEnergySince(
      const PowerSnapshot& s, sim::SimTime t) const;
  double energyJoulesSince(const PowerSnapshot& s, sim::SimTime t) const;
  double meanWattsSince(const PowerSnapshot& s, sim::SimTime t) const;

  /// Begin 1 Hz PDU sampling (no-op for unmetered nodes).
  void startPduSampling();
  void stopPduSampling();
  const power::PduSampler* pdu() const { return pdu_.get(); }
  /// Energy accounting origin taken when PDU sampling began (null before);
  /// componentEnergySince from it reconciles exactly with the PDU trace.
  const PowerSnapshot* pduBaseline() const { return pduBaseline_.get(); }

  // ----- energy attribution (docs/ENERGY.md)

  power::EnergyMeter& energyMeter() { return meter_; }
  const power::EnergyMeter& energyMeter() const { return meter_; }

  /// Enable/disable the attribution ledger. Off uninstalls the CPU/disk
  /// charge hooks entirely, so the A/B overhead gate measures the real
  /// per-event cost. Power and behaviour are identical either way.
  void setEnergyMetering(bool on);
  bool energyMetering() const { return meter_.enabled(); }

  /// Charge one NIC frame / one DRAM access burst to the ledger.
  void chargeNic(std::uint64_t bytes, power::EnergyTag tag) {
    meter_.charge(power::Component::kNic, tag, params_.energy.nicJoules(bytes));
  }
  void chargeDram(std::uint64_t bytes, power::EnergyTag tag) {
    meter_.charge(power::Component::kDram, tag,
                  params_.energy.dramJoules(bytes));
  }

  /// CPU accounting for metrics windows.
  CpuScheduler::Snapshot snapshotCpu() const { return cpu_.snapshot(); }
  double meanUtilisationSince(const CpuScheduler::Snapshot& s,
                              sim::SimTime t) const {
    return cpu_.utilisationSince(s, t);
  }

  /// Exact energy (J) between a CPU snapshot and `t`, via the calibration
  /// reference curve (legacy whole-node view; ignores event dynamics).
  double energyJoulesSince(const CpuScheduler::Snapshot& s,
                           sim::SimTime t) const;

  /// Instantaneous wattage estimate over the trailing PDU window (for
  /// logging); falls back to the model at current utilisation.
  double currentWatts() const;

  /// Register this machine's metrics under `prefix` (e.g. "node3"):
  /// cpu.util / power.watts (mean over the sampling window, so they align
  /// with the 1 Hz PDU ticks), worker/queue gauges, disk counters.
  void registerMetrics(obs::MetricRegistry& reg, const std::string& prefix);

 private:
  void installChargeHooks();

  sim::Simulation& sim_;
  NodeId id_;
  NodeParams params_;
  CpuScheduler cpu_;
  Disk disk_;
  power::EnergyMeter meter_;
  bool suspended_ = false;
  sim::TimeWeightedValue suspendedTime_;  ///< 1 while suspended
  std::unique_ptr<power::PduSampler> pdu_;
  std::unique_ptr<PowerSnapshot> pduBaseline_;
};

}  // namespace rc::node
