#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "log/segment.hpp"

namespace rc::hash {

/// A (table, key) pair — the unit of addressing in RAMCloud.
struct Key {
  std::uint64_t tableId = 0;
  std::uint64_t keyId = 0;

  bool operator==(const Key&) const = default;
};

/// 64-bit mix (splitmix64 finaliser) over both components. The same hash
/// routes requests to tablets, so it is exposed here.
std::uint64_t keyHash(const Key& k);

/// Where an object currently lives.
struct ObjectLocation {
  log::LogRef ref;
  std::uint64_t version = 0;
  std::uint32_t sizeBytes = 0;
};

/// Open-addressing hash table from Key to ObjectLocation.
///
/// Linear probing with backshift-free tombstones and amortised growth at
/// load factor 0.7 — modelled on RAMCloud's in-DRAM index (their real table
/// stores 47-bit log references in cache-line buckets; the semantics that
/// matter here are identical).
class ObjectMap {
 public:
  explicit ObjectMap(std::size_t initialBuckets = 64);

  /// Insert or overwrite. Returns true if the key was newly inserted.
  bool put(const Key& k, const ObjectLocation& loc);

  /// nullptr if absent.
  const ObjectLocation* get(const Key& k) const;
  ObjectLocation* getMutable(const Key& k);

  /// Returns true if the key was present.
  bool erase(const Key& k);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t bucketCount() const { return slots_.size(); }
  double loadFactor() const {
    return slots_.empty()
               ? 0.0
               : static_cast<double>(size_ + tombstones_) /
                     static_cast<double>(slots_.size());
  }

  /// Visit every live entry (order unspecified).
  void forEach(const std::function<void(const Key&, const ObjectLocation&)>&
                   fn) const;

 private:
  enum class SlotState : std::uint8_t { kEmpty, kUsed, kTombstone };
  struct Slot {
    SlotState state = SlotState::kEmpty;
    Key key;
    ObjectLocation loc;
  };

  void grow();
  std::size_t probe(const Key& k, bool forInsert) const;

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
};

}  // namespace rc::hash
