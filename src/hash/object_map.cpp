#include "hash/object_map.hpp"

#include <bit>
#include <cassert>

namespace rc::hash {

std::uint64_t keyHash(const Key& k) {
  auto mix = [](std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  };
  return mix(mix(k.tableId) ^ (k.keyId + 0x632be59bd9b4e019ULL));
}

ObjectMap::ObjectMap(std::size_t initialBuckets) {
  slots_.resize(std::bit_ceil(std::max<std::size_t>(initialBuckets, 8)));
}

std::size_t ObjectMap::probe(const Key& k, bool forInsert) const {
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(keyHash(k)) & mask;
  std::size_t firstTombstone = slots_.size();  // sentinel: none seen
  for (std::size_t step = 0; step < slots_.size(); ++step) {
    const Slot& s = slots_[i];
    if (s.state == SlotState::kEmpty) {
      if (forInsert && firstTombstone != slots_.size()) return firstTombstone;
      return i;
    }
    if (s.state == SlotState::kTombstone) {
      if (forInsert && firstTombstone == slots_.size()) firstTombstone = i;
    } else if (s.key == k) {
      return i;
    }
    i = (i + 1) & mask;
  }
  // Table full of used+tombstone slots; growth policy prevents this.
  assert(firstTombstone != slots_.size());
  return firstTombstone;
}

void ObjectMap::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.clear();
  slots_.resize(old.size() * 2);
  size_ = 0;
  tombstones_ = 0;
  for (const Slot& s : old) {
    if (s.state == SlotState::kUsed) put(s.key, s.loc);
  }
}

bool ObjectMap::put(const Key& k, const ObjectLocation& loc) {
  if (static_cast<double>(size_ + tombstones_ + 1) >
      0.7 * static_cast<double>(slots_.size())) {
    grow();
  }
  const std::size_t i = probe(k, /*forInsert=*/true);
  Slot& s = slots_[i];
  const bool fresh = s.state != SlotState::kUsed || !(s.key == k);
  if (s.state == SlotState::kTombstone) --tombstones_;
  if (fresh) ++size_;
  s.state = SlotState::kUsed;
  s.key = k;
  s.loc = loc;
  return fresh;
}

const ObjectLocation* ObjectMap::get(const Key& k) const {
  const std::size_t i = probe(k, /*forInsert=*/false);
  const Slot& s = slots_[i];
  if (s.state == SlotState::kUsed && s.key == k) return &s.loc;
  return nullptr;
}

ObjectLocation* ObjectMap::getMutable(const Key& k) {
  return const_cast<ObjectLocation*>(
      static_cast<const ObjectMap*>(this)->get(k));
}

bool ObjectMap::erase(const Key& k) {
  const std::size_t i = probe(k, /*forInsert=*/false);
  Slot& s = slots_[i];
  if (s.state == SlotState::kUsed && s.key == k) {
    s.state = SlotState::kTombstone;
    --size_;
    ++tombstones_;
    return true;
  }
  return false;
}

void ObjectMap::forEach(
    const std::function<void(const Key&, const ObjectLocation&)>& fn) const {
  for (const Slot& s : slots_) {
    if (s.state == SlotState::kUsed) fn(s.key, s.loc);
  }
}

}  // namespace rc::hash
