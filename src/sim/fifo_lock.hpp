#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "sim/inline_task.hpp"

namespace rc::sim {

/// A FIFO mutual-exclusion resource for simulated threads.
///
/// acquire() either grants immediately or queues the continuation; release()
/// grants the head of the queue. The *caller* models what the waiting thread
/// does meanwhile (RAMCloud workers spin, so they stay CPU-busy while
/// queued — that is modelled in the CpuScheduler, not here).
class FifoLock {
 public:
  using Grant = InlineTask;

  /// Returns true if the lock was free and granted synchronously; otherwise
  /// queues `grant` and returns false.
  bool acquire(Grant grant);

  /// Release the lock; the oldest waiter (if any) is granted synchronously.
  void release();

  bool held() const { return held_; }
  std::size_t waiters() const { return waiters_.size(); }

  /// Total acquisitions, for contention stats.
  std::uint64_t acquisitions() const { return acquisitions_; }

  /// Drop all waiters without granting (used when a node crashes).
  void clearWaiters() { waiters_.clear(); }

  /// Crash reset: lock free, no waiters.
  void reset() {
    held_ = false;
    waiters_.clear();
  }

 private:
  bool held_ = false;
  std::deque<Grant> waiters_;
  std::uint64_t acquisitions_ = 0;
};

}  // namespace rc::sim
