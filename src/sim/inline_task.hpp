#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace rc::sim {

namespace detail {

/// Size-classed free lists for InlineFunction overflow allocations.
///
/// The event loop is single-threaded per simulation, but tests may run
/// several simulations; thread_local keeps the lists race-free without
/// atomics. Blocks are recycled forever (they stay reachable through the
/// list heads, so leak checkers are happy) — after warm-up the overflow
/// path performs no malloc/free at all.
struct OverflowPool {
  static constexpr std::size_t kClassStep = 64;
  static constexpr std::size_t kNumClasses = 8;  // pooled up to 512 bytes

  static constexpr std::size_t classOf(std::size_t bytes) {
    return (bytes + kClassStep - 1) / kClassStep - 1;
  }

  static void* allocate(std::size_t bytes) {
    const std::size_t cls = classOf(bytes);
    if (cls >= kNumClasses) return ::operator new(bytes);
    void*& head = freeHead(cls);
    if (head != nullptr) {
      void* block = head;
      head = *static_cast<void**>(block);
      return block;
    }
    return ::operator new((cls + 1) * kClassStep);
  }

  static void release(void* block, std::size_t bytes) {
    const std::size_t cls = classOf(bytes);
    if (cls >= kNumClasses) {
      ::operator delete(block);
      return;
    }
    void*& head = freeHead(cls);
    *static_cast<void**>(block) = head;
    head = block;
  }

 private:
  static void*& freeHead(std::size_t cls) {
    thread_local void* heads[kNumClasses] = {};
    return heads[cls];
  }
};

}  // namespace detail

/// Small-buffer-optimised move-only callable: the simulator's replacement
/// for std::function on every hot path (sim events, dispatch hand-offs,
/// worker grants, RPC continuations).
///
///  - Callables up to kInlineBytes live in the object itself: scheduling an
///    event performs no heap allocation.
///  - Larger captures overflow into a size-classed free-list pool
///    (detail::OverflowPool), so steady-state overflow costs a pointer swap
///    rather than malloc/free.
///  - Move-only: continuations may own move-only state (other
///    InlineFunctions, pool handles) that std::function could never hold.
template <typename Sig>
class InlineFunction;

template <typename R, typename... Args>
class InlineFunction<R(Args...)> {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(runtime/explicit)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = &inlineInvoke<Fn>;
      manage_ = &inlineManage<Fn>;
      inlineStored_ = true;
    } else {
      void* block = detail::OverflowPool::allocate(sizeof(Fn));
      ::new (block) Fn(std::forward<F>(f));
      *reinterpret_cast<void**>(buf_) = block;
      invoke_ = &heapInvoke<Fn>;
      manage_ = &heapManage<Fn>;
      inlineStored_ = false;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { moveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  /// Const like std::function's: the target is logically owned state, and
  /// continuation lambdas holding one by value are rarely `mutable`.
  R operator()(Args... args) const {
    return invoke_(const_cast<unsigned char*>(buf_),
                   std::forward<Args>(args)...);
  }

  void reset() noexcept {
    if (manage_ != nullptr) manage_(Op::kDestroy, buf_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  /// True when the callable lives in the inline buffer (test hook).
  bool isInline() const noexcept {
    return invoke_ != nullptr && inlineStored_;
  }

 private:
  enum class Op { kMoveTo, kDestroy };
  using Invoke = R (*)(void*, Args...);
  using Manage = void (*)(Op, void* self, void* dest);

  template <typename Fn>
  static R inlineInvoke(void* buf, Args... args) {
    return (*std::launder(reinterpret_cast<Fn*>(buf)))(
        std::forward<Args>(args)...);
  }
  template <typename Fn>
  static void inlineManage(Op op, void* self, void* dest) {
    Fn* f = std::launder(reinterpret_cast<Fn*>(self));
    if (op == Op::kMoveTo) ::new (dest) Fn(std::move(*f));
    f->~Fn();
  }
  template <typename Fn>
  static R heapInvoke(void* buf, Args... args) {
    void* block = *reinterpret_cast<void**>(buf);
    return (*static_cast<Fn*>(block))(std::forward<Args>(args)...);
  }
  template <typename Fn>
  static void heapManage(Op op, void* self, void* dest) {
    void* block = *reinterpret_cast<void**>(self);
    if (op == Op::kMoveTo) {
      // Overflow moves are pointer swaps; the callable never relocates.
      *reinterpret_cast<void**>(dest) = block;
      return;
    }
    static_cast<Fn*>(block)->~Fn();
    detail::OverflowPool::release(block, sizeof(Fn));
  }

  void moveFrom(InlineFunction& other) noexcept {
    if (other.manage_ != nullptr) {
      other.manage_(Op::kMoveTo, other.buf_, buf_);
    }
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    inlineStored_ = other.inlineStored_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
  bool inlineStored_ = false;

  static_assert(sizeof(void*) <= kInlineBytes);
};

/// The simulator's event callback type.
using InlineTask = InlineFunction<void()>;

}  // namespace rc::sim
