#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/inline_task.hpp"
#include "sim/time.hpp"

namespace rc::sim {

/// Identifier of a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

constexpr EventId kInvalidEvent = 0;

/// Indexed 4-ary min-heap of timer events, keyed on (time, seq).
///
/// seq is a monotone scheduling counter, so ties on time break in FIFO
/// scheduling order — the exact ordering contract the old
/// priority_queue<Entry> comparator implemented, which keeps event
/// execution order (and therefore every seeded run) bit-identical.
///
/// Each event's callback lives in a slot arena; the heap array holds only
/// (time, seq, slot) triples, and each slot remembers its heap position.
/// That index makes cancel() O(log n): the dominant schedule-then-cancel
/// pattern (RPC timeouts, worker spin-ends) removes its entry eagerly
/// instead of leaving a tombstone to be re-popped later. A 4-ary layout
/// halves the tree depth of a binary heap and keeps hot comparisons within
/// one cache line of children.
///
/// EventIds encode (generation << 32 | slot); generations bump on every
/// slot reuse, so cancelling an id that already ran is a harmless no-op.
class EventHeap {
 public:
  /// Insert a callback at `time`; FIFO among equal times.
  EventId push(SimTime time, InlineTask cb) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.cb = std::move(cb);
    const std::size_t i = heap_.size();
    heap_.push_back(Item{time, nextSeq_++, slot});
    s.pos = static_cast<std::int32_t>(i);
    siftUp(i);
    return makeId(s.gen, slot);
  }

  /// Remove a pending event. Returns false (no-op) if the id already ran,
  /// was already cancelled, or never existed.
  bool cancel(EventId id) {
    const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffffu);
    const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
    if (slot >= slots_.size()) return false;
    Slot& s = slots_[slot];
    if (s.gen != gen || s.pos < 0) return false;
    removeAt(static_cast<std::size_t>(s.pos));
    releaseSlot(slot);
    return true;
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Precondition: !empty().
  SimTime topTime() const { return heap_[0].time; }

  /// Pop the earliest event; precondition: !empty().
  InlineTask popTop(SimTime* timeOut) {
    const Item top = heap_[0];
    if (timeOut != nullptr) *timeOut = top.time;
    InlineTask cb = std::move(slots_[top.slot].cb);
    removeAt(0);
    releaseSlot(top.slot);
    return cb;
  }

 private:
  struct Item {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Slot {
    InlineTask cb;
    std::uint32_t gen = 1;
    std::int32_t pos = -1;
  };

  static EventId makeId(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  static bool before(const Item& a, const Item& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void place(std::size_t i, const Item& item) {
    heap_[i] = item;
    slots_[item.slot].pos = static_cast<std::int32_t>(i);
  }

  void releaseSlot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.cb = nullptr;
    s.pos = -1;
    if (++s.gen == 0) s.gen = 1;  // keep ids != kInvalidEvent
    free_.push_back(slot);
  }

  void removeAt(std::size_t i) {
    const std::size_t last = heap_.size() - 1;
    slots_[heap_[i].slot].pos = -1;
    if (i != last) {
      const Item moved = heap_[last];
      heap_.pop_back();
      place(i, moved);
      if (i > 0 && before(heap_[i], heap_[(i - 1) / 4])) {
        siftUp(i);
      } else {
        siftDown(i);
      }
    } else {
      heap_.pop_back();
    }
  }

  void siftUp(std::size_t i) {
    const Item item = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!before(item, heap_[parent])) break;
      place(i, heap_[parent]);
      i = parent;
    }
    place(i, item);
  }

  void siftDown(std::size_t i) {
    const Item item = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], item)) break;
      place(i, heap_[best]);
      i = best;
    }
    place(i, item);
  }

  std::vector<Item> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::uint64_t nextSeq_ = 1;
};

}  // namespace rc::sim
