#include "sim/rng.hpp"

#include <cmath>

namespace rc::sim {

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u) {
  next32();
  state_ += seed;
  next32();
}

std::uint32_t Rng::next32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint64_t Rng::next64() {
  return (static_cast<std::uint64_t>(next32()) << 32) | next32();
}

std::uint64_t Rng::uniformInt(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniformRange(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  uniformInt(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniformDouble() {
  return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) {
  double u = uniformDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniformDouble() < p;
}

Rng Rng::fork(std::uint64_t n) {
  return Rng(next64() ^ (n * 0x9e3779b97f4a7c15ULL), next64() | 1u);
}

}  // namespace rc::sim
